// Copyright 2026 The netbone Authors.
//
// The synthetic-recovery metric of Sec. V-A: the Jaccard coefficient
// between the backbone's edge set and the ground-truth edge set
// (1 = identical, 0 = disjoint). Drives Fig. 4.

#ifndef NETBONE_EVAL_RECOVERY_H_
#define NETBONE_EVAL_RECOVERY_H_

#include <vector>

#include "common/result.h"
#include "core/filter.h"
#include "graph/graph.h"

namespace netbone {

/// Jaccard similarity of two keep-masks over the same edge table.
Result<double> JaccardRecovery(const std::vector<bool>& backbone,
                               const std::vector<bool>& ground_truth);

/// Jaccard similarity of the edge sets (as canonical node pairs) of two
/// graphs over the same node universe — used when the backbone and the
/// truth live in different Graph objects.
Result<double> JaccardEdgeSets(const Graph& a, const Graph& b);

}  // namespace netbone

#endif  // NETBONE_EVAL_RECOVERY_H_
