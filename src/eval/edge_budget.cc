#include "eval/edge_budget.h"

#include "core/high_salience_skeleton.h"

namespace netbone {

int64_t CountAboveScore(const ScoredEdges& scored, double threshold) {
  int64_t count = 0;
  for (EdgeId id = 0; id < scored.size(); ++id) {
    if (scored.at(id).score > threshold) ++count;
  }
  return count;
}

Result<int64_t> HssEdgeBudget(const Graph& graph, double salience,
                              int64_t hss_max_cost) {
  HighSalienceSkeletonOptions options;
  options.max_cost = hss_max_cost;
  NETBONE_ASSIGN_OR_RETURN(ScoredEdges scored,
                           HighSalienceSkeleton(graph, options));
  return CountAboveScore(scored, salience);
}

Result<BackboneMask> BudgetedBackbone(Method method, const Graph& graph,
                                      int64_t budget,
                                      const RunMethodOptions& options) {
  NETBONE_ASSIGN_OR_RETURN(ScoredEdges scored,
                           RunMethod(method, graph, options));
  if (method == Method::kMaximumSpanningTree) {
    return FilterByScore(scored, 0.5);  // tree edges scored 1
  }
  if (method == Method::kDoublyStochastic && budget <= 0) {
    return GrowUntilConnected(scored);
  }
  return TopK(scored, budget);
}

}  // namespace netbone
