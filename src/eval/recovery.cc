#include "eval/recovery.h"

#include <unordered_set>

namespace netbone {

Result<double> JaccardRecovery(const std::vector<bool>& backbone,
                               const std::vector<bool>& ground_truth) {
  if (backbone.size() != ground_truth.size()) {
    return Status::InvalidArgument("mask size mismatch");
  }
  int64_t intersection = 0;
  int64_t set_union = 0;
  for (size_t i = 0; i < backbone.size(); ++i) {
    const bool a = backbone[i];
    const bool b = ground_truth[i];
    if (a && b) ++intersection;
    if (a || b) ++set_union;
  }
  if (set_union == 0) return 1.0;  // both empty: identical
  return static_cast<double>(intersection) /
         static_cast<double>(set_union);
}

namespace {

uint64_t PairKey(const Edge& e, bool directed) {
  NodeId a = e.src;
  NodeId b = e.dst;
  if (!directed && a > b) std::swap(a, b);
  return (static_cast<uint64_t>(a) << 32) |
         static_cast<uint64_t>(static_cast<uint32_t>(b));
}

}  // namespace

Result<double> JaccardEdgeSets(const Graph& a, const Graph& b) {
  if (a.directed() != b.directed()) {
    return Status::InvalidArgument("directedness mismatch");
  }
  std::unordered_set<uint64_t> set_a;
  set_a.reserve(static_cast<size_t>(a.num_edges()) * 2);
  for (const Edge& e : a.edges()) set_a.insert(PairKey(e, a.directed()));
  int64_t intersection = 0;
  std::unordered_set<uint64_t> seen_b;
  seen_b.reserve(static_cast<size_t>(b.num_edges()) * 2);
  for (const Edge& e : b.edges()) {
    const uint64_t key = PairKey(e, b.directed());
    if (seen_b.insert(key).second && set_a.contains(key)) ++intersection;
  }
  const int64_t set_union = static_cast<int64_t>(set_a.size()) +
                            static_cast<int64_t>(seen_b.size()) -
                            intersection;
  if (set_union == 0) return 1.0;
  return static_cast<double>(intersection) /
         static_cast<double>(set_union);
}

}  // namespace netbone
