// Copyright 2026 The netbone Authors.
//
// Edge-budget matching. The paper's comparisons hold the number of
// retained edges fixed across methods ("we fix the number of edges we
// include in the backbone. We usually choose the number of edges obtained
// with low threshold values for the High Salience Skeleton, because it is
// the most strict backbone methodology"). These helpers compute that
// budget and apply it uniformly.

#ifndef NETBONE_EVAL_EDGE_BUDGET_H_
#define NETBONE_EVAL_EDGE_BUDGET_H_

#include <cstdint>

#include "common/result.h"
#include "core/filter.h"
#include "core/registry.h"
#include "core/scored_edges.h"
#include "core/sweep.h"
#include "graph/graph.h"

namespace netbone {

/// Number of edges with score > threshold (e.g. positive HSS salience).
/// One O(E) scan; callers holding a ScoreOrder get the same count in
/// O(log E) from the overload below.
int64_t CountAboveScore(const ScoredEdges& scored, double threshold);

/// CountAboveScore riding a precomputed descending order (core/sweep.h):
/// binary search instead of a table scan, for budget lookups inside
/// threshold sweeps.
inline int64_t CountAboveScore(const ScoreOrder& order, double threshold) {
  return order.CountAbove(threshold);
}

/// The paper's default budget: the size of the HSS backbone at a low
/// salience threshold (default 0 — every edge used by at least one
/// shortest-path tree), matching "the number of edges obtained with low
/// threshold values for the High Salience Skeleton".
Result<int64_t> HssEdgeBudget(const Graph& graph, double salience = 0.0,
                              int64_t hss_max_cost = 0);

/// Applies `method` to `graph` and returns the top-`budget` mask, so every
/// method returns the same number of edges. MST ignores the budget (it is
/// parameter-free and returns its tree); DS grows until connected when
/// `budget` <= 0, else takes top-`budget`.
Result<BackboneMask> BudgetedBackbone(Method method, const Graph& graph,
                                      int64_t budget,
                                      const RunMethodOptions& options = {});

}  // namespace netbone

#endif  // NETBONE_EVAL_EDGE_BUDGET_H_
