// Copyright 2026 The netbone Authors.
//
// The paper's Quality criterion (Sec. V-E): fit the fixed-form model
//   log(N_ij + 1) = beta X_ij + eps
// once on every edge of the network (M_full) and once restricted to the
// backbone edges (M_bb); Quality = R^2_bb / R^2_full. Values above 1 mean
// the backbone edges are *more* predictable from fundamentals than the
// full noisy network — the backbone removed noise, not signal.

#ifndef NETBONE_EVAL_QUALITY_H_
#define NETBONE_EVAL_QUALITY_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/filter.h"
#include "graph/graph.h"

namespace netbone {

/// Result of a quality evaluation.
struct QualityResult {
  double r2_full = 0.0;
  double r2_backbone = 0.0;
  /// r2_backbone / r2_full (the number reported in Table II).
  double ratio = 0.0;
  int64_t n_full = 0;
  int64_t n_backbone = 0;
};

/// Evaluates the quality ratio. `predictors` holds one column per
/// regressor, each aligned with `graph`'s edge table; `mask` selects the
/// backbone edges. The response is log1p of the edge weight.
Result<QualityResult> QualityRatio(
    const Graph& graph, const std::vector<std::vector<double>>& predictors,
    const BackboneMask& mask);

}  // namespace netbone

#endif  // NETBONE_EVAL_QUALITY_H_
