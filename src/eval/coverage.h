// Copyright 2026 The netbone Authors.
//
// The paper's Topology criterion (Sec. V-D):
//   Coverage = (|V| - |I_G*|) / (|V| - |I_G|),
// the share of originally non-isolated nodes that the backbone keeps
// connected. 1 = no node lost.

#ifndef NETBONE_EVAL_COVERAGE_H_
#define NETBONE_EVAL_COVERAGE_H_

#include "common/result.h"
#include "core/filter.h"
#include "graph/graph.h"

namespace netbone {

/// Coverage of `backbone` with respect to `original`. Both graphs must
/// share the node universe. Fails when the original has no connected node.
Result<double> Coverage(const Graph& original, const Graph& backbone);

/// Coverage of the masked edge subset without materializing the subgraph.
Result<double> CoverageOfMask(const Graph& original,
                              const BackboneMask& mask);

}  // namespace netbone

#endif  // NETBONE_EVAL_COVERAGE_H_
