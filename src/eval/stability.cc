#include "eval/stability.h"

#include <vector>

#include "stats/correlation.h"

namespace netbone {

Result<double> Stability(const Graph& year_t, const Graph& year_t1,
                         const BackboneMask& mask) {
  if (static_cast<int64_t>(mask.keep.size()) != year_t.num_edges()) {
    return Status::InvalidArgument("mask size != edge count");
  }
  if (year_t.num_nodes() != year_t1.num_nodes()) {
    return Status::InvalidArgument("node universe mismatch");
  }
  std::vector<double> w_t, w_t1;
  w_t.reserve(static_cast<size_t>(mask.kept));
  w_t1.reserve(static_cast<size_t>(mask.kept));
  for (EdgeId id = 0; id < year_t.num_edges(); ++id) {
    if (!mask.keep[static_cast<size_t>(id)]) continue;
    const Edge& e = year_t.edge(id);
    w_t.push_back(e.weight);
    w_t1.push_back(year_t1.WeightOf(e.src, e.dst));
  }
  if (w_t.size() < 3) {
    return Status::FailedPrecondition("need at least 3 retained edges");
  }
  return SpearmanCorrelation(w_t, w_t1);
}

}  // namespace netbone
