// Copyright 2026 The netbone Authors.
//
// The paper's Stability criterion (Sec. V-F):
//   Stability = Spearman(N_ij^t, N_ij^{t+1})
// computed over the edges retained in the backbone extracted at time t.
// A stable backbone selects edges whose weights do not fluctuate wildly
// across consecutive observations.

#ifndef NETBONE_EVAL_STABILITY_H_
#define NETBONE_EVAL_STABILITY_H_

#include "common/result.h"
#include "core/filter.h"
#include "graph/graph.h"
#include "graph/temporal.h"

namespace netbone {

/// Spearman correlation of the weights of the masked edges of `year_t`
/// against the same node pairs' weights in `year_t1` (absent pairs weigh
/// 0). Fails when fewer than 3 edges are retained.
Result<double> Stability(const Graph& year_t, const Graph& year_t1,
                         const BackboneMask& mask);

/// Average Stability over all consecutive snapshot pairs of `network`,
/// re-extracting the mask on each year with `make_mask`. Convenience for
/// the Fig. 8 sweep.
template <typename MaskFn>
Result<double> MeanStability(const TemporalNetwork& network,
                             MaskFn&& make_mask) {
  if (network.num_snapshots() < 2) {
    return Status::FailedPrecondition("need at least two snapshots");
  }
  double total = 0.0;
  int64_t count = 0;
  for (int64_t t = 0; t + 1 < network.num_snapshots(); ++t) {
    Result<BackboneMask> mask = make_mask(network.snapshot(t));
    if (!mask.ok()) return mask.status();
    Result<double> s =
        Stability(network.snapshot(t), network.snapshot(t + 1), *mask);
    if (!s.ok()) return s.status();
    total += *s;
    ++count;
  }
  return total / static_cast<double>(count);
}

}  // namespace netbone

#endif  // NETBONE_EVAL_STABILITY_H_
