#include "eval/sweep_metrics.h"

#include <utility>

#include "common/parallel.h"
#include "eval/stability.h"

namespace netbone {

Result<std::vector<double>> CoverageSweep(const ScoreOrder& order,
                                          std::span<const double> shares) {
  const SweepProfile profile = BuildSweepProfile(order);
  if (profile.target_nodes == 0) {
    return Status::FailedPrecondition("original graph is all isolates");
  }
  std::vector<double> coverage;
  coverage.reserve(shares.size());
  for (const double share : shares) {
    coverage.push_back(profile.CoverageAt(order.KForShare(share)));
  }
  return coverage;
}

Result<std::vector<double>> CoverageSweep(const ScoredEdges& scored,
                                          std::span<const double> shares) {
  return CoverageSweep(ScoreOrder(scored), shares);
}

Result<double> CoverageAtShare(const ScoreOrder& order, double share) {
  const std::span<const double> one(&share, 1);
  NETBONE_ASSIGN_OR_RETURN(std::vector<double> coverage,
                           CoverageSweep(order, one));
  return coverage.front();
}

std::vector<MethodCoverageSweep> CoverageSweepByMethod(
    const Graph& graph, std::span<const Method> methods,
    std::span<const double> shares, const RunMethodOptions& options) {
  std::vector<MethodCoverageSweep> results(methods.size());
  // One slot per method, one grain-1 task per method: each task computes
  // its slot end to end, so the output is independent of scheduling. The
  // tasks share the work-stealing pool with the methods' own inner
  // ParallelFor fan-outs (two-level schedule) — while one task is deep in
  // the slow method's per-source loop, idle workers execute the other
  // methods' chunks instead of waiting for the method level to finish.
  ParallelForDynamic(
      static_cast<int64_t>(methods.size()), /*grain=*/1,
      options.num_threads, [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
          MethodCoverageSweep& out = results[static_cast<size_t>(i)];
          out.method = methods[static_cast<size_t>(i)];
          const Result<ScoredEdges> scored =
              RunMethod(out.method, graph, options);
          if (!scored.ok()) {
            out.status = scored.status();
            continue;
          }
          Result<std::vector<double>> coverage =
              CoverageSweep(ScoreOrder(*scored), shares);
          if (!coverage.ok()) {
            out.status = coverage.status();
            continue;
          }
          out.coverage = std::move(*coverage);
        }
      });
  return results;
}

Result<std::vector<Result<double>>> StabilitySweep(
    const TemporalNetwork& network, Method method,
    std::span<const double> shares, const RunMethodOptions& options) {
  if (network.num_snapshots() < 2) {
    return Status::FailedPrecondition("need at least two snapshots");
  }
  const int64_t num_pairs = network.num_snapshots() - 1;
  const size_t num_shares = shares.size();

  // stability[t] holds one Result per share for the pair (t, t+1); a
  // scoring failure is recorded in score_status[t] instead. Each pair is
  // computed by exactly one task (grain 1), so slots never race and the
  // final fold below is a fixed-order serial pass. Pair-level tasks and
  // the scoring's inner per-edge/per-source loops share one stealing
  // pool, so a snapshot with an expensive scoring no longer serializes
  // the cores that finished their own pairs.
  std::vector<std::vector<Result<double>>> stability(
      static_cast<size_t>(num_pairs));
  std::vector<Status> score_status(static_cast<size_t>(num_pairs));

  ParallelForDynamic(
      num_pairs, /*grain=*/1, options.num_threads,
      [&](int64_t begin, int64_t end) {
        for (int64_t t = begin; t < end; ++t) {
          const Graph& year_t = network.snapshot(t);
          const Result<ScoredEdges> scored =
              RunMethod(method, year_t, options);
          if (!scored.ok()) {
            score_status[static_cast<size_t>(t)] = scored.status();
            continue;
          }
          // The one sort this snapshot pays for the whole grid.
          const ScoreOrder order(*scored);
          auto& row = stability[static_cast<size_t>(t)];
          row.reserve(num_shares);
          for (const double share : shares) {
            row.push_back(Stability(year_t, network.snapshot(t + 1),
                                    TopShare(order, share)));
          }
        }
      });

  // Earliest-snapshot-first error semantics, matching the serial
  // MeanStability sweep.
  for (const Status& status : score_status) {
    if (!status.ok()) return status;
  }

  std::vector<Result<double>> means;
  means.reserve(num_shares);
  for (size_t s = 0; s < num_shares; ++s) {
    Result<double> mean = 0.0;
    double total = 0.0;
    for (int64_t t = 0; t < num_pairs; ++t) {
      const Result<double>& cell = stability[static_cast<size_t>(t)][s];
      if (!cell.ok()) {
        mean = cell.status();
        break;
      }
      total += *cell;
    }
    if (mean.ok()) mean = total / static_cast<double>(num_pairs);
    means.push_back(std::move(mean));
  }
  return means;
}

Result<double> MeanStability(const TemporalNetwork& network, Method method,
                             double share,
                             const RunMethodOptions& options) {
  const std::span<const double> one(&share, 1);
  NETBONE_ASSIGN_OR_RETURN(std::vector<Result<double>> means,
                           StabilitySweep(network, method, one, options));
  return means.front();
}

}  // namespace netbone
