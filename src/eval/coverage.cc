#include "eval/coverage.h"

#include <vector>

namespace netbone {

Result<double> Coverage(const Graph& original, const Graph& backbone) {
  if (original.num_nodes() != backbone.num_nodes()) {
    return Status::InvalidArgument("node universe mismatch");
  }
  const int64_t original_connected =
      original.num_nodes() - original.CountIsolates();
  if (original_connected == 0) {
    return Status::FailedPrecondition("original graph is all isolates");
  }
  const int64_t backbone_connected =
      backbone.num_nodes() - backbone.CountIsolates();
  return static_cast<double>(backbone_connected) /
         static_cast<double>(original_connected);
}

Result<double> CoverageOfMask(const Graph& original,
                              const BackboneMask& mask) {
  if (static_cast<int64_t>(mask.keep.size()) != original.num_edges()) {
    return Status::InvalidArgument("mask size != edge count");
  }
  const int64_t original_connected =
      original.num_nodes() - original.CountIsolates();
  if (original_connected == 0) {
    return Status::FailedPrecondition("original graph is all isolates");
  }
  std::vector<bool> touched(static_cast<size_t>(original.num_nodes()),
                            false);
  for (EdgeId id = 0; id < original.num_edges(); ++id) {
    if (!mask.keep[static_cast<size_t>(id)]) continue;
    const Edge& e = original.edge(id);
    touched[static_cast<size_t>(e.src)] = true;
    touched[static_cast<size_t>(e.dst)] = true;
  }
  int64_t covered = 0;
  for (const bool t : touched) covered += t ? 1 : 0;
  return static_cast<double>(covered) /
         static_cast<double>(original_connected);
}

}  // namespace netbone
