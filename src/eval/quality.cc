#include "eval/quality.h"

#include <cmath>

#include "common/strings.h"
#include "stats/ols.h"

namespace netbone {

Result<QualityResult> QualityRatio(
    const Graph& graph, const std::vector<std::vector<double>>& predictors,
    const BackboneMask& mask) {
  const size_t num_edges = static_cast<size_t>(graph.num_edges());
  if (mask.keep.size() != num_edges) {
    return Status::InvalidArgument("mask size != edge count");
  }
  for (const auto& column : predictors) {
    if (column.size() != num_edges) {
      return Status::InvalidArgument("predictor column size != edge count");
    }
  }

  std::vector<double> response;
  response.reserve(num_edges);
  for (const Edge& e : graph.edges()) {
    response.push_back(std::log1p(e.weight));
  }

  QualityResult out;
  {
    OlsFitter fitter;
    for (size_t c = 0; c < predictors.size(); ++c) {
      fitter.AddColumn(StrFormat("x%zu", c), predictors[c]);
    }
    NETBONE_ASSIGN_OR_RETURN(OlsFit fit, fitter.Fit(response));
    out.r2_full = fit.r_squared;
    out.n_full = fit.n;
  }
  {
    OlsFitter fitter;
    std::vector<double> restricted_response;
    restricted_response.reserve(static_cast<size_t>(mask.kept));
    for (size_t c = 0; c < predictors.size(); ++c) {
      std::vector<double> column;
      column.reserve(static_cast<size_t>(mask.kept));
      for (size_t i = 0; i < num_edges; ++i) {
        if (mask.keep[i]) column.push_back(predictors[c][i]);
      }
      fitter.AddColumn(StrFormat("x%zu", c), std::move(column));
    }
    for (size_t i = 0; i < num_edges; ++i) {
      if (mask.keep[i]) restricted_response.push_back(response[i]);
    }
    NETBONE_ASSIGN_OR_RETURN(OlsFit fit, fitter.Fit(restricted_response));
    out.r2_backbone = fit.r_squared;
    out.n_backbone = fit.n;
  }
  if (out.r2_full <= 0.0) {
    return Status::FailedPrecondition("full model has zero R^2");
  }
  out.ratio = out.r2_backbone / out.r2_full;
  return out;
}

}  // namespace netbone
