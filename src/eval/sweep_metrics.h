// Copyright 2026 The netbone Authors.
//
// Batch evaluation over threshold sweeps. The paper's Fig. 7 (Coverage vs
// share retained) and Fig. 8 (Stability vs share retained) evaluate every
// method at many retention levels; these entry points price an entire
// share grid at one sort + one linear union-find pass per scored table
// (core/sweep.h), instead of a fresh sort and a fresh O(E) isolate scan
// per point. Independent methods (CoverageSweepByMethod) and independent
// snapshot pairs (StabilitySweep) run as work-stealing tasks that share
// one pool with the methods' own inner parallel loops (a two-level
// schedule); results are bit-identical for every thread count and steal
// order because each slot is computed entirely by one task and combined
// in index order.

#ifndef NETBONE_EVAL_SWEEP_METRICS_H_
#define NETBONE_EVAL_SWEEP_METRICS_H_

#include <span>
#include <vector>

#include "common/result.h"
#include "core/registry.h"
#include "core/sweep.h"
#include "graph/temporal.h"

namespace netbone {

/// Coverage at every share of the grid, element-wise identical to
/// CoverageOfMask(graph, TopShare(scored, share)) per point, in
/// O(E a(E) + P) after the order's one sort. Fails when the original
/// graph is all isolates (the Coverage denominator is zero).
Result<std::vector<double>> CoverageSweep(const ScoreOrder& order,
                                          std::span<const double> shares);

/// Convenience overload: builds the one ScoreOrder internally.
Result<std::vector<double>> CoverageSweep(const ScoredEdges& scored,
                                          std::span<const double> shares);

/// Single-point wrapper riding a precomputed order: identical to
/// CoverageOfMask(order.graph(), TopShare(order.scored(), share)).
Result<double> CoverageAtShare(const ScoreOrder& order, double share);

/// One method's column of a Fig. 7-style sweep.
struct MethodCoverageSweep {
  Method method = Method::kNaiveThreshold;
  /// Non-OK when the method failed to score the graph (e.g. DS
  /// non-convergence, HSS cost guard); `coverage` is then empty.
  Status status;
  /// Coverage per share, aligned with the input grid.
  std::vector<double> coverage;
};

/// Runs every method once and sweeps the whole share grid on its shared
/// order. Methods are independent, so each runs as its own work-stealing
/// task (`options.num_threads` as the thread knob; 0 = hardware
/// concurrency), and the methods' inner parallel loops spawn into the
/// same pool: with M methods on C cores the schedule is two-level — when
/// one slow method dominates (HSS), the cores that finished the cheap
/// methods steal its inner per-source chunks instead of idling until the
/// method level drains. Chunk partitions depend only on (n, num_threads),
/// so the output is bit-identical to the serial sweep at every thread
/// count; num_threads == 1 runs fully inline.
std::vector<MethodCoverageSweep> CoverageSweepByMethod(
    const Graph& graph, std::span<const Method> methods,
    std::span<const double> shares, const RunMethodOptions& options = {});

/// Fig. 8 batch: mean Stability (Spearman of consecutive-snapshot weights
/// over the backbone kept at t) per share. Each snapshot is scored and
/// sorted exactly once for the entire grid — the per-point path re-runs
/// the method P times per snapshot. Snapshot pairs run as work-stealing
/// tasks sharing the pool with the scoring's inner loops; the mean is
/// accumulated in snapshot order, so results are bit-identical for every
/// thread count and element-wise identical to the per-point
/// MeanStability/TopShare path.
///
/// The outer Result fails when the network has fewer than two snapshots
/// or the method fails to score a snapshot (earliest snapshot wins). The
/// inner per-share Results fail when Stability is undefined at that share
/// (fewer than 3 retained edges), earliest snapshot pair winning — the
/// same error the serial per-point path reports.
Result<std::vector<Result<double>>> StabilitySweep(
    const TemporalNetwork& network, Method method,
    std::span<const double> shares, const RunMethodOptions& options = {});

/// Single-point wrapper over StabilitySweep: the batch engine priced at
/// one share. Identical to the MeanStability template in eval/stability.h
/// with a RunMethod + TopShare mask factory.
Result<double> MeanStability(const TemporalNetwork& network, Method method,
                             double share,
                             const RunMethodOptions& options = {});

}  // namespace netbone

#endif  // NETBONE_EVAL_SWEEP_METRICS_H_
