#include "stats/special_functions.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace netbone {
namespace {

// Lanczos coefficients (g = 7, n = 9).
constexpr double kLanczos[9] = {
    0.99999999999980993,  676.5203681218851,   -1259.1392167224028,
    771.32342877765313,   -176.61502916214059, 12.507343278686905,
    -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};

// Continued fraction for the incomplete beta (Numerical Recipes betacf),
// evaluated with modified Lentz.
double BetaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIterations = 300;
  constexpr double kEpsilon = 3.0e-15;
  constexpr double kTiny = 1.0e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEpsilon) break;
  }
  return h;
}

}  // namespace

double LogGamma(double x) {
  assert(x > 0.0);
  if (x < 0.5) {
    // Reflection: Γ(x)Γ(1-x) = π / sin(πx).
    return std::log(M_PI / std::sin(M_PI * x)) - LogGamma(1.0 - x);
  }
  x -= 1.0;
  double acc = kLanczos[0];
  for (int i = 1; i < 9; ++i) acc += kLanczos[i] / (x + i);
  const double t = x + 7.5;
  return 0.5 * std::log(2.0 * M_PI) + (x + 0.5) * std::log(t) - t +
         std::log(acc);
}

double LogBinomialCoefficient(double n, double k) {
  if (k < 0.0 || k > n) return -std::numeric_limits<double>::infinity();
  return LogGamma(n + 1.0) - LogGamma(k + 1.0) - LogGamma(n - k + 1.0);
}

double RegularizedIncompleteBeta(double a, double b, double x) {
  assert(a > 0.0 && b > 0.0);
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double log_front = LogGamma(a + b) - LogGamma(a) - LogGamma(b) +
                           a * std::log(x) + b * std::log(1.0 - x);
  const double front = std::exp(log_front);
  // Use the symmetry I_x(a,b) = 1 - I_{1-x}(b,a) to keep the continued
  // fraction in its rapidly-convergent region.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double BinomialCdf(double k, double n, double p) {
  if (p <= 0.0) return 1.0;           // all mass at 0 <= k
  if (p >= 1.0) return k >= n ? 1.0 : 0.0;
  const double kk = std::floor(k);
  if (kk < 0.0) return 0.0;
  if (kk >= n) return 1.0;
  // P[X <= k] = I_{1-p}(n - k, k + 1).
  return RegularizedIncompleteBeta(n - kk, kk + 1.0, 1.0 - p);
}

double NormalCdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

double NormalQuantile(double p) {
  assert(p > 0.0 && p < 1.0);
  // Acklam's rational approximation.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double kLow = 0.02425;
  double q, r;
  if (p < kLow) {
    q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= 1.0 - kLow) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
            1.0);
  }
  q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

}  // namespace netbone
