#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace netbone {

double Sum(std::span<const double> values) {
  // Kahan summation: edge-weight totals span many orders of magnitude
  // (the Trade network covers ten decades), so naive accumulation loses
  // precision exactly where the null model needs it.
  double sum = 0.0;
  double compensation = 0.0;
  for (const double v : values) {
    const double y = v - compensation;
    const double t = sum + y;
    compensation = (t - sum) - y;
    sum = t;
  }
  return sum;
}

double Mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  return Sum(values) / static_cast<double>(values.size());
}

double PopulationVariance(std::span<const double> values) {
  if (values.empty()) return 0.0;
  const double mean = Mean(values);
  double acc = 0.0;
  for (const double v : values) acc += (v - mean) * (v - mean);
  return acc / static_cast<double>(values.size());
}

double SampleVariance(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double mean = Mean(values);
  double acc = 0.0;
  for (const double v : values) acc += (v - mean) * (v - mean);
  return acc / static_cast<double>(values.size() - 1);
}

double SampleStdDev(std::span<const double> values) {
  return std::sqrt(SampleVariance(values));
}

double Median(std::span<const double> values) { return Quantile(values, 0.5); }

double Quantile(std::span<const double> values, double q) {
  if (values.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double Min(std::span<const double> values) {
  if (values.empty()) return 0.0;
  return *std::min_element(values.begin(), values.end());
}

double Max(std::span<const double> values) {
  if (values.empty()) return 0.0;
  return *std::max_element(values.begin(), values.end());
}

}  // namespace netbone
