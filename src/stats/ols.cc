#include "stats/ols.h"

#include <cmath>

#include "common/strings.h"
#include "stats/descriptive.h"

namespace netbone {
namespace {

/// Cholesky solve of the symmetric positive-definite system A x = b.
/// A is given in row-major dense form and is overwritten with its factor.
Status CholeskySolve(std::vector<double>* a, std::vector<double>* b,
                     size_t k) {
  std::vector<double>& A = *a;
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double sum = A[i * k + j];
      for (size_t m = 0; m < j; ++m) sum -= A[i * k + m] * A[j * k + m];
      if (i == j) {
        if (sum <= 0.0) {
          return Status::FailedPrecondition(
              "design matrix is not positive definite (collinear columns?)");
        }
        A[i * k + j] = std::sqrt(sum);
      } else {
        A[i * k + j] = sum / A[j * k + j];
      }
    }
  }
  // Forward substitution: L z = b.
  std::vector<double>& x = *b;
  for (size_t i = 0; i < k; ++i) {
    double sum = x[i];
    for (size_t m = 0; m < i; ++m) sum -= A[i * k + m] * x[m];
    x[i] = sum / A[i * k + i];
  }
  // Back substitution: L^T beta = z.
  for (size_t i = k; i-- > 0;) {
    double sum = x[i];
    for (size_t m = i + 1; m < k; ++m) sum -= A[m * k + i] * x[m];
    x[i] = sum / A[i * k + i];
  }
  return Status::OK();
}

}  // namespace

void OlsFitter::AddColumn(std::string name, std::vector<double> values) {
  names_.push_back(std::move(name));
  columns_.push_back(std::move(values));
}

std::vector<std::string> OlsFitter::ColumnNames() const {
  std::vector<std::string> names;
  if (options_.add_intercept) names.push_back("(intercept)");
  for (const auto& n : names_) names.push_back(n);
  return names;
}

Result<OlsFit> OlsFitter::Fit(std::span<const double> response) const {
  const size_t n = response.size();
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (columns_[c].size() != n) {
      return Status::InvalidArgument(
          StrFormat("column '%s' has %zu rows, response has %zu",
                    names_[c].c_str(), columns_[c].size(), n));
    }
  }
  const size_t k = columns_.size() + (options_.add_intercept ? 1 : 0);
  if (k == 0) return Status::InvalidArgument("no regressors");
  if (n <= k) {
    return Status::FailedPrecondition(
        StrFormat("need more observations (%zu) than regressors (%zu)", n,
                  k));
  }

  // Accessor treating the intercept as a virtual all-ones column 0.
  const auto x_at = [&](size_t row, size_t col) -> double {
    if (options_.add_intercept) {
      if (col == 0) return 1.0;
      return columns_[col - 1][row];
    }
    return columns_[col][row];
  };

  // Normal equations: (X^T X) beta = X^T y.
  std::vector<double> xtx(k * k, 0.0);
  std::vector<double> xty(k, 0.0);
  for (size_t row = 0; row < n; ++row) {
    for (size_t i = 0; i < k; ++i) {
      const double xi = x_at(row, i);
      xty[i] += xi * response[row];
      for (size_t j = 0; j <= i; ++j) xtx[i * k + j] += xi * x_at(row, j);
    }
  }
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = i + 1; j < k; ++j) xtx[i * k + j] = xtx[j * k + i];
    xtx[i * k + i] += options_.ridge;
  }

  NETBONE_RETURN_IF_ERROR(CholeskySolve(&xtx, &xty, k));

  OlsFit fit;
  fit.coefficients = xty;
  fit.n = static_cast<int64_t>(n);
  fit.fitted.resize(n);
  const double mean_y = Mean(response);
  double rss = 0.0, tss = 0.0;
  for (size_t row = 0; row < n; ++row) {
    double pred = 0.0;
    for (size_t i = 0; i < k; ++i) pred += fit.coefficients[i] * x_at(row, i);
    fit.fitted[row] = pred;
    rss += (response[row] - pred) * (response[row] - pred);
    tss += (response[row] - mean_y) * (response[row] - mean_y);
  }
  fit.rss = rss;
  fit.tss = tss;
  fit.r_squared = tss > 0.0 ? 1.0 - rss / tss : 0.0;
  const double dof = static_cast<double>(n) - static_cast<double>(k);
  fit.adjusted_r_squared =
      tss > 0.0 && dof > 0.0
          ? 1.0 - (rss / dof) / (tss / (static_cast<double>(n) - 1.0))
          : 0.0;
  return fit;
}

Result<double> OlsRSquared(const std::vector<std::vector<double>>& columns,
                           std::span<const double> response,
                           const OlsOptions& options) {
  OlsFitter fitter(options);
  for (size_t i = 0; i < columns.size(); ++i) {
    fitter.AddColumn(StrFormat("x%zu", i), columns[i]);
  }
  NETBONE_ASSIGN_OR_RETURN(OlsFit fit, fitter.Fit(response));
  return fit.r_squared;
}

}  // namespace netbone
