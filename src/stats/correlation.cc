#include "stats/correlation.h"

#include <cmath>
#include <vector>

#include "stats/descriptive.h"
#include "stats/ranking.h"

namespace netbone {

Result<double> PearsonCorrelation(std::span<const double> x,
                                  std::span<const double> y) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("series length mismatch");
  }
  const size_t n = x.size();
  if (n < 2) return Status::InvalidArgument("need at least 2 observations");
  const double mean_x = Mean(x);
  const double mean_y = Mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mean_x;
    const double dy = y[i] - mean_y;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) {
    return Status::FailedPrecondition("constant series has no correlation");
  }
  return sxy / std::sqrt(sxx * syy);
}

Result<double> LogLogPearsonCorrelation(std::span<const double> x,
                                        std::span<const double> y) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("series length mismatch");
  }
  std::vector<double> lx, ly;
  lx.reserve(x.size());
  ly.reserve(y.size());
  for (size_t i = 0; i < x.size(); ++i) {
    if (x[i] > 0.0 && y[i] > 0.0) {
      lx.push_back(std::log10(x[i]));
      ly.push_back(std::log10(y[i]));
    }
  }
  return PearsonCorrelation(lx, ly);
}

Result<double> SpearmanCorrelation(std::span<const double> x,
                                   std::span<const double> y) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("series length mismatch");
  }
  const std::vector<double> rx = MidRanks(x);
  const std::vector<double> ry = MidRanks(y);
  return PearsonCorrelation(rx, ry);
}

}  // namespace netbone
