#include "stats/ecdf.h"

#include <algorithm>
#include <cmath>

namespace netbone {

Ecdf::Ecdf(std::span<const double> sample)
    : sorted_(sample.begin(), sample.end()) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::Cdf(double x) const {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Ecdf::Survival(double x) const {
  if (sorted_.empty()) return 0.0;
  const auto it = std::lower_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(sorted_.end() - it) /
         static_cast<double>(sorted_.size());
}

std::vector<std::pair<double, double>> Ecdf::LogSurvivalSeries(
    int points) const {
  std::vector<std::pair<double, double>> series;
  // Positive support only (log axis).
  double lo = 0.0, hi = 0.0;
  for (const double v : sorted_) {
    if (v > 0.0) {
      lo = v;
      break;
    }
  }
  if (lo == 0.0 || points < 2) return series;
  hi = sorted_.back();
  if (hi <= lo) {
    series.emplace_back(lo, Survival(lo));
    return series;
  }
  const double log_lo = std::log10(lo);
  const double log_hi = std::log10(hi);
  series.reserve(static_cast<size_t>(points));
  for (int i = 0; i < points; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(points - 1);
    // Pin the endpoints exactly: pow/log round-tripping can overshoot the
    // sample maximum and spuriously report zero survival there.
    double x;
    if (i == 0) {
      x = lo;
    } else if (i == points - 1) {
      x = hi;
    } else {
      x = std::pow(10.0, log_lo + t * (log_hi - log_lo));
    }
    series.emplace_back(x, Survival(x));
  }
  return series;
}

Histogram MakeHistogram(std::span<const double> sample, double lo, double hi,
                        int bins) {
  Histogram hist;
  hist.lo = lo;
  hist.hi = hi;
  hist.counts.assign(static_cast<size_t>(std::max(bins, 1)), 0);
  if (hi <= lo) return hist;
  const double width = (hi - lo) / static_cast<double>(hist.counts.size());
  for (const double v : sample) {
    int64_t bin = static_cast<int64_t>((v - lo) / width);
    bin = std::clamp<int64_t>(bin, 0,
                              static_cast<int64_t>(hist.counts.size()) - 1);
    hist.counts[static_cast<size_t>(bin)]++;
    hist.total++;
  }
  return hist;
}

}  // namespace netbone
