// Copyright 2026 The netbone Authors.
//
// Empirical CDFs and fixed-width histograms for the distribution figures
// (Fig. 2 threshold setting, Fig. 5 cumulative edge-weight distributions).

#ifndef NETBONE_STATS_ECDF_H_
#define NETBONE_STATS_ECDF_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace netbone {

/// Empirical complementary/cumulative distribution over a sample.
class Ecdf {
 public:
  /// Copies and sorts the sample. O(n log n).
  explicit Ecdf(std::span<const double> sample);

  /// P[X <= x].
  double Cdf(double x) const;

  /// P[X >= x] (the convention of the paper's Fig. 5 axis, which plots the
  /// share of edges at least as heavy as x).
  double Survival(double x) const;

  /// Sample size.
  int64_t size() const { return static_cast<int64_t>(sorted_.size()); }

  /// Evaluation grid of `points` log-spaced x values spanning the positive
  /// sample range, paired with Survival(x). Mirrors the log-log axes of
  /// Fig. 5.
  std::vector<std::pair<double, double>> LogSurvivalSeries(int points) const;

 private:
  std::vector<double> sorted_;
};

/// Fixed-width histogram.
struct Histogram {
  double lo = 0.0;
  double hi = 0.0;
  std::vector<int64_t> counts;
  int64_t total = 0;

  /// Share of the sample in bin i.
  double Share(size_t i) const {
    return total > 0 ? static_cast<double>(counts[i]) /
                           static_cast<double>(total)
                     : 0.0;
  }
  /// Center x of bin i.
  double BinCenter(size_t i) const {
    const double width = (hi - lo) / static_cast<double>(counts.size());
    return lo + (static_cast<double>(i) + 0.5) * width;
  }
};

/// Builds a histogram of `sample` with `bins` equal-width bins over
/// [lo, hi]; out-of-range values clamp to the edge bins.
Histogram MakeHistogram(std::span<const double> sample, double lo, double hi,
                        int bins);

}  // namespace netbone

#endif  // NETBONE_STATS_ECDF_H_
