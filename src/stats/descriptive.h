// Copyright 2026 The netbone Authors.
//
// Descriptive statistics over double vectors.

#ifndef NETBONE_STATS_DESCRIPTIVE_H_
#define NETBONE_STATS_DESCRIPTIVE_H_

#include <cstdint>
#include <span>

namespace netbone {

/// Arithmetic mean; 0 for empty input.
double Mean(std::span<const double> values);

/// Population variance (divides by n); 0 for n < 1.
double PopulationVariance(std::span<const double> values);

/// Sample variance (divides by n-1); 0 for n < 2.
double SampleVariance(std::span<const double> values);

/// Sample standard deviation.
double SampleStdDev(std::span<const double> values);

/// Median (average of middle pair for even n); 0 for empty input.
/// O(n log n); copies the input.
double Median(std::span<const double> values);

/// q-quantile via linear interpolation, q in [0, 1]. O(n log n).
double Quantile(std::span<const double> values, double q);

/// Minimum / maximum; 0 for empty input.
double Min(std::span<const double> values);
double Max(std::span<const double> values);

/// Sum of values.
double Sum(std::span<const double> values);

}  // namespace netbone

#endif  // NETBONE_STATS_DESCRIPTIVE_H_
