// Copyright 2026 The netbone Authors.
//
// Multi-variable ordinary least squares with R², the engine behind the
// paper's Quality criterion (Sec. V-E): log(N_ij + 1) = beta X_ij + eps,
// fitted on all edges and on backbone edges, compared by R² ratio.

#ifndef NETBONE_STATS_OLS_H_
#define NETBONE_STATS_OLS_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"

namespace netbone {

/// Fitted OLS model.
struct OlsFit {
  /// Coefficients, one per regressor column (intercept first when
  /// OlsOptions::add_intercept is set).
  std::vector<double> coefficients;
  /// Coefficient of determination.
  double r_squared = 0.0;
  /// R² adjusted for the number of regressors.
  double adjusted_r_squared = 0.0;
  /// Residual sum of squares.
  double rss = 0.0;
  /// Total sum of squares.
  double tss = 0.0;
  /// Observation count.
  int64_t n = 0;
  /// Fitted values for each observation.
  std::vector<double> fitted;
};

/// Options for OlsFitter.
struct OlsOptions {
  bool add_intercept = true;
  /// Ridge term added to the normal-equation diagonal; keeps the Cholesky
  /// factorization stable for near-collinear designs without materially
  /// changing the fit.
  double ridge = 1e-10;
};

/// Column-oriented design matrix accumulator.
///
/// Usage:
///   OlsFitter fitter;
///   fitter.AddColumn("distance", distances);
///   fitter.AddColumn("pop_origin", pops);
///   Result<OlsFit> fit = fitter.Fit(response);
class OlsFitter {
 public:
  explicit OlsFitter(OlsOptions options = {}) : options_(options) {}

  /// Appends a named regressor; all columns must share one length.
  void AddColumn(std::string name, std::vector<double> values);

  /// Names of the regressors, including "(intercept)" when added.
  std::vector<std::string> ColumnNames() const;

  /// Solves min ||y - X b||² via normal equations + Cholesky. Fails on
  /// length mismatch or n <= #regressors.
  Result<OlsFit> Fit(std::span<const double> response) const;

 private:
  OlsOptions options_;
  std::vector<std::string> names_;
  std::vector<std::vector<double>> columns_;
};

/// Convenience wrapper: fit `response` on `columns` and return R².
Result<double> OlsRSquared(
    const std::vector<std::vector<double>>& columns,
    std::span<const double> response, const OlsOptions& options = {});

}  // namespace netbone

#endif  // NETBONE_STATS_OLS_H_
