#include "stats/distributions.h"

#include <cmath>

namespace netbone {

double BetaMean(const BetaParams& params) {
  return params.alpha / (params.alpha + params.beta);
}

double BetaVariance(const BetaParams& params) {
  const double s = params.alpha + params.beta;
  return params.alpha * params.beta / (s * s * (s + 1.0));
}

Result<BetaParams> FitBetaByMoments(double mean, double variance) {
  if (!(mean > 0.0 && mean < 1.0)) {
    return Status::InvalidArgument("Beta fit needs mean in (0, 1)");
  }
  if (!(variance > 0.0)) {
    return Status::InvalidArgument("Beta fit needs positive variance");
  }
  if (variance >= mean * (1.0 - mean)) {
    return Status::OutOfRange(
        "variance exceeds the Beta bound mean*(1-mean)");
  }
  BetaParams params;
  // Paper Eq. 7: alpha = mu^2 (1 - mu) / sigma^2 - mu.
  params.alpha = (mean * mean / variance) * (1.0 - mean) - mean;
  // Paper Eq. 8: beta = mu ((1 - mu)^2 / sigma^2 + 1) - 1, algebraically
  // equal to (1 - mu)(mu(1-mu)/sigma^2 - 1).
  params.beta =
      mean * ((1.0 - mean) * (1.0 - mean) / variance + 1.0) - 1.0;
  return params;
}

Result<BetaParams> FitBetaByMomentsPythonErratum(double mean,
                                                 double variance) {
  if (!(mean > 0.0 && mean < 1.0) || !(variance > 0.0)) {
    return Status::InvalidArgument("invalid moments");
  }
  BetaParams params;
  params.alpha = (mean * mean / variance) * (1.0 - mean) - mean;
  // backboning.py: beta = (mu / var) * (1 - mu^2) - (1 - mu).
  params.beta = (mean / variance) * (1.0 - mean * mean) - (1.0 - mean);
  return params;
}

double BinomialVariance(double n, double p) { return n * p * (1.0 - p); }

PriorMoments HypergeometricPriorMoments(double ni_out, double nj_in,
                                        double n_total) {
  PriorMoments prior;
  const double n2 = n_total * n_total;
  prior.mean = ni_out * nj_in / n2;
  if (n_total > 1.0) {
    prior.variance = ni_out * nj_in * (n_total - ni_out) *
                     (n_total - nj_in) / (n2 * n2 * (n_total - 1.0));
  } else {
    prior.variance = 0.0;
  }
  return prior;
}

}  // namespace netbone
