// Copyright 2026 The netbone Authors.
//
// Special functions needed by the statistical substrate: log-gamma,
// regularized incomplete beta (exact Binomial CDF for the paper's
// footnote-2 p-value variant), and the standard normal CDF / quantile
// (mapping the paper's delta thresholds 1.28/1.64/2.32 to p-values
// 0.1/0.05/0.01).

#ifndef NETBONE_STATS_SPECIAL_FUNCTIONS_H_
#define NETBONE_STATS_SPECIAL_FUNCTIONS_H_

namespace netbone {

/// ln Γ(x) for x > 0 (Lanczos approximation, ~15 significant digits).
double LogGamma(double x);

/// ln C(n, k) via log-gamma.
double LogBinomialCoefficient(double n, double k);

/// Regularized incomplete beta I_x(a, b), a,b > 0, x in [0, 1].
/// Continued-fraction evaluation (Lentz), accurate to ~1e-14.
double RegularizedIncompleteBeta(double a, double b, double x);

/// P[X <= k] for X ~ Binomial(n, p). Exact via the incomplete beta
/// identity; valid for non-integral k (uses floor(k)).
double BinomialCdf(double k, double n, double p);

/// Standard normal CDF Φ(z).
double NormalCdf(double z);

/// Standard normal quantile Φ⁻¹(p), p in (0, 1) (Acklam's algorithm,
/// |relative error| < 1.15e-9).
double NormalQuantile(double p);

}  // namespace netbone

#endif  // NETBONE_STATS_SPECIAL_FUNCTIONS_H_
