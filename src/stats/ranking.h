// Copyright 2026 The netbone Authors.
//
// Rank assignment with midrank tie handling, as required by the Spearman
// correlation used in the paper's Stability criterion (Sec. V-F).

#ifndef NETBONE_STATS_RANKING_H_
#define NETBONE_STATS_RANKING_H_

#include <span>
#include <vector>

namespace netbone {

/// Returns 1-based fractional ranks; tied values receive the average of the
/// ranks they straddle (midranks). O(n log n).
std::vector<double> MidRanks(std::span<const double> values);

}  // namespace netbone

#endif  // NETBONE_STATS_RANKING_H_
