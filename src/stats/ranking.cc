#include "stats/ranking.h"

#include <algorithm>
#include <numeric>

namespace netbone {

std::vector<double> MidRanks(std::span<const double> values) {
  const size_t n = values.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return values[a] < values[b];
  });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    // Positions i..j (0-based) share the midrank of 1-based ranks i+1..j+1.
    const double midrank = (static_cast<double>(i + 1) +
                            static_cast<double>(j + 1)) / 2.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = midrank;
    i = j + 1;
  }
  return ranks;
}

}  // namespace netbone
