// Copyright 2026 The netbone Authors.
//
// Correlation measures used across the evaluation:
//  * Pearson      — Table I (variance validation), Sec. VI flow prediction;
//  * log-log      — Fig. 6 local weight correlations;
//  * Spearman     — Fig. 8 stability criterion.

#ifndef NETBONE_STATS_CORRELATION_H_
#define NETBONE_STATS_CORRELATION_H_

#include <span>

#include "common/result.h"

namespace netbone {

/// Pearson product-moment correlation. Fails when sizes differ, n < 2, or
/// either series is constant.
Result<double> PearsonCorrelation(std::span<const double> x,
                                  std::span<const double> y);

/// Pearson correlation of log10(x) vs log10(y); non-positive entries are
/// dropped pairwise (the paper's log-log correlation of Fig. 6).
Result<double> LogLogPearsonCorrelation(std::span<const double> x,
                                        std::span<const double> y);

/// Spearman rank correlation with midrank ties (paper Sec. V-F: "we prefer
/// the nonparametric nature of the Spearman correlation").
Result<double> SpearmanCorrelation(std::span<const double> x,
                                   std::span<const double> y);

}  // namespace netbone

#endif  // NETBONE_STATS_CORRELATION_H_
