// Copyright 2026 The netbone Authors.
//
// Distribution moments and fitting used by the Noise-Corrected null model:
//  * Binomial variance (paper Eq. 2);
//  * Beta mean/variance (paper Eqs. 5-6);
//  * method-of-moments Beta fitting (paper Eqs. 7-8), with the
//    reference-implementation erratum variant for the ablation bench;
//  * hypergeometric prior moments for P_ij (paper Sec. IV).

#ifndef NETBONE_STATS_DISTRIBUTIONS_H_
#define NETBONE_STATS_DISTRIBUTIONS_H_

#include "common/result.h"

namespace netbone {

/// Parameters of a Beta(alpha, beta) distribution.
struct BetaParams {
  double alpha = 0.0;
  double beta = 0.0;
};

/// Mean of Beta(alpha, beta) (paper Eq. 5).
double BetaMean(const BetaParams& params);

/// Variance of Beta(alpha, beta) (paper Eq. 6).
double BetaVariance(const BetaParams& params);

/// Solves Eqs. 7-8: the Beta(alpha, beta) whose mean is `mean` and variance
/// is `variance`. Requires 0 < mean < 1 and 0 < variance < mean(1-mean).
Result<BetaParams> FitBetaByMoments(double mean, double variance);

/// The beta-prior form actually shipped in the author's Python module,
/// which uses (1 - mu^2) where paper Eq. 8 has (1 - mu)^2. Provided so the
/// ablation bench can quantify the (negligible) difference.
Result<BetaParams> FitBetaByMomentsPythonErratum(double mean,
                                                 double variance);

/// Variance of Binomial(n, p): n p (1 - p) (paper Eq. 2).
double BinomialVariance(double n, double p);

/// Prior moments of P_ij under the hypergeometric edge-generation story
/// (paper Sec. IV):
///   E[P_ij] = ni. n.j / n..^2
///   V[P_ij] = ni. n.j (n.. - ni.)(n.. - n.j) / (n..^4 (n.. - 1)).
struct PriorMoments {
  double mean = 0.0;
  double variance = 0.0;
};
PriorMoments HypergeometricPriorMoments(double ni_out, double nj_in,
                                        double n_total);

}  // namespace netbone

#endif  // NETBONE_STATS_DISTRIBUTIONS_H_
