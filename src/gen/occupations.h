// Copyright 2026 The netbone Authors.
//
// Synthetic O*NET-style occupation suite, the stand-in for the paper's
// Sec. VI case study data (O*NET skill-occupation scores + CPS labor
// flows). Occupations belong to major classes (the "first digit") split
// into minor groups (the "first two digits"); each group has a
// characteristic latent skill profile, while a set of *generic* skills is
// important to nearly every occupation — those generics create the dense
// spurious co-occurrences the backbone must prune.
//
// The paper's pipeline is reproduced exactly:
//  1. O*NET-like scores: every (occupation, skill) pair gets an importance
//     and a level score;
//  2. association filter: keep the pair iff both scores exceed that
//     skill's across-occupation average;
//  3. co-occurrence network: occupations are linked by the number of
//     retained skills they share (undirected counts);
//  4. labor flows: directed switch counts sampled around a
//     size x size x exp(similarity) gravity model.

#ifndef NETBONE_GEN_OCCUPATIONS_H_
#define NETBONE_GEN_OCCUPATIONS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"

namespace netbone {

/// Options for GenerateOccupationWorld.
struct OccupationWorldOptions {
  int32_t num_occupations = 430;
  int32_t num_skills = 180;
  int32_t num_classes = 10;       ///< major groups (first digit)
  int32_t minor_groups_per_class = 3;
  /// Skills important to nearly every occupation. Their shared retention
  /// is what contaminates the co-occurrence counts with cross-class noise
  /// ("certain skills are so generic that they show up in most
  /// occupations, leading to spurious connections").
  int32_t num_generic_skills = 40;
  uint64_t seed = 99;
};

/// The generated suite.
struct OccupationWorld {
  OccupationWorldOptions options;
  std::vector<std::string> names;      ///< "41-3021"-style codes.
  std::vector<int32_t> major_class;    ///< first digit, for node colors.
  std::vector<int32_t> minor_group;    ///< first two digits, for NMI.
  std::vector<double> employment;      ///< occupation size.
  /// Row-major (occupation x skill) O*NET-like scores.
  std::vector<double> importance;
  std::vector<double> level;
  /// retained[o * num_skills + s]: the above-average association filter.
  std::vector<bool> retained;
  /// Undirected skill co-occurrence network (weight = shared skills).
  Graph co_occurrence;
  /// Directed labor flows F_ij (switchers from occupation i to j).
  Graph flows;
  /// Total switches out of each occupation (S_i.) and into it (S_.j) —
  /// the size controls of the paper's flow model.
  std::vector<double> outflow;
  std::vector<double> inflow;

  bool Retained(int32_t occupation, int32_t skill) const {
    return retained[static_cast<size_t>(occupation) *
                        static_cast<size_t>(options.num_skills) +
                    static_cast<size_t>(skill)];
  }
};

/// Generates scores, applies the filter, and builds both networks.
Result<OccupationWorld> GenerateOccupationWorld(
    const OccupationWorldOptions& options);

/// Fits the paper's flow model F_ij = b1 C_ij + b2 S_i. + b3 S_.j + e on
/// the (i, j) pairs selected by `pair_mask` (aligned with
/// world.flows.edges(); empty = all pairs) and returns the correlation
/// between fitted and observed flows (the statistic reported in Sec. VI:
/// 0.390 all pairs, 0.431 DF, 0.454 NC).
Result<double> FlowPredictionCorrelation(const OccupationWorld& world,
                                         const std::vector<bool>& pair_mask);

}  // namespace netbone

#endif  // NETBONE_GEN_OCCUPATIONS_H_
