#include "gen/barabasi_albert.h"

#include <cmath>
#include <unordered_set>
#include <vector>

#include "graph/builder.h"

namespace netbone {

Result<Graph> GenerateBarabasiAlbert(const BarabasiAlbertOptions& options) {
  const NodeId n = options.num_nodes;
  if (n < 3) return Status::InvalidArgument("need at least 3 nodes");
  const double m_target = options.average_degree / 2.0;
  if (m_target <= 0.0 || m_target >= static_cast<double>(n) / 2.0) {
    return Status::InvalidArgument("invalid average degree");
  }

  Rng rng(options.seed);
  // Urn of edge endpoints: drawing uniformly from it is proportional to
  // degree (the preferential attachment kernel).
  std::vector<NodeId> urn;
  GraphBuilder builder(Directedness::kUndirected,
                       DuplicateEdgePolicy::kError, SelfLoopPolicy::kError);
  builder.ReserveNodes(n);

  // Seed triangle so early draws have a non-degenerate urn.
  builder.AddEdge(0, 1, 1.0);
  builder.AddEdge(1, 2, 1.0);
  builder.AddEdge(0, 2, 1.0);
  urn.insert(urn.end(), {0, 1, 0, 2, 1, 2});

  const int base_m = static_cast<int>(std::floor(m_target));
  const double extra_prob = m_target - std::floor(m_target);

  for (NodeId v = 3; v < n; ++v) {
    int edges_to_add = base_m + (rng.Bernoulli(extra_prob) ? 1 : 0);
    edges_to_add = std::max(edges_to_add, 1);
    std::unordered_set<NodeId> chosen;
    int guard = 0;
    while (static_cast<int>(chosen.size()) < edges_to_add &&
           guard++ < 1000) {
      const NodeId target =
          urn[static_cast<size_t>(rng.NextBounded(urn.size()))];
      if (target == v) continue;
      chosen.insert(target);
    }
    for (const NodeId target : chosen) {
      builder.AddEdge(v, target, 1.0);
      urn.push_back(v);
      urn.push_back(target);
    }
  }
  return builder.Build();
}

}  // namespace netbone
