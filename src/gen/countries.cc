#include "gen/countries.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "common/strings.h"
#include "graph/builder.h"

namespace netbone {
namespace {

// Calibrated expected total interaction counts per network. The spread of
// these targets, combined with log-normal country sizes and pair-level
// heterogeneity, reproduces the qualitative weight ranges of paper Fig. 5
// (Trade spanning many decades, Ownership extremely skewed with median ~1).
struct KindProfile {
  double target_total = 0.0;   // sum of latent intensities
  double pair_sigma = 0.0;     // lognormal pair-level heterogeneity
  double noise_total = 0.0;    // total spurious counts spread over pairs
  // Share of the spurious counts that is flat clerical noise (hits any
  // pair equally); the rest is attention noise scaling with country
  // sizes. Small-count stock registries (Ownership) are dominated by
  // size-proportional misattribution, so their flat share is small.
  double flat_noise_share = 0.5;
};

KindProfile ProfileFor(CountryNetworkKind kind) {
  switch (kind) {
    case CountryNetworkKind::kBusiness:
      return {1.0e6, 0.7, 6.0e4, 0.5};
    case CountryNetworkKind::kCountrySpace:
      return {0.0, 0.0, 0.0, 0.0};  // generated from the export matrix
    case CountryNetworkKind::kFlight:
      return {5.0e6, 0.8, 2.0e5, 0.5};
    case CountryNetworkKind::kMigration:
      return {2.0e6, 1.0, 1.0e5, 0.5};
    case CountryNetworkKind::kOwnership:
      return {2.0e5, 2.0, 2.0e4, 0.1};
    case CountryNetworkKind::kTrade:
      // Customs records: spurious counts come mostly from re-export
      // misattribution, which scales with the economies involved.
      return {2.0e7, 1.2, 8.0e5, 0.2};
  }
  return {};
}

double Sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

}  // namespace

double CountryWorld::Distance(NodeId i, NodeId j) const {
  const double dx = x[static_cast<size_t>(i)] - x[static_cast<size_t>(j)];
  const double dy = y[static_cast<size_t>(i)] - y[static_cast<size_t>(j)];
  // 0.02 floor ~ average within-country distance; keeps gravity finite.
  return std::sqrt(dx * dx + dy * dy) + 0.02;
}

Result<CountryWorld> GenerateCountryWorld(
    const CountryWorldOptions& options) {
  if (options.num_countries < 10) {
    return Status::InvalidArgument("need at least 10 countries");
  }
  if (options.num_products < 10) {
    return Status::InvalidArgument("need at least 10 products");
  }
  Rng rng(options.seed);
  CountryWorld world;
  world.options = options;
  const size_t n = static_cast<size_t>(options.num_countries);

  // Region centers spread over the unit square; countries scatter around
  // their region's center so that region co-membership and geographic
  // proximity correlate, as they do on the real globe.
  std::vector<double> region_x(static_cast<size_t>(options.num_regions));
  std::vector<double> region_y(static_cast<size_t>(options.num_regions));
  for (int32_t r = 0; r < options.num_regions; ++r) {
    region_x[static_cast<size_t>(r)] = rng.Uniform(0.15, 0.85);
    region_y[static_cast<size_t>(r)] = rng.Uniform(0.15, 0.85);
  }

  world.names.reserve(n);
  world.population.reserve(n);
  world.gdp_per_capita.reserve(n);
  world.complexity.reserve(n);
  world.language.reserve(n);
  world.region.reserve(n);
  world.x.reserve(n);
  world.y.reserve(n);
  for (int32_t c = 0; c < options.num_countries; ++c) {
    world.names.push_back(StrFormat("C%03d", c));
    // Median ~8M people, heavy right tail (dispersion sigma 1.6).
    world.population.push_back(rng.LogNormal(std::log(8.0e6), 1.6));
    const double eci = rng.Gaussian(0.0, 1.0);
    world.complexity.push_back(eci);
    // GDP per capita rises with complexity (the Atlas of Economic
    // Complexity relationship the paper's Country Space model leans on).
    world.gdp_per_capita.push_back(
        std::exp(std::log(8.0e3) + 0.9 * eci + 0.5 * rng.NextGaussian()));
    const int32_t region = static_cast<int32_t>(
        rng.NextBounded(static_cast<uint64_t>(options.num_regions)));
    world.region.push_back(region);
    // Languages cluster within regions: half the languages are "regional".
    const bool regional_language = rng.Bernoulli(0.7);
    const int32_t language =
        regional_language
            ? region % options.num_languages
            : static_cast<int32_t>(rng.NextBounded(
                  static_cast<uint64_t>(options.num_languages)));
    world.language.push_back(language);
    world.x.push_back(region_x[static_cast<size_t>(region)] +
                      rng.Gaussian(0.0, 0.08));
    world.y.push_back(region_y[static_cast<size_t>(region)] +
                      rng.Gaussian(0.0, 0.08));
  }

  // Latent export baskets: country capability vs product difficulty, plus
  // a regional specialization term. Low-difficulty products are exported
  // by nearly everyone and act as the generic "noise" co-occurrences;
  // high-difficulty products are exported only by complex economies; the
  // regional affinity gives node *pairs* genuine above-marginal structure
  // (same-region countries co-export their home products), which is the
  // latent signal backboning should recover in the Country Space.
  const size_t num_products = static_cast<size_t>(options.num_products);
  world.product_difficulty.reserve(num_products);
  std::vector<int32_t> product_home_region(num_products);
  for (size_t p = 0; p < num_products; ++p) {
    world.product_difficulty.push_back(rng.Gaussian(0.0, 1.3));
    product_home_region[p] = static_cast<int32_t>(
        rng.NextBounded(static_cast<uint64_t>(options.num_regions)));
  }
  constexpr double kRegionalAffinity = 2.0;
  world.exports.assign(n * num_products, false);
  for (size_t c = 0; c < n; ++c) {
    const double capability = 1.2 * world.complexity[c];
    for (size_t p = 0; p < num_products; ++p) {
      const double affinity =
          product_home_region[p] == world.region[c] ? kRegionalAffinity
                                                    : 0.0;
      const double logit = capability - world.product_difficulty[p] +
                           affinity + rng.Gaussian(0.0, 0.8);
      world.exports[c * num_products + p] = Sigmoid(logit) > 0.5;
    }
  }
  return world;
}

const std::vector<CountryNetworkKind>& AllCountryNetworkKinds() {
  static const std::vector<CountryNetworkKind> kKinds = {
      CountryNetworkKind::kBusiness,  CountryNetworkKind::kCountrySpace,
      CountryNetworkKind::kFlight,    CountryNetworkKind::kMigration,
      CountryNetworkKind::kOwnership, CountryNetworkKind::kTrade,
  };
  return kKinds;
}

std::string CountryNetworkName(CountryNetworkKind kind) {
  switch (kind) {
    case CountryNetworkKind::kBusiness:
      return "Business";
    case CountryNetworkKind::kCountrySpace:
      return "Country Space";
    case CountryNetworkKind::kFlight:
      return "Flight";
    case CountryNetworkKind::kMigration:
      return "Migration";
    case CountryNetworkKind::kOwnership:
      return "Ownership";
    case CountryNetworkKind::kTrade:
      return "Trade";
  }
  return "Unknown";
}

bool CountryNetworkDirected(CountryNetworkKind kind) {
  return kind != CountryNetworkKind::kCountrySpace;
}

namespace {

/// Latent pair intensity for the gravity-style networks. `pair_noise` is a
/// year-invariant lognormal drawn once per ordered pair.
double LatentIntensity(const CountryWorld& world, CountryNetworkKind kind,
                       NodeId i, NodeId j, double pair_noise,
                       const std::vector<double>* trade_latent) {
  const double dist = world.Distance(i, j);
  const double pop_i = world.population[static_cast<size_t>(i)];
  const double pop_j = world.population[static_cast<size_t>(j)];
  const double gdp_i = world.Gdp(i);
  const double gdp_j = world.Gdp(j);
  const size_t n = world.population.size();
  switch (kind) {
    case CountryNetworkKind::kTrade:
      return std::pow(gdp_i, 1.0) * std::pow(gdp_j, 0.8) /
             std::pow(dist, 1.2) * pair_noise;
    case CountryNetworkKind::kBusiness: {
      // Business travel tracks trade relationships (the paper's Table II
      // uses trade as the Business predictor).
      const double trade =
          (*trade_latent)[static_cast<size_t>(i) * n +
                          static_cast<size_t>(j)];
      return std::pow(trade, 0.85) * pair_noise;
    }
    case CountryNetworkKind::kFlight:
      return std::pow(pop_i, 0.9) * std::pow(pop_j, 0.9) /
             std::pow(dist, 1.8) * pair_noise;
    case CountryNetworkKind::kMigration: {
      const bool same_lang = world.language[static_cast<size_t>(i)] ==
                             world.language[static_cast<size_t>(j)];
      const bool same_region = world.region[static_cast<size_t>(i)] ==
                               world.region[static_cast<size_t>(j)];
      return std::pow(pop_i, 0.8) * std::pow(pop_j, 0.6) /
             std::pow(dist, 0.9) *
             std::exp((same_lang ? 1.2 : 0.0) + (same_region ? 0.8 : 0.0)) *
             pair_noise;
    }
    case CountryNetworkKind::kOwnership:
      return std::pow(gdp_i, 1.3) * std::pow(gdp_j, 0.7) /
             std::pow(dist, 0.5) * pair_noise;
    case CountryNetworkKind::kCountrySpace:
      return 0.0;  // handled separately
  }
  return 0.0;
}

Result<TemporalNetwork> GenerateCountrySpace(
    const CountryWorld& world, const CountryNetworkOptions& options) {
  Rng rng(options.seed ^ 0xC0FFEEULL);
  const int32_t n = world.options.num_countries;
  const size_t num_products =
      static_cast<size_t>(world.options.num_products);

  std::vector<Graph> years;
  for (int32_t year = 0; year < options.num_years; ++year) {
    // Yearly observation: the latent basket with measurement error. True
    // exports are missed with prob 0.06; false positives appear with a
    // probability that grows as products get more generic, seeding the
    // spurious co-occurrences backboning must remove.
    std::vector<bool> observed(static_cast<size_t>(n) * num_products);
    for (size_t c = 0; c < static_cast<size_t>(n); ++c) {
      for (size_t p = 0; p < num_products; ++p) {
        const bool latent = world.exports[c * num_products + p];
        const double generic =
            Sigmoid(-world.product_difficulty[p]);  // 1 = generic
        const double flip_on = options.noise_scale * 0.05 * generic;
        const double flip_off = 0.06;
        observed[c * num_products + p] =
            latent ? !rng.Bernoulli(flip_off) : rng.Bernoulli(flip_on);
      }
    }
    GraphBuilder builder(Directedness::kUndirected,
                         DuplicateEdgePolicy::kError, SelfLoopPolicy::kDrop);
    builder.ReserveNodes(n);
    for (NodeId i = 0; i < n; ++i) builder.InternLabel(world.names[i]);
    for (NodeId i = 0; i < n; ++i) {
      for (NodeId j = i + 1; j < n; ++j) {
        int64_t shared = 0;
        const size_t base_i = static_cast<size_t>(i) * num_products;
        const size_t base_j = static_cast<size_t>(j) * num_products;
        for (size_t p = 0; p < num_products; ++p) {
          if (observed[base_i + p] && observed[base_j + p]) ++shared;
        }
        if (shared > 0) {
          builder.AddEdge(i, j, static_cast<double>(shared));
        }
      }
    }
    NETBONE_ASSIGN_OR_RETURN(Graph g, builder.Build());
    years.push_back(std::move(g));
  }
  return TemporalNetwork::Create(std::move(years), "Country Space");
}

}  // namespace

Result<TemporalNetwork> GenerateCountryNetwork(
    const CountryWorld& world, CountryNetworkKind kind,
    const CountryNetworkOptions& options,
    std::vector<double>* latent_out) {
  if (options.num_years < 1) {
    return Status::InvalidArgument("need at least one year");
  }
  if (kind == CountryNetworkKind::kCountrySpace) {
    if (latent_out != nullptr) latent_out->clear();
    return GenerateCountrySpace(world, options);
  }

  const int32_t n = world.options.num_countries;
  const size_t n_sz = static_cast<size_t>(n);
  const KindProfile profile = ProfileFor(kind);
  Rng rng(options.seed ^ (static_cast<uint64_t>(kind) * 0x9E37ULL + 1));

  // Asymmetric panel coverage, as in the paper's proprietary sources: the
  // Mastercard (Business), OAG (Flight) and D&B (Ownership) panels do not
  // observe every country as an *origin* (issuer / reporting carrier /
  // headquarters registry). The smallest economies emit nothing in these
  // networks while still appearing as destinations — which is exactly why
  // the paper could not compute the Doubly Stochastic transformation for
  // these three networks ("n/a" in Table II).
  std::vector<bool> origin_covered(n_sz, true);
  if (kind == CountryNetworkKind::kBusiness ||
      kind == CountryNetworkKind::kFlight ||
      kind == CountryNetworkKind::kOwnership) {
    std::vector<int32_t> by_population(n);
    for (int32_t c = 0; c < n; ++c) by_population[static_cast<size_t>(c)] = c;
    std::sort(by_population.begin(), by_population.end(),
              [&](int32_t a, int32_t b) {
                return world.population[static_cast<size_t>(a)] <
                       world.population[static_cast<size_t>(b)];
              });
    const int32_t uncovered = std::max<int32_t>(1, n / 12);
    for (int32_t i = 0; i < uncovered; ++i) {
      origin_covered[static_cast<size_t>(
          by_population[static_cast<size_t>(i)])] = false;
    }
  }

  // Year-invariant pair heterogeneity; for Business the Trade latent field
  // is materialized first (with its own deterministic sub-stream).
  std::vector<double> trade_latent;
  if (kind == CountryNetworkKind::kBusiness) {
    Rng trade_rng(options.seed ^
                  (static_cast<uint64_t>(CountryNetworkKind::kTrade) *
                       0x9E37ULL +
                   1));
    const KindProfile trade_profile = ProfileFor(CountryNetworkKind::kTrade);
    trade_latent.assign(n_sz * n_sz, 0.0);
    double total = 0.0;
    for (NodeId i = 0; i < n; ++i) {
      for (NodeId j = 0; j < n; ++j) {
        if (i == j) continue;
        const double noise =
            trade_rng.LogNormal(0.0, trade_profile.pair_sigma);
        const double value = LatentIntensity(
            world, CountryNetworkKind::kTrade, i, j, noise, nullptr);
        trade_latent[static_cast<size_t>(i) * n_sz +
                     static_cast<size_t>(j)] = value;
        total += value;
      }
    }
    const double scale = trade_profile.target_total / total;
    for (double& v : trade_latent) v *= scale;
  }

  // Latent intensities, normalized to the calibrated total.
  std::vector<double> latent(n_sz * n_sz, 0.0);
  double total = 0.0;
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = 0; j < n; ++j) {
      if (i == j) continue;
      const double noise = rng.LogNormal(0.0, profile.pair_sigma);
      const double value = LatentIntensity(world, kind, i, j, noise,
                                           &trade_latent);
      latent[static_cast<size_t>(i) * n_sz + static_cast<size_t>(j)] = value;
      total += value;
    }
  }
  const double scale = profile.target_total / total;
  for (double& v : latent) v *= scale;
  if (latent_out != nullptr) *latent_out = latent;

  // Spurious noise floor, a mixture of two realistic error processes:
  // attention bias (misrecorded interactions scale with country sizes)
  // and flat clerical noise (code misassignments hit any pair equally).
  // The flat component is what separates noise-aware backbones from pure
  // normalization: bilateral rescaling (DS) inflates small-count noise
  // between small countries, while the NC posterior variance discounts it.
  std::vector<double> noise_floor(n_sz * n_sz, 0.0);
  if (options.noise_scale > 0.0) {
    double attention_mass = 0.0;
    for (NodeId i = 0; i < n; ++i) {
      for (NodeId j = 0; j < n; ++j) {
        if (i == j) continue;
        const double mass =
            std::sqrt(world.population[static_cast<size_t>(i)]) *
            std::sqrt(world.population[static_cast<size_t>(j)]);
        noise_floor[static_cast<size_t>(i) * n_sz +
                    static_cast<size_t>(j)] = mass;
        attention_mass += mass;
      }
    }
    const double attention_total = (1.0 - profile.flat_noise_share) *
                                   options.noise_scale *
                                   profile.noise_total;
    const double flat_total = profile.flat_noise_share *
                              options.noise_scale * profile.noise_total;
    const double pairs = static_cast<double>(n) * (n - 1.0);
    const double attention_scale = attention_total / attention_mass;
    // Clerical noise is *persistent*: a pair mismeasured this year tends
    // to be mismeasured the same way next year (fixed reporting quirks),
    // so each pair gets its own year-invariant rate. exp(N(0,1)) has mean
    // exp(0.5); divide it out to keep the calibrated total.
    const double flat_rate = flat_total / (pairs * std::exp(0.5));
    for (NodeId i = 0; i < n; ++i) {
      for (NodeId j = 0; j < n; ++j) {
        if (i == j) continue;
        double& v =
            noise_floor[static_cast<size_t>(i) * n_sz +
                        static_cast<size_t>(j)];
        v = v * attention_scale + flat_rate * rng.LogNormal(0.0, 1.0);
      }
    }
  }

  // Stocks (migrant populations, establishment registries) persist from
  // year to year with birth/death churn; flows are re-realized each year.
  const bool is_stock = kind == CountryNetworkKind::kMigration ||
                        kind == CountryNetworkKind::kOwnership;
  constexpr double kStockChurn = 0.08;

  std::vector<int64_t> stock(is_stock ? n_sz * n_sz : 0, 0);
  std::vector<Graph> years;
  for (int32_t year = 0; year < options.num_years; ++year) {
    // Smooth country-level drift: economies grow or shrink a few percent
    // per year, moving whole rows/columns together.
    std::vector<double> drift(n_sz);
    for (size_t c = 0; c < n_sz; ++c) {
      drift[c] = std::exp(rng.Gaussian(0.0, 0.08));
    }
    GraphBuilder builder(Directedness::kDirected,
                         DuplicateEdgePolicy::kError, SelfLoopPolicy::kDrop);
    builder.ReserveNodes(n);
    for (NodeId i = 0; i < n; ++i) builder.InternLabel(world.names[i]);
    for (NodeId i = 0; i < n; ++i) {
      if (!origin_covered[static_cast<size_t>(i)]) continue;
      for (NodeId j = 0; j < n; ++j) {
        if (i == j) continue;
        const size_t idx =
            static_cast<size_t>(i) * n_sz + static_cast<size_t>(j);
        const double mean = latent[idx] * drift[static_cast<size_t>(i)] *
                                drift[static_cast<size_t>(j)] +
                            noise_floor[idx];
        int64_t count;
        if (is_stock) {
          if (year == 0) {
            stock[idx] = rng.Poisson(mean);
          } else {
            // Births arrive at churn * rate; each existing unit dies with
            // probability churn. The stationary level stays at `mean`
            // while consecutive years remain strongly autocorrelated.
            stock[idx] += rng.Poisson(kStockChurn * mean) -
                          rng.Binomial(stock[idx], kStockChurn);
            if (stock[idx] < 0) stock[idx] = 0;
          }
          count = stock[idx];
        } else {
          count = rng.Poisson(mean);
        }
        if (count > 0) {
          builder.AddEdge(i, j, static_cast<double>(count));
        }
      }
    }
    NETBONE_ASSIGN_OR_RETURN(Graph g, builder.Build());
    years.push_back(std::move(g));
  }
  return TemporalNetwork::Create(std::move(years),
                                 CountryNetworkName(kind));
}

Result<CountrySuite> GenerateCountrySuite(uint64_t seed, int32_t num_years,
                                          int32_t num_countries) {
  CountryWorldOptions world_options;
  world_options.num_countries = num_countries;
  world_options.seed = seed;
  CountrySuite suite;
  NETBONE_ASSIGN_OR_RETURN(suite.world,
                           GenerateCountryWorld(world_options));

  std::vector<double> ownership_latent;
  for (const CountryNetworkKind kind : AllCountryNetworkKinds()) {
    CountryNetworkOptions options;
    options.num_years = num_years;
    options.seed = seed + 17;
    NETBONE_ASSIGN_OR_RETURN(
        TemporalNetwork network,
        GenerateCountryNetwork(suite.world, kind, options,
                               kind == CountryNetworkKind::kOwnership
                                   ? &ownership_latent
                                   : nullptr));
    suite.networks.push_back(std::move(network));
  }

  // FDI: an *independent* measurement of the latent investment intensity
  // behind the Ownership network (fDi Markets vs Dun & Bradstreet in the
  // paper) — its own multiplicative measurement error, not a copy of the
  // observed establishment counts.
  const size_t n = static_cast<size_t>(num_countries);
  Rng fdi_rng(seed ^ 0xFD1ULL);
  suite.fdi.assign(n * n, 0.0);
  for (size_t idx = 0; idx < ownership_latent.size(); ++idx) {
    if (ownership_latent[idx] > 0.0) {
      suite.fdi[idx] = ownership_latent[idx] *
                       fdi_rng.LogNormal(std::log(50.0), 0.5);
    }
  }
  return suite;
}

Result<PredictorTable> CountryPredictors(const CountrySuite& suite,
                                         CountryNetworkKind kind,
                                         const Graph& snapshot) {
  const CountryWorld& world = suite.world;
  PredictorTable table;
  const size_t num_edges = static_cast<size_t>(snapshot.num_edges());
  const size_t n = world.population.size();

  // Each column is materialized locally and then moved into the table;
  // holding references into table.columns across push_backs would dangle.
  const auto add_column = [&](std::string name,
                              std::vector<double> values) {
    table.names.push_back(std::move(name));
    table.columns.push_back(std::move(values));
  };
  const auto per_edge = [&](auto&& fn) {
    std::vector<double> column;
    column.reserve(num_edges);
    for (const Edge& e : snapshot.edges()) column.push_back(fn(e));
    return column;
  };

  add_column("log_distance", per_edge([&](const Edge& e) {
               return std::log(world.Distance(e.src, e.dst));
             }));

  const bool use_population = kind != CountryNetworkKind::kCountrySpace &&
                              kind != CountryNetworkKind::kOwnership;
  if (use_population) {
    add_column("log_pop_origin", per_edge([&](const Edge& e) {
                 return std::log(
                     world.population[static_cast<size_t>(e.src)]);
               }));
    add_column("log_pop_destination", per_edge([&](const Edge& e) {
                 return std::log(
                     world.population[static_cast<size_t>(e.dst)]);
               }));
  }

  switch (kind) {
    case CountryNetworkKind::kBusiness: {
      const Graph& trade =
          suite.network(CountryNetworkKind::kTrade).front();
      add_column("log_trade", per_edge([&](const Edge& e) {
                   return std::log1p(trade.WeightOf(e.src, e.dst));
                 }));
      break;
    }
    case CountryNetworkKind::kCountrySpace:
      add_column("eci_i", per_edge([&](const Edge& e) {
                   return world.complexity[static_cast<size_t>(e.src)];
                 }));
      add_column("eci_j", per_edge([&](const Edge& e) {
                   return world.complexity[static_cast<size_t>(e.dst)];
                 }));
      break;
    case CountryNetworkKind::kFlight:
      break;  // gravity controls suffice (paper: "no additional variable")
    case CountryNetworkKind::kMigration:
      add_column("same_language", per_edge([&](const Edge& e) {
                   return world.language[static_cast<size_t>(e.src)] ==
                                  world.language[static_cast<size_t>(e.dst)]
                              ? 1.0
                              : 0.0;
                 }));
      add_column("same_region", per_edge([&](const Edge& e) {
                   return world.region[static_cast<size_t>(e.src)] ==
                                  world.region[static_cast<size_t>(e.dst)]
                              ? 1.0
                              : 0.0;
                 }));
      break;
    case CountryNetworkKind::kOwnership:
      add_column("log_fdi", per_edge([&](const Edge& e) {
                   return std::log1p(
                       suite.fdi[static_cast<size_t>(e.src) * n +
                                 static_cast<size_t>(e.dst)]);
                 }));
      break;
    case CountryNetworkKind::kTrade: {
      const Graph& business =
          suite.network(CountryNetworkKind::kBusiness).front();
      add_column("log_business", per_edge([&](const Edge& e) {
                   return std::log1p(business.WeightOf(e.src, e.dst));
                 }));
      break;
    }
  }
  return table;
}

}  // namespace netbone
