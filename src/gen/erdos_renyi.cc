#include "gen/erdos_renyi.h"

#include <cmath>
#include <unordered_set>

#include "graph/builder.h"

namespace netbone {

Result<Graph> GenerateErdosRenyi(const ErdosRenyiOptions& options) {
  const int64_t n = options.num_nodes;
  if (n < 2) return Status::InvalidArgument("need at least 2 nodes");
  if (options.average_degree <= 0.0) {
    return Status::InvalidArgument("average degree must be positive");
  }
  const bool directed = options.directedness == Directedness::kDirected;
  const double raw_edges = directed
                               ? options.average_degree * static_cast<double>(n)
                               : options.average_degree *
                                     static_cast<double>(n) / 2.0;
  const int64_t target_edges = static_cast<int64_t>(std::llround(raw_edges));
  const double max_pairs = directed
                               ? static_cast<double>(n) *
                                     static_cast<double>(n - 1)
                               : static_cast<double>(n) *
                                     static_cast<double>(n - 1) / 2.0;
  if (static_cast<double>(target_edges) > max_pairs) {
    return Status::InvalidArgument("average degree exceeds graph capacity");
  }

  Rng rng(options.seed);
  std::unordered_set<uint64_t> seen;
  seen.reserve(static_cast<size_t>(target_edges) * 2);
  GraphBuilder builder(options.directedness, DuplicateEdgePolicy::kError,
                       SelfLoopPolicy::kError);
  builder.ReserveNodes(options.num_nodes);

  int64_t accepted = 0;
  while (accepted < target_edges) {
    NodeId a = static_cast<NodeId>(rng.NextBounded(static_cast<uint64_t>(n)));
    NodeId b = static_cast<NodeId>(rng.NextBounded(static_cast<uint64_t>(n)));
    if (a == b) continue;
    if (!directed && a > b) std::swap(a, b);
    const uint64_t key = (static_cast<uint64_t>(a) << 32) |
                         static_cast<uint64_t>(static_cast<uint32_t>(b));
    if (!seen.insert(key).second) continue;
    builder.AddEdge(a, b, rng.Uniform(options.weight_lo, options.weight_hi));
    ++accepted;
  }
  return builder.Build();
}

}  // namespace netbone
