// Copyright 2026 The netbone Authors.
//
// Planted-partition generator: k equal blocks, dense heavy edges inside
// blocks, sparse light edges across. Ground truth for the community
// substrate's tests and the Fig. 1-style "backbone reveals communities"
// demonstration.

#ifndef NETBONE_GEN_PLANTED_PARTITION_H_
#define NETBONE_GEN_PLANTED_PARTITION_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"

namespace netbone {

/// Options for GeneratePlantedPartition.
struct PlantedPartitionOptions {
  NodeId num_nodes = 150;
  int32_t num_blocks = 5;
  /// Probability of an intra-block edge and its mean (Poisson) weight.
  double p_in = 0.6;
  double mean_weight_in = 20.0;
  /// Probability of an inter-block edge and its mean (Poisson) weight.
  double p_out = 0.9;
  double mean_weight_out = 4.0;
  uint64_t seed = 7;
};

/// Output: the weighted graph plus the planted block of each node.
struct PlantedPartition {
  Graph graph;
  std::vector<int32_t> block;
};

/// Generates the graph. Defaults mimic Fig. 1: nearly every pair connected,
/// but intra-block edges are systematically heavier.
Result<PlantedPartition> GeneratePlantedPartition(
    const PlantedPartitionOptions& options);

}  // namespace netbone

#endif  // NETBONE_GEN_PLANTED_PARTITION_H_
