#include "gen/occupations.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "common/strings.h"
#include "graph/builder.h"
#include "stats/correlation.h"
#include "stats/ols.h"

namespace netbone {

Result<OccupationWorld> GenerateOccupationWorld(
    const OccupationWorldOptions& options) {
  if (options.num_occupations < options.num_classes) {
    return Status::InvalidArgument("more classes than occupations");
  }
  if (options.num_generic_skills >= options.num_skills) {
    return Status::InvalidArgument("generic skills must be a subset");
  }
  Rng rng(options.seed);
  OccupationWorld world;
  world.options = options;
  const size_t n = static_cast<size_t>(options.num_occupations);
  const size_t s = static_cast<size_t>(options.num_skills);
  const int32_t num_minor =
      options.num_classes * options.minor_groups_per_class;

  // Assign each non-generic skill to a home minor group; minor groups of
  // the same class share a class-level pool, giving two nested scales of
  // similarity (class > minor group > unrelated).
  const int32_t specialist_skills =
      options.num_skills - options.num_generic_skills;
  std::vector<int32_t> skill_home(s, -1);  // -1 = generic
  for (int32_t k = 0; k < specialist_skills; ++k) {
    skill_home[static_cast<size_t>(k)] = k % num_minor;
  }
  // The last num_generic_skills entries stay generic (home -1).

  world.names.reserve(n);
  world.major_class.reserve(n);
  world.minor_group.reserve(n);
  world.employment.reserve(n);
  for (int32_t o = 0; o < options.num_occupations; ++o) {
    const int32_t minor = o % num_minor;
    const int32_t major = minor / options.minor_groups_per_class;
    world.minor_group.push_back(minor);
    world.major_class.push_back(major);
    world.names.push_back(
        StrFormat("%d%d-%04d", major + 1, minor % 10, o));
    world.employment.push_back(rng.LogNormal(std::log(50.0e3), 1.0));
  }

  // O*NET-like scores on a 0..5 scale. An occupation scores high on its
  // minor group's skills, moderately on its class's skills, high on
  // generic skills regardless of class, low elsewhere.
  world.importance.assign(n * s, 0.0);
  world.level.assign(n * s, 0.0);
  for (size_t o = 0; o < n; ++o) {
    const int32_t minor = world.minor_group[o];
    const int32_t major = world.major_class[o];
    for (size_t sk = 0; sk < s; ++sk) {
      const int32_t home = skill_home[sk];
      double base;
      if (home < 0) {
        base = 3.6;  // generic: everybody needs it
      } else if (home == minor) {
        base = 4.0;
      } else if (home / options.minor_groups_per_class == major) {
        base = 2.6;  // same class, different minor group
      } else {
        base = 1.0;
      }
      const double importance =
          std::clamp(base + rng.Gaussian(0.0, 0.7), 0.0, 5.0);
      const double level =
          std::clamp(base + rng.Gaussian(0.0, 0.9), 0.0, 5.0);
      world.importance[o * s + sk] = importance;
      world.level[o * s + sk] = level;
    }
  }

  // Paper filter: retain (o, sk) iff both scores exceed the skill's
  // across-occupation averages.
  std::vector<double> mean_importance(s, 0.0);
  std::vector<double> mean_level(s, 0.0);
  for (size_t o = 0; o < n; ++o) {
    for (size_t sk = 0; sk < s; ++sk) {
      mean_importance[sk] += world.importance[o * s + sk];
      mean_level[sk] += world.level[o * s + sk];
    }
  }
  for (size_t sk = 0; sk < s; ++sk) {
    mean_importance[sk] /= static_cast<double>(n);
    mean_level[sk] /= static_cast<double>(n);
  }
  world.retained.assign(n * s, false);
  for (size_t o = 0; o < n; ++o) {
    for (size_t sk = 0; sk < s; ++sk) {
      world.retained[o * s + sk] =
          world.importance[o * s + sk] > mean_importance[sk] &&
          world.level[o * s + sk] > mean_level[sk];
    }
  }

  // Co-occurrence network: shared retained skills.
  {
    GraphBuilder builder(Directedness::kUndirected,
                         DuplicateEdgePolicy::kError, SelfLoopPolicy::kDrop);
    builder.ReserveNodes(options.num_occupations);
    for (size_t o = 0; o < n; ++o) builder.InternLabel(world.names[o]);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        int64_t shared = 0;
        for (size_t sk = 0; sk < s; ++sk) {
          if (world.retained[i * s + sk] && world.retained[j * s + sk]) {
            ++shared;
          }
        }
        if (shared > 0) {
          builder.AddEdge(static_cast<NodeId>(i), static_cast<NodeId>(j),
                          static_cast<double>(shared));
        }
      }
    }
    NETBONE_ASSIGN_OR_RETURN(world.co_occurrence, builder.Build());
  }

  // Labor flows: gravity with true (latent) skill similarity. Similarity
  // uses the continuous importance profiles restricted to *specialist*
  // skills — workers switch between occupations sharing actual expertise,
  // not because both need generic skills ("using computers"). The
  // co-occurrence counts the backbone sees are contaminated by generic
  // skills; recovering this specialist coupling from them is the
  // experiment's point.
  {
    std::vector<double> norms(n, 0.0);
    for (size_t o = 0; o < n; ++o) {
      double acc = 0.0;
      for (size_t sk = 0; sk < static_cast<size_t>(specialist_skills);
           ++sk) {
        acc += world.importance[o * s + sk] * world.importance[o * s + sk];
      }
      norms[o] = std::sqrt(acc);
    }
    GraphBuilder builder(Directedness::kDirected,
                         DuplicateEdgePolicy::kError, SelfLoopPolicy::kDrop);
    builder.ReserveNodes(options.num_occupations);
    for (size_t o = 0; o < n; ++o) builder.InternLabel(world.names[o]);
    // Small counts plus idiosyncratic pair-level variation: job switches
    // depend on many unmodeled factors (geography, licensing, vacancies),
    // so skill relatedness explains flows only partially — the paper's
    // all-pairs correlation is 0.390, far from deterministic.
    const double flow_scale = 1.5e-8;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        if (i == j) continue;
        double dot = 0.0;
        for (size_t sk = 0; sk < static_cast<size_t>(specialist_skills);
             ++sk) {
          dot += world.importance[i * s + sk] * world.importance[j * s + sk];
        }
        const double cosine = dot / (norms[i] * norms[j]);
        const double pair_noise = rng.LogNormal(0.0, 1.0);
        const double mean = flow_scale * world.employment[i] *
                            world.employment[j] *
                            std::exp(2.5 * cosine) * pair_noise;
        const int64_t count = rng.Poisson(mean);
        if (count > 0) {
          builder.AddEdge(static_cast<NodeId>(i), static_cast<NodeId>(j),
                          static_cast<double>(count));
        }
      }
    }
    NETBONE_ASSIGN_OR_RETURN(world.flows, builder.Build());
  }

  world.outflow.assign(n, 0.0);
  world.inflow.assign(n, 0.0);
  for (const Edge& e : world.flows.edges()) {
    world.outflow[static_cast<size_t>(e.src)] += e.weight;
    world.inflow[static_cast<size_t>(e.dst)] += e.weight;
  }
  return world;
}

Result<double> FlowPredictionCorrelation(const OccupationWorld& world,
                                         const std::vector<bool>& pair_mask) {
  const Graph& flows = world.flows;
  if (!pair_mask.empty() &&
      static_cast<int64_t>(pair_mask.size()) != flows.num_edges()) {
    return Status::InvalidArgument("mask size != flow edge count");
  }

  std::vector<double> f, c, s_out, s_in;
  for (EdgeId id = 0; id < flows.num_edges(); ++id) {
    if (!pair_mask.empty() && !pair_mask[static_cast<size_t>(id)]) continue;
    const Edge& e = flows.edge(id);
    f.push_back(e.weight);
    c.push_back(world.co_occurrence.WeightOf(e.src, e.dst));
    s_out.push_back(world.outflow[static_cast<size_t>(e.src)]);
    s_in.push_back(world.inflow[static_cast<size_t>(e.dst)]);
  }
  OlsFitter fitter;
  fitter.AddColumn("C_ij", std::move(c));
  fitter.AddColumn("S_i.", std::move(s_out));
  fitter.AddColumn("S_.j", std::move(s_in));
  NETBONE_ASSIGN_OR_RETURN(OlsFit fit, fitter.Fit(f));
  return PearsonCorrelation(fit.fitted, f);
}

}  // namespace netbone
