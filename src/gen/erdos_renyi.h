// Copyright 2026 The netbone Authors.
//
// Erdős–Rényi G(n, M) generator with uniform random weights — the workload
// of the paper's scalability experiment (Fig. 9: "Erdős–Rényi graphs, with
// uniform random weights. We set the average degree of a node to three").

#ifndef NETBONE_GEN_ERDOS_RENYI_H_
#define NETBONE_GEN_ERDOS_RENYI_H_

#include <cstdint>

#include "common/random.h"
#include "common/result.h"
#include "graph/graph.h"

namespace netbone {

/// Options for GenerateErdosRenyi.
struct ErdosRenyiOptions {
  NodeId num_nodes = 1000;
  /// Expected average degree; edge count M = n * avg_degree / 2 for
  /// undirected graphs, n * avg_degree for directed.
  double average_degree = 3.0;
  Directedness directedness = Directedness::kUndirected;
  /// Edge weights are Uniform(weight_lo, weight_hi).
  double weight_lo = 1.0;
  double weight_hi = 100.0;
  uint64_t seed = 1;
};

/// Samples M distinct node pairs uniformly at random (self-loops excluded)
/// and assigns uniform weights. O(M) expected time.
Result<Graph> GenerateErdosRenyi(const ErdosRenyiOptions& options);

}  // namespace netbone

#endif  // NETBONE_GEN_ERDOS_RENYI_H_
