// Copyright 2026 The netbone Authors.
//
// Barabási–Albert preferential attachment — the ground-truth topology of
// the paper's synthetic recovery experiment (Sec. V-A: "several
// Barabasi-Albert random networks with average degree 3 and 200 nodes").

#ifndef NETBONE_GEN_BARABASI_ALBERT_H_
#define NETBONE_GEN_BARABASI_ALBERT_H_

#include <cstdint>

#include "common/random.h"
#include "common/result.h"
#include "graph/graph.h"

namespace netbone {

/// Options for GenerateBarabasiAlbert.
struct BarabasiAlbertOptions {
  NodeId num_nodes = 200;
  /// Target average degree. BA with integer attachment m yields average
  /// degree ~2m; fractional targets are met by attaching floor(m) edges
  /// plus one extra with the fractional probability (m = avg_degree / 2).
  double average_degree = 3.0;
  uint64_t seed = 1;
};

/// Unweighted (weight 1) undirected BA graph grown by preferential
/// attachment over a repeated-endpoints urn.
Result<Graph> GenerateBarabasiAlbert(const BarabasiAlbertOptions& options);

}  // namespace netbone

#endif  // NETBONE_GEN_BARABASI_ALBERT_H_
