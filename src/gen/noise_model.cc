#include "gen/noise_model.h"

#include <unordered_set>

#include "graph/builder.h"

namespace netbone {

Result<NoisyNetwork> ApplySectionVANoise(const Graph& truth, double eta,
                                         uint64_t seed) {
  if (truth.directed()) {
    return Status::InvalidArgument(
        "the Sec. V-A model is defined for undirected graphs");
  }
  if (eta < 0.0 || eta > 1.0) {
    return Status::InvalidArgument("eta must lie in [0, 1]");
  }

  Rng rng(seed);
  const NodeId n = truth.num_nodes();

  std::unordered_set<uint64_t> true_pairs;
  true_pairs.reserve(static_cast<size_t>(truth.num_edges()) * 2);
  for (const Edge& e : truth.edges()) {
    true_pairs.insert((static_cast<uint64_t>(e.src) << 32) |
                      static_cast<uint64_t>(static_cast<uint32_t>(e.dst)));
  }

  const auto degree = [&](NodeId v) {
    return static_cast<double>(truth.out_degree(v));
  };

  GraphBuilder builder(Directedness::kUndirected,
                       DuplicateEdgePolicy::kError, SelfLoopPolicy::kError);
  builder.ReserveNodes(n);
  // Weight every pair; iteration order (i < j) is the canonical edge order
  // of the resulting graph, which lets us align the ground-truth mask by
  // recomputing pair membership after the build.
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) {
      const uint64_t key = (static_cast<uint64_t>(i) << 32) |
                           static_cast<uint64_t>(static_cast<uint32_t>(j));
      const double degree_sum = degree(i) + degree(j);
      const bool is_true = true_pairs.contains(key);
      const double weight = is_true
                                ? degree_sum * rng.Uniform(eta, 1.0)
                                : degree_sum * rng.Uniform(0.0, eta);
      if (weight > 0.0) builder.AddEdge(i, j, weight);
    }
  }

  NoisyNetwork out;
  NETBONE_ASSIGN_OR_RETURN(out.noisy, builder.Build());
  out.ground_truth.assign(static_cast<size_t>(out.noisy.num_edges()), false);
  for (EdgeId id = 0; id < out.noisy.num_edges(); ++id) {
    const Edge& e = out.noisy.edge(id);
    const uint64_t key = (static_cast<uint64_t>(e.src) << 32) |
                         static_cast<uint64_t>(static_cast<uint32_t>(e.dst));
    if (true_pairs.contains(key)) {
      out.ground_truth[static_cast<size_t>(id)] = true;
      ++out.num_true_edges;
    }
  }
  return out;
}

}  // namespace netbone
