// Copyright 2026 The netbone Authors.
//
// The paper's Sec. V-A noise model for synthetic recovery experiments.
// Starting from a ground-truth topology, every true edge gets weight
//
//   N_ij = (k_i + k_j) * U(eta, 1)
//
// (a fraction of at least eta of the endpoint degree sum — broad weights,
// locally correlated with topology), and every non-edge of the complement
// is filled with spurious weight
//
//   N_ij = (k_i + k_j) * U(0, eta)
//
// so that a noisy edge carries at most a fraction eta of the degrees. The
// recovery task: given the dense noisy graph, find the true edge set.

#ifndef NETBONE_GEN_NOISE_MODEL_H_
#define NETBONE_GEN_NOISE_MODEL_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "graph/graph.h"

namespace netbone {

/// Output of ApplySectionVANoise.
struct NoisyNetwork {
  /// The dense graph: true edges + complement noise.
  Graph noisy;
  /// keep[id] == true iff noisy.edge(id) is a ground-truth edge.
  std::vector<bool> ground_truth;
  /// Number of ground-truth edges.
  int64_t num_true_edges = 0;
};

/// Applies the Sec. V-A weighting to `truth` (undirected, unweighted
/// topology) with noise level `eta` in [0, 1].
Result<NoisyNetwork> ApplySectionVANoise(const Graph& truth, double eta,
                                         uint64_t seed);

}  // namespace netbone

#endif  // NETBONE_GEN_NOISE_MODEL_H_
