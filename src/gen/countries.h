// Copyright 2026 The netbone Authors.
//
// Synthetic country-network suite, the stand-in for the paper's six
// proprietary/licensed country-country datasets (Sec. V-B). A latent world
// of countries (populations, GDP, positions, languages, regions, export
// baskets) generates six networks of the same types the paper studies:
//
//   Business       directed flow   (corporate travel, coupled to Trade)
//   Country Space  undirected co-occurrence (shared significant exports)
//   Flight         directed flow   (passenger capacity, pure gravity)
//   Migration      directed stock  (migrant stocks, cultural affinity)
//   Ownership      directed stock  (establishments, FDI-driven, extreme skew)
//   Trade          directed flow   (export values, widest weight range)
//
// Each network is observed in several "years": counts are drawn around the
// latent intensity (Poisson), with per-country yearly drift and a dense
// spurious noise floor that makes the raw networks hairballs — precisely
// the regime backboning targets. The latent variables double as the
// ground-truth predictors of the paper's Quality experiment (Table II).
// DESIGN.md §4 documents why this substitution preserves the evaluated
// behaviour.

#ifndef NETBONE_GEN_COUNTRIES_H_
#define NETBONE_GEN_COUNTRIES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"
#include "graph/temporal.h"

namespace netbone {

/// Options for GenerateCountryWorld.
struct CountryWorldOptions {
  int32_t num_countries = 190;
  int32_t num_products = 400;
  int32_t num_languages = 12;
  int32_t num_regions = 6;
  uint64_t seed = 42;
};

/// The latent world state shared by all six networks.
struct CountryWorld {
  CountryWorldOptions options;
  std::vector<std::string> names;        ///< "C000"... country labels.
  std::vector<double> population;        ///< persons, log-normal.
  std::vector<double> gdp_per_capita;    ///< $, log-normal, tied to ECI.
  std::vector<double> complexity;        ///< ECI-like score ~ N(0,1).
  std::vector<int32_t> language;         ///< language group id.
  std::vector<int32_t> region;           ///< region id (shared history).
  std::vector<double> x, y;              ///< positions in [0,1]^2.
  /// exports[c * num_products + p]: latent RCA-significant export flag.
  std::vector<bool> exports;
  /// product_difficulty[p]: low = generic product exported by everyone
  /// (the source of spurious co-occurrence in Country Space).
  std::vector<double> product_difficulty;

  /// Geodesic stand-in: Euclidean distance between latent positions plus a
  /// floor that plays the role of within-country distance.
  double Distance(NodeId i, NodeId j) const;
  /// GDP = population * GDP per capita.
  double Gdp(NodeId i) const {
    return population[static_cast<size_t>(i)] *
           gdp_per_capita[static_cast<size_t>(i)];
  }
  bool ExportsProduct(NodeId c, int32_t p) const {
    return exports[static_cast<size_t>(c) *
                       static_cast<size_t>(options.num_products) +
                   static_cast<size_t>(p)];
  }
};

/// Builds the latent world.
Result<CountryWorld> GenerateCountryWorld(const CountryWorldOptions& options);

/// The six network types of the paper, alphabetical as in Sec. V-B.
enum class CountryNetworkKind {
  kBusiness,
  kCountrySpace,
  kFlight,
  kMigration,
  kOwnership,
  kTrade,
};

/// All six kinds in the paper's discussion order.
const std::vector<CountryNetworkKind>& AllCountryNetworkKinds();

/// Display name ("Business", "Country Space", ...).
std::string CountryNetworkName(CountryNetworkKind kind);

/// Country Space is undirected; all others are directed.
bool CountryNetworkDirected(CountryNetworkKind kind);

/// Options for GenerateCountryNetwork.
struct CountryNetworkOptions {
  int32_t num_years = 3;
  uint64_t seed = 1;
  /// Multiplier on the spurious noise floor (1 = calibrated default;
  /// 0 = noiseless latent counts). Exposed for noise-sensitivity studies.
  double noise_scale = 1.0;
};

/// Samples `num_years` observations of one network type from the world.
/// When `latent_out` is non-null it receives the year-invariant latent
/// intensity matrix (row-major n x n; zero for Country Space, whose
/// latent state is the export matrix) — used to build independent
/// measurements of the same construct, e.g. the FDI predictor.
Result<TemporalNetwork> GenerateCountryNetwork(
    const CountryWorld& world, CountryNetworkKind kind,
    const CountryNetworkOptions& options,
    std::vector<double>* latent_out = nullptr);

/// The full suite: the world, one TemporalNetwork per kind (indexed by the
/// enum order), and the latent FDI matrix used as the Ownership predictor.
struct CountrySuite {
  CountryWorld world;
  std::vector<TemporalNetwork> networks;
  /// fdi[i * n + j]: latent greenfield-investment intensity, the
  /// network-specific regressor of the Ownership quality model.
  std::vector<double> fdi;

  const TemporalNetwork& network(CountryNetworkKind kind) const {
    return networks[static_cast<size_t>(kind)];
  }
};

/// Convenience: builds the world and all six temporal networks.
Result<CountrySuite> GenerateCountrySuite(uint64_t seed = 42,
                                          int32_t num_years = 3,
                                          int32_t num_countries = 190);

/// The network-specific predictor columns of the paper's Quality models
/// (Sec. V-E), evaluated for every edge of `snapshot`:
///   all kinds         log(distance)
///   flows & stocks    log(pop_origin), log(pop_destination)
///   Business          log(1 + trade flow)
///   Country Space     ECI of both endpoints
///   Migration         same-language and same-region indicators
///   Ownership         log(1 + FDI)
///   Trade             log(1 + business travel)
/// Columns are returned in a fixed order with matching `names`.
struct PredictorTable {
  std::vector<std::string> names;
  std::vector<std::vector<double>> columns;
};
Result<PredictorTable> CountryPredictors(const CountrySuite& suite,
                                         CountryNetworkKind kind,
                                         const Graph& snapshot);

}  // namespace netbone

#endif  // NETBONE_GEN_COUNTRIES_H_
