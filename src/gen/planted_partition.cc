#include "gen/planted_partition.h"

#include "common/random.h"
#include "graph/builder.h"

namespace netbone {

Result<PlantedPartition> GeneratePlantedPartition(
    const PlantedPartitionOptions& options) {
  if (options.num_blocks <= 0 || options.num_nodes < options.num_blocks) {
    return Status::InvalidArgument("need num_nodes >= num_blocks >= 1");
  }
  Rng rng(options.seed);
  PlantedPartition out;
  out.block.resize(static_cast<size_t>(options.num_nodes));
  for (NodeId v = 0; v < options.num_nodes; ++v) {
    out.block[static_cast<size_t>(v)] = v % options.num_blocks;
  }

  GraphBuilder builder(Directedness::kUndirected,
                       DuplicateEdgePolicy::kError, SelfLoopPolicy::kError);
  builder.ReserveNodes(options.num_nodes);
  for (NodeId i = 0; i < options.num_nodes; ++i) {
    for (NodeId j = i + 1; j < options.num_nodes; ++j) {
      const bool same =
          out.block[static_cast<size_t>(i)] ==
          out.block[static_cast<size_t>(j)];
      const double p = same ? options.p_in : options.p_out;
      const double mean_weight =
          same ? options.mean_weight_in : options.mean_weight_out;
      if (!rng.Bernoulli(p)) continue;
      // 1 + Poisson keeps realized edges strictly positive.
      const double weight =
          1.0 + static_cast<double>(rng.Poisson(mean_weight));
      builder.AddEdge(i, j, weight);
    }
  }
  NETBONE_ASSIGN_OR_RETURN(out.graph, builder.Build());
  return out;
}

}  // namespace netbone
