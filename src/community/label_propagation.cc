#include "community/label_propagation.h"

#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "graph/adjacency.h"

namespace netbone {

Result<Partition> LabelPropagation(const Graph& graph,
                                   const LabelPropagationOptions& options) {
  const NodeId n = graph.num_nodes();
  if (n == 0) return Status::FailedPrecondition("empty graph");
  const Adjacency adjacency(graph);
  Rng rng(options.seed);

  std::vector<int32_t> label(static_cast<size_t>(n));
  for (NodeId v = 0; v < n; ++v) label[static_cast<size_t>(v)] = v;

  std::vector<NodeId> order(static_cast<size_t>(n));
  for (NodeId v = 0; v < n; ++v) order[static_cast<size_t>(v)] = v;

  std::unordered_map<int32_t, double> votes;
  for (int64_t sweep = 0; sweep < options.max_sweeps; ++sweep) {
    rng.Shuffle(&order);
    bool changed = false;
    for (const NodeId v : order) {
      votes.clear();
      // For directed graphs, both arc directions count as ties.
      for (const Arc& arc : adjacency.out_arcs(v)) {
        votes[label[static_cast<size_t>(arc.neighbor)]] += arc.weight;
      }
      if (graph.directed()) {
        for (const Arc& arc : adjacency.in_arcs(v)) {
          votes[label[static_cast<size_t>(arc.neighbor)]] += arc.weight;
        }
      }
      if (votes.empty()) continue;
      int32_t best_label = label[static_cast<size_t>(v)];
      double best_weight = -1.0;
      for (const auto& [candidate, weight] : votes) {
        // Deterministic tie-break on the smaller label id.
        if (weight > best_weight ||
            (weight == best_weight && candidate < best_label)) {
          best_label = candidate;
          best_weight = weight;
        }
      }
      if (best_label != label[static_cast<size_t>(v)]) {
        label[static_cast<size_t>(v)] = best_label;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return Partition(std::move(label));
}

}  // namespace netbone
