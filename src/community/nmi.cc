#include "community/nmi.h"

#include <cmath>
#include <unordered_map>
#include <vector>

namespace netbone {
namespace {

double Log2Safe(double x) { return x > 0.0 ? std::log2(x) : 0.0; }

}  // namespace

double PartitionEntropy(const Partition& partition) {
  const double n = static_cast<double>(partition.num_nodes());
  if (n == 0.0) return 0.0;
  double h = 0.0;
  for (const int64_t size : partition.CommunitySizes()) {
    const double p = static_cast<double>(size) / n;
    h -= p * Log2Safe(p);
  }
  return h;
}

Result<double> MutualInformation(const Partition& a, const Partition& b) {
  if (a.num_nodes() != b.num_nodes()) {
    return Status::InvalidArgument("partition size mismatch");
  }
  const double n = static_cast<double>(a.num_nodes());
  if (n == 0.0) return 0.0;

  std::unordered_map<int64_t, int64_t> joint;
  for (NodeId v = 0; v < a.num_nodes(); ++v) {
    const int64_t key =
        (static_cast<int64_t>(a.of(v)) << 32) | static_cast<int64_t>(b.of(v));
    joint[key]++;
  }
  const std::vector<int64_t> sizes_a = a.CommunitySizes();
  const std::vector<int64_t> sizes_b = b.CommunitySizes();

  double information = 0.0;
  for (const auto& [key, count] : joint) {
    const int32_t ca = static_cast<int32_t>(key >> 32);
    const int32_t cb = static_cast<int32_t>(key & 0xFFFFFFFF);
    const double p_joint = static_cast<double>(count) / n;
    const double p_a = static_cast<double>(sizes_a[static_cast<size_t>(ca)]) / n;
    const double p_b = static_cast<double>(sizes_b[static_cast<size_t>(cb)]) / n;
    information += p_joint * Log2Safe(p_joint / (p_a * p_b));
  }
  return information;
}

Result<double> NormalizedMutualInformation(const Partition& a,
                                           const Partition& b) {
  NETBONE_ASSIGN_OR_RETURN(const double information, MutualInformation(a, b));
  const double ha = PartitionEntropy(a);
  const double hb = PartitionEntropy(b);
  if (ha == 0.0 && hb == 0.0) {
    // Both trivial: identical by convention.
    return 1.0;
  }
  if (ha + hb == 0.0) return 0.0;
  return 2.0 * information / (ha + hb);
}

}  // namespace netbone
