#include "community/map_equation.h"

#include <cmath>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "graph/adjacency.h"
#include "graph/transform.h"

namespace netbone {
namespace {

double PLogP(double p) { return p > 0.0 ? p * std::log2(p) : 0.0; }

/// Shared flow quantities for the undirected map equation.
struct Flow {
  std::vector<double> node_visit;  // p_alpha = s_alpha / 2W
  double two_w = 0.0;
};

Result<Flow> ComputeFlow(const Graph& graph) {
  if (graph.num_nodes() == 0) {
    return Status::FailedPrecondition("empty graph");
  }
  if (!(graph.total_weight() > 0.0)) {
    return Status::FailedPrecondition("graph total weight is zero");
  }
  Flow flow;
  flow.two_w = 2.0 * graph.total_weight();
  flow.node_visit.resize(static_cast<size_t>(graph.num_nodes()));
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    flow.node_visit[static_cast<size_t>(v)] =
        graph.out_strength(v) / flow.two_w;
  }
  return flow;
}

}  // namespace

Result<double> OneLevelCodelength(const Graph& graph) {
  Graph undirected_storage;
  const Graph* work = &graph;
  if (graph.directed()) {
    NETBONE_ASSIGN_OR_RETURN(undirected_storage, Symmetrize(graph));
    work = &undirected_storage;
  }
  NETBONE_ASSIGN_OR_RETURN(const Flow flow, ComputeFlow(*work));
  double h = 0.0;
  for (const double p : flow.node_visit) h -= PLogP(p);
  return h;
}

Result<double> MapEquationCodelength(const Graph& graph,
                                     const Partition& partition) {
  Graph undirected_storage;
  const Graph* work = &graph;
  if (graph.directed()) {
    NETBONE_ASSIGN_OR_RETURN(undirected_storage, Symmetrize(graph));
    work = &undirected_storage;
  }
  if (partition.num_nodes() != work->num_nodes()) {
    return Status::InvalidArgument("partition / graph node count mismatch");
  }
  NETBONE_ASSIGN_OR_RETURN(const Flow flow, ComputeFlow(*work));

  const size_t k = static_cast<size_t>(partition.num_communities());
  std::vector<double> module_p(k, 0.0);
  std::vector<double> module_exit(k, 0.0);  // q_m
  for (NodeId v = 0; v < work->num_nodes(); ++v) {
    module_p[static_cast<size_t>(partition.of(v))] +=
        flow.node_visit[static_cast<size_t>(v)];
  }
  for (const Edge& e : work->edges()) {
    if (e.src == e.dst) continue;
    const int32_t cs = partition.of(e.src);
    const int32_t cd = partition.of(e.dst);
    if (cs != cd) {
      module_exit[static_cast<size_t>(cs)] += e.weight / flow.two_w;
      module_exit[static_cast<size_t>(cd)] += e.weight / flow.two_w;
    }
  }

  // L = plogp(q) - 2 sum_m plogp(q_m) + sum_m plogp(q_m + p_m)
  //     - sum_alpha plogp(p_alpha)
  double q = 0.0;
  double sum_plogp_exit = 0.0;
  double sum_plogp_total = 0.0;
  for (size_t m = 0; m < k; ++m) {
    q += module_exit[m];
    sum_plogp_exit += PLogP(module_exit[m]);
    sum_plogp_total += PLogP(module_exit[m] + module_p[m]);
  }
  double sum_plogp_nodes = 0.0;
  for (const double p : flow.node_visit) sum_plogp_nodes += PLogP(p);

  return PLogP(q) - 2.0 * sum_plogp_exit + sum_plogp_total -
         sum_plogp_nodes;
}

Result<Partition> GreedyInfomap(const Graph& graph,
                                const GreedyInfomapOptions& options) {
  Graph undirected_storage;
  const Graph* work = &graph;
  if (graph.directed()) {
    NETBONE_ASSIGN_OR_RETURN(undirected_storage, Symmetrize(graph));
    work = &undirected_storage;
  }
  NETBONE_ASSIGN_OR_RETURN(const Flow flow, ComputeFlow(*work));
  const Adjacency adjacency(*work);
  const NodeId n = work->num_nodes();
  Rng rng(options.seed);

  // Start from singleton modules.
  std::vector<int32_t> module(static_cast<size_t>(n));
  std::vector<double> module_p(static_cast<size_t>(n), 0.0);
  std::vector<double> module_exit(static_cast<size_t>(n), 0.0);
  double q = 0.0;
  for (NodeId v = 0; v < n; ++v) {
    module[static_cast<size_t>(v)] = v;
    module_p[static_cast<size_t>(v)] =
        flow.node_visit[static_cast<size_t>(v)];
    double exit = 0.0;
    for (const Arc& arc : adjacency.out_arcs(v)) {
      if (arc.neighbor != v) exit += arc.weight / flow.two_w;
    }
    module_exit[static_cast<size_t>(v)] = exit;
    q += exit;
  }

  // Terms of L that change with moves; node term is constant.
  const auto module_term = [&](int32_t m) {
    return -2.0 * PLogP(module_exit[static_cast<size_t>(m)]) +
           PLogP(module_exit[static_cast<size_t>(m)] +
                 module_p[static_cast<size_t>(m)]);
  };

  std::vector<NodeId> order(static_cast<size_t>(n));
  for (NodeId v = 0; v < n; ++v) order[static_cast<size_t>(v)] = v;

  std::unordered_map<int32_t, double> weight_to;  // module -> w(alpha, m)
  for (int64_t sweep = 0; sweep < options.max_sweeps; ++sweep) {
    rng.Shuffle(&order);
    bool moved = false;
    for (const NodeId v : order) {
      const int32_t old_m = module[static_cast<size_t>(v)];
      const double p_v = flow.node_visit[static_cast<size_t>(v)];
      weight_to.clear();
      double strength_v = 0.0;  // total incident weight (flow units)
      for (const Arc& arc : adjacency.out_arcs(v)) {
        if (arc.neighbor == v) continue;
        const double w = arc.weight / flow.two_w;
        strength_v += w;
        weight_to[module[static_cast<size_t>(arc.neighbor)]] += w;
      }
      const double to_old = weight_to.contains(old_m) ? weight_to[old_m]
                                                      : 0.0;

      // Baseline contribution with v in old_m.
      const double base_terms = PLogP(q) + module_term(old_m);

      int32_t best_m = old_m;
      double best_delta = 0.0;
      for (const auto& [candidate, to_candidate] : weight_to) {
        if (candidate == old_m) continue;
        // Removing v from old_m: exits gain the edges v->old members and
        // lose v's other incident edges.
        const double exit_old_new =
            module_exit[static_cast<size_t>(old_m)] -
            (strength_v - to_old) + to_old;
        const double exit_cand_new =
            module_exit[static_cast<size_t>(candidate)] +
            (strength_v - to_candidate) - to_candidate;
        const double q_new =
            q + (exit_old_new - module_exit[static_cast<size_t>(old_m)]) +
            (exit_cand_new - module_exit[static_cast<size_t>(candidate)]);

        const double old_terms =
            base_terms + module_term(candidate);
        const double new_terms =
            PLogP(q_new) +
            (-2.0 * PLogP(exit_old_new) +
             PLogP(exit_old_new +
                   module_p[static_cast<size_t>(old_m)] - p_v)) +
            (-2.0 * PLogP(exit_cand_new) +
             PLogP(exit_cand_new +
                   module_p[static_cast<size_t>(candidate)] + p_v));
        const double delta = new_terms - old_terms;
        if (delta < best_delta - 1e-12) {
          best_delta = delta;
          best_m = candidate;
        }
      }

      if (best_m != old_m) {
        const double to_best = weight_to[best_m];
        const double exit_old_new =
            module_exit[static_cast<size_t>(old_m)] -
            (strength_v - to_old) + to_old;
        const double exit_best_new =
            module_exit[static_cast<size_t>(best_m)] +
            (strength_v - to_best) - to_best;
        q += (exit_old_new - module_exit[static_cast<size_t>(old_m)]) +
             (exit_best_new - module_exit[static_cast<size_t>(best_m)]);
        module_exit[static_cast<size_t>(old_m)] = exit_old_new;
        module_exit[static_cast<size_t>(best_m)] = exit_best_new;
        module_p[static_cast<size_t>(old_m)] -= p_v;
        module_p[static_cast<size_t>(best_m)] += p_v;
        module[static_cast<size_t>(v)] = best_m;
        moved = true;
      }
    }
    if (!moved) break;
  }
  return Partition(std::move(module));
}

}  // namespace netbone
