#include "community/modularity.h"

#include <vector>

namespace netbone {

Result<double> Modularity(const Graph& graph, const Partition& partition) {
  if (partition.num_nodes() != graph.num_nodes()) {
    return Status::InvalidArgument("partition / graph node count mismatch");
  }
  const double total = graph.total_weight();
  if (!(total > 0.0)) {
    return Status::FailedPrecondition("graph total weight is zero");
  }
  const size_t k = static_cast<size_t>(partition.num_communities());

  if (!graph.directed()) {
    // Accumulate internal weights and community strengths.
    std::vector<double> internal(k, 0.0);
    std::vector<double> strength(k, 0.0);
    for (const Edge& e : graph.edges()) {
      const int32_t cs = partition.of(e.src);
      const int32_t cd = partition.of(e.dst);
      if (cs == cd) internal[static_cast<size_t>(cs)] += e.weight;
    }
    for (NodeId v = 0; v < graph.num_nodes(); ++v) {
      strength[static_cast<size_t>(partition.of(v))] +=
          graph.out_strength(v);
    }
    double q = 0.0;
    const double two_w = 2.0 * total;
    for (size_t c = 0; c < k; ++c) {
      q += internal[c] / total - (strength[c] / two_w) * (strength[c] / two_w);
    }
    return q;
  }

  // Directed (Leicht-Newman): Q = sum_in_c w/W - sum_c sout_c * sin_c / W^2.
  std::vector<double> internal(k, 0.0);
  std::vector<double> out_strength(k, 0.0);
  std::vector<double> in_strength(k, 0.0);
  for (const Edge& e : graph.edges()) {
    const int32_t cs = partition.of(e.src);
    const int32_t cd = partition.of(e.dst);
    if (cs == cd) internal[static_cast<size_t>(cs)] += e.weight;
  }
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    out_strength[static_cast<size_t>(partition.of(v))] +=
        graph.out_strength(v);
    in_strength[static_cast<size_t>(partition.of(v))] += graph.in_strength(v);
  }
  double q = 0.0;
  for (size_t c = 0; c < k; ++c) {
    q += internal[c] / total -
         out_strength[c] * in_strength[c] / (total * total);
  }
  return q;
}

}  // namespace netbone
