// Copyright 2026 The netbone Authors.
//
// The map equation (Rosvall & Bergstrom 2008, cited as [31]): the expected
// per-step description length of a random walk under a two-level coding
// scheme. The Sec. VI case study reports Infomap codelength compression
// gains for the NC vs DF occupation backbones (15.0% vs 9.3%); this module
// provides the exact codelength of any partition plus a greedy
// local-search minimizer standing in for the Infomap binary.

#ifndef NETBONE_COMMUNITY_MAP_EQUATION_H_
#define NETBONE_COMMUNITY_MAP_EQUATION_H_

#include <cstdint>

#include "common/result.h"
#include "community/partition.h"
#include "graph/graph.h"

namespace netbone {

/// One-level codelength: the entropy (bits) of the random walker's node
/// visit rates — the "without communities" baseline of Sec. VI
/// (paper values: 7.97 bits on the NC backbone, 7.69 on DF).
Result<double> OneLevelCodelength(const Graph& graph);

/// Two-level map-equation codelength of `partition` on `graph` (bits).
/// Undirected flow approximation: visit rate = strength / 2W.
Result<double> MapEquationCodelength(const Graph& graph,
                                     const Partition& partition);

/// Options for GreedyInfomap.
struct GreedyInfomapOptions {
  uint64_t seed = 1;
  int64_t max_sweeps = 64;
};

/// Greedy codelength minimization: start from singletons, repeatedly move
/// nodes to the neighboring module that lowers the map equation most,
/// then compact. A faithful stand-in for two-level Infomap search.
Result<Partition> GreedyInfomap(const Graph& graph,
                                const GreedyInfomapOptions& options = {});

}  // namespace netbone

#endif  // NETBONE_COMMUNITY_MAP_EQUATION_H_
