// Copyright 2026 The netbone Authors.
//
// Weighted asynchronous label propagation (Raghavan et al. 2007): a fast
// community baseline used by tests and examples. Each node repeatedly
// adopts the label with the largest incident weight until no label
// changes.

#ifndef NETBONE_COMMUNITY_LABEL_PROPAGATION_H_
#define NETBONE_COMMUNITY_LABEL_PROPAGATION_H_

#include <cstdint>

#include "common/result.h"
#include "community/partition.h"
#include "graph/graph.h"

namespace netbone {

/// Options for LabelPropagation.
struct LabelPropagationOptions {
  uint64_t seed = 1;        ///< node-order shuffling
  int64_t max_sweeps = 100; ///< safety stop
};

/// Runs label propagation on the undirected view of `graph`.
Result<Partition> LabelPropagation(const Graph& graph,
                                   const LabelPropagationOptions& options =
                                       {});

}  // namespace netbone

#endif  // NETBONE_COMMUNITY_LABEL_PROPAGATION_H_
