// Copyright 2026 The netbone Authors.
//
// Node partition container shared by the community-detection algorithms,
// the modularity / NMI metrics, and the map equation (Sec. VI case study).

#ifndef NETBONE_COMMUNITY_PARTITION_H_
#define NETBONE_COMMUNITY_PARTITION_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"

namespace netbone {

/// An assignment of every node to a community id in [0, num_communities).
class Partition {
 public:
  Partition() = default;

  /// Wraps raw assignments; ids are compacted to 0..k-1 preserving order
  /// of first appearance.
  explicit Partition(std::vector<int32_t> assignment);

  /// All nodes in one community.
  static Partition Trivial(NodeId num_nodes);

  /// Every node its own community.
  static Partition Singletons(NodeId num_nodes);

  /// Community of node v.
  int32_t of(NodeId v) const { return assignment_[static_cast<size_t>(v)]; }

  /// Number of nodes covered.
  NodeId num_nodes() const {
    return static_cast<NodeId>(assignment_.size());
  }

  /// Number of distinct communities.
  int32_t num_communities() const { return num_communities_; }

  /// Node counts per community.
  std::vector<int64_t> CommunitySizes() const;

  /// Raw assignment vector.
  const std::vector<int32_t>& assignment() const { return assignment_; }

 private:
  std::vector<int32_t> assignment_;
  int32_t num_communities_ = 0;
};

}  // namespace netbone

#endif  // NETBONE_COMMUNITY_PARTITION_H_
