#include "community/partition.h"

#include <unordered_map>

namespace netbone {

Partition::Partition(std::vector<int32_t> assignment)
    : assignment_(std::move(assignment)) {
  std::unordered_map<int32_t, int32_t> remap;
  for (int32_t& community : assignment_) {
    const auto [it, inserted] =
        remap.try_emplace(community, static_cast<int32_t>(remap.size()));
    community = it->second;
  }
  num_communities_ = static_cast<int32_t>(remap.size());
}

Partition Partition::Trivial(NodeId num_nodes) {
  return Partition(std::vector<int32_t>(static_cast<size_t>(num_nodes), 0));
}

Partition Partition::Singletons(NodeId num_nodes) {
  std::vector<int32_t> assignment(static_cast<size_t>(num_nodes));
  for (NodeId v = 0; v < num_nodes; ++v) {
    assignment[static_cast<size_t>(v)] = v;
  }
  return Partition(std::move(assignment));
}

std::vector<int64_t> Partition::CommunitySizes() const {
  std::vector<int64_t> sizes(static_cast<size_t>(num_communities_), 0);
  for (const int32_t c : assignment_) sizes[static_cast<size_t>(c)]++;
  return sizes;
}

}  // namespace netbone
