// Copyright 2026 The netbone Authors.
//
// Newman modularity (cited as [27] in the paper), the partition-quality
// score reported for the Sec. VI occupation backbones (NC 0.192 vs DF
// 0.115 against the two-digit occupation classes).

#ifndef NETBONE_COMMUNITY_MODULARITY_H_
#define NETBONE_COMMUNITY_MODULARITY_H_

#include "common/result.h"
#include "community/partition.h"
#include "graph/graph.h"

namespace netbone {

/// Weighted modularity of `partition` on `graph`.
/// Undirected: Q = sum_c [ W_c / W - (S_c / 2W)^2 ], where W_c is the
/// internal weight of community c, S_c its total strength, W the total
/// weight. Directed graphs use the directed generalization
/// Q = sum_ij [A_ij/W - s_out_i s_in_j / W^2] delta(c_i, c_j).
Result<double> Modularity(const Graph& graph, const Partition& partition);

}  // namespace netbone

#endif  // NETBONE_COMMUNITY_MODULARITY_H_
