// Copyright 2026 The netbone Authors.
//
// Normalized Mutual Information between two partitions, the agreement
// statistic of the Sec. VI case study (NMI of backbone communities vs the
// two-digit occupation classification: NC 0.423 vs DF 0.401).

#ifndef NETBONE_COMMUNITY_NMI_H_
#define NETBONE_COMMUNITY_NMI_H_

#include "common/result.h"
#include "community/partition.h"

namespace netbone {

/// NMI with the 2I/(H_a + H_b) normalization. Returns 1 for identical
/// partitions, 0 for independent ones. By convention, two trivial
/// (single-community) partitions compare as 1.
Result<double> NormalizedMutualInformation(const Partition& a,
                                           const Partition& b);

/// Raw mutual information I(a; b) in bits.
Result<double> MutualInformation(const Partition& a, const Partition& b);

/// Shannon entropy of a partition's community sizes, in bits.
double PartitionEntropy(const Partition& partition);

}  // namespace netbone

#endif  // NETBONE_COMMUNITY_NMI_H_
