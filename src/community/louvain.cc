#include "community/louvain.h"

#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "graph/transform.h"

namespace netbone {
namespace {

/// Flat weighted undirected multigraph used between Louvain levels.
struct LevelGraph {
  int32_t n = 0;
  // Adjacency as neighbor/weight lists; self-weights kept separately.
  std::vector<std::vector<std::pair<int32_t, double>>> neighbors;
  std::vector<double> self_weight;
  std::vector<double> strength;  // incident weight incl. 2*self
  double total = 0.0;            // sum of edge weights (undirected count)
};

LevelGraph FromGraph(const Graph& graph) {
  LevelGraph lg;
  lg.n = graph.num_nodes();
  lg.neighbors.assign(static_cast<size_t>(lg.n), {});
  lg.self_weight.assign(static_cast<size_t>(lg.n), 0.0);
  lg.strength.assign(static_cast<size_t>(lg.n), 0.0);
  for (const Edge& e : graph.edges()) {
    if (e.src == e.dst) {
      lg.self_weight[static_cast<size_t>(e.src)] += e.weight;
    } else {
      lg.neighbors[static_cast<size_t>(e.src)].emplace_back(e.dst, e.weight);
      lg.neighbors[static_cast<size_t>(e.dst)].emplace_back(e.src, e.weight);
    }
    lg.total += e.weight;
  }
  for (int32_t v = 0; v < lg.n; ++v) {
    double s = 2.0 * lg.self_weight[static_cast<size_t>(v)];
    for (const auto& [u, w] : lg.neighbors[static_cast<size_t>(v)]) s += w;
    lg.strength[static_cast<size_t>(v)] = s;
  }
  return lg;
}

/// One local-move phase; returns the node->community map and whether any
/// move happened.
bool LocalMoves(const LevelGraph& lg, double resolution, Rng* rng,
                std::vector<int32_t>* community) {
  const double two_w = 2.0 * lg.total;
  std::vector<double> community_strength(static_cast<size_t>(lg.n), 0.0);
  for (int32_t v = 0; v < lg.n; ++v) {
    community_strength[static_cast<size_t>((*community)[
        static_cast<size_t>(v)])] += lg.strength[static_cast<size_t>(v)];
  }

  std::vector<int32_t> order(static_cast<size_t>(lg.n));
  for (int32_t v = 0; v < lg.n; ++v) order[static_cast<size_t>(v)] = v;
  rng->Shuffle(&order);

  bool any_move = false;
  bool improved = true;
  std::unordered_map<int32_t, double> weight_to;
  while (improved) {
    improved = false;
    for (const int32_t v : order) {
      const int32_t old_c = (*community)[static_cast<size_t>(v)];
      weight_to.clear();
      weight_to[old_c] += 0.0;  // allow staying
      for (const auto& [u, w] : lg.neighbors[static_cast<size_t>(v)]) {
        weight_to[(*community)[static_cast<size_t>(u)]] += w;
      }
      community_strength[static_cast<size_t>(old_c)] -=
          lg.strength[static_cast<size_t>(v)];

      int32_t best_c = old_c;
      double best_gain = weight_to[old_c] -
                         resolution *
                             community_strength[static_cast<size_t>(old_c)] *
                             lg.strength[static_cast<size_t>(v)] / two_w;
      for (const auto& [c, w] : weight_to) {
        const double gain =
            w - resolution * community_strength[static_cast<size_t>(c)] *
                    lg.strength[static_cast<size_t>(v)] / two_w;
        if (gain > best_gain + 1e-12 ||
            (gain > best_gain - 1e-12 && c < best_c)) {
          best_gain = gain;
          best_c = c;
        }
      }
      community_strength[static_cast<size_t>(best_c)] +=
          lg.strength[static_cast<size_t>(v)];
      if (best_c != old_c) {
        (*community)[static_cast<size_t>(v)] = best_c;
        improved = true;
        any_move = true;
      }
    }
  }
  return any_move;
}

/// Aggregates communities into the next-level graph.
LevelGraph Aggregate(const LevelGraph& lg,
                     const std::vector<int32_t>& community,
                     int32_t num_communities) {
  LevelGraph next;
  next.n = num_communities;
  next.neighbors.assign(static_cast<size_t>(next.n), {});
  next.self_weight.assign(static_cast<size_t>(next.n), 0.0);
  next.strength.assign(static_cast<size_t>(next.n), 0.0);
  next.total = lg.total;

  std::vector<std::unordered_map<int32_t, double>> accumulated(
      static_cast<size_t>(next.n));
  for (int32_t v = 0; v < lg.n; ++v) {
    const int32_t cv = community[static_cast<size_t>(v)];
    next.self_weight[static_cast<size_t>(cv)] +=
        lg.self_weight[static_cast<size_t>(v)];
    for (const auto& [u, w] : lg.neighbors[static_cast<size_t>(v)]) {
      const int32_t cu = community[static_cast<size_t>(u)];
      if (cu == cv) {
        // Each undirected edge appears twice in neighbor lists.
        next.self_weight[static_cast<size_t>(cv)] += w / 2.0;
      } else if (cv < cu) {
        accumulated[static_cast<size_t>(cv)][cu] += w;
      }
    }
  }
  for (int32_t c = 0; c < next.n; ++c) {
    for (const auto& [other, w] : accumulated[static_cast<size_t>(c)]) {
      next.neighbors[static_cast<size_t>(c)].emplace_back(other, w);
      next.neighbors[static_cast<size_t>(other)].emplace_back(c, w);
    }
  }
  for (int32_t v = 0; v < next.n; ++v) {
    double s = 2.0 * next.self_weight[static_cast<size_t>(v)];
    for (const auto& [u, w] : next.neighbors[static_cast<size_t>(v)]) s += w;
    next.strength[static_cast<size_t>(v)] = s;
  }
  return next;
}

}  // namespace

Result<Partition> Louvain(const Graph& graph, const LouvainOptions& options) {
  if (graph.num_nodes() == 0) {
    return Status::FailedPrecondition("empty graph");
  }
  Graph undirected_storage;
  const Graph* work = &graph;
  if (graph.directed()) {
    NETBONE_ASSIGN_OR_RETURN(undirected_storage, Symmetrize(graph));
    work = &undirected_storage;
  }
  if (!(work->total_weight() > 0.0)) {
    return Partition::Singletons(graph.num_nodes());
  }

  Rng rng(options.seed);
  LevelGraph lg = FromGraph(*work);

  // node -> community mapping composed across levels.
  std::vector<int32_t> node_to_community(
      static_cast<size_t>(graph.num_nodes()));
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    node_to_community[static_cast<size_t>(v)] = v;
  }

  for (int64_t pass = 0; pass < options.max_passes; ++pass) {
    std::vector<int32_t> community(static_cast<size_t>(lg.n));
    for (int32_t v = 0; v < lg.n; ++v) {
      community[static_cast<size_t>(v)] = v;
    }
    const bool moved = LocalMoves(lg, options.resolution, &rng, &community);
    if (!moved) break;

    // Compact community ids.
    Partition compact(community);
    for (auto& c : node_to_community) {
      c = compact.of(c);
    }
    if (compact.num_communities() == lg.n) break;
    lg = Aggregate(lg, compact.assignment(), compact.num_communities());
  }
  return Partition(std::move(node_to_community));
}

}  // namespace netbone
