// Copyright 2026 The netbone Authors.
//
// Louvain modularity maximization (Blondel et al. 2008): the standard
// community-discovery workhorse, used by the Fig. 1 demonstration ("the
// backbone reveals the ground-truth communities") and as the seed
// partition of the map-equation optimizer.

#ifndef NETBONE_COMMUNITY_LOUVAIN_H_
#define NETBONE_COMMUNITY_LOUVAIN_H_

#include <cstdint>

#include "common/result.h"
#include "community/partition.h"
#include "graph/graph.h"

namespace netbone {

/// Options for Louvain.
struct LouvainOptions {
  uint64_t seed = 1;
  /// Resolution parameter gamma (1 = classic modularity); larger values
  /// produce more, smaller communities.
  double resolution = 1.0;
  int64_t max_passes = 32;
};

/// Runs the full multi-level Louvain on the undirected view of `graph`.
/// Directed graphs are treated by summing the two directions.
Result<Partition> Louvain(const Graph& graph,
                          const LouvainOptions& options = {});

}  // namespace netbone

#endif  // NETBONE_COMMUNITY_LOUVAIN_H_
