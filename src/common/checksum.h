// Copyright 2026 The netbone Authors.
//
// XXH64 checksum, implemented in-repo (public-domain algorithm, no
// dependency) for the snapshot subsystem's per-section integrity checks.
// XXH64 over CRC32 because the snapshot sections are multi-megabyte score
// tables: one 8-byte lane mixes per step keeps checksumming off the
// restore critical path, and 64 bits makes an accidental collision across
// a corrupted section astronomically unlikely.
//
// The implementation follows the canonical specification exactly, so
// digests match any external xxhash tool byte-for-byte (the unit test
// pins the published test vectors).

#ifndef NETBONE_COMMON_CHECKSUM_H_
#define NETBONE_COMMON_CHECKSUM_H_

#include <cstdint>
#include <cstring>

namespace netbone {

namespace internal {

inline constexpr uint64_t kXxhPrime1 = 0x9E3779B185EBCA87ULL;
inline constexpr uint64_t kXxhPrime2 = 0xC2B2AE3D27D4EB4FULL;
inline constexpr uint64_t kXxhPrime3 = 0x165667B19E3779F9ULL;
inline constexpr uint64_t kXxhPrime4 = 0x85EBCA77C2B2AE63ULL;
inline constexpr uint64_t kXxhPrime5 = 0x27D4EB2F165667C5ULL;

inline uint64_t XxhRotl64(uint64_t value, int bits) {
  return (value << bits) | (value >> (64 - bits));
}

inline uint64_t XxhRead64(const unsigned char* p) {
  uint64_t value;
  std::memcpy(&value, p, sizeof(value));
  return value;
}

inline uint32_t XxhRead32(const unsigned char* p) {
  uint32_t value;
  std::memcpy(&value, p, sizeof(value));
  return value;
}

inline uint64_t XxhRound(uint64_t acc, uint64_t input) {
  acc += input * kXxhPrime2;
  acc = XxhRotl64(acc, 31);
  return acc * kXxhPrime1;
}

inline uint64_t XxhMergeRound(uint64_t acc, uint64_t val) {
  acc ^= XxhRound(0, val);
  return acc * kXxhPrime1 + kXxhPrime4;
}

}  // namespace internal

/// XXH64 digest of `len` bytes at `data` with the given seed. Matches the
/// canonical xxhash specification (little-endian lane reads; this library
/// only targets little-endian hosts and the snapshot format tags
/// endianness explicitly).
inline uint64_t Checksum64(const void* data, size_t len, uint64_t seed = 0) {
  using namespace internal;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  const unsigned char* const end = p + len;
  uint64_t h;

  if (len >= 32) {
    const unsigned char* const limit = end - 32;
    uint64_t v1 = seed + kXxhPrime1 + kXxhPrime2;
    uint64_t v2 = seed + kXxhPrime2;
    uint64_t v3 = seed + 0;
    uint64_t v4 = seed - kXxhPrime1;
    do {
      v1 = XxhRound(v1, XxhRead64(p));
      v2 = XxhRound(v2, XxhRead64(p + 8));
      v3 = XxhRound(v3, XxhRead64(p + 16));
      v4 = XxhRound(v4, XxhRead64(p + 24));
      p += 32;
    } while (p <= limit);
    h = XxhRotl64(v1, 1) + XxhRotl64(v2, 7) + XxhRotl64(v3, 12) +
        XxhRotl64(v4, 18);
    h = XxhMergeRound(h, v1);
    h = XxhMergeRound(h, v2);
    h = XxhMergeRound(h, v3);
    h = XxhMergeRound(h, v4);
  } else {
    h = seed + kXxhPrime5;
  }

  h += static_cast<uint64_t>(len);

  while (p + 8 <= end) {
    h ^= XxhRound(0, XxhRead64(p));
    h = XxhRotl64(h, 27) * kXxhPrime1 + kXxhPrime4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= static_cast<uint64_t>(XxhRead32(p)) * kXxhPrime1;
    h = XxhRotl64(h, 23) * kXxhPrime2 + kXxhPrime3;
    p += 4;
  }
  while (p < end) {
    h ^= static_cast<uint64_t>(*p) * kXxhPrime5;
    h = XxhRotl64(h, 11) * kXxhPrime1;
    ++p;
  }

  h ^= h >> 33;
  h *= kXxhPrime2;
  h ^= h >> 29;
  h *= kXxhPrime3;
  h ^= h >> 32;
  return h;
}

}  // namespace netbone

#endif  // NETBONE_COMMON_CHECKSUM_H_
