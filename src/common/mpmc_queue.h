// Copyright 2026 The netbone Authors.
//
// Bounded lock-free multi-producer/multi-consumer FIFO ring (Dmitry
// Vyukov's sequence-number design). Each cell carries a sequence counter
// that encodes, relative to the monotonically increasing enqueue/dequeue
// positions, whether the cell is free, full, or in transit — producers
// and consumers claim a position with one CAS and then touch only their
// own cell, so contention is a single cache line per operation and
// producers never wait on consumers (or vice versa) beyond the CAS.
//
// Memory-ordering contract: the release store of a cell's sequence by
// TryPush pairs with the acquire load in TryPop, so everything written
// before a push happens-before the pop that returns the value — the same
// publication guarantee the mutex-guarded queue this replaces provided.
//
// Bounded and non-blocking by design: TryPush refuses when the ring is
// full and TryPop refuses when it is empty, and the caller chooses the
// fallback (the TaskScheduler runs the task inline, mirroring its
// full-deque policy). FIFO order holds per the CAS-claimed positions.

#ifndef NETBONE_COMMON_MPMC_QUEUE_H_
#define NETBONE_COMMON_MPMC_QUEUE_H_

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace netbone {

template <typename T>
class MpmcQueue {
 public:
  /// A ring holding at least `min_capacity` elements (rounded up to a
  /// power of two, minimum 2, so position masking is a single AND).
  explicit MpmcQueue(size_t min_capacity)
      : cells_(std::bit_ceil(min_capacity < 2 ? size_t{2} : min_capacity)),
        mask_(cells_.size() - 1) {
    for (size_t i = 0; i < cells_.size(); ++i) {
      cells_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  size_t capacity() const { return cells_.size(); }

  /// Enqueues `value`; false when the ring is full (the value is left
  /// untouched and the caller keeps ownership).
  bool TryPush(const T& value) {
    Cell* cell;
    size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const size_t seq = cell->sequence.load(std::memory_order_acquire);
      const intptr_t dif =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
      if (dif == 0) {
        // Cell is free at this position: claim it. A weak CAS may fail
        // spuriously; the loop simply retries at the updated position.
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        return false;  // the consumer lap hasn't freed this cell: full
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
    cell->value = value;
    cell->sequence.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// Dequeues the oldest element into *out; false when the ring is empty.
  bool TryPop(T* out) {
    Cell* cell;
    size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const size_t seq = cell->sequence.load(std::memory_order_acquire);
      const intptr_t dif =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1);
      if (dif == 0) {
        if (dequeue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        return false;  // no producer has published this position: empty
      } else {
        pos = dequeue_pos_.load(std::memory_order_relaxed);
      }
    }
    *out = std::move(cell->value);
    // Mark the cell free for the producer one lap ahead.
    cell->sequence.store(pos + mask_ + 1, std::memory_order_release);
    return true;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<size_t> sequence;
    T value;
  };

  std::vector<Cell> cells_;
  const size_t mask_;
  // Producers and consumers advance independent positions; padding keeps
  // them off each other's cache line.
  alignas(64) std::atomic<size_t> enqueue_pos_{0};
  alignas(64) std::atomic<size_t> dequeue_pos_{0};
};

}  // namespace netbone

#endif  // NETBONE_COMMON_MPMC_QUEUE_H_
