// Copyright 2026 The netbone Authors.
//
// Deterministic, seedable pseudo-random generation. All stochastic code in
// the library draws from Rng so experiments are reproducible bit-for-bit
// from a seed, independent of the standard library implementation.

#ifndef NETBONE_COMMON_RANDOM_H_
#define NETBONE_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace netbone {

/// The splitmix64 finalizer: one stateless 64-bit mixing step. Used to
/// seed the Rng lanes and as the diffusion primitive of the service
/// layer's content hashes (GraphFingerprint, ScoreKeyHash) — one
/// definition so the constants cannot drift apart.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// xoshiro256** pseudo-random generator seeded through SplitMix64.
///
/// The generator is deliberately implemented in-repo (rather than relying on
/// std::mt19937) so that synthetic datasets are identical across standard
/// libraries and platforms.
class Rng {
 public:
  /// Seeds the four 64-bit lanes from `seed` via SplitMix64.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit output.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0. Uses rejection sampling to
  /// avoid modulo bias.
  uint64_t NextBounded(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal deviate (Marsaglia polar method).
  double NextGaussian();

  /// Normal deviate with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Log-normal deviate: exp(Normal(mu_log, sigma_log)).
  double LogNormal(double mu_log, double sigma_log);

  /// Exponential deviate with the given rate (lambda > 0).
  double Exponential(double rate);

  /// Poisson deviate with the given mean (>= 0). Uses Knuth's method for
  /// small means and normal approximation with rejection above 64.
  int64_t Poisson(double mean);

  /// Binomial deviate: number of successes in n trials with probability p.
  /// Exact inversion for small n*p, normal approximation for large.
  int64_t Binomial(int64_t n, double p);

  /// Returns true with probability p.
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle of `values`.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    if (values->empty()) return;
    for (size_t i = values->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      std::swap((*values)[i], (*values)[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

 private:
  uint64_t state_[4];
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace netbone

#endif  // NETBONE_COMMON_RANDOM_H_
