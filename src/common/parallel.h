// Copyright 2026 The netbone Authors.
//
// Shared parallel-execution substrate: a lazily-created fixed thread pool
// that is reused across calls (no per-call thread spawn/join), plus a
// deterministic chunked ParallelFor on top of it.
//
// Determinism contract: ParallelFor partitions [0, n) into contiguous
// chunks whose boundaries depend only on (n, num_threads) — never on the
// pool size or on scheduling. Callers that write to disjoint, index-aligned
// output slots therefore produce bit-identical results regardless of how
// many OS threads actually execute the chunks.

#ifndef NETBONE_COMMON_PARALLEL_H_
#define NETBONE_COMMON_PARALLEL_H_

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace netbone {

/// Resolves a caller-facing thread-count knob: values <= 0 mean "use
/// hardware concurrency" (at least 1); positive values pass through.
int ResolveThreadCount(int requested);

/// Number of chunks ParallelFor(n, num_threads, ...) will invoke its
/// callback with: min(ResolveThreadCount(num_threads), n), at least 1.
/// Callers that size per-chunk accumulators must use this — it is the
/// single definition of the partition width.
int NumParallelChunks(int64_t n, int num_threads);

/// Fixed pool of worker threads with a blocking fork-join Run() primitive.
///
/// The pool owns size() - 1 OS threads; the thread calling Run()
/// participates as a worker, so a pool of size 1 spawns no threads at all.
/// Run() calls are serialized internally — concurrent callers queue up
/// rather than interleave, which keeps the pool small and the semantics
/// simple.
class ThreadPool {
 public:
  /// Creates a pool that can execute `num_threads` workers concurrently
  /// (including the caller of Run). num_threads < 1 is clamped to 1.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Maximum concurrency of Run(), counting the calling thread.
  int size() const { return static_cast<int>(threads_.size()) + 1; }

  /// Invokes fn(worker) for every worker in [0, num_workers), distributing
  /// the invocations over the pool (the caller executes some of them).
  /// Blocks until all invocations finish. num_workers may exceed size();
  /// excess workers simply share OS threads.
  void Run(int num_workers, const std::function<void(int worker)>& fn);

  /// Process-wide pool sized to hardware concurrency, created on first use
  /// and intentionally never destroyed (avoids shutdown-order races with
  /// static destructors).
  static ThreadPool& Global();

 private:
  void WorkerLoop();
  /// Claims and runs job workers until the current job is exhausted.
  /// Precondition: `lock` holds mu_. Returns with mu_ re-held.
  void DrainJob(std::unique_lock<std::mutex>& lock);

  std::vector<std::thread> threads_;

  std::mutex run_mu_;  // serializes Run() calls

  std::mutex mu_;
  std::condition_variable work_cv_;  // a job arrived (or shutdown)
  std::condition_variable done_cv_;  // the current job fully finished
  const std::function<void(int)>* job_ = nullptr;
  int job_next_ = 0;    // next unclaimed worker index
  int job_total_ = 0;   // workers in the current job
  int job_active_ = 0;  // claimed but not yet finished
  bool shutdown_ = false;
};

/// Deterministic chunked parallel loop over [0, n).
///
/// The range is split into W = min(max(num_threads_resolved, 1), n)
/// contiguous chunks — chunk c covers [c*n/W, (c+1)*n/W) — and
/// fn(begin, end, chunk) runs once per chunk on ThreadPool::Global().
/// Chunk boundaries depend only on (n, num_threads), so per-chunk
/// accumulators indexed by `chunk` are reproducible. `num_threads` <= 0
/// resolves to hardware concurrency. n <= 0 is a no-op; W == 1 runs inline
/// on the calling thread with no synchronization.
void ParallelFor(int64_t n, int num_threads,
                 const std::function<void(int64_t begin, int64_t end,
                                          int chunk)>& fn);

/// Comparison-based parallel sort on the shared pool: chunked std::sort
/// followed by log(W) rounds of pairwise std::merge into a scratch buffer.
///
/// When `cmp` induces a strict *total* order over the elements (no two
/// distinct elements compare equivalent), the sorted sequence is unique,
/// so the output is bit-identical to std::sort and independent of
/// `num_threads` — the determinism contract the MST Kruskal sort relies
/// on. With genuinely tied elements the tie order may differ from
/// std::sort and across thread counts; callers needing determinism add a
/// final tie-break key instead.
///
/// Small inputs (or num_threads resolving to 1) fall back to a plain
/// std::sort with no pool handoff or scratch allocation.
template <typename T, typename Compare>
void ParallelSort(std::vector<T>* v, int num_threads, Compare cmp) {
  const int64_t n = static_cast<int64_t>(v->size());
  // Below this size the chunk sorts are cheaper than the pool handoff and
  // the scratch allocation; one std::sort is observably identical.
  constexpr int64_t kMinParallelSize = 1 << 13;
  const int chunks = NumParallelChunks(n, num_threads);
  if (chunks <= 1 || n < kMinParallelSize) {
    std::sort(v->begin(), v->end(), cmp);
    return;
  }

  // Chunk boundaries follow the ParallelFor partition (c*n/W), but the
  // result is boundary-independent for total-order comparators, so the
  // only requirement here is covering [0, n) exactly.
  std::vector<int64_t> bounds(static_cast<size_t>(chunks) + 1);
  for (int c = 0; c <= chunks; ++c) {
    bounds[static_cast<size_t>(c)] = n * c / chunks;
  }
  ThreadPool::Global().Run(chunks, [&](int c) {
    std::sort(v->begin() + bounds[static_cast<size_t>(c)],
              v->begin() + bounds[static_cast<size_t>(c) + 1], cmp);
  });

  // Merge runs pairwise until one remains, ping-ponging between the input
  // and a scratch buffer. Each round's merges touch disjoint ranges.
  std::vector<T> scratch(v->size());
  std::vector<T>* src = v;
  std::vector<T>* dst = &scratch;
  while (bounds.size() > 2) {
    const int runs = static_cast<int>(bounds.size()) - 1;
    const int pairs = runs / 2;
    ThreadPool::Global().Run(pairs, [&](int p) {
      const int64_t lo = bounds[static_cast<size_t>(2 * p)];
      const int64_t mid = bounds[static_cast<size_t>(2 * p) + 1];
      const int64_t hi = bounds[static_cast<size_t>(2 * p) + 2];
      std::merge(src->begin() + lo, src->begin() + mid, src->begin() + mid,
                 src->begin() + hi, dst->begin() + lo, cmp);
    });
    if (runs % 2 != 0) {  // odd tail run: carry over unchanged
      std::copy(src->begin() + bounds[bounds.size() - 2], src->end(),
                dst->begin() + bounds[bounds.size() - 2]);
    }
    std::vector<int64_t> next;
    next.reserve(static_cast<size_t>(pairs) + 2);
    for (size_t b = 0; b < bounds.size(); b += 2) next.push_back(bounds[b]);
    if (bounds.size() % 2 == 0) next.push_back(bounds.back());
    bounds = std::move(next);
    std::swap(src, dst);
  }
  if (src != v) *v = std::move(*src);
}

}  // namespace netbone

#endif  // NETBONE_COMMON_PARALLEL_H_
