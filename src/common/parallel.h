// Copyright 2026 The netbone Authors.
//
// Shared parallel-execution substrate. Two layers live here:
//
//  * TaskScheduler / TaskGroup — a deterministic work-stealing task
//    runtime: one Chase–Lev-style deque per persistent worker thread,
//    idle workers stealing over a fixed-seed victim permutation, and a
//    lock-free MPMC injection ring for threads outside the pool. Nested
//    TaskGroups
//    spawned from inside a running task push onto the executing worker's
//    own deque, so an outer fan-out (methods, batch keys) and the inner
//    loops it triggers share one pool instead of serializing each other.
//  * ParallelFor / ParallelForDynamic / ParallelSort / ParallelRun —
//    loop-shaped entry points built on the runtime.
//
// Determinism contract: the runtime never promises anything about *which*
// worker executes a task or in what order steals happen — it promises
// that this cannot matter. ParallelFor partitions [0, n) into contiguous
// chunks whose boundaries depend only on (n, num_threads);
// ParallelForDynamic decomposes [0, n) into grain-bounded blocks that
// depend only on (n, grain). Callers write results to per-index (or
// per-chunk, folded-in-fixed-order) slots, or fold commutative integer
// accumulators, so output is bit-identical at every thread count and
// regardless of steal order.
//
// Blocking rules: tasks must never block on work produced by other
// in-flight requests (futures, condition variables). TaskGroup::Wait is
// the one sanctioned wait — it is a *helping* wait that executes pending
// tasks instead of parking, so nested waits always make progress. The
// serving engine's corollary: in-flight score futures are only awaited
// from caller context, never inside a task (service/engine.h).

#ifndef NETBONE_COMMON_PARALLEL_H_
#define NETBONE_COMMON_PARALLEL_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/mpmc_queue.h"
#include "obs/metrics.h"

namespace netbone {

/// Resolves a caller-facing thread-count knob: values <= 0 mean "use
/// hardware concurrency" (at least 1); positive values pass through.
int ResolveThreadCount(int requested);

/// Worker-count policy for the process-wide scheduler: the value of the
/// NETBONE_NUM_THREADS environment variable, clamped to
/// [1, kMaxSchedulerThreads]; 0, unset, or unparsable means "hardware
/// concurrency". Containerized deployments use this to size the pool
/// below what hardware_concurrency() reports for the host. Exposed as a
/// pure function of (env value, hardware count) so the parsing/clamping
/// is unit-testable; TaskScheduler::Global() applies it once at creation.
int SchedulerThreadsFromEnv(const char* value, int hardware_threads);

/// Upper clamp for SchedulerThreadsFromEnv (absurd requests cost one OS
/// thread each; the clamp keeps a typo from spawning thousands).
inline constexpr int kMaxSchedulerThreads = 1024;

/// Number of chunks ParallelFor(n, num_threads, ...) will invoke its
/// callback with: min(ResolveThreadCount(num_threads), n), at least 1.
/// Callers that size per-chunk accumulators must use this — it is the
/// single definition of the partition width.
int NumParallelChunks(int64_t n, int num_threads);

class TaskGroup;

/// Work-stealing task runtime. The scheduler owns `num_threads - 1`
/// persistent OS worker threads (a scheduler of size 1 owns none), each
/// with a private Chase–Lev deque; threads outside the pool submit root
/// tasks through a shared lock-free MPMC injection ring
/// (common/mpmc_queue.h) and help execute tasks while
/// waiting, so the calling thread always participates. Idle workers
/// steal from victims in a per-worker permutation drawn from a fixed
/// seed — the steal pattern carries no run-to-run entropy source of its
/// own, and the determinism contract above makes whatever pattern occurs
/// unobservable in results.
///
/// Tasks are submitted through TaskGroup. Tasks must not throw and must
/// not block on other requests' work (see the blocking rules above);
/// spawning further tasks from inside a task is the intended way to
/// express nested parallelism.
class TaskScheduler {
 public:
  /// A runtime that can execute `num_threads` tasks concurrently,
  /// counting threads that help while waiting. num_threads < 1 is
  /// clamped to 1 (no worker threads: tasks run in the waiters).
  explicit TaskScheduler(int num_threads);

  /// Joins the workers. All TaskGroups bound to this scheduler must have
  /// completed their Wait() first.
  ~TaskScheduler();

  TaskScheduler(const TaskScheduler&) = delete;
  TaskScheduler& operator=(const TaskScheduler&) = delete;

  /// Deque-owning worker threads (0 for a size-1 scheduler).
  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Coherent readout of the scheduler's health counters. Steals, parks,
  /// and wakes are the load-balance story: high steals with low parks
  /// means busy balanced work; high parks means starvation.
  struct MetricsStats {
    int64_t tasks_executed = 0;
    int64_t steals = 0;
    int64_t parks = 0;
    int64_t wakes = 0;
    int64_t injected = 0;
    int64_t inline_runs = 0;  ///< deque-full fallbacks (spawner ran inline)
  };
  MetricsStats metrics_stats() const;

  /// Turns on per-task latency recording into the task_ns histogram.
  /// Off by default: the clock reads (~20ns/task) are the one piece of
  /// scheduler instrumentation that is not free.
  void EnableTaskTiming(bool on) {
    task_timing_.store(on, std::memory_order_relaxed);
  }

  /// Registers this scheduler's counters/histogram under
  /// `<prefix>.<name>` using `this` as the owner cookie. Global()
  /// self-registers into MetricRegistry::Global() under "scheduler".
  void RegisterMetrics(obs::MetricRegistry& registry,
                       const std::string& prefix);

  /// Process-wide scheduler sized to hardware concurrency, created on
  /// first use and intentionally never destroyed (avoids shutdown-order
  /// races with static destructors).
  static TaskScheduler& Global();

 private:
  friend class TaskGroup;

  struct Task;
  struct Worker;

  void WorkerLoop(int worker_id);
  /// Pops / steals one runnable task, or nullptr. `self` is the calling
  /// thread's worker state (nullptr for threads outside the pool).
  Task* FindTask(Worker* self);
  /// Executes one runnable task if any is available. Used by helping
  /// waits; returns false when nothing was runnable.
  bool HelpOnce();
  /// Runs the task, deletes it, and retires it from its group.
  void ExecuteTask(Task* task);
  /// Routes a task to the current worker's deque (falling back to inline
  /// execution when the deque is full) or to the injection ring (same
  /// inline fallback when the ring is full).
  void Submit(Task* task);
  /// Enqueues onto the lock-free injection ring; false when full (the
  /// caller keeps ownership and runs the task inline).
  bool Inject(Task* task);
  /// Publishes "the set of runnable tasks changed": bumps the epoch and
  /// wakes sleepers.
  void Signal();
  /// Parks until the epoch moves past `observed_epoch` (bounded by a
  /// timeout, so a missed wakeup costs a millisecond, never liveness).
  void SleepUntilSignal(uint64_t observed_epoch);
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  static bool DequePush(Worker& worker, Task* task);
  static Task* DequePop(Worker& worker);
  static Task* DequeSteal(Worker& worker);

  static thread_local TaskScheduler* tls_scheduler_;
  static thread_local Worker* tls_worker_;

  std::vector<std::unique_ptr<Worker>> workers_;

  /// Root-task submissions from threads outside the pool. Lock-free so N
  /// concurrent injectors (the sharded engine's dispatchers) never
  /// serialize on a queue mutex; bounded, with inline execution as the
  /// overflow policy (mirroring the full-deque fallback).
  static constexpr size_t kInjectCapacity = 4096;
  MpmcQueue<Task*> injected_{kInjectCapacity};

  std::atomic<uint64_t> epoch_{0};
  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;
  std::atomic<int> sleepers_{0};  // incremented only under sleep_mu_
  std::atomic<bool> shutdown_{false};

  // Observability (obs/metrics.h): relaxed sharded counters — one
  // fetch_add per event on the owner's cache line, negligible next to
  // the work being scheduled. Task timing is opt-in (two clock reads).
  obs::ShardedCounter tasks_executed_;
  obs::ShardedCounter steals_;
  obs::ShardedCounter parks_;
  obs::ShardedCounter wakes_;
  obs::ShardedCounter injected_count_;
  obs::ShardedCounter inline_runs_;
  obs::LatencyHistogram task_ns_;
  std::atomic<bool> task_timing_{false};
  obs::MetricRegistry* metrics_registry_ = nullptr;  // set by RegisterMetrics
};

/// A join point for a set of spawned tasks. Spawn() hands tasks to the
/// scheduler; Wait() blocks until every spawned task has finished,
/// executing pending tasks itself while it waits (helping), so calling
/// Wait from inside a task — nested parallelism — cannot deadlock the
/// pool. A group may be reused for further Spawn/Wait rounds after a
/// Wait returns.
///
/// Spawn is thread-safe, and a task may Spawn siblings into its own
/// group (the recursive loop splitter does): a child is counted before
/// its parent retires, so the pending count never transiently reads
/// zero while work remains. Wait is owned by one thread — the one that
/// started the fan-out.
class TaskGroup {
 public:
  /// Binds to the process-wide scheduler.
  TaskGroup();
  /// Binds to a specific scheduler (tests, isolated pools).
  explicit TaskGroup(TaskScheduler* scheduler);
  /// Waits for any still-pending tasks.
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Queues fn for execution. From inside a task, the spawn goes to the
  /// executing worker's own deque (cheap, steal-able); from outside the
  /// pool it goes to the injection queue.
  void Spawn(std::function<void()> fn);

  /// Returns once every task spawned on this group has completed. The
  /// calling thread executes pending tasks while waiting; when nothing is
  /// runnable (the group's last tasks are mid-flight on other workers) it
  /// parks on the scheduler's epoch.
  void Wait();

 private:
  friend class TaskScheduler;

  TaskScheduler* scheduler_;
  std::atomic<int64_t> pending_{0};
};

/// Fixed pool of worker threads with a blocking fork-join Run()
/// primitive. Legacy substrate: the library's loops now run on
/// TaskScheduler (above), which this class predates; it is retained for
/// direct users that want an isolated fork-join pool with strictly
/// serialized Run() calls.
class ThreadPool {
 public:
  /// Creates a pool that can execute `num_threads` workers concurrently
  /// (including the caller of Run). num_threads < 1 is clamped to 1.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Maximum concurrency of Run(), counting the calling thread.
  int size() const { return static_cast<int>(threads_.size()) + 1; }

  /// Invokes fn(worker) for every worker in [0, num_workers), distributing
  /// the invocations over the pool (the caller executes some of them).
  /// Blocks until all invocations finish. num_workers may exceed size();
  /// excess workers simply share OS threads.
  void Run(int num_workers, const std::function<void(int worker)>& fn);

  /// Process-wide pool sized to hardware concurrency, created on first use
  /// and intentionally never destroyed (avoids shutdown-order races with
  /// static destructors).
  static ThreadPool& Global();

 private:
  void WorkerLoop();
  /// Claims and runs job workers until the current job is exhausted.
  /// Precondition: `lock` holds mu_. Returns with mu_ re-held.
  void DrainJob(std::unique_lock<std::mutex>& lock);

  std::vector<std::thread> threads_;

  std::mutex run_mu_;  // serializes Run() calls

  std::mutex mu_;
  std::condition_variable work_cv_;  // a job arrived (or shutdown)
  std::condition_variable done_cv_;  // the current job fully finished
  const std::function<void(int)>* job_ = nullptr;
  int job_next_ = 0;    // next unclaimed worker index
  int job_total_ = 0;   // workers in the current job
  int job_active_ = 0;  // claimed but not yet finished
  bool shutdown_ = false;
};

/// Deterministic chunked parallel loop over [0, n).
///
/// The range is split into W = min(max(num_threads_resolved, 1), n)
/// contiguous chunks — chunk c covers [c*n/W, (c+1)*n/W) — and
/// fn(begin, end, chunk) runs once per chunk as work-stealing tasks on
/// TaskScheduler::Global() (the caller executes chunk 0 and then helps).
/// Chunk boundaries depend only on (n, num_threads), so per-chunk
/// accumulators indexed by `chunk` are reproducible. `num_threads` <= 0
/// resolves to hardware concurrency. n <= 0 is a no-op; W == 1 runs inline
/// on the calling thread with no synchronization. Called from inside a
/// task, the chunks join the shared pool (two-level parallelism) instead
/// of running serially; the chunk partition — and therefore the output —
/// is the same either way.
void ParallelFor(int64_t n, int num_threads,
                 const std::function<void(int64_t begin, int64_t end,
                                          int chunk)>& fn);

/// Dynamic parallel loop over [0, n) for workloads with skewed per-index
/// cost, where ParallelFor's W static slabs would leave every other core
/// idle behind the heaviest slab.
///
/// The range is decomposed into ceil(n / max(grain, 1)) fixed blocks of
/// at most grain indices — a decomposition that depends only on
/// (n, grain) — and fn(begin, end) runs once per block. Blocks are
/// claimed dynamically: W = min(ResolveThreadCount(num_threads), blocks)
/// self-scheduling runner tasks (distributed — and stolen — as ordinary
/// scheduler tasks) race a shared cursor for the next unclaimed block,
/// so num_threads genuinely caps the loop's concurrency while a heavy
/// block stalls only the one runner that claimed it. Blocks execute in
/// no particular order on no particular thread: callers must write
/// per-index results (or fold commutative accumulators such as integer
/// counts); under that discipline the output is bit-identical at every
/// thread count and claim order.
///
/// Grain guidance: pick the smallest grain whose block body still costs
/// >> the one atomic fetch_add of per-block bookkeeping (any real work
/// qualifies). For heavy per-index work (an HSS source Dijkstra) a grain
/// of a few indices suffices; for cheap uniform per-index work prefer
/// ParallelFor's static chunks outright.
///
/// num_threads <= 0 resolves to hardware concurrency; a width of 1 runs
/// fn(0, n) inline — the serial path sees one whole-range block, which
/// is only observable to callers that violate the slot discipline above.
void ParallelForDynamic(int64_t n, int64_t grain, int num_threads,
                        const std::function<void(int64_t begin,
                                                 int64_t end)>& fn);

/// Runs fn(i) for every i in [0, count) as work-stealing tasks, the
/// caller executing i == 0 and then helping; blocks until all complete.
/// The task-shaped sibling of ParallelFor for small heterogeneous
/// fan-outs (sort chunks, merge pairs).
void ParallelRun(int count, const std::function<void(int i)>& fn);

/// Comparison-based parallel sort on the shared scheduler: chunked
/// std::sort followed by log(W) rounds of pairwise std::merge into a
/// scratch buffer.
///
/// When `cmp` induces a strict *total* order over the elements (no two
/// distinct elements compare equivalent), the sorted sequence is unique,
/// so the output is bit-identical to std::sort and independent of
/// `num_threads` — the determinism contract the MST Kruskal sort relies
/// on. With genuinely tied elements the tie order may differ from
/// std::sort and across thread counts; callers needing determinism add a
/// final tie-break key instead.
///
/// Small inputs (or num_threads resolving to 1) fall back to a plain
/// std::sort with no scheduler handoff or scratch allocation.
template <typename T, typename Compare>
void ParallelSort(std::vector<T>* v, int num_threads, Compare cmp) {
  const int64_t n = static_cast<int64_t>(v->size());
  // Below this size the chunk sorts are cheaper than the task handoff and
  // the scratch allocation; one std::sort is observably identical.
  constexpr int64_t kMinParallelSize = 1 << 13;
  const int chunks = NumParallelChunks(n, num_threads);
  if (chunks <= 1 || n < kMinParallelSize) {
    std::sort(v->begin(), v->end(), cmp);
    return;
  }

  // Chunk boundaries follow the ParallelFor partition (c*n/W), but the
  // result is boundary-independent for total-order comparators, so the
  // only requirement here is covering [0, n) exactly.
  std::vector<int64_t> bounds(static_cast<size_t>(chunks) + 1);
  for (int c = 0; c <= chunks; ++c) {
    bounds[static_cast<size_t>(c)] = n * c / chunks;
  }
  ParallelRun(chunks, [&](int c) {
    std::sort(v->begin() + bounds[static_cast<size_t>(c)],
              v->begin() + bounds[static_cast<size_t>(c) + 1], cmp);
  });

  // Merge runs pairwise until one remains, ping-ponging between the input
  // and a scratch buffer. Each round's merges touch disjoint ranges.
  std::vector<T> scratch(v->size());
  std::vector<T>* src = v;
  std::vector<T>* dst = &scratch;
  while (bounds.size() > 2) {
    const int runs = static_cast<int>(bounds.size()) - 1;
    const int pairs = runs / 2;
    ParallelRun(pairs, [&](int p) {
      const int64_t lo = bounds[static_cast<size_t>(2 * p)];
      const int64_t mid = bounds[static_cast<size_t>(2 * p) + 1];
      const int64_t hi = bounds[static_cast<size_t>(2 * p) + 2];
      std::merge(src->begin() + lo, src->begin() + mid, src->begin() + mid,
                 src->begin() + hi, dst->begin() + lo, cmp);
    });
    if (runs % 2 != 0) {  // odd tail run: carry over unchanged
      std::copy(src->begin() + bounds[bounds.size() - 2], src->end(),
                dst->begin() + bounds[bounds.size() - 2]);
    }
    std::vector<int64_t> next;
    next.reserve(static_cast<size_t>(pairs) + 2);
    for (size_t b = 0; b < bounds.size(); b += 2) next.push_back(bounds[b]);
    if (bounds.size() % 2 == 0) next.push_back(bounds.back());
    bounds = std::move(next);
    std::swap(src, dst);
  }
  if (src != v) *v = std::move(*src);
}

}  // namespace netbone

#endif  // NETBONE_COMMON_PARALLEL_H_
