// Copyright 2026 The netbone Authors.
//
// Shared parallel-execution substrate: a lazily-created fixed thread pool
// that is reused across calls (no per-call thread spawn/join), plus a
// deterministic chunked ParallelFor on top of it.
//
// Determinism contract: ParallelFor partitions [0, n) into contiguous
// chunks whose boundaries depend only on (n, num_threads) — never on the
// pool size or on scheduling. Callers that write to disjoint, index-aligned
// output slots therefore produce bit-identical results regardless of how
// many OS threads actually execute the chunks.

#ifndef NETBONE_COMMON_PARALLEL_H_
#define NETBONE_COMMON_PARALLEL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace netbone {

/// Resolves a caller-facing thread-count knob: values <= 0 mean "use
/// hardware concurrency" (at least 1); positive values pass through.
int ResolveThreadCount(int requested);

/// Number of chunks ParallelFor(n, num_threads, ...) will invoke its
/// callback with: min(ResolveThreadCount(num_threads), n), at least 1.
/// Callers that size per-chunk accumulators must use this — it is the
/// single definition of the partition width.
int NumParallelChunks(int64_t n, int num_threads);

/// Fixed pool of worker threads with a blocking fork-join Run() primitive.
///
/// The pool owns size() - 1 OS threads; the thread calling Run()
/// participates as a worker, so a pool of size 1 spawns no threads at all.
/// Run() calls are serialized internally — concurrent callers queue up
/// rather than interleave, which keeps the pool small and the semantics
/// simple.
class ThreadPool {
 public:
  /// Creates a pool that can execute `num_threads` workers concurrently
  /// (including the caller of Run). num_threads < 1 is clamped to 1.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Maximum concurrency of Run(), counting the calling thread.
  int size() const { return static_cast<int>(threads_.size()) + 1; }

  /// Invokes fn(worker) for every worker in [0, num_workers), distributing
  /// the invocations over the pool (the caller executes some of them).
  /// Blocks until all invocations finish. num_workers may exceed size();
  /// excess workers simply share OS threads.
  void Run(int num_workers, const std::function<void(int worker)>& fn);

  /// Process-wide pool sized to hardware concurrency, created on first use
  /// and intentionally never destroyed (avoids shutdown-order races with
  /// static destructors).
  static ThreadPool& Global();

 private:
  void WorkerLoop();
  /// Claims and runs job workers until the current job is exhausted.
  /// Precondition: `lock` holds mu_. Returns with mu_ re-held.
  void DrainJob(std::unique_lock<std::mutex>& lock);

  std::vector<std::thread> threads_;

  std::mutex run_mu_;  // serializes Run() calls

  std::mutex mu_;
  std::condition_variable work_cv_;  // a job arrived (or shutdown)
  std::condition_variable done_cv_;  // the current job fully finished
  const std::function<void(int)>* job_ = nullptr;
  int job_next_ = 0;    // next unclaimed worker index
  int job_total_ = 0;   // workers in the current job
  int job_active_ = 0;  // claimed but not yet finished
  bool shutdown_ = false;
};

/// Deterministic chunked parallel loop over [0, n).
///
/// The range is split into W = min(max(num_threads_resolved, 1), n)
/// contiguous chunks — chunk c covers [c*n/W, (c+1)*n/W) — and
/// fn(begin, end, chunk) runs once per chunk on ThreadPool::Global().
/// Chunk boundaries depend only on (n, num_threads), so per-chunk
/// accumulators indexed by `chunk` are reproducible. `num_threads` <= 0
/// resolves to hardware concurrency. n <= 0 is a no-op; W == 1 runs inline
/// on the calling thread with no synchronization.
void ParallelFor(int64_t n, int num_threads,
                 const std::function<void(int64_t begin, int64_t end,
                                          int chunk)>& fn);

}  // namespace netbone

#endif  // NETBONE_COMMON_PARALLEL_H_
