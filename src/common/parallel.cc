#include "common/parallel.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>

#include "common/random.h"

namespace netbone {
namespace {

// True while the current thread is executing a ThreadPool job; nested
// Run() calls then degrade to inline execution instead of deadlocking on
// the pool's Run() serialization. (TaskScheduler has no analogue: nested
// spawns are native there.)
thread_local bool inside_pool_job = false;

// Consecutive empty scans a worker tolerates (yielding between them)
// before parking on the scheduler's epoch.
constexpr int kIdleScansBeforeSleep = 16;

// Park timeout: an (unlikely) missed wakeup costs at most this much
// latency, never liveness.
constexpr std::chrono::milliseconds kParkTimeout{1};

}  // namespace

int ResolveThreadCount(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

int SchedulerThreadsFromEnv(const char* value, int hardware_threads) {
  hardware_threads = std::max(hardware_threads, 1);
  if (value == nullptr || *value == '\0') return hardware_threads;
  // Strict decimal parse: any trailing junk ("4x", "2.5") rejects the
  // override rather than half-applying it.
  long parsed = 0;
  char* end = nullptr;
  errno = 0;
  parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || errno == ERANGE || parsed < 0) {
    return hardware_threads;
  }
  if (parsed == 0) return hardware_threads;  // 0 = hardware, the knob's doc
  return static_cast<int>(
      std::min<long>(parsed, static_cast<long>(kMaxSchedulerThreads)));
}

int NumParallelChunks(int64_t n, int num_threads) {
  if (n <= 0) return 1;
  return static_cast<int>(
      std::min<int64_t>(ResolveThreadCount(num_threads), n));
}

// ---------------------------------------------------------------------------
// TaskScheduler.
// ---------------------------------------------------------------------------

struct TaskScheduler::Task {
  std::function<void()> fn;
  TaskGroup* group;
};

// Per-worker state: a fixed-capacity Chase–Lev deque (the owner pushes
// and pops at the bottom, thieves race a CAS at the top) plus the
// worker's fixed-seed victim permutation. The capacity bound is safe, not
// just a size limit: the owner never wraps onto a slot a thief could
// still read, because Push refuses once bottom - top reaches capacity
// (the spawner then runs the task inline — less parallel, still correct).
struct TaskScheduler::Worker {
  static constexpr int64_t kDequeCapacity = 8192;  // power of two
  static constexpr int64_t kDequeMask = kDequeCapacity - 1;

  Worker() : buffer(kDequeCapacity) {}

  std::atomic<int64_t> top{0};     // next slot thieves take
  std::atomic<int64_t> bottom{0};  // next slot the owner fills
  std::vector<std::atomic<Task*>> buffer;
  std::vector<int> victims;  // steal order: fixed-seed permutation
  std::thread thread;
};

thread_local TaskScheduler* TaskScheduler::tls_scheduler_ = nullptr;
thread_local TaskScheduler::Worker* TaskScheduler::tls_worker_ = nullptr;

// The deque operations follow Chase & Lev (SPAA'05) with the memory
// orders of Lê et al. (PPoPP'13), conservatively strengthened to seq_cst
// on the index variables — the loops scheduled here are far too coarse
// for fence micro-costs to show.

bool TaskScheduler::DequePush(Worker& worker, Task* task) {
  const int64_t b = worker.bottom.load(std::memory_order_relaxed);
  const int64_t t = worker.top.load(std::memory_order_acquire);
  if (b - t >= Worker::kDequeCapacity) return false;
  worker.buffer[static_cast<size_t>(b & Worker::kDequeMask)].store(
      task, std::memory_order_relaxed);
  worker.bottom.store(b + 1, std::memory_order_seq_cst);
  return true;
}

TaskScheduler::Task* TaskScheduler::DequePop(Worker& worker) {
  const int64_t b = worker.bottom.load(std::memory_order_relaxed) - 1;
  worker.bottom.store(b, std::memory_order_seq_cst);
  int64_t t = worker.top.load(std::memory_order_seq_cst);
  if (t > b) {  // deque was empty
    worker.bottom.store(b + 1, std::memory_order_relaxed);
    return nullptr;
  }
  Task* task = worker.buffer[static_cast<size_t>(b & Worker::kDequeMask)]
                   .load(std::memory_order_relaxed);
  if (t == b) {  // last element: race the thieves for it
    if (!worker.top.compare_exchange_strong(t, t + 1,
                                            std::memory_order_seq_cst)) {
      task = nullptr;  // a thief won
    }
    worker.bottom.store(b + 1, std::memory_order_relaxed);
  }
  return task;
}

TaskScheduler::Task* TaskScheduler::DequeSteal(Worker& worker) {
  int64_t t = worker.top.load(std::memory_order_seq_cst);
  const int64_t b = worker.bottom.load(std::memory_order_seq_cst);
  if (t >= b) return nullptr;
  Task* task = worker.buffer[static_cast<size_t>(t & Worker::kDequeMask)]
                   .load(std::memory_order_relaxed);
  if (!worker.top.compare_exchange_strong(t, t + 1,
                                          std::memory_order_seq_cst)) {
    return nullptr;  // lost the race; the caller moves to the next victim
  }
  return task;
}

TaskScheduler::TaskScheduler(int num_threads) {
  const int spawn = std::max(num_threads, 1) - 1;
  workers_.reserve(static_cast<size_t>(spawn));
  for (int w = 0; w < spawn; ++w) {
    workers_.push_back(std::make_unique<Worker>());
  }
  for (int w = 0; w < spawn; ++w) {
    Worker& worker = *workers_[static_cast<size_t>(w)];
    worker.victims.reserve(static_cast<size_t>(spawn > 0 ? spawn - 1 : 0));
    for (int v = 0; v < spawn; ++v) {
      if (v != w) worker.victims.push_back(v);
    }
    // Shuffled under the library Rng seeded by the worker id alone
    // (through the shared Mix64 diffusion): the same permutation every
    // run, every process — the steal pattern carries no entropy source.
    Rng rng(Mix64(static_cast<uint64_t>(w) + 1));
    rng.Shuffle(&worker.victims);
  }
  // Threads start only after every Worker (and victim table) is built.
  for (int w = 0; w < spawn; ++w) {
    workers_[static_cast<size_t>(w)]->thread =
        std::thread([this, w] { WorkerLoop(w); });
  }
}

TaskScheduler::~TaskScheduler() {
  if (metrics_registry_ != nullptr) metrics_registry_->Unregister(this);
  shutdown_.store(true, std::memory_order_release);
  Signal();
  {
    // Serialize with parked workers' predicate checks so none can sleep
    // through the shutdown notify.
    std::lock_guard<std::mutex> lock(sleep_mu_);
  }
  sleep_cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

TaskScheduler& TaskScheduler::Global() {
  // Leaked on purpose: joining workers from a static destructor can
  // deadlock with other atexit teardown. NETBONE_NUM_THREADS overrides
  // the hardware-concurrency default for containerized deployments whose
  // cgroup quota is narrower than the host's core count.
  static TaskScheduler* scheduler = [] {
    auto* s = new TaskScheduler(SchedulerThreadsFromEnv(
        std::getenv("NETBONE_NUM_THREADS"), ResolveThreadCount(0)));
    // Both the scheduler and the global registry are leaked, so the
    // non-owning registration can never dangle.
    s->RegisterMetrics(obs::MetricRegistry::Global(), "scheduler");
    return s;
  }();
  return *scheduler;
}

TaskScheduler::MetricsStats TaskScheduler::metrics_stats() const {
  MetricsStats stats;
  stats.tasks_executed = tasks_executed_.Value();
  stats.steals = steals_.Value();
  stats.parks = parks_.Value();
  stats.wakes = wakes_.Value();
  stats.injected = injected_count_.Value();
  stats.inline_runs = inline_runs_.Value();
  return stats;
}

void TaskScheduler::RegisterMetrics(obs::MetricRegistry& registry,
                                    const std::string& prefix) {
  metrics_registry_ = &registry;
  registry.RegisterCounter(prefix + ".tasks_executed", &tasks_executed_,
                           this);
  registry.RegisterCounter(prefix + ".steals", &steals_, this);
  registry.RegisterCounter(prefix + ".parks", &parks_, this);
  registry.RegisterCounter(prefix + ".wakes", &wakes_, this);
  registry.RegisterCounter(prefix + ".injected", &injected_count_, this);
  registry.RegisterCounter(prefix + ".inline_runs", &inline_runs_, this);
  registry.RegisterGauge(
      prefix + ".workers", [this] { return int64_t{num_workers()}; }, this);
  registry.RegisterHistogram(prefix + ".task_ns", &task_ns_, this);
}

void TaskScheduler::WorkerLoop(int worker_id) {
  Worker* self = workers_[static_cast<size_t>(worker_id)].get();
  tls_scheduler_ = this;
  tls_worker_ = self;
  int idle_scans = 0;
  while (!shutdown_.load(std::memory_order_acquire)) {
    const uint64_t observed = epoch();
    if (Task* task = FindTask(self)) {
      ExecuteTask(task);
      idle_scans = 0;
      continue;
    }
    if (++idle_scans < kIdleScansBeforeSleep) {
      std::this_thread::yield();
      continue;
    }
    SleepUntilSignal(observed);
    idle_scans = 0;
  }
}

TaskScheduler::Task* TaskScheduler::FindTask(Worker* self) {
  if (self != nullptr) {
    if (Task* task = DequePop(*self)) return task;
  }
  {
    Task* task = nullptr;
    if (injected_.TryPop(&task)) return task;
  }
  if (self != nullptr) {
    for (const int victim : self->victims) {
      if (Task* task = DequeSteal(*workers_[static_cast<size_t>(victim)])) {
        steals_.Increment();
        return task;
      }
    }
  } else {
    for (const auto& worker : workers_) {
      if (Task* task = DequeSteal(*worker)) {
        steals_.Increment();
        return task;
      }
    }
  }
  return nullptr;
}

bool TaskScheduler::HelpOnce() {
  Worker* self = tls_scheduler_ == this ? tls_worker_ : nullptr;
  Task* task = FindTask(self);
  if (task == nullptr) return false;
  ExecuteTask(task);
  return true;
}

void TaskScheduler::ExecuteTask(Task* task) {
  TaskGroup* group = task->group;
  if (task_timing_.load(std::memory_order_relaxed)) {
    const auto start = std::chrono::steady_clock::now();
    task->fn();
    task_ns_.Record(std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count());
  } else {
    task->fn();
  }
  tasks_executed_.Increment();
  delete task;
  // The group may be destroyed the instant a waiter observes pending == 0,
  // so this decrement is the last touch of group memory; the wakeup below
  // goes through the scheduler, which outlives every group.
  if (group->pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    Signal();
  }
}

void TaskScheduler::Submit(Task* task) {
  if (tls_scheduler_ == this && tls_worker_ != nullptr) {
    if (DequePush(*tls_worker_, task)) {
      Signal();
      return;
    }
    // Own deque full: run inline. Correct (the task just executes now,
    // on this worker) and self-limiting — draining the task frees work.
    inline_runs_.Increment();
    ExecuteTask(task);
    return;
  }
  if (!Inject(task)) {
    // Injection ring full: run inline on the submitting thread. Correct
    // (the task just executes now) and self-limiting — draining the task
    // frees queue pressure — exactly like the full-deque path above.
    inline_runs_.Increment();
    ExecuteTask(task);
    return;
  }
  Signal();
}

bool TaskScheduler::Inject(Task* task) {
  if (!injected_.TryPush(task)) return false;
  injected_count_.Increment();
  return true;
}

void TaskScheduler::Signal() {
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  if (sleepers_.load(std::memory_order_acquire) > 0) {
    // The empty critical section serializes with a parking thread that
    // has incremented sleepers_ but not yet re-checked the epoch: either
    // it sees the new epoch under the lock, or it is already in wait()
    // and the notify reaches it.
    { std::lock_guard<std::mutex> lock(sleep_mu_); }
    sleep_cv_.notify_all();
    wakes_.Increment();
  }
}

void TaskScheduler::SleepUntilSignal(uint64_t observed_epoch) {
  std::unique_lock<std::mutex> lock(sleep_mu_);
  if (shutdown_.load(std::memory_order_acquire) ||
      epoch() != observed_epoch) {
    return;
  }
  parks_.Increment();
  sleepers_.fetch_add(1, std::memory_order_acq_rel);
  sleep_cv_.wait_for(lock, kParkTimeout, [&] {
    return shutdown_.load(std::memory_order_acquire) ||
           epoch() != observed_epoch;
  });
  sleepers_.fetch_sub(1, std::memory_order_acq_rel);
}

// ---------------------------------------------------------------------------
// TaskGroup.
// ---------------------------------------------------------------------------

TaskGroup::TaskGroup() : scheduler_(&TaskScheduler::Global()) {}

TaskGroup::TaskGroup(TaskScheduler* scheduler) : scheduler_(scheduler) {}

TaskGroup::~TaskGroup() { Wait(); }

void TaskGroup::Spawn(std::function<void()> fn) {
  pending_.fetch_add(1, std::memory_order_acq_rel);
  scheduler_->Submit(new TaskScheduler::Task{std::move(fn), this});
}

void TaskGroup::Wait() {
  while (pending_.load(std::memory_order_acquire) > 0) {
    const uint64_t observed = scheduler_->epoch();
    if (scheduler_->HelpOnce()) continue;
    if (pending_.load(std::memory_order_acquire) == 0) break;
    // Nothing runnable anywhere: the group's last tasks are mid-flight on
    // other threads. Park until the task set (or this group) changes.
    scheduler_->SleepUntilSignal(observed);
  }
}

// ---------------------------------------------------------------------------
// ThreadPool (legacy fork-join primitive).
// ---------------------------------------------------------------------------

ThreadPool::ThreadPool(int num_threads) {
  const int spawn = std::max(num_threads, 1) - 1;
  threads_.reserve(static_cast<size_t>(spawn));
  for (int t = 0; t < spawn; ++t) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::DrainJob(std::unique_lock<std::mutex>& lock) {
  while (job_ != nullptr && job_next_ < job_total_) {
    const int worker = job_next_++;
    ++job_active_;
    const std::function<void(int)>* job = job_;
    lock.unlock();
    inside_pool_job = true;
    (*job)(worker);
    inside_pool_job = false;
    lock.lock();
    --job_active_;
    if (job_next_ >= job_total_ && job_active_ == 0) done_cv_.notify_all();
  }
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] {
      return shutdown_ || (job_ != nullptr && job_next_ < job_total_);
    });
    if (shutdown_) return;
    DrainJob(lock);
  }
}

void ThreadPool::Run(int num_workers, const std::function<void(int)>& fn) {
  if (num_workers <= 0) return;
  if (num_workers == 1 || threads_.empty() || inside_pool_job) {
    // Serial fast path: no locking, no cross-thread handoff.
    for (int w = 0; w < num_workers; ++w) fn(w);
    return;
  }
  std::lock_guard<std::mutex> run_lock(run_mu_);
  std::unique_lock<std::mutex> lock(mu_);
  job_ = &fn;
  job_next_ = 0;
  job_total_ = num_workers;
  work_cv_.notify_all();
  DrainJob(lock);  // the caller works too
  done_cv_.wait(lock, [this] {
    return job_next_ >= job_total_ && job_active_ == 0;
  });
  job_ = nullptr;
}

ThreadPool& ThreadPool::Global() {
  // Leaked on purpose: joining workers from a static destructor can
  // deadlock with other atexit teardown.
  static ThreadPool* pool = new ThreadPool(ResolveThreadCount(0));
  return *pool;
}

// ---------------------------------------------------------------------------
// Loop-shaped entry points.
// ---------------------------------------------------------------------------

void ParallelFor(int64_t n, int num_threads,
                 const std::function<void(int64_t, int64_t, int)>& fn) {
  if (n <= 0) return;
  const int chunks = NumParallelChunks(n, num_threads);
  if (chunks <= 1) {
    fn(0, n, 0);
    return;
  }
  TaskGroup group;
  for (int c = 1; c < chunks; ++c) {
    group.Spawn([&fn, n, chunks, c] {
      const int64_t begin = n * c / chunks;
      const int64_t end = n * (c + 1) / chunks;
      if (begin < end) fn(begin, end, c);
    });
  }
  fn(0, n / chunks, 0);  // chunk 0 runs on the caller before it helps
  group.Wait();
}

void ParallelForDynamic(int64_t n, int64_t grain, int num_threads,
                        const std::function<void(int64_t, int64_t)>& fn) {
  if (n <= 0) return;
  const int64_t g = std::max<int64_t>(grain, 1);
  const int64_t num_blocks = (n + g - 1) / g;
  const int width = static_cast<int>(
      std::min<int64_t>(ResolveThreadCount(num_threads), num_blocks));
  if (width <= 1) {
    fn(0, n);
    return;
  }
  // Self-scheduling runners: `width` tasks race a shared cursor for the
  // next unclaimed block, so a heavy block occupies one runner while the
  // rest drain the remainder — dynamic balancing with exactly one
  // fetch_add of bookkeeping per block. The runner *tasks* are what the
  // deques distribute (and thieves steal); num_threads caps concurrency
  // because only `width` runners exist. Block boundaries depend only on
  // (n, grain).
  std::atomic<int64_t> next_block{0};
  const auto runner = [&next_block, num_blocks, g, n, &fn] {
    for (;;) {
      const int64_t block =
          next_block.fetch_add(1, std::memory_order_relaxed);
      if (block >= num_blocks) return;
      const int64_t begin = block * g;
      fn(begin, std::min<int64_t>(begin + g, n));
    }
  };
  TaskGroup group;
  for (int r = 1; r < width; ++r) group.Spawn(runner);
  runner();  // the caller is runner 0
  group.Wait();
}

void ParallelRun(int count, const std::function<void(int)>& fn) {
  if (count <= 0) return;
  if (count == 1) {
    fn(0);
    return;
  }
  TaskGroup group;
  for (int i = 1; i < count; ++i) {
    group.Spawn([&fn, i] { fn(i); });
  }
  fn(0);
  group.Wait();
}

}  // namespace netbone
