#include "common/parallel.h"

#include <algorithm>

namespace netbone {
namespace {

// True while the current thread is executing a pool job; nested Run()
// calls then degrade to inline execution instead of deadlocking on the
// pool's Run() serialization.
thread_local bool inside_pool_job = false;

}  // namespace

int ResolveThreadCount(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

int NumParallelChunks(int64_t n, int num_threads) {
  if (n <= 0) return 1;
  return static_cast<int>(
      std::min<int64_t>(ResolveThreadCount(num_threads), n));
}

ThreadPool::ThreadPool(int num_threads) {
  const int spawn = std::max(num_threads, 1) - 1;
  threads_.reserve(static_cast<size_t>(spawn));
  for (int t = 0; t < spawn; ++t) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::DrainJob(std::unique_lock<std::mutex>& lock) {
  while (job_ != nullptr && job_next_ < job_total_) {
    const int worker = job_next_++;
    ++job_active_;
    const std::function<void(int)>* job = job_;
    lock.unlock();
    inside_pool_job = true;
    (*job)(worker);
    inside_pool_job = false;
    lock.lock();
    --job_active_;
    if (job_next_ >= job_total_ && job_active_ == 0) done_cv_.notify_all();
  }
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] {
      return shutdown_ || (job_ != nullptr && job_next_ < job_total_);
    });
    if (shutdown_) return;
    DrainJob(lock);
  }
}

void ThreadPool::Run(int num_workers, const std::function<void(int)>& fn) {
  if (num_workers <= 0) return;
  if (num_workers == 1 || threads_.empty() || inside_pool_job) {
    // Serial fast path: no locking, no cross-thread handoff.
    for (int w = 0; w < num_workers; ++w) fn(w);
    return;
  }
  std::lock_guard<std::mutex> run_lock(run_mu_);
  std::unique_lock<std::mutex> lock(mu_);
  job_ = &fn;
  job_next_ = 0;
  job_total_ = num_workers;
  work_cv_.notify_all();
  DrainJob(lock);  // the caller works too
  done_cv_.wait(lock, [this] {
    return job_next_ >= job_total_ && job_active_ == 0;
  });
  job_ = nullptr;
}

ThreadPool& ThreadPool::Global() {
  // Leaked on purpose: joining workers from a static destructor can
  // deadlock with other atexit teardown.
  static ThreadPool* pool = new ThreadPool(ResolveThreadCount(0));
  return *pool;
}

void ParallelFor(int64_t n, int num_threads,
                 const std::function<void(int64_t, int64_t, int)>& fn) {
  if (n <= 0) return;
  const int chunks = NumParallelChunks(n, num_threads);
  if (chunks <= 1) {
    fn(0, n, 0);
    return;
  }
  ThreadPool::Global().Run(chunks, [&](int chunk) {
    const int64_t begin = n * chunk / chunks;
    const int64_t end = n * (chunk + 1) / chunks;
    if (begin < end) fn(begin, end, chunk);
  });
}

}  // namespace netbone
