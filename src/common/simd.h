// Copyright 2026 The netbone Authors.
//
// Minimal portable SIMD wrapper for the batched scoring kernels
// (core/simd_kernels*.cc). One trait class per instruction set exposes a
// fixed-width pack of doubles plus exactly the operations the kernels
// need; the width-generic kernel templates (core/simd_kernels_impl.h)
// compile against whichever trait their translation unit enables.
//
// Bit-identity ground rules, which every trait must honour:
//  * Only IEEE-754 correctly-rounded operations are exposed: add, sub,
//    mul, div, sqrt. A lane op therefore produces exactly the bits the
//    scalar op produces for the same inputs — vectorization changes
//    throughput, never values.
//  * No fused-multiply-add, ever. The kernel TUs are compiled with FMA
//    codegen off (-mno-fma / -ffp-contract=off, see CMakeLists.txt) so
//    the compiler cannot contract a Mul+Add pair behind our backs; the
//    wrapper itself never exposes an FMA primitive.
//  * Min/Max/Blend are selection, not arithmetic: they return one of
//    their operands bitwise. The kernels only rely on them for values
//    where scalar std::min/std::max/ternary agree (no NaN lanes, no
//    mixed-sign zeros), which the call sites establish.
//
// A trait is only defined when its TU is compiled for the matching ISA
// (__AVX2__ / __SSE2__ on x86-64, __aarch64__ for NEON), so including
// this header is always safe; dispatch across compiled traits happens at
// runtime in core/simd_kernels.cc.

#ifndef NETBONE_COMMON_SIMD_H_
#define NETBONE_COMMON_SIMD_H_

#include <cstdint>

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#endif
#if defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace netbone::simd {

// ---------------------------------------------------------------------------
// AVX2: 4 doubles per lane group. Only compiled into the -mavx2 TU.
// ---------------------------------------------------------------------------
#if defined(__AVX2__) && (defined(__x86_64__) || defined(_M_X64))

struct Avx2 {
  static constexpr int kWidth = 4;
  using VD = __m256d;  ///< 4 doubles
  using VM = __m256d;  ///< lane mask: all-ones / all-zeros doubles
  using VE = __m256i;  ///< 4 int64 exponents

  static VD Load(const double* p) { return _mm256_loadu_pd(p); }
  static void Store(double* p, VD v) { _mm256_storeu_pd(p, v); }
  static VD Set1(double x) { return _mm256_set1_pd(x); }
  static VD Add(VD a, VD b) { return _mm256_add_pd(a, b); }
  static VD Sub(VD a, VD b) { return _mm256_sub_pd(a, b); }
  static VD Mul(VD a, VD b) { return _mm256_mul_pd(a, b); }
  static VD Div(VD a, VD b) { return _mm256_div_pd(a, b); }
  static VD Sqrt(VD a) { return _mm256_sqrt_pd(a); }
  static VD Min(VD a, VD b) { return _mm256_min_pd(a, b); }
  static VD Max(VD a, VD b) { return _mm256_max_pd(a, b); }
  static VM CmpGt(VD a, VD b) { return _mm256_cmp_pd(a, b, _CMP_GT_OQ); }
  static VM CmpGe(VD a, VD b) { return _mm256_cmp_pd(a, b, _CMP_GE_OQ); }
  static VM CmpLt(VD a, VD b) { return _mm256_cmp_pd(a, b, _CMP_LT_OQ); }
  static VM MaskAnd(VM a, VM b) { return _mm256_and_pd(a, b); }
  static VD Blend(VM m, VD if_true, VD if_false) {
    return _mm256_blendv_pd(if_false, if_true, m);
  }
  static bool AllTrue(VM m) { return _mm256_movemask_pd(m) == 0xF; }
  static bool AnyTrue(VM m) { return _mm256_movemask_pd(m) != 0; }

  /// Interleaves a/b into p: p[2i] = a[i], p[2i+1] = b[i] — the
  /// (score, sdev) pair layout of an EdgeScore array.
  static void StorePairs(double* p, VD a, VD b) {
    const VD lo = _mm256_unpacklo_pd(a, b);  // a0 b0 a2 b2
    const VD hi = _mm256_unpackhi_pd(a, b);  // a1 b1 a3 b3
    _mm256_storeu_pd(p, _mm256_permute2f128_pd(lo, hi, 0x20));
    _mm256_storeu_pd(p + 4, _mm256_permute2f128_pd(lo, hi, 0x31));
  }

  /// Converts lanes holding exact small non-negative integers (the DF
  /// degree-1 column) to int64 exponents. Callers guard magnitude
  /// (< 2^31) and fall back to scalar beyond it.
  static VE ExpFromDouble(VD v) {
    return _mm256_cvtepi32_epi64(_mm256_cvtpd_epi32(v));
  }
  static bool ExpAllZero(VE e) { return _mm256_testz_si256(e, e) != 0; }
  static VM ExpOddMask(VE e) {
    const __m256i one = _mm256_set1_epi64x(1);
    return _mm256_castsi256_pd(
        _mm256_cmpeq_epi64(_mm256_and_si256(e, one), one));
  }
  static VE ExpHalve(VE e) { return _mm256_srli_epi64(e, 1); }
};

#endif  // __AVX2__

// ---------------------------------------------------------------------------
// SSE2: 2 doubles. Baseline on every x86-64, no extra compile flags.
// ---------------------------------------------------------------------------
#if (defined(__SSE2__) || defined(_M_X64)) && \
    (defined(__x86_64__) || defined(_M_X64))

struct Sse2 {
  static constexpr int kWidth = 2;
  using VD = __m128d;
  using VM = __m128d;
  /// Exponents live in scalar slots: 64-bit integer compares predate
  /// SSE4.1 and two lanes are not worth emulating them.
  struct VE {
    int64_t v[2];
  };

  static VD Load(const double* p) { return _mm_loadu_pd(p); }
  static void Store(double* p, VD v) { _mm_storeu_pd(p, v); }
  static VD Set1(double x) { return _mm_set1_pd(x); }
  static VD Add(VD a, VD b) { return _mm_add_pd(a, b); }
  static VD Sub(VD a, VD b) { return _mm_sub_pd(a, b); }
  static VD Mul(VD a, VD b) { return _mm_mul_pd(a, b); }
  static VD Div(VD a, VD b) { return _mm_div_pd(a, b); }
  static VD Sqrt(VD a) { return _mm_sqrt_pd(a); }
  static VD Min(VD a, VD b) { return _mm_min_pd(a, b); }
  static VD Max(VD a, VD b) { return _mm_max_pd(a, b); }
  static VM CmpGt(VD a, VD b) { return _mm_cmpgt_pd(a, b); }
  static VM CmpGe(VD a, VD b) { return _mm_cmpge_pd(a, b); }
  static VM CmpLt(VD a, VD b) { return _mm_cmplt_pd(a, b); }
  static VM MaskAnd(VM a, VM b) { return _mm_and_pd(a, b); }
  static VD Blend(VM m, VD if_true, VD if_false) {
    // SSE2 has no blendv; masks are all-ones/all-zeros so and/andnot is
    // an exact bitwise select.
    return _mm_or_pd(_mm_and_pd(m, if_true), _mm_andnot_pd(m, if_false));
  }
  static bool AllTrue(VM m) { return _mm_movemask_pd(m) == 0x3; }
  static bool AnyTrue(VM m) { return _mm_movemask_pd(m) != 0; }

  static void StorePairs(double* p, VD a, VD b) {
    _mm_storeu_pd(p, _mm_unpacklo_pd(a, b));      // a0 b0
    _mm_storeu_pd(p + 2, _mm_unpackhi_pd(a, b));  // a1 b1
  }

  static VE ExpFromDouble(VD v) {
    double tmp[2];
    _mm_storeu_pd(tmp, v);
    return VE{{static_cast<int64_t>(tmp[0]), static_cast<int64_t>(tmp[1])}};
  }
  static bool ExpAllZero(VE e) { return (e.v[0] | e.v[1]) == 0; }
  static VM ExpOddMask(VE e) {
    return _mm_castsi128_pd(_mm_set_epi64x((e.v[1] & 1) ? -1 : 0,
                                           (e.v[0] & 1) ? -1 : 0));
  }
  static VE ExpHalve(VE e) { return VE{{e.v[0] >> 1, e.v[1] >> 1}}; }
};

#endif  // __SSE2__

// ---------------------------------------------------------------------------
// NEON (aarch64): 2 doubles. Baseline on every aarch64.
// ---------------------------------------------------------------------------
#if defined(__aarch64__)

struct Neon {
  static constexpr int kWidth = 2;
  using VD = float64x2_t;
  using VM = uint64x2_t;
  using VE = int64x2_t;

  static VD Load(const double* p) { return vld1q_f64(p); }
  static void Store(double* p, VD v) { vst1q_f64(p, v); }
  static VD Set1(double x) { return vdupq_n_f64(x); }
  static VD Add(VD a, VD b) { return vaddq_f64(a, b); }
  static VD Sub(VD a, VD b) { return vsubq_f64(a, b); }
  static VD Mul(VD a, VD b) { return vmulq_f64(a, b); }
  static VD Div(VD a, VD b) { return vdivq_f64(a, b); }
  static VD Sqrt(VD a) { return vsqrtq_f64(a); }
  static VD Min(VD a, VD b) { return vminq_f64(a, b); }
  static VD Max(VD a, VD b) { return vmaxq_f64(a, b); }
  static VM CmpGt(VD a, VD b) { return vcgtq_f64(a, b); }
  static VM CmpGe(VD a, VD b) { return vcgeq_f64(a, b); }
  static VM CmpLt(VD a, VD b) { return vcltq_f64(a, b); }
  static VM MaskAnd(VM a, VM b) { return vandq_u64(a, b); }
  static VD Blend(VM m, VD if_true, VD if_false) {
    return vbslq_f64(m, if_true, if_false);
  }
  static bool AllTrue(VM m) {
    return vminvq_u32(vreinterpretq_u32_u64(m)) == 0xFFFFFFFFu;
  }
  static bool AnyTrue(VM m) {
    return vmaxvq_u32(vreinterpretq_u32_u64(m)) != 0;
  }

  static void StorePairs(double* p, VD a, VD b) {
    float64x2x2_t pair;
    pair.val[0] = a;
    pair.val[1] = b;
    vst2q_f64(p, pair);  // a0 b0 a1 b1
  }

  static VE ExpFromDouble(VD v) { return vcvtq_s64_f64(v); }
  static bool ExpAllZero(VE e) {
    return vmaxvq_u32(vreinterpretq_u32_s64(e)) == 0;
  }
  static VM ExpOddMask(VE e) {
    const int64x2_t one = vdupq_n_s64(1);
    return vceqq_s64(vandq_s64(e, one), one);
  }
  static VE ExpHalve(VE e) { return vshrq_n_s64(e, 1); }
};

#endif  // __aarch64__

}  // namespace netbone::simd

#endif  // NETBONE_COMMON_SIMD_H_
