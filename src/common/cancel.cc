#include "common/cancel.h"

#include <algorithm>
#include <thread>

namespace netbone {

Status InterruptibleSleep(std::chrono::nanoseconds duration,
                          const CancelToken& cancel) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point wake = Clock::now() + duration;
  // Slice the sleep so an explicit Cancel() is observed within ~1ms and a
  // deadline never overshoots by more than one slice. A null token takes
  // one uninterrupted sleep.
  constexpr auto kSlice = std::chrono::milliseconds(1);
  if (!cancel.CanExpire()) {
    std::this_thread::sleep_until(wake);
    return Status::OK();
  }
  const Clock::time_point deadline = cancel.deadline();
  while (true) {
    Status status = cancel.Check();
    if (!status.ok()) return status;
    const Clock::time_point now = Clock::now();
    if (now >= wake) return Status::OK();
    std::this_thread::sleep_until(std::min({now + kSlice, wake, deadline}));
  }
}

}  // namespace netbone
