// Copyright 2026 The netbone Authors.
//
// Bounds-checked binary (de)serialization primitives for the snapshot
// subsystem. ByteWriter appends fixed-width little-endian scalars and
// length-prefixed blobs to a growable buffer; ByteReader walks the same
// layout back, returning Status::Corruption on any underflow instead of
// ever reading past the end — the snapshot restore path is fed adversarial
// (truncated, bit-flipped) bytes by design and must stay memory-safe for
// every input.
//
// Only trivially-copyable element types may go through the Pod helpers;
// floating-point values round-trip bitwise (no text formatting), which is
// what the bit-identical warm-restart contract requires. The library
// targets little-endian hosts; the snapshot file header tags byte order
// explicitly so a foreign-endian file is rejected as NotSupported rather
// than decoded wrong.

#ifndef NETBONE_COMMON_SERIALIZE_H_
#define NETBONE_COMMON_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "common/result.h"

namespace netbone {

/// Append-only binary buffer. All multi-byte scalars are stored in the
/// host's native byte order (little-endian on every supported target; the
/// file-level endianness tag enforces this on read).
class ByteWriter {
 public:
  void U32(uint32_t value) { Raw(&value, sizeof(value)); }
  void U64(uint64_t value) { Raw(&value, sizeof(value)); }
  void I64(int64_t value) { Raw(&value, sizeof(value)); }
  void F64(double value) { Raw(&value, sizeof(value)); }

  /// Length-prefixed (u64) byte string.
  void Str(const std::string& s) {
    U64(static_cast<uint64_t>(s.size()));
    Raw(s.data(), s.size());
  }

  /// Length-prefixed (u64 element count) vector of a trivially-copyable
  /// element type, written as one contiguous memcpy.
  template <typename T>
  void PodVec(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    U64(static_cast<uint64_t>(v.size()));
    Raw(v.data(), v.size() * sizeof(T));
  }

  /// Raw bytes, no length prefix.
  void Raw(const void* data, size_t len) {
    if (len == 0) return;
    const size_t old = buffer_.size();
    buffer_.resize(old + len);
    std::memcpy(buffer_.data() + old, data, len);
  }

  const std::string& buffer() const { return buffer_; }
  std::string&& TakeBuffer() { return std::move(buffer_); }
  size_t size() const { return buffer_.size(); }

 private:
  std::string buffer_;
};

/// Cursor over a read-only byte span. Every accessor checks remaining
/// bytes first and returns Corruption on underflow; the cursor never moves
/// past the end, so a failed read leaves the reader in a defined state.
class ByteReader {
 public:
  explicit ByteReader(std::span<const unsigned char> data) : data_(data) {}
  ByteReader(const void* data, size_t len)
      : data_(static_cast<const unsigned char*>(data), len) {}

  size_t remaining() const { return data_.size() - pos_; }
  size_t position() const { return pos_; }
  bool exhausted() const { return pos_ == data_.size(); }

  Result<uint32_t> U32() { return Scalar<uint32_t>("u32"); }
  Result<uint64_t> U64() { return Scalar<uint64_t>("u64"); }
  Result<int64_t> I64() { return Scalar<int64_t>("i64"); }
  Result<double> F64() { return Scalar<double>("f64"); }

  Result<std::string> Str() {
    NETBONE_ASSIGN_OR_RETURN(const uint64_t len, U64());
    if (len > remaining()) {
      return Status::Corruption("string length overruns buffer");
    }
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_),
                  static_cast<size_t>(len));
    pos_ += static_cast<size_t>(len);
    return s;
  }

  template <typename T>
  Result<std::vector<T>> PodVec() {
    static_assert(std::is_trivially_copyable_v<T>);
    NETBONE_ASSIGN_OR_RETURN(const uint64_t count, U64());
    if (count > remaining() / sizeof(T)) {
      return Status::Corruption("vector length overruns buffer");
    }
    std::vector<T> v(static_cast<size_t>(count));
    if (count > 0) {
      std::memcpy(v.data(), data_.data() + pos_,
                  static_cast<size_t>(count) * sizeof(T));
      pos_ += static_cast<size_t>(count) * sizeof(T);
    }
    return v;
  }

  /// Skips `len` bytes; Corruption when fewer remain.
  Status Skip(size_t len) {
    if (len > remaining()) {
      return Status::Corruption("skip overruns buffer");
    }
    pos_ += len;
    return Status::OK();
  }

 private:
  template <typename T>
  Result<T> Scalar(const char* what) {
    if (sizeof(T) > remaining()) {
      return Status::Corruption(std::string("truncated ") + what);
    }
    T value;
    std::memcpy(&value, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  std::span<const unsigned char> data_;
  size_t pos_ = 0;
};

}  // namespace netbone

#endif  // NETBONE_COMMON_SERIALIZE_H_
