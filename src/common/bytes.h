// Copyright 2026 The netbone Authors.
//
// Byte accounting for long-lived caches and pools. Every resident-memory
// budget in the library (the serving layer's ScoreCache / GraphStore, the
// HSS Dijkstra-workspace pool trim) prices retained state through these
// helpers so the budgets agree on what "bytes" means: heap capacity
// actually reserved, not logical element counts.

#ifndef NETBONE_COMMON_BYTES_H_
#define NETBONE_COMMON_BYTES_H_

#include <cstdint>
#include <string>
#include <vector>

namespace netbone {

/// Heap bytes reserved by a vector: capacity (not size) times the element
/// footprint. Ignores heap allocations owned by the elements themselves;
/// callers with pointer-bearing elements add those separately.
template <typename T>
int64_t VectorBytes(const std::vector<T>& v) {
  return static_cast<int64_t>(v.capacity()) * static_cast<int64_t>(sizeof(T));
}

/// std::vector<bool> is bit-packed; count capacity in bits.
inline int64_t VectorBytes(const std::vector<bool>& v) {
  return static_cast<int64_t>((v.capacity() + 7) / 8);
}

/// Heap bytes of a string's character storage (zero when the small-string
/// optimization keeps it inline).
inline int64_t StringBytes(const std::string& s) {
  const size_t inline_capacity = std::string().capacity();
  return s.capacity() > inline_capacity
             ? static_cast<int64_t>(s.capacity() + 1)
             : 0;
}

}  // namespace netbone

#endif  // NETBONE_COMMON_BYTES_H_
