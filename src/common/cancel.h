// Copyright 2026 The netbone Authors.
//
// Cooperative cancellation and deadlines. A CancelSource owns a shared
// cancellation state (an explicit Cancel() flag plus an optional
// steady-clock deadline); CancelTokens are cheap copyable handles that
// long-running loops poll at work-grain boundaries — the scoring chunk
// loops (core/scored_edges.h), the HSS per-source batches, the serving
// engine's retry/backoff sleeps. Cancellation is *cooperative*: nothing
// is interrupted, loops observe the token and return a typed status
// (Status::Cancelled / Status::DeadlineExceeded) at the next check.
//
// Tokens form small chains: a source may be created with up to two
// parent tokens, and a token reports cancelled when its own state or any
// ancestor's fires. The serving engine uses this to combine three
// independent reasons to stop one scoring — the request's deadline, the
// client's explicit cancel token, and engine shutdown — into the single
// token the scoring loops poll.
//
// A default-constructed CancelToken is null: it never cancels, never
// expires, and costs one null check to poll — the fast path for the
// batch library, which passes no token at all.

#ifndef NETBONE_COMMON_CANCEL_H_
#define NETBONE_COMMON_CANCEL_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <utility>

#include "common/status.h"

namespace netbone {

namespace internal {

struct CancelStateNode {
  std::atomic<bool> cancelled{false};
  /// time_point::max() encodes "no deadline".
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  /// Up to two parent states (engine shutdown, caller token). Parents are
  /// held by shared_ptr so a chained token keeps its ancestors alive.
  std::shared_ptr<const CancelStateNode> parents[2];
};

}  // namespace internal

/// Copyable, thread-safe handle polled by cancellable loops.
class CancelToken {
 public:
  /// Null token: IsNull() is true, Check() is always OK.
  CancelToken() = default;

  bool IsNull() const { return state_ == nullptr; }

  /// True once Cancel() fired on this token's source or any ancestor.
  bool CancellationRequested() const {
    for (const internal::CancelStateNode* node = state_.get(); node != nullptr;) {
      if (node->cancelled.load(std::memory_order_acquire)) return true;
      // Depth-first over the (tiny) parent chain without recursion: chains
      // in practice are a list (each source has at most one non-null
      // second parent at the engine root, which itself has none).
      const internal::CancelStateNode* second = node->parents[1].get();
      if (second != nullptr &&
          second->cancelled.load(std::memory_order_acquire)) {
        return true;
      }
      if (second != nullptr && SecondHasAncestors(*second) &&
          CancelToken(node->parents[1]).CancellationRequested()) {
        return true;
      }
      node = node->parents[0].get();
    }
    return false;
  }

  /// The tightest deadline along the chain, or time_point::max().
  std::chrono::steady_clock::time_point deadline() const {
    auto deadline = std::chrono::steady_clock::time_point::max();
    for (const internal::CancelStateNode* node = state_.get(); node != nullptr;
         node = node->parents[0].get()) {
      deadline = std::min(deadline, node->deadline);
      if (node->parents[1] != nullptr) {
        deadline = std::min(deadline, CancelToken(node->parents[1]).deadline());
      }
    }
    return deadline;
  }

  /// True when polling can ever return non-OK — hoist this out of hot
  /// loops so a null token costs nothing per iteration.
  bool CanExpire() const { return state_ != nullptr; }

  /// The poll: OK, Cancelled (explicit), or DeadlineExceeded (the
  /// tightest deadline along the chain has passed). Explicit cancellation
  /// wins over an expired deadline when both hold.
  Status Check() const {
    if (state_ == nullptr) return Status::OK();
    if (CancellationRequested()) {
      return Status::Cancelled("operation cancelled");
    }
    if (std::chrono::steady_clock::now() >= deadline()) {
      return Status::DeadlineExceeded("deadline exceeded");
    }
    return Status::OK();
  }

 private:
  friend class CancelSource;

  explicit CancelToken(std::shared_ptr<const internal::CancelStateNode> state)
      : state_(std::move(state)) {}

  static bool SecondHasAncestors(const internal::CancelStateNode& node) {
    return node.parents[0] != nullptr || node.parents[1] != nullptr;
  }

  std::shared_ptr<const internal::CancelStateNode> state_;
};

/// Owns one cancellation state; hand its token() to the work it governs.
class CancelSource {
 public:
  /// A source with no deadline (cancel-only).
  CancelSource() : state_(std::make_shared<internal::CancelStateNode>()) {}

  /// A source that auto-expires at `deadline` (steady clock), optionally
  /// chained under up to two parent tokens: the token reports cancelled /
  /// expired when this source fires OR any parent does.
  explicit CancelSource(std::chrono::steady_clock::time_point deadline,
                        CancelToken parent1 = {}, CancelToken parent2 = {})
      : state_(std::make_shared<internal::CancelStateNode>()) {
    state_->deadline = deadline;
    state_->parents[0] = std::move(parent1.state_);
    state_->parents[1] = std::move(parent2.state_);
  }

  CancelSource(const CancelSource&) = delete;
  CancelSource& operator=(const CancelSource&) = delete;

  /// Requests cancellation; idempotent, thread-safe, observed by every
  /// token (and chained child token) at its next Check().
  void Cancel() { state_->cancelled.store(true, std::memory_order_release); }

  bool CancellationRequested() const {
    return state_->cancelled.load(std::memory_order_acquire);
  }

  CancelToken token() const { return CancelToken(state_); }

 private:
  std::shared_ptr<internal::CancelStateNode> state_;
};

/// Sleeps for `duration` in short slices, returning early with the
/// token's status as soon as it fires — the sanctioned way to back off
/// (retry schedules, injected latency) without holding a core past a
/// request's deadline. Returns OK when the full duration elapsed.
Status InterruptibleSleep(std::chrono::nanoseconds duration,
                          const CancelToken& cancel);

}  // namespace netbone

#endif  // NETBONE_COMMON_CANCEL_H_
