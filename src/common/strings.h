// Copyright 2026 The netbone Authors.
//
// Small string helpers used by the CSV graph reader/writer and the
// table-printing benchmark harnesses.

#ifndef NETBONE_COMMON_STRINGS_H_
#define NETBONE_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace netbone {

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripAsciiWhitespace(std::string_view text);

/// Parses a double; fails on trailing garbage or empty input.
Result<double> ParseDouble(std::string_view text);

/// Parses a signed 64-bit integer; fails on trailing garbage or empty input.
Result<int64_t> ParseInt64(std::string_view text);

/// True if `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace netbone

#endif  // NETBONE_COMMON_STRINGS_H_
