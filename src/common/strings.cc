#include "common/strings.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cerrno>
#include <cctype>

namespace netbone {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      parts.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string_view StripAsciiWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

Result<double> ParseDouble(std::string_view text) {
  const std::string_view stripped = StripAsciiWhitespace(text);
  if (stripped.empty()) {
    return Status::InvalidArgument("empty numeric field");
  }
  std::string buffer(stripped);
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(buffer.c_str(), &end);
  if (end != buffer.c_str() + buffer.size()) {
    return Status::InvalidArgument("invalid double: '" + buffer + "'");
  }
  if (errno == ERANGE) {
    return Status::OutOfRange("double out of range: '" + buffer + "'");
  }
  return value;
}

Result<int64_t> ParseInt64(std::string_view text) {
  const std::string_view stripped = StripAsciiWhitespace(text);
  if (stripped.empty()) {
    return Status::InvalidArgument("empty integer field");
  }
  std::string buffer(stripped);
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(buffer.c_str(), &end, 10);
  if (end != buffer.c_str() + buffer.size()) {
    return Status::InvalidArgument("invalid integer: '" + buffer + "'");
  }
  if (errno == ERANGE) {
    return Status::OutOfRange("integer out of range: '" + buffer + "'");
  }
  return static_cast<int64_t>(value);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, format, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace netbone
