#include "common/timer.h"

// Header-only; this translation unit exists so the build registers the
// module and future non-inline additions have a home.
