// Copyright 2026 The netbone Authors.
//
// RocksDB-style status object used for all recoverable errors. The library
// does not use C++ exceptions (Google C++ style); every operation that can
// fail returns a Status, or a Result<T> when it also produces a value.

#ifndef NETBONE_COMMON_STATUS_H_
#define NETBONE_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace netbone {

/// Outcome of an operation that can fail.
///
/// A Status is cheap to copy (a code plus an optional message) and must be
/// checked by the caller; helper macros NETBONE_RETURN_IF_ERROR and
/// NETBONE_ASSIGN_OR_RETURN in `status_macros.h` make propagation terse.
class Status {
 public:
  /// Machine-readable error category.
  enum class Code {
    kOk = 0,
    kInvalidArgument = 1,
    kNotFound = 2,
    kOutOfRange = 3,
    kFailedPrecondition = 4,
    kUnimplemented = 5,
    kInternal = 6,
    kNotSupported = 7,
    kCorruption = 8,
    kIOError = 9,
    kCancelled = 10,
    kDeadlineExceeded = 11,
    kUnavailable = 12,
    kResourceExhausted = 13,
  };

  /// Default-constructed Status is OK.
  Status() : code_(Code::kOk) {}

  /// Factory helpers, one per category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(Code::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(Code::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(Code::kUnavailable, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == Code::kOk; }

  /// The error category.
  Code code() const { return code_; }

  /// Human-readable error message; empty for OK.
  const std::string& message() const { return message_; }

  /// Category predicates mirroring the factories.
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsOutOfRange() const { return code_ == Code::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code_ == Code::kFailedPrecondition;
  }
  bool IsUnimplemented() const { return code_ == Code::kUnimplemented; }
  bool IsInternal() const { return code_ == Code::kInternal; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsCancelled() const { return code_ == Code::kCancelled; }
  bool IsDeadlineExceeded() const { return code_ == Code::kDeadlineExceeded; }
  bool IsUnavailable() const { return code_ == Code::kUnavailable; }
  bool IsResourceExhausted() const {
    return code_ == Code::kResourceExhausted;
  }

  /// Failure-taxonomy predicates used by the serving layer.
  ///
  /// A *cancellation-shaped* failure says nothing about the work itself —
  /// the caller ran out of budget (deadline) or interest (explicit
  /// cancel). These must never be negative-cached: the same scoring may
  /// well succeed for the next caller with a fresh budget.
  bool IsCancellationShaped() const {
    return code_ == Code::kCancelled || code_ == Code::kDeadlineExceeded;
  }
  /// A *transient* failure may succeed on retry (flaky IO, injected or
  /// real unavailability) — the serving engine retries these with
  /// exponential backoff before giving up.
  bool IsTransient() const {
    return code_ == Code::kUnavailable || code_ == Code::kIOError;
  }

  /// "OK" or "<category>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

}  // namespace netbone

#endif  // NETBONE_COMMON_STATUS_H_
