#include "common/random.h"

#include <cassert>
#include <cmath>

namespace netbone {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  // Mix64 is the finalizer applied to the advanced state; note Mix64
  // itself adds the golden-ratio increment, so the state advance is the
  // whole sequence step.
  const uint64_t z = Mix64(*state);
  *state += 0x9E3779B97F4A7C15ULL;
  return z;
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  // xoshiro state must not be all-zero; SplitMix64 guarantees good mixing
  // even for seed == 0.
  uint64_t sm = seed;
  for (auto& lane : state_) lane = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  assert(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

uint64_t Rng::NextBounded(uint64_t n) {
  assert(n > 0);
  // Rejection sampling: draw until the value falls in the largest multiple
  // of n representable in 64 bits.
  const uint64_t threshold = (0 - n) % n;  // == 2^64 mod n
  for (;;) {
    const uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextGaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u, v, s;
  do {
    u = Uniform(-1.0, 1.0);
    v = Uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * factor;
  has_spare_gaussian_ = true;
  return u * factor;
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

double Rng::LogNormal(double mu_log, double sigma_log) {
  return std::exp(Gaussian(mu_log, sigma_log));
}

double Rng::Exponential(double rate) {
  assert(rate > 0.0);
  // 1 - NextDouble() is in (0, 1], so the log is finite.
  return -std::log(1.0 - NextDouble()) / rate;
}

int64_t Rng::Poisson(double mean) {
  assert(mean >= 0.0);
  if (mean == 0.0) return 0;
  if (mean < 64.0) {
    // Knuth: multiply uniforms until the product drops below e^-mean.
    const double limit = std::exp(-mean);
    double product = 1.0;
    int64_t count = -1;
    do {
      ++count;
      product *= NextDouble();
    } while (product > limit);
    return count;
  }
  // Normal approximation with continuity correction, clamped at zero.
  const double draw = Gaussian(mean, std::sqrt(mean));
  return draw < 0.5 ? 0 : static_cast<int64_t>(draw + 0.5);
}

int64_t Rng::Binomial(int64_t n, double p) {
  assert(n >= 0);
  assert(p >= 0.0 && p <= 1.0);
  if (n == 0 || p == 0.0) return 0;
  if (p == 1.0) return n;
  if (p > 0.5) return n - Binomial(n, 1.0 - p);
  const double np = static_cast<double>(n) * p;
  if (np < 32.0 && n < 10000) {
    // Direct simulation via geometric skips (BG algorithm): O(np) expected.
    const double log_q = std::log(1.0 - p);
    int64_t successes = 0;
    int64_t trials = 0;
    for (;;) {
      trials += static_cast<int64_t>(std::log(1.0 - NextDouble()) / log_q) + 1;
      if (trials > n) break;
      ++successes;
    }
    return successes;
  }
  // Normal approximation, clamped to [0, n].
  const double draw = Gaussian(np, std::sqrt(np * (1.0 - p)));
  if (draw < 0.0) return 0;
  if (draw > static_cast<double>(n)) return n;
  return static_cast<int64_t>(draw + 0.5);
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  assert(k <= n);
  // Partial Fisher-Yates over an index vector; O(n) memory, O(n + k) time.
  std::vector<size_t> indices(n);
  for (size_t i = 0; i < n; ++i) indices[i] = i;
  std::vector<size_t> out;
  out.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    const size_t j = i + static_cast<size_t>(NextBounded(n - i));
    std::swap(indices[i], indices[j]);
    out.push_back(indices[i]);
  }
  return out;
}

}  // namespace netbone
