#include "common/status.h"

namespace netbone {
namespace {

const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kInvalidArgument:
      return "Invalid argument";
    case Status::Code::kNotFound:
      return "Not found";
    case Status::Code::kOutOfRange:
      return "Out of range";
    case Status::Code::kFailedPrecondition:
      return "Failed precondition";
    case Status::Code::kUnimplemented:
      return "Unimplemented";
    case Status::Code::kInternal:
      return "Internal";
    case Status::Code::kNotSupported:
      return "Not supported";
    case Status::Code::kCorruption:
      return "Corruption";
    case Status::Code::kIOError:
      return "IO error";
    case Status::Code::kCancelled:
      return "Cancelled";
    case Status::Code::kDeadlineExceeded:
      return "Deadline exceeded";
    case Status::Code::kUnavailable:
      return "Unavailable";
    case Status::Code::kResourceExhausted:
      return "Resource exhausted";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace netbone
