// Copyright 2026 The netbone Authors.
//
// Result<T>: value-or-Status, in the spirit of absl::StatusOr / arrow::Result.
// Used by factory functions instead of throwing constructors.

#ifndef NETBONE_COMMON_RESULT_H_
#define NETBONE_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace netbone {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value is absent.
///
/// Accessing the value of a failed Result is a programming error and traps
/// via assert in debug builds.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}

  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  /// True iff a value is present.
  bool ok() const { return status_.ok(); }

  /// The status; OK when a value is present.
  const Status& status() const { return status_; }

  /// Value accessors. Precondition: ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when the Result failed.
  T value_or(T fallback) const& {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK Status from an expression (RocksDB idiom).
#define NETBONE_RETURN_IF_ERROR(expr)                  \
  do {                                                 \
    ::netbone::Status _netbone_status = (expr);        \
    if (!_netbone_status.ok()) return _netbone_status; \
  } while (0)

/// Token pasting with macro expansion: direct `a##__LINE__` pastes the
/// literal token `__LINE__`, so every expansion would share one variable
/// name and two uses in a scope would collide.
#define NETBONE_INTERNAL_CONCAT2(a, b) a##b
#define NETBONE_INTERNAL_CONCAT(a, b) NETBONE_INTERNAL_CONCAT2(a, b)

/// Evaluates a Result<T> expression; on failure returns its Status, on
/// success assigns the value to `lhs`.
#define NETBONE_ASSIGN_OR_RETURN(lhs, expr) \
  NETBONE_ASSIGN_OR_RETURN_IMPL(            \
      NETBONE_INTERNAL_CONCAT(_netbone_result_, __LINE__), lhs, expr)
#define NETBONE_ASSIGN_OR_RETURN_IMPL(result, lhs, expr) \
  auto result = (expr);                                  \
  if (!result.ok()) return result.status();              \
  lhs = std::move(result).value()

}  // namespace netbone

#endif  // NETBONE_COMMON_RESULT_H_
