// Copyright 2026 The netbone Authors.
//
// Wall-clock timing for the scalability experiments (paper Fig. 9).

#ifndef NETBONE_COMMON_TIMER_H_
#define NETBONE_COMMON_TIMER_H_

#include <chrono>

namespace netbone {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  /// Starts (or restarts) the stopwatch.
  Timer() { Restart(); }

  /// Resets the epoch to now.
  void Restart() { start_ = std::chrono::steady_clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace netbone

#endif  // NETBONE_COMMON_TIMER_H_
