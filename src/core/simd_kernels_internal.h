// Copyright 2026 The netbone Authors.
//
// Internal glue for the batched scoring kernels: the scalar per-edge
// oracle loops (shared by the kScalar dispatch table, every vector
// kernel's remainder tail, and the invalid-lane fallback blocks) and the
// per-ISA kernel table the runtime dispatcher indexes. Not installed;
// include core/simd_kernels.h instead.

#ifndef NETBONE_CORE_SIMD_KERNELS_INTERNAL_H_
#define NETBONE_CORE_SIMD_KERNELS_INTERNAL_H_

#include <algorithm>
#include <cstdint>

#include "core/disparity_filter.h"
#include "core/noise_corrected.h"
#include "core/scored_edges.h"
#include "core/simd_kernels.h"
#include "graph/edge_columns.h"

namespace netbone::internal_simd {

/// Largest degree-minus-one the vector DF path converts to a lane
/// exponent (the AVX2 conversion goes through int32). A lane block with
/// any exponent above this drops to the scalar ladder, which takes the
/// full uint64 range. Unreachable in practice: it would take a 2^30-degree
/// node.
inline constexpr double kMaxVectorExponent = 1073741824.0;  // 2^30

/// Scalar NC oracle over [begin, end): exactly NoiseCorrectedEdge per
/// element. Returns the lowest failing edge id, or -1.
inline int64_t ScalarNcRange(const EdgeColumns& cols,
                             const NcKernelConfig& cfg, int64_t begin,
                             int64_t end, EdgeScore* out) {
  NoiseCorrectedOptions options;
  options.bayesian_prior = cfg.bayesian_prior;
  options.python_erratum_beta = cfg.python_erratum_beta;
  options.marginals_respond_to_weight = cfg.marginals_respond_to_weight;
  for (int64_t i = begin; i < end; ++i) {
    const size_t k = static_cast<size_t>(i);
    const Result<NoiseCorrectedDetail> d = NoiseCorrectedEdge(
        cols.weight[k], cols.n_i[k], cols.n_j[k], cfg.n_total, options);
    if (!d.ok()) return i;
    out[i] = EdgeScore{d->transformed_lift, d->sdev};
  }
  return -1;
}

/// Scalar DF oracle over [begin, end): exactly DisparityFilterEdgeScore
/// per element, reading the pre-gathered columns. Cannot fail.
inline int64_t ScalarDfRange(const EdgeColumns& cols,
                             DisparityEndpointRule rule, int64_t begin,
                             int64_t end, EdgeScore* out) {
  for (int64_t i = begin; i < end; ++i) {
    const size_t k = static_cast<size_t>(i);
    const double w = cols.weight[k];
    const double out_total = cols.n_i[k];
    const double in_total = cols.n_j[k];
    const double src_share = out_total > 0.0 ? w / out_total : 0.0;
    const double dst_share = in_total > 0.0 ? w / in_total : 0.0;
    const double src_score =
        1.0 - DisparityPValueDm1(src_share, cols.dm1_i[k]);
    const double dst_score =
        1.0 - DisparityPValueDm1(dst_share, cols.dm1_j[k]);
    double score = 0.0;
    switch (rule) {
      case DisparityEndpointRule::kEither:
        score = std::max(src_score, dst_score);
        break;
      case DisparityEndpointRule::kBoth:
        score = std::min(src_score, dst_score);
        break;
      case DisparityEndpointRule::kSource:
        score = src_score;
        break;
    }
    out[i] = EdgeScore{score, 0.0};
  }
  return -1;
}

/// Scalar NT oracle over [begin, end): score = weight, sdev = 0.
inline int64_t ScalarNtRange(const EdgeColumns& cols, int64_t begin,
                             int64_t end, EdgeScore* out) {
  for (int64_t i = begin; i < end; ++i) {
    out[i] = EdgeScore{cols.weight[static_cast<size_t>(i)], 0.0};
  }
  return -1;
}

/// One ISA's kernel set; the dispatcher holds one table per SimdLevel.
struct KernelTable {
  int64_t (*nc)(const EdgeColumns&, const NcKernelConfig&, int64_t, int64_t,
                EdgeScore*);
  int64_t (*df)(const EdgeColumns&, DisparityEndpointRule, int64_t, int64_t,
                EdgeScore*);
  int64_t (*nt)(const EdgeColumns&, int64_t, int64_t, EdgeScore*);
};

/// Per-ISA tables. Each lives in its own TU, compiled with that ISA's
/// flags; a TU built without its ISA (or with -DNETBONE_SIMD=off) returns
/// nullptr and the dispatcher skips the level.
const KernelTable* Avx2Kernels();
const KernelTable* Sse2Kernels();
const KernelTable* NeonKernels();

}  // namespace netbone::internal_simd

#endif  // NETBONE_CORE_SIMD_KERNELS_INTERNAL_H_
