#include "core/registry.h"

#include "core/disparity_filter.h"
#include "core/doubly_stochastic.h"
#include "core/high_salience_skeleton.h"
#include "core/kcore.h"
#include "core/maximum_spanning_tree.h"
#include "core/naive.h"
#include "core/noise_corrected.h"

namespace netbone {

const std::vector<Method>& AllMethods() {
  static const std::vector<Method> kMethods = {
      Method::kNaiveThreshold,      Method::kMaximumSpanningTree,
      Method::kDoublyStochastic,    Method::kHighSalienceSkeleton,
      Method::kDisparityFilter,     Method::kNoiseCorrected,
      Method::kKCore,
  };
  return kMethods;
}

const std::vector<Method>& PaperMethods() {
  static const std::vector<Method> kMethods = {
      Method::kNaiveThreshold,      Method::kMaximumSpanningTree,
      Method::kDoublyStochastic,    Method::kHighSalienceSkeleton,
      Method::kDisparityFilter,     Method::kNoiseCorrected,
  };
  return kMethods;
}

std::string MethodName(Method method) {
  switch (method) {
    case Method::kNoiseCorrected:
      return "noise_corrected";
    case Method::kDisparityFilter:
      return "disparity_filter";
    case Method::kHighSalienceSkeleton:
      return "high_salience_skeleton";
    case Method::kDoublyStochastic:
      return "doubly_stochastic";
    case Method::kMaximumSpanningTree:
      return "maximum_spanning_tree";
    case Method::kNaiveThreshold:
      return "naive_threshold";
    case Method::kKCore:
      return "kcore";
  }
  return "unknown";
}

std::string MethodTag(Method method) {
  switch (method) {
    case Method::kNoiseCorrected:
      return "NC";
    case Method::kDisparityFilter:
      return "DF";
    case Method::kHighSalienceSkeleton:
      return "HSS";
    case Method::kDoublyStochastic:
      return "DS";
    case Method::kMaximumSpanningTree:
      return "MST";
    case Method::kNaiveThreshold:
      return "NT";
    case Method::kKCore:
      return "KC";
  }
  return "??";
}

bool IsParameterFree(Method method) {
  return method == Method::kMaximumSpanningTree ||
         method == Method::kDoublyStochastic;
}

Result<ScoredEdges> RunMethod(Method method, const Graph& graph,
                              const RunMethodOptions& options) {
  // Pre-dispatch cancellation gate: an already-expired request never
  // starts scoring at all, whichever method it names.
  if (Status cancelled = options.cancel.Check(); !cancelled.ok()) {
    return cancelled;
  }
  switch (method) {
    case Method::kNoiseCorrected: {
      NoiseCorrectedOptions nc;
      nc.num_threads = options.num_threads;
      nc.cancel = options.cancel;
      return NoiseCorrected(graph, nc);
    }
    case Method::kDisparityFilter: {
      DisparityFilterOptions df;
      df.num_threads = options.num_threads;
      df.cancel = options.cancel;
      return DisparityFilter(graph, df);
    }
    case Method::kHighSalienceSkeleton: {
      HighSalienceSkeletonOptions hss;
      hss.num_threads = options.num_threads;
      hss.max_cost = options.hss_max_cost;
      hss.source_sample_size = options.hss_source_sample_size;
      hss.sample_seed = options.hss_sample_seed;
      hss.cancel = options.cancel;
      return HighSalienceSkeleton(graph, hss);
    }
    case Method::kDoublyStochastic: {
      DoublyStochasticOptions ds;
      ds.num_threads = options.num_threads;
      return DoublyStochastic(graph, ds);
    }
    case Method::kMaximumSpanningTree: {
      MaximumSpanningTreeOptions mst;
      mst.num_threads = options.num_threads;
      return MaximumSpanningTree(graph, mst);
    }
    case Method::kNaiveThreshold: {
      NaiveThresholdOptions nt;
      nt.num_threads = options.num_threads;
      nt.cancel = options.cancel;
      return NaiveThreshold(graph, nt);
    }
    case Method::kKCore:
      return KCoreScores(graph);
  }
  return Status::InvalidArgument("unknown method");
}

}  // namespace netbone
