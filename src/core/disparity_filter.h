// Copyright 2026 The netbone Authors.
//
// The Disparity Filter (Serrano, Boguñá & Vespignani, PNAS 2009; [34] in
// the paper) — the state-of-the-art statistical baseline the NC backbone is
// compared against.
//
// For a node of degree k, the null model splits the node's total strength
// uniformly at random into k pieces (equivalently, normalized edge shares
// follow the order statistics of k-1 uniform draws). The p-value of an edge
// of share x at that node is alpha = (1 - x)^(k - 1). The score reported
// here is 1 - alpha so that, like every other method, larger means more
// significant. Per the paper, an edge is "tested twice" — at its source as
// an emitter and at its target as a receiver — and kept if either test
// passes (we keep the maximum score by default).

#ifndef NETBONE_CORE_DISPARITY_FILTER_H_
#define NETBONE_CORE_DISPARITY_FILTER_H_

#include <algorithm>
#include <cstdint>

#include "common/result.h"
#include "core/scored_edges.h"
#include "graph/graph.h"

namespace netbone {

/// Which endpoint test(s) decide an edge's disparity score.
enum class DisparityEndpointRule {
  kEither,  ///< max of the two endpoint scores (paper default)
  kBoth,    ///< min of the two endpoint scores (conservative variant)
  kSource,  ///< emitter-only null model (the pre-2009 formulation)
};

/// Options for DisparityFilter.
struct DisparityFilterOptions {
  DisparityEndpointRule endpoint_rule = DisparityEndpointRule::kEither;

  /// Worker threads for the per-edge scoring sweep (ParallelScoreEdges).
  /// 0 = hardware concurrency. Scores are bit-identical for every value.
  int num_threads = 0;

  /// Cooperative cancellation, polled at chunk granularity inside the
  /// scoring sweep; a fired token returns Cancelled / DeadlineExceeded.
  CancelToken cancel;
};

/// Scores every edge with 1 - alpha_ij. Degree-1 endpoints yield score 0
/// from their side (a pendant edge can only be rescued by its other end).
Result<ScoredEdges> DisparityFilter(const Graph& graph,
                                    const DisparityFilterOptions& options =
                                        {});

/// Deterministic base^exp for a non-negative integer exponent, by LSB-first
/// binary exponentiation. This replaces std::pow in the disparity p-value:
/// the exponent k-1 is always a whole number, the multiply-only ladder is
/// bit-for-bit reproducible across libms and platforms (std::pow is only
/// faithfully rounded, and differently so per libm), and the identical
/// ladder vectorizes lane-exactly (core/simd_kernels.h). Requires
/// base in [0, 1] so the unconditional squaring can never overflow.
inline double PowUIntExp(double base, uint64_t exp) {
  double result = 1.0;
  double b = base;
  while (exp != 0) {
    if (exp & 1) result *= b;
    b *= b;
    exp >>= 1;
  }
  return result;
}

/// DisparityPValue with the exponent supplied as a pre-gathered
/// degree-minus-one double (the EdgeColumns dm1 layout; exact for any real
/// degree). Single source of truth for the scalar and batched DF kernels.
inline double DisparityPValueDm1(double share, double degree_minus_one) {
  // degree <= 1: a single edge is never significant alone.
  if (degree_minus_one <= 0.0) return 1.0;
  share = std::clamp(share, 0.0, 1.0);
  return PowUIntExp(1.0 - share, static_cast<uint64_t>(degree_minus_one));
}

/// The raw one-sided disparity p-value alpha = (1 - x)^(k - 1) for an edge
/// carrying share `share` at a node of degree `degree`. Exposed for tests.
double DisparityPValue(double share, int64_t degree);

/// The per-edge DF kernel: the score DisparityFilter assigns to `edge`
/// given `graph`'s marginals. Single source of truth for the full sweep
/// and the incremental rescoring path (core/delta_rescore.h) — both call
/// this, so a patched score is bitwise the score a full run computes.
EdgeScore DisparityFilterEdgeScore(const Graph& graph, const Edge& edge,
                                   const DisparityFilterOptions& options);

}  // namespace netbone

#endif  // NETBONE_CORE_DISPARITY_FILTER_H_
