// Copyright 2026 The netbone Authors.
//
// The Disparity Filter (Serrano, Boguñá & Vespignani, PNAS 2009; [34] in
// the paper) — the state-of-the-art statistical baseline the NC backbone is
// compared against.
//
// For a node of degree k, the null model splits the node's total strength
// uniformly at random into k pieces (equivalently, normalized edge shares
// follow the order statistics of k-1 uniform draws). The p-value of an edge
// of share x at that node is alpha = (1 - x)^(k - 1). The score reported
// here is 1 - alpha so that, like every other method, larger means more
// significant. Per the paper, an edge is "tested twice" — at its source as
// an emitter and at its target as a receiver — and kept if either test
// passes (we keep the maximum score by default).

#ifndef NETBONE_CORE_DISPARITY_FILTER_H_
#define NETBONE_CORE_DISPARITY_FILTER_H_

#include "common/result.h"
#include "core/scored_edges.h"
#include "graph/graph.h"

namespace netbone {

/// Which endpoint test(s) decide an edge's disparity score.
enum class DisparityEndpointRule {
  kEither,  ///< max of the two endpoint scores (paper default)
  kBoth,    ///< min of the two endpoint scores (conservative variant)
  kSource,  ///< emitter-only null model (the pre-2009 formulation)
};

/// Options for DisparityFilter.
struct DisparityFilterOptions {
  DisparityEndpointRule endpoint_rule = DisparityEndpointRule::kEither;

  /// Worker threads for the per-edge scoring sweep (ParallelScoreEdges).
  /// 0 = hardware concurrency. Scores are bit-identical for every value.
  int num_threads = 0;

  /// Cooperative cancellation, polled at chunk granularity inside the
  /// scoring sweep; a fired token returns Cancelled / DeadlineExceeded.
  CancelToken cancel;
};

/// Scores every edge with 1 - alpha_ij. Degree-1 endpoints yield score 0
/// from their side (a pendant edge can only be rescued by its other end).
Result<ScoredEdges> DisparityFilter(const Graph& graph,
                                    const DisparityFilterOptions& options =
                                        {});

/// The raw one-sided disparity p-value alpha = (1 - x)^(k - 1) for an edge
/// carrying share `share` at a node of degree `degree`. Exposed for tests.
double DisparityPValue(double share, int64_t degree);

/// The per-edge DF kernel: the score DisparityFilter assigns to `edge`
/// given `graph`'s marginals. Single source of truth for the full sweep
/// and the incremental rescoring path (core/delta_rescore.h) — both call
/// this, so a patched score is bitwise the score a full run computes.
EdgeScore DisparityFilterEdgeScore(const Graph& graph, const Edge& edge,
                                   const DisparityFilterOptions& options);

}  // namespace netbone

#endif  // NETBONE_CORE_DISPARITY_FILTER_H_
