// AVX2 instantiation of the batched scoring kernels. This TU is the only
// one compiled with -mavx2 (plus -mno-fma -ffp-contract=off; see
// CMakeLists.txt), so the 4-wide trait exists only here and the rest of
// the library stays runnable on baseline x86-64.

#include "core/simd_kernels_internal.h"

#if defined(__AVX2__) && (defined(__x86_64__) || defined(_M_X64)) && \
    !defined(NETBONE_SIMD_DISABLED)

#include "core/simd_kernels_impl.h"

namespace netbone::internal_simd {

const KernelTable* Avx2Kernels() {
  static constexpr KernelTable kTable = MakeKernelTable<simd::Avx2>();
  return &kTable;
}

}  // namespace netbone::internal_simd

#else

namespace netbone::internal_simd {

const KernelTable* Avx2Kernels() { return nullptr; }

}  // namespace netbone::internal_simd

#endif
