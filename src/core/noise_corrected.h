// Copyright 2026 The netbone Authors.
//
// The Noise-Corrected (NC) backbone — the paper's contribution (Sec. IV).
//
// Edge weights are modeled as sums of unitary interactions occurring with
// edge-specific probability P_ij. The null expectation of an edge weight is
// E[N_ij] = N_i. N_.j / N_.. (both endpoints' propensities enter — the key
// improvement over the Disparity Filter's single-node null model). Observed
// weights are mapped to the symmetric lift transform
//
//   L~_ij = (kappa N_ij - 1) / (kappa N_ij + 1),  kappa = 1 / E[N_ij]  (Eq.1)
//
// and a posterior variance for L~ is obtained by (a) placing a Beta prior
// on P_ij with hypergeometric moments, (b) updating it with the observed
// Binomial draw (Eqs. 3-8), and (c) propagating the posterior Binomial
// variance through the transform with the delta method. The backbone keeps
// an edge iff its transformed lift exceeds zero by more than delta
// posterior standard deviations.

#ifndef NETBONE_CORE_NOISE_CORRECTED_H_
#define NETBONE_CORE_NOISE_CORRECTED_H_

#include "common/result.h"
#include "core/scored_edges.h"
#include "graph/graph.h"

namespace netbone {

/// Tuning knobs for the NC computation. Defaults reproduce the paper.
struct NoiseCorrectedOptions {
  /// Paper footnote 2: skip the lift transform and report the Binomial CDF
  /// p-value-style score directly (score = BinomCdf(n_ij; n_.., p_prior),
  /// sdev = 0). Loses the ability to compare edges to each other.
  bool use_binomial_pvalue = false;

  /// When false, skip the Bayesian update and plug the observed frequency
  /// N_ij / N_.. into the Binomial variance (the degenerate estimator the
  /// paper's Sec. IV argues against; exposed for the ablation bench).
  bool bayesian_prior = true;

  /// When true, use the beta-prior expression from the author's reference
  /// Python implementation, which reads (1 - mu^2) where the paper's Eq. 8
  /// has (1 - mu)^2. Numerically negligible; exposed for the ablation.
  bool python_erratum_beta = false;

  /// The paper's delta method lets kappa respond to N_ij (the weight sits
  /// inside its own marginals), producing the dkappa/dN term. For
  /// *cross-snapshot* comparisons of one pair, the natural error model
  /// treats each snapshot's marginals as given; setting this false drops
  /// the dkappa/dN term — and avoids the near-cancellation
  /// (kappa + n dkappa/dn ~ 0) that deflates the sdev of hub-incident
  /// edges. Used by core/change_detection.
  bool marginals_respond_to_weight = true;

  /// Worker threads for the per-edge scoring sweep (ParallelScoreEdges).
  /// 0 = hardware concurrency. Scores are bit-identical for every value.
  int num_threads = 0;

  /// Cooperative cancellation, polled at chunk granularity inside the
  /// scoring sweep; a fired token returns Cancelled / DeadlineExceeded.
  CancelToken cancel;
};

/// Full per-edge decomposition of the NC computation, for diagnostics,
/// tests and the variance-validation experiment (Table I).
struct NoiseCorrectedDetail {
  double expectation = 0.0;      ///< E[N_ij] under the null.
  double lift = 0.0;             ///< N_ij / E[N_ij].
  double transformed_lift = 0.0; ///< L~_ij (the score).
  double prior_mean = 0.0;       ///< E[P_ij] (hypergeometric).
  double prior_variance = 0.0;   ///< V[P_ij] (hypergeometric).
  double posterior_p = 0.0;      ///< posterior mean of P_ij.
  double variance_nij = 0.0;     ///< N_.. p~ (1 - p~).
  double variance_lift = 0.0;    ///< delta-method V[L~_ij].
  double sdev = 0.0;             ///< sqrt(V[L~_ij]).
};

/// Scores every edge of `graph` with the NC transformed lift and its
/// posterior standard deviation. Works for directed and undirected graphs
/// (undirected marginals are the symmetric row/column sums). Fails on
/// empty graphs or graphs with zero total weight.
Result<ScoredEdges> NoiseCorrected(const Graph& graph,
                                   const NoiseCorrectedOptions& options = {});

/// As NoiseCorrected, but also returns the per-edge decomposition in
/// `details` (aligned with the edge table). `details` must be non-null.
Result<ScoredEdges> NoiseCorrectedWithDetails(
    const Graph& graph, const NoiseCorrectedOptions& options,
    std::vector<NoiseCorrectedDetail>* details);

/// Computes the NC detail record for a single (hypothetical) edge weight
/// `nij` between nodes with marginals `ni_out`, `nj_in` in a network of
/// total weight `n_total`. The building block shared by both entry points;
/// exposed for property tests.
Result<NoiseCorrectedDetail> NoiseCorrectedEdge(
    double nij, double ni_out, double nj_in, double n_total,
    const NoiseCorrectedOptions& options = {});

}  // namespace netbone

#endif  // NETBONE_CORE_NOISE_CORRECTED_H_
