// Copyright 2026 The netbone Authors.
//
// Uniform dispatch over the backboning methods, used by the experiment
// harnesses that sweep "all methods" (Figs. 4, 7, 8, 9; Table II).

#ifndef NETBONE_CORE_REGISTRY_H_
#define NETBONE_CORE_REGISTRY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/scored_edges.h"
#include "graph/graph.h"

namespace netbone {

/// The extraction methods shipped with the library.
enum class Method {
  kNoiseCorrected,
  kDisparityFilter,
  kHighSalienceSkeleton,
  kDoublyStochastic,
  kMaximumSpanningTree,
  kNaiveThreshold,
  kKCore,
};

/// All methods, in the paper's presentation order.
const std::vector<Method>& AllMethods();

/// The paper's six compared methods (everything except k-core).
const std::vector<Method>& PaperMethods();

/// Canonical snake_case name ("noise_corrected", ...).
std::string MethodName(Method method);

/// Short display tag matching the paper's figure legends
/// ("NC", "DF", "HSS", "DS", "MST", "NT", "KC").
std::string MethodTag(Method method);

/// True for methods without a tunable edge budget (MST, DS): the paper
/// plots them as single points instead of threshold sweeps.
bool IsParameterFree(Method method);

/// Runs `method` with default options. HSS accepts an optional cost guard
/// and an approximate sampled mode; see RunMethodOptions.
struct RunMethodOptions {
  /// Worker threads for the parallel methods (NC, DF, NT per-edge sweeps;
  /// HSS per-source Dijkstras; DS Sinkhorn row/column normalization; the
  /// MST Kruskal sort). 0 = hardware concurrency. Every method's output is
  /// bit-identical regardless of this value.
  int num_threads = 0;

  /// Forwarded to HighSalienceSkeletonOptions::max_cost (0 = unguarded).
  int64_t hss_max_cost = 0;

  /// Forwarded to HighSalienceSkeletonOptions::source_sample_size
  /// (0 = exact HSS; > 0 = seeded k-source salience estimate).
  int64_t hss_source_sample_size = 0;

  /// Forwarded to HighSalienceSkeletonOptions::sample_seed.
  uint64_t hss_sample_seed = 42;

  /// Cooperative cancellation. Checked before dispatch for every method;
  /// the parallel sweeps (NC, DF, NT) and the HSS source loop also poll
  /// it at chunk / batch granularity mid-run. DS, MST and KC only honour
  /// the pre-dispatch check (their runtimes are an order of magnitude
  /// below one HSS source batch, so mid-run polling buys nothing).
  CancelToken cancel;
};
Result<ScoredEdges> RunMethod(Method method, const Graph& graph,
                              const RunMethodOptions& options = {});

}  // namespace netbone

#endif  // NETBONE_CORE_REGISTRY_H_
