#include "core/scored_edges.h"

namespace netbone {

std::vector<double> ScoredEdges::ScoreValues() const {
  std::vector<double> out;
  out.reserve(scores_.size());
  for (const EdgeScore& s : scores_) out.push_back(s.score);
  return out;
}

std::vector<double> ScoredEdges::ShiftedScores(double delta) const {
  std::vector<double> out;
  out.reserve(scores_.size());
  for (const EdgeScore& s : scores_) out.push_back(s.score - delta * s.sdev);
  return out;
}

}  // namespace netbone
