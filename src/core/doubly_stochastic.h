// Copyright 2026 The netbone Authors.
//
// Doubly Stochastic backbone (Slater, PNAS 2009; [37] in the paper).
// Stage 1 rescales the adjacency matrix to doubly stochastic form by
// alternately normalizing rows and columns (Sinkhorn-Knopp). Stage 2 adds
// edges in descending normalized weight until the backbone covers all
// original nodes in a single connected component (GrowUntilConnected in
// core/filter.h).
//
// Sinkhorn-Knopp converges only for matrices with total support; the paper
// reports the transformation as impossible ("n/a") for three of its six
// networks. We reproduce that behaviour by returning FailedPrecondition
// when the iteration does not converge.

#ifndef NETBONE_CORE_DOUBLY_STOCHASTIC_H_
#define NETBONE_CORE_DOUBLY_STOCHASTIC_H_

#include <cstdint>

#include "common/result.h"
#include "core/scored_edges.h"
#include "graph/graph.h"

namespace netbone {

/// Options for DoublyStochastic.
struct DoublyStochasticOptions {
  /// Maximum Sinkhorn sweeps before declaring non-convergence.
  int64_t max_iterations = 1000;
  /// Convergence: every row and column sum within `tolerance` of 1.
  double tolerance = 1e-8;
  /// Worker threads for the row/column normalization sweeps (0 = hardware
  /// concurrency). The accumulation is node-major — every node's row and
  /// column sums are computed whole by one worker, in a fixed per-node arc
  /// order — so the output is bit-identical for every thread count.
  int num_threads = 0;
};

/// Scores every edge with its doubly-stochastic normalized weight.
/// Fails with FailedPrecondition when the matrix cannot be balanced
/// (isolated-in-one-direction nodes, no total support) — the paper's "n/a".
Result<ScoredEdges> DoublyStochastic(const Graph& graph,
                                     const DoublyStochasticOptions& options =
                                         {});

}  // namespace netbone

#endif  // NETBONE_CORE_DOUBLY_STOCHASTIC_H_
