#include "core/maximum_spanning_tree.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "graph/union_find.h"

namespace netbone {
namespace {

/// One undirected node pair fed to Kruskal. Directed graphs project onto
/// pairs so that (i->j) and (j->i) are admitted or rejected together; a
/// canonical (deduplicated) edge table maps at most two directed edges to
/// a pair.
struct PairEntry {
  NodeId a = 0;
  NodeId b = 0;
  double weight = 0.0;  // combined (summed) pair weight
  EdgeId first = -1;    // original edges mapping to the pair
  EdgeId second = -1;   // -1 when the pair has a single edge
};

}  // namespace

Result<ScoredEdges> MaximumSpanningTree(
    const Graph& graph, const MaximumSpanningTreeOptions& options) {
  if (graph.num_edges() == 0) {
    return Status::FailedPrecondition("graph has no edges");
  }

  // Project edges onto node pairs. The canonical undirected edge table
  // already stores each pair exactly once with src <= dst; the directed
  // table needs a (min, max, id) sort to bring a pair's two directions
  // together — within a pair ids stay ascending, so the summed weight
  // accumulates in the same order as a serial scan over the edge table.
  std::vector<PairEntry> pairs;
  pairs.reserve(static_cast<size_t>(graph.num_edges()));
  if (!graph.directed()) {
    for (EdgeId id = 0; id < graph.num_edges(); ++id) {
      const Edge& e = graph.edge(id);
      if (e.src == e.dst) continue;  // self-loops never join a tree
      pairs.push_back(PairEntry{e.src, e.dst, e.weight, id, -1});
    }
  } else {
    struct Item {
      NodeId a;
      NodeId b;
      EdgeId id;
    };
    std::vector<Item> items;
    items.reserve(static_cast<size_t>(graph.num_edges()));
    for (EdgeId id = 0; id < graph.num_edges(); ++id) {
      const Edge& e = graph.edge(id);
      if (e.src == e.dst) continue;
      items.push_back(Item{std::min(e.src, e.dst), std::max(e.src, e.dst),
                           id});
    }
    ParallelSort(&items, options.num_threads,
                 [](const Item& x, const Item& y) {
                   if (x.a != y.a) return x.a < y.a;
                   if (x.b != y.b) return x.b < y.b;
                   return x.id < y.id;  // unique -> strict total order
                 });
    for (const Item& item : items) {
      if (!pairs.empty() && pairs.back().a == item.a &&
          pairs.back().b == item.b) {
        pairs.back().weight += graph.edge(item.id).weight;
        pairs.back().second = item.id;
      } else {
        pairs.push_back(PairEntry{item.a, item.b,
                                  graph.edge(item.id).weight, item.id, -1});
      }
    }
  }

  // The Kruskal sort — the dominant cost — on the shared pool. (weight
  // desc, a, b) is a strict total order because each pair occurs once, so
  // the sorted sequence (and therefore the tree) is bit-identical for
  // every thread count.
  ParallelSort(&pairs, options.num_threads,
               [](const PairEntry& x, const PairEntry& y) {
                 if (x.weight != y.weight) return x.weight > y.weight;
                 if (x.a != y.a) return x.a < y.a;
                 return x.b < y.b;
               });

  std::vector<EdgeScore> scores(static_cast<size_t>(graph.num_edges()),
                                EdgeScore{0.0, 0.0});
  UnionFind uf(graph.num_nodes());
  for (const PairEntry& entry : pairs) {
    if (uf.Union(entry.a, entry.b)) {
      scores[static_cast<size_t>(entry.first)].score = 1.0;
      if (entry.second >= 0) {
        scores[static_cast<size_t>(entry.second)].score = 1.0;
      }
    }
  }
  return ScoredEdges(&graph, "maximum_spanning_tree", std::move(scores),
                     /*has_sdev=*/false);
}

double SpanningTreeWeight(const Graph& graph, const ScoredEdges& scored) {
  double total = 0.0;
  for (EdgeId id = 0; id < graph.num_edges(); ++id) {
    if (scored.at(id).score > 0.0) total += graph.edge(id).weight;
  }
  return total;
}

}  // namespace netbone
