#include "core/maximum_spanning_tree.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <utility>
#include <vector>

#include "graph/union_find.h"

namespace netbone {

Result<ScoredEdges> MaximumSpanningTree(const Graph& graph) {
  if (graph.num_edges() == 0) {
    return Status::FailedPrecondition("graph has no edges");
  }

  // Project directed edges onto node pairs: Kruskal runs on the pair level
  // so that (i->j) and (j->i) are admitted or rejected together.
  struct PairEntry {
    NodeId a;
    NodeId b;
    double weight = 0.0;            // combined (summed) pair weight
    std::vector<EdgeId> edge_ids;   // original edges mapping to the pair
  };
  std::map<std::pair<NodeId, NodeId>, PairEntry> pairs;
  for (EdgeId id = 0; id < graph.num_edges(); ++id) {
    const Edge& e = graph.edge(id);
    if (e.src == e.dst) continue;  // self-loops never join a tree
    const NodeId a = std::min(e.src, e.dst);
    const NodeId b = std::max(e.src, e.dst);
    PairEntry& entry = pairs[{a, b}];
    entry.a = a;
    entry.b = b;
    entry.weight += e.weight;
    entry.edge_ids.push_back(id);
  }

  std::vector<const PairEntry*> order;
  order.reserve(pairs.size());
  for (const auto& [key, entry] : pairs) order.push_back(&entry);
  std::sort(order.begin(), order.end(),
            [](const PairEntry* x, const PairEntry* y) {
              if (x->weight != y->weight) return x->weight > y->weight;
              if (x->a != y->a) return x->a < y->a;
              return x->b < y->b;
            });

  std::vector<EdgeScore> scores(static_cast<size_t>(graph.num_edges()),
                                EdgeScore{0.0, 0.0});
  UnionFind uf(graph.num_nodes());
  for (const PairEntry* entry : order) {
    if (uf.Union(entry->a, entry->b)) {
      for (const EdgeId id : entry->edge_ids) {
        scores[static_cast<size_t>(id)].score = 1.0;
      }
    }
  }
  return ScoredEdges(&graph, "maximum_spanning_tree", std::move(scores),
                     /*has_sdev=*/false);
}

double SpanningTreeWeight(const Graph& graph, const ScoredEdges& scored) {
  double total = 0.0;
  for (EdgeId id = 0; id < graph.num_edges(); ++id) {
    if (scored.at(id).score > 0.0) total += graph.edge(id).weight;
  }
  return total;
}

}  // namespace netbone
