// Copyright 2026 The netbone Authors.
//
// k-core decomposition (Seidman 1983; cited in the paper's Related Work as
// one of the classic backboning approaches): recursively remove nodes of
// degree < k. The core number of an edge is the smaller core number of its
// endpoints, which doubles as a backbone score.

#ifndef NETBONE_CORE_KCORE_H_
#define NETBONE_CORE_KCORE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/scored_edges.h"
#include "graph/graph.h"

namespace netbone {

/// Core number of every node (undirected degree view for directed graphs).
/// Linear-time bucket algorithm (Batagelj-Zaversnik).
std::vector<int32_t> CoreNumbers(const Graph& graph);

/// Scores each edge with min(core(src), core(dst)), so FilterByScore with
/// threshold k-1 yields the k-core edge set.
Result<ScoredEdges> KCoreScores(const Graph& graph);

/// Convenience: the subgraph induced by nodes of core number >= k.
Result<Graph> KCoreSubgraph(const Graph& graph, int32_t k);

}  // namespace netbone

#endif  // NETBONE_CORE_KCORE_H_
