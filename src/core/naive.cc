#include "core/naive.h"

namespace netbone {

Result<ScoredEdges> NaiveThreshold(const Graph& graph,
                                   const NaiveThresholdOptions& options) {
  if (graph.num_edges() == 0) {
    return Status::FailedPrecondition("graph has no edges");
  }
  Result<std::vector<EdgeScore>> scores = ParallelScoreEdges(
      graph, options.num_threads,
      [](EdgeId, const Edge& e, EdgeScore* out) -> Status {
        *out = EdgeScore{e.weight, 0.0};
        return Status::OK();
      },
      options.cancel);
  if (!scores.ok()) return scores.status();
  return ScoredEdges(&graph, "naive_threshold", std::move(*scores),
                     /*has_sdev=*/false);
}

}  // namespace netbone
