#include "core/naive.h"

namespace netbone {

Result<ScoredEdges> NaiveThreshold(const Graph& graph) {
  if (graph.num_edges() == 0) {
    return Status::FailedPrecondition("graph has no edges");
  }
  std::vector<EdgeScore> scores;
  scores.reserve(static_cast<size_t>(graph.num_edges()));
  for (const Edge& e : graph.edges()) {
    scores.push_back(EdgeScore{e.weight, 0.0});
  }
  return ScoredEdges(&graph, "naive_threshold", std::move(scores),
                     /*has_sdev=*/false);
}

}  // namespace netbone
