#include "core/naive.h"

#include "core/simd_kernels.h"
#include "graph/edge_columns.h"

namespace netbone {

Result<ScoredEdges> NaiveThreshold(const Graph& graph,
                                   const NaiveThresholdOptions& options) {
  if (graph.num_edges() == 0) {
    return Status::FailedPrecondition("graph has no edges");
  }
  const EdgeColumns& cols = graph.edge_columns();
  Result<std::vector<EdgeScore>> scores = ParallelScoreEdgeRanges(
      graph, options.num_threads,
      [&cols](int64_t begin, int64_t end, EdgeScore* out) {
        return NaiveThresholdBatch(cols, begin, end, out);
      },
      [](EdgeId) { return Status::OK(); },  // NT accepts every edge
      options.cancel);
  if (!scores.ok()) return scores.status();
  return ScoredEdges(&graph, "naive_threshold", std::move(*scores),
                     /*has_sdev=*/false);
}

}  // namespace netbone
