// Copyright 2026 The netbone Authors.
//
// Thresholding: turning a ScoredEdges table into a backbone, the second
// stage of the two-stage design shared with the author's Python module.
// Supports the paper's delta rule (NC), plain score thresholds, exact
// edge budgets (how the experiments equalize methods), share-of-edge
// sweeps (Figs. 7-8 x-axis), and the Doubly Stochastic
// "grow until connected" rule.

#ifndef NETBONE_CORE_FILTER_H_
#define NETBONE_CORE_FILTER_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/scored_edges.h"
#include "graph/graph.h"

namespace netbone {

/// Boolean keep-mask over a graph's edge table plus bookkeeping.
struct BackboneMask {
  std::vector<bool> keep;
  int64_t kept = 0;

  /// Share of edges retained.
  double Share() const {
    return keep.empty() ? 0.0
                        : static_cast<double>(kept) /
                              static_cast<double>(keep.size());
  }
};

/// Keeps edges with score strictly greater than `threshold`.
BackboneMask FilterByScore(const ScoredEdges& scored, double threshold);

/// The paper's NC rule: keep iff score - delta * sdev > 0, i.e. the
/// observed transformed lift exceeds the null expectation by at least
/// `delta` posterior standard deviations. Common deltas: 1.28, 1.64, 2.32
/// (~ one-tailed p of 0.1, 0.05, 0.01).
BackboneMask FilterByDelta(const ScoredEdges& scored, double delta);

/// Keeps exactly min(k, |E|) edges with the highest scores. Ties are broken
/// by weight (descending) then edge id so the selection is deterministic —
/// required for the experiments that compare methods at identical budgets.
///
/// Thin wrapper over the sweep engine (core/sweep.h): sorts once via
/// ScoreOrder. Callers evaluating many thresholds of the same ScoredEdges
/// should build one ScoreOrder and use the overloads there.
BackboneMask TopK(const ScoredEdges& scored, int64_t k);

/// TopK with k = round(share * |E|), share in [0, 1]. One sort per call;
/// sweep callers should ride a shared ScoreOrder (core/sweep.h).
BackboneMask TopShare(const ScoredEdges& scored, double share);

/// The Doubly Stochastic stopping rule: walk edges in descending score and
/// keep adding until every non-isolated node of the original graph is
/// covered by a single connected component (or edges run out). One sort
/// per call; sweep callers should ride a shared ScoreOrder (core/sweep.h).
BackboneMask GrowUntilConnected(const ScoredEdges& scored);

/// Materializes the backbone as a Graph over the same node set.
Result<Graph> ApplyMask(const Graph& graph, const BackboneMask& mask);

/// Edge ids retained by the mask, ascending.
std::vector<EdgeId> MaskToEdgeIds(const BackboneMask& mask);

}  // namespace netbone

#endif  // NETBONE_CORE_FILTER_H_
