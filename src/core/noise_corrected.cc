#include "core/noise_corrected.h"

#include <cmath>

#include "common/strings.h"
#include "core/simd_kernels.h"
#include "graph/edge_columns.h"
#include "stats/distributions.h"
#include "stats/special_functions.h"

namespace netbone {

Result<NoiseCorrectedDetail> NoiseCorrectedEdge(
    double nij, double ni_out, double nj_in, double n_total,
    const NoiseCorrectedOptions& options) {
  if (!(n_total > 0.0)) {
    return Status::InvalidArgument("network total weight must be positive");
  }
  if (!(ni_out > 0.0) || !(nj_in > 0.0)) {
    return Status::InvalidArgument(
        "edge endpoints must have positive strength");
  }
  if (nij < 0.0) {
    return Status::InvalidArgument("edge weight must be non-negative");
  }

  NoiseCorrectedDetail d;
  d.expectation = ni_out * nj_in / n_total;
  const double kappa = 1.0 / d.expectation;  // n.. / (ni. * n.j)
  d.lift = nij * kappa;
  d.transformed_lift = (kappa * nij - 1.0) / (kappa * nij + 1.0);

  const PriorMoments prior =
      HypergeometricPriorMoments(ni_out, nj_in, n_total);
  d.prior_mean = prior.mean;
  d.prior_variance = prior.variance;

  if (options.use_binomial_pvalue) {
    // Footnote 2: the score is the Binomial CDF of the observed weight
    // under the prior success probability; no sdev is available.
    d.posterior_p = prior.mean;
    d.transformed_lift = BinomialCdf(nij, n_total, prior.mean);
    d.variance_nij = BinomialVariance(n_total, prior.mean);
    d.variance_lift = 0.0;
    d.sdev = 0.0;
    return d;
  }

  if (options.bayesian_prior) {
    const Result<BetaParams> fit =
        options.python_erratum_beta
            ? FitBetaByMomentsPythonErratum(prior.mean, prior.variance)
            : FitBetaByMoments(prior.mean, prior.variance);
    if (fit.ok()) {
      // Posterior Beta[n_ij + alpha, n_.. - n_ij + beta] (Eq. 4).
      const double alpha_post = fit->alpha + nij;
      const double beta_post = fit->beta + (n_total - nij);
      d.posterior_p = alpha_post / (alpha_post + beta_post);
    } else {
      // Degenerate prior (a marginal equal to the whole network, or a
      // 1-interaction network): fall back to the prior mean blended with
      // the observation, which is the posterior limit as the prior
      // variance collapses.
      d.posterior_p = prior.mean;
    }
  } else {
    // Ablation: naive plug-in estimate P^_ij = N_ij / N_.. — exactly the
    // estimator whose zero-variance degeneracy motivates the Bayesian
    // treatment.
    d.posterior_p = nij / n_total;
  }

  d.variance_nij = BinomialVariance(n_total, d.posterior_p);

  // Delta method (Sec. IV): V[L~] = V[N] (2(kappa + N dkappa/dN) /
  // (kappa N + 1)^2)^2, with dkappa/dN accounting for N_ij's presence in
  // both marginals and the total. With fixed marginals the dkappa term
  // drops (see NoiseCorrectedOptions::marginals_respond_to_weight).
  const double dkappa =
      options.marginals_respond_to_weight
          ? 1.0 / (ni_out * nj_in) -
                n_total * (ni_out + nj_in) /
                    ((ni_out * nj_in) * (ni_out * nj_in))
          : 0.0;
  const double denom = (kappa * nij + 1.0) * (kappa * nij + 1.0);
  const double jacobian = 2.0 * (kappa + nij * dkappa) / denom;
  d.variance_lift = d.variance_nij * jacobian * jacobian;
  d.sdev = std::sqrt(d.variance_lift);
  return d;
}

Result<ScoredEdges> NoiseCorrectedWithDetails(
    const Graph& graph, const NoiseCorrectedOptions& options,
    std::vector<NoiseCorrectedDetail>* details) {
  if (details == nullptr) {
    return Status::InvalidArgument("details must be non-null");
  }
  if (graph.num_edges() == 0) {
    return Status::FailedPrecondition("graph has no edges");
  }
  const double n_total = graph.matrix_total();
  if (!(n_total > 0.0)) {
    return Status::FailedPrecondition("graph total weight is zero");
  }

  // The details table is pre-sized so parallel chunks can fill disjoint
  // index-aligned slots alongside the score vector.
  details->assign(static_cast<size_t>(graph.num_edges()),
                  NoiseCorrectedDetail{});
  Result<std::vector<EdgeScore>> scores = ParallelScoreEdges(
      graph, options.num_threads,
      [&](EdgeId id, const Edge& e, EdgeScore* out) -> Status {
        const double ni_out = graph.out_strength(e.src);
        const double nj_in = graph.in_strength(e.dst);
        Result<NoiseCorrectedDetail> d =
            NoiseCorrectedEdge(e.weight, ni_out, nj_in, n_total, options);
        if (!d.ok()) return d.status();
        *out = EdgeScore{d->transformed_lift, d->sdev};
        (*details)[static_cast<size_t>(id)] = std::move(*d);
        return Status::OK();
      },
      options.cancel);
  if (!scores.ok()) {
    details->clear();
    return scores.status();
  }
  return ScoredEdges(&graph,
                     options.use_binomial_pvalue ? "noise_corrected_pvalue"
                                                 : "noise_corrected",
                     std::move(*scores),
                     /*has_sdev=*/!options.use_binomial_pvalue);
}

Result<ScoredEdges> NoiseCorrected(const Graph& graph,
                                   const NoiseCorrectedOptions& options) {
  if (options.use_binomial_pvalue) {
    // Footnote-2 variant: the Binomial CDF path is transcendental-laden
    // and rarely used, so it keeps the scalar per-edge sweep.
    std::vector<NoiseCorrectedDetail> details;
    return NoiseCorrectedWithDetails(graph, options, &details);
  }
  if (graph.num_edges() == 0) {
    return Status::FailedPrecondition("graph has no edges");
  }
  const double n_total = graph.matrix_total();
  if (!(n_total > 0.0)) {
    return Status::FailedPrecondition("graph total weight is zero");
  }

  // Batched sweep over the SoA columns: no detail table is allocated or
  // filled, and whole chunk sub-ranges go to the vectorized NC kernel
  // (bit-identical to NoiseCorrectedEdge per element, which the identity
  // suite enforces). A flagged edge replays the scalar oracle once to
  // regenerate the exact per-edge Status.
  const EdgeColumns& cols = graph.edge_columns();
  NcKernelConfig cfg;
  cfg.n_total = n_total;
  cfg.bayesian_prior = options.bayesian_prior;
  cfg.python_erratum_beta = options.python_erratum_beta;
  cfg.marginals_respond_to_weight = options.marginals_respond_to_weight;
  Result<std::vector<EdgeScore>> scores = ParallelScoreEdgeRanges(
      graph, options.num_threads,
      [&](int64_t begin, int64_t end, EdgeScore* out) {
        return NoiseCorrectedBatch(cols, cfg, begin, end, out);
      },
      [&](EdgeId id) {
        const Edge& e = graph.edge(id);
        return NoiseCorrectedEdge(e.weight, graph.out_strength(e.src),
                                  graph.in_strength(e.dst), n_total, options)
            .status();
      },
      options.cancel);
  if (!scores.ok()) return scores.status();
  return ScoredEdges(&graph, "noise_corrected", std::move(*scores),
                     /*has_sdev=*/true);
}

}  // namespace netbone
