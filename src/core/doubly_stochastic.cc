#include "core/doubly_stochastic.h"

#include <cmath>
#include <vector>

#include "common/strings.h"

namespace netbone {

Result<ScoredEdges> DoublyStochastic(const Graph& graph,
                                     const DoublyStochasticOptions& options) {
  if (graph.num_edges() == 0) {
    return Status::FailedPrecondition("graph has no edges");
  }

  // The algorithm requires a square matrix with no all-zero row or column
  // among the active nodes. Nodes with no incident edge at all are excluded
  // from balancing (their matrix row/column is empty by construction);
  // nodes with edges in only one direction make balancing impossible.
  const size_t n = static_cast<size_t>(graph.num_nodes());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    const bool has_out = graph.out_degree(v) > 0;
    const bool has_in = graph.in_degree(v) > 0;
    if (has_out != has_in) {
      return Status::FailedPrecondition(
          StrFormat("node %d has edges in only one direction; the matrix "
                    "has no doubly stochastic scaling",
                    v));
    }
  }

  // Sparse Sinkhorn-Knopp: maintain row scalings r and column scalings c;
  // balanced entry = r[i] * w_ij * c[j]. For undirected graphs the stored
  // edge (i, j) represents both matrix entries (i, j) and (j, i).
  std::vector<double> r(n, 1.0);
  std::vector<double> c(n, 1.0);
  std::vector<double> row_sum(n), col_sum(n);
  const bool undirected = !graph.directed();

  const auto accumulate_sums = [&]() {
    std::fill(row_sum.begin(), row_sum.end(), 0.0);
    std::fill(col_sum.begin(), col_sum.end(), 0.0);
    for (const Edge& e : graph.edges()) {
      const size_t i = static_cast<size_t>(e.src);
      const size_t j = static_cast<size_t>(e.dst);
      const double balanced = r[i] * e.weight * c[j];
      row_sum[i] += balanced;
      col_sum[j] += balanced;
      if (undirected && e.src != e.dst) {
        const double mirrored = r[j] * e.weight * c[i];
        row_sum[j] += mirrored;
        col_sum[i] += mirrored;
      }
    }
  };

  bool converged = false;
  for (int64_t iter = 0; iter < options.max_iterations && !converged;
       ++iter) {
    // Row sweep.
    accumulate_sums();
    for (size_t i = 0; i < n; ++i) {
      if (row_sum[i] > 0.0) r[i] /= row_sum[i];
    }
    // Column sweep.
    accumulate_sums();
    for (size_t j = 0; j < n; ++j) {
      if (col_sum[j] > 0.0) c[j] /= col_sum[j];
    }
    // Convergence check on fresh sums.
    accumulate_sums();
    double max_dev = 0.0;
    for (size_t v = 0; v < n; ++v) {
      if (graph.out_degree(static_cast<NodeId>(v)) > 0) {
        max_dev = std::max(max_dev, std::fabs(row_sum[v] - 1.0));
      }
      if (graph.in_degree(static_cast<NodeId>(v)) > 0) {
        max_dev = std::max(max_dev, std::fabs(col_sum[v] - 1.0));
      }
    }
    converged = max_dev <= options.tolerance;
  }

  if (!converged) {
    return Status::FailedPrecondition(
        "Sinkhorn-Knopp did not converge: the matrix has no doubly "
        "stochastic form (paper: 'n/a')");
  }

  std::vector<EdgeScore> scores;
  scores.reserve(static_cast<size_t>(graph.num_edges()));
  for (const Edge& e : graph.edges()) {
    const size_t i = static_cast<size_t>(e.src);
    const size_t j = static_cast<size_t>(e.dst);
    double balanced = r[i] * e.weight * c[j];
    if (undirected && e.src != e.dst) {
      balanced = std::max(balanced, r[j] * e.weight * c[i]);
    }
    scores.push_back(EdgeScore{balanced, 0.0});
  }
  return ScoredEdges(&graph, "doubly_stochastic", std::move(scores),
                     /*has_sdev=*/false);
}

}  // namespace netbone
