#include "core/doubly_stochastic.h"

#include <cmath>
#include <vector>

#include "common/parallel.h"
#include "common/strings.h"
#include "graph/adjacency.h"

namespace netbone {

Result<ScoredEdges> DoublyStochastic(const Graph& graph,
                                     const DoublyStochasticOptions& options) {
  if (graph.num_edges() == 0) {
    return Status::FailedPrecondition("graph has no edges");
  }

  // The algorithm requires a square matrix with no all-zero row or column
  // among the active nodes. Nodes with no incident edge at all are excluded
  // from balancing (their matrix row/column is empty by construction);
  // nodes with edges in only one direction make balancing impossible.
  const size_t n = static_cast<size_t>(graph.num_nodes());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    const bool has_out = graph.out_degree(v) > 0;
    const bool has_in = graph.in_degree(v) > 0;
    if (has_out != has_in) {
      return Status::FailedPrecondition(
          StrFormat("node %d has edges in only one direction; the matrix "
                    "has no doubly stochastic scaling",
                    v));
    }
  }

  // Sparse Sinkhorn-Knopp: maintain row scalings r and column scalings c;
  // balanced entry = r[i] * w_ij * c[j]. For undirected graphs the stored
  // edge (i, j) represents both matrix entries (i, j) and (j, i).
  //
  // The sweeps are node-major over the CSR index: row_sum[i] folds i's
  // out-arcs (incident arcs when undirected) and col_sum[j] folds j's
  // in-arcs, each in its fixed CSR order. A node's sum is computed whole
  // by whichever ParallelFor chunk owns the node, so the floating-point
  // association never depends on the chunk partition and the result is
  // bit-identical for every thread count.
  std::vector<double> r(n, 1.0);
  std::vector<double> c(n, 1.0);
  std::vector<double> row_sum(n), col_sum(n);
  const Adjacency adjacency(graph);
  const int num_threads = options.num_threads;

  const auto accumulate_row_sums = [&]() {
    ParallelFor(static_cast<int64_t>(n), num_threads,
                [&](int64_t begin, int64_t end, int) {
                  for (int64_t v = begin; v < end; ++v) {
                    const size_t i = static_cast<size_t>(v);
                    double sum = 0.0;
                    for (const Arc& arc :
                         adjacency.out_arcs(static_cast<NodeId>(v))) {
                      sum += r[i] * arc.weight *
                             c[static_cast<size_t>(arc.neighbor)];
                    }
                    row_sum[i] = sum;
                  }
                });
  };
  const auto accumulate_col_sums = [&]() {
    ParallelFor(static_cast<int64_t>(n), num_threads,
                [&](int64_t begin, int64_t end, int) {
                  for (int64_t v = begin; v < end; ++v) {
                    const size_t j = static_cast<size_t>(v);
                    double sum = 0.0;
                    for (const Arc& arc :
                         adjacency.in_arcs(static_cast<NodeId>(v))) {
                      sum += r[static_cast<size_t>(arc.neighbor)] *
                             arc.weight * c[j];
                    }
                    col_sum[j] = sum;
                  }
                });
  };

  bool converged = false;
  for (int64_t iter = 0; iter < options.max_iterations && !converged;
       ++iter) {
    // Row sweep.
    accumulate_row_sums();
    ParallelFor(static_cast<int64_t>(n), num_threads,
                [&](int64_t begin, int64_t end, int) {
                  for (int64_t i = begin; i < end; ++i) {
                    const size_t v = static_cast<size_t>(i);
                    if (row_sum[v] > 0.0) r[v] /= row_sum[v];
                  }
                });
    // Column sweep.
    accumulate_col_sums();
    ParallelFor(static_cast<int64_t>(n), num_threads,
                [&](int64_t begin, int64_t end, int) {
                  for (int64_t j = begin; j < end; ++j) {
                    const size_t v = static_cast<size_t>(j);
                    if (col_sum[v] > 0.0) c[v] /= col_sum[v];
                  }
                });
    // Convergence check on fresh sums. Per-chunk maxima folded with max
    // afterwards: exact, so the verdict is thread-count independent.
    accumulate_row_sums();
    accumulate_col_sums();
    const int chunks =
        NumParallelChunks(static_cast<int64_t>(n), num_threads);
    std::vector<double> chunk_dev(static_cast<size_t>(chunks), 0.0);
    ParallelFor(static_cast<int64_t>(n), num_threads,
                [&](int64_t begin, int64_t end, int chunk) {
                  double dev = 0.0;
                  for (int64_t v = begin; v < end; ++v) {
                    const size_t i = static_cast<size_t>(v);
                    if (graph.out_degree(static_cast<NodeId>(v)) > 0) {
                      dev = std::max(dev, std::fabs(row_sum[i] - 1.0));
                    }
                    if (graph.in_degree(static_cast<NodeId>(v)) > 0) {
                      dev = std::max(dev, std::fabs(col_sum[i] - 1.0));
                    }
                  }
                  chunk_dev[static_cast<size_t>(chunk)] = dev;
                });
    double max_dev = 0.0;
    for (const double dev : chunk_dev) max_dev = std::max(max_dev, dev);
    converged = max_dev <= options.tolerance;
  }

  if (!converged) {
    return Status::FailedPrecondition(
        "Sinkhorn-Knopp did not converge: the matrix has no doubly "
        "stochastic form (paper: 'n/a')");
  }

  const bool undirected = !graph.directed();
  std::vector<EdgeScore> scores;
  scores.reserve(static_cast<size_t>(graph.num_edges()));
  for (const Edge& e : graph.edges()) {
    const size_t i = static_cast<size_t>(e.src);
    const size_t j = static_cast<size_t>(e.dst);
    double balanced = r[i] * e.weight * c[j];
    if (undirected && e.src != e.dst) {
      balanced = std::max(balanced, r[j] * e.weight * c[i]);
    }
    scores.push_back(EdgeScore{balanced, 0.0});
  }
  return ScoredEdges(&graph, "doubly_stochastic", std::move(scores),
                     /*has_sdev=*/false);
}

}  // namespace netbone
