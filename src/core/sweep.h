// Copyright 2026 The netbone Authors.
//
// One-sort threshold-sweep engine. The paper's evaluation criteria
// (Coverage Sec. V-D, Stability Sec. V-F, the Fig. 7-8 share sweeps) are
// defined over *families* of backbones — one method evaluated at many
// retention levels. Pricing every sweep point independently costs
// P * (E log E + E a(E)) per method: a fresh sort for each TopK/TopShare
// call plus a fresh isolate scan for each Coverage. This engine computes
// the deterministic (score desc, weight desc, id asc) permutation exactly
// once per ScoredEdges (ScoreOrder), then answers the entire descending
// sweep in a single linear pass: an incremental union-find with live
// component/coverage counters yields Coverage, kept-weight share, and the
// GrowUntilConnected stopping index for all P thresholds in
// O(E log E + E a(E) + P) total (SweepProfile).
//
// The single-point entry points in core/filter.h (TopK, TopShare,
// GrowUntilConnected) are thin wrappers over the overloads below, so every
// caller shares one comparator and one tie-break rule.

#ifndef NETBONE_CORE_SWEEP_H_
#define NETBONE_CORE_SWEEP_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/filter.h"
#include "core/scored_edges.h"
#include "graph/graph.h"

namespace netbone {

/// The deterministic descending-score permutation of a ScoredEdges table:
/// edge ids sorted by (score desc, weight desc, id asc), computed exactly
/// once at construction. Everything downstream — prefix masks, budget
/// lookups, sweep profiles — reads the permutation instead of re-sorting.
///
/// The wrapped ScoredEdges (and its Graph) must outlive the order.
class ScoreOrder {
 public:
  /// Sorts once. This is the only place in the library that orders edges
  /// by score; the process-wide counter below observes every call.
  explicit ScoreOrder(const ScoredEdges& scored);

  /// Patch construction for the incremental rescoring path
  /// (core/delta_rescore.h): builds the order of `scored` from `base` —
  /// the order of the ancestor table — without a global sort.
  /// `base_to_next` maps each base edge id to its successor id (-1 =
  /// deleted; empty = the identity mapping of a weight-changes-only
  /// delta); `dirty` lists the successor ids whose scores were
  /// recomputed, ascending, and must include every inserted edge. The
  /// clean run keeps its base order (scores and weights are bitwise
  /// unchanged and the id remap is monotone, so the (score desc, weight
  /// desc, id asc) comparator agrees), the dirty ids are ranked among
  /// themselves — an O(d log d) sort over the delta, not the table — and
  /// one linear merge yields the permutation, element-for-element
  /// identical to sorting from scratch (the comparator is a total order).
  /// SortsPerformed() does not advance: patching is not a sort. If the
  /// inputs are inconsistent (clean + dirty does not cover the table) the
  /// constructor falls back to the full sort — correct, counted, slow.
  ScoreOrder(const ScoredEdges& scored, const ScoreOrder& base,
             std::span<const EdgeId> base_to_next,
             std::span<const EdgeId> dirty);

  /// Restore construction for the snapshot path (service/snapshot.h):
  /// adopts a previously computed permutation instead of sorting. The
  /// candidate is fully validated in O(E) — it must be a permutation of
  /// [0, E) whose every adjacent pair satisfies the (score desc, weight
  /// desc, id asc) comparator; the comparator is a total order, so
  /// adjacent agreement pins the entire sequence to the one permutation
  /// the sorting constructor would produce. Returns Corruption when the
  /// candidate fails either check. SortsPerformed() does not advance:
  /// restoring is not a sort, and the warm-restart zero-sort gate counts
  /// on that.
  static Result<ScoreOrder> FromPermutation(const ScoredEdges& scored,
                                            std::vector<EdgeId> ids);

  /// The scored table the order was built from.
  const ScoredEdges& scored() const { return *scored_; }

  /// The underlying graph.
  const Graph& graph() const { return scored_->graph(); }

  /// Number of ordered edges (== scored().size()).
  int64_t size() const { return static_cast<int64_t>(ids_.size()); }

  /// Edge ids in descending-score order.
  std::span<const EdgeId> ids() const { return ids_; }

  /// The edge id at `rank` (0 = highest score).
  EdgeId id_at(int64_t rank) const {
    return ids_[static_cast<size_t>(rank)];
  }

  /// Edge budget for a retention share: llround(share * |E|) with share
  /// clamped to [0, 1] — the exact TopShare rule.
  int64_t KForShare(double share) const;

  /// Mask keeping the first min(k, |E|) edges of the order; element-wise
  /// identical to TopK(scored(), k).
  BackboneMask PrefixMask(int64_t k) const;

  /// Number of edges with score strictly greater than `threshold`;
  /// O(log E) binary search over the descending score sequence, identical
  /// to the linear CountAboveScore in eval/edge_budget.h.
  int64_t CountAbove(double threshold) const;

  /// Process-wide count of score sorts ever performed (ScoreOrder
  /// constructions). Test instrumentation for the one-sort-per-method
  /// contract: a P-point batch sweep must advance this by exactly one per
  /// scored method, never by P.
  static int64_t SortsPerformed();

 private:
  struct ValidatedTag {};
  ScoreOrder(ValidatedTag, const ScoredEdges& scored, std::vector<EdgeId> ids)
      : scored_(&scored), ids_(std::move(ids)) {}

  const ScoredEdges* scored_ = nullptr;
  std::vector<EdgeId> ids_;
};

/// Prefix profile of the full descending sweep, computed by one linear
/// incremental union-find pass over a ScoreOrder. Index k describes the
/// backbone that keeps the first k edges of the order (k in [0, |E|]).
struct SweepProfile {
  /// covered_nodes[k]: distinct endpoints among the first k edges — the
  /// Coverage numerator at prefix k.
  std::vector<int64_t> covered_nodes;

  /// kept_weight[k]: total weight of the first k edges (cumulative sum in
  /// rank order), for kept-weight-share curves.
  std::vector<double> kept_weight;

  /// Non-isolated node count of the original graph — the Coverage
  /// denominator (|V| - |I_G|).
  int64_t target_nodes = 0;

  /// The GrowUntilConnected stopping index: the smallest k whose prefix
  /// backbone covers every originally non-isolated node in one connected
  /// component. |E| when no prefix ever does (the grow rule then keeps
  /// every edge); 0 when the graph has no edges to cover.
  int64_t connect_k = 0;

  /// Coverage at prefix k, as CoverageOfMask would compute it.
  double CoverageAt(int64_t k) const {
    return static_cast<double>(covered_nodes[static_cast<size_t>(k)]) /
           static_cast<double>(target_nodes);
  }

  /// Share of total weight retained at prefix k (0 when the graph has no
  /// weight).
  double WeightShareAt(int64_t k) const {
    const double total = kept_weight.back();
    return total > 0.0 ? kept_weight[static_cast<size_t>(k)] / total : 0.0;
  }
};

/// Runs the single O(E a(E)) pass. The profile answers any number of
/// sweep points afterwards in O(1) each.
SweepProfile BuildSweepProfile(const ScoreOrder& order);

/// TopK riding a precomputed order: no sort, O(E) mask build.
BackboneMask TopK(const ScoreOrder& order, int64_t k);

/// TopShare riding a precomputed order.
BackboneMask TopShare(const ScoreOrder& order, double share);

/// The Doubly Stochastic stopping rule riding a precomputed order: walks
/// the order with an incremental union-find and stops at the connect
/// index (early exit — it does not build a full profile).
BackboneMask GrowUntilConnected(const ScoreOrder& order);

}  // namespace netbone

#endif  // NETBONE_CORE_SWEEP_H_
