// SSE2 instantiation of the batched scoring kernels. SSE2 is the x86-64
// baseline, so no ISA flag is needed — only -ffp-contract=off (see
// CMakeLists.txt) to pin down the no-contraction guarantee.

#include "core/simd_kernels_internal.h"

#if (defined(__SSE2__) || defined(_M_X64)) &&        \
    (defined(__x86_64__) || defined(_M_X64)) &&      \
    !defined(NETBONE_SIMD_DISABLED)

#include "core/simd_kernels_impl.h"

namespace netbone::internal_simd {

const KernelTable* Sse2Kernels() {
  static constexpr KernelTable kTable = MakeKernelTable<simd::Sse2>();
  return &kTable;
}

}  // namespace netbone::internal_simd

#else

namespace netbone::internal_simd {

const KernelTable* Sse2Kernels() { return nullptr; }

}  // namespace netbone::internal_simd

#endif
