// Copyright 2026 The netbone Authors.
//
// Batched scoring kernels over the structure-of-arrays edge view
// (graph/edge_columns.h), with runtime CPU dispatch.
//
// Each kernel scores a contiguous range [begin, end) of the edge table in
// fixed-width SIMD lanes (AVX2: 4 doubles, SSE2/NEON: 2) with a scalar
// remainder, writing EdgeScore pairs. The contract that makes this safe to
// wire under every caller:
//
//   The batched result is BIT-IDENTICAL to running the scalar per-edge
//   oracle (NoiseCorrectedEdge / DisparityFilterEdgeScore / naive) over
//   the same range, at every width, on every input.
//
// That holds because the kernels use only IEEE correctly-rounded ops
// (+,-,*,/,sqrt) in exactly the scalar oracle's expression grouping, their
// TUs are compiled with FMA contraction off, the disparity power is the
// same deterministic integer-exponent ladder in both forms (PowUIntExp),
// and lanes the fast path cannot reproduce exactly (invalid NC inputs,
// oversized DF exponents) drop that block to the scalar oracle itself.
//
// Dispatch: the best level the host supports is picked once at startup
// (kScalar always works). The NETBONE_SIMD environment variable
// (scalar|sse2|neon|avx2|auto; "off" = scalar) caps the level for a whole
// process; ScopedSimdLevelOverride forces it programmatically for tests
// and benchmarks. Building with -DNETBONE_SIMD=off compiles the vector
// TUs empty, leaving only the scalar table.

#ifndef NETBONE_CORE_SIMD_KERNELS_H_
#define NETBONE_CORE_SIMD_KERNELS_H_

#include <cstdint>
#include <vector>

#include "core/disparity_filter.h"
#include "core/scored_edges.h"
#include "graph/edge_columns.h"

namespace netbone {

/// Instruction-set level a batch kernel runs at. Order is preference:
/// higher enumerators are wider/faster.
enum class SimdLevel {
  kScalar = 0,  ///< per-edge oracle loop; always available, the identity
                ///< baseline every other level must reproduce bitwise
  kSse2 = 1,    ///< 2-wide, x86-64 baseline
  kNeon = 2,    ///< 2-wide, aarch64 baseline
  kAvx2 = 3,    ///< 4-wide x86-64
};

/// Short lowercase name ("scalar", "sse2", "neon", "avx2") for logs,
/// bench JSON and the NETBONE_SIMD variable.
const char* SimdLevelName(SimdLevel level);

/// The level batch calls use right now: active override if any, else the
/// NETBONE_SIMD cap, else the best level this host supports.
SimdLevel ActiveSimdLevel();

/// Every level usable on this host (compiled in and CPU-supported),
/// ascending; always starts with kScalar. What identity tests sweep.
std::vector<SimdLevel> SupportedSimdLevels();

/// True when ActiveSimdLevel() processes >= 4 doubles per lane group —
/// the hosts where the bench gate demands a >= 2x kernel speedup.
bool SimdHasWideLanes();

/// Forces ActiveSimdLevel() to `level` (clamped to host support) for the
/// scope's lifetime; restores the previous state on destruction. For
/// tests and benches only — not synchronized against concurrent scoring
/// calls on other threads.
class ScopedSimdLevelOverride {
 public:
  explicit ScopedSimdLevelOverride(SimdLevel level);
  ~ScopedSimdLevelOverride();

  ScopedSimdLevelOverride(const ScopedSimdLevelOverride&) = delete;
  ScopedSimdLevelOverride& operator=(const ScopedSimdLevelOverride&) = delete;

 private:
  int previous_;
};

/// Graph-constant inputs of the NC kernel: the matrix total and the
/// option flags that select the formula variant. Mirrors the subset of
/// NoiseCorrectedOptions the closed-form path reads (the binomial-pvalue
/// variant never reaches these kernels; see noise_corrected.cc).
struct NcKernelConfig {
  double n_total = 0.0;
  bool bayesian_prior = true;
  bool python_erratum_beta = false;
  bool marginals_respond_to_weight = true;
};

/// Scores edges [begin, end) of `cols` with the noise-corrected kernel at
/// the active level, writing out[begin..end). Returns the lowest edge id
/// in the range whose inputs are invalid (non-positive endpoint strength
/// or negative weight) with out[] unspecified from that id on, or -1 on
/// full success. Callers recover the precise Status by replaying the
/// scalar oracle at the returned id.
int64_t NoiseCorrectedBatch(const EdgeColumns& cols, const NcKernelConfig& cfg,
                            int64_t begin, int64_t end, EdgeScore* out);

/// NoiseCorrectedBatch at an explicit level (clamped to host support).
int64_t NoiseCorrectedBatchAt(SimdLevel level, const EdgeColumns& cols,
                              const NcKernelConfig& cfg, int64_t begin,
                              int64_t end, EdgeScore* out);

/// Scores edges [begin, end) with the disparity-filter kernel at the
/// active level. DF accepts every input, so this always succeeds; the
/// int64_t return (-1) keeps the batch signature uniform.
int64_t DisparityFilterBatch(const EdgeColumns& cols,
                             DisparityEndpointRule rule, int64_t begin,
                             int64_t end, EdgeScore* out);

/// DisparityFilterBatch at an explicit level (clamped to host support).
int64_t DisparityFilterBatchAt(SimdLevel level, const EdgeColumns& cols,
                               DisparityEndpointRule rule, int64_t begin,
                               int64_t end, EdgeScore* out);

/// Scores edges [begin, end) with the naive-threshold kernel (score =
/// weight, sdev = 0) at the active level. Never fails.
int64_t NaiveThresholdBatch(const EdgeColumns& cols, int64_t begin,
                            int64_t end, EdgeScore* out);

/// NaiveThresholdBatch at an explicit level (clamped to host support).
int64_t NaiveThresholdBatchAt(SimdLevel level, const EdgeColumns& cols,
                              int64_t begin, int64_t end, EdgeScore* out);

}  // namespace netbone

#endif  // NETBONE_CORE_SIMD_KERNELS_H_
