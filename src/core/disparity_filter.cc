#include "core/disparity_filter.h"

#include <algorithm>

#include "core/simd_kernels.h"
#include "graph/edge_columns.h"

namespace netbone {

double DisparityPValue(double share, int64_t degree) {
  // int64 -> double is exact for any degree below 2^53, far beyond any
  // representable edge count.
  return DisparityPValueDm1(share, static_cast<double>(degree - 1));
}

EdgeScore DisparityFilterEdgeScore(const Graph& graph, const Edge& e,
                                   const DisparityFilterOptions& options) {
  // Test 1: from the source's perspective, the edge's share of outgoing
  // strength. Test 2: from the target's perspective, the share of incoming
  // strength. For undirected graphs both use the symmetric strength/
  // degree, i.e. the two incident endpoints.
  const double out_total = graph.out_strength(e.src);
  const double in_total = graph.in_strength(e.dst);
  const double src_share = out_total > 0.0 ? e.weight / out_total : 0.0;
  const double dst_share = in_total > 0.0 ? e.weight / in_total : 0.0;
  const double src_score =
      1.0 - DisparityPValue(src_share, graph.out_degree(e.src));
  const double dst_score =
      1.0 - DisparityPValue(dst_share, graph.in_degree(e.dst));

  double score = 0.0;
  switch (options.endpoint_rule) {
    case DisparityEndpointRule::kEither:
      score = std::max(src_score, dst_score);
      break;
    case DisparityEndpointRule::kBoth:
      score = std::min(src_score, dst_score);
      break;
    case DisparityEndpointRule::kSource:
      score = src_score;
      break;
  }
  return EdgeScore{score, 0.0};
}

Result<ScoredEdges> DisparityFilter(const Graph& graph,
                                    const DisparityFilterOptions& options) {
  if (graph.num_edges() == 0) {
    return Status::FailedPrecondition("graph has no edges");
  }

  // Batched sweep over the SoA columns: whole chunk sub-ranges go to the
  // vectorized DF kernel (bit-identical to DisparityFilterEdgeScore per
  // element, which the identity suite enforces).
  const EdgeColumns& cols = graph.edge_columns();
  Result<std::vector<EdgeScore>> scores = ParallelScoreEdgeRanges(
      graph, options.num_threads,
      [&](int64_t begin, int64_t end, EdgeScore* out) {
        return DisparityFilterBatch(cols, options.endpoint_rule, begin, end,
                                    out);
      },
      [](EdgeId) { return Status::OK(); },  // DF accepts every edge
      options.cancel);
  if (!scores.ok()) return scores.status();
  return ScoredEdges(&graph, "disparity_filter", std::move(*scores),
                     /*has_sdev=*/false);
}

}  // namespace netbone
