// Copyright 2026 The netbone Authors.
//
// Maximum Spanning Tree backbone (paper Sec. III-B): the spanning tree (or
// forest, for disconnected graphs) of maximum total weight, extracted with
// Kruskal's algorithm over descending weights. Parameter-free; satisfies
// the Coverage criterion by construction but forces a tree topology.

#ifndef NETBONE_CORE_MAXIMUM_SPANNING_TREE_H_
#define NETBONE_CORE_MAXIMUM_SPANNING_TREE_H_

#include "common/result.h"
#include "core/scored_edges.h"
#include "graph/graph.h"

namespace netbone {

/// Options for MaximumSpanningTree.
struct MaximumSpanningTreeOptions {
  /// Worker threads for the Kruskal sort (the dominant cost; the pair
  /// projection and the union-find walk stay serial). 0 = hardware
  /// concurrency. The comparator is a strict total order over node pairs,
  /// so the output is bit-identical for every thread count.
  int num_threads = 0;
};

/// Scores tree edges 1 and non-tree edges 0. Directed graphs are treated
/// as their undirected weight projection (each directed edge inherits the
/// decision made for its node pair). Ties are broken deterministically by
/// (weight desc, src, dst).
Result<ScoredEdges> MaximumSpanningTree(
    const Graph& graph, const MaximumSpanningTreeOptions& options = {});

/// Sum of the weights of the tree edges (for optimality tests).
double SpanningTreeWeight(const Graph& graph, const ScoredEdges& scored);

}  // namespace netbone

#endif  // NETBONE_CORE_MAXIMUM_SPANNING_TREE_H_
