// Copyright 2026 The netbone Authors.
//
// High Salience Skeleton (Grady, Thiemann & Brockmann, Nat. Comms 2012;
// [14] in the paper). The salience of an edge is the fraction of nodes
// whose shortest-path tree (with edge length 1/weight) contains the edge:
// HSS = (1/|V|) sum_v SPT(v). Salience is empirically bimodal, so a
// threshold of ~0.5 splits skeleton from noise; here salience is simply the
// edge score, and any filter from core/filter.h applies.

#ifndef NETBONE_CORE_HIGH_SALIENCE_SKELETON_H_
#define NETBONE_CORE_HIGH_SALIENCE_SKELETON_H_

#include <cstdint>

#include "common/result.h"
#include "core/scored_edges.h"
#include "graph/graph.h"

namespace netbone {

/// Options for HighSalienceSkeleton.
struct HighSalienceSkeletonOptions {
  /// Worker threads for the per-source Dijkstra runs. 0 = use hardware
  /// concurrency. The result is deterministic regardless of thread count.
  int num_threads = 0;

  /// Abort with FailedPrecondition when |V| * |E| exceeds this budget, to
  /// mirror the paper's observation that HSS "could not run ... on networks
  /// larger than a few thousand edges". 0 disables the guard.
  int64_t max_cost = 0;
};

/// Scores every edge with its salience in [0, 1].
Result<ScoredEdges> HighSalienceSkeleton(
    const Graph& graph, const HighSalienceSkeletonOptions& options = {});

}  // namespace netbone

#endif  // NETBONE_CORE_HIGH_SALIENCE_SKELETON_H_
