// Copyright 2026 The netbone Authors.
//
// High Salience Skeleton (Grady, Thiemann & Brockmann, Nat. Comms 2012;
// [14] in the paper). The salience of an edge is the fraction of nodes
// whose shortest-path tree (with edge length 1/weight) contains the edge:
// HSS = (1/|V|) sum_v SPT(v). Salience is empirically bimodal, so a
// threshold of ~0.5 splits skeleton from noise; here salience is simply the
// edge score, and any filter from core/filter.h applies.
//
// Exact HSS costs one Dijkstra per node — the reason the paper "could not
// run [it] on networks larger than a few thousand edges". Salience is
// stable under source subsampling (Shekhtman et al. 2013), so
// `source_sample_size` trades exactness for an unbiased k-source estimate
// (count rescaled by |V|/k) that runs on graphs far beyond the exact
// budget.

#ifndef NETBONE_CORE_HIGH_SALIENCE_SKELETON_H_
#define NETBONE_CORE_HIGH_SALIENCE_SKELETON_H_

#include <cstdint>

#include "common/result.h"
#include "core/scored_edges.h"
#include "graph/graph.h"

namespace netbone {

/// Options for HighSalienceSkeleton.
struct HighSalienceSkeletonOptions {
  /// Worker threads for the per-source Dijkstra runs, scheduled as
  /// grain-batched work-stealing tasks (skewed per-source costs cannot
  /// strand cores behind one heavy slab). 0 = use hardware concurrency.
  /// The result is deterministic regardless of thread count and steal
  /// order: tree-membership counts are exact integers.
  int num_threads = 0;

  /// Abort with FailedPrecondition when the traversal cost S * |E| (S =
  /// number of Dijkstra sources: |V| exact, source_sample_size sampled)
  /// exceeds this budget, to mirror the paper's observation that HSS
  /// "could not run ... on networks larger than a few thousand edges".
  /// 0 disables the guard. Sampling shrinks S, so a budget that rejects an
  /// exact run can admit a sampled one on the same graph.
  int64_t max_cost = 0;

  /// Approximate mode: > 0 scores salience from this many distinct
  /// sources, drawn uniformly without replacement with `sample_seed`, and
  /// rescales tree-membership counts by |V| / k so the score remains an
  /// unbiased salience estimate in [0, 1]. 0 (or >= |V|) = exact.
  int64_t source_sample_size = 0;

  /// Seed for the source sample; same seed + same graph = same scores.
  uint64_t sample_seed = 42;

  /// Cooperative cancellation, polled before every grain-batch of source
  /// Dijkstras; a fired token returns Cancelled / DeadlineExceeded.
  CancelToken cancel;
};

/// Scores every edge with its salience in [0, 1].
Result<ScoredEdges> HighSalienceSkeleton(
    const Graph& graph, const HighSalienceSkeletonOptions& options = {});

/// Caps the heap bytes the process-wide HSS workspace pool may retain
/// between calls (it already caps the retained *count* at hardware
/// concurrency). Each pooled workspace keeps the arrays of the largest
/// graph it ever served, so a long-lived server that mixes huge and tiny
/// graphs would otherwise hold peak-size scratch forever. When the pool
/// exceeds the budget, the largest workspaces are dropped first — the
/// remaining small ones serve the common case. <= 0 restores the default
/// (unlimited). Takes effect immediately and on every later release.
void SetHssWorkspacePoolByteBudget(int64_t bytes);

/// Heap bytes currently retained by the idle workspaces of the pool
/// (workspaces checked out by a running HSS call are not counted).
int64_t HssWorkspacePoolRetainedBytes();

}  // namespace netbone

#endif  // NETBONE_CORE_HIGH_SALIENCE_SKELETON_H_
