#include "core/delta_rescore.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "core/disparity_filter.h"
#include "core/naive.h"
#include "core/noise_corrected.h"
#include "core/simd_kernels.h"
#include "graph/edge_columns.h"

namespace netbone {
namespace {

/// Copies clean slots and collects the dirty set, then rescores the dirty
/// ids through `score_range` (the method's batched kernel over the
/// successor's SoA columns) with `replay_edge` regenerating the winning
/// per-edge Status — ParallelScoreEdgeRangeSubset hands the contiguous
/// runs that dominate real deltas (endpoint stars) to whole vector lanes.
/// `needs_marginals` is false for the naive threshold, whose score reads
/// only the weight — its dirty set is exactly the changed/inserted edges.
///
/// Two shapes. The common one — weight changes only, no structural churn
/// (the noisy re-observation of a fixed edge set) — keeps edge ids
/// aligned: the base score table is copied wholesale (one memcpy-shaped
/// vector copy), the dirty set is the union of the delta's precollected
/// changed and star lists (O(affected), no table scan), and
/// `base_to_next` stays empty (the documented identity encoding).
/// Structural deltas derive the alignment and dirty set from the
/// delta's own inserted/deleted/changed/star lists — the classification
/// lives in ComputeGraphDelta alone; nothing here re-compares edges.
template <typename RangeScorer, typename Replay>
Result<std::optional<DeltaRescoreResult>> PatchScores(
    const ScoredEdges& base, const Graph& next, const GraphDelta& delta,
    const DeltaRescoreOptions& options, bool needs_marginals,
    const RangeScorer& score_range, const Replay& replay_edge) {
  const Graph& base_graph = base.graph();
  const bool scan_stars = needs_marginals && !delta.changed_nodes.empty();

  DeltaRescoreResult out;
  const bool identity = delta.inserted.empty() && delta.deleted.empty() &&
                        base_graph.num_edges() == next.num_edges();
  if (identity) {
    out.scores = base.scores();  // clean slots wholesale; dirty overwritten
    if (!scan_stars) {
      // Weight-only sensitivity (NT, or a delta that moved no marginal):
      // the dirty set is exactly the changed list.
      out.dirty.reserve(delta.changed.size());
      for (const EdgeWeightChange& change : delta.changed) {
        out.dirty.push_back(change.next_id);
      }
    } else {
      // Dirty = changed ∪ endpoint stars, both precollected ascending by
      // the delta extraction — a two-pointer union over O(affected)
      // entries, no table scan.
      out.dirty.reserve(delta.changed.size() + delta.star_edges.size());
      size_t ci = 0;
      size_t si = 0;
      while (ci < delta.changed.size() || si < delta.star_edges.size()) {
        const EdgeId c = ci < delta.changed.size()
                             ? delta.changed[ci].next_id
                             : std::numeric_limits<EdgeId>::max();
        const EdgeId s = si < delta.star_edges.size()
                             ? delta.star_edges[si]
                             : std::numeric_limits<EdgeId>::max();
        const EdgeId id = std::min(c, s);
        if (c == id) ++ci;
        if (s == id) ++si;
        out.dirty.push_back(id);
      }
    }
  } else {
    // Structural delta: everything needed is already classified on the
    // GraphDelta — no second table walk. The surviving base edges map to
    // the successor ids that are not insertions, in order (both tables
    // are (src, dst)-sorted, so the surviving subsequences align).
    out.scores.resize(static_cast<size_t>(next.num_edges()));
    out.base_to_next.assign(static_cast<size_t>(base_graph.num_edges()),
                            EdgeId{-1});
    size_t di = 0;
    size_t ii = 0;
    EdgeId ni = 0;
    for (EdgeId bi = 0; bi < base_graph.num_edges(); ++bi) {
      if (di < delta.deleted.size() && delta.deleted[di] == bi) {
        ++di;
        continue;  // no successor slot
      }
      while (ii < delta.inserted.size() && delta.inserted[ii] == ni) {
        ++ii;
        ++ni;
      }
      out.base_to_next[static_cast<size_t>(bi)] = ni;
      // Copy unconditionally: dirty survivors are overwritten by the
      // rescore below, so no cleanliness test is needed here.
      out.scores[static_cast<size_t>(ni)] = base.at(bi);
      ++ni;
    }
    // Dirty = changed ∪ inserted ∪ (endpoint stars when the method reads
    // marginals); all three lists are ascending, so a three-way union.
    constexpr EdgeId kDone = std::numeric_limits<EdgeId>::max();
    size_t ci = 0;
    size_t xi = 0;
    size_t si = 0;
    const size_t stars = scan_stars ? delta.star_edges.size() : 0;
    out.dirty.reserve(delta.changed.size() + delta.inserted.size() + stars);
    for (;;) {
      const EdgeId c =
          ci < delta.changed.size() ? delta.changed[ci].next_id : kDone;
      const EdgeId x = xi < delta.inserted.size() ? delta.inserted[xi] : kDone;
      const EdgeId s = si < stars ? delta.star_edges[si] : kDone;
      const EdgeId id = std::min(c, std::min(x, s));
      if (id == kDone) break;
      if (c == id) ++ci;
      if (x == id) ++xi;
      if (s == id) ++si;
      out.dirty.push_back(id);
    }
  }

  Status status = ParallelScoreEdgeRangeSubset(
      out.dirty, options.num_threads, options.grain, score_range,
      replay_edge, &out.scores, options.cancel);
  if (!status.ok()) return status;
  return std::optional<DeltaRescoreResult>(std::move(out));
}

}  // namespace

bool SupportsDeltaRescore(Method method) {
  return method == Method::kNoiseCorrected ||
         method == Method::kDisparityFilter ||
         method == Method::kNaiveThreshold;
}

Result<std::optional<DeltaRescoreResult>> DeltaRescore(
    Method method, const ScoredEdges& base, const Graph& next,
    const GraphDelta& delta, const DeltaRescoreOptions& options) {
  const std::optional<DeltaRescoreResult> not_incremental;
  if (!SupportsDeltaRescore(method)) return not_incremental;
  // An edgeless successor fails every method's precondition; the full
  // path owns that canonical error.
  if (next.num_edges() == 0) return not_incremental;

  switch (method) {
    case Method::kNoiseCorrected: {
      // N_.. enters every edge's null expectation: a moved total dirties
      // the whole table, which is exactly a full rescore.
      const double n_total = next.matrix_total();
      if (!delta.totals_equal || !(n_total > 0.0)) return not_incremental;
      const EdgeColumns& cols = next.edge_columns();
      NcKernelConfig cfg;  // flag defaults match the registry defaults
      cfg.n_total = n_total;
      return PatchScores(
          base, next, delta, options, /*needs_marginals=*/true,
          [&cols, cfg](int64_t begin, int64_t end, EdgeScore* out) {
            return NoiseCorrectedBatch(cols, cfg, begin, end, out);
          },
          [&next, n_total](EdgeId id) {
            const Edge& e = next.edge(id);
            return NoiseCorrectedEdge(e.weight, next.out_strength(e.src),
                                      next.in_strength(e.dst), n_total,
                                      NoiseCorrectedOptions{})
                .status();
          });
    }
    case Method::kDisparityFilter: {
      const EdgeColumns& cols = next.edge_columns();
      const DisparityFilterOptions df;  // registry defaults
      return PatchScores(
          base, next, delta, options, /*needs_marginals=*/true,
          [&cols, df](int64_t begin, int64_t end, EdgeScore* out) {
            return DisparityFilterBatch(cols, df.endpoint_rule, begin, end,
                                        out);
          },
          [](EdgeId) { return Status::OK(); });
    }
    case Method::kNaiveThreshold: {
      const EdgeColumns& cols = next.edge_columns();
      return PatchScores(
          base, next, delta, options, /*needs_marginals=*/false,
          [&cols](int64_t begin, int64_t end, EdgeScore* out) {
            return NaiveThresholdBatch(cols, begin, end, out);
          },
          [](EdgeId) { return Status::OK(); });
    }
    default:
      return not_incremental;
  }
}

}  // namespace netbone
