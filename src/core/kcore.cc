#include "core/kcore.h"

#include <algorithm>

#include "graph/adjacency.h"
#include "graph/transform.h"

namespace netbone {

std::vector<int32_t> CoreNumbers(const Graph& graph) {
  // Work on the undirected neighbor structure; parallel directions and
  // self-loops do not add to the simple degree.
  const size_t n = static_cast<size_t>(graph.num_nodes());
  std::vector<std::vector<NodeId>> neighbors(n);
  for (const Edge& e : graph.edges()) {
    if (e.src == e.dst) continue;
    neighbors[static_cast<size_t>(e.src)].push_back(e.dst);
    neighbors[static_cast<size_t>(e.dst)].push_back(e.src);
  }
  // Deduplicate (i->j and j->i in a directed graph are one undirected tie).
  std::vector<int32_t> degree(n, 0);
  for (size_t v = 0; v < n; ++v) {
    auto& nb = neighbors[v];
    std::sort(nb.begin(), nb.end());
    nb.erase(std::unique(nb.begin(), nb.end()), nb.end());
    degree[v] = static_cast<int32_t>(nb.size());
  }

  // Batagelj-Zaversnik bucket sort peeling.
  const int32_t max_degree =
      n == 0 ? 0 : *std::max_element(degree.begin(), degree.end());
  std::vector<int32_t> bucket_start(static_cast<size_t>(max_degree) + 2, 0);
  for (size_t v = 0; v < n; ++v) {
    bucket_start[static_cast<size_t>(degree[v]) + 1]++;
  }
  for (size_t d = 1; d < bucket_start.size(); ++d) {
    bucket_start[d] += bucket_start[d - 1];
  }
  std::vector<NodeId> order(n);
  std::vector<int32_t> position(n);
  {
    std::vector<int32_t> cursor(bucket_start.begin(),
                                bucket_start.end() - 1);
    for (size_t v = 0; v < n; ++v) {
      position[v] = cursor[static_cast<size_t>(degree[v])]++;
      order[static_cast<size_t>(position[v])] = static_cast<NodeId>(v);
    }
  }

  std::vector<int32_t> core(degree);
  for (size_t i = 0; i < n; ++i) {
    const NodeId v = order[i];
    for (const NodeId u : neighbors[static_cast<size_t>(v)]) {
      if (core[static_cast<size_t>(u)] > core[static_cast<size_t>(v)]) {
        // Move u one bucket down: swap it with the first node of its
        // current bucket, then shrink the bucket boundary.
        const int32_t du = core[static_cast<size_t>(u)];
        const int32_t pu = position[static_cast<size_t>(u)];
        const int32_t pw = bucket_start[static_cast<size_t>(du)];
        const NodeId w = order[static_cast<size_t>(pw)];
        if (u != w) {
          std::swap(order[static_cast<size_t>(pu)],
                    order[static_cast<size_t>(pw)]);
          position[static_cast<size_t>(u)] = pw;
          position[static_cast<size_t>(w)] = pu;
        }
        bucket_start[static_cast<size_t>(du)]++;
        core[static_cast<size_t>(u)]--;
      }
    }
  }
  return core;
}

Result<ScoredEdges> KCoreScores(const Graph& graph) {
  if (graph.num_edges() == 0) {
    return Status::FailedPrecondition("graph has no edges");
  }
  const std::vector<int32_t> core = CoreNumbers(graph);
  std::vector<EdgeScore> scores;
  scores.reserve(static_cast<size_t>(graph.num_edges()));
  for (const Edge& e : graph.edges()) {
    const int32_t c = std::min(core[static_cast<size_t>(e.src)],
                               core[static_cast<size_t>(e.dst)]);
    scores.push_back(EdgeScore{static_cast<double>(c), 0.0});
  }
  return ScoredEdges(&graph, "kcore", std::move(scores), /*has_sdev=*/false);
}

Result<Graph> KCoreSubgraph(const Graph& graph, int32_t k) {
  const std::vector<int32_t> core = CoreNumbers(graph);
  std::vector<bool> keep(static_cast<size_t>(graph.num_edges()), false);
  for (EdgeId id = 0; id < graph.num_edges(); ++id) {
    const Edge& e = graph.edge(id);
    keep[static_cast<size_t>(id)] =
        core[static_cast<size_t>(e.src)] >= k &&
        core[static_cast<size_t>(e.dst)] >= k;
  }
  return EdgeSubgraphMask(graph, keep);
}

}  // namespace netbone
