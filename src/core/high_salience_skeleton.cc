#include "core/high_salience_skeleton.h"

#include <atomic>
#include <thread>
#include <vector>

#include "common/strings.h"
#include "graph/adjacency.h"
#include "graph/paths.h"

namespace netbone {

Result<ScoredEdges> HighSalienceSkeleton(
    const Graph& graph, const HighSalienceSkeletonOptions& options) {
  if (graph.num_edges() == 0) {
    return Status::FailedPrecondition("graph has no edges");
  }
  if (options.max_cost > 0) {
    const int64_t cost =
        static_cast<int64_t>(graph.num_nodes()) * graph.num_edges();
    if (cost > options.max_cost) {
      return Status::FailedPrecondition(
          StrFormat("HSS cost |V|*|E| = %lld exceeds budget %lld",
                    static_cast<long long>(cost),
                    static_cast<long long>(options.max_cost)));
    }
  }

  const Adjacency adjacency(graph);
  const size_t num_edges = static_cast<size_t>(graph.num_edges());
  const NodeId n = graph.num_nodes();

  int num_threads = options.num_threads;
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads <= 0) num_threads = 1;
  }
  num_threads = std::min<int>(num_threads, std::max<NodeId>(n, 1));

  // Each worker accumulates tree-membership counts into its own vector;
  // summing at the end keeps the result independent of scheduling.
  std::vector<std::vector<int64_t>> partial(
      static_cast<size_t>(num_threads),
      std::vector<int64_t>(num_edges, 0));
  std::atomic<NodeId> next_source{0};

  auto worker = [&](int thread_index) {
    std::vector<int64_t>& counts = partial[static_cast<size_t>(thread_index)];
    for (;;) {
      const NodeId source = next_source.fetch_add(1);
      if (source >= n) break;
      const ShortestPathTree tree = Dijkstra(adjacency, source);
      for (NodeId v = 0; v < n; ++v) {
        const EdgeId parent = tree.parent_edge[static_cast<size_t>(v)];
        if (parent >= 0) counts[static_cast<size_t>(parent)]++;
      }
    }
  };

  if (num_threads == 1) {
    worker(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(num_threads));
    for (int t = 0; t < num_threads; ++t) threads.emplace_back(worker, t);
    for (std::thread& t : threads) t.join();
  }

  std::vector<EdgeScore> scores(num_edges);
  const double denom = static_cast<double>(n);
  for (size_t e = 0; e < num_edges; ++e) {
    int64_t total = 0;
    for (const auto& counts : partial) total += counts[e];
    scores[e] = EdgeScore{static_cast<double>(total) / denom, 0.0};
  }
  return ScoredEdges(&graph, "high_salience_skeleton", std::move(scores),
                     /*has_sdev=*/false);
}

}  // namespace netbone
