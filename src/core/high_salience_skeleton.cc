#include "core/high_salience_skeleton.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <numeric>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "common/random.h"
#include "common/strings.h"
#include "graph/adjacency.h"
#include "graph/paths.h"

namespace netbone {
namespace {

/// Process-wide free list of workspaces, so the count vectors and
/// Dijkstra arrays — the remaining large allocation of the HSS hot path —
/// are reused across HighSalienceSkeleton calls instead of reallocated
/// and zero-filled each time. A call draws workspaces on demand, one per
/// concurrently-executing source task (concurrent HSS calls simply draw
/// distinct workspaces), and counts are exact integers reset by generation
/// stamp, so results never depend on which physical workspace serves which
/// source. Retention is doubly bounded: by count (hardware thread count —
/// excess workspaces from oversubscribed num_threads or concurrent calls
/// are freed on release) and, optionally, by bytes. Each retained
/// workspace keeps the node/edge arrays of the largest graph it ever
/// served, so SetHssWorkspacePoolByteBudget lets long-lived servers that
/// mix huge and tiny graphs shed the peak-size scratch: whenever the idle
/// pool exceeds the budget, the largest workspaces are dropped first,
/// keeping the most small ones available for reuse.
class WorkspacePool {
 public:
  std::unique_ptr<DijkstraWorkspace> Acquire() {
    std::lock_guard<std::mutex> lock(mu_);
    if (free_.empty()) return std::make_unique<DijkstraWorkspace>();
    std::unique_ptr<DijkstraWorkspace> workspace = std::move(free_.back());
    free_.pop_back();
    return workspace;
  }

  void Release(std::unique_ptr<DijkstraWorkspace> workspace) {
    std::lock_guard<std::mutex> lock(mu_);
    if (static_cast<int>(free_.size()) < ResolveThreadCount(0)) {
      free_.push_back(std::move(workspace));
    }
    TrimLocked();
  }

  void SetByteBudget(int64_t bytes) {
    std::lock_guard<std::mutex> lock(mu_);
    byte_budget_ = bytes;
    TrimLocked();
  }

  int64_t RetainedBytes() {
    std::lock_guard<std::mutex> lock(mu_);
    return RetainedBytesLocked();
  }

  static WorkspacePool& Global() {
    static WorkspacePool* pool = new WorkspacePool();  // leaked on purpose
    return *pool;
  }

 private:
  int64_t RetainedBytesLocked() const {
    int64_t total = 0;
    for (const auto& workspace : free_) total += workspace->ApproxBytes();
    return total;
  }

  /// Drops the largest idle workspaces until the pool fits the budget.
  /// Precondition: mu_ held.
  void TrimLocked() {
    if (byte_budget_ <= 0) return;
    int64_t total = RetainedBytesLocked();
    while (total > byte_budget_ && !free_.empty()) {
      auto largest = free_.begin();
      int64_t largest_bytes = (*largest)->ApproxBytes();
      for (auto it = std::next(free_.begin()); it != free_.end(); ++it) {
        const int64_t bytes = (*it)->ApproxBytes();
        if (bytes > largest_bytes) {
          largest = it;
          largest_bytes = bytes;
        }
      }
      total -= largest_bytes;
      free_.erase(largest);
    }
  }

  std::mutex mu_;
  std::vector<std::unique_ptr<DijkstraWorkspace>> free_;
  int64_t byte_budget_ = 0;  // <= 0 = unlimited
};

}  // namespace

void SetHssWorkspacePoolByteBudget(int64_t bytes) {
  WorkspacePool::Global().SetByteBudget(bytes);
}

int64_t HssWorkspacePoolRetainedBytes() {
  return WorkspacePool::Global().RetainedBytes();
}

Result<ScoredEdges> HighSalienceSkeleton(
    const Graph& graph, const HighSalienceSkeletonOptions& options) {
  if (graph.num_edges() == 0) {
    return Status::FailedPrecondition("graph has no edges");
  }
  if (options.source_sample_size < 0) {
    return Status::InvalidArgument("source_sample_size must be >= 0");
  }
  const NodeId n = graph.num_nodes();

  // Pick the Dijkstra sources: every node (exact), or a seeded uniform
  // sample without replacement, sorted for traversal locality. The sample
  // depends only on (n, sample_size, seed), never on threading.
  std::vector<NodeId> sources;
  const bool sampled =
      options.source_sample_size > 0 &&
      options.source_sample_size < static_cast<int64_t>(n);
  if (sampled) {
    Rng rng(options.sample_seed);
    const std::vector<size_t> picks = rng.SampleWithoutReplacement(
        static_cast<size_t>(n),
        static_cast<size_t>(options.source_sample_size));
    sources.reserve(picks.size());
    for (const size_t p : picks) sources.push_back(static_cast<NodeId>(p));
    std::sort(sources.begin(), sources.end());
  } else {
    sources.resize(static_cast<size_t>(n));
    std::iota(sources.begin(), sources.end(), 0);
  }

  // The guard prices the actual traversal work, so sampling lifts the cap
  // a full exact run would hit: S * |E| instead of |V| * |E|.
  if (options.max_cost > 0) {
    const int64_t cost =
        static_cast<int64_t>(sources.size()) * graph.num_edges();
    if (cost > options.max_cost) {
      return Status::FailedPrecondition(
          StrFormat("HSS cost sources*|E| = %lld exceeds budget %lld",
                    static_cast<long long>(cost),
                    static_cast<long long>(options.max_cost)));
    }
  }

  const Adjacency adjacency(graph);
  const size_t num_edges = static_cast<size_t>(graph.num_edges());
  const int64_t num_sources = static_cast<int64_t>(sources.size());

  // Per-source Dijkstra costs are wildly skewed on hub-dominated graphs
  // (a source inside the dense core settles the whole component, a source
  // on a fragment settles a handful of nodes), so the sources run as
  // grain-batched work-stealing tasks instead of W static slabs: no core
  // idles behind the one slab that happened to hold the expensive
  // sources. Each task checks a workspace out of a call-local set fed by
  // the process-wide pool — the workspace holds both the Dijkstra arrays
  // (re-armed per source via generation stamp) and the tree-membership
  // count vector (reset once per call via its own stamp, surviving the
  // per-source re-arms) — so the hot path still makes zero large
  // allocations once the pool is warm. Which task lands on which
  // workspace depends on scheduling, but the counts are exact integers:
  // the final per-edge sum over the call's workspaces is the same
  // associative total any partition and any steal order yields, keeping
  // scores bit-identical at every thread count.
  std::mutex workspace_mu;
  std::vector<std::unique_ptr<DijkstraWorkspace>> call_workspaces;
  std::vector<DijkstraWorkspace*> idle_workspaces;
  const auto checkout = [&]() -> DijkstraWorkspace* {
    std::lock_guard<std::mutex> lock(workspace_mu);
    if (!idle_workspaces.empty()) {
      DijkstraWorkspace* workspace = idle_workspaces.back();
      idle_workspaces.pop_back();
      return workspace;
    }
    call_workspaces.push_back(WorkspacePool::Global().Acquire());
    call_workspaces.back()->ResetEdgeCounts(
        static_cast<int64_t>(num_edges));
    return call_workspaces.back().get();
  };
  const auto checkin = [&](DijkstraWorkspace* workspace) {
    std::lock_guard<std::mutex> lock(workspace_mu);
    idle_workspaces.push_back(workspace);
  };

  // A handful of sources per task: fine enough that a heavy source never
  // strands more than grain-1 siblings behind it, coarse enough that the
  // two checkout mutex hops amortize over real Dijkstra work.
  const int64_t grain = std::clamp<int64_t>(
      num_sources / (32 * ResolveThreadCount(options.num_threads)), 1, 32);
  const bool cancellable = options.cancel.CanExpire();
  std::atomic<bool> saw_cancel{false};
  ParallelForDynamic(
      num_sources, grain, options.num_threads,
      [&](int64_t begin, int64_t end) {
        // Cooperative cancellation at batch granularity: once the token
        // fires, remaining batches skip their Dijkstras entirely (the
        // partial counts are discarded below, so skipping cannot leak
        // into any returned score).
        if (cancellable) {
          if (saw_cancel.load(std::memory_order_relaxed)) return;
          if (!options.cancel.Check().ok()) {
            saw_cancel.store(true, std::memory_order_relaxed);
            return;
          }
        }
        DijkstraWorkspace* workspace = checkout();
        for (int64_t s = begin; s < end; ++s) {
          DijkstraInto(adjacency, sources[static_cast<size_t>(s)], {},
                       workspace);
          for (const NodeId v : workspace->touched()) {
            const EdgeId parent = workspace->parent_edge(v);
            if (parent >= 0) workspace->BumpEdgeCount(parent);
          }
        }
        checkin(workspace);
      });

  if (saw_cancel.load(std::memory_order_relaxed)) {
    for (auto& workspace : call_workspaces) {
      WorkspacePool::Global().Release(std::move(workspace));
    }
    return options.cancel.Check();
  }

  // Salience = tree count / number of sources; for sampled runs this is
  // the unbiased estimate (count * (n/k)) / n = count / k.
  std::vector<EdgeScore> scores(num_edges);
  const double denom = static_cast<double>(num_sources);
  for (size_t e = 0; e < num_edges; ++e) {
    int64_t total = 0;
    for (const auto& workspace : call_workspaces) {
      total += workspace->edge_count(static_cast<EdgeId>(e));
    }
    scores[e] = EdgeScore{static_cast<double>(total) / denom, 0.0};
  }
  for (auto& workspace : call_workspaces) {
    WorkspacePool::Global().Release(std::move(workspace));
  }
  return ScoredEdges(&graph, "high_salience_skeleton", std::move(scores),
                     /*has_sdev=*/false);
}

}  // namespace netbone
