#include "core/simd_kernels.h"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <string>

#include "core/simd_kernels_internal.h"

namespace netbone {
namespace {

using internal_simd::KernelTable;

const KernelTable kScalarTable = {&internal_simd::ScalarNcRange,
                                  &internal_simd::ScalarDfRange,
                                  &internal_simd::ScalarNtRange};

/// The table compiled for exactly `level`, or nullptr when the build
/// left that ISA out.
const KernelTable* TableForExact(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return &kScalarTable;
    case SimdLevel::kSse2:
      return internal_simd::Sse2Kernels();
    case SimdLevel::kNeon:
      return internal_simd::NeonKernels();
    case SimdLevel::kAvx2:
      return internal_simd::Avx2Kernels();
  }
  return &kScalarTable;
}

bool CpuSupports(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return true;
    case SimdLevel::kSse2:
      // SSE2 is part of the x86-64 baseline; its TU compiles iff we are
      // on x86-64, which TableForExact already encodes.
      return true;
    case SimdLevel::kNeon:
      // Likewise the aarch64 baseline.
      return true;
    case SimdLevel::kAvx2:
#if (defined(__x86_64__) || defined(_M_X64)) && defined(__GNUC__)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
  }
  return false;
}

bool LevelUsable(SimdLevel level) {
  return CpuSupports(level) && TableForExact(level) != nullptr;
}

/// Best usable level no higher than `want` (enum order is preference
/// order); kScalar is always usable.
SimdLevel ClampToUsable(SimdLevel want) {
  static constexpr SimdLevel kPreference[] = {
      SimdLevel::kAvx2, SimdLevel::kNeon, SimdLevel::kSse2,
      SimdLevel::kScalar};
  for (const SimdLevel level : kPreference) {
    if (static_cast<int>(level) <= static_cast<int>(want) &&
        LevelUsable(level)) {
      return level;
    }
  }
  return SimdLevel::kScalar;
}

/// Process-wide base level: the NETBONE_SIMD cap if set, else the best
/// the host supports. Read once; ScopedSimdLevelOverride layers on top.
SimdLevel BaseLevelFromEnv() {
  const char* env = std::getenv("NETBONE_SIMD");
  if (env == nullptr) return ClampToUsable(SimdLevel::kAvx2);
  std::string value(env);
  for (char& c : value) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (value == "scalar" || value == "off") return SimdLevel::kScalar;
  if (value == "sse2") return ClampToUsable(SimdLevel::kSse2);
  if (value == "neon") return ClampToUsable(SimdLevel::kNeon);
  if (value == "avx2") return ClampToUsable(SimdLevel::kAvx2);
  // "auto" and anything unrecognized: best available.
  return ClampToUsable(SimdLevel::kAvx2);
}

SimdLevel BaseLevel() {
  static const SimdLevel level = BaseLevelFromEnv();
  return level;
}

/// -1 = no override; otherwise the forced level as an int.
std::atomic<int> g_override{-1};

}  // namespace

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSse2:
      return "sse2";
    case SimdLevel::kNeon:
      return "neon";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "scalar";
}

SimdLevel ActiveSimdLevel() {
  const int forced = g_override.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<SimdLevel>(forced);
  return BaseLevel();
}

std::vector<SimdLevel> SupportedSimdLevels() {
  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  for (const SimdLevel level :
       {SimdLevel::kSse2, SimdLevel::kNeon, SimdLevel::kAvx2}) {
    if (LevelUsable(level)) levels.push_back(level);
  }
  return levels;
}

bool SimdHasWideLanes() { return ActiveSimdLevel() == SimdLevel::kAvx2; }

ScopedSimdLevelOverride::ScopedSimdLevelOverride(SimdLevel level)
    : previous_(g_override.exchange(
          static_cast<int>(ClampToUsable(level)), std::memory_order_relaxed)) {
}

ScopedSimdLevelOverride::~ScopedSimdLevelOverride() {
  g_override.store(previous_, std::memory_order_relaxed);
}

int64_t NoiseCorrectedBatchAt(SimdLevel level, const EdgeColumns& cols,
                              const NcKernelConfig& cfg, int64_t begin,
                              int64_t end, EdgeScore* out) {
  return TableForExact(ClampToUsable(level))->nc(cols, cfg, begin, end, out);
}

int64_t NoiseCorrectedBatch(const EdgeColumns& cols, const NcKernelConfig& cfg,
                            int64_t begin, int64_t end, EdgeScore* out) {
  return NoiseCorrectedBatchAt(ActiveSimdLevel(), cols, cfg, begin, end, out);
}

int64_t DisparityFilterBatchAt(SimdLevel level, const EdgeColumns& cols,
                               DisparityEndpointRule rule, int64_t begin,
                               int64_t end, EdgeScore* out) {
  return TableForExact(ClampToUsable(level))->df(cols, rule, begin, end, out);
}

int64_t DisparityFilterBatch(const EdgeColumns& cols,
                             DisparityEndpointRule rule, int64_t begin,
                             int64_t end, EdgeScore* out) {
  return DisparityFilterBatchAt(ActiveSimdLevel(), cols, rule, begin, end,
                                out);
}

int64_t NaiveThresholdBatchAt(SimdLevel level, const EdgeColumns& cols,
                              int64_t begin, int64_t end, EdgeScore* out) {
  return TableForExact(ClampToUsable(level))->nt(cols, begin, end, out);
}

int64_t NaiveThresholdBatch(const EdgeColumns& cols, int64_t begin,
                            int64_t end, EdgeScore* out) {
  return NaiveThresholdBatchAt(ActiveSimdLevel(), cols, begin, end, out);
}

}  // namespace netbone
