// Copyright 2026 The netbone Authors.
//
// Multilayer Noise-Corrected backbone — the second extension proposed in
// the paper's conclusion: "We can extend the NC methodology to consider
// multilayer networks, where nodes in different layers are coupled
// together and where these couplings influence the backbone structure."
//
// Model: L layers over one node universe (e.g. trade, flights and
// migration between the same countries). A node's propensity to send or
// receive has a shared component across layers (rich hubs attract
// everything) and a layer-specific component. The coupled null model
// interpolates between the two with a coupling parameter gamma:
//
//   marginal_used = (1 - gamma) * layer_marginal
//                 + gamma * pooled_marginal * layer_share
//
// where pooled_marginal sums the node's marginal over all layers and
// layer_share rescales it to the layer's total weight. gamma = 0
// recovers independent per-layer NC; gamma = 1 judges every layer
// against the node's cross-layer propensities, so an edge that is
// unremarkable for the pair *overall* is pruned even if it looks salient
// within its thin layer.

#ifndef NETBONE_CORE_MULTILAYER_H_
#define NETBONE_CORE_MULTILAYER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/scored_edges.h"
#include "graph/graph.h"

namespace netbone {

/// A set of layers over one shared node universe. All layers must agree
/// on node count and directedness.
class MultilayerNetwork {
 public:
  /// Validates and wraps the layers (at least one required).
  static Result<MultilayerNetwork> Create(std::vector<Graph> layers,
                                          std::vector<std::string> names =
                                              {});

  int64_t num_layers() const {
    return static_cast<int64_t>(layers_.size());
  }
  const Graph& layer(int64_t index) const {
    return layers_[static_cast<size_t>(index)];
  }
  const std::string& layer_name(int64_t index) const {
    return names_[static_cast<size_t>(index)];
  }
  NodeId num_nodes() const { return layers_.front().num_nodes(); }

 private:
  MultilayerNetwork(std::vector<Graph> layers,
                    std::vector<std::string> names)
      : layers_(std::move(layers)), names_(std::move(names)) {}

  std::vector<Graph> layers_;
  std::vector<std::string> names_;
};

/// Options for MultilayerNoiseCorrected.
struct MultilayerNcOptions {
  /// Inter-layer coupling in [0, 1]; 0 = independent layers.
  double coupling = 0.5;
};

/// Runs the coupled NC null model on every layer; result i scores
/// network.layer(i)'s edges (aligned with that layer's edge table).
Result<std::vector<ScoredEdges>> MultilayerNoiseCorrected(
    const MultilayerNetwork& network,
    const MultilayerNcOptions& options = {});

}  // namespace netbone

#endif  // NETBONE_CORE_MULTILAYER_H_
