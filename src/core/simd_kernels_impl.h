// Copyright 2026 The netbone Authors.
//
// Width-generic vector scoring kernels, instantiated once per ISA trait
// (common/simd.h) by the per-ISA TUs (simd_kernels_{avx2,sse2,neon}.cc).
// Include nowhere else: the including TU's compile flags decide which
// instructions these templates lower to, and those TUs are the ones built
// with FMA contraction disabled.
//
// Every kernel mirrors its scalar oracle expression by expression — same
// operations, same left-to-right grouping, no reassociation — so each
// lane computes exactly the scalar result (see simd_kernels.h for the
// full bit-identity argument). Comments below point at the oracle lines
// being mirrored; change either side only in lockstep.

#ifndef NETBONE_CORE_SIMD_KERNELS_IMPL_H_
#define NETBONE_CORE_SIMD_KERNELS_IMPL_H_

#include <cstdint>

#include "common/simd.h"
#include "core/simd_kernels_internal.h"

namespace netbone::internal_simd {

/// NC over [begin, end): mirrors NoiseCorrectedEdge (noise_corrected.cc)
/// composed with HypergeometricPriorMoments / FitBetaByMoments /
/// BinomialVariance (stats/distributions.cc). Lane blocks containing any
/// invalid input (non-positive strength, negative or NaN weight) fall back
/// to the scalar oracle for that whole block, which also regenerates the
/// first-failing-id protocol exactly.
template <class T>
int64_t VecNcRange(const EdgeColumns& cols, const NcKernelConfig& cfg,
                   int64_t begin, int64_t end, EdgeScore* out) {
  using VD = typename T::VD;
  using VM = typename T::VM;
  constexpr int64_t W = T::kWidth;

  const double n_total = cfg.n_total;
  if (!(n_total > 0.0)) {
    // Every edge fails the oracle's total-weight check; let it say so.
    return ScalarNcRange(cols, cfg, begin, end, out);
  }
  // Graph constants, computed once with the same scalar expressions the
  // oracle evaluates per edge (identical bits every iteration).
  const double n2 = n_total * n_total;
  const bool variance_defined = n_total > 1.0;
  const double variance_denom = n2 * n2 * (n_total - 1.0);

  const VD vzero = T::Set1(0.0);
  const VD vone = T::Set1(1.0);
  const VD vtwo = T::Set1(2.0);
  const VD vn = T::Set1(n_total);
  const VD vn2 = T::Set1(n2);
  const VD vvar_denom = T::Set1(variance_denom);

  int64_t i = begin;
  for (; i + W <= end; i += W) {
    const size_t k = static_cast<size_t>(i);
    const VD w = T::Load(&cols.weight[k]);
    const VD ni = T::Load(&cols.n_i[k]);
    const VD nj = T::Load(&cols.n_j[k]);

    // Oracle validation: ni > 0 && nj > 0 && !(w < 0). The quiet-ordered
    // compares reject NaN lanes too, which conservatively routes any lane
    // the oracle would treat specially through the oracle itself.
    const VM valid = T::MaskAnd(
        T::MaskAnd(T::CmpGt(ni, vzero), T::CmpGt(nj, vzero)),
        T::CmpGe(w, vzero));
    if (!T::AllTrue(valid)) {
      const int64_t bad = ScalarNcRange(cols, cfg, i, i + W, out);
      if (bad >= 0) return bad;
      continue;
    }

    // d.expectation = ni*nj / n;  kappa = 1/expectation;  t = kappa*nij.
    const VD ninj = T::Mul(ni, nj);
    const VD expectation = T::Div(ninj, vn);
    const VD kappa = T::Div(vone, expectation);
    const VD t = T::Mul(kappa, w);
    // transformed_lift = (kappa*nij - 1) / (kappa*nij + 1).
    const VD tp1 = T::Add(t, vone);
    const VD score = T::Div(T::Sub(t, vone), tp1);

    // HypergeometricPriorMoments: mean = ni*nj/n2; variance =
    // ((ni*nj)*(n-ni))*(n-nj) / (n2*n2*(n-1)), or 0 when n <= 1.
    const VD mean = T::Div(ninj, vn2);
    const VD variance =
        variance_defined
            ? T::Div(T::Mul(T::Mul(ninj, T::Sub(vn, ni)), T::Sub(vn, nj)),
                     vvar_denom)
            : vzero;

    VD posterior;
    if (cfg.bayesian_prior) {
      const VD one_m_mean = T::Sub(vone, mean);
      // FitBetaByMoments preconditions as a lane mask; failing lanes take
      // the oracle's degenerate-prior fallback (posterior = prior mean).
      VM fit_ok = T::MaskAnd(T::CmpGt(mean, vzero), T::CmpLt(mean, vone));
      fit_ok = T::MaskAnd(fit_ok, T::CmpGt(variance, vzero));
      VD beta;
      if (!cfg.python_erratum_beta) {
        fit_ok =
            T::MaskAnd(fit_ok, T::CmpLt(variance, T::Mul(mean, one_m_mean)));
        // beta = mean * ((1-mean)*(1-mean)/variance + 1) - 1.
        beta = T::Sub(
            T::Mul(mean, T::Add(T::Div(T::Mul(one_m_mean, one_m_mean),
                                       variance),
                                vone)),
            vone);
      } else {
        // backboning.py erratum: beta = (mean/variance)*(1 - mean*mean)
        //                               - (1 - mean).
        beta = T::Sub(T::Mul(T::Div(mean, variance),
                             T::Sub(vone, T::Mul(mean, mean))),
                      one_m_mean);
      }
      // alpha = (mean*mean/variance)*(1-mean) - mean (both variants).
      const VD alpha = T::Sub(
          T::Mul(T::Div(T::Mul(mean, mean), variance), one_m_mean), mean);
      // Posterior Beta[nij + alpha, n - nij + beta] mean.
      const VD alpha_post = T::Add(alpha, w);
      const VD beta_post = T::Add(beta, T::Sub(vn, w));
      const VD fitted = T::Div(alpha_post, T::Add(alpha_post, beta_post));
      // Lanes where the fit fails may hold inf/NaN garbage in `fitted`;
      // the blend discards those bits, matching the oracle's branch.
      posterior = T::Blend(fit_ok, fitted, mean);
    } else {
      // Ablation plug-in: posterior_p = nij / n.
      posterior = T::Div(w, vn);
    }

    // BinomialVariance: n * p * (1 - p).
    const VD variance_nij =
        T::Mul(T::Mul(vn, posterior), T::Sub(vone, posterior));
    // dkappa = 1/(ni*nj) - n*(ni+nj) / ((ni*nj)*(ni*nj)), or 0 with
    // fixed marginals.
    const VD dkappa =
        cfg.marginals_respond_to_weight
            ? T::Sub(T::Div(vone, ninj),
                     T::Div(T::Mul(vn, T::Add(ni, nj)), T::Mul(ninj, ninj)))
            : vzero;
    // jacobian = 2*(kappa + nij*dkappa) / (kappa*nij + 1)^2.
    const VD denom = T::Mul(tp1, tp1);
    const VD jacobian =
        T::Div(T::Mul(vtwo, T::Add(kappa, T::Mul(w, dkappa))), denom);
    // variance_lift = variance_nij * jacobian * jacobian (left-assoc).
    const VD variance_lift = T::Mul(T::Mul(variance_nij, jacobian), jacobian);
    const VD sdev = T::Sqrt(variance_lift);

    T::StorePairs(reinterpret_cast<double*>(out + i), score, sdev);
  }
  if (i < end) return ScalarNcRange(cols, cfg, i, end, out);
  return -1;
}

/// The DF p-value ladder: PowUIntExp (disparity_filter.h) with per-lane
/// exponents. Finished lanes keep squaring the base harmlessly (base in
/// [0,1], and their odd-bit mask never fires again), exactly like the
/// scalar ladder's final unconditional square.
template <class T>
typename T::VD VecDisparityPValue(typename T::VD share, typename T::VD dm1) {
  using VD = typename T::VD;
  using VM = typename T::VM;
  using VE = typename T::VE;
  const VD vzero = T::Set1(0.0);
  const VD vone = T::Set1(1.0);
  // std::clamp(share, 0, 1) == min(max(share, 0), 1) for every input the
  // callers produce (shares are finite: weight / positive strength, or an
  // exact 0 from the blend).
  const VD clamped = T::Min(T::Max(share, vzero), vone);
  const VD base = T::Sub(vone, clamped);
  VE e = T::ExpFromDouble(dm1);
  VD result = vone;
  VD b = base;
  while (!T::ExpAllZero(e)) {
    const VM odd = T::ExpOddMask(e);
    result = T::Blend(odd, T::Mul(result, b), result);
    b = T::Mul(b, b);
    e = T::ExpHalve(e);
  }
  // degree <= 1 lanes: exponent converts to <= 0 ... dm1 is >= 0 by
  // construction (endpoints have degree >= 1), so dm1 == 0 lanes simply
  // skip every odd-bit multiply and keep the ladder's initial 1.0 —
  // the oracle's early return.
  return result;
}

/// DF over [begin, end): mirrors ScalarDfRange / DisparityFilterEdgeScore.
/// Never fails; always returns -1.
template <class T>
int64_t VecDfRange(const EdgeColumns& cols, DisparityEndpointRule rule,
                   int64_t begin, int64_t end, EdgeScore* out) {
  using VD = typename T::VD;
  constexpr int64_t W = T::kWidth;
  const VD vzero = T::Set1(0.0);
  const VD vone = T::Set1(1.0);
  const VD vmax_exp = T::Set1(kMaxVectorExponent);

  int64_t i = begin;
  for (; i + W <= end; i += W) {
    const size_t k = static_cast<size_t>(i);
    const VD dm1_i = T::Load(&cols.dm1_i[k]);
    const VD dm1_j = T::Load(&cols.dm1_j[k]);
    // Exponents beyond the safe int conversion range (2^30) drop the
    // block to the scalar uint64 ladder.
    if (T::AnyTrue(T::CmpGt(T::Max(dm1_i, dm1_j), vmax_exp))) {
      ScalarDfRange(cols, rule, i, i + W, out);
      continue;
    }
    const VD w = T::Load(&cols.weight[k]);
    const VD ni = T::Load(&cols.n_i[k]);
    const VD nj = T::Load(&cols.n_j[k]);
    // share = total > 0 ? w / total : 0. The division runs on every lane
    // and the blend discards the zero-strength lanes' inf/NaN bits.
    const VD src_share = T::Blend(T::CmpGt(ni, vzero), T::Div(w, ni), vzero);
    const VD dst_share = T::Blend(T::CmpGt(nj, vzero), T::Div(w, nj), vzero);
    const VD src_score =
        T::Sub(vone, VecDisparityPValue<T>(src_share, dm1_i));
    const VD dst_score =
        T::Sub(vone, VecDisparityPValue<T>(dst_share, dm1_j));
    // Endpoint rule. Scores are never NaN (shares clamp to [0,1]), and
    // equal operands make vector min/max trivially agree with std::min/
    // std::max, so selection semantics match the scalar switch.
    VD score = src_score;
    switch (rule) {
      case DisparityEndpointRule::kEither:
        score = T::Max(src_score, dst_score);
        break;
      case DisparityEndpointRule::kBoth:
        score = T::Min(src_score, dst_score);
        break;
      case DisparityEndpointRule::kSource:
        score = src_score;
        break;
    }
    T::StorePairs(reinterpret_cast<double*>(out + i), score, vzero);
  }
  if (i < end) ScalarDfRange(cols, rule, i, end, out);
  return -1;
}

/// NT over [begin, end): score = weight, sdev = 0. Pure interleave.
template <class T>
int64_t VecNtRange(const EdgeColumns& cols, int64_t begin, int64_t end,
                   EdgeScore* out) {
  using VD = typename T::VD;
  constexpr int64_t W = T::kWidth;
  const VD vzero = T::Set1(0.0);
  int64_t i = begin;
  for (; i + W <= end; i += W) {
    const VD w = T::Load(&cols.weight[static_cast<size_t>(i)]);
    T::StorePairs(reinterpret_cast<double*>(out + i), w, vzero);
  }
  if (i < end) ScalarNtRange(cols, i, end, out);
  return -1;
}

/// Builds one ISA's dispatch entries from its trait.
template <class T>
constexpr KernelTable MakeKernelTable() {
  return KernelTable{&VecNcRange<T>, &VecDfRange<T>, &VecNtRange<T>};
}

}  // namespace netbone::internal_simd

#endif  // NETBONE_CORE_SIMD_KERNELS_IMPL_H_
