#include "core/filter.h"

#include "core/sweep.h"
#include "graph/transform.h"

namespace netbone {

BackboneMask FilterByScore(const ScoredEdges& scored, double threshold) {
  BackboneMask mask;
  mask.keep.assign(static_cast<size_t>(scored.size()), false);
  for (EdgeId id = 0; id < scored.size(); ++id) {
    if (scored.at(id).score > threshold) {
      mask.keep[static_cast<size_t>(id)] = true;
      ++mask.kept;
    }
  }
  return mask;
}

BackboneMask FilterByDelta(const ScoredEdges& scored, double delta) {
  BackboneMask mask;
  mask.keep.assign(static_cast<size_t>(scored.size()), false);
  for (EdgeId id = 0; id < scored.size(); ++id) {
    const EdgeScore& s = scored.at(id);
    if (s.score - delta * s.sdev > 0.0) {
      mask.keep[static_cast<size_t>(id)] = true;
      ++mask.kept;
    }
  }
  return mask;
}

BackboneMask TopK(const ScoredEdges& scored, int64_t k) {
  if (k <= 0) {
    BackboneMask mask;
    mask.keep.assign(static_cast<size_t>(scored.size()), false);
    return mask;
  }
  return TopK(ScoreOrder(scored), k);
}

BackboneMask TopShare(const ScoredEdges& scored, double share) {
  if (share <= 0.0) return TopK(scored, 0);
  return TopShare(ScoreOrder(scored), share);
}

BackboneMask GrowUntilConnected(const ScoredEdges& scored) {
  return GrowUntilConnected(ScoreOrder(scored));
}

Result<Graph> ApplyMask(const Graph& graph, const BackboneMask& mask) {
  return EdgeSubgraphMask(graph, mask.keep);
}

std::vector<EdgeId> MaskToEdgeIds(const BackboneMask& mask) {
  std::vector<EdgeId> ids;
  ids.reserve(static_cast<size_t>(mask.kept));
  for (size_t i = 0; i < mask.keep.size(); ++i) {
    if (mask.keep[i]) ids.push_back(static_cast<EdgeId>(i));
  }
  return ids;
}

}  // namespace netbone
