#include "core/filter.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "graph/transform.h"
#include "graph/union_find.h"

namespace netbone {

BackboneMask FilterByScore(const ScoredEdges& scored, double threshold) {
  BackboneMask mask;
  mask.keep.assign(static_cast<size_t>(scored.size()), false);
  for (EdgeId id = 0; id < scored.size(); ++id) {
    if (scored.at(id).score > threshold) {
      mask.keep[static_cast<size_t>(id)] = true;
      ++mask.kept;
    }
  }
  return mask;
}

BackboneMask FilterByDelta(const ScoredEdges& scored, double delta) {
  BackboneMask mask;
  mask.keep.assign(static_cast<size_t>(scored.size()), false);
  for (EdgeId id = 0; id < scored.size(); ++id) {
    const EdgeScore& s = scored.at(id);
    if (s.score - delta * s.sdev > 0.0) {
      mask.keep[static_cast<size_t>(id)] = true;
      ++mask.kept;
    }
  }
  return mask;
}

namespace {

/// Edge ids sorted by (score desc, weight desc, id asc).
std::vector<EdgeId> IdsByDescendingScore(const ScoredEdges& scored) {
  std::vector<EdgeId> ids(static_cast<size_t>(scored.size()));
  std::iota(ids.begin(), ids.end(), EdgeId{0});
  const Graph& g = scored.graph();
  std::sort(ids.begin(), ids.end(), [&](EdgeId a, EdgeId b) {
    const double sa = scored.at(a).score;
    const double sb = scored.at(b).score;
    if (sa != sb) return sa > sb;
    const double wa = g.edge(a).weight;
    const double wb = g.edge(b).weight;
    if (wa != wb) return wa > wb;
    return a < b;
  });
  return ids;
}

}  // namespace

BackboneMask TopK(const ScoredEdges& scored, int64_t k) {
  BackboneMask mask;
  mask.keep.assign(static_cast<size_t>(scored.size()), false);
  if (k <= 0) return mask;
  const std::vector<EdgeId> ids = IdsByDescendingScore(scored);
  const int64_t limit = std::min<int64_t>(k, scored.size());
  for (int64_t i = 0; i < limit; ++i) {
    mask.keep[static_cast<size_t>(ids[static_cast<size_t>(i)])] = true;
  }
  mask.kept = limit;
  return mask;
}

BackboneMask TopShare(const ScoredEdges& scored, double share) {
  share = std::clamp(share, 0.0, 1.0);
  const int64_t k = static_cast<int64_t>(
      std::llround(share * static_cast<double>(scored.size())));
  return TopK(scored, k);
}

BackboneMask GrowUntilConnected(const ScoredEdges& scored) {
  const Graph& g = scored.graph();
  BackboneMask mask;
  mask.keep.assign(static_cast<size_t>(scored.size()), false);

  // Nodes that the backbone must cover: all non-isolates of the original.
  int64_t target_nodes = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.out_degree(v) > 0 || g.in_degree(v) > 0) ++target_nodes;
  }
  if (target_nodes == 0) return mask;

  UnionFind uf(g.num_nodes());
  std::vector<bool> touched(static_cast<size_t>(g.num_nodes()), false);
  int64_t touched_count = 0;
  int64_t largest = 1;

  for (const EdgeId id : IdsByDescendingScore(scored)) {
    const Edge& e = g.edge(id);
    mask.keep[static_cast<size_t>(id)] = true;
    ++mask.kept;
    for (const NodeId v : {e.src, e.dst}) {
      if (!touched[static_cast<size_t>(v)]) {
        touched[static_cast<size_t>(v)] = true;
        ++touched_count;
      }
    }
    uf.Union(e.src, e.dst);
    largest = std::max(largest, uf.SetSize(e.src));
    if (touched_count == target_nodes && largest == target_nodes) break;
  }
  return mask;
}

Result<Graph> ApplyMask(const Graph& graph, const BackboneMask& mask) {
  return EdgeSubgraphMask(graph, mask.keep);
}

std::vector<EdgeId> MaskToEdgeIds(const BackboneMask& mask) {
  std::vector<EdgeId> ids;
  ids.reserve(static_cast<size_t>(mask.kept));
  for (size_t i = 0; i < mask.keep.size(); ++i) {
    if (mask.keep[i]) ids.push_back(static_cast<EdgeId>(i));
  }
  return ids;
}

}  // namespace netbone
