#include "core/change_detection.h"

#include <cmath>
#include <unordered_map>

namespace netbone {

double LiftChangeZ(const NoiseCorrectedDetail& before,
                   const NoiseCorrectedDetail& after) {
  const double pooled_variance =
      before.variance_lift + after.variance_lift;
  if (pooled_variance <= 0.0) {
    // Two exact measurements: any difference is "infinitely" significant,
    // equality is z = 0.
    return after.transformed_lift == before.transformed_lift
               ? 0.0
               : std::numeric_limits<double>::infinity() *
                     (after.transformed_lift > before.transformed_lift
                          ? 1.0
                          : -1.0);
  }
  return (after.transformed_lift - before.transformed_lift) /
         std::sqrt(pooled_variance);
}

Result<ChangeReport> DetectChanges(const Graph& before, const Graph& after,
                                   const ChangeDetectionOptions& options) {
  if (before.num_nodes() != after.num_nodes()) {
    return Status::InvalidArgument("snapshot node universes differ");
  }
  if (before.directed() != after.directed()) {
    return Status::InvalidArgument("snapshot directedness differs");
  }
  if (options.nc_options.use_binomial_pvalue) {
    return Status::InvalidArgument(
        "change detection needs the transform variant (footnote-2 "
        "p-values carry no sdev)");
  }

  const double total_before = before.matrix_total();
  const double total_after = after.matrix_total();
  if (!(total_before > 0.0) || !(total_after > 0.0)) {
    return Status::FailedPrecondition("a snapshot has zero total weight");
  }

  // Evaluate the union of both snapshots' pairs.
  struct PairState {
    NodeId src;
    NodeId dst;
    double weight_before = 0.0;
    double weight_after = 0.0;
    bool in_before = false;
    bool in_after = false;
  };
  std::unordered_map<uint64_t, PairState> pairs;
  const auto key_of = [](const Edge& e) {
    return (static_cast<uint64_t>(e.src) << 32) |
           static_cast<uint64_t>(static_cast<uint32_t>(e.dst));
  };
  for (const Edge& e : before.edges()) {
    PairState& p = pairs[key_of(e)];
    p.src = e.src;
    p.dst = e.dst;
    p.weight_before = e.weight;
    p.in_before = true;
  }
  for (const Edge& e : after.edges()) {
    PairState& p = pairs[key_of(e)];
    p.src = e.src;
    p.dst = e.dst;
    p.weight_after = e.weight;
    p.in_after = true;
  }

  ChangeReport report;
  report.changes.reserve(pairs.size());
  for (const auto& [key, pair] : pairs) {
    if (!options.include_missing_pairs &&
        (!pair.in_before || !pair.in_after)) {
      continue;
    }
    // Marginals must be positive in both snapshots; a node absent from
    // one year cannot be compared there.
    const double ni_before = before.out_strength(pair.src);
    const double nj_before = before.in_strength(pair.dst);
    const double ni_after = after.out_strength(pair.src);
    const double nj_after = after.in_strength(pair.dst);
    if (ni_before <= 0.0 || nj_before <= 0.0 || ni_after <= 0.0 ||
        nj_after <= 0.0) {
      continue;
    }
    const auto detail_before =
        NoiseCorrectedEdge(pair.weight_before, ni_before, nj_before,
                           total_before, options.nc_options);
    const auto detail_after =
        NoiseCorrectedEdge(pair.weight_after, ni_after, nj_after,
                           total_after, options.nc_options);
    if (!detail_before.ok() || !detail_after.ok()) continue;

    EdgeChange change;
    change.src = pair.src;
    change.dst = pair.dst;
    change.weight_before = pair.weight_before;
    change.weight_after = pair.weight_after;
    change.lift_before = detail_before->transformed_lift;
    change.lift_after = detail_after->transformed_lift;
    change.z = LiftChangeZ(*detail_before, *detail_after);
    change.significant = std::fabs(change.z) > options.delta;
    if (change.significant) ++report.significant_count;
    ++report.evaluated_pairs;
    report.changes.push_back(change);
  }
  return report;
}

}  // namespace netbone
