// Copyright 2026 The netbone Authors.
//
// Incremental rescoring: patch a method's score table across a sparse
// graph update instead of rescoring the whole graph. The local methods —
// Noise-Corrected, Disparity Filter, naive threshold — score each edge as
// a pure function of (n_ij, n_i., n_.j, n_..): after a delta, the only
// edges whose scores can move are the changed/inserted edges themselves
// plus every edge incident to a node whose marginals moved (the union of
// the endpoint stars). Everything else is copied bitwise from the base
// table, and only the dirty set pays scoring work — O(affected edges),
// not O(E).
//
// Bit-identity is the contract, not an aspiration: a clean edge's score
// inputs compare bitwise equal (GraphDelta's marginal comparison is
// exact), and a dirty edge is recomputed by the same per-edge kernel the
// full sweep runs, so the patched table equals a full rescore bit for bit
// at every thread count. The same reasoning covers errors: an edge whose
// inputs are unchanged cannot start failing, so the lowest-id failing
// edge — the full sweep's reported error — is always dirty and the
// incremental path reports the identical status.
//
// The global methods (HSS, DS, MST, k-core) couple every score to every
// edge through paths / iterative normalization / global structure; they
// report "not incremental" (nullopt) and callers fall back to the full
// path. NC does too when the matrix total N_.. moved, since the total
// enters every edge's null expectation. For count data (the paper's
// setting: integer interaction counts) totals survive weight
// redistribution exactly, so the common noisy-reobservation delta stays
// incremental.

#ifndef NETBONE_CORE_DELTA_RESCORE_H_
#define NETBONE_CORE_DELTA_RESCORE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/result.h"
#include "core/registry.h"
#include "core/scored_edges.h"
#include "graph/delta.h"
#include "graph/graph.h"

namespace netbone {

/// True for methods whose scores are local in (n_ij, n_i., n_.j, n_..) and
/// can therefore be patched: NC, DF, naive threshold. The global methods
/// (HSS, DS, MST, k-core) always rescore in full.
bool SupportsDeltaRescore(Method method);

/// Options for DeltaRescore.
struct DeltaRescoreOptions {
  /// Worker threads for the dirty-edge rescoring (0 = hardware
  /// concurrency). Output is bit-identical for every value.
  int num_threads = 0;
  /// Block size for the dynamic dirty-edge schedule
  /// (ParallelScoreEdgeSubset): dirty work is skewed — a hub's star lands
  /// as one contiguous id run — so blocks are claimed dynamically.
  int64_t grain = 32;
  /// Cooperative cancellation, polled at block granularity inside the
  /// dirty-edge rescoring sweep.
  CancelToken cancel;
};

/// A patched score table plus the bookkeeping the downstream artifact
/// patches need (ScoreOrder's merge update).
struct DeltaRescoreResult {
  /// Scores for every edge of the successor graph: clean slots copied
  /// bitwise from the base table, dirty slots recomputed.
  std::vector<EdgeScore> scores;
  /// Successor edge ids that were recomputed (ascending): changed or
  /// inserted edges plus edges incident to a changed-marginal node.
  std::vector<EdgeId> dirty;
  /// For each base edge id, the successor id of the same (src, dst) edge,
  /// or -1 when the edge was deleted. Monotone (both tables are
  /// (src, dst)-sorted), which is what lets ScoreOrder patch its
  /// permutation without re-sorting the clean run. Empty encodes the
  /// identity mapping — the common weight-changes-only delta, where edge
  /// ids align and no remap table is worth materializing.
  std::vector<EdgeId> base_to_next;
};

/// Patches `base` (a scored table of `delta`'s base graph, produced by
/// `method` with its registry-default options) into the score table of
/// `next`. Returns nullopt when the update cannot be expressed
/// incrementally — unsupported method, a moved matrix total under NC, or
/// a successor with no edges (the full path owns the canonical error) —
/// and the caller runs the full rescore. Errors mirror the full sweep:
/// the status of the lowest-id failing edge.
Result<std::optional<DeltaRescoreResult>> DeltaRescore(
    Method method, const ScoredEdges& base, const Graph& next,
    const GraphDelta& delta, const DeltaRescoreOptions& options = {});

}  // namespace netbone

#endif  // NETBONE_CORE_DELTA_RESCORE_H_
