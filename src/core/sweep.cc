#include "core/sweep.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>

#include "graph/edge_columns.h"
#include "graph/union_find.h"

namespace netbone {
namespace {

/// Every score sort in the process goes through ScoreOrder's constructor;
/// this counter lets tests prove a batch sweep sorted exactly once per
/// method.
std::atomic<int64_t> g_sorts_performed{0};

/// The one comparator every score ordering uses: (score desc, weight
/// desc, id asc). Total order — ids are unique — so the sorted sequence
/// is unique and patch-merged orders are bit-identical to sorted ones.
struct DescendingScore {
  const ScoredEdges* scored;
  const Graph* graph;

  bool operator()(EdgeId a, EdgeId b) const {
    const double sa = scored->at(a).score;
    const double sb = scored->at(b).score;
    if (sa != sb) return sa > sb;
    const double wa = graph->edge(a).weight;
    const double wb = graph->edge(b).weight;
    if (wa != wb) return wa > wb;
    return a < b;
  }
};

/// Counters the connect-index walk hands back to its caller.
struct WalkResult {
  /// Smallest prefix length covering all non-isolated nodes in one
  /// component; |E| when none does, 0 when there is nothing to cover.
  int64_t connect_k = 0;
  /// Non-isolated node count of the original graph.
  int64_t target_nodes = 0;
};

/// The connect-index walk shared by GrowUntilConnected and
/// BuildSweepProfile: feeds `visit(rank, weight, covered)` the edges in
/// rank order together with the running covered-endpoint count, so callers
/// building prefix arrays read the walk's own counters instead of
/// re-deriving them. `stop_at_connect` enables the early exit for
/// single-point callers. Endpoints and weights come from the graph's SoA
/// columns (graph/edge_columns.h): the walk visits edges in rank order —
/// random edge ids — and the dense int32/double columns touch half the
/// bytes per probe that striding 16-byte Edge structs would.
template <typename Visit>
WalkResult WalkOrder(const ScoreOrder& order, bool stop_at_connect,
                     const Visit& visit) {
  const Graph& g = order.graph();
  WalkResult result;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.out_degree(v) > 0 || g.in_degree(v) > 0) ++result.target_nodes;
  }
  const int64_t num_edges = order.size();
  if (result.target_nodes == 0) return result;  // no edges to walk either

  const EdgeColumns& cols = g.edge_columns();
  UnionFind uf(g.num_nodes());
  std::vector<bool> touched(static_cast<size_t>(g.num_nodes()), false);
  int64_t touched_count = 0;
  int64_t largest = 1;
  result.connect_k = num_edges;
  bool connected = false;

  for (int64_t rank = 0; rank < num_edges; ++rank) {
    const size_t id = static_cast<size_t>(order.id_at(rank));
    const NodeId src = cols.src[id];
    const NodeId dst = cols.dst[id];
    for (const NodeId v : {src, dst}) {
      if (!touched[static_cast<size_t>(v)]) {
        touched[static_cast<size_t>(v)] = true;
        ++touched_count;
      }
    }
    // SetSize is only consulted when a merge actually happened — a failed
    // Union cannot grow any set, and skipping the extra Find pays on the
    // later ranks where most edges close cycles.
    if (uf.Union(src, dst)) {
      largest = std::max(largest, uf.SetSize(src));
    }
    visit(rank, cols.weight[id], touched_count);
    if (!connected && touched_count == result.target_nodes &&
        largest == result.target_nodes) {
      connected = true;
      result.connect_k = rank + 1;
      if (stop_at_connect) break;
    }
  }
  return result;
}

}  // namespace

ScoreOrder::ScoreOrder(const ScoredEdges& scored) : scored_(&scored) {
  ids_.resize(static_cast<size_t>(scored.size()));
  std::iota(ids_.begin(), ids_.end(), EdgeId{0});
  std::sort(ids_.begin(), ids_.end(),
            DescendingScore{&scored, &scored.graph()});
  g_sorts_performed.fetch_add(1, std::memory_order_relaxed);
}

Result<ScoreOrder> ScoreOrder::FromPermutation(const ScoredEdges& scored,
                                               std::vector<EdgeId> ids) {
  const size_t n = static_cast<size_t>(scored.size());
  if (ids.size() != n) {
    return Status::Corruption("score order length does not match table");
  }
  std::vector<char> seen(n, 0);
  for (const EdgeId id : ids) {
    if (id < 0 || static_cast<size_t>(id) >= n ||
        seen[static_cast<size_t>(id)] != 0) {
      return Status::Corruption("score order is not a permutation");
    }
    seen[static_cast<size_t>(id)] = 1;
  }
  // Adjacent-pair agreement with the strict-weak-order comparator is
  // enough: a total order has exactly one sorted permutation.
  const DescendingScore cmp{&scored, &scored.graph()};
  for (size_t i = 1; i < n; ++i) {
    if (cmp(ids[i], ids[i - 1])) {
      return Status::Corruption("score order violates the sort comparator");
    }
  }
  return ScoreOrder(ValidatedTag{}, scored, std::move(ids));
}

ScoreOrder::ScoreOrder(const ScoredEdges& scored, const ScoreOrder& base,
                       std::span<const EdgeId> base_to_next,
                       std::span<const EdgeId> dirty)
    : scored_(&scored) {
  const size_t n = static_cast<size_t>(scored.size());
  std::vector<char> is_dirty(n, 0);
  for (const EdgeId id : dirty) is_dirty[static_cast<size_t>(id)] = 1;

  // The surviving clean run, remapped to successor ids in base rank
  // order (an empty base_to_next is the identity mapping). Monotone remap
  // + bitwise-unchanged keys => still sorted under the shared comparator.
  std::vector<EdgeId> clean;
  clean.reserve(n);
  if (base_to_next.empty()) {
    for (const EdgeId b : base.ids()) {
      if (static_cast<size_t>(b) < n && is_dirty[static_cast<size_t>(b)] == 0) {
        clean.push_back(b);
      }
    }
  } else {
    for (const EdgeId b : base.ids()) {
      const EdgeId next_id = base_to_next[static_cast<size_t>(b)];
      if (next_id >= 0 && is_dirty[static_cast<size_t>(next_id)] == 0) {
        clean.push_back(next_id);
      }
    }
  }

  if (clean.size() + dirty.size() != n) {
    // Inconsistent patch inputs (a dirty list missing an inserted edge,
    // a stale base). Degrade to the plain sort: correct, and visible on
    // the counter so zero-sort tests catch the misuse.
    ids_.resize(n);
    std::iota(ids_.begin(), ids_.end(), EdgeId{0});
    std::sort(ids_.begin(), ids_.end(),
              DescendingScore{&scored, &scored.graph()});
    g_sorts_performed.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  const DescendingScore cmp{&scored, &scored.graph()};
  std::vector<EdgeId> ranked(dirty.begin(), dirty.end());
  std::sort(ranked.begin(), ranked.end(), cmp);  // O(d log d), d = |dirty|

  // Merge by insertion point instead of element-by-element: each dirty id
  // binary-searches its slot in the remaining clean run (d log n
  // comparator calls, not n) and the clean segments between slots move as
  // contiguous copies. The comparator is a total order, so the result is
  // exactly std::merge's — and exactly the full sort's.
  ids_.resize(n);
  EdgeId* out = ids_.data();
  const EdgeId* clean_pos = clean.data();
  const EdgeId* const clean_end = clean_pos + clean.size();
  for (const EdgeId id : ranked) {
    const EdgeId* insert_at = std::lower_bound(clean_pos, clean_end, id, cmp);
    out = std::copy(clean_pos, insert_at, out);
    *out++ = id;
    clean_pos = insert_at;
  }
  std::copy(clean_pos, clean_end, out);
  // No g_sorts_performed bump: zero global sorts is the patch's contract.
}

int64_t ScoreOrder::KForShare(double share) const {
  share = std::clamp(share, 0.0, 1.0);
  return static_cast<int64_t>(
      std::llround(share * static_cast<double>(size())));
}

BackboneMask ScoreOrder::PrefixMask(int64_t k) const {
  BackboneMask mask;
  mask.keep.assign(ids_.size(), false);
  const int64_t limit = std::clamp<int64_t>(k, 0, size());
  for (int64_t rank = 0; rank < limit; ++rank) {
    mask.keep[static_cast<size_t>(id_at(rank))] = true;
  }
  mask.kept = limit;
  return mask;
}

int64_t ScoreOrder::CountAbove(double threshold) const {
  const auto above = [&](EdgeId id) {
    return scored_->at(id).score > threshold;
  };
  return std::partition_point(ids_.begin(), ids_.end(), above) -
         ids_.begin();
}

int64_t ScoreOrder::SortsPerformed() {
  return g_sorts_performed.load(std::memory_order_relaxed);
}

SweepProfile BuildSweepProfile(const ScoreOrder& order) {
  const int64_t num_edges = order.size();
  SweepProfile profile;
  profile.covered_nodes.assign(static_cast<size_t>(num_edges) + 1, 0);
  profile.kept_weight.assign(static_cast<size_t>(num_edges) + 1, 0.0);

  double weight = 0.0;
  const WalkResult walk = WalkOrder(
      order, /*stop_at_connect=*/false,
      [&](int64_t rank, double edge_weight, int64_t covered) {
        weight += edge_weight;
        profile.covered_nodes[static_cast<size_t>(rank) + 1] = covered;
        profile.kept_weight[static_cast<size_t>(rank) + 1] = weight;
      });
  profile.connect_k = walk.connect_k;
  profile.target_nodes = walk.target_nodes;
  return profile;
}

BackboneMask TopK(const ScoreOrder& order, int64_t k) {
  return order.PrefixMask(k);
}

BackboneMask TopShare(const ScoreOrder& order, double share) {
  return order.PrefixMask(order.KForShare(share));
}

BackboneMask GrowUntilConnected(const ScoreOrder& order) {
  const WalkResult walk = WalkOrder(order, /*stop_at_connect=*/true,
                                    [](int64_t, double, int64_t) {});
  return order.PrefixMask(walk.connect_k);
}

}  // namespace netbone
