// Copyright 2026 The netbone Authors.

#include "core/serialize.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace netbone {

namespace {

static_assert(sizeof(EdgeScore) == 2 * sizeof(double),
              "EdgeScore must be padding-free for the PodVec fast path");

}  // namespace

void EncodeScoredEdges(const ScoredEdges& scored, ByteWriter* writer) {
  writer->Str(scored.method());
  writer->U32(scored.has_sdev() ? 1u : 0u);
  writer->PodVec(scored.scores());
}

Result<ScoredEdges> DecodeScoredEdges(ByteReader* reader,
                                      const Graph* graph) {
  NETBONE_ASSIGN_OR_RETURN(std::string method, reader->Str());
  NETBONE_ASSIGN_OR_RETURN(const uint32_t has_sdev, reader->U32());
  if (has_sdev > 1) {
    return Status::Corruption("bad sdev flag");
  }
  NETBONE_ASSIGN_OR_RETURN(std::vector<EdgeScore> scores,
                           reader->PodVec<EdgeScore>());
  if (static_cast<int64_t>(scores.size()) != graph->num_edges()) {
    return Status::Corruption("score table length does not match graph");
  }
  return ScoredEdges(graph, std::move(method), std::move(scores),
                     has_sdev == 1);
}

void EncodeScoreOrder(const ScoreOrder& order, ByteWriter* writer) {
  writer->U64(static_cast<uint64_t>(order.size()));
  writer->Raw(order.ids().data(),
              static_cast<size_t>(order.size()) * sizeof(EdgeId));
}

Result<ScoreOrder> DecodeScoreOrder(ByteReader* reader,
                                    const ScoredEdges& scored) {
  NETBONE_ASSIGN_OR_RETURN(std::vector<EdgeId> ids, reader->PodVec<EdgeId>());
  return ScoreOrder::FromPermutation(scored, std::move(ids));
}

void EncodeSweepProfile(const SweepProfile& profile, ByteWriter* writer) {
  writer->PodVec(profile.covered_nodes);
  writer->PodVec(profile.kept_weight);
  writer->I64(profile.target_nodes);
  writer->I64(profile.connect_k);
}

Result<SweepProfile> DecodeSweepProfile(ByteReader* reader, int64_t num_edges,
                                        int64_t num_nodes) {
  SweepProfile profile;
  NETBONE_ASSIGN_OR_RETURN(profile.covered_nodes,
                           reader->PodVec<int64_t>());
  NETBONE_ASSIGN_OR_RETURN(profile.kept_weight, reader->PodVec<double>());
  NETBONE_ASSIGN_OR_RETURN(profile.target_nodes, reader->I64());
  NETBONE_ASSIGN_OR_RETURN(profile.connect_k, reader->I64());
  const size_t want = static_cast<size_t>(num_edges) + 1;
  if (profile.covered_nodes.size() != want ||
      profile.kept_weight.size() != want) {
    return Status::Corruption("sweep profile length does not match graph");
  }
  if (profile.target_nodes < 0 || profile.target_nodes > num_nodes) {
    return Status::Corruption("sweep profile target count out of range");
  }
  if (profile.connect_k < 0 || profile.connect_k > num_edges) {
    return Status::Corruption("sweep profile connect index out of range");
  }
  return profile;
}

}  // namespace netbone
