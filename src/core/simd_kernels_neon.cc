// NEON instantiation of the batched scoring kernels. NEON is the aarch64
// baseline, so no ISA flag is needed — only -ffp-contract=off (see
// CMakeLists.txt), which matters doubly here since aarch64 compilers
// contract to FMA by default.

#include "core/simd_kernels_internal.h"

#if defined(__aarch64__) && !defined(NETBONE_SIMD_DISABLED)

#include "core/simd_kernels_impl.h"

namespace netbone::internal_simd {

const KernelTable* NeonKernels() {
  static constexpr KernelTable kTable = MakeKernelTable<simd::Neon>();
  return &kTable;
}

}  // namespace netbone::internal_simd

#else

namespace netbone::internal_simd {

const KernelTable* NeonKernels() { return nullptr; }

}  // namespace netbone::internal_simd

#endif
