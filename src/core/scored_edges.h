// Copyright 2026 The netbone Authors.
//
// Common output representation of every backboning method, mirroring the
// author's Python module where each measure returns a table
// (src, trg, nij, score[, sdev_cij]) that a separate thresholding step
// turns into a backbone.

#ifndef NETBONE_CORE_SCORED_EDGES_H_
#define NETBONE_CORE_SCORED_EDGES_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"

namespace netbone {

/// Per-edge significance record, aligned with the Graph's canonical edge
/// table: entry k scores graph.edge(k).
struct EdgeScore {
  /// Method-specific significance; larger means more salient.
  double score = 0.0;
  /// Standard deviation of the score. Only the Noise-Corrected method
  /// produces one (the paper's posterior sdev of the transformed lift);
  /// zero elsewhere.
  double sdev = 0.0;
};

/// Scores for every edge of a graph, produced by one backboning method.
class ScoredEdges {
 public:
  ScoredEdges() = default;

  /// Wraps scores aligned with `graph`'s edge table.
  ScoredEdges(const Graph* graph, std::string method,
              std::vector<EdgeScore> scores, bool has_sdev)
      : graph_(graph),
        method_(std::move(method)),
        scores_(std::move(scores)),
        has_sdev_(has_sdev) {}

  /// The scored graph (not owned; must outlive this object).
  const Graph& graph() const { return *graph_; }

  /// Human-readable method name ("noise_corrected", "disparity_filter"...).
  const std::string& method() const { return method_; }

  /// Number of scored edges (== graph().num_edges()).
  int64_t size() const { return static_cast<int64_t>(scores_.size()); }

  /// Score record of edge `id`.
  const EdgeScore& at(EdgeId id) const {
    return scores_[static_cast<size_t>(id)];
  }

  /// Raw score vector, aligned with the edge table.
  const std::vector<EdgeScore>& scores() const { return scores_; }

  /// True when the method produces meaningful sdev values (NC only).
  bool has_sdev() const { return has_sdev_; }

  /// All scores as a flat vector (for histograms / distribution plots).
  std::vector<double> ScoreValues() const;

  /// score - delta * sdev for every edge; the quantity whose distribution
  /// the paper plots in Fig. 2.
  std::vector<double> ShiftedScores(double delta) const;

 private:
  const Graph* graph_ = nullptr;
  std::string method_;
  std::vector<EdgeScore> scores_;
  bool has_sdev_ = false;
};

}  // namespace netbone

#endif  // NETBONE_CORE_SCORED_EDGES_H_
