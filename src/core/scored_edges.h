// Copyright 2026 The netbone Authors.
//
// Common output representation of every backboning method, mirroring the
// author's Python module where each measure returns a table
// (src, trg, nij, score[, sdev_cij]) that a separate thresholding step
// turns into a backbone.

#ifndef NETBONE_CORE_SCORED_EDGES_H_
#define NETBONE_CORE_SCORED_EDGES_H_

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "common/result.h"
#include "graph/graph.h"

namespace netbone {

/// Per-edge significance record, aligned with the Graph's canonical edge
/// table: entry k scores graph.edge(k).
struct EdgeScore {
  /// Method-specific significance; larger means more salient.
  double score = 0.0;
  /// Standard deviation of the score. Only the Noise-Corrected method
  /// produces one (the paper's posterior sdev of the transformed lift);
  /// zero elsewhere.
  double sdev = 0.0;
};

/// Scores for every edge of a graph, produced by one backboning method.
class ScoredEdges {
 public:
  ScoredEdges() = default;

  /// Wraps scores aligned with `graph`'s edge table.
  ScoredEdges(const Graph* graph, std::string method,
              std::vector<EdgeScore> scores, bool has_sdev)
      : graph_(graph),
        method_(std::move(method)),
        scores_(std::move(scores)),
        has_sdev_(has_sdev) {}

  /// The scored graph (not owned; must outlive this object).
  const Graph& graph() const { return *graph_; }

  /// Human-readable method name ("noise_corrected", "disparity_filter"...).
  const std::string& method() const { return method_; }

  /// Number of scored edges (== graph().num_edges()).
  int64_t size() const { return static_cast<int64_t>(scores_.size()); }

  /// Score record of edge `id`.
  const EdgeScore& at(EdgeId id) const {
    return scores_[static_cast<size_t>(id)];
  }

  /// Raw score vector, aligned with the edge table.
  const std::vector<EdgeScore>& scores() const { return scores_; }

  /// True when the method produces meaningful sdev values (NC only).
  bool has_sdev() const { return has_sdev_; }

  /// All scores as a flat vector (for histograms / distribution plots).
  std::vector<double> ScoreValues() const;

  /// score - delta * sdev for every edge; the quantity whose distribution
  /// the paper plots in Fig. 2.
  std::vector<double> ShiftedScores(double delta) const;

 private:
  const Graph* graph_ = nullptr;
  std::string method_;
  std::vector<EdgeScore> scores_;
  bool has_sdev_ = false;
};

/// Scores every edge of `graph` by running `score_edge` over deterministic
/// contiguous chunks of the edge table on the shared thread pool
/// (common/parallel.h). Output is bit-identical for every `num_threads`
/// (<= 0 = hardware concurrency): each chunk writes disjoint slots of a
/// pre-sized vector, and when several chunks fail, the error of the
/// lowest-numbered edge wins — the same error a serial sweep would report.
///
/// `score_edge` has signature Status(EdgeId id, const Edge& edge,
/// EdgeScore* out); returning non-OK aborts that chunk. The callback may
/// capture extra per-edge outputs (e.g. the NC detail table) and write
/// them at index `id` — chunks never overlap. A template (rather than a
/// std::function) so trivial scorers inline into the per-edge loop.
template <typename Scorer>
Result<std::vector<EdgeScore>> ParallelScoreEdges(const Graph& graph,
                                                  int num_threads,
                                                  const Scorer& score_edge) {
  const int64_t n = graph.num_edges();
  std::vector<EdgeScore> scores(static_cast<size_t>(n));
  if (n == 0) return scores;

  // Very small edge tables are not worth a pool handoff; a single chunk is
  // observably identical (same slots, same first error) and faster. The
  // reduced count feeds ParallelFor as its thread knob, which is exact:
  // NumParallelChunks(n, chunks) == chunks whenever chunks <= n.
  constexpr int64_t kMinEdgesPerChunk = 2048;
  const int64_t max_useful = std::max<int64_t>(n / kMinEdgesPerChunk, 1);
  const int chunks = static_cast<int>(std::min<int64_t>(
      NumParallelChunks(n, num_threads), max_useful));

  // One slot per chunk; first-error-wins is decided after the join by
  // edge id, so the winning error never depends on scheduling.
  std::vector<Status> chunk_status(static_cast<size_t>(chunks));
  std::vector<EdgeId> chunk_error_edge(static_cast<size_t>(chunks), -1);

  ParallelFor(n, chunks, [&](int64_t begin, int64_t end, int chunk) {
    for (int64_t id = begin; id < end; ++id) {
      Status status = score_edge(id, graph.edge(id),
                                 &scores[static_cast<size_t>(id)]);
      if (!status.ok()) {
        chunk_status[static_cast<size_t>(chunk)] = std::move(status);
        chunk_error_edge[static_cast<size_t>(chunk)] = id;
        return;
      }
    }
  });

  EdgeId first_error = -1;
  size_t first_chunk = 0;
  for (size_t c = 0; c < chunk_status.size(); ++c) {
    if (chunk_error_edge[c] >= 0 &&
        (first_error < 0 || chunk_error_edge[c] < first_error)) {
      first_error = chunk_error_edge[c];
      first_chunk = c;
    }
  }
  if (first_error >= 0) return chunk_status[first_chunk];
  return scores;
}

}  // namespace netbone

#endif  // NETBONE_CORE_SCORED_EDGES_H_
