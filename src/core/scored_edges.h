// Copyright 2026 The netbone Authors.
//
// Common output representation of every backboning method, mirroring the
// author's Python module where each measure returns a table
// (src, trg, nij, score[, sdev_cij]) that a separate thresholding step
// turns into a backbone.

#ifndef NETBONE_CORE_SCORED_EDGES_H_
#define NETBONE_CORE_SCORED_EDGES_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/cancel.h"
#include "common/parallel.h"
#include "common/result.h"
#include "graph/graph.h"

namespace netbone {

/// Per-edge significance record, aligned with the Graph's canonical edge
/// table: entry k scores graph.edge(k).
struct EdgeScore {
  /// Method-specific significance; larger means more salient.
  double score = 0.0;
  /// Standard deviation of the score. Only the Noise-Corrected method
  /// produces one (the paper's posterior sdev of the transformed lift);
  /// zero elsewhere.
  double sdev = 0.0;
};

/// Scores for every edge of a graph, produced by one backboning method.
class ScoredEdges {
 public:
  ScoredEdges() = default;

  /// Wraps scores aligned with `graph`'s edge table.
  ScoredEdges(const Graph* graph, std::string method,
              std::vector<EdgeScore> scores, bool has_sdev)
      : graph_(graph),
        method_(std::move(method)),
        scores_(std::move(scores)),
        has_sdev_(has_sdev) {}

  /// The scored graph (not owned; must outlive this object).
  const Graph& graph() const { return *graph_; }

  /// Human-readable method name ("noise_corrected", "disparity_filter"...).
  const std::string& method() const { return method_; }

  /// Number of scored edges (== graph().num_edges()).
  int64_t size() const { return static_cast<int64_t>(scores_.size()); }

  /// Score record of edge `id`.
  const EdgeScore& at(EdgeId id) const {
    return scores_[static_cast<size_t>(id)];
  }

  /// Raw score vector, aligned with the edge table.
  const std::vector<EdgeScore>& scores() const { return scores_; }

  /// True when the method produces meaningful sdev values (NC only).
  bool has_sdev() const { return has_sdev_; }

  /// All scores as a flat vector (for histograms / distribution plots).
  std::vector<double> ScoreValues() const;

  /// score - delta * sdev for every edge; the quantity whose distribution
  /// the paper plots in Fig. 2.
  std::vector<double> ShiftedScores(double delta) const;

 private:
  const Graph* graph_ = nullptr;
  std::string method_;
  std::vector<EdgeScore> scores_;
  bool has_sdev_ = false;
};

/// Scores every edge of `graph` by running `score_edge` over deterministic
/// contiguous chunks of the edge table on the shared thread pool
/// (common/parallel.h). Output is bit-identical for every `num_threads`
/// (<= 0 = hardware concurrency): each chunk writes disjoint slots of a
/// pre-sized vector, and when several chunks fail, the error of the
/// lowest-numbered edge wins — the same error a serial sweep would report.
///
/// `score_edge` has signature Status(EdgeId id, const Edge& edge,
/// EdgeScore* out); returning non-OK aborts that chunk. The callback may
/// capture extra per-edge outputs (e.g. the NC detail table) and write
/// them at index `id` — chunks never overlap. A template (rather than a
/// std::function) so trivial scorers inline into the per-edge loop.
///
/// `cancel` is polled at chunk entry and every kCancelCheckStride edges;
/// once it fires, remaining chunks stop scoring and the token's status
/// (Cancelled / DeadlineExceeded) is returned — unless some edge already
/// failed for real, in which case the lowest-id edge error still wins (a
/// serial sweep would have hit that edge before any cancellation check
/// at or past it). A null token adds zero per-edge work.
inline constexpr int64_t kCancelCheckStride = 1024;

template <typename Scorer>
Result<std::vector<EdgeScore>> ParallelScoreEdges(
    const Graph& graph, int num_threads, const Scorer& score_edge,
    const CancelToken& cancel = {}) {
  const int64_t n = graph.num_edges();
  std::vector<EdgeScore> scores(static_cast<size_t>(n));
  if (n == 0) return scores;
  const bool cancellable = cancel.CanExpire();

  // Very small edge tables are not worth a pool handoff; a single chunk is
  // observably identical (same slots, same first error) and faster. The
  // reduced count feeds ParallelFor as its thread knob, which is exact:
  // NumParallelChunks(n, chunks) == chunks whenever chunks <= n.
  constexpr int64_t kMinEdgesPerChunk = 2048;
  const int64_t max_useful = std::max<int64_t>(n / kMinEdgesPerChunk, 1);
  const int chunks = static_cast<int>(std::min<int64_t>(
      NumParallelChunks(n, num_threads), max_useful));

  // One slot per chunk; first-error-wins is decided after the join by
  // edge id, so the winning error never depends on scheduling.
  std::vector<Status> chunk_status(static_cast<size_t>(chunks));
  std::vector<EdgeId> chunk_error_edge(static_cast<size_t>(chunks), -1);
  std::atomic<bool> saw_cancel{false};

  ParallelFor(n, chunks, [&](int64_t begin, int64_t end, int chunk) {
    if (cancellable && saw_cancel.load(std::memory_order_relaxed)) return;
    for (int64_t id = begin; id < end; ++id) {
      if (cancellable && (id - begin) % kCancelCheckStride == 0 &&
          !cancel.Check().ok()) {
        saw_cancel.store(true, std::memory_order_relaxed);
        return;
      }
      Status status = score_edge(id, graph.edge(id),
                                 &scores[static_cast<size_t>(id)]);
      if (!status.ok()) {
        chunk_status[static_cast<size_t>(chunk)] = std::move(status);
        chunk_error_edge[static_cast<size_t>(chunk)] = id;
        return;
      }
    }
  });

  EdgeId first_error = -1;
  size_t first_chunk = 0;
  for (size_t c = 0; c < chunk_status.size(); ++c) {
    if (chunk_error_edge[c] >= 0 &&
        (first_error < 0 || chunk_error_edge[c] < first_error)) {
      first_error = chunk_error_edge[c];
      first_chunk = c;
    }
  }
  if (first_error >= 0) return chunk_status[first_chunk];
  // Cancellation is reported only when no edge failed outright: a real
  // edge error is reproducible state the caller can act on (and negative-
  // cache); a cancellation is not. Re-polling the token here is safe —
  // cancel flags never un-fire and deadlines never un-expire.
  if (saw_cancel.load(std::memory_order_relaxed)) return cancel.Check();
  return scores;
}

namespace internal {

/// Dynamic-schedule scoring core shared by the grain overload of
/// ParallelScoreEdges and ParallelScoreEdgeSubset: runs `score_edge` over
/// the `count` edges named by `id_at` in grain-bounded blocks claimed off
/// ParallelForDynamic, writing each result to scores[id]. First-error-wins
/// is deterministic without per-block bookkeeping: every block reports its
/// own lowest erroring index into an atomic min (commutative, so steal
/// order cannot matter), and the winning status is regenerated by re-
/// invoking the scorer once — scorers are pure functions of their inputs,
/// so the replay reproduces the exact status a serial sweep would return.
///
/// Cancellation cannot use the replay trick (re-invoking the scorer after
/// the token fired would return OK), so it is tracked by a separate flag:
/// blocks poll `cancel` at entry, and when no real edge error exists the
/// token's own status is returned.
template <typename IdAt, typename Scorer>
Status ScoreEdgesDynamic(const Graph& graph, int64_t count, int num_threads,
                         int64_t grain, const IdAt& id_at,
                         const Scorer& score_edge,
                         std::vector<EdgeScore>* scores,
                         const CancelToken& cancel = {}) {
  if (count <= 0) return Status::OK();
  const bool cancellable = cancel.CanExpire();
  std::atomic<int64_t> first_error_index{count};
  std::atomic<bool> saw_cancel{false};
  ParallelForDynamic(count, grain, num_threads,
                     [&](int64_t begin, int64_t end) {
                       if (cancellable) {
                         if (saw_cancel.load(std::memory_order_relaxed)) {
                           return;
                         }
                         if (!cancel.Check().ok()) {
                           saw_cancel.store(true, std::memory_order_relaxed);
                           return;
                         }
                       }
                       for (int64_t i = begin; i < end; ++i) {
                         const EdgeId id = id_at(i);
                         if (!score_edge(id, graph.edge(id),
                                         &(*scores)[static_cast<size_t>(id)])
                                  .ok()) {
                           int64_t seen =
                               first_error_index.load(std::memory_order_relaxed);
                           while (i < seen &&
                                  !first_error_index.compare_exchange_weak(
                                      seen, i, std::memory_order_relaxed)) {
                           }
                           return;  // abandon the rest of this block
                         }
                       }
                     });
  const int64_t winner = first_error_index.load(std::memory_order_relaxed);
  if (winner == count) {
    if (saw_cancel.load(std::memory_order_relaxed)) return cancel.Check();
    return Status::OK();
  }
  const EdgeId id = id_at(winner);
  EdgeScore discard;
  return score_edge(id, graph.edge(id), &discard);
}

}  // namespace internal

/// Dynamic-schedule overload of ParallelScoreEdges for scorers with skewed
/// per-edge cost: the edge table is decomposed into blocks of at most
/// `grain` edges (ParallelForDynamic — blocks depend only on (n, grain))
/// claimed dynamically, so one expensive region stalls a single runner
/// instead of serializing its whole static chunk. Output — scores and the
/// winning error — is bit-identical to the static overload at every thread
/// count and grain. Opt-in: uniform per-edge scorers should keep the
/// static overload (fewer scheduler handoffs).
template <typename Scorer>
Result<std::vector<EdgeScore>> ParallelScoreEdges(
    const Graph& graph, int num_threads, int64_t grain,
    const Scorer& score_edge, const CancelToken& cancel = {}) {
  const int64_t n = graph.num_edges();
  std::vector<EdgeScore> scores(static_cast<size_t>(n));
  Status status = internal::ScoreEdgesDynamic(
      graph, n, num_threads, grain, [](int64_t i) { return EdgeId{i}; },
      score_edge, &scores, cancel);
  if (!status.ok()) return status;
  return scores;
}

/// Rescores only the edges named by `ids` (ascending edge ids), writing
/// each result into scores[id] and leaving every other slot untouched —
/// the incremental path's kernel (core/delta_rescore.h): after a sparse
/// graph update only the dirty edges pay scoring work. Blocks of at most
/// `grain` ids are claimed dynamically (dirty work is skewed: a hub's star
/// lands contiguous ids). `scores` must be sized to the full edge table.
/// On failure the status of the lowest-id failing edge is returned — the
/// same winner the full sweeps report.
template <typename Scorer>
Status ParallelScoreEdgeSubset(const Graph& graph,
                               std::span<const EdgeId> ids, int num_threads,
                               int64_t grain, const Scorer& score_edge,
                               std::vector<EdgeScore>* scores,
                               const CancelToken& cancel = {}) {
  return internal::ScoreEdgesDynamic(
      graph, static_cast<int64_t>(ids.size()), num_threads, grain,
      [ids](int64_t i) { return ids[static_cast<size_t>(i)]; }, score_edge,
      scores, cancel);
}

/// Range-batch variant of ParallelScoreEdges: instead of a per-edge
/// callback, each static chunk hands whole contiguous sub-ranges of the
/// edge table to `score_range` — the entry point the vectorized kernels
/// (core/simd_kernels.h) plug into, so lanes are filled from sequential
/// loads with no per-edge dispatch.
///
/// `score_range` has signature int64_t(int64_t begin, int64_t end,
/// EdgeScore* out): score edges [begin, end) into out[begin..end) and
/// return the lowest edge id in the range with invalid inputs (out[] is
/// unspecified from that id on), or -1 on success. `replay_edge` has
/// signature Status(EdgeId) and regenerates the exact per-edge Status by
/// re-running the scalar oracle; it is invoked once, after the join, on
/// the winning (lowest) failing id — the same first-error-wins protocol
/// as the per-edge sweeps, and bit-identical output when the batch kernel
/// honours its identity contract. Chunk layout, cancellation cadence
/// (every kCancelCheckStride edges) and thread-count invariance all match
/// ParallelScoreEdges exactly.
template <typename RangeScorer, typename Replay>
Result<std::vector<EdgeScore>> ParallelScoreEdgeRanges(
    const Graph& graph, int num_threads, const RangeScorer& score_range,
    const Replay& replay_edge, const CancelToken& cancel = {}) {
  const int64_t n = graph.num_edges();
  std::vector<EdgeScore> scores(static_cast<size_t>(n));
  if (n == 0) return scores;
  const bool cancellable = cancel.CanExpire();

  // Identical chunk geometry to the per-edge overload (see above): the
  // schedule is part of the determinism contract.
  constexpr int64_t kMinEdgesPerChunk = 2048;
  const int64_t max_useful = std::max<int64_t>(n / kMinEdgesPerChunk, 1);
  const int chunks = static_cast<int>(std::min<int64_t>(
      NumParallelChunks(n, num_threads), max_useful));

  std::vector<EdgeId> chunk_error_edge(static_cast<size_t>(chunks), -1);
  std::atomic<bool> saw_cancel{false};

  ParallelFor(n, chunks, [&](int64_t begin, int64_t end, int chunk) {
    // The batch kernel runs kCancelCheckStride edges between polls — the
    // same cadence the per-edge sweep gets from its modulo check.
    for (int64_t sub = begin; sub < end; sub += kCancelCheckStride) {
      if (cancellable) {
        if (saw_cancel.load(std::memory_order_relaxed)) return;
        if (!cancel.Check().ok()) {
          saw_cancel.store(true, std::memory_order_relaxed);
          return;
        }
      }
      const int64_t sub_end = std::min<int64_t>(end, sub + kCancelCheckStride);
      const int64_t bad = score_range(sub, sub_end, scores.data());
      if (bad >= 0) {
        chunk_error_edge[static_cast<size_t>(chunk)] = bad;
        return;
      }
    }
  });

  EdgeId first_error = -1;
  for (const EdgeId bad : chunk_error_edge) {
    if (bad >= 0 && (first_error < 0 || bad < first_error)) first_error = bad;
  }
  if (first_error >= 0) {
    Status status = replay_edge(first_error);
    if (!status.ok()) return status;
    // A kernel may only flag ids the oracle rejects; anything else is a
    // kernel bug worth surfacing loudly rather than scoring silently.
    return Status::Internal("batch kernel flagged an edge the scalar "
                            "oracle accepts");
  }
  if (saw_cancel.load(std::memory_order_relaxed)) return cancel.Check();
  return scores;
}

/// Range-batch variant of ParallelScoreEdgeSubset: the dirty-edge patching
/// fast path. `ids` must be ascending; each dynamically-claimed block is
/// decomposed into its maximal runs of *consecutive* edge ids and every
/// run goes to `score_range` whole — so the contiguous spans that dominate
/// real deltas (endpoint stars, inserted blocks of a sorted table) are
/// scored by the vector kernels with sequential loads instead of a
/// per-edge gather, while isolated ids degrade to width-1 ranges (the
/// kernels' scalar tail). Scores land in scores[id]; untouched slots are
/// preserved. First-error-wins matches ParallelScoreEdgeSubset: the
/// lowest failing position (== lowest id, since ids ascend) wins and its
/// Status is regenerated by `replay_edge`.
template <typename RangeScorer, typename Replay>
Status ParallelScoreEdgeRangeSubset(std::span<const EdgeId> ids,
                                    int num_threads, int64_t grain,
                                    const RangeScorer& score_range,
                                    const Replay& replay_edge,
                                    std::vector<EdgeScore>* scores,
                                    const CancelToken& cancel = {}) {
  const int64_t count = static_cast<int64_t>(ids.size());
  if (count <= 0) return Status::OK();
  const bool cancellable = cancel.CanExpire();
  std::atomic<int64_t> first_error_pos{count};
  std::atomic<bool> saw_cancel{false};
  ParallelForDynamic(
      count, grain, num_threads, [&](int64_t begin, int64_t end) {
        if (cancellable) {
          if (saw_cancel.load(std::memory_order_relaxed)) return;
          if (!cancel.Check().ok()) {
            saw_cancel.store(true, std::memory_order_relaxed);
            return;
          }
        }
        int64_t i = begin;
        while (i < end) {
          // Extend the run while ids stay consecutive.
          int64_t run_end = i + 1;
          while (run_end < end &&
                 ids[static_cast<size_t>(run_end)] ==
                     ids[static_cast<size_t>(run_end - 1)] + 1) {
            ++run_end;
          }
          const EdgeId lo = ids[static_cast<size_t>(i)];
          const EdgeId hi = ids[static_cast<size_t>(run_end - 1)] + 1;
          const int64_t bad = score_range(lo, hi, scores->data());
          if (bad >= 0) {
            // Consecutive run: position of the failing id is offset from
            // the run start by the id distance.
            const int64_t pos = i + (bad - lo);
            int64_t seen = first_error_pos.load(std::memory_order_relaxed);
            while (pos < seen &&
                   !first_error_pos.compare_exchange_weak(
                       seen, pos, std::memory_order_relaxed)) {
            }
            return;  // abandon the rest of this block
          }
          i = run_end;
        }
      });
  const int64_t winner = first_error_pos.load(std::memory_order_relaxed);
  if (winner == count) {
    if (saw_cancel.load(std::memory_order_relaxed)) return cancel.Check();
    return Status::OK();
  }
  Status status = replay_edge(ids[static_cast<size_t>(winner)]);
  if (!status.ok()) return status;
  return Status::Internal("batch kernel flagged an edge the scalar oracle "
                          "accepts");
}

}  // namespace netbone

#endif  // NETBONE_CORE_SCORED_EDGES_H_
