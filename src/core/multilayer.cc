#include "core/multilayer.h"

#include "common/strings.h"
#include "core/noise_corrected.h"

namespace netbone {

Result<MultilayerNetwork> MultilayerNetwork::Create(
    std::vector<Graph> layers, std::vector<std::string> names) {
  if (layers.empty()) {
    return Status::InvalidArgument("need at least one layer");
  }
  const NodeId nodes = layers.front().num_nodes();
  const Directedness dir = layers.front().directedness();
  for (size_t i = 1; i < layers.size(); ++i) {
    if (layers[i].num_nodes() != nodes) {
      return Status::InvalidArgument(
          StrFormat("layer %zu has %d nodes, expected %d", i,
                    layers[i].num_nodes(), nodes));
    }
    if (layers[i].directedness() != dir) {
      return Status::InvalidArgument(
          StrFormat("layer %zu directedness mismatch", i));
    }
  }
  if (names.empty()) {
    for (size_t i = 0; i < layers.size(); ++i) {
      names.push_back(StrFormat("layer%zu", i));
    }
  }
  if (names.size() != layers.size()) {
    return Status::InvalidArgument("names / layers size mismatch");
  }
  return MultilayerNetwork(std::move(layers), std::move(names));
}

Result<std::vector<ScoredEdges>> MultilayerNoiseCorrected(
    const MultilayerNetwork& network, const MultilayerNcOptions& options) {
  if (options.coupling < 0.0 || options.coupling > 1.0) {
    return Status::InvalidArgument("coupling must lie in [0, 1]");
  }
  const size_t n = static_cast<size_t>(network.num_nodes());
  const int64_t num_layers = network.num_layers();

  // Pooled marginals across layers.
  std::vector<double> pooled_out(n, 0.0);
  std::vector<double> pooled_in(n, 0.0);
  double pooled_total = 0.0;
  for (int64_t l = 0; l < num_layers; ++l) {
    const Graph& g = network.layer(l);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      pooled_out[static_cast<size_t>(v)] += g.out_strength(v);
      pooled_in[static_cast<size_t>(v)] += g.in_strength(v);
    }
    pooled_total += g.matrix_total();
  }
  if (!(pooled_total > 0.0)) {
    return Status::FailedPrecondition("all layers are empty");
  }

  std::vector<ScoredEdges> results;
  results.reserve(static_cast<size_t>(num_layers));
  const double gamma = options.coupling;
  for (int64_t l = 0; l < num_layers; ++l) {
    const Graph& g = network.layer(l);
    if (g.num_edges() == 0) {
      return Status::FailedPrecondition(
          StrFormat("layer %lld has no edges", static_cast<long long>(l)));
    }
    const double layer_total = g.matrix_total();
    // Rescales a pooled marginal to this layer's weight scale.
    const double layer_share = layer_total / pooled_total;

    std::vector<EdgeScore> scores;
    scores.reserve(static_cast<size_t>(g.num_edges()));
    for (const Edge& e : g.edges()) {
      const double ni =
          (1.0 - gamma) * g.out_strength(e.src) +
          gamma * pooled_out[static_cast<size_t>(e.src)] * layer_share;
      const double nj =
          (1.0 - gamma) * g.in_strength(e.dst) +
          gamma * pooled_in[static_cast<size_t>(e.dst)] * layer_share;
      const auto detail =
          NoiseCorrectedEdge(e.weight, ni, nj, layer_total);
      if (!detail.ok()) return detail.status();
      scores.push_back(EdgeScore{detail->transformed_lift, detail->sdev});
    }
    results.emplace_back(&g,
                         "multilayer_nc:" + network.layer_name(l),
                         std::move(scores), /*has_sdev=*/true);
  }
  return results;
}

}  // namespace netbone
