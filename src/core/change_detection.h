// Copyright 2026 The netbone Authors.
//
// Noise-corrected change detection — the first extension the paper's
// conclusion proposes: "we plan to study whether it is possible to
// distinguish real from spurious changes in networks."
//
// The NC machinery gives every edge a transformed lift L~ and a posterior
// standard deviation. Sec. IV notes the intervals "can also be used more
// generally, for instance to determine whether two edges differ
// significantly from one another in strength"; applying that comparison
// to the SAME node pair in two snapshots yields a significance test for
// edge *changes*: the z-statistic
//
//   z = (L~_t1 - L~_t0) / sqrt(V[L~_t0] + V[L~_t1])
//
// (independent-measurement approximation). |z| > delta flags a real
// change; everything else is measurement noise. Because L~ is expressed
// relative to each snapshot's marginals, global growth — every weight
// doubling — is automatically discounted.

#ifndef NETBONE_CORE_CHANGE_DETECTION_H_
#define NETBONE_CORE_CHANGE_DETECTION_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/noise_corrected.h"
#include "graph/graph.h"

namespace netbone {

/// One node pair's change record between two snapshots.
struct EdgeChange {
  NodeId src = 0;
  NodeId dst = 0;
  double weight_before = 0.0;
  double weight_after = 0.0;
  double lift_before = 0.0;   ///< L~ in the earlier snapshot.
  double lift_after = 0.0;    ///< L~ in the later snapshot.
  double z = 0.0;             ///< standardized lift change.
  bool significant = false;   ///< |z| > delta.
};

/// Options for DetectChanges.
struct ChangeDetectionOptions {
  /// Significance threshold on |z| (same scale as the NC delta).
  double delta = 1.64;
  /// Pairs absent from a snapshot enter with weight 0 (L~ = -1); when
  /// false, pairs missing from either snapshot are skipped instead.
  bool include_missing_pairs = true;
  /// Forwarded to the underlying NC scoring. Defaults to the
  /// fixed-marginal variance (marginals_respond_to_weight = false), the
  /// natural error model for cross-snapshot comparison of one pair.
  NoiseCorrectedOptions nc_options{
      .marginals_respond_to_weight = false};
};

/// Result of a change detection run.
struct ChangeReport {
  std::vector<EdgeChange> changes;   ///< one record per evaluated pair
  int64_t significant_count = 0;
  int64_t evaluated_pairs = 0;
};

/// Compares two snapshots of the same node universe (same directedness
/// and node count) and flags pairs whose noise-corrected connection
/// strength changed by more than `delta` combined standard deviations.
Result<ChangeReport> DetectChanges(const Graph& before, const Graph& after,
                                   const ChangeDetectionOptions& options =
                                       {});

/// The underlying two-measurement comparison: standardized difference of
/// two independent NC details (paper Sec. IV's "are these two edges
/// significantly different?" applied across time). Exposed for tests and
/// for comparing two *different* pairs within one snapshot.
double LiftChangeZ(const NoiseCorrectedDetail& before,
                   const NoiseCorrectedDetail& after);

}  // namespace netbone

#endif  // NETBONE_CORE_CHANGE_DETECTION_H_
