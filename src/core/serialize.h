// Copyright 2026 The netbone Authors.
//
// Binary codecs for the cached scoring artifacts — ScoredEdges,
// ScoreOrder, SweepProfile — used by the snapshot subsystem
// (service/snapshot.h). Scores and weights are stored bitwise (F64 /
// PodVec), and a restored ScoreOrder adopts the stored permutation through
// ScoreOrder::FromPermutation, which validates it in O(E) without sorting:
// a warm-restarted engine answers the same requests bit-identically with
// zero rescores and zero sorts.
//
// Decoders assume hostile bytes: every size and index is validated against
// the graph the artifact claims to describe, and violations come back as
// typed Corruption. Content authentication (section checksums) is the
// snapshot layer's job.

#ifndef NETBONE_CORE_SERIALIZE_H_
#define NETBONE_CORE_SERIALIZE_H_

#include "common/result.h"
#include "common/serialize.h"
#include "core/scored_edges.h"
#include "core/sweep.h"
#include "graph/graph.h"

namespace netbone {

/// Appends `scored` (method name, sdev flag, the score table).
void EncodeScoredEdges(const ScoredEdges& scored, ByteWriter* writer);

/// Decodes a ScoredEdges over `graph` (which must outlive the result).
/// Corruption when the table length does not match graph.num_edges().
Result<ScoredEdges> DecodeScoredEdges(ByteReader* reader, const Graph* graph);

/// Appends `order`'s permutation.
void EncodeScoreOrder(const ScoreOrder& order, ByteWriter* writer);

/// Decodes a ScoreOrder over `scored` (which must outlive the result) via
/// ScoreOrder::FromPermutation — O(E) validation, no sort performed.
Result<ScoreOrder> DecodeScoreOrder(ByteReader* reader,
                                    const ScoredEdges& scored);

/// Appends `profile`.
void EncodeSweepProfile(const SweepProfile& profile, ByteWriter* writer);

/// Decodes a SweepProfile for a graph with `num_edges` edges and
/// `num_nodes` nodes; validates the prefix-array lengths (num_edges + 1)
/// and counter ranges so CoverageAt/WeightShareAt cannot index out of
/// bounds on restored data.
Result<SweepProfile> DecodeSweepProfile(ByteReader* reader, int64_t num_edges,
                                        int64_t num_nodes);

}  // namespace netbone

#endif  // NETBONE_CORE_SERIALIZE_H_
