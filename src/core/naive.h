// Copyright 2026 The netbone Authors.
//
// Naive thresholding (paper Sec. III-B): the edge weight itself is the
// score, so FilterByScore(scored, delta) drops every edge with weight <=
// delta. The weakest baseline — no null model, blind to the broad and
// locally correlated weight distributions that motivate the paper.

#ifndef NETBONE_CORE_NAIVE_H_
#define NETBONE_CORE_NAIVE_H_

#include "common/result.h"
#include "core/scored_edges.h"
#include "graph/graph.h"

namespace netbone {

/// Options for NaiveThreshold.
struct NaiveThresholdOptions {
  /// Worker threads for the per-edge scoring sweep (ParallelScoreEdges).
  /// 0 = hardware concurrency. Scores are bit-identical for every value.
  int num_threads = 0;

  /// Cooperative cancellation, polled at chunk granularity inside the
  /// scoring sweep; a fired token returns Cancelled / DeadlineExceeded.
  CancelToken cancel;
};

/// Scores every edge with its raw weight.
Result<ScoredEdges> NaiveThreshold(const Graph& graph,
                                   const NaiveThresholdOptions& options = {});

}  // namespace netbone

#endif  // NETBONE_CORE_NAIVE_H_
