#include "service/graph_store.h"

#include <algorithm>
#include <bit>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.h"

namespace netbone {
namespace {

/// Order-dependent chaining of already-mixed words.
class Hasher {
 public:
  void Mix(uint64_t v) { h_ = Mix64(h_ ^ Mix64(v)); }

  void MixDouble(double v) { Mix(std::bit_cast<uint64_t>(v)); }

  void MixString(const std::string& s) {
    // FNV-1a over the bytes, then folded into the chain with the length
    // so "ab","c" and "a","bc" cannot collide as sequences.
    uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : s) {
      h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
    }
    Mix(h);
    Mix(static_cast<uint64_t>(s.size()));
  }

  uint64_t digest() const { return h_; }

 private:
  uint64_t h_ = 0x6e6574626f6e6531ULL;  // "netbone1": fingerprint version
};

}  // namespace

uint64_t GraphFingerprint(const Graph& graph) {
  Hasher hasher;
  hasher.Mix(graph.directed() ? 1 : 2);
  hasher.Mix(static_cast<uint64_t>(graph.num_nodes()));
  hasher.Mix(static_cast<uint64_t>(graph.num_edges()));
  hasher.Mix(graph.has_labels() ? 1 : 0);

  if (!graph.has_labels()) {
    // Dense ids are the nodes' identity; the canonical (src, dst)-sorted
    // edge table is already a content-stable sequence.
    for (const Edge& e : graph.edges()) {
      hasher.Mix(static_cast<uint64_t>(e.src));
      hasher.Mix(static_cast<uint64_t>(e.dst));
      hasher.MixDouble(e.weight);
    }
    return hasher.digest();
  }

  // Labeled graphs: dense ids depend on label interning order, so hash
  // over label-ranked ids instead. Labels are unique (the builder interns
  // them), so the rank is a strict permutation.
  const NodeId n = graph.num_nodes();
  std::vector<std::string> labels(static_cast<size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    labels[static_cast<size_t>(v)] = graph.LabelOf(v);
  }
  std::vector<NodeId> by_label(static_cast<size_t>(n));
  std::iota(by_label.begin(), by_label.end(), NodeId{0});
  std::sort(by_label.begin(), by_label.end(), [&](NodeId a, NodeId b) {
    return labels[static_cast<size_t>(a)] < labels[static_cast<size_t>(b)];
  });
  std::vector<NodeId> rank(static_cast<size_t>(n));
  for (NodeId r = 0; r < n; ++r) {
    rank[static_cast<size_t>(by_label[static_cast<size_t>(r)])] = r;
  }
  // The node universe, in label order (covers isolates too).
  for (const NodeId v : by_label) {
    hasher.MixString(labels[static_cast<size_t>(v)]);
  }
  // Edges remapped to label ranks, re-canonicalized and re-sorted: the
  // same labeled network yields the same sequence whatever the interning
  // order was. Post-dedup, (src, dst) pairs are unique, so the order is a
  // strict total order.
  struct RankedEdge {
    NodeId src;
    NodeId dst;
    double weight;
  };
  std::vector<RankedEdge> ranked;
  ranked.reserve(static_cast<size_t>(graph.num_edges()));
  for (const Edge& e : graph.edges()) {
    NodeId src = rank[static_cast<size_t>(e.src)];
    NodeId dst = rank[static_cast<size_t>(e.dst)];
    if (!graph.directed() && src > dst) std::swap(src, dst);
    ranked.push_back(RankedEdge{src, dst, e.weight});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const RankedEdge& a, const RankedEdge& b) {
              if (a.src != b.src) return a.src < b.src;
              return a.dst < b.dst;
            });
  for (const RankedEdge& e : ranked) {
    hasher.Mix(static_cast<uint64_t>(e.src));
    hasher.Mix(static_cast<uint64_t>(e.dst));
    hasher.MixDouble(e.weight);
  }
  return hasher.digest();
}

int64_t ApproxGraphBytes(const Graph& graph) {
  const int64_t n = graph.num_nodes();
  int64_t bytes = static_cast<int64_t>(sizeof(Graph));
  bytes += graph.num_edges() * static_cast<int64_t>(sizeof(Edge));
  // Marginals: out/in strength (double) and out/in degree (int64).
  bytes += n * static_cast<int64_t>(2 * sizeof(double) +
                                    2 * sizeof(int64_t));
  if (graph.has_labels()) {
    for (NodeId v = 0; v < n; ++v) {
      const std::string label = graph.LabelOf(v);
      // Twice: the label vector and the label->id index both hold a copy.
      bytes += 2 * (static_cast<int64_t>(sizeof(std::string)) +
                    StringBytes(label));
      // Hash-map node + bucket overhead for the index entry.
      bytes += static_cast<int64_t>(sizeof(NodeId) + 4 * sizeof(void*));
    }
  }
  // The SoA scoring columns are a derived cache materialized on first cold
  // score; price them in once they exist (at intern time they usually
  // don't, so budgets tuned to bare graphs keep their meaning).
  if (graph.edge_columns_materialized()) {
    bytes += graph.edge_columns().bytes();
  }
  return bytes;
}

GraphStore::GraphStore(int64_t byte_budget) : byte_budget_(byte_budget) {}

void GraphStore::TouchLocked(Entry& entry) const {
  lru_.splice(lru_.begin(), lru_, entry.lru_it);
}

void GraphStore::TrimLocked(std::optional<uint64_t> keep) {
  if (byte_budget_ <= 0) return;
  if (resident_bytes_ <= byte_budget_) return;
  obs::ScopedRecord timing(metrics_timing_.load(std::memory_order_relaxed),
                           &evict_ns_);
  // Walk from the LRU tail, skipping pinned entries — a graph with an
  // in-flight scoring stays resident even over budget (better a
  // transiently fat store than a fingerprint that vanishes mid-request)
  // — and the `keep` fingerprint, so Intern never evicts the graph it is
  // about to hand back even when that graph alone exceeds the budget.
  auto it = lru_.end();
  while (resident_bytes_ > byte_budget_ && it != lru_.begin()) {
    --it;
    if (keep.has_value() && *it == *keep) continue;
    const auto entry_it = graphs_.find(*it);
    if (entry_it->second.pins > 0) continue;
    resident_bytes_ -= entry_it->second.bytes;
    ++evictions_;
    it = lru_.erase(it);
    graphs_.erase(entry_it);
  }
}

StoredGraph GraphStore::Intern(Graph graph) {
  obs::ScopedRecord timing(metrics_timing_.load(std::memory_order_relaxed),
                           &intern_ns_);
  const uint64_t fingerprint = GraphFingerprint(graph);
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = graphs_.find(fingerprint);
  if (it != graphs_.end()) {
    ++dedup_hits_;
    TouchLocked(it->second);
    return StoredGraph{fingerprint, it->second.graph};
  }
  auto resident = std::make_shared<const Graph>(std::move(graph));
  lru_.push_front(fingerprint);
  Entry entry;
  entry.graph = resident;
  entry.bytes = ApproxGraphBytes(*resident);
  entry.lru_it = lru_.begin();
  resident_bytes_ += entry.bytes;
  graphs_.emplace(fingerprint, std::move(entry));
  ++inserts_;
  TrimLocked(/*keep=*/fingerprint);
  return StoredGraph{fingerprint, std::move(resident)};
}

std::shared_ptr<const Graph> GraphStore::Find(uint64_t fingerprint) const {
  obs::ScopedRecord timing(metrics_timing_.load(std::memory_order_relaxed),
                           &find_ns_);
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = graphs_.find(fingerprint);
  if (it == graphs_.end()) return nullptr;
  TouchLocked(it->second);
  return it->second.graph;
}

Result<GraphDelta> GraphStore::DeltaBetween(uint64_t base_fingerprint,
                                            uint64_t next_fingerprint) const {
  // Resolve both handles first (each Find refreshes recency), then diff
  // outside the store lock — the walk is O(E) and the handles keep the
  // graphs alive regardless of eviction.
  const std::shared_ptr<const Graph> base = Find(base_fingerprint);
  if (base == nullptr) {
    return Status::NotFound("base fingerprint is not resident");
  }
  const std::shared_ptr<const Graph> next = Find(next_fingerprint);
  if (next == nullptr) {
    return Status::NotFound("next fingerprint is not resident");
  }
  return ComputeGraphDelta(*base, *next);
}

bool GraphStore::Erase(uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = graphs_.find(fingerprint);
  if (it == graphs_.end()) return false;
  resident_bytes_ -= it->second.bytes;
  lru_.erase(it->second.lru_it);
  graphs_.erase(it);
  return true;
}

void GraphStore::Pin(uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = graphs_.find(fingerprint);
  if (it != graphs_.end()) ++it->second.pins;
}

void GraphStore::Unpin(uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = graphs_.find(fingerprint);
  if (it != graphs_.end() && it->second.pins > 0) --it->second.pins;
}

void GraphStore::set_byte_budget(int64_t byte_budget) {
  std::lock_guard<std::mutex> lock(mu_);
  byte_budget_ = byte_budget;
  TrimLocked();
}

std::vector<StoredGraph> GraphStore::ResidentGraphs() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<StoredGraph> resident;
  resident.reserve(graphs_.size());
  // Back-to-front: lru_.front() is most recent, so the vector reads
  // LRU-first for the snapshot writer.
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    const auto entry = graphs_.find(*it);
    resident.push_back(StoredGraph{*it, entry->second.graph});
  }
  return resident;
}

void GraphStore::RegisterMetrics(obs::MetricRegistry& registry,
                                 const std::string& prefix,
                                 const void* owner) {
  // One gauge group over a single StatsSnapshot() call — see
  // ScoreCache::RegisterMetrics for why per-field gauges would tear.
  registry.RegisterGaugeGroup(
      [this, prefix]() {
        const Stats s = StatsSnapshot();
        return std::vector<obs::MetricsSnapshot::Value>{
            {prefix + ".graphs", s.graphs},
            {prefix + ".resident_bytes", s.resident_bytes},
            {prefix + ".inserts", s.inserts},
            {prefix + ".dedup_hits", s.dedup_hits},
            {prefix + ".evictions", s.evictions},
            {prefix + ".byte_budget", s.byte_budget},
        };
      },
      owner);
  registry.RegisterHistogram(prefix + ".intern_ns", &intern_ns_, owner);
  registry.RegisterHistogram(prefix + ".find_ns", &find_ns_, owner);
  registry.RegisterHistogram(prefix + ".evict_ns", &evict_ns_, owner);
}

GraphStore::Stats GraphStore::StatsSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats;
  stats.graphs = static_cast<int64_t>(graphs_.size());
  stats.resident_bytes = resident_bytes_;
  stats.inserts = inserts_;
  stats.dedup_hits = dedup_hits_;
  stats.evictions = evictions_;
  stats.byte_budget = byte_budget_;
  return stats;
}

}  // namespace netbone
