// Copyright 2026 The netbone Authors.
//
// N-shard serving: a ShardedBackboneEngine owns N independent
// BackboneEngines and routes every request to exactly one of them by
// graph fingerprint. Each shard is a complete engine — its own scheduler
// thread slice, its own ScoreCache / GraphStore byte budgets (the global
// budgets split N ways), its own snapshot subdirectory, its own metric
// namespace — so shards share no locks on the request path and warm
// throughput scales with shard count while every response stays
// bit-identical to a single-engine deployment (the bench gate in
// bench/bench_sharded_serving.cc).
//
// Routing invariant: a fingerprint's shard is a pure function of
// (fingerprint, routing table) — default shard Mix64(fp) % N, overridden
// by an explicit entry in the table. Everything keyed on a fingerprint
// lands together: graph uploads, AddGraphRevision lineage (the child is
// *pinned to its base's shard* via an override, so the delta warm path
// never crosses shards), and all request kinds, including
// kStabilityPoint, whose next_graph is co-resident exactly when it was
// registered as a revision of the request graph. The table is immutable
// and swapped atomically, so routing is deterministic at any thread
// count: the same (upload trace, routing epoch) pair answers the same
// shard everywhere.
//
// Rebalance epoch protocol. Per-fingerprint request counters feed a
// rebalancer (periodic via Options::rebalance_interval, or on demand via
// RebalanceNow) that migrates the hottest fingerprint *families* — the
// lineage-connected component, so ancestors move with their children —
// from overloaded to underloaded shards:
//
//   1. the source shard serializes the family (graph + cached scores +
//      lineage) with the snapshot section codecs (checksummed bytes);
//   2. the target shard imports it — strictly: a blob that does not
//      decode cleanly aborts the migration and the source keeps serving;
//   3. the routing table is copied, the family's overrides rewritten,
//      and the new table swapped in with a bumped epoch — readers that
//      routed under the old epoch keep valid shard references (the
//      source still holds the state);
//   4. the source retires the family one rebalance cycle *later* (the
//      grace period): any request routed just before the swap has long
//      finished, and shared_ptr handles keep in-flight artifacts alive
//      regardless. A straggler re-inserting a score into the source
//      cache post-retirement wastes bytes, never correctness — the
//      router no longer answers that shard.
//
// Boot: construction restores each shard from its own snapshot
// subdirectory, then self-heals the routing table — any fingerprint
// found resident off its hash shard (a pre-restart migration) gets an
// override pointing at the shard that holds it, so migrated state stays
// warm across restarts (hash owner wins when two shards hold a copy;
// otherwise the lowest shard index).

#ifndef NETBONE_SERVICE_SHARDED_ENGINE_H_
#define NETBONE_SERVICE_SHARDED_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "service/engine.h"

namespace netbone {

/// Options for ShardedBackboneEngine.
struct ShardedBackboneEngineOptions {
  /// Number of engine shards (clamped to >= 1). 1 behaves exactly like a
  /// bare BackboneEngine behind the router.
  int num_shards = 1;

  /// Template for every shard. The byte budgets (cache_byte_budget,
  /// graph_byte_budget) and the thread count are *global* figures, split
  /// evenly across shards by the constructor; snapshot_dir is the root
  /// under which each shard gets its own "shard<i>" subdirectory.
  /// Everything else applies to each shard verbatim.
  BackboneEngineOptions engine;

  /// When > 0, a background thread runs a rebalance cycle roughly this
  /// often. 0 (the default) leaves rebalancing to explicit RebalanceNow
  /// calls — the deterministic mode the tests use.
  std::chrono::milliseconds rebalance_interval{0};

  /// A rebalance cycle migrates only while the hottest shard carries
  /// more than this multiple of the coldest shard's load (and only while
  /// moving the candidate family actually shrinks the gap).
  double rebalance_load_ratio = 2.0;

  /// Cap on family migrations per rebalance cycle, so one cycle never
  /// churns the whole keyspace.
  int max_migrations_per_cycle = 4;

  /// Bound on distinct fingerprints tracked by the load counters. On
  /// overflow the table resets (like the negative cache): the cost is
  /// one cold rebalance window, never unbounded memory.
  size_t max_tracked_fingerprints = 65536;
};

/// N BackboneEngine shards behind a fingerprint router with hot-shard
/// rebalance. Mirrors the BackboneEngine request API; safe for
/// concurrent use from any number of threads.
class ShardedBackboneEngine {
 public:
  using Options = ShardedBackboneEngineOptions;

  struct Stats {
    /// Fieldwise sum over the shards (including the nested store/cache
    /// stats). Each shard contributes one coherent StatsSnapshot, so the
    /// rollup never mixes two instants of the same shard.
    BackboneEngine::Stats total;
    /// The same coherent per-shard readouts the rollup summed.
    std::vector<BackboneEngine::Stats> shards;

    int64_t routing_epoch = 0;      ///< bumped by every table swap
    int64_t routing_overrides = 0;  ///< fingerprints routed off-hash
    int64_t migrations = 0;         ///< families moved between shards
    int64_t migration_failures = 0;  ///< aborted imports (source kept)
    int64_t rebalance_cycles = 0;   ///< RebalanceNow invocations
  };

  explicit ShardedBackboneEngine(const Options& options = {});
  ~ShardedBackboneEngine();

  ShardedBackboneEngine(const ShardedBackboneEngine&) = delete;
  ShardedBackboneEngine& operator=(const ShardedBackboneEngine&) = delete;

  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// The shard currently routing `fingerprint` — a pure function of the
  /// fingerprint and the current routing table.
  int ShardOf(uint64_t fingerprint) const;

  /// The current routing epoch (0 at a fresh boot; every table swap —
  /// revision pinning, migration, boot self-heal — bumps it).
  uint64_t RoutingEpoch() const;

  /// Interns on the fingerprint's shard; returns the fingerprint.
  uint64_t AddGraph(Graph graph);

  /// Interns on the *base's* shard and pins the child there with a
  /// routing override (epoch bump) when its hash shard differs — the
  /// co-location that keeps lineage families, and therefore the delta
  /// warm path, on one shard.
  uint64_t AddGraphRevision(Graph graph, uint64_t base_fingerprint);

  /// The resident graph on the fingerprint's shard, or nullptr.
  std::shared_ptr<const Graph> FindGraph(uint64_t fingerprint) const;

  /// Routes to the request graph's shard and executes there.
  Result<BackboneResponse> Execute(const BackboneRequest& request);

  /// Partitions the batch by shard, executes each sub-batch on its
  /// shard, and scatters the results back into request order. Responses
  /// are bit-identical to executing the batch on a 1-shard engine.
  std::vector<Result<BackboneResponse>> ExecuteBatch(
      std::span<const BackboneRequest> requests);

  /// Routes the batch like ExecuteBatch. A batch touching one shard (the
  /// common case under fingerprint-skewed traffic) forwards to that
  /// shard's dispatcher directly; a multi-shard batch fans out one
  /// sub-batch per shard and gathers on the returned future's get().
  std::future<std::vector<Result<BackboneResponse>>> Submit(
      std::vector<BackboneRequest> requests);

  /// Forwards to every shard.
  void ClearNegativeCache();

  /// Snapshots every shard into its own subdirectory; first failure wins
  /// (remaining shards still attempt).
  Status WriteSnapshotNow();

  /// One rebalance cycle, synchronously: retires families migrated in
  /// the *previous* cycle (the grace period), then migrates hot families
  /// while the load ratio holds. Returns the number of families moved.
  /// Serialized with the periodic rebalancer; safe from any thread.
  int RebalanceNow();

  /// Coherent rollup + per-shard stats + router/rebalancer counters.
  Stats stats() const;

  /// The shards' metrics three ways in one snapshot: the unprefixed
  /// rollup (same-name metrics merged across shards), each shard again
  /// under "shard<i>.", and the router's own "sharded." gauges.
  obs::MetricsSnapshot Metrics() const;

  /// Direct shard access for tests and diagnostics.
  BackboneEngine& shard(int index) { return *shards_[static_cast<size_t>(index)]; }
  const BackboneEngine& shard(int index) const {
    return *shards_[static_cast<size_t>(index)];
  }

 private:
  /// Immutable routing state, swapped wholesale: readers load the
  /// current table and never observe a partial edit.
  struct RoutingTable {
    uint64_t epoch = 0;
    std::unordered_map<uint64_t, int> overrides;  // fingerprint -> shard
  };

  std::shared_ptr<const RoutingTable> Table() const {
    return routing_.load(std::memory_order_acquire);
  }
  /// Routing under a specific table (the pure function).
  int RouteWith(const RoutingTable& table, uint64_t fingerprint) const;

  /// Bumps the per-fingerprint request counter (bounded table).
  void RecordLoad(uint64_t fingerprint);

  /// Builds the boot-time override set from what each restored shard
  /// actually holds. Constructor only, single-threaded.
  void SelfHealRouting();

  /// One family migration: export from `source`, import into `target`,
  /// swap the routing table, queue the source-side retirement. False
  /// when the import failed (counted; routing untouched).
  /// Precondition: rebalance_mu_ held.
  bool MigrateFamilyLocked(std::span<const uint64_t> family, int source,
                           int target);

  void RebalancerLoop();

  const Options options_;
  std::vector<std::unique_ptr<BackboneEngine>> shards_;

  /// Readers: one atomic shared_ptr load per routed request. Writers
  /// (revision pinning, migration, self-heal) serialize on
  /// rebalance_mu_, copy, edit, bump the epoch, and store.
  std::atomic<std::shared_ptr<const RoutingTable>> routing_;

  /// Serializes routing-table writers and whole rebalance cycles; also
  /// guards the pending retirement list and the migration counters.
  mutable std::mutex rebalance_mu_;
  /// Families whose routing already moved, awaiting retirement on their
  /// old shard at the next cycle (the grace period).
  std::vector<std::pair<int, std::vector<uint64_t>>> pending_retire_;
  int64_t migrations_ = 0;
  int64_t migration_failures_ = 0;
  int64_t rebalance_cycles_ = 0;

  /// Per-fingerprint request counts since the last reset — the
  /// rebalancer's only input, so rebalance decisions are a deterministic
  /// function of the request trace.
  mutable std::mutex load_mu_;
  std::unordered_map<uint64_t, int64_t> fingerprint_load_;

  /// Periodic rebalancer (only when rebalance_interval > 0).
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool shutdown_ = false;
  std::thread rebalancer_;
};

}  // namespace netbone

#endif  // NETBONE_SERVICE_SHARDED_ENGINE_H_
