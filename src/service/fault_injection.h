// Copyright 2026 The netbone Authors.
//
// Deterministic fault injection for the serving stack. The production
// failure modes the engine must tolerate — a scoring backend erroring
// transiently, a slow scoring, a cache insert losing the allocation
// race, a stalled dispatcher — are rare and timing-dependent in the
// wild, which makes "does the engine survive them" untestable without a
// harness. This one is:
//
//  * *Seeded*: every injection decision is a pure function of
//    (seed, site, draw index) via the Mix64 diffusion primitive, so a
//    chaos replay with the same seed injects the same faults at the same
//    draws — failures found in CI reproduce on a laptop.
//  * *Scoped*: ScopedFaultInjection installs an injector for its
//    lifetime (RAII); tests and the chaos bench wrap exactly the region
//    they mean to perturb.
//  * *Compiled in always, zero-cost when off*: call sites do a single
//    relaxed atomic load of the global injector pointer and branch on
//    null. No build flag forks the binary — the code path exercised
//    under chaos is byte-for-byte the code path serving production.
//
// Thread-safety: Configure() before installing; Draw() is lock-free and
// safe from any thread while installed.

#ifndef NETBONE_SERVICE_FAULT_INJECTION_H_
#define NETBONE_SERVICE_FAULT_INJECTION_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>

namespace netbone {

/// The injection points wired into the serving stack.
enum class FaultSite : int {
  /// The engine's cold-scoring path fails with Status::Unavailable —
  /// exercised *inside* the retry loop, so retries can succeed.
  kScoringFailure = 0,
  /// Artificial latency before a cold scoring (deadline-aware sleep).
  kScoringLatency = 1,
  /// ScoreCache::Put drops the insert, simulating allocation failure:
  /// the result is still returned to waiters but never cached.
  kCacheInsertFailure = 2,
  /// The Submit dispatcher stalls before executing a batch.
  kDispatcherStall = 3,
  /// A snapshot write fails mid-stream (full disk, yanked volume): the
  /// temp file is discarded and the previous committed snapshot survives.
  kSnapshotWriteFailure = 4,
  /// A snapshot read comes back short (torn page, truncated file): the
  /// restore path sees fewer bytes than the file holds and must salvage
  /// the intact prefix section-by-section.
  kSnapshotShortRead = 5,
  /// The process dies after writing the temp file but before the
  /// atomic rename — the classic torn-publish window. The committed
  /// snapshot must be the old one, bit-for-bit.
  kSnapshotRenameKill = 6,
};
inline constexpr int kNumFaultSites = 7;

/// Stable short name for a site, used in metric names
/// ("fault.<name>.injected") and chaos reports.
const char* FaultSiteName(FaultSite site);

/// Per-site configuration.
struct FaultSpec {
  /// Probability in [0, 1] that a draw at this site injects.
  double probability = 0.0;
  /// Sleep injected by the latency/stall sites when a draw fires.
  std::chrono::microseconds latency{0};
  /// When >= 0, at most this many draws inject (first-come across
  /// threads); -1 = unlimited. Lets tests say "fail exactly the first
  /// two attempts" deterministically.
  int64_t max_injections = -1;
};

/// A seeded injector. Decisions are deterministic in the *sequence of
/// draws per site*: draw k at site s injects iff
/// frac(Mix64(seed ^ site-salt ^ k)) < probability. Under concurrency
/// the assignment of draws to threads varies, but the multiset of
/// decisions over any n draws does not — which is what the chaos gate's
/// "same seed, same fault pressure" contract needs.
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed);

  /// Sets the spec for one site. Call before installing.
  void Configure(FaultSite site, const FaultSpec& spec);

  /// Takes the next draw at `site`; true = inject. Lock-free.
  bool Draw(FaultSite site);

  /// The configured injected latency for `site`.
  std::chrono::microseconds latency(FaultSite site) const;

  /// Total draws / injections at `site` so far.
  int64_t draws(FaultSite site) const;
  int64_t injected(FaultSite site) const;

 private:
  uint64_t seed_;
  std::array<FaultSpec, kNumFaultSites> specs_;
  std::array<std::atomic<int64_t>, kNumFaultSites> draws_;
  std::array<std::atomic<int64_t>, kNumFaultSites> injected_;
};

namespace internal {
extern std::atomic<FaultInjector*> g_fault_injector;
}  // namespace internal

/// The currently installed injector, or nullptr (the common case — one
/// relaxed load, no barrier on the hot path).
inline FaultInjector* ActiveFaultInjector() {
  return internal::g_fault_injector.load(std::memory_order_acquire);
}

/// One draw at `site` against the active injector; false when none is
/// installed.
inline bool InjectFault(FaultSite site) {
  FaultInjector* injector = ActiveFaultInjector();
  return injector != nullptr && injector->Draw(site);
}

/// Installs `injector` for the scope's lifetime. Not reentrant: nesting
/// two scopes restores the outer one on exit but both must outlive any
/// thread still drawing.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(FaultInjector* injector)
      : previous_(internal::g_fault_injector.exchange(
            injector, std::memory_order_acq_rel)) {}
  ~ScopedFaultInjection() {
    internal::g_fault_injector.store(previous_, std::memory_order_release);
  }
  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;

 private:
  FaultInjector* previous_;
};

}  // namespace netbone

#endif  // NETBONE_SERVICE_FAULT_INJECTION_H_
