// Copyright 2026 The netbone Authors.

#include "service/snapshot.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/checksum.h"
#include "common/serialize.h"
#include "core/serialize.h"
#include "graph/codec.h"
#include "graph/delta.h"
#include "service/fault_injection.h"

namespace netbone {
namespace {

// "netbsnap" as little-endian bytes; rejects every non-snapshot file up
// front without guessing at sections.
constexpr uint64_t kSnapshotMagic = 0x70616E736274656EULL;
constexpr uint32_t kSnapshotVersion = 1;
// Written as a u64; a foreign-endian reader sees the bytes reversed and
// rejects the file as NotSupported instead of decoding garbage.
constexpr uint64_t kEndianTag = 0x0102030405060708ULL;

constexpr size_t kFileHeaderBytes = 24;
constexpr size_t kSectionHeaderBytes = 32;

enum class SectionType : uint32_t {
  kGraph = 1,
  kScoreEntry = 2,
  kLineage = 3,
  kFooter = 4,
};

static_assert(sizeof(EdgeWeightChange) ==
                  2 * sizeof(EdgeId) + 2 * sizeof(double),
              "EdgeWeightChange must be padding-free for the PodVec path");

// ---------------------------------------------------------------------------
// Section payload codecs.
// ---------------------------------------------------------------------------

void EncodeGraphSection(uint64_t fingerprint, bool resident,
                        const Graph& graph, ByteWriter* writer) {
  writer->U64(fingerprint);
  writer->U32(resident ? 1u : 0u);
  EncodeGraph(graph, writer);
}

void EncodeScoreEntrySection(const ScoreKey& key, const CachedScore& entry,
                             ByteWriter* writer) {
  writer->U64(key.graph);
  writer->U32(static_cast<uint32_t>(key.method));
  writer->I64(key.options.hss_max_cost);
  writer->I64(key.options.hss_source_sample_size);
  writer->U64(key.options.hss_sample_seed);
  EncodeScoredEdges(entry.scored(), writer);
  EncodeScoreOrder(entry.order(), writer);
  EncodeSweepProfile(entry.profile(), writer);
  const CachedScore::DeltaProvenance* provenance = entry.delta_provenance();
  writer->U32(provenance != nullptr ? 1u : 0u);
  if (provenance != nullptr) {
    writer->U64(provenance->base_fingerprint);
    writer->I64(provenance->dirty_edges);
    writer->I64(provenance->total_edges);
  }
}

void EncodeLineageSection(uint64_t child, const ScoreCache::Lineage& record,
                          ByteWriter* writer) {
  writer->U64(child);
  writer->U64(record.parent);
  writer->U32(record.delta != nullptr ? 1u : 0u);
  if (record.delta != nullptr) {
    const GraphDelta& delta = *record.delta;
    writer->PodVec(delta.changed);
    writer->PodVec(delta.inserted);
    writer->PodVec(delta.deleted);
    writer->PodVec(delta.changed_nodes);
    writer->PodVec(delta.star_edges);
    writer->U32(delta.totals_equal ? 1u : 0u);
    writer->I64(delta.base_edges);
    writer->I64(delta.next_edges);
  }
}

Result<std::pair<uint64_t, ScoreCache::Lineage>> DecodeLineageSection(
    ByteReader* reader) {
  NETBONE_ASSIGN_OR_RETURN(const uint64_t child, reader->U64());
  ScoreCache::Lineage record;
  NETBONE_ASSIGN_OR_RETURN(record.parent, reader->U64());
  NETBONE_ASSIGN_OR_RETURN(const uint32_t has_delta, reader->U32());
  if (has_delta > 1) return Status::Corruption("bad lineage delta flag");
  if (has_delta == 1) {
    auto delta = std::make_shared<GraphDelta>();
    NETBONE_ASSIGN_OR_RETURN(delta->changed,
                             reader->PodVec<EdgeWeightChange>());
    NETBONE_ASSIGN_OR_RETURN(delta->inserted, reader->PodVec<EdgeId>());
    NETBONE_ASSIGN_OR_RETURN(delta->deleted, reader->PodVec<EdgeId>());
    NETBONE_ASSIGN_OR_RETURN(delta->changed_nodes, reader->PodVec<NodeId>());
    NETBONE_ASSIGN_OR_RETURN(delta->star_edges, reader->PodVec<EdgeId>());
    NETBONE_ASSIGN_OR_RETURN(const uint32_t totals_equal, reader->U32());
    if (totals_equal > 1) return Status::Corruption("bad totals flag");
    delta->totals_equal = totals_equal == 1;
    NETBONE_ASSIGN_OR_RETURN(delta->base_edges, reader->I64());
    NETBONE_ASSIGN_OR_RETURN(delta->next_edges, reader->I64());
    record.delta = std::move(delta);
  }
  return std::make_pair(child, std::move(record));
}

// ---------------------------------------------------------------------------
// Section framing.
// ---------------------------------------------------------------------------

void AppendSection(SectionType type, const std::string& payload,
                   ByteWriter* out) {
  ByteWriter header;
  header.U32(static_cast<uint32_t>(type));
  header.U32(0);  // reserved
  header.U64(static_cast<uint64_t>(payload.size()));
  header.U64(Checksum64(payload.data(), payload.size()));
  header.U64(Checksum64(header.buffer().data(), header.size()));
  out->Raw(header.buffer().data(), header.size());
  out->Raw(payload.data(), payload.size());
}

struct SectionView {
  SectionType type = SectionType::kFooter;
  std::span<const unsigned char> payload;
};

// Reads one section at `pos`. Returns:
//  * a SectionView when header + payload authenticate,
//  * a Status explaining the failure otherwise; `fatal` is set when the
//    header itself cannot be trusted, so the walk must stop (the
//    remaining bytes cannot be located).
Result<SectionView> ReadSection(std::span<const unsigned char> file,
                                size_t* pos, bool* fatal) {
  *fatal = false;
  const size_t remaining = file.size() - *pos;
  if (remaining < kSectionHeaderBytes) {
    *fatal = true;
    return Status::Corruption("torn section header at file tail");
  }
  const unsigned char* header = file.data() + *pos;
  uint64_t header_hash;
  std::memcpy(&header_hash, header + 24, sizeof(header_hash));
  if (Checksum64(header, 24) != header_hash) {
    *fatal = true;
    return Status::Corruption("section header checksum mismatch");
  }
  uint32_t type_raw;
  uint64_t payload_len, payload_hash;
  std::memcpy(&type_raw, header, sizeof(type_raw));
  std::memcpy(&payload_len, header + 8, sizeof(payload_len));
  std::memcpy(&payload_hash, header + 16, sizeof(payload_hash));
  if (type_raw < static_cast<uint32_t>(SectionType::kGraph) ||
      type_raw > static_cast<uint32_t>(SectionType::kFooter)) {
    // The header authenticated, so this is a writer/reader version skew,
    // not bit rot; skip the section if its payload is all there.
    if (payload_len > remaining - kSectionHeaderBytes) {
      *fatal = true;
      return Status::Corruption("unknown section type with torn payload");
    }
    *pos += kSectionHeaderBytes + static_cast<size_t>(payload_len);
    return Status::NotSupported("unknown section type " +
                                std::to_string(type_raw));
  }
  if (payload_len > remaining - kSectionHeaderBytes) {
    *fatal = true;
    return Status::Corruption("section payload overruns file");
  }
  const std::span<const unsigned char> payload =
      file.subspan(*pos + kSectionHeaderBytes,
                   static_cast<size_t>(payload_len));
  *pos += kSectionHeaderBytes + static_cast<size_t>(payload_len);
  if (Checksum64(payload.data(), payload.size()) != payload_hash) {
    // Length came from an authenticated header: skip just this section.
    return Status::Corruption("section payload checksum mismatch");
  }
  return SectionView{static_cast<SectionType>(type_raw), payload};
}

// ---------------------------------------------------------------------------
// POSIX plumbing.
// ---------------------------------------------------------------------------

Status WriteFileDurably(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError("open " + tmp + ": " + std::strerror(errno));
  }
  size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string err = std::strerror(errno);
      ::close(fd);
      ::unlink(tmp.c_str());
      return Status::IOError("write " + tmp + ": " + err);
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    ::unlink(tmp.c_str());
    return Status::IOError("fsync " + tmp + ": " + err);
  }
  if (::close(fd) != 0) {
    const std::string err = std::strerror(errno);
    ::unlink(tmp.c_str());
    return Status::IOError("close " + tmp + ": " + err);
  }
  // Fault site: the process dies after the temp file is durable but
  // before the rename publishes it — the torn-publish window the atomic
  // protocol exists for. The temp file is left behind, exactly as a real
  // kill would leave it; the committed snapshot must still be the old
  // one.
  if (InjectFault(FaultSite::kSnapshotRenameKill)) {
    return Status::IOError("injected kill before snapshot rename");
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string err = std::strerror(errno);
    ::unlink(tmp.c_str());
    return Status::IOError("rename " + tmp + ": " + err);
  }
  // fsync the directory so the rename itself is durable. Failure here is
  // reported, but the rename already happened — the snapshot is visible,
  // just not guaranteed durable across power loss.
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd < 0) {
    return Status::IOError("open dir " + dir + ": " + std::strerror(errno));
  }
  const int rc = ::fsync(dir_fd);
  const int fsync_errno = errno;
  ::close(dir_fd);
  if (rc != 0) {
    return Status::IOError("fsync dir " + dir + ": " +
                           std::strerror(fsync_errno));
  }
  return Status::OK();
}

Result<std::vector<unsigned char>> ReadFileFully(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("no snapshot at " + path);
    }
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IOError("stat " + path + ": " + err);
  }
  std::vector<unsigned char> bytes(static_cast<size_t>(st.st_size));
  size_t got = 0;
  while (got < bytes.size()) {
    const ssize_t n = ::read(fd, bytes.data() + got, bytes.size() - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string err = std::strerror(errno);
      ::close(fd);
      return Status::IOError("read " + path + ": " + err);
    }
    if (n == 0) break;  // racing truncation: keep what we got
    got += static_cast<size_t>(n);
  }
  ::close(fd);
  bytes.resize(got);
  // Fault site: a short read (torn page, truncated volume) hands the
  // restore path half the file; the salvage walk must keep the intact
  // prefix and never crash.
  if (InjectFault(FaultSite::kSnapshotShortRead)) {
    bytes.resize(bytes.size() / 2);
  }
  return bytes;
}

}  // namespace

std::string SnapshotFilePath(const std::string& snapshot_dir) {
  if (snapshot_dir.empty()) return "netbone.snapshot";
  if (snapshot_dir.back() == '/') return snapshot_dir + "netbone.snapshot";
  return snapshot_dir + "/netbone.snapshot";
}

namespace {

// Serializes the snapshot image (header + sections + footer) for `store`
// + `cache` into a byte string. When `filter` is non-null only state
// belonging to those fingerprints is emitted — the shard-migration
// subset; a null filter is the full snapshot.
std::string BuildSnapshotImage(
    const GraphStore& store, const ScoreCache& cache,
    const std::unordered_set<uint64_t>* filter, SnapshotWriteStats* stats) {
  const auto wanted = [filter](uint64_t fingerprint) {
    return filter == nullptr || filter->count(fingerprint) > 0;
  };
  ByteWriter file;
  file.U64(kSnapshotMagic);
  file.U32(kSnapshotVersion);
  file.U32(0);  // reserved
  file.U64(kEndianTag);

  uint64_t section_count = 0;
  const auto emit = [&](SectionType type, const std::string& payload) {
    AppendSection(type, payload, &file);
    ++section_count;
  };

  // Graphs first (restore needs them before the entries), LRU-first so a
  // re-Intern replay reproduces recency. Entries can outlive a GraphStore
  // eviction, so any entry graph missing from the store rides along as a
  // non-resident section: restorable entries never dangle.
  const std::vector<StoredGraph> residents = store.ResidentGraphs();
  const auto entries = cache.Entries();
  std::unordered_map<uint64_t, bool> written_graphs;
  for (const StoredGraph& resident : residents) {
    if (!wanted(resident.fingerprint)) continue;
    ByteWriter payload;
    EncodeGraphSection(resident.fingerprint, /*resident=*/true,
                       *resident.graph, &payload);
    emit(SectionType::kGraph, payload.buffer());
    written_graphs.emplace(resident.fingerprint, true);
    ++stats->graphs;
  }
  for (const auto& [key, entry] : entries) {
    if (!wanted(key.graph)) continue;
    if (written_graphs.emplace(key.graph, false).second) {
      ByteWriter payload;
      EncodeGraphSection(key.graph, /*resident=*/false, entry->graph(),
                         &payload);
      emit(SectionType::kGraph, payload.buffer());
      ++stats->graphs;
    }
  }

  for (const auto& [key, entry] : entries) {
    if (!wanted(key.graph)) continue;
    ByteWriter payload;
    EncodeScoreEntrySection(key, *entry, &payload);
    emit(SectionType::kScoreEntry, payload.buffer());
    ++stats->entries;
  }

  for (const auto& [child, record] : cache.LineageEntries()) {
    if (!wanted(child)) continue;
    ByteWriter payload;
    EncodeLineageSection(child, record, &payload);
    emit(SectionType::kLineage, payload.buffer());
    ++stats->lineage;
  }

  // The commit marker: restore treats a snapshot without a consistent
  // footer as torn and reports committed=false.
  ByteWriter footer;
  footer.U64(section_count);
  emit(SectionType::kFooter, footer.buffer());

  stats->bytes = static_cast<int64_t>(file.size());
  return file.buffer();
}

// The salvage walk over an in-memory snapshot image — the shared body of
// RestoreSnapshot (file restore, quarantine-tolerant) and
// DecodeFingerprintState (migration blob, strict caller).
Result<SnapshotRestoreReport> RestoreFromImage(
    std::span<const unsigned char> file, GraphStore* store,
    ScoreCache* cache) {
  if (file.size() < kFileHeaderBytes) {
    return Status::Corruption("snapshot too short for a header");
  }
  ByteReader header(file.subspan(0, kFileHeaderBytes));
  const uint64_t magic = *header.U64();
  const uint32_t version = *header.U32();
  header.U32().value();  // reserved
  const uint64_t endian = *header.U64();
  if (magic != kSnapshotMagic) {
    if (magic == __builtin_bswap64(kSnapshotMagic)) {
      return Status::NotSupported(
          "snapshot written on a foreign-endian host");
    }
    return Status::Corruption("bad snapshot magic");
  }
  if (endian != kEndianTag) {
    return Status::NotSupported("snapshot written on a foreign-endian host");
  }
  if (version != kSnapshotVersion) {
    return Status::NotSupported("snapshot version " +
                                std::to_string(version) +
                                " (reader speaks " +
                                std::to_string(kSnapshotVersion) + ")");
  }

  SnapshotRestoreReport report;
  const auto quarantine = [&report](Status status) {
    ++report.sections_quarantined;
    if (report.first_error.ok()) report.first_error = std::move(status);
  };

  // Local graph map, independent of the store: restoring an entry must
  // not depend on the store's budget keeping its graph resident, and
  // non-resident graph sections never enter the store at all.
  std::unordered_map<uint64_t, std::shared_ptr<const Graph>> graphs;
  uint64_t sections_walked = 0;   // authenticated and dispatched
  uint64_t sections_skipped = 0;  // located but quarantined in place
  size_t pos = kFileHeaderBytes;
  bool saw_footer = false;
  while (pos < file.size() && !saw_footer) {
    bool fatal = false;
    Result<SectionView> section = ReadSection(file, &pos, &fatal);
    if (!section.ok()) {
      quarantine(section.status());
      if (fatal) break;
      // Authenticated header, bad payload: skip and carry on. Still a
      // located section for the footer's count.
      ++sections_skipped;
      continue;
    }
    ++sections_walked;
    ByteReader reader(section->payload);
    switch (section->type) {
      case SectionType::kGraph: {
        const auto decode = [&]() -> Status {
          NETBONE_ASSIGN_OR_RETURN(const uint64_t fingerprint,
                                   reader.U64());
          NETBONE_ASSIGN_OR_RETURN(const uint32_t resident, reader.U32());
          if (resident > 1) return Status::Corruption("bad resident flag");
          NETBONE_ASSIGN_OR_RETURN(Graph graph, DecodeGraph(&reader));
          if (GraphFingerprint(graph) != fingerprint) {
            return Status::Corruption(
                "graph content does not match its fingerprint");
          }
          if (resident == 1) {
            const StoredGraph stored = store->Intern(std::move(graph));
            graphs.emplace(fingerprint, stored.graph);
          } else {
            graphs.emplace(fingerprint, std::make_shared<const Graph>(
                                            std::move(graph)));
          }
          ++report.graphs_restored;
          return Status::OK();
        };
        Status status = decode();
        if (!status.ok()) quarantine(std::move(status));
        break;
      }
      case SectionType::kScoreEntry: {
        const auto decode = [&]() -> Status {
          ScoreKey key;
          NETBONE_ASSIGN_OR_RETURN(key.graph, reader.U64());
          NETBONE_ASSIGN_OR_RETURN(const uint32_t method_raw, reader.U32());
          if (method_raw > static_cast<uint32_t>(Method::kKCore)) {
            return Status::Corruption("unknown method in score entry");
          }
          key.method = static_cast<Method>(method_raw);
          NETBONE_ASSIGN_OR_RETURN(key.options.hss_max_cost, reader.I64());
          NETBONE_ASSIGN_OR_RETURN(key.options.hss_source_sample_size,
                                   reader.I64());
          NETBONE_ASSIGN_OR_RETURN(key.options.hss_sample_seed,
                                   reader.U64());
          const auto graph_it = graphs.find(key.graph);
          if (graph_it == graphs.end()) {
            // Its graph section was quarantined (or missing): this entry
            // cannot be authenticated against a graph, so it goes too.
            return Status::Corruption(
                "score entry references a quarantined graph");
          }
          const std::shared_ptr<const Graph>& graph = graph_it->second;
          NETBONE_ASSIGN_OR_RETURN(
              ScoredEdges scored, DecodeScoredEdges(&reader, graph.get()));
          NETBONE_ASSIGN_OR_RETURN(std::vector<EdgeId> order_ids,
                                   reader.PodVec<EdgeId>());
          NETBONE_ASSIGN_OR_RETURN(
              SweepProfile profile,
              DecodeSweepProfile(&reader, graph->num_edges(),
                                 graph->num_nodes()));
          NETBONE_ASSIGN_OR_RETURN(const uint32_t has_provenance,
                                   reader.U32());
          if (has_provenance > 1) {
            return Status::Corruption("bad provenance flag");
          }
          std::optional<CachedScore::DeltaProvenance> provenance;
          if (has_provenance == 1) {
            CachedScore::DeltaProvenance p;
            NETBONE_ASSIGN_OR_RETURN(p.base_fingerprint, reader.U64());
            NETBONE_ASSIGN_OR_RETURN(p.dirty_edges, reader.I64());
            NETBONE_ASSIGN_OR_RETURN(p.total_edges, reader.I64());
            provenance = p;
          }
          NETBONE_ASSIGN_OR_RETURN(
              std::shared_ptr<const CachedScore> entry,
              CachedScore::Restore(graph, std::move(scored),
                                   std::move(order_ids), std::move(profile),
                                   std::move(provenance)));
          cache->Put(key, std::move(entry));
          ++report.entries_restored;
          return Status::OK();
        };
        Status status = decode();
        if (!status.ok()) quarantine(std::move(status));
        break;
      }
      case SectionType::kLineage: {
        Result<std::pair<uint64_t, ScoreCache::Lineage>> lineage =
            DecodeLineageSection(&reader);
        if (!lineage.ok()) {
          quarantine(lineage.status());
          break;
        }
        cache->RegisterLineage(lineage->first, lineage->second.parent,
                               lineage->second.delta);
        ++report.lineage_restored;
        break;
      }
      case SectionType::kFooter: {
        Result<uint64_t> count = reader.U64();
        if (!count.ok()) {
          quarantine(count.status());
        } else if (*count != sections_walked - 1 + sections_skipped) {
          // The footer is intact but disagrees with the sections the walk
          // located — mixed generations or spliced files. Keep the
          // salvage, report the snapshot as not cleanly committed.
          quarantine(Status::Corruption(
              "footer section count does not match walk"));
        } else {
          report.committed = true;
        }
        saw_footer = true;
        break;
      }
    }
  }
  if (!saw_footer && report.first_error.ok()) {
    report.first_error =
        Status::Corruption("snapshot has no commit footer (torn write)");
  }
  return report;
}

}  // namespace

Result<SnapshotWriteStats> WriteSnapshot(const std::string& path,
                                         const GraphStore& store,
                                         const ScoreCache& cache) {
  // Fault site: the write fails wholesale (full disk, yanked volume).
  // Checked up front so a chaos run pays no serialization cost for it.
  if (InjectFault(FaultSite::kSnapshotWriteFailure)) {
    return Status::IOError("injected snapshot write failure");
  }
  SnapshotWriteStats stats;
  const std::string image =
      BuildSnapshotImage(store, cache, /*filter=*/nullptr, &stats);
  NETBONE_RETURN_IF_ERROR(WriteFileDurably(path, image));
  return stats;
}

Result<SnapshotRestoreReport> RestoreSnapshot(const std::string& path,
                                              GraphStore* store,
                                              ScoreCache* cache) {
  NETBONE_ASSIGN_OR_RETURN(const std::vector<unsigned char> bytes,
                           ReadFileFully(path));
  return RestoreFromImage(std::span<const unsigned char>(bytes), store,
                          cache);
}

std::string EncodeFingerprintState(const GraphStore& store,
                                   const ScoreCache& cache,
                                   std::span<const uint64_t> fingerprints,
                                   SnapshotWriteStats* stats) {
  const std::unordered_set<uint64_t> filter(fingerprints.begin(),
                                            fingerprints.end());
  SnapshotWriteStats local;
  std::string image =
      BuildSnapshotImage(store, cache, &filter,
                         stats != nullptr ? stats : &local);
  return image;
}

Result<SnapshotRestoreReport> DecodeFingerprintState(
    std::string_view image, GraphStore* store, ScoreCache* cache) {
  const std::span<const unsigned char> bytes(
      reinterpret_cast<const unsigned char*>(image.data()), image.size());
  NETBONE_ASSIGN_OR_RETURN(SnapshotRestoreReport report,
                           RestoreFromImage(bytes, store, cache));
  // A migration blob travels process-to-process memory, not a crashing
  // disk: salvage semantics do not apply. Anything short of a clean,
  // fully-committed decode means the migration must be abandoned (the
  // source shard still has everything).
  if (!report.committed || report.sections_quarantined > 0) {
    if (!report.first_error.ok()) return report.first_error;
    return Status::Corruption("fingerprint state blob did not decode cleanly");
  }
  return report;
}

}  // namespace netbone
