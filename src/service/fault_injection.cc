#include "service/fault_injection.h"

#include "common/random.h"

namespace netbone {
namespace internal {

std::atomic<FaultInjector*> g_fault_injector{nullptr};

}  // namespace internal

namespace {

// Distinct per-site salt so two sites with equal probability do not
// inject on the same draw indices.
uint64_t SiteSalt(FaultSite site) {
  return 0xF417A51BD00D0000ULL + static_cast<uint64_t>(site);
}

}  // namespace

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kScoringFailure:
      return "scoring_failure";
    case FaultSite::kScoringLatency:
      return "scoring_latency";
    case FaultSite::kCacheInsertFailure:
      return "cache_insert_failure";
    case FaultSite::kDispatcherStall:
      return "dispatcher_stall";
    case FaultSite::kSnapshotWriteFailure:
      return "snapshot_write_failure";
    case FaultSite::kSnapshotShortRead:
      return "snapshot_short_read";
    case FaultSite::kSnapshotRenameKill:
      return "snapshot_rename_kill";
  }
  return "unknown";
}

FaultInjector::FaultInjector(uint64_t seed) : seed_(seed) {
  for (auto& d : draws_) d.store(0, std::memory_order_relaxed);
  for (auto& i : injected_) i.store(0, std::memory_order_relaxed);
}

void FaultInjector::Configure(FaultSite site, const FaultSpec& spec) {
  specs_[static_cast<size_t>(site)] = spec;
}

bool FaultInjector::Draw(FaultSite site) {
  const size_t s = static_cast<size_t>(site);
  const FaultSpec& spec = specs_[s];
  if (spec.probability <= 0.0) return false;
  const int64_t draw = draws_[s].fetch_add(1, std::memory_order_relaxed);
  // frac() via the 53 high bits, the usual uint64 -> [0,1) mapping.
  const double unit =
      static_cast<double>(Mix64(seed_ ^ SiteSalt(site) ^
                                static_cast<uint64_t>(draw)) >>
                          11) *
      0x1.0p-53;
  if (unit >= spec.probability) return false;
  if (spec.max_injections >= 0) {
    // Claim one of the bounded injection slots; losers pass through.
    int64_t used = injected_[s].load(std::memory_order_relaxed);
    while (true) {
      if (used >= spec.max_injections) return false;
      if (injected_[s].compare_exchange_weak(used, used + 1,
                                             std::memory_order_relaxed)) {
        return true;
      }
    }
  }
  injected_[s].fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::chrono::microseconds FaultInjector::latency(FaultSite site) const {
  return specs_[static_cast<size_t>(site)].latency;
}

int64_t FaultInjector::draws(FaultSite site) const {
  return draws_[static_cast<size_t>(site)].load(std::memory_order_relaxed);
}

int64_t FaultInjector::injected(FaultSite site) const {
  return injected_[static_cast<size_t>(site)].load(std::memory_order_relaxed);
}

}  // namespace netbone
