#include "service/sharded_engine.h"

#include <algorithm>
#include <optional>
#include <unordered_set>

#include "common/parallel.h"
#include "common/random.h"

namespace netbone {
namespace {

/// The default (hash) shard of a fingerprint — the route with no
/// override installed.
int ShardByHash(uint64_t fingerprint, size_t num_shards) {
  return static_cast<int>(Mix64(fingerprint) %
                          static_cast<uint64_t>(num_shards));
}

/// An even split of a global byte budget (<= 0 stays "unlimited").
int64_t SplitBudget(int64_t total, int num_shards) {
  if (total <= 0) return total;
  return std::max<int64_t>(1, total / num_shards);
}

/// Fieldwise sum of one shard's coherent stats into the rollup.
void AccumulateStats(BackboneEngine::Stats& total,
                     const BackboneEngine::Stats& shard) {
  total.requests += shard.requests;
  total.scores_computed += shard.scores_computed;
  total.coalesced_waits += shard.coalesced_waits;
  total.submitted_batches += shard.submitted_batches;
  total.negative_hits += shard.negative_hits;
  total.negative_entries += shard.negative_entries;
  total.delta_rescores += shard.delta_rescores;
  total.delta_fallbacks += shard.delta_fallbacks;
  total.queue_depth += shard.queue_depth;
  total.shed_batches += shard.shed_batches;
  total.rejected_batches += shard.rejected_batches;
  total.inflight_rejected += shard.inflight_rejected;
  total.deadline_hits += shard.deadline_hits;
  total.cancellations += shard.cancellations;
  total.retries += shard.retries;
  total.negative_exempt += shard.negative_exempt;
  total.degraded_served += shard.degraded_served;
  total.background_refreshes += shard.background_refreshes;
  total.restored_graphs += shard.restored_graphs;
  total.restored_entries += shard.restored_entries;
  total.restored_lineage += shard.restored_lineage;
  total.quarantined_sections += shard.quarantined_sections;
  total.snapshot_writes += shard.snapshot_writes;
  total.snapshot_failures += shard.snapshot_failures;
  total.snapshot_restore_errors += shard.snapshot_restore_errors;

  total.graphs.graphs += shard.graphs.graphs;
  total.graphs.resident_bytes += shard.graphs.resident_bytes;
  total.graphs.inserts += shard.graphs.inserts;
  total.graphs.dedup_hits += shard.graphs.dedup_hits;
  total.graphs.evictions += shard.graphs.evictions;
  total.graphs.byte_budget += shard.graphs.byte_budget;

  total.cache.hits += shard.cache.hits;
  total.cache.misses += shard.cache.misses;
  total.cache.evictions += shard.cache.evictions;
  total.cache.entries += shard.cache.entries;
  total.cache.lineage_entries += shard.cache.lineage_entries;
  total.cache.bytes += shard.cache.bytes;
  total.cache.byte_budget += shard.cache.byte_budget;
  total.cache.insert_failures += shard.cache.insert_failures;
}

}  // namespace

ShardedBackboneEngine::ShardedBackboneEngine(const Options& options)
    : options_(options), routing_(std::make_shared<const RoutingTable>()) {
  const int num_shards = std::max(1, options.num_shards);
  // Split the global figures N ways: each shard prices its own residency
  // against its slice of the budget and fans its scorings out over its
  // slice of the pool, so N shards cost what one global engine did.
  BackboneEngineOptions shard_options = options.engine;
  shard_options.cache_byte_budget =
      SplitBudget(options.engine.cache_byte_budget, num_shards);
  shard_options.graph_byte_budget =
      SplitBudget(options.engine.graph_byte_budget, num_shards);
  shard_options.num_threads = std::max(
      1, ResolveThreadCount(options.engine.num_threads) / num_shards);
  shards_.reserve(static_cast<size_t>(num_shards));
  for (int i = 0; i < num_shards; ++i) {
    if (!options.engine.snapshot_dir.empty()) {
      shard_options.snapshot_dir =
          options.engine.snapshot_dir + "/shard" + std::to_string(i);
    }
    shards_.push_back(std::make_unique<BackboneEngine>(shard_options));
  }
  SelfHealRouting();
  if (options_.rebalance_interval.count() > 0) {
    rebalancer_ = std::thread([this] { RebalancerLoop(); });
  }
}

ShardedBackboneEngine::~ShardedBackboneEngine() {
  if (rebalancer_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(stop_mu_);
      shutdown_ = true;
    }
    stop_cv_.notify_all();
    rebalancer_.join();
  }
  // Shards destruct next (each drains its dispatcher and writes its own
  // shutdown snapshot into its subdirectory).
}

void ShardedBackboneEngine::SelfHealRouting() {
  // What each restored shard actually holds decides the boot routing:
  // a fingerprint resident off its hash shard was migrated there before
  // the restart, and an override keeps it warm. The hash owner wins when
  // two shards hold a copy (no override needed); otherwise the lowest
  // holding shard index does.
  const size_t num_shards = shards_.size();
  std::vector<std::vector<uint64_t>> resident(num_shards);
  std::unordered_set<uint64_t> hash_owned;
  for (size_t i = 0; i < num_shards; ++i) {
    resident[i] = shards_[i]->ResidentFingerprints();
    for (const uint64_t fingerprint : resident[i]) {
      if (ShardByHash(fingerprint, num_shards) == static_cast<int>(i)) {
        hash_owned.insert(fingerprint);
      }
    }
  }
  auto table = std::make_shared<RoutingTable>();
  for (size_t i = 0; i < num_shards; ++i) {
    for (const uint64_t fingerprint : resident[i]) {
      if (ShardByHash(fingerprint, num_shards) == static_cast<int>(i)) {
        continue;
      }
      if (hash_owned.count(fingerprint) > 0) continue;
      table->overrides.try_emplace(fingerprint, static_cast<int>(i));
    }
  }
  if (table->overrides.empty()) return;  // the fresh-boot table stands
  table->epoch = 1;
  routing_.store(std::move(table), std::memory_order_release);
}

int ShardedBackboneEngine::RouteWith(const RoutingTable& table,
                                     uint64_t fingerprint) const {
  const auto it = table.overrides.find(fingerprint);
  if (it != table.overrides.end()) return it->second;
  return ShardByHash(fingerprint, shards_.size());
}

int ShardedBackboneEngine::ShardOf(uint64_t fingerprint) const {
  return RouteWith(*Table(), fingerprint);
}

uint64_t ShardedBackboneEngine::RoutingEpoch() const {
  return Table()->epoch;
}

void ShardedBackboneEngine::RecordLoad(uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(load_mu_);
  if (fingerprint_load_.size() >= options_.max_tracked_fingerprints &&
      fingerprint_load_.find(fingerprint) == fingerprint_load_.end()) {
    // Bounded like the negative cache: overflow resets the table. The
    // cost is one cold rebalance window, never unbounded memory.
    fingerprint_load_.clear();
  }
  ++fingerprint_load_[fingerprint];
}

uint64_t ShardedBackboneEngine::AddGraph(Graph graph) {
  // The fingerprint decides the shard, so it is computed before the
  // graph moves — the target shard's Intern re-derives the same value
  // (one extra O(E) hash per upload, the router's price).
  const uint64_t fingerprint = GraphFingerprint(graph);
  return shards_[static_cast<size_t>(ShardOf(fingerprint))]->AddGraph(
      std::move(graph));
}

uint64_t ShardedBackboneEngine::AddGraphRevision(Graph graph,
                                                 uint64_t base_fingerprint) {
  const uint64_t child = GraphFingerprint(graph);
  int target;
  {
    // Writer path: the child is pinned to its base's shard so the
    // lineage record, the submission-time delta, and the warm ancestor
    // entries all live where the child's requests will land. The pin is
    // installed *before* the intern — a concurrent request on the child
    // either routes to the target (and coalesces there) or NotFounds,
    // never scores on a shard the family does not live on.
    std::lock_guard<std::mutex> lock(rebalance_mu_);
    const std::shared_ptr<const RoutingTable> table = Table();
    target = RouteWith(*table, base_fingerprint);
    if (RouteWith(*table, child) != target) {
      auto next = std::make_shared<RoutingTable>(*table);
      next->epoch = table->epoch + 1;
      next->overrides[child] = target;
      routing_.store(std::move(next), std::memory_order_release);
    }
  }
  return shards_[static_cast<size_t>(target)]->AddGraphRevision(
      std::move(graph), base_fingerprint);
}

std::shared_ptr<const Graph> ShardedBackboneEngine::FindGraph(
    uint64_t fingerprint) const {
  return shards_[static_cast<size_t>(ShardOf(fingerprint))]->FindGraph(
      fingerprint);
}

Result<BackboneResponse> ShardedBackboneEngine::Execute(
    const BackboneRequest& request) {
  RecordLoad(request.graph);
  return shards_[static_cast<size_t>(ShardOf(request.graph))]->Execute(
      request);
}

std::vector<Result<BackboneResponse>> ShardedBackboneEngine::ExecuteBatch(
    std::span<const BackboneRequest> requests) {
  // One routing table for the whole batch: every request routes under
  // the same epoch, so a concurrent migration cannot split the batch
  // across old and new owners of one fingerprint.
  const std::shared_ptr<const RoutingTable> table = Table();
  const size_t num_shards = shards_.size();
  std::vector<std::vector<BackboneRequest>> sub(num_shards);
  std::vector<std::vector<size_t>> origin(num_shards);
  int used = 0;
  int last_used = 0;
  for (size_t i = 0; i < requests.size(); ++i) {
    RecordLoad(requests[i].graph);
    const size_t s =
        static_cast<size_t>(RouteWith(*table, requests[i].graph));
    if (sub[s].empty()) ++used;
    last_used = static_cast<int>(s);
    sub[s].push_back(requests[i]);
    origin[s].push_back(i);
  }
  if (used <= 1) {
    // Single-shard batch (the common case under skewed traffic): no
    // scatter, the shard sees the original request order.
    return shards_[static_cast<size_t>(last_used)]->ExecuteBatch(requests);
  }
  std::vector<std::optional<Result<BackboneResponse>>> out(requests.size());
  for (size_t s = 0; s < num_shards; ++s) {
    if (sub[s].empty()) continue;
    std::vector<Result<BackboneResponse>> part =
        shards_[s]->ExecuteBatch(sub[s]);
    for (size_t j = 0; j < part.size(); ++j) {
      out[origin[s][j]] = std::move(part[j]);
    }
  }
  std::vector<Result<BackboneResponse>> results;
  results.reserve(out.size());
  for (auto& slot : out) results.push_back(std::move(*slot));
  return results;
}

std::future<std::vector<Result<BackboneResponse>>>
ShardedBackboneEngine::Submit(std::vector<BackboneRequest> requests) {
  const std::shared_ptr<const RoutingTable> table = Table();
  const size_t num_shards = shards_.size();
  std::vector<std::vector<BackboneRequest>> sub(num_shards);
  std::vector<std::vector<size_t>> origin(num_shards);
  int used = 0;
  int last_used = 0;
  for (size_t i = 0; i < requests.size(); ++i) {
    RecordLoad(requests[i].graph);
    const size_t s =
        static_cast<size_t>(RouteWith(*table, requests[i].graph));
    if (sub[s].empty()) ++used;
    last_used = static_cast<int>(s);
    sub[s].push_back(std::move(requests[i]));
    origin[s].push_back(i);
  }
  if (used <= 1) {
    // Whole batch on one shard: hand it to that shard's dispatcher
    // as-is — fully asynchronous, original order.
    return shards_[static_cast<size_t>(last_used)]->Submit(
        std::move(sub[static_cast<size_t>(last_used)]));
  }
  // Multi-shard batch: one sub-batch per shard, each queued on its own
  // dispatcher immediately (deadlines arm now, per the Submit contract).
  // The returned future gathers and scatters on get().
  struct Part {
    std::future<std::vector<Result<BackboneResponse>>> future;
    std::vector<size_t> origin;
  };
  std::vector<Part> parts;
  for (size_t s = 0; s < num_shards; ++s) {
    if (sub[s].empty()) continue;
    parts.push_back(
        Part{shards_[s]->Submit(std::move(sub[s])), std::move(origin[s])});
  }
  return std::async(
      std::launch::deferred,
      [parts = std::move(parts), total = requests.size()]() mutable {
        std::vector<std::optional<Result<BackboneResponse>>> out(total);
        for (Part& part : parts) {
          std::vector<Result<BackboneResponse>> results = part.future.get();
          for (size_t j = 0; j < results.size(); ++j) {
            out[part.origin[j]] = std::move(results[j]);
          }
        }
        std::vector<Result<BackboneResponse>> results;
        results.reserve(out.size());
        for (auto& slot : out) results.push_back(std::move(*slot));
        return results;
      });
}

void ShardedBackboneEngine::ClearNegativeCache() {
  for (const auto& shard : shards_) shard->ClearNegativeCache();
}

Status ShardedBackboneEngine::WriteSnapshotNow() {
  Status first = Status::OK();
  for (const auto& shard : shards_) {
    Status status = shard->WriteSnapshotNow();
    if (!status.ok() && first.ok()) first = status;
  }
  return first;
}

bool ShardedBackboneEngine::MigrateFamilyLocked(
    std::span<const uint64_t> family, int source, int target) {
  // Export -> import -> swap. The source keeps everything until the
  // retirement one cycle later, so a request routed under the old table
  // an instant before the swap still finds its state.
  const std::string blob =
      shards_[static_cast<size_t>(source)]->ExportFingerprintState(family);
  Result<SnapshotRestoreReport> imported =
      shards_[static_cast<size_t>(target)]->ImportFingerprintState(blob);
  if (!imported.ok()) {
    // Abandoned: routing untouched, the source still serves the family.
    // (The target may hold a partial import; it is unreachable by
    // routing and its bytes age out of the target's LRU budgets.)
    ++migration_failures_;
    return false;
  }
  const std::shared_ptr<const RoutingTable> table = Table();
  auto next = std::make_shared<RoutingTable>(*table);
  next->epoch = table->epoch + 1;
  for (const uint64_t fingerprint : family) {
    if (ShardByHash(fingerprint, shards_.size()) == target) {
      next->overrides.erase(fingerprint);  // home again: hash suffices
    } else {
      next->overrides[fingerprint] = target;
    }
  }
  routing_.store(std::move(next), std::memory_order_release);
  pending_retire_.emplace_back(
      source, std::vector<uint64_t>(family.begin(), family.end()));
  ++migrations_;
  return true;
}

int ShardedBackboneEngine::RebalanceNow() {
  std::lock_guard<std::mutex> cycle(rebalance_mu_);
  ++rebalance_cycles_;
  // Grace period expired: families whose routing moved last cycle are
  // retired from their old shards now.
  for (const auto& [shard, family] : pending_retire_) {
    shards_[static_cast<size_t>(shard)]->RetireFingerprints(family);
  }
  pending_retire_.clear();

  const int num_shards = static_cast<int>(shards_.size());
  if (num_shards < 2) return 0;
  std::unordered_map<uint64_t, int64_t> loads;
  {
    std::lock_guard<std::mutex> lock(load_mu_);
    loads = fingerprint_load_;
  }
  if (loads.empty()) return 0;

  // Deterministic inputs, deterministic decisions: loads are bucketed by
  // the current route, and every pick below breaks ties by lowest shard
  // index / lowest fingerprint — the same trace yields the same
  // migrations at any thread count.
  std::vector<int64_t> shard_load(static_cast<size_t>(num_shards), 0);
  std::vector<std::vector<std::pair<uint64_t, int64_t>>> by_shard(
      static_cast<size_t>(num_shards));
  {
    const std::shared_ptr<const RoutingTable> table = Table();
    for (const auto& [fingerprint, count] : loads) {
      const size_t s =
          static_cast<size_t>(RouteWith(*table, fingerprint));
      shard_load[s] += count;
      by_shard[s].emplace_back(fingerprint, count);
    }
  }
  for (auto& bucket : by_shard) {
    std::sort(bucket.begin(), bucket.end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second > b.second;
                return a.first < b.first;
              });
  }

  int migrated = 0;
  std::unordered_set<uint64_t> attempted;
  while (migrated < options_.max_migrations_per_cycle) {
    int source = 0;
    int target = 0;
    for (int s = 1; s < num_shards; ++s) {
      if (shard_load[static_cast<size_t>(s)] >
          shard_load[static_cast<size_t>(source)]) {
        source = s;
      }
      if (shard_load[static_cast<size_t>(s)] <
          shard_load[static_cast<size_t>(target)]) {
        target = s;
      }
    }
    const int64_t source_load = shard_load[static_cast<size_t>(source)];
    const int64_t target_load = shard_load[static_cast<size_t>(target)];
    if (source == target ||
        static_cast<double>(source_load) <=
            options_.rebalance_load_ratio *
                static_cast<double>(target_load)) {
      break;  // balanced enough
    }
    // Hottest not-yet-attempted fingerprint on the hot shard.
    uint64_t candidate = 0;
    bool found = false;
    for (const auto& [fingerprint, count] :
         by_shard[static_cast<size_t>(source)]) {
      if (attempted.count(fingerprint) == 0) {
        candidate = fingerprint;
        found = true;
        break;
      }
    }
    if (!found) break;
    // The whole lineage family moves together (or not at all), so the
    // delta warm path survives on the target. Members already routed
    // elsewhere are excluded defensively; the co-location invariant
    // makes that set empty in practice.
    std::vector<uint64_t> family =
        shards_[static_cast<size_t>(source)]->LineageFamily(candidate);
    {
      const std::shared_ptr<const RoutingTable> table = Table();
      std::erase_if(family, [&](uint64_t fingerprint) {
        return RouteWith(*table, fingerprint) != source;
      });
    }
    int64_t family_load = 0;
    for (const uint64_t fingerprint : family) {
      attempted.insert(fingerprint);
      const auto it = loads.find(fingerprint);
      if (it != loads.end()) family_load += it->second;
    }
    if (family.empty()) continue;
    // Only move when it actually narrows the gap — migrating a family
    // hotter than the whole imbalance would just swap which shard burns.
    if (family_load <= 0 || family_load >= source_load - target_load) {
      continue;
    }
    if (!MigrateFamilyLocked(family, source, target)) continue;
    shard_load[static_cast<size_t>(source)] -= family_load;
    shard_load[static_cast<size_t>(target)] += family_load;
    ++migrated;
  }
  return migrated;
}

void ShardedBackboneEngine::RebalancerLoop() {
  std::unique_lock<std::mutex> lock(stop_mu_);
  while (!shutdown_) {
    if (stop_cv_.wait_for(lock, options_.rebalance_interval,
                          [this] { return shutdown_; })) {
      break;
    }
    lock.unlock();
    RebalanceNow();
    lock.lock();
  }
}

ShardedBackboneEngine::Stats ShardedBackboneEngine::stats() const {
  Stats stats;
  stats.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    stats.shards.push_back(shard->stats());
  }
  for (const BackboneEngine::Stats& shard : stats.shards) {
    AccumulateStats(stats.total, shard);
  }
  const std::shared_ptr<const RoutingTable> table = Table();
  stats.routing_epoch = static_cast<int64_t>(table->epoch);
  stats.routing_overrides = static_cast<int64_t>(table->overrides.size());
  {
    std::lock_guard<std::mutex> lock(rebalance_mu_);
    stats.migrations = migrations_;
    stats.migration_failures = migration_failures_;
    stats.rebalance_cycles = rebalance_cycles_;
  }
  return stats;
}

obs::MetricsSnapshot ShardedBackboneEngine::Metrics() const {
  // Three views in one snapshot: the unprefixed rollup (same-name
  // metrics merge across shards — counters sum, histograms merge
  // bucket-wise, both order-independent), each shard again under its
  // "shard<i>." namespace, and the router's own gauges.
  std::vector<obs::MetricsSnapshot> per_shard;
  per_shard.reserve(shards_.size());
  for (const auto& shard : shards_) {
    per_shard.push_back(shard->Metrics());
  }
  obs::MetricsSnapshot out;
  for (const obs::MetricsSnapshot& snapshot : per_shard) {
    out.Merge(snapshot);
  }
  for (size_t i = 0; i < per_shard.size(); ++i) {
    out.Merge(
        per_shard[i].WithPrefix("shard" + std::to_string(i) + "."));
  }
  obs::MetricsSnapshot own;
  const std::shared_ptr<const RoutingTable> table = Table();
  own.gauges.push_back(
      {"sharded.shards", static_cast<int64_t>(shards_.size())});
  own.gauges.push_back(
      {"sharded.routing_epoch", static_cast<int64_t>(table->epoch)});
  own.gauges.push_back({"sharded.routing_overrides",
                        static_cast<int64_t>(table->overrides.size())});
  {
    std::lock_guard<std::mutex> lock(rebalance_mu_);
    own.gauges.push_back({"sharded.migrations", migrations_});
    own.gauges.push_back(
        {"sharded.migration_failures", migration_failures_});
    own.gauges.push_back({"sharded.rebalance_cycles", rebalance_cycles_});
  }
  out.Merge(own);
  return out;
}

}  // namespace netbone
