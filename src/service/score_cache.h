// Copyright 2026 The netbone Authors.
//
// Content-addressed score cache for the serving layer. Scoring is the
// expensive half of every backbone request (NC/DF integrals, the HSS
// Dijkstra fan-out); thresholding a cached score is O(E) and answering a
// coverage point from a cached sweep profile is O(1). The cache therefore
// holds, per (graph fingerprint, method, scoring options) key, the full
// amortizable artifact chain: the ScoredEdges table, its one-sort
// ScoreOrder permutation, and the SweepProfile from the single union-find
// pass — everything a warm request needs with zero rescoring and zero
// sorts (pinned by ScoreOrder::SortsPerformed in the tests and the
// serving benchmark).
//
// Residency is LRU under a byte budget: entries are priced with the
// common/bytes.h accounting and the least-recently-used entries are
// dropped first once the budget is exceeded. Hit / miss / eviction
// counters feed the engine's stats.

#ifndef NETBONE_SERVICE_SCORE_CACHE_H_
#define NETBONE_SERVICE_SCORE_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>

#include "common/random.h"  // Mix64, the shared hash diffusion step
#include "core/registry.h"
#include "core/scored_edges.h"
#include "core/sweep.h"
#include "graph/graph.h"

namespace netbone {

/// The scoring knobs that change a method's output and therefore belong
/// in the cache key. RunMethodOptions::num_threads is deliberately NOT
/// here: every method is bit-identical for every thread count (the PR 1/2
/// determinism contract), so scores computed at different thread counts
/// are interchangeable cache content.
struct ScoreOptions {
  /// Forwarded to HighSalienceSkeletonOptions::max_cost. Part of the key
  /// because the guard decides whether HSS runs at all.
  int64_t hss_max_cost = 0;
  /// Forwarded to HighSalienceSkeletonOptions::source_sample_size.
  int64_t hss_source_sample_size = 0;
  /// Forwarded to HighSalienceSkeletonOptions::sample_seed.
  uint64_t hss_sample_seed = 42;

  friend bool operator==(const ScoreOptions&, const ScoreOptions&) = default;
};

/// Cache key: which graph, which method, which scoring options.
struct ScoreKey {
  uint64_t graph = 0;  ///< GraphFingerprint of an interned graph
  Method method = Method::kNoiseCorrected;
  ScoreOptions options;

  friend bool operator==(const ScoreKey&, const ScoreKey&) = default;
};

/// Canonical key construction: scoring knobs that cannot affect `method`
/// are reset to their defaults, so e.g. two NoiseCorrected requests that
/// differ only in (irrelevant) HSS sampling knobs share one cache entry
/// instead of scoring twice. Always build keys through this helper.
inline ScoreKey MakeScoreKey(uint64_t graph, Method method,
                             ScoreOptions options) {
  if (method != Method::kHighSalienceSkeleton) options = ScoreOptions{};
  return ScoreKey{graph, method, options};
}

/// Hash for ScoreKey (same Mix64 diffusion as the graph fingerprint).
struct ScoreKeyHash {
  size_t operator()(const ScoreKey& key) const {
    uint64_t h = Mix64(key.graph);
    h = Mix64(h ^ static_cast<uint64_t>(key.method));
    h = Mix64(h ^ static_cast<uint64_t>(key.options.hss_max_cost));
    h = Mix64(h ^ static_cast<uint64_t>(key.options.hss_source_sample_size));
    h = Mix64(h ^ key.options.hss_sample_seed);
    return static_cast<size_t>(h);
  }
};

/// Immutable cached value: one method's scores on one graph plus the
/// derived one-sort artifacts. Holds a shared_ptr to the graph so the
/// ScoredEdges' interior pointer stays valid for the entry's lifetime
/// (entries can outlive a GraphStore eviction).
class CachedScore {
 public:
  /// Builds the artifact chain: moves `scored` in, computes the
  /// ScoreOrder (the one sort) and the SweepProfile (the one union-find
  /// pass). Precondition: scored.graph() is *graph.
  static std::shared_ptr<const CachedScore> Build(
      std::shared_ptr<const Graph> graph, ScoredEdges scored);

  const Graph& graph() const { return *graph_; }
  const std::shared_ptr<const Graph>& graph_handle() const { return graph_; }
  const ScoredEdges& scored() const { return scored_; }
  const ScoreOrder& order() const { return *order_; }
  const SweepProfile& profile() const { return profile_; }

  /// Heap bytes of the score table + order + profile (the graph is
  /// accounted by the GraphStore, not double-counted here).
  int64_t bytes() const { return bytes_; }

 private:
  CachedScore() = default;

  std::shared_ptr<const Graph> graph_;
  ScoredEdges scored_;
  std::optional<ScoreOrder> order_;  // built in place after scored_ settles
  SweepProfile profile_;
  int64_t bytes_ = 0;
};

/// Thread-safe LRU cache of CachedScore entries under a byte budget.
class ScoreCache {
 public:
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
    int64_t entries = 0;
    int64_t bytes = 0;
    int64_t byte_budget = 0;
  };

  /// byte_budget <= 0 means unlimited.
  explicit ScoreCache(int64_t byte_budget) : byte_budget_(byte_budget) {}

  ScoreCache(const ScoreCache&) = delete;
  ScoreCache& operator=(const ScoreCache&) = delete;

  /// Returns the entry and marks it most-recently-used, or nullptr
  /// (counted as a miss).
  std::shared_ptr<const CachedScore> Get(const ScoreKey& key);

  /// Inserts (or replaces) the entry as most-recently-used, then evicts
  /// least-recently-used entries until the budget holds again. The budget
  /// is strict: an entry larger than the whole budget is evicted
  /// immediately (the caller's shared_ptr keeps it usable for the
  /// in-flight request).
  void Put(const ScoreKey& key, std::shared_ptr<const CachedScore> score);

  /// Changes the budget (<= 0 = unlimited) and trims immediately.
  void set_byte_budget(int64_t byte_budget);

  void Clear();

  Stats stats() const;

 private:
  void TrimLocked();

  using LruList =
      std::list<std::pair<ScoreKey, std::shared_ptr<const CachedScore>>>;

  mutable std::mutex mu_;
  int64_t byte_budget_;
  int64_t bytes_ = 0;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t evictions_ = 0;
  LruList lru_;  // front = most recently used
  std::unordered_map<ScoreKey, LruList::iterator, ScoreKeyHash> index_;
};

}  // namespace netbone

#endif  // NETBONE_SERVICE_SCORE_CACHE_H_
