// Copyright 2026 The netbone Authors.
//
// Content-addressed score cache for the serving layer. Scoring is the
// expensive half of every backbone request (NC/DF integrals, the HSS
// Dijkstra fan-out); thresholding a cached score is O(E) and answering a
// coverage point from a cached sweep profile is O(1). The cache therefore
// holds, per (graph fingerprint, method, scoring options) key, the full
// amortizable artifact chain: the ScoredEdges table, its one-sort
// ScoreOrder permutation, and the SweepProfile from the single union-find
// pass — everything a warm request needs with zero rescoring and zero
// sorts (pinned by ScoreOrder::SortsPerformed in the tests and the
// serving benchmark).
//
// Residency is LRU under a byte budget: entries are priced with the
// common/bytes.h accounting and the least-recently-used entries are
// dropped first once the budget is exceeded. Hit / miss / eviction
// counters feed the engine's stats.

#ifndef NETBONE_SERVICE_SCORE_CACHE_H_
#define NETBONE_SERVICE_SCORE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/random.h"  // Mix64, the shared hash diffusion step
#include "obs/metrics.h"
#include "common/result.h"
#include "core/registry.h"
#include "core/scored_edges.h"
#include "core/sweep.h"
#include "graph/delta.h"
#include "graph/graph.h"

namespace netbone {

/// The scoring knobs that change a method's output and therefore belong
/// in the cache key. RunMethodOptions::num_threads is deliberately NOT
/// here: every method is bit-identical for every thread count (the PR 1/2
/// determinism contract), so scores computed at different thread counts
/// are interchangeable cache content.
struct ScoreOptions {
  /// Forwarded to HighSalienceSkeletonOptions::max_cost. Part of the key
  /// because the guard decides whether HSS runs at all.
  int64_t hss_max_cost = 0;
  /// Forwarded to HighSalienceSkeletonOptions::source_sample_size.
  int64_t hss_source_sample_size = 0;
  /// Forwarded to HighSalienceSkeletonOptions::sample_seed.
  uint64_t hss_sample_seed = 42;

  friend bool operator==(const ScoreOptions&, const ScoreOptions&) = default;
};

/// Cache key: which graph, which method, which scoring options.
struct ScoreKey {
  uint64_t graph = 0;  ///< GraphFingerprint of an interned graph
  Method method = Method::kNoiseCorrected;
  ScoreOptions options;

  friend bool operator==(const ScoreKey&, const ScoreKey&) = default;
};

/// Canonical key construction: scoring knobs that cannot affect `method`
/// are reset to their defaults, so e.g. two NoiseCorrected requests that
/// differ only in (irrelevant) HSS sampling knobs share one cache entry
/// instead of scoring twice. Always build keys through this helper.
inline ScoreKey MakeScoreKey(uint64_t graph, Method method,
                             ScoreOptions options) {
  if (method != Method::kHighSalienceSkeleton) options = ScoreOptions{};
  return ScoreKey{graph, method, options};
}

/// Hash for ScoreKey (same Mix64 diffusion as the graph fingerprint).
struct ScoreKeyHash {
  size_t operator()(const ScoreKey& key) const {
    uint64_t h = Mix64(key.graph);
    h = Mix64(h ^ static_cast<uint64_t>(key.method));
    h = Mix64(h ^ static_cast<uint64_t>(key.options.hss_max_cost));
    h = Mix64(h ^ static_cast<uint64_t>(key.options.hss_source_sample_size));
    h = Mix64(h ^ key.options.hss_sample_seed);
    return static_cast<size_t>(h);
  }
};

/// Immutable cached value: one method's scores on one graph plus the
/// derived one-sort artifacts. Holds a shared_ptr to the graph so the
/// ScoredEdges' interior pointer stays valid for the entry's lifetime
/// (entries can outlive a GraphStore eviction).
class CachedScore {
 public:
  /// How an entry was produced when it came from the incremental path:
  /// which ancestor it patched and how much of the table was actually
  /// rescored. Kept (and byte-accounted) so operators can audit delta
  /// efficiency per entry.
  struct DeltaProvenance {
    uint64_t base_fingerprint = 0;  ///< ancestor graph the patch started from
    int64_t dirty_edges = 0;        ///< edges rescored (the affected set)
    int64_t total_edges = 0;        ///< edges in this entry's table
  };

  /// Builds the artifact chain: moves `scored` in, computes the
  /// ScoreOrder (the one sort) and the SweepProfile (the one union-find
  /// pass). Precondition: scored.graph() is *graph.
  static std::shared_ptr<const CachedScore> Build(
      std::shared_ptr<const Graph> graph, ScoredEdges scored);

  /// Builds the artifact chain incrementally from an ancestor entry: the
  /// ScoreOrder is patched (remove + merge over `base.order()`, zero
  /// global sorts — see ScoreOrder's patch constructor) and the
  /// SweepProfile is rebuilt from the patched order (union-find is
  /// inherently batch; the rebuild is cheap next to scoring).
  /// Preconditions: scored.graph() is *graph, `scored` was produced by
  /// DeltaRescore against base.scored(), and base_to_next / dirty are
  /// that rescore's bookkeeping. The result is bit-identical to
  /// Build(graph, full rescore).
  static std::shared_ptr<const CachedScore> BuildPatched(
      std::shared_ptr<const Graph> graph, ScoredEdges scored,
      const CachedScore& base, std::span<const EdgeId> base_to_next,
      std::span<const EdgeId> dirty, uint64_t base_fingerprint);

  /// Rebuilds an entry from snapshotted artifacts (service/snapshot.h):
  /// the stored permutation is adopted through ScoreOrder::FromPermutation
  /// (validated in O(E), zero sorts) and the stored profile is used as-is
  /// (its lengths were validated by the decoder; its content is covered by
  /// the section checksum). Corruption when the permutation fails
  /// validation. Preconditions: scored.graph() is *graph, profile was
  /// decoded for this graph's edge/node counts.
  static Result<std::shared_ptr<const CachedScore>> Restore(
      std::shared_ptr<const Graph> graph, ScoredEdges scored,
      std::vector<EdgeId> order_ids, SweepProfile profile,
      std::optional<DeltaProvenance> provenance);

  const Graph& graph() const { return *graph_; }
  const std::shared_ptr<const Graph>& graph_handle() const { return graph_; }
  const ScoredEdges& scored() const { return scored_; }
  const ScoreOrder& order() const { return *order_; }
  const SweepProfile& profile() const { return profile_; }

  /// Set when this entry was produced by the incremental path; nullptr
  /// for cold-scored entries.
  const DeltaProvenance* delta_provenance() const {
    return provenance_.has_value() ? &*provenance_ : nullptr;
  }

  /// Heap bytes of the score table + order + profile + delta metadata
  /// (the graph is accounted by the GraphStore, not double-counted here).
  int64_t bytes() const { return bytes_; }

 private:
  CachedScore() = default;

  /// Shared tail of the computing factories: profile + byte pricing.
  void FinishBuild();
  /// Byte pricing alone (the restore factory already has a profile).
  void PriceBytes();

  std::shared_ptr<const Graph> graph_;
  ScoredEdges scored_;
  std::optional<ScoreOrder> order_;  // built in place after scored_ settles
  SweepProfile profile_;
  std::optional<DeltaProvenance> provenance_;
  int64_t bytes_ = 0;
};

/// Thread-safe LRU cache of CachedScore entries under a byte budget.
///
/// Besides the score entries, the cache keeps a small *lineage map* —
/// child graph fingerprint -> the base fingerprint it was derived from,
/// registered by BackboneEngine::AddGraphRevision. The incremental
/// rescoring path walks it to find a warm ancestor entry to patch from.
/// Lineage is graph-level (independent of method/options), bounded
/// (kMaxLineageEntries; the table is dropped wholesale on overflow — the
/// cost is lost patch opportunities, never correctness), and its bytes
/// are charged against the same budget as the entries, so the byte
/// accounting stays honest under eviction.
class ScoreCache {
 public:
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
    int64_t entries = 0;
    int64_t lineage_entries = 0;
    int64_t bytes = 0;
    int64_t byte_budget = 0;
    /// Inserts dropped by the fault-injection harness (simulated
    /// allocation failure in Put); always 0 in production.
    int64_t insert_failures = 0;
  };

  /// byte_budget <= 0 means unlimited.
  explicit ScoreCache(int64_t byte_budget) : byte_budget_(byte_budget) {}

  ScoreCache(const ScoreCache&) = delete;
  ScoreCache& operator=(const ScoreCache&) = delete;

  /// Returns the entry and marks it most-recently-used, or nullptr
  /// (counted as a miss).
  std::shared_ptr<const CachedScore> Get(const ScoreKey& key);

  /// As Get but without hit/miss accounting (recency still refreshes):
  /// the delta path's ancestor probe, which is bookkept by the engine's
  /// own delta counters instead of distorting the request-facing hit
  /// rate.
  std::shared_ptr<const CachedScore> Peek(const ScoreKey& key);

  /// One lineage record: the declared base plus (optionally) the sparse
  /// delta computed at submission time, so request-time patching starts
  /// from precomputed difference lists instead of re-diffing the tables.
  struct Lineage {
    uint64_t parent = 0;  ///< base fingerprint, 0 = no lineage
    std::shared_ptr<const GraphDelta> delta;  ///< may be null
  };

  /// Records `child`'s graph as derived from `parent` (both graph
  /// fingerprints), with the submission-time delta when the caller has
  /// one. No-op when either fingerprint is zero or they are equal. A
  /// re-registration overwrites: the latest declared base wins. The
  /// delta's bytes are charged to the cache budget.
  void RegisterLineage(uint64_t child, uint64_t parent,
                       std::shared_ptr<const GraphDelta> delta = nullptr);

  /// The lineage record for `child` (parent == 0 when none).
  Lineage LineageFor(uint64_t child) const;

  /// The registered base fingerprint for `child`, or 0.
  uint64_t LineageParent(uint64_t child) const {
    return LineageFor(child).parent;
  }

  /// Inserts (or replaces) the entry as most-recently-used, then evicts
  /// least-recently-used entries until the budget holds again. The budget
  /// is strict: an entry larger than the whole budget is evicted
  /// immediately (the caller's shared_ptr keeps it usable for the
  /// in-flight request).
  void Put(const ScoreKey& key, std::shared_ptr<const CachedScore> score);

  /// Changes the budget (<= 0 = unlimited) and trims immediately.
  void set_byte_budget(int64_t byte_budget);

  void Clear();

  /// All resident entries, least-recently-used first and without touching
  /// recency — the snapshot writer's enumeration order, chosen so a
  /// restore that re-Puts in sequence reproduces the LRU order (the last
  /// Put is the most recent, exactly as before the snapshot).
  std::vector<std::pair<ScoreKey, std::shared_ptr<const CachedScore>>>
  Entries() const;

  /// All lineage records (child fingerprint + record), unordered.
  std::vector<std::pair<uint64_t, Lineage>> LineageEntries() const;

  /// Drops every score entry keyed on `fingerprint` plus its lineage
  /// record, adjusting the byte accounting (not counted as evictions —
  /// this is shard-migration retirement, not budget pressure). Entries
  /// still referenced elsewhere stay valid through their shared_ptrs.
  /// Returns the number of score entries dropped.
  int64_t EraseGraphEntries(uint64_t fingerprint);

  /// One coherent readout of every counter, taken under a single lock
  /// acquisition — the unit a multi-shard rollup sums, so aggregated
  /// stats can't tear mid-read. stats() is an alias.
  Stats StatsSnapshot() const;
  Stats stats() const { return StatsSnapshot(); }

  /// Registers this cache's stats as callback gauges and its operation
  /// latency histograms (get/put/evict, populated only while
  /// set_metrics_timing(true)) under `<prefix>.<name>`. The caller owns
  /// unregistration via the `owner` cookie.
  void RegisterMetrics(obs::MetricRegistry& registry,
                       const std::string& prefix, const void* owner);

  /// Turns on latency recording for Get/Put/eviction (two clock reads
  /// per operation). Off by default so uninstrumented users pay nothing.
  void set_metrics_timing(bool on) {
    metrics_timing_.store(on, std::memory_order_relaxed);
  }

 private:
  /// Approximate bytes one lineage entry occupies (two fingerprints plus
  /// hash-map node overhead) — the unit the lineage map is priced at.
  static constexpr int64_t kLineageEntryBytes =
      static_cast<int64_t>(2 * sizeof(uint64_t) + 4 * sizeof(void*));
  /// Hard cap on lineage entries (~64k revisions, a few MiB): on
  /// overflow the table is dropped wholesale, like the negative cache.
  static constexpr size_t kMaxLineageEntries = 65536;

  void TrimLocked();
  std::shared_ptr<const CachedScore> GetLocked(const ScoreKey& key);

  using LruList =
      std::list<std::pair<ScoreKey, std::shared_ptr<const CachedScore>>>;

  mutable std::mutex mu_;
  int64_t byte_budget_;
  int64_t bytes_ = 0;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t evictions_ = 0;
  int64_t insert_failures_ = 0;
  LruList lru_;  // front = most recently used
  std::unordered_map<ScoreKey, LruList::iterator, ScoreKeyHash> index_;
  std::unordered_map<uint64_t, Lineage> lineage_;  // child -> record
  int64_t lineage_bytes_ = 0;  // lineage map share of bytes_

  std::atomic<bool> metrics_timing_{false};
  obs::LatencyHistogram get_ns_;    ///< Get latency (hit or miss)
  obs::LatencyHistogram put_ns_;    ///< Put latency (including any trim)
  obs::LatencyHistogram evict_ns_;  ///< per-Trim latency when it evicted
};

}  // namespace netbone

#endif  // NETBONE_SERVICE_SCORE_CACHE_H_
