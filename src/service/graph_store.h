// Copyright 2026 The netbone Authors.
//
// Content-addressed graph residency for the serving layer. A long-lived
// backbone server sees the same networks submitted over and over (the
// paper's score-once / threshold-many workflow, issued by many clients);
// the GraphStore gives every canonical graph a stable 64-bit fingerprint
// and keeps exactly one resident copy per distinct content, so repeated
// submissions dedupe to a shared_ptr bump instead of a second multi-MB
// edge table. The fingerprint is also the graph half of every ScoreCache
// key (service/score_cache.h).

#ifndef NETBONE_SERVICE_GRAPH_STORE_H_
#define NETBONE_SERVICE_GRAPH_STORE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/random.h"  // Mix64, the shared hash diffusion step
#include "graph/graph.h"

namespace netbone {

/// Stable content fingerprint over the canonical edge table: two Graphs
/// hash equal iff they describe the same weighted network. For labeled
/// graphs the hash is computed over label-ranked node ids, so it does not
/// depend on the order in which labels were interned at build time (the
/// same CSV loaded in a different row order fingerprints identically).
/// Unlabeled graphs hash their dense-id edge table directly — dense ids
/// are the identity of their nodes. Collisions are possible in principle
/// (64-bit) and accepted: the store treats equal fingerprints as equal
/// content.
uint64_t GraphFingerprint(const Graph& graph);

/// Approximate resident heap bytes of a Graph (edge table, marginal
/// arrays, labels + label index), priced with the common/bytes.h
/// accounting. Used for the store's stats and any byte budgeting above it.
int64_t ApproxGraphBytes(const Graph& graph);

/// A graph resident in a GraphStore: its fingerprint plus a shared
/// handle. The handle keeps the graph alive independently of the store.
struct StoredGraph {
  uint64_t fingerprint = 0;
  std::shared_ptr<const Graph> graph;
};

/// Thread-safe content-addressed store. Intern() is the only way in:
/// submitting a graph whose fingerprint is already resident returns the
/// existing copy and drops the new one.
class GraphStore {
 public:
  struct Stats {
    int64_t graphs = 0;          ///< distinct graphs resident
    int64_t resident_bytes = 0;  ///< ApproxGraphBytes over residents
    int64_t inserts = 0;         ///< Intern() calls that added a graph
    int64_t dedup_hits = 0;      ///< Intern() calls answered by a resident
  };

  GraphStore() = default;
  GraphStore(const GraphStore&) = delete;
  GraphStore& operator=(const GraphStore&) = delete;

  /// Fingerprints `graph` and either adopts it (first submission) or
  /// returns the already-resident copy with the same content.
  StoredGraph Intern(Graph graph);

  /// The resident graph with this fingerprint, or nullptr.
  std::shared_ptr<const Graph> Find(uint64_t fingerprint) const;

  /// Drops a resident graph (outstanding shared_ptrs stay valid). Returns
  /// false when the fingerprint is unknown.
  bool Erase(uint64_t fingerprint);

  Stats stats() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, std::shared_ptr<const Graph>> graphs_;
  int64_t resident_bytes_ = 0;
  int64_t inserts_ = 0;
  int64_t dedup_hits_ = 0;
};

}  // namespace netbone

#endif  // NETBONE_SERVICE_GRAPH_STORE_H_
