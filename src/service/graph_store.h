// Copyright 2026 The netbone Authors.
//
// Content-addressed graph residency for the serving layer. A long-lived
// backbone server sees the same networks submitted over and over (the
// paper's score-once / threshold-many workflow, issued by many clients);
// the GraphStore gives every canonical graph a stable 64-bit fingerprint
// and keeps exactly one resident copy per distinct content, so repeated
// submissions dedupe to a shared_ptr bump instead of a second multi-MB
// edge table. The fingerprint is also the graph half of every ScoreCache
// key (service/score_cache.h).
//
// Residency is optionally bounded: under a byte budget (common/bytes.h
// accounting via ApproxGraphBytes) the least-recently-used unpinned
// graphs are evicted first, so multi-tenant churn cannot grow resident
// bytes without bound. Pins are in-flight refcounts: the engine pins a
// graph while a scoring on it runs, and pinned graphs are never evicted
// (the budget is exceeded rather than dropping a graph mid-use).
// Eviction only drops the store's reference — outstanding shared_ptr
// handles (requests, cached scores) stay valid; the evicted fingerprint
// simply stops resolving until the graph is re-interned.

#ifndef NETBONE_SERVICE_GRAPH_STORE_H_
#define NETBONE_SERVICE_GRAPH_STORE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/random.h"  // Mix64, the shared hash diffusion step
#include "obs/metrics.h"
#include "common/result.h"
#include "graph/delta.h"
#include "graph/graph.h"

namespace netbone {

/// Stable content fingerprint over the canonical edge table: two Graphs
/// hash equal iff they describe the same weighted network. For labeled
/// graphs the hash is computed over label-ranked node ids, so it does not
/// depend on the order in which labels were interned at build time (the
/// same CSV loaded in a different row order fingerprints identically).
/// Unlabeled graphs hash their dense-id edge table directly — dense ids
/// are the identity of their nodes. Collisions are possible in principle
/// (64-bit) and accepted: the store treats equal fingerprints as equal
/// content.
uint64_t GraphFingerprint(const Graph& graph);

/// Approximate resident heap bytes of a Graph (edge table, marginal
/// arrays, labels + label index), priced with the common/bytes.h
/// accounting. Used for the store's stats and any byte budgeting above it.
int64_t ApproxGraphBytes(const Graph& graph);

/// A graph resident in a GraphStore: its fingerprint plus a shared
/// handle. The handle keeps the graph alive independently of the store.
struct StoredGraph {
  uint64_t fingerprint = 0;
  std::shared_ptr<const Graph> graph;
};

/// Thread-safe content-addressed store with optional LRU-under-byte-
/// budget eviction. Intern() is the only way in: submitting a graph whose
/// fingerprint is already resident returns the existing copy and drops
/// the new one. Intern() and Find() both count as uses for recency.
class GraphStore {
 public:
  struct Stats {
    int64_t graphs = 0;          ///< distinct graphs resident
    int64_t resident_bytes = 0;  ///< ApproxGraphBytes over residents
    int64_t inserts = 0;         ///< Intern() calls that added a graph
    int64_t dedup_hits = 0;      ///< Intern() calls answered by a resident
    int64_t evictions = 0;       ///< graphs dropped by the byte budget
    int64_t byte_budget = 0;     ///< current budget (<= 0 = unlimited)
  };

  /// byte_budget <= 0 means unlimited (no eviction) — the default.
  explicit GraphStore(int64_t byte_budget = 0);
  GraphStore(const GraphStore&) = delete;
  GraphStore& operator=(const GraphStore&) = delete;

  /// Fingerprints `graph` and either adopts it (first submission) or
  /// returns the already-resident copy with the same content. Either way
  /// the graph becomes most-recently-used; an insert that pushes the
  /// store past its budget evicts least-recently-used unpinned graphs
  /// (never the one just interned — it is the most recent).
  StoredGraph Intern(Graph graph);

  /// The resident graph with this fingerprint (marked most-recently-used)
  /// or nullptr.
  std::shared_ptr<const Graph> Find(uint64_t fingerprint) const;

  /// Sparse difference between two resident graphs, computed over their
  /// canonical sorted edge tables (graph/delta.h) — the submission-time
  /// hook for callers tracking graph revisions. NotFound when either
  /// fingerprint is not resident; both graphs count as used (recency).
  Result<GraphDelta> DeltaBetween(uint64_t base_fingerprint,
                                  uint64_t next_fingerprint) const;

  /// Drops a resident graph (outstanding shared_ptrs stay valid), pinned
  /// or not — Erase is the explicit admin override, not the budget path.
  /// Returns false when the fingerprint is unknown.
  bool Erase(uint64_t fingerprint);

  /// In-flight refcount: while a fingerprint holds pins the budget never
  /// evicts it. No-op when the fingerprint is not resident. Balance every
  /// Pin with one Unpin.
  void Pin(uint64_t fingerprint);
  void Unpin(uint64_t fingerprint);

  /// Changes the budget (<= 0 = unlimited) and trims immediately.
  void set_byte_budget(int64_t byte_budget);

  /// All resident graphs, least-recently-used first and without touching
  /// recency — the snapshot writer's enumeration order (restoring by
  /// re-Intern in sequence reproduces the same LRU order).
  std::vector<StoredGraph> ResidentGraphs() const;

  /// One coherent readout of every counter, taken under a single lock
  /// acquisition — the unit a multi-shard rollup sums, so aggregated
  /// stats can't tear mid-read. stats() is an alias.
  Stats StatsSnapshot() const;
  Stats stats() const { return StatsSnapshot(); }

  /// Registers this store's stats as callback gauges and its operation
  /// latency histograms (intern/find/evict, populated only while
  /// set_metrics_timing(true)) under `<prefix>.<name>`. The caller owns
  /// unregistration via the `owner` cookie.
  void RegisterMetrics(obs::MetricRegistry& registry,
                       const std::string& prefix, const void* owner);

  /// Turns on latency recording for Intern/Find/eviction.
  void set_metrics_timing(bool on) {
    metrics_timing_.store(on, std::memory_order_relaxed);
  }

 private:
  struct Entry {
    std::shared_ptr<const Graph> graph;
    int64_t bytes = 0;
    int64_t pins = 0;
    std::list<uint64_t>::iterator lru_it;
  };

  /// Moves the entry to the MRU front. Precondition: mu_ held.
  void TouchLocked(Entry& entry) const;
  /// Evicts LRU-first unpinned entries until the budget holds (or only
  /// pinned / kept entries remain). `keep` exempts one fingerprint — the
  /// graph Intern is in the middle of handing back. Precondition: mu_
  /// held.
  void TrimLocked(std::optional<uint64_t> keep = std::nullopt);

  mutable std::mutex mu_;
  int64_t byte_budget_;
  // Logically-const bookkeeping: Find() refreshes recency.
  mutable std::list<uint64_t> lru_;  // front = most recently used
  mutable std::unordered_map<uint64_t, Entry> graphs_;
  int64_t resident_bytes_ = 0;
  int64_t inserts_ = 0;
  int64_t dedup_hits_ = 0;
  int64_t evictions_ = 0;

  std::atomic<bool> metrics_timing_{false};
  obs::LatencyHistogram intern_ns_;  ///< Intern latency (fingerprint + insert)
  mutable obs::LatencyHistogram find_ns_;  ///< Find latency
  obs::LatencyHistogram evict_ns_;   ///< per-Trim latency when it evicted
};

}  // namespace netbone

#endif  // NETBONE_SERVICE_GRAPH_STORE_H_
