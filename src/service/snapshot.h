// Copyright 2026 The netbone Authors.
//
// Crash-safe snapshot/restore of the serving state: the GraphStore's
// resident graphs plus every ScoreCache entry (ScoredEdges + ScoreOrder +
// SweepProfile, keyed by the run-stable (GraphFingerprint, method,
// ScoreOptions)) and the lineage map. A restarted engine that restores a
// snapshot serves the same requests bit-identically with zero rescores
// and zero sorts — the difference between a cache and a database
// (ROADMAP item 1).
//
// File format (all scalars little-endian; the header tags byte order):
//
//   FileHeader  { magic u64, version u32, reserved u32, endian u64 }
//   Section*    { type u32, reserved u32, payload_len u64,
//                 payload_hash u64, header_hash u64 } payload[payload_len]
//   ...the last section is a kFooter — the commit marker.
//
// Every section header carries two XXH64 digests: header_hash
// authenticates the header's own first 24 bytes (so a corrupted length
// cannot send the walk off the rails) and payload_hash authenticates the
// payload. Sections are self-delimiting, so restore is a linear walk that
// classifies each section independently:
//
//   * bad header hash / truncated header or payload -> the remaining
//     bytes cannot be located: quarantine and stop (salvage the prefix);
//   * bad payload hash or a decode failure -> quarantine this section
//     and continue with the next;
//   * a score entry whose graph section was quarantined -> quarantined
//     too (never served against a guessed graph);
//   * footer missing or wrong -> the snapshot was torn mid-publish:
//     everything salvaged so far is kept, committed=false is reported.
//
// Atomicity: WriteSnapshot writes `<path>.tmp`, fsyncs it, renames it
// over `path`, and fsyncs the directory — a crash at any point leaves
// either the old snapshot or the new one, never a mix. The
// kSnapshotWriteFailure / kSnapshotShortRead / kSnapshotRenameKill fault
// sites let the chaos harness exercise mid-write kills and short reads
// deterministically.

#ifndef NETBONE_SERVICE_SNAPSHOT_H_
#define NETBONE_SERVICE_SNAPSHOT_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "common/result.h"
#include "service/graph_store.h"
#include "service/score_cache.h"

namespace netbone {

/// The snapshot file a directory holds (a single well-known name: the
/// atomic-rename protocol needs a fixed target).
std::string SnapshotFilePath(const std::string& snapshot_dir);

/// What a completed write put on disk.
struct SnapshotWriteStats {
  int64_t graphs = 0;         ///< graph sections written
  int64_t entries = 0;        ///< score-entry sections written
  int64_t lineage = 0;        ///< lineage sections written
  int64_t bytes = 0;          ///< total file size
};

/// Serializes `store` + `cache` to `path` via the temp-file + fsync +
/// rename protocol. On any failure (including injected ones) the previous
/// snapshot at `path` is untouched. IOError for filesystem failures.
Result<SnapshotWriteStats> WriteSnapshot(const std::string& path,
                                         const GraphStore& store,
                                         const ScoreCache& cache);

/// What a restore salvaged, and what it had to quarantine.
struct SnapshotRestoreReport {
  int64_t graphs_restored = 0;
  int64_t entries_restored = 0;
  int64_t lineage_restored = 0;
  int64_t sections_quarantined = 0;
  /// True when the commit footer was present and consistent; false means
  /// the file was torn and only an intact prefix was salvaged.
  bool committed = false;
  /// The first per-section failure encountered (OK when none) — kept for
  /// operator visibility; quarantined sections never fail the restore.
  Status first_error;
};

/// Restores a snapshot into `store` and `cache`, salvaging every intact
/// section and quarantining the rest (see the format notes above). Hard
/// failures — the only ones that return a non-OK Result — are a missing
/// file (NotFound), an unreadable file (IOError), a file too short to
/// hold a header or with a wrong magic (Corruption), and a version or
/// endianness mismatch (NotSupported). Everything else is a salvage:
/// the Result is OK and the report says what was kept.
Result<SnapshotRestoreReport> RestoreSnapshot(const std::string& path,
                                              GraphStore* store,
                                              ScoreCache* cache);

/// Serializes just the state belonging to `fingerprints` — their resident
/// graphs, every cached score keyed on them (with non-resident entry
/// graphs riding along), and their lineage records — as an in-memory
/// snapshot image (identical framing and checksums to the file format).
/// This is the shard-migration transport: the bytes that move a hot
/// fingerprint family between engine shards. `stats` (optional) reports
/// what was encoded.
std::string EncodeFingerprintState(const GraphStore& store,
                                   const ScoreCache& cache,
                                   std::span<const uint64_t> fingerprints,
                                   SnapshotWriteStats* stats = nullptr);

/// Decodes an EncodeFingerprintState image into `store` + `cache`
/// (graphs re-Interned, entries re-Put, lineage re-registered). Strict,
/// unlike file restore: a blob that does not decode cleanly and
/// completely — any quarantined section, any missing footer — is an
/// error, because the caller still holds the source state and must
/// abandon the migration rather than import half a family.
Result<SnapshotRestoreReport> DecodeFingerprintState(std::string_view image,
                                                     GraphStore* store,
                                                     ScoreCache* cache);

}  // namespace netbone

#endif  // NETBONE_SERVICE_SNAPSHOT_H_
