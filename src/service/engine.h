// Copyright 2026 The netbone Authors.
//
// The serving front door: a long-lived BackboneEngine that turns the
// library's score-once / threshold-many workflow (Coscia & Neffke, ICDE
// 2017) into a request pipeline. Clients intern graphs once (AddGraph,
// content-addressed via service/graph_store.h), then issue typed
// BackboneRequests; the engine amortizes the expensive inference step —
// scoring + the one sort + the one sweep pass — across every request that
// shares a (graph, method, options) key (service/score_cache.h).
//
// Request lifecycle:
//   1. resolve the graph fingerprint against the GraphStore;
//   2. resolve the ScoreKey against the ScoreCache; on a miss, register
//      the key in the in-flight table and score on the shared pool
//      (common/parallel.h) — concurrent identical requests coalesce onto
//      the one computation instead of scoring twice. Graphs registered as
//      revisions (AddGraphRevision) take a third road between "cache" and
//      "recompute": *patch* — a warm ancestor entry is diffed against the
//      new graph and only the affected edges are rescored, the score
//      order merged without a global sort (core/delta_rescore.h);
//   3. answer the request from the cached artifact chain: extraction
//      kinds are an O(E) prefix-mask walk, coverage points are O(1) reads
//      of the sweep profile, zero rescoring and zero sorts when warm.
//
// Warm-path contract (pinned by tests/service_test.cc and
// bench/bench_serving_engine.cc): requests on a cached key advance
// ScoreOrder::SortsPerformed() by exactly zero, and every response is
// bit-identical to the uncached RunMethod + TopK/TopShare/FilterByScore +
// CoverageOfMask path at every thread count.
//
// Failures are remembered too (negative caching): a scoring failure is
// recorded against its key with a TTL, so a client that hammers a bad
// (graph, method, options) combination gets the same error back without
// re-running the scoring every time. Entries expire after
// BackboneEngineOptions::negative_ttl or on ClearNegativeCache();
// successes never consult the negative table.
//
// Concurrency invariant (deadlock freedom): in-flight score futures are
// only ever *waited on* from caller context — Execute, the post-fan-out
// join in ExecuteBatch, or the async dispatcher thread — never from
// inside a work-stealing task. Tasks may *start* scorings (ExecuteBatch
// phase 1 resolves distinct cold keys as concurrent tasks, each scoring
// with full inner parallelism via nested spawns); a task that finds its
// key already in flight records the future for the caller to await after
// the task group joins, instead of blocking a worker on it. Tasks
// therefore always run to completion without blocking on other requests
// (common/parallel.h blocking rules).

#ifndef NETBONE_SERVICE_ENGINE_H_
#define NETBONE_SERVICE_ENGINE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "core/registry.h"
#include "graph/graph.h"
#include "service/graph_store.h"
#include "service/score_cache.h"

namespace netbone {

/// What a BackboneRequest asks the engine to compute.
enum class RequestKind {
  /// Backbone keeping the k highest-scoring edges (TopK semantics).
  kTopK,
  /// Backbone keeping round(share * |E|) edges (TopShare semantics).
  kTopShare,
  /// Backbone keeping edges with score strictly above `threshold`
  /// (FilterByScore semantics).
  kScoreThreshold,
  /// The Doubly Stochastic stopping rule (GrowUntilConnected semantics).
  kGrowUntilConnected,
  /// Coverage / kept-weight share over a whole share grid plus the
  /// connect index — the full sweep profile, O(1) per point when warm.
  kSweep,
  /// Coverage + kept-weight share at one retention share; no edge list is
  /// materialized, making this the cheapest warm request (pure profile
  /// reads).
  kCoveragePoint,
  /// Stability (Spearman of consecutive-snapshot weights, Sec. V-F) of
  /// the share-backbone of `graph` against `next_graph`.
  kStabilityPoint,
};

/// A typed request against an interned graph.
struct BackboneRequest {
  /// Fingerprint of a graph previously interned with AddGraph.
  uint64_t graph = 0;
  /// Scoring method; with `score_options` this selects the cache entry.
  Method method = Method::kNoiseCorrected;
  ScoreOptions score_options;

  RequestKind kind = RequestKind::kTopShare;
  int64_t k = 0;            ///< kTopK
  double share = 0.0;       ///< kTopShare / kCoveragePoint / kStabilityPoint
  double threshold = 0.0;   ///< kScoreThreshold
  std::vector<double> shares;  ///< kSweep grid
  uint64_t next_graph = 0;  ///< kStabilityPoint: the t+1 snapshot

  /// When false, extraction kinds skip materializing `kept_edges`
  /// (coverage/weight bookkeeping is still filled).
  bool include_edges = true;
};

/// One sweep-grid point of a kSweep response.
struct SweepPoint {
  int64_t k = 0;            ///< edge budget at this share
  double coverage = 0.0;    ///< Coverage at the prefix
  double weight_share = 0.0;  ///< share of total weight retained

  friend bool operator==(const SweepPoint&, const SweepPoint&) = default;
};

/// Typed response; which fields are meaningful depends on the request
/// kind. Values are deterministic: bit-identical for every engine thread
/// count and to the equivalent uncached library calls.
struct BackboneResponse {
  /// Extraction kinds: retained edge ids, ascending (empty when
  /// include_edges was false).
  std::vector<EdgeId> kept_edges;
  /// Extraction kinds + kCoveragePoint/kStabilityPoint: retained count.
  int64_t kept = 0;
  /// Coverage of the result backbone (0 when the graph has no
  /// non-isolated node). Filled for extraction kinds and kCoveragePoint.
  double coverage = 0.0;
  /// Kept-weight share of the result backbone (same kinds as coverage).
  double weight_share = 0.0;
  /// kSweep: one point per requested share.
  std::vector<SweepPoint> sweep;
  /// kSweep: the GrowUntilConnected stopping index of the full order.
  int64_t connect_k = 0;
  /// kStabilityPoint: the Spearman stability value.
  double stability = 0.0;
  /// True when the score was already resident in the ScoreCache when the
  /// request executed — the warm path. False when the request triggered,
  /// or waited on (coalesced with), a fresh computation.
  bool cache_hit = false;
};

/// Options for BackboneEngine.
struct BackboneEngineOptions {
  /// ScoreCache byte budget (<= 0 = unlimited).
  int64_t cache_byte_budget = int64_t{256} << 20;
  /// GraphStore byte budget (<= 0 = unlimited): under it, the least-
  /// recently-used graphs are evicted — except graphs pinned by an
  /// in-flight scoring — so multi-tenant churn cannot grow residency
  /// without bound. Requests on an evicted fingerprint return NotFound
  /// until the graph is re-interned.
  int64_t graph_byte_budget = 0;
  /// Worker threads for scoring and batch fan-out (0 = hardware
  /// concurrency). Responses are bit-identical for every value.
  int num_threads = 0;
  /// How long a scoring failure is remembered per key before the engine
  /// re-attempts it (negative caching). <= 0 disables: every request on
  /// a failing key re-runs the scoring, the pre-PR-4 behavior.
  std::chrono::milliseconds negative_ttl = std::chrono::seconds(30);
  /// When true (the default), a cold key whose graph was registered as a
  /// revision of an ancestor (AddGraphRevision) and whose method supports
  /// incremental rescoring (core/delta_rescore.h) is *patched* from the
  /// warm ancestor entry — scoring only the affected edges and merging
  /// the score order with zero global sorts — instead of fully rescored.
  /// Responses are bit-identical either way; false forces the full path.
  bool enable_delta_rescore = true;
  /// Block size for the delta path's dirty-edge rescoring
  /// (DeltaRescoreOptions::grain).
  int64_t delta_grain = 32;
};

/// Long-lived serving engine: graph residency + score cache + request
/// execution, safe for concurrent use from any number of threads.
class BackboneEngine {
 public:
  using Options = BackboneEngineOptions;

  struct Stats {
    int64_t requests = 0;          ///< requests executed (all kinds)
    int64_t scores_computed = 0;   ///< RunMethod invocations
    int64_t coalesced_waits = 0;   ///< requests that waited on an in-flight score
    int64_t submitted_batches = 0;  ///< Submit() calls accepted
    int64_t negative_hits = 0;     ///< failures answered from the negative cache
    int64_t negative_entries = 0;  ///< live negative-cache entries
    int64_t delta_rescores = 0;    ///< cold keys answered by patching an ancestor
    int64_t delta_fallbacks = 0;   ///< warm ancestor found but patch not applicable
    GraphStore::Stats graphs;
    ScoreCache::Stats cache;
  };

  explicit BackboneEngine(const Options& options = {});
  ~BackboneEngine();

  BackboneEngine(const BackboneEngine&) = delete;
  BackboneEngine& operator=(const BackboneEngine&) = delete;

  /// Interns a graph (content-addressed dedup) and returns the
  /// fingerprint to cite in requests.
  uint64_t AddGraph(Graph graph);

  /// Interns like AddGraph and additionally records `base_fingerprint`
  /// (a previously-interned graph this one revises — the next noisy
  /// observation of the same network) as the graph's lineage parent in
  /// the ScoreCache. A later cold request on the new fingerprint then
  /// resolves a warm ancestor along the lineage chain and patches its
  /// artifacts instead of rescoring the world (see
  /// BackboneEngineOptions::enable_delta_rescore). base_fingerprint == 0
  /// — or a graph that dedupes to its own base — degrades to plain
  /// AddGraph.
  uint64_t AddGraphRevision(Graph graph, uint64_t base_fingerprint);

  /// The resident graph for a fingerprint, or nullptr.
  std::shared_ptr<const Graph> FindGraph(uint64_t fingerprint) const;

  /// Executes one request synchronously on the calling thread (scoring
  /// runs on the shared pool). May block on an identical in-flight
  /// request instead of recomputing.
  Result<BackboneResponse> Execute(const BackboneRequest& request);

  /// Executes a batch: distinct score keys are resolved first as
  /// concurrent work-stealing tasks, capped at options.num_threads
  /// runners (each key computed once — in-batch and cross-execution
  /// coalescing still hold — with full inner parallelism via nested
  /// spawns), then the per-request extraction work is distributed over
  /// the pool. Results align with `requests` and are bit-identical to
  /// executing each request alone.
  std::vector<Result<BackboneResponse>> ExecuteBatch(
      std::span<const BackboneRequest> requests);

  /// Queues a batch for the dispatcher thread and returns immediately.
  /// Batches execute FIFO; the future delivers the same results
  /// ExecuteBatch would.
  std::future<std::vector<Result<BackboneResponse>>> Submit(
      std::vector<BackboneRequest> requests);

  /// Forgets all remembered scoring failures at once: the next request
  /// on a previously-failing key re-attempts it. For operators that
  /// fixed an environmental cause.
  void ClearNegativeCache();

  Stats stats() const;

 private:
  using ScoreResult = Result<std::shared_ptr<const CachedScore>>;

  /// The non-blocking half of score resolution: positive cache, negative
  /// cache, then either computes the score itself (registering the key
  /// in-flight; the graph stays pinned in the store for the duration) or
  /// — when another request already has the key in flight — returns
  /// nullopt with *pending set to that computation's future. Never waits
  /// on another request's work, so it is safe both from caller context
  /// and from inside a work-stealing task (the ExecuteBatch fan-out).
  /// The *caller* awaits `pending`, from caller context only.
  std::optional<ScoreResult> StartOrJoinScore(
      const ScoreKey& key, const std::shared_ptr<const Graph>& graph,
      bool* cache_hit, std::shared_future<ScoreResult>* pending);

  /// Cache lookup + in-flight coalescing + scoring. Caller context only
  /// (may block on an in-flight future). Sets *cache_hit when the score
  /// was already resident (warm path — no computation triggered or
  /// awaited).
  ScoreResult GetOrComputeScore(const ScoreKey& key,
                                const std::shared_ptr<const Graph>& graph,
                                bool* cache_hit);

  /// Records a scoring failure in the negative cache. Precondition:
  /// score_mu_ held and negative caching enabled.
  void RememberFailureLocked(const ScoreKey& key, const Status& status);

  /// The incremental fast path for a cold key: walks the cache's lineage
  /// map (bounded hops) for a warm ancestor entry of the same (method,
  /// options), diffs the ancestor's graph against `graph`, and patches
  /// scores + order + profile (core/delta_rescore.h, zero global sorts).
  /// Returns nullptr when not applicable — no lineage, no warm ancestor,
  /// a non-incremental method or delta — and the caller runs the full
  /// rescore. Never blocks on other requests' work.
  std::shared_ptr<const CachedScore> TryDeltaRescore(
      const ScoreKey& key, const std::shared_ptr<const Graph>& graph);

  /// Pure response assembly from a resolved score; never blocks.
  Result<BackboneResponse> BuildResponse(const BackboneRequest& request,
                                         const CachedScore& score,
                                         bool cache_hit) const;

  void DispatcherLoop();

  const Options options_;
  GraphStore graphs_;
  ScoreCache cache_;

  /// Guards the cache-lookup + in-flight-registration window so exactly
  /// one computation per key can be live, plus the negative cache
  /// (mutable: stats() reads the entry count).
  mutable std::mutex score_mu_;
  std::unordered_map<ScoreKey, std::shared_future<ScoreResult>, ScoreKeyHash>
      inflight_;

  /// Remembered scoring failures, keyed like the positive cache. An entry
  /// answers only while its expiry is in the future (ClearNegativeCache
  /// empties the table outright); expired entries are dropped lazily on
  /// lookup and wholesale when the table hits its capacity bound.
  struct NegativeEntry {
    Status status;
    std::chrono::steady_clock::time_point expiry;
  };
  std::unordered_map<ScoreKey, NegativeEntry, ScoreKeyHash> negative_;

  std::atomic<int64_t> requests_{0};
  std::atomic<int64_t> scores_computed_{0};
  std::atomic<int64_t> coalesced_waits_{0};
  std::atomic<int64_t> submitted_batches_{0};
  std::atomic<int64_t> negative_hits_{0};
  std::atomic<int64_t> delta_rescores_{0};
  std::atomic<int64_t> delta_fallbacks_{0};

  struct PendingBatch {
    std::vector<BackboneRequest> requests;
    std::promise<std::vector<Result<BackboneResponse>>> promise;
  };
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<PendingBatch> queue_;
  bool shutdown_ = false;
  std::thread dispatcher_;
};

}  // namespace netbone

#endif  // NETBONE_SERVICE_ENGINE_H_
