// Copyright 2026 The netbone Authors.
//
// The serving front door: a long-lived BackboneEngine that turns the
// library's score-once / threshold-many workflow (Coscia & Neffke, ICDE
// 2017) into a request pipeline. Clients intern graphs once (AddGraph,
// content-addressed via service/graph_store.h), then issue typed
// BackboneRequests; the engine amortizes the expensive inference step —
// scoring + the one sort + the one sweep pass — across every request that
// shares a (graph, method, options) key (service/score_cache.h).
//
// Request lifecycle:
//   1. resolve the graph fingerprint against the GraphStore;
//   2. resolve the ScoreKey against the ScoreCache; on a miss, register
//      the key in the in-flight table and score on the shared pool
//      (common/parallel.h) — concurrent identical requests coalesce onto
//      the one computation instead of scoring twice. Graphs registered as
//      revisions (AddGraphRevision) take a third road between "cache" and
//      "recompute": *patch* — a warm ancestor entry is diffed against the
//      new graph and only the affected edges are rescored, the score
//      order merged without a global sort (core/delta_rescore.h);
//   3. answer the request from the cached artifact chain: extraction
//      kinds are an O(E) prefix-mask walk, coverage points are O(1) reads
//      of the sweep profile, zero rescoring and zero sorts when warm.
//
// Warm-path contract (pinned by tests/service_test.cc and
// bench/bench_serving_engine.cc): requests on a cached key advance
// ScoreOrder::SortsPerformed() by exactly zero, and every response is
// bit-identical to the uncached RunMethod + TopK/TopShare/FilterByScore +
// CoverageOfMask path at every thread count.
//
// Failures are remembered too (negative caching): a scoring failure is
// recorded against its key with a TTL, so a client that hammers a bad
// (graph, method, options) combination gets the same error back without
// re-running the scoring every time. Entries expire after
// BackboneEngineOptions::negative_ttl or on ClearNegativeCache();
// successes never consult the negative table.
//
// Concurrency invariant (deadlock freedom): in-flight score futures are
// only ever *waited on* from caller context — Execute, the post-fan-out
// join in ExecuteBatch, or the async dispatcher thread — never from
// inside a work-stealing task. Tasks may *start* scorings (ExecuteBatch
// phase 1 resolves distinct cold keys as concurrent tasks, each scoring
// with full inner parallelism via nested spawns); a task that finds its
// key already in flight records the future for the caller to await after
// the task group joins, instead of blocking a worker on it. Tasks
// therefore always run to completion without blocking on other requests
// (common/parallel.h blocking rules).
//
// Failure semantics (the fault-tolerance layer):
//  * Deadlines + cancellation: BackboneRequest::timeout arms a deadline
//    at Execute / ExecuteBatch / Submit entry; together with the
//    request's own CancelToken and the engine's shutdown token it forms
//    the token the scoring loops poll at chunk granularity
//    (common/cancel.h). A request past its budget returns a typed
//    kDeadlineExceeded / kCancelled and the scoring stops burning cores
//    at the next check. Deadlines bound *work*, not delivery: a batch
//    request whose key finishes scoring under a sibling's longer
//    deadline still receives the (exact, bit-identical) result.
//  * Retry: transient scoring failures (kUnavailable, kIOError) are
//    retried up to max_retries with exponential backoff and
//    deterministic jitter (a Mix64 hash of key and attempt — reruns of
//    the same workload back off identically). Cancellation-shaped
//    failures are never retried and never negative-cached.
//  * Admission control: the Submit queue is bounded (max_queued_batches;
//    reject-new or shed-oldest under overload) and cold scorings are
//    bounded (max_inflight_scores) — overload answers kResourceExhausted
//    / kUnavailable instead of growing queues without bound.
//  * Degradation: a request that opts in via allow_degraded and misses
//    its budget may be answered from a warm lineage ancestor's entry
//    (stale but exact-for-the-ancestor) or, for HSS, a seeded sampled
//    approximation — always flagged degraded=true with provenance, and
//    the exact result is scheduled in the background. Nothing silently
//    approximates: every unflagged response keeps the bit-identity
//    contract above.
//  * Shutdown: the destructor stops the dispatcher, *cancels* queued
//    batches (futures resolve with kUnavailable, never dangle) and fires
//    the engine-wide cancel token so in-flight scorings abort before the
//    caches are torn down.
// All of this is exercised deterministically by the seeded
// fault-injection harness (service/fault_injection.h) and the chaos
// bench (bench/bench_fault_tolerance.cc).

#ifndef NETBONE_SERVICE_ENGINE_H_
#define NETBONE_SERVICE_ENGINE_H_

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/cancel.h"
#include "common/result.h"
#include "core/registry.h"
#include "graph/graph.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/graph_store.h"
#include "service/score_cache.h"
#include "service/snapshot.h"

namespace netbone {

/// What a BackboneRequest asks the engine to compute.
enum class RequestKind {
  /// Backbone keeping the k highest-scoring edges (TopK semantics).
  kTopK,
  /// Backbone keeping round(share * |E|) edges (TopShare semantics).
  kTopShare,
  /// Backbone keeping edges with score strictly above `threshold`
  /// (FilterByScore semantics).
  kScoreThreshold,
  /// The Doubly Stochastic stopping rule (GrowUntilConnected semantics).
  kGrowUntilConnected,
  /// Coverage / kept-weight share over a whole share grid plus the
  /// connect index — the full sweep profile, O(1) per point when warm.
  kSweep,
  /// Coverage + kept-weight share at one retention share; no edge list is
  /// materialized, making this the cheapest warm request (pure profile
  /// reads).
  kCoveragePoint,
  /// Stability (Spearman of consecutive-snapshot weights, Sec. V-F) of
  /// the share-backbone of `graph` against `next_graph`.
  kStabilityPoint,
};
inline constexpr int kNumRequestKinds = 7;

/// Stable short name for a request kind (metric names, trace labels).
const char* RequestKindName(RequestKind kind);

/// A typed request against an interned graph.
struct BackboneRequest {
  /// Fingerprint of a graph previously interned with AddGraph.
  uint64_t graph = 0;
  /// Scoring method; with `score_options` this selects the cache entry.
  Method method = Method::kNoiseCorrected;
  ScoreOptions score_options;

  RequestKind kind = RequestKind::kTopShare;
  int64_t k = 0;            ///< kTopK
  double share = 0.0;       ///< kTopShare / kCoveragePoint / kStabilityPoint
  double threshold = 0.0;   ///< kScoreThreshold
  std::vector<double> shares;  ///< kSweep grid
  uint64_t next_graph = 0;  ///< kStabilityPoint: the t+1 snapshot

  /// When false, extraction kinds skip materializing `kept_edges`
  /// (coverage/weight bookkeeping is still filled).
  bool include_edges = true;

  /// Soft deadline: > 0 arms a deadline of now + timeout when the
  /// request enters the engine (Execute / ExecuteBatch call time; Submit
  /// time for async batches, so queueing delay counts against the
  /// budget). Past the deadline the request returns kDeadlineExceeded
  /// and its scoring stops at the next chunk-granularity check. 0 = no
  /// deadline.
  std::chrono::milliseconds timeout{0};

  /// Optional caller-held cancellation (CancelSource::token()). Honoured
  /// like the deadline in Execute; in batches it pre-empts the request's
  /// own response but does not abort a scoring shared with siblings.
  CancelToken cancel;

  /// Opt-in graceful degradation: when the exact path misses its budget
  /// (deadline/cancel) or fails transiently, the engine may answer from
  /// a warm lineage ancestor's entry or (HSS, Execute only) a seeded
  /// sampled approximation — flagged degraded=true, with the exact
  /// result scheduled in the background. Never changes an unflagged
  /// response.
  bool allow_degraded = false;
};

/// One sweep-grid point of a kSweep response.
struct SweepPoint {
  int64_t k = 0;            ///< edge budget at this share
  double coverage = 0.0;    ///< Coverage at the prefix
  double weight_share = 0.0;  ///< share of total weight retained

  friend bool operator==(const SweepPoint&, const SweepPoint&) = default;
};

/// Typed response; which fields are meaningful depends on the request
/// kind. Values are deterministic: bit-identical for every engine thread
/// count and to the equivalent uncached library calls.
struct BackboneResponse {
  /// Extraction kinds: retained edge ids, ascending (empty when
  /// include_edges was false).
  std::vector<EdgeId> kept_edges;
  /// Extraction kinds + kCoveragePoint/kStabilityPoint: retained count.
  int64_t kept = 0;
  /// Coverage of the result backbone (0 when the graph has no
  /// non-isolated node). Filled for extraction kinds and kCoveragePoint.
  double coverage = 0.0;
  /// Kept-weight share of the result backbone (same kinds as coverage).
  double weight_share = 0.0;
  /// kSweep: one point per requested share.
  std::vector<SweepPoint> sweep;
  /// kSweep: the GrowUntilConnected stopping index of the full order.
  int64_t connect_k = 0;
  /// kStabilityPoint: the Spearman stability value.
  double stability = 0.0;
  /// True when the score was already resident in the ScoreCache when the
  /// request executed — the warm path. False when the request triggered,
  /// or waited on (coalesced with), a fresh computation.
  bool cache_hit = false;

  /// True when this response was served by a degraded path (stale warm
  /// ancestor or sampled-HSS approximation) after the exact path missed
  /// its budget; see BackboneRequest::allow_degraded. A degraded
  /// response is exact *for the artifacts that served it* — it is never
  /// a silently perturbed version of the exact answer.
  bool degraded = false;
  /// Degraded responses: fingerprint of the graph whose cached artifacts
  /// served the answer (the warm ancestor; the request's own graph for
  /// the sampled-HSS path). 0 otherwise.
  uint64_t degraded_from = 0;
};

/// What Submit does when its bounded queue is full.
enum class OverloadPolicy {
  /// Fail the incoming batch with kResourceExhausted; queued work keeps
  /// its place (favours earlier clients — predictable under ramp load).
  kRejectNew,
  /// Fail the *oldest* queued batch with kUnavailable and enqueue the
  /// incoming one (favours fresh requests — the oldest batch is the most
  /// likely to be past its caller's patience anyway).
  kShedOldest,
};

/// Options for BackboneEngine.
struct BackboneEngineOptions {
  /// ScoreCache byte budget (<= 0 = unlimited).
  int64_t cache_byte_budget = int64_t{256} << 20;
  /// GraphStore byte budget (<= 0 = unlimited): under it, the least-
  /// recently-used graphs are evicted — except graphs pinned by an
  /// in-flight scoring — so multi-tenant churn cannot grow residency
  /// without bound. Requests on an evicted fingerprint return NotFound
  /// until the graph is re-interned.
  int64_t graph_byte_budget = 0;
  /// Worker threads for scoring and batch fan-out (0 = hardware
  /// concurrency). Responses are bit-identical for every value.
  int num_threads = 0;
  /// How long a scoring failure is remembered per key before the engine
  /// re-attempts it (negative caching). <= 0 disables: every request on
  /// a failing key re-runs the scoring, the pre-PR-4 behavior.
  std::chrono::milliseconds negative_ttl = std::chrono::seconds(30);
  /// When true (the default), a cold key whose graph was registered as a
  /// revision of an ancestor (AddGraphRevision) and whose method supports
  /// incremental rescoring (core/delta_rescore.h) is *patched* from the
  /// warm ancestor entry — scoring only the affected edges and merging
  /// the score order with zero global sorts — instead of fully rescored.
  /// Responses are bit-identical either way; false forces the full path.
  bool enable_delta_rescore = true;
  /// Block size for the delta path's dirty-edge rescoring
  /// (DeltaRescoreOptions::grain).
  int64_t delta_grain = 32;

  /// Retries for transiently-failed cold scorings (kUnavailable /
  /// kIOError): up to this many re-attempts after the first failure.
  /// 0 disables retry. Cancellation-shaped failures never retry.
  int max_retries = 3;
  /// Base of the exponential backoff between retries: attempt k sleeps
  /// ~retry_backoff * 2^k, capped at retry_backoff_max, scaled by a
  /// deterministic jitter in [0.5, 1.0) derived from (key, attempt) —
  /// identical workloads back off identically, distinct keys decorrelate.
  /// The sleep is deadline-aware (it never outlives the request budget).
  std::chrono::milliseconds retry_backoff{1};
  std::chrono::milliseconds retry_backoff_max{50};

  /// Bound on queued Submit batches (admission control). 0 = unbounded
  /// (the pre-PR-6 behavior). When full, `overload_policy` decides.
  int64_t max_queued_batches = 0;
  OverloadPolicy overload_policy = OverloadPolicy::kRejectNew;

  /// Bound on concurrently in-flight cold scorings. A request whose key
  /// is warm, negative-cached or already in flight is unaffected; one
  /// that would *start* a new scoring past the bound returns
  /// kResourceExhausted instead (never negative-cached). 0 = unlimited.
  int64_t max_inflight_scores = 0;

  /// Source-sample size for the degraded sampled-HSS fallback
  /// (BackboneRequest::allow_degraded); <= 0 disables that fallback.
  int64_t degraded_hss_sample = 64;

  /// Directory for crash-safe snapshots of the serving state
  /// (service/snapshot.h). Non-empty enables persistence: the
  /// constructor restores the snapshot found there (salvaging intact
  /// sections of a corrupted one and starting cold for the rest), and
  /// WriteSnapshotNow / the periodic + shutdown hooks below write new
  /// ones atomically. Empty (the default) disables all of it.
  std::string snapshot_dir;
  /// Write a final snapshot in the destructor, after the dispatcher has
  /// drained — a clean shutdown preserves the warm state.
  bool snapshot_on_shutdown = true;
  /// When > 0, the dispatcher thread also writes a snapshot roughly this
  /// often. Background snapshots carry no request deadline — they are
  /// maintenance, not serving work.
  std::chrono::milliseconds snapshot_interval{0};

  /// Observability (src/obs/). When true (the default) the engine
  /// registers its counters/gauges/histograms in its MetricRegistry and
  /// records per-kind / per-answer-path latency distributions. The cost
  /// is a few relaxed fetch_adds and two clock reads per request; false
  /// reduces instrumentation to the legacy Stats counters alone.
  bool enable_metrics = true;
  /// Trace sampling: 0 (default) disables per-request traces entirely
  /// (no ring allocated, one predictable branch per request); 1 traces
  /// every request; N traces every Nth. Sampled requests additionally
  /// pay one clock read per span boundary.
  int64_t trace_sample_rate = 0;
  /// Byte budget for the trace ring (rounded down to whole slots).
  int64_t trace_buffer_bytes = int64_t{1} << 20;
};

/// Long-lived serving engine: graph residency + score cache + request
/// execution, safe for concurrent use from any number of threads.
class BackboneEngine {
 public:
  using Options = BackboneEngineOptions;

  struct Stats {
    int64_t requests = 0;          ///< requests executed (all kinds)
    int64_t scores_computed = 0;   ///< RunMethod invocations
    int64_t coalesced_waits = 0;   ///< requests that waited on an in-flight score
    int64_t submitted_batches = 0;  ///< Submit() calls accepted
    int64_t negative_hits = 0;     ///< failures answered from the negative cache
    int64_t negative_entries = 0;  ///< live negative-cache entries
    int64_t delta_rescores = 0;    ///< cold keys answered by patching an ancestor
    int64_t delta_fallbacks = 0;   ///< warm ancestor found but patch not applicable

    /// Fault-tolerance counters (PR 6).
    int64_t queue_depth = 0;       ///< Submit batches currently queued
    int64_t shed_batches = 0;      ///< batches failed by shed-oldest overflow
    int64_t rejected_batches = 0;  ///< batches failed by reject-new overflow
    int64_t inflight_rejected = 0;  ///< scorings refused by max_inflight_scores
    int64_t deadline_hits = 0;     ///< requests whose exact path hit its deadline
    int64_t cancellations = 0;     ///< requests answered kCancelled
    int64_t retries = 0;           ///< transient-failure re-attempts
    int64_t negative_exempt = 0;   ///< failures exempted from negative caching
    int64_t degraded_served = 0;   ///< responses served by a degraded path
    int64_t background_refreshes = 0;  ///< exact recomputes queued by degradation

    /// Durability counters (PR 7). The restore fields describe the one
    /// restore attempt the constructor made; the write counters grow
    /// over the engine's lifetime.
    int64_t restored_graphs = 0;       ///< graphs re-interned from snapshot
    int64_t restored_entries = 0;      ///< score entries restored warm
    int64_t restored_lineage = 0;      ///< lineage records restored
    int64_t quarantined_sections = 0;  ///< snapshot sections refused
    int64_t snapshot_writes = 0;       ///< snapshots committed to disk
    int64_t snapshot_failures = 0;     ///< snapshot writes that failed
    int64_t snapshot_restore_errors = 0;  ///< restores that failed outright

    GraphStore::Stats graphs;
    ScoreCache::Stats cache;
  };

  explicit BackboneEngine(const Options& options = {});
  ~BackboneEngine();

  BackboneEngine(const BackboneEngine&) = delete;
  BackboneEngine& operator=(const BackboneEngine&) = delete;

  /// Interns a graph (content-addressed dedup) and returns the
  /// fingerprint to cite in requests.
  uint64_t AddGraph(Graph graph);

  /// Interns like AddGraph and additionally records `base_fingerprint`
  /// (a previously-interned graph this one revises — the next noisy
  /// observation of the same network) as the graph's lineage parent in
  /// the ScoreCache. A later cold request on the new fingerprint then
  /// resolves a warm ancestor along the lineage chain and patches its
  /// artifacts instead of rescoring the world (see
  /// BackboneEngineOptions::enable_delta_rescore). base_fingerprint == 0
  /// — or a graph that dedupes to its own base — degrades to plain
  /// AddGraph.
  uint64_t AddGraphRevision(Graph graph, uint64_t base_fingerprint);

  /// The resident graph for a fingerprint, or nullptr.
  std::shared_ptr<const Graph> FindGraph(uint64_t fingerprint) const;

  /// Executes one request synchronously on the calling thread (scoring
  /// runs on the shared pool). May block on an identical in-flight
  /// request instead of recomputing.
  Result<BackboneResponse> Execute(const BackboneRequest& request);

  /// Executes a batch: distinct score keys are resolved first as
  /// concurrent work-stealing tasks, capped at options.num_threads
  /// runners (each key computed once — in-batch and cross-execution
  /// coalescing still hold — with full inner parallelism via nested
  /// spawns), then the per-request extraction work is distributed over
  /// the pool. Results align with `requests` and are bit-identical to
  /// executing each request alone.
  std::vector<Result<BackboneResponse>> ExecuteBatch(
      std::span<const BackboneRequest> requests);

  /// Queues a batch for the dispatcher thread and returns immediately.
  /// Batches execute FIFO; the future delivers the same results
  /// ExecuteBatch would.
  std::future<std::vector<Result<BackboneResponse>>> Submit(
      std::vector<BackboneRequest> requests);

  /// Forgets all remembered scoring failures at once: the next request
  /// on a previously-failing key re-attempts it. For operators that
  /// fixed an environmental cause.
  void ClearNegativeCache();

  /// Writes a snapshot of the current serving state to
  /// options.snapshot_dir via the atomic temp-file + fsync + rename
  /// protocol (service/snapshot.h); on any failure the previous snapshot
  /// is untouched. FailedPrecondition when no snapshot_dir is
  /// configured. Safe from any thread; concurrent serving continues
  /// (the writer holds the store/cache locks only to enumerate).
  Status WriteSnapshotNow();

  // -------------------------------------------------------------------------
  // Shard-migration hooks (service/sharded_engine.h). A migration moves a
  // fingerprint *family* — graph, cached scores, lineage records — between
  // engines as a checksummed snapshot-format blob, so the receiving shard
  // serves it warm (zero rescores, zero sorts) exactly as a restore would.
  // -------------------------------------------------------------------------

  /// Fingerprints of graphs currently resident in this engine's store,
  /// least-recently-used first.
  std::vector<uint64_t> ResidentFingerprints() const;

  /// The lineage-connected family of `fingerprint`: every fingerprint
  /// reachable from it over the cache's lineage records (child <-> parent,
  /// both directions), itself included; sorted ascending. Migration moves
  /// whole families so the lineage-delta warm path keeps its ancestors on
  /// the same shard.
  std::vector<uint64_t> LineageFamily(uint64_t fingerprint) const;

  /// Serializes the state belonging to `fingerprints` (resident graphs,
  /// cached scores, lineage records) as an in-memory snapshot image —
  /// the migration transport. The source keeps everything; exporting
  /// never mutates.
  std::string ExportFingerprintState(
      std::span<const uint64_t> fingerprints) const;

  /// Imports a blob produced by ExportFingerprintState on another shard:
  /// graphs re-Intern, score entries re-Put (warm), lineage re-registers.
  /// Strict — a blob that does not decode cleanly is an error and nothing
  /// partial is kept by contract (the caller abandons the migration; the
  /// source still has the state).
  Result<SnapshotRestoreReport> ImportFingerprintState(std::string_view blob);

  /// Drops every trace of `fingerprints` from this engine: resident
  /// graphs, cached scores, lineage records, and negative-cache entries.
  /// The retirement half of a migration, called after the routing swap's
  /// grace period. Returns the number of graphs + score entries dropped.
  int64_t RetireFingerprints(std::span<const uint64_t> fingerprints);

  Stats stats() const;

  /// One consistent snapshot of every metric the engine registered:
  /// counters, gauges (queue depth, cache/store occupancy, fault-injection
  /// fire counts), and latency histograms per request kind and per answer
  /// path. Merge with obs::MetricRegistry::Global().Snapshot() for the
  /// process-wide scheduler metrics.
  obs::MetricsSnapshot Metrics() const { return registry_.Snapshot(); }

  /// The engine's own registry (for callers that want to add metrics or
  /// render alongside the engine's).
  obs::MetricRegistry& registry() const { return registry_; }

  /// The per-request trace ring (enabled() is false unless
  /// Options::trace_sample_rate > 0).
  const obs::TraceRecorder& tracer() const { return tracer_; }

 private:
  using ScoreResult = Result<std::shared_ptr<const CachedScore>>;

  /// Per-request resolve bookkeeping threaded through the score-resolution
  /// helpers: which roads the request took (for answer-path classification)
  /// and, when tracing is on, where the time went (span boundaries in
  /// tracer_ timebase; start < 0 = span never entered).
  struct ResolveInfo {
    bool cache_hit = false;      ///< positive cache answered
    bool negative_hit = false;   ///< negative cache answered (failure)
    bool delta_patched = false;  ///< answered by patching a warm ancestor
    bool coalesced = false;      ///< joined another request's computation
    int retries = 0;             ///< transient-failure re-attempts
    bool timed = false;          ///< span clocks on (tracer enabled)
    int64_t lookup_start_ns = -1;   ///< kCacheLookup
    int64_t lookup_ns = 0;
    int64_t lineage_start_ns = -1;  ///< kLineageWalk
    int64_t lineage_ns = 0;
    int64_t patch_start_ns = -1;    ///< kDeltaPatch
    int64_t patch_ns = 0;
    int64_t score_start_ns = -1;    ///< kColdScore
    int64_t score_ns = 0;
    int64_t extract_start_ns = -1;  ///< kExtract
    int64_t extract_ns = 0;
  };

  /// The non-blocking half of score resolution: positive cache, negative
  /// cache, then either computes the score itself (registering the key
  /// in-flight; the graph stays pinned in the store for the duration) or
  /// — when another request already has the key in flight — returns
  /// nullopt with *pending set to that computation's future. Never waits
  /// on another request's work, so it is safe both from caller context
  /// and from inside a work-stealing task (the ExecuteBatch fan-out).
  /// The *caller* awaits `pending`, from caller context only.
  std::optional<ScoreResult> StartOrJoinScore(
      const ScoreKey& key, const std::shared_ptr<const Graph>& graph,
      ResolveInfo* info, std::shared_future<ScoreResult>* pending,
      const CancelToken& cancel = {});

  /// Cache lookup + in-flight coalescing + scoring. Caller context only
  /// (may block on an in-flight future). Sets *cache_hit when the score
  /// was already resident (warm path — no computation triggered or
  /// awaited). The join honours `cancel`: a waiter whose budget lapses
  /// stops waiting (the shared computation keeps running for the
  /// others), and a waiter that inherits a *foreign* cancellation — the
  /// starter's budget died, not this caller's — re-enters the resolve
  /// loop and may become the starter itself.
  ScoreResult GetOrComputeScore(const ScoreKey& key,
                                const std::shared_ptr<const Graph>& graph,
                                ResolveInfo* info,
                                const CancelToken& cancel = {});

  /// The cold scoring itself, with the transient-failure retry loop and
  /// the scoring fault-injection sites. Runs in the in-flight window
  /// (the key is registered); never touches engine locks.
  ScoreResult ComputeScoreWithRetry(const ScoreKey& key,
                                    const std::shared_ptr<const Graph>& graph,
                                    const CancelToken& cancel,
                                    ResolveInfo* info);

  /// Records a scoring failure in the negative cache — unless the status
  /// is cancellation-shaped or an admission rejection, which say nothing
  /// about the key itself (the taxonomy split; such failures bump
  /// Stats::negative_exempt instead). Precondition: score_mu_ held and
  /// negative caching enabled.
  void RememberFailureLocked(const ScoreKey& key, const Status& status);

  /// The incremental fast path for a cold key: walks the cache's lineage
  /// map (bounded hops) for a warm ancestor entry of the same (method,
  /// options), diffs the ancestor's graph against `graph`, and patches
  /// scores + order + profile (core/delta_rescore.h, zero global sorts).
  /// Returns nullptr when not applicable — no lineage, no warm ancestor,
  /// a non-incremental method or delta — and the caller runs the full
  /// rescore. Never blocks on other requests' work.
  std::shared_ptr<const CachedScore> TryDeltaRescore(
      const ScoreKey& key, const std::shared_ptr<const Graph>& graph,
      const CancelToken& cancel, ResolveInfo* info);

  /// Pure response assembly from a resolved score; never blocks.
  Result<BackboneResponse> BuildResponse(const BackboneRequest& request,
                                         const CachedScore& score,
                                         bool cache_hit) const;

  /// A warm cache entry along `key`'s lineage chain (the same walk the
  /// delta path uses), plus its fingerprint. entry == nullptr when none.
  struct WarmAncestor {
    std::shared_ptr<const CachedScore> entry;
    uint64_t fingerprint = 0;
    std::shared_ptr<const GraphDelta> delta;  ///< set when direct parent
  };
  WarmAncestor FindWarmAncestor(const ScoreKey& key);

  /// The non-blocking degraded path: answer from a warm lineage
  /// ancestor's entry, flagged degraded, and queue the exact recompute.
  /// nullopt when no warm ancestor (or its assembly fails) — the caller
  /// falls back to the original error. Safe inside work-stealing tasks.
  std::optional<Result<BackboneResponse>> TryDegradedResponse(
      const BackboneRequest& request, const ScoreKey& key);

  /// The blocking degraded fallback for HSS without a warm ancestor:
  /// score a seeded source-sample (options_.degraded_hss_sample) under
  /// no deadline — sampling bounds the cost by construction — and flag
  /// the response. Execute-only (may block). nullopt when inapplicable.
  std::optional<Result<BackboneResponse>> TryDegradedSampledHss(
      const BackboneRequest& request,
      const std::shared_ptr<const Graph>& graph);

  /// Queues a background exact recompute of `request`'s key (stripped of
  /// deadline/cancel/degradation) after a degraded serve. Dropped when
  /// the queue is full or shutting down — degradation never sheds client
  /// work to make room for its own refresh.
  void ScheduleBackgroundRefresh(const BackboneRequest& request);

  /// Batch execution against per-request deadlines armed by the caller
  /// (Execute/ExecuteBatch arm at call time, Submit at submit time).
  /// `queue_wait_ns` is the batch's time in the Submit queue (0 for
  /// synchronous paths) — the admission span of every request's trace.
  std::vector<Result<BackboneResponse>> ExecuteBatchWithDeadlines(
      std::span<const BackboneRequest> requests,
      std::span<const std::chrono::steady_clock::time_point> deadlines,
      int64_t queue_wait_ns);

  void DispatcherLoop();

  /// tracer_ timebase now when any instrumentation wants a clock
  /// (metrics or tracing), else 0 — the one branch the uninstrumented
  /// hot path pays. The tracer's epoch is armed even at sample rate 0,
  /// so its timebase is always valid to read.
  int64_t MetricsNowNs() const {
    return options_.enable_metrics || tracer_.enabled() ? tracer_.NowNs()
                                                        : 0;
  }

  /// Which road ultimately answered, from the resolve bookkeeping.
  static obs::AnswerPath ClassifyPath(bool ok, bool degraded,
                                      const ResolveInfo& info);

  /// Terminal accounting for one request: records the per-kind and
  /// per-path latency histograms (when enable_metrics) and commits a
  /// trace span chain (when this request sampled). `begin_ns` is the
  /// request's dispatch time in tracer_ timebase (0 when tracing off);
  /// `deadline` as armed (time_point::max() = none).
  void RecordOutcome(const BackboneRequest& request, bool ok, bool degraded,
                     const ResolveInfo& info, int64_t begin_ns,
                     std::chrono::steady_clock::time_point deadline,
                     int64_t queue_wait_ns);

  /// Registers every engine metric (counters, gauges, per-kind/per-path
  /// histograms, cache/store/fault gauges) into registry_. Constructor
  /// only, before the dispatcher thread starts.
  void RegisterEngineMetrics();

  const Options options_;

  /// Declared before the caches and counters they reference: members are
  /// destroyed in reverse order, so the registry (non-owning pointers)
  /// outlives everything registered in it.
  mutable obs::MetricRegistry registry_;
  obs::TraceRecorder tracer_;

  GraphStore graphs_;
  ScoreCache cache_;

  /// Guards the cache-lookup + in-flight-registration window so exactly
  /// one computation per key can be live, plus the negative cache
  /// (mutable: stats() reads the entry count).
  mutable std::mutex score_mu_;
  std::unordered_map<ScoreKey, std::shared_future<ScoreResult>, ScoreKeyHash>
      inflight_;

  /// Remembered scoring failures, keyed like the positive cache. An entry
  /// answers only while its expiry is in the future (ClearNegativeCache
  /// empties the table outright); expired entries are dropped lazily on
  /// lookup and wholesale when the table hits its capacity bound.
  struct NegativeEntry {
    Status status;
    std::chrono::steady_clock::time_point expiry;
  };
  std::unordered_map<ScoreKey, NegativeEntry, ScoreKeyHash> negative_;

  /// Request-path counters: sharded relaxed-atomic (obs/metrics.h), so
  /// concurrent bumps never contend on a shared cache line. Exact; both
  /// stats() and the registry read the same instances.
  obs::ShardedCounter requests_;
  obs::ShardedCounter scores_computed_;
  obs::ShardedCounter coalesced_waits_;
  obs::ShardedCounter submitted_batches_;
  obs::ShardedCounter negative_hits_;
  obs::ShardedCounter delta_rescores_;
  obs::ShardedCounter delta_fallbacks_;
  obs::ShardedCounter shed_batches_;
  obs::ShardedCounter rejected_batches_;
  obs::ShardedCounter inflight_rejected_;
  obs::ShardedCounter deadline_hits_;
  obs::ShardedCounter cancellations_;
  obs::ShardedCounter retries_;
  obs::ShardedCounter negative_exempt_;
  obs::ShardedCounter degraded_served_;
  obs::ShardedCounter background_refreshes_;
  obs::ShardedCounter snapshot_writes_;
  obs::ShardedCounter snapshot_failures_;

  /// Latency distributions (populated when Options::enable_metrics).
  std::array<std::unique_ptr<obs::LatencyHistogram>, kNumRequestKinds>
      kind_latency_;
  std::array<std::unique_ptr<obs::LatencyHistogram>, obs::kNumAnswerPaths>
      path_latency_;
  obs::LatencyHistogram queue_wait_ns_;      ///< Submit -> dispatch
  obs::LatencyHistogram batch_execute_ns_;   ///< batch dispatch -> done
  obs::LatencyHistogram snapshot_write_ns_;
  obs::LatencyHistogram snapshot_restore_ns_;

  /// Ids for sampled traces (bumped only when a request samples).
  std::atomic<uint64_t> trace_ids_{0};

  /// Set once by the constructor's restore attempt, before any other
  /// thread exists; plain fields on purpose.
  int64_t restored_graphs_ = 0;
  int64_t restored_entries_ = 0;
  int64_t restored_lineage_ = 0;
  int64_t quarantined_sections_ = 0;
  int64_t snapshot_restore_errors_ = 0;

  /// Engine-wide shutdown token, chained as a parent into every
  /// request's cancel token: the destructor fires it so in-flight
  /// scorings abort before ScoreCache / GraphStore are torn down.
  CancelSource lifetime_;

  struct PendingBatch {
    std::vector<BackboneRequest> requests;
    /// Per-request deadlines armed at Submit time (queueing delay counts
    /// against the budget); time_point::max() = none.
    std::vector<std::chrono::steady_clock::time_point> deadlines;
    std::promise<std::vector<Result<BackboneResponse>>> promise;
    /// When the batch entered the queue — the dispatcher turns this into
    /// the queue-wait histogram and the traces' admission span.
    std::chrono::steady_clock::time_point enqueued;
  };
  mutable std::mutex queue_mu_;  // mutable: stats() reads queue depth
  std::condition_variable queue_cv_;
  std::deque<PendingBatch> queue_;
  bool shutdown_ = false;
  std::thread dispatcher_;
};

}  // namespace netbone

#endif  // NETBONE_SERVICE_ENGINE_H_
