#include "service/score_cache.h"

#include <chrono>
#include <utility>

#include "common/bytes.h"
#include "service/fault_injection.h"

namespace netbone {

void CachedScore::FinishBuild() {
  profile_ = BuildSweepProfile(*order_);
  PriceBytes();
}

void CachedScore::PriceBytes() {
  bytes_ = static_cast<int64_t>(sizeof(CachedScore)) +
           VectorBytes(scored_.scores()) +
           static_cast<int64_t>(order_->ids().size() * sizeof(EdgeId)) +
           VectorBytes(profile_.covered_nodes) +
           VectorBytes(profile_.kept_weight);
  if (provenance_.has_value()) {
    bytes_ += static_cast<int64_t>(sizeof(DeltaProvenance));
  }
}

std::shared_ptr<const CachedScore> CachedScore::Build(
    std::shared_ptr<const Graph> graph, ScoredEdges scored) {
  // Two-phase construction: the ScoreOrder keeps a pointer to the
  // ScoredEdges, so the table must reach its final heap address before
  // the order is built.
  std::shared_ptr<CachedScore> entry(new CachedScore());
  entry->graph_ = std::move(graph);
  entry->scored_ = std::move(scored);
  entry->order_.emplace(entry->scored_);
  entry->FinishBuild();
  return entry;
}

std::shared_ptr<const CachedScore> CachedScore::BuildPatched(
    std::shared_ptr<const Graph> graph, ScoredEdges scored,
    const CachedScore& base, std::span<const EdgeId> base_to_next,
    std::span<const EdgeId> dirty, uint64_t base_fingerprint) {
  std::shared_ptr<CachedScore> entry(new CachedScore());
  entry->graph_ = std::move(graph);
  entry->scored_ = std::move(scored);
  // The patch constructor: no global sort (SortsPerformed stays flat).
  entry->order_.emplace(entry->scored_, base.order(), base_to_next, dirty);
  entry->provenance_ = DeltaProvenance{base_fingerprint,
                                       static_cast<int64_t>(dirty.size()),
                                       entry->scored_.size()};
  entry->FinishBuild();
  return entry;
}

Result<std::shared_ptr<const CachedScore>> CachedScore::Restore(
    std::shared_ptr<const Graph> graph, ScoredEdges scored,
    std::vector<EdgeId> order_ids, SweepProfile profile,
    std::optional<DeltaProvenance> provenance) {
  std::shared_ptr<CachedScore> entry(new CachedScore());
  entry->graph_ = std::move(graph);
  entry->scored_ = std::move(scored);
  // Same two-phase rule as Build: the permutation is validated against
  // the member table at its final address, not the caller's temporary.
  Result<ScoreOrder> order =
      ScoreOrder::FromPermutation(entry->scored_, std::move(order_ids));
  if (!order.ok()) return order.status();
  entry->order_.emplace(std::move(*order));
  entry->profile_ = std::move(profile);
  entry->provenance_ = std::move(provenance);
  entry->PriceBytes();
  return std::shared_ptr<const CachedScore>(std::move(entry));
}

std::shared_ptr<const CachedScore> ScoreCache::GetLocked(
    const ScoreKey& key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);  // bump to most-recent
  return it->second->second;
}

std::shared_ptr<const CachedScore> ScoreCache::Get(const ScoreKey& key) {
  obs::ScopedRecord timing(metrics_timing_.load(std::memory_order_relaxed),
                           &get_ns_);
  std::lock_guard<std::mutex> lock(mu_);
  std::shared_ptr<const CachedScore> entry = GetLocked(key);
  ++(entry != nullptr ? hits_ : misses_);
  return entry;
}

std::shared_ptr<const CachedScore> ScoreCache::Peek(const ScoreKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  return GetLocked(key);
}

void ScoreCache::RegisterLineage(uint64_t child, uint64_t parent,
                                 std::shared_ptr<const GraphDelta> delta) {
  if (child == 0 || parent == 0 || child == parent) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (lineage_.size() >= kMaxLineageEntries &&
      lineage_.find(child) == lineage_.end()) {
    // Wholesale drop, like the negative cache: the cost is lost patch
    // opportunities for old revisions, never correctness.
    bytes_ -= lineage_bytes_;
    lineage_bytes_ = 0;
    lineage_.clear();
  }
  const auto it = lineage_.find(child);
  if (it != lineage_.end()) {
    const int64_t old_bytes =
        kLineageEntryBytes +
        (it->second.delta != nullptr ? it->second.delta->ApproxBytes() : 0);
    bytes_ -= old_bytes;
    lineage_bytes_ -= old_bytes;
  }
  const int64_t new_bytes =
      kLineageEntryBytes + (delta != nullptr ? delta->ApproxBytes() : 0);
  lineage_[child] = Lineage{parent, std::move(delta)};
  bytes_ += new_bytes;
  lineage_bytes_ += new_bytes;
  TrimLocked();
}

ScoreCache::Lineage ScoreCache::LineageFor(uint64_t child) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = lineage_.find(child);
  return it != lineage_.end() ? it->second : Lineage{};
}

void ScoreCache::Put(const ScoreKey& key,
                     std::shared_ptr<const CachedScore> score) {
  obs::ScopedRecord timing(metrics_timing_.load(std::memory_order_relaxed),
                           &put_ns_);
  std::lock_guard<std::mutex> lock(mu_);
  // Fault-injection site: a dropped insert models the cache losing the
  // allocation race under memory pressure. The caller's shared_ptr still
  // serves every waiter of the in-flight computation — the entry is
  // simply never cached, so the next request on the key rescores.
  if (InjectFault(FaultSite::kCacheInsertFailure)) {
    ++insert_failures_;
    return;
  }
  const auto it = index_.find(key);
  if (it != index_.end()) {
    bytes_ -= it->second->second->bytes();
    lru_.erase(it->second);
    index_.erase(it);
  }
  bytes_ += score->bytes();
  lru_.emplace_front(key, std::move(score));
  index_.emplace(key, lru_.begin());
  TrimLocked();
}

void ScoreCache::set_byte_budget(int64_t byte_budget) {
  std::lock_guard<std::mutex> lock(mu_);
  byte_budget_ = byte_budget;
  TrimLocked();
}

void ScoreCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  lineage_.clear();
  lineage_bytes_ = 0;
  bytes_ = 0;
}

std::vector<std::pair<ScoreKey, std::shared_ptr<const CachedScore>>>
ScoreCache::Entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<ScoreKey, std::shared_ptr<const CachedScore>>>
      entries;
  entries.reserve(lru_.size());
  // Back-to-front: lru_.front() is most recent, so the vector reads
  // LRU-first and a re-Put replay restores the same recency order.
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    entries.push_back(*it);
  }
  return entries;
}

std::vector<std::pair<uint64_t, ScoreCache::Lineage>>
ScoreCache::LineageEntries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<uint64_t, Lineage>> entries;
  entries.reserve(lineage_.size());
  for (const auto& [child, record] : lineage_) {
    entries.emplace_back(child, record);
  }
  return entries;
}

int64_t ScoreCache::EraseGraphEntries(uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t dropped = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->first.graph == fingerprint) {
      bytes_ -= it->second->bytes();
      index_.erase(it->first);
      it = lru_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  const auto lineage_it = lineage_.find(fingerprint);
  if (lineage_it != lineage_.end()) {
    const int64_t record_bytes =
        kLineageEntryBytes + (lineage_it->second.delta != nullptr
                                  ? lineage_it->second.delta->ApproxBytes()
                                  : 0);
    bytes_ -= record_bytes;
    lineage_bytes_ -= record_bytes;
    lineage_.erase(lineage_it);
  }
  return dropped;
}

void ScoreCache::RegisterMetrics(obs::MetricRegistry& registry,
                                 const std::string& prefix,
                                 const void* owner) {
  // One gauge *group* over a single StatsSnapshot() call: every field a
  // registry snapshot reports comes from the same instant under mu_, so
  // a rollup summing shards can't observe torn per-field reads.
  registry.RegisterGaugeGroup(
      [this, prefix]() {
        const Stats s = StatsSnapshot();
        return std::vector<obs::MetricsSnapshot::Value>{
            {prefix + ".hits", s.hits},
            {prefix + ".misses", s.misses},
            {prefix + ".evictions", s.evictions},
            {prefix + ".entries", s.entries},
            {prefix + ".lineage_entries", s.lineage_entries},
            {prefix + ".bytes", s.bytes},
            {prefix + ".byte_budget", s.byte_budget},
            {prefix + ".insert_failures", s.insert_failures},
        };
      },
      owner);
  registry.RegisterHistogram(prefix + ".get_ns", &get_ns_, owner);
  registry.RegisterHistogram(prefix + ".put_ns", &put_ns_, owner);
  registry.RegisterHistogram(prefix + ".evict_ns", &evict_ns_, owner);
}

ScoreCache::Stats ScoreCache::StatsSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.evictions = evictions_;
  stats.entries = static_cast<int64_t>(lru_.size());
  stats.lineage_entries = static_cast<int64_t>(lineage_.size());
  stats.bytes = bytes_;
  stats.byte_budget = byte_budget_;
  stats.insert_failures = insert_failures_;
  return stats;
}

void ScoreCache::TrimLocked() {
  if (byte_budget_ <= 0) return;
  if (bytes_ <= byte_budget_ || lru_.empty()) return;
  obs::ScopedRecord timing(metrics_timing_.load(std::memory_order_relaxed),
                           &evict_ns_);
  // Lineage bytes count against the budget but only entries are evicted:
  // the loop stops when the list drains even if lineage alone overflows
  // (its hard cap bounds that at a few MiB).
  while (bytes_ > byte_budget_ && !lru_.empty()) {
    const auto& victim = lru_.back();
    bytes_ -= victim.second->bytes();
    index_.erase(victim.first);
    lru_.pop_back();
    ++evictions_;
  }
}

}  // namespace netbone
