#include "service/score_cache.h"

#include <utility>

#include "common/bytes.h"

namespace netbone {

std::shared_ptr<const CachedScore> CachedScore::Build(
    std::shared_ptr<const Graph> graph, ScoredEdges scored) {
  // Two-phase construction: the ScoreOrder keeps a pointer to the
  // ScoredEdges, so the table must reach its final heap address before
  // the order is built.
  std::shared_ptr<CachedScore> entry(new CachedScore());
  entry->graph_ = std::move(graph);
  entry->scored_ = std::move(scored);
  entry->order_.emplace(entry->scored_);
  entry->profile_ = BuildSweepProfile(*entry->order_);
  entry->bytes_ =
      static_cast<int64_t>(sizeof(CachedScore)) +
      VectorBytes(entry->scored_.scores()) +
      static_cast<int64_t>(entry->order_->ids().size() * sizeof(EdgeId)) +
      VectorBytes(entry->profile_.covered_nodes) +
      VectorBytes(entry->profile_.kept_weight);
  return entry;
}

std::shared_ptr<const CachedScore> ScoreCache::Get(const ScoreKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // bump to most-recent
  ++hits_;
  return it->second->second;
}

void ScoreCache::Put(const ScoreKey& key,
                     std::shared_ptr<const CachedScore> score) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    bytes_ -= it->second->second->bytes();
    lru_.erase(it->second);
    index_.erase(it);
  }
  bytes_ += score->bytes();
  lru_.emplace_front(key, std::move(score));
  index_.emplace(key, lru_.begin());
  TrimLocked();
}

void ScoreCache::set_byte_budget(int64_t byte_budget) {
  std::lock_guard<std::mutex> lock(mu_);
  byte_budget_ = byte_budget;
  TrimLocked();
}

void ScoreCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
}

ScoreCache::Stats ScoreCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.evictions = evictions_;
  stats.entries = static_cast<int64_t>(lru_.size());
  stats.bytes = bytes_;
  stats.byte_budget = byte_budget_;
  return stats;
}

void ScoreCache::TrimLocked() {
  if (byte_budget_ <= 0) return;
  while (bytes_ > byte_budget_ && !lru_.empty()) {
    const auto& victim = lru_.back();
    bytes_ -= victim.second->bytes();
    index_.erase(victim.first);
    lru_.pop_back();
    ++evictions_;
  }
}

}  // namespace netbone
