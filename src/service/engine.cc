#include "service/engine.h"

#include <algorithm>
#include <filesystem>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/parallel.h"
#include "common/random.h"
#include "core/delta_rescore.h"
#include "core/filter.h"
#include "eval/stability.h"
#include "graph/delta.h"
#include "service/fault_injection.h"
#include "service/snapshot.h"

namespace netbone {
namespace {

using SteadyClock = std::chrono::steady_clock;

/// time_point::max() encodes "no deadline" throughout the engine.
SteadyClock::time_point DeadlineFor(const BackboneRequest& request,
                                    SteadyClock::time_point now) {
  return request.timeout.count() > 0 ? now + request.timeout
                                     : SteadyClock::time_point::max();
}

std::vector<Result<BackboneResponse>> FailAll(size_t n,
                                              const Status& status) {
  std::vector<Result<BackboneResponse>> failed;
  failed.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    failed.push_back(Result<BackboneResponse>(status));
  }
  return failed;
}

/// Deterministic backoff jitter in [0.5, 1.0): a pure Mix64 hash of
/// (key, attempt), so a replayed workload backs off identically while
/// distinct keys retrying the same transient outage decorrelate.
double BackoffJitter(const ScoreKey& key, int attempt) {
  const uint64_t h =
      Mix64(ScoreKeyHash{}(key) ^ (static_cast<uint64_t>(attempt) + 1));
  return 0.5 + 0.5 * (static_cast<double>(h >> 11) * 0x1.0p-53);
}

/// Scope guard for one trace span: stamps start on entry and duration on
/// exit into the ResolveInfo fields the caller names. `on` is the
/// caller's info->timed — when false nothing is read or written, so the
/// untraced path pays one branch.
class SpanTimer {
 public:
  SpanTimer(const obs::TraceRecorder& tracer, bool on, int64_t* start_ns,
            int64_t* duration_ns)
      : tracer_(tracer), on_(on), start_(start_ns), duration_(duration_ns) {
    if (on_) *start_ = tracer_.NowNs();
  }
  ~SpanTimer() {
    if (on_) *duration_ = tracer_.NowNs() - *start_;
  }
  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

 private:
  const obs::TraceRecorder& tracer_;
  const bool on_;
  int64_t* start_;
  int64_t* duration_;
};

}  // namespace

const char* RequestKindName(RequestKind kind) {
  switch (kind) {
    case RequestKind::kTopK:
      return "top_k";
    case RequestKind::kTopShare:
      return "top_share";
    case RequestKind::kScoreThreshold:
      return "score_threshold";
    case RequestKind::kGrowUntilConnected:
      return "grow_until_connected";
    case RequestKind::kSweep:
      return "sweep";
    case RequestKind::kCoveragePoint:
      return "coverage_point";
    case RequestKind::kStabilityPoint:
      return "stability_point";
  }
  return "unknown";
}

BackboneEngine::BackboneEngine(const Options& options)
    : options_(options),
      tracer_(options.trace_sample_rate, options.trace_buffer_bytes),
      graphs_(options.graph_byte_budget),
      cache_(options.cache_byte_budget) {
  cache_.set_metrics_timing(options_.enable_metrics);
  graphs_.set_metrics_timing(options_.enable_metrics);
  if (options_.enable_metrics) {
    for (auto& hist : kind_latency_) {
      hist = std::make_unique<obs::LatencyHistogram>();
    }
    for (auto& hist : path_latency_) {
      hist = std::make_unique<obs::LatencyHistogram>();
    }
  }
  if (!options_.snapshot_dir.empty()) {
    // Restore before the dispatcher exists: the store and cache are
    // mutated single-threaded. A missing snapshot is the normal first
    // boot; a corrupted one salvages what it can (quarantine counters
    // below) and a hard failure — unreadable file, version skew — starts
    // cold and is counted, never thrown.
    std::error_code ec;
    std::filesystem::create_directories(options_.snapshot_dir, ec);
    obs::ScopedRecord timing(options_.enable_metrics, &snapshot_restore_ns_);
    Result<SnapshotRestoreReport> restored = RestoreSnapshot(
        SnapshotFilePath(options_.snapshot_dir), &graphs_, &cache_);
    if (restored.ok()) {
      restored_graphs_ = restored->graphs_restored;
      restored_entries_ = restored->entries_restored;
      restored_lineage_ = restored->lineage_restored;
      quarantined_sections_ = restored->sections_quarantined;
    } else if (!restored.status().IsNotFound()) {
      ++snapshot_restore_errors_;
    }
  }
  RegisterEngineMetrics();
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

BackboneEngine::~BackboneEngine() {
  // Shutdown ordering: flag first, then fire the engine-wide cancel
  // token so in-flight scorings abort at their next chunk check, then
  // join the dispatcher — which *cancels* still-queued batches (their
  // futures resolve with kUnavailable; they are never executed against
  // caches about to be torn down). Only after the join do the members
  // (ScoreCache, GraphStore) destruct, in reverse declaration order.
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    shutdown_ = true;
  }
  lifetime_.Cancel();
  queue_cv_.notify_all();
  dispatcher_.join();
  // With the dispatcher drained and no API callers left (destruction
  // implies exclusive access), the state is quiescent: the shutdown
  // snapshot captures exactly what a restart will restore.
  if (options_.snapshot_on_shutdown && !options_.snapshot_dir.empty()) {
    // A failure here is already counted in snapshot_failures_; there is
    // no caller left to report it to.
    WriteSnapshotNow();
  }
}

Status BackboneEngine::WriteSnapshotNow() {
  if (options_.snapshot_dir.empty()) {
    return Status::FailedPrecondition("engine has no snapshot_dir");
  }
  obs::ScopedRecord timing(options_.enable_metrics, &snapshot_write_ns_);
  Result<SnapshotWriteStats> written = WriteSnapshot(
      SnapshotFilePath(options_.snapshot_dir), graphs_, cache_);
  if (!written.ok()) {
    snapshot_failures_.Increment();
    return written.status();
  }
  snapshot_writes_.Increment();
  return Status::OK();
}

uint64_t BackboneEngine::AddGraph(Graph graph) {
  return graphs_.Intern(std::move(graph)).fingerprint;
}

uint64_t BackboneEngine::AddGraphRevision(Graph graph,
                                          uint64_t base_fingerprint) {
  const StoredGraph stored = graphs_.Intern(std::move(graph));
  // The delta is extracted once, at submission, over the two sorted edge
  // tables — request-time patching then starts from precomputed
  // difference lists. An unresolvable or incomparable base just degrades
  // to lineage-without-delta (the request path re-diffs or falls back).
  std::shared_ptr<const GraphDelta> delta;
  Result<GraphDelta> computed =
      graphs_.DeltaBetween(base_fingerprint, stored.fingerprint);
  if (computed.ok()) {
    delta = std::make_shared<const GraphDelta>(*std::move(computed));
  }
  // RegisterLineage ignores self-edges (a revision that dedupes to its
  // base) and zero fingerprints.
  cache_.RegisterLineage(stored.fingerprint, base_fingerprint,
                         std::move(delta));
  return stored.fingerprint;
}

std::shared_ptr<const Graph> BackboneEngine::FindGraph(
    uint64_t fingerprint) const {
  return graphs_.Find(fingerprint);
}

std::vector<uint64_t> BackboneEngine::ResidentFingerprints() const {
  std::vector<uint64_t> fingerprints;
  for (const StoredGraph& stored : graphs_.ResidentGraphs()) {
    fingerprints.push_back(stored.fingerprint);
  }
  return fingerprints;
}

std::vector<uint64_t> BackboneEngine::LineageFamily(
    uint64_t fingerprint) const {
  // Undirected reachability over the lineage records: parent edges and
  // child edges both keep a family together (migrating a child without
  // its warm parent would sever the delta path at the destination).
  std::unordered_map<uint64_t, std::vector<uint64_t>> adjacency;
  for (const auto& [child, lineage] : cache_.LineageEntries()) {
    if (lineage.parent == 0) continue;
    adjacency[child].push_back(lineage.parent);
    adjacency[lineage.parent].push_back(child);
  }
  std::unordered_set<uint64_t> visited{fingerprint};
  std::vector<uint64_t> frontier{fingerprint};
  while (!frontier.empty()) {
    const uint64_t current = frontier.back();
    frontier.pop_back();
    const auto it = adjacency.find(current);
    if (it == adjacency.end()) continue;
    for (const uint64_t next : it->second) {
      if (visited.insert(next).second) frontier.push_back(next);
    }
  }
  std::vector<uint64_t> family(visited.begin(), visited.end());
  std::sort(family.begin(), family.end());
  return family;
}

std::string BackboneEngine::ExportFingerprintState(
    std::span<const uint64_t> fingerprints) const {
  return EncodeFingerprintState(graphs_, cache_, fingerprints);
}

Result<SnapshotRestoreReport> BackboneEngine::ImportFingerprintState(
    std::string_view blob) {
  return DecodeFingerprintState(blob, &graphs_, &cache_);
}

int64_t BackboneEngine::RetireFingerprints(
    std::span<const uint64_t> fingerprints) {
  int64_t dropped = 0;
  for (const uint64_t fingerprint : fingerprints) {
    dropped += cache_.EraseGraphEntries(fingerprint);
    if (graphs_.Erase(fingerprint)) ++dropped;
  }
  // Negative entries are keyed on the same fingerprints; drop them too so
  // the new owner's verdicts are authoritative from the first request.
  {
    std::lock_guard<std::mutex> lock(score_mu_);
    for (auto it = negative_.begin(); it != negative_.end();) {
      const bool retired =
          std::find(fingerprints.begin(), fingerprints.end(),
                    it->first.graph) != fingerprints.end();
      it = retired ? negative_.erase(it) : std::next(it);
    }
  }
  return dropped;
}

void BackboneEngine::RememberFailureLocked(const ScoreKey& key,
                                           const Status& status) {
  // Failure taxonomy: cancellation-shaped statuses (deadline, explicit
  // cancel) and admission rejections describe the *caller's budget* or
  // the *engine's load*, not the key — the identical scoring may well
  // succeed for the next caller. Negative-caching them would poison the
  // key for every client behind one impatient request.
  if (status.IsCancellationShaped() || status.IsResourceExhausted()) {
    negative_exempt_.Increment();
    return;
  }
  // The table is bounded: negative keys are attacker/typo-shaped input,
  // so a hard cap beats unbounded growth. On overflow, sweep dead
  // entries; if every entry is live, drop the table — the cost is one
  // re-attempt per key, not correctness.
  constexpr size_t kMaxNegativeEntries = 4096;
  if (negative_.size() >= kMaxNegativeEntries) {
    const auto now = std::chrono::steady_clock::now();
    for (auto it = negative_.begin(); it != negative_.end();) {
      it = it->second.expiry <= now ? negative_.erase(it) : std::next(it);
    }
    if (negative_.size() >= kMaxNegativeEntries) negative_.clear();
  }
  negative_[key] = NegativeEntry{
      status, std::chrono::steady_clock::now() + options_.negative_ttl};
}

std::optional<BackboneEngine::ScoreResult> BackboneEngine::StartOrJoinScore(
    const ScoreKey& key, const std::shared_ptr<const Graph>& graph,
    ResolveInfo* info, std::shared_future<ScoreResult>* pending,
    const CancelToken& cancel) {
  info->cache_hit = false;
  const bool negative_enabled = options_.negative_ttl.count() > 0;
  std::promise<ScoreResult> promise;
  // The lookup span covers the whole cache + negative + in-flight
  // resolution window (including the lock wait); it is closed before any
  // of the block's returns and once more on the compute fall-through.
  if (info->timed) info->lookup_start_ns = tracer_.NowNs();
  const auto end_lookup = [&] {
    if (info->timed) {
      info->lookup_ns = tracer_.NowNs() - info->lookup_start_ns;
    }
  };
  {
    std::unique_lock<std::mutex> lock(score_mu_);
    if (std::shared_ptr<const CachedScore> hit = cache_.Get(key)) {
      info->cache_hit = true;
      end_lookup();
      return ScoreResult(std::move(hit));
    }
    if (negative_enabled) {
      const auto it = negative_.find(key);
      if (it != negative_.end()) {
        if (std::chrono::steady_clock::now() < it->second.expiry) {
          negative_hits_.Increment();
          info->negative_hit = true;
          end_lookup();
          return ScoreResult(it->second.status);
        }
        negative_.erase(it);  // expired: re-attempt
      }
    }
    const auto it = inflight_.find(key);
    if (it != inflight_.end()) {
      // Someone is already scoring this key: share their result. The
      // future is handed back, never awaited here — waiting is caller-
      // context-only (header invariant), and this function also runs
      // inside ExecuteBatch's work-stealing tasks.
      *pending = it->second;
      end_lookup();
      return std::nullopt;
    }
    // Admission control: a cold scoring past the in-flight bound is
    // refused before registration (warm hits, negative hits and joins
    // above are untouched — the bound prices *computations*, not
    // requests). Never negative-cached: the key is fine, the engine is
    // busy.
    if (options_.max_inflight_scores > 0 &&
        static_cast<int64_t>(inflight_.size()) >=
            options_.max_inflight_scores) {
      inflight_rejected_.Increment();
      end_lookup();
      return ScoreResult(
          Status::ResourceExhausted("in-flight scoring limit reached"));
    }
    inflight_.emplace(key, promise.get_future().share());
  }
  end_lookup();

  // The caller holds the store pin for this graph (taken at resolve time,
  // before any fan-out, so the byte budget cannot evict the fingerprint
  // between resolution and this scoring). Three roads, cheapest first:
  // the positive cache answered above; a warm ancestor patch; the full
  // (retrying) rescore.
  ScoreResult result = [&]() -> ScoreResult {
    if (Status budget = cancel.Check(); !budget.ok()) {
      return ScoreResult(budget);
    }
    if (options_.enable_delta_rescore) {
      if (std::shared_ptr<const CachedScore> patched =
              TryDeltaRescore(key, graph, cancel, info)) {
        info->delta_patched = true;
        return ScoreResult(std::move(patched));
      }
    }
    return ComputeScoreWithRetry(key, graph, cancel, info);
  }();
  {
    std::lock_guard<std::mutex> lock(score_mu_);
    if (result.ok()) {
      cache_.Put(key, *result);
    } else if (negative_enabled) {
      // The error is shared with current waiters AND remembered: repeated
      // requests on a bad key are answered from the negative cache until
      // the TTL lapses or the generation is cleared. (Cancellation-shaped
      // failures are exempted inside — see the taxonomy note there.)
      RememberFailureLocked(key, result.status());
    }
    inflight_.erase(key);
  }
  promise.set_value(result);
  return result;
}

BackboneEngine::ScoreResult BackboneEngine::ComputeScoreWithRetry(
    const ScoreKey& key, const std::shared_ptr<const Graph>& graph,
    const CancelToken& cancel, ResolveInfo* info) {
  // The cold-score span covers the whole retry loop: injected latency,
  // backoff sleeps and re-attempts are all time this key spent scoring.
  SpanTimer span(tracer_, info->timed, &info->score_start_ns,
                 &info->score_ns);
  RunMethodOptions run;
  run.num_threads = options_.num_threads;
  run.hss_max_cost = key.options.hss_max_cost;
  run.hss_source_sample_size = key.options.hss_source_sample_size;
  run.hss_sample_seed = key.options.hss_sample_seed;
  run.cancel = cancel;
  for (int attempt = 0;; ++attempt) {
    // Injected latency models a slow scoring backend. The sleep honours
    // the request budget (InterruptibleSleep), so a stalled scoring
    // still returns within deadline + one slice instead of serving the
    // full stall.
    if (FaultInjector* injector = ActiveFaultInjector();
        injector != nullptr &&
        injector->Draw(FaultSite::kScoringLatency)) {
      Status slept = InterruptibleSleep(
          injector->latency(FaultSite::kScoringLatency), cancel);
      if (!slept.ok()) return ScoreResult(slept);
    }
    if (Status budget = cancel.Check(); !budget.ok()) {
      return ScoreResult(budget);
    }
    ScoreResult result = [&]() -> ScoreResult {
      // The failure site sits *inside* the retry loop so a retried
      // attempt draws independently — chaos runs exercise the recovery
      // path, not just the failure.
      if (InjectFault(FaultSite::kScoringFailure)) {
        return ScoreResult(
            Status::Unavailable("injected scoring failure"));
      }
      scores_computed_.Increment();
      Result<ScoredEdges> scored = RunMethod(key.method, *graph, run);
      if (!scored.ok()) return ScoreResult(scored.status());
      return ScoreResult(CachedScore::Build(graph, std::move(*scored)));
    }();
    if (result.ok() || !result.status().IsTransient() ||
        attempt >= options_.max_retries) {
      return result;
    }
    retries_.Increment();
    ++info->retries;
    // Exponential backoff with deterministic jitter; the sleep never
    // outlives the budget (a lapsed deadline surfaces as the sleep's
    // status, typed, not as a burned core).
    const int shift = std::min(attempt, 10);
    auto delay = std::chrono::nanoseconds(options_.retry_backoff) *
                 (int64_t{1} << shift);
    delay = std::min(delay,
                     std::chrono::nanoseconds(options_.retry_backoff_max));
    delay = std::chrono::nanoseconds(static_cast<int64_t>(
        static_cast<double>(delay.count()) * BackoffJitter(key, attempt)));
    if (delay.count() > 0) {
      Status slept = InterruptibleSleep(delay, cancel);
      if (!slept.ok()) return ScoreResult(slept);
    }
  }
}

BackboneEngine::WarmAncestor BackboneEngine::FindWarmAncestor(
    const ScoreKey& key) {
  // Walk the lineage chain for the nearest warm ancestor entry of this
  // (method, options). Bounded hops guard against cycles a client could
  // register; the probe uses Peek so ancestor lookups don't distort the
  // request-facing hit rate. When the warm ancestor is the direct parent,
  // the submission-time delta is already on the lineage record; a deeper
  // ancestor has none (the delta path re-diffs).
  constexpr int kMaxLineageHops = 8;
  WarmAncestor found;
  uint64_t fingerprint = key.graph;
  for (int hop = 0; hop < kMaxLineageHops; ++hop) {
    ScoreCache::Lineage lineage = cache_.LineageFor(fingerprint);
    if (lineage.parent == 0 || lineage.parent == key.graph) break;
    if (std::shared_ptr<const CachedScore> entry = cache_.Peek(
            MakeScoreKey(lineage.parent, key.method, key.options))) {
      found.entry = std::move(entry);
      found.fingerprint = lineage.parent;
      if (fingerprint == key.graph) found.delta = std::move(lineage.delta);
      break;
    }
    fingerprint = lineage.parent;
  }
  return found;
}

std::shared_ptr<const CachedScore> BackboneEngine::TryDeltaRescore(
    const ScoreKey& key, const std::shared_ptr<const Graph>& graph,
    const CancelToken& cancel, ResolveInfo* info) {
  if (!SupportsDeltaRescore(key.method)) return nullptr;

  WarmAncestor ancestor = [&] {
    SpanTimer span(tracer_, info->timed, &info->lineage_start_ns,
                   &info->lineage_ns);
    return FindWarmAncestor(key);
  }();
  if (ancestor.entry == nullptr) return nullptr;
  const std::shared_ptr<const CachedScore>& base = ancestor.entry;
  const uint64_t base_fingerprint = ancestor.fingerprint;

  // From here on a warm ancestor exists: any bail-out is a fallback the
  // stats should show. The ancestor graph comes from the entry's own
  // handle, so a GraphStore eviction of the ancestor cannot break the
  // diff. The patch span covers diff + rescore + merge, including
  // attempts that end in a fallback.
  SpanTimer span(tracer_, info->timed, &info->patch_start_ns,
                 &info->patch_ns);
  std::optional<GraphDelta> computed;
  if (ancestor.delta == nullptr) {
    Result<GraphDelta> diff = ComputeGraphDelta(base->graph(), *graph);
    if (!diff.ok()) {
      delta_fallbacks_.Increment();
      return nullptr;
    }
    computed = *std::move(diff);
  }
  const GraphDelta& delta =
      ancestor.delta != nullptr ? *ancestor.delta : *computed;
  DeltaRescoreOptions rescore_options;
  rescore_options.num_threads = options_.num_threads;
  rescore_options.grain = options_.delta_grain;
  rescore_options.cancel = cancel;
  Result<std::optional<DeltaRescoreResult>> rescored = DeltaRescore(
      key.method, base->scored(), *graph, delta, rescore_options);
  if (!rescored.ok() || !rescored->has_value()) {
    // A rescoring *error* also falls back: the full path reproduces the
    // canonical error and feeds the negative cache as usual. A lapsed
    // budget mid-patch is not a patch shortcoming, so it skips the
    // fallback counter (the full path returns the typed status at its
    // own pre-flight check).
    if (rescored.ok() || !rescored.status().IsCancellationShaped()) {
      delta_fallbacks_.Increment();
    }
    return nullptr;
  }
  DeltaRescoreResult& patch = **rescored;
  delta_rescores_.Increment();
  return CachedScore::BuildPatched(
      graph,
      ScoredEdges(graph.get(), base->scored().method(),
                  std::move(patch.scores), base->scored().has_sdev()),
      *base, patch.base_to_next, patch.dirty, base_fingerprint);
}

BackboneEngine::ScoreResult BackboneEngine::GetOrComputeScore(
    const ScoreKey& key, const std::shared_ptr<const Graph>& graph,
    ResolveInfo* info, const CancelToken& cancel) {
  // Bounded resolve loop: round k re-enters when round k-1's shared
  // computation died of a *foreign* budget (the starter's deadline, not
  // ours) — on re-entry this caller may become the starter. Bounded so a
  // pathological storm of dying starters cannot spin forever.
  constexpr int kMaxResolveRounds = 4;
  ScoreResult last = ScoreResult(Status::Cancelled("operation cancelled"));
  for (int round = 0; round < kMaxResolveRounds; ++round) {
    std::shared_future<ScoreResult> pending;
    std::optional<ScoreResult> result =
        StartOrJoinScore(key, graph, info, &pending, cancel);
    if (!result.has_value()) {
      coalesced_waits_.Increment();
      info->coalesced = true;
      if (cancel.CanExpire()) {
        // Joiners wait with their *own* budget: the shared computation
        // keeps running for everyone else when this caller gives up.
        constexpr auto kJoinSlice = std::chrono::milliseconds(1);
        while (pending.wait_for(kJoinSlice) !=
               std::future_status::ready) {
          if (Status budget = cancel.Check(); !budget.ok()) {
            return ScoreResult(budget);
          }
        }
      }
      result = pending.get();  // caller context: safe to block
    }
    if (result->ok()) return *std::move(result);
    const Status& status = result->status();
    if (status.IsCancellationShaped() && cancel.Check().ok()) {
      last = *std::move(result);
      continue;  // foreign cancellation; our budget is still live
    }
    return *std::move(result);
  }
  return last;
}

void BackboneEngine::ClearNegativeCache() {
  std::lock_guard<std::mutex> lock(score_mu_);
  negative_.clear();
}

Result<BackboneResponse> BackboneEngine::BuildResponse(
    const BackboneRequest& request, const CachedScore& score,
    bool cache_hit) const {
  const ScoreOrder& order = score.order();
  const SweepProfile& profile = score.profile();
  BackboneResponse response;
  response.cache_hit = cache_hit;

  const auto fill_extraction = [&](int64_t k) {
    // PrefixMask clamps the same way, so `kept` needs no mask; the O(E)
    // mask walk only runs when the caller wants the edge list.
    const int64_t kept = std::clamp<int64_t>(k, 0, order.size());
    response.kept = kept;
    if (profile.target_nodes > 0) {
      response.coverage = profile.CoverageAt(kept);
    }
    response.weight_share = profile.WeightShareAt(kept);
    if (request.include_edges) {
      response.kept_edges = MaskToEdgeIds(order.PrefixMask(k));
    }
  };

  switch (request.kind) {
    case RequestKind::kTopK:
      fill_extraction(request.k);
      break;
    case RequestKind::kTopShare:
      fill_extraction(order.KForShare(request.share));
      break;
    case RequestKind::kScoreThreshold:
      // The order is score-descending, so the edges strictly above the
      // threshold are exactly the first CountAbove ranks — the same set
      // FilterByScore keeps.
      fill_extraction(order.CountAbove(request.threshold));
      break;
    case RequestKind::kGrowUntilConnected:
      fill_extraction(profile.connect_k);
      break;
    case RequestKind::kSweep: {
      if (profile.target_nodes <= 0) {
        return Status::FailedPrecondition(
            "graph has no connected node to cover");
      }
      response.sweep.reserve(request.shares.size());
      for (const double share : request.shares) {
        const int64_t k = order.KForShare(share);
        response.sweep.push_back(
            SweepPoint{k, profile.CoverageAt(k), profile.WeightShareAt(k)});
      }
      response.connect_k = profile.connect_k;
      break;
    }
    case RequestKind::kCoveragePoint: {
      if (profile.target_nodes <= 0) {
        return Status::FailedPrecondition(
            "graph has no connected node to cover");
      }
      const int64_t k = order.KForShare(request.share);
      response.kept = k;
      response.coverage = profile.CoverageAt(k);
      response.weight_share = profile.WeightShareAt(k);
      break;
    }
    case RequestKind::kStabilityPoint: {
      const std::shared_ptr<const Graph> next =
          graphs_.Find(request.next_graph);
      if (next == nullptr) {
        return Status::NotFound("unknown next_graph fingerprint");
      }
      if (next->num_nodes() != score.graph().num_nodes()) {
        return Status::InvalidArgument(
            "stability snapshots must share the node universe");
      }
      const BackboneMask mask =
          order.PrefixMask(order.KForShare(request.share));
      const Result<double> stability =
          Stability(score.graph(), *next, mask);
      if (!stability.ok()) return stability.status();
      response.stability = *stability;
      response.kept = mask.kept;
      break;
    }
  }
  return response;
}

Result<BackboneResponse> BackboneEngine::Execute(
    const BackboneRequest& request) {
  requests_.Increment();
  const int64_t begin_ns = MetricsNowNs();
  ResolveInfo info;
  info.timed = tracer_.enabled();
  const SteadyClock::time_point deadline =
      DeadlineFor(request, SteadyClock::now());
  const std::shared_ptr<const Graph> graph = graphs_.Find(request.graph);
  if (graph == nullptr) {
    RecordOutcome(request, /*ok=*/false, /*degraded=*/false, info, begin_ns,
                  deadline, /*queue_wait_ns=*/0);
    return Status::NotFound("unknown graph fingerprint (AddGraph first)");
  }
  // One token carries all three reasons this request may stop: its
  // deadline (armed here), the caller's explicit cancel, and engine
  // shutdown.
  CancelSource source(deadline, request.cancel, lifetime_.token());
  const CancelToken token = source.token();
  const ScoreKey key =
      MakeScoreKey(request.graph, request.method, request.score_options);
  // Pinned from resolve through scoring: the store's byte budget must not
  // evict a graph a request is actively using (the shared_ptr keeps the
  // memory alive regardless — the pin keeps the *fingerprint* resolvable
  // for the requests that will want the cached score next).
  graphs_.Pin(request.graph);
  const ScoreResult score = GetOrComputeScore(key, graph, &info, token);
  graphs_.Unpin(request.graph);
  if (!score.ok()) {
    const Status& status = score.status();
    if (status.IsDeadlineExceeded()) {
      deadline_hits_.Increment();
    } else if (status.IsCancelled()) {
      cancellations_.Increment();
    }
    if (request.allow_degraded &&
        (status.IsCancellationShaped() || status.IsTransient() ||
         status.IsResourceExhausted()) &&
        !lifetime_.CancellationRequested()) {
      if (std::optional<Result<BackboneResponse>> stale =
              TryDegradedResponse(request, key)) {
        RecordOutcome(request, stale->ok(), /*degraded=*/true, info,
                      begin_ns, deadline, /*queue_wait_ns=*/0);
        return *std::move(stale);
      }
      if (std::optional<Result<BackboneResponse>> sampled =
              TryDegradedSampledHss(request, graph)) {
        RecordOutcome(request, sampled->ok(), /*degraded=*/true, info,
                      begin_ns, deadline, /*queue_wait_ns=*/0);
        return *std::move(sampled);
      }
    }
    RecordOutcome(request, /*ok=*/false, /*degraded=*/false, info, begin_ns,
                  deadline, /*queue_wait_ns=*/0);
    return status;
  }
  Result<BackboneResponse> response = [&] {
    SpanTimer span(tracer_, info.timed, &info.extract_start_ns,
                   &info.extract_ns);
    return BuildResponse(request, **score, info.cache_hit);
  }();
  RecordOutcome(request, response.ok(), /*degraded=*/false, info, begin_ns,
                deadline, /*queue_wait_ns=*/0);
  return response;
}

std::optional<Result<BackboneResponse>> BackboneEngine::TryDegradedResponse(
    const BackboneRequest& request, const ScoreKey& key) {
  WarmAncestor ancestor = FindWarmAncestor(key);
  if (ancestor.entry == nullptr) return std::nullopt;
  // The ancestor entry is a *stale but exact* answer: computed on the
  // previous noisy observation of the same network, bit-identical to
  // what that snapshot's own requests were served. No blocking, so this
  // path is also safe from ExecuteBatch's phase-2 tasks.
  Result<BackboneResponse> response =
      BuildResponse(request, *ancestor.entry, /*cache_hit=*/true);
  if (!response.ok()) return std::nullopt;
  response->degraded = true;
  response->degraded_from = ancestor.fingerprint;
  degraded_served_.Increment();
  ScheduleBackgroundRefresh(request);
  return response;
}

std::optional<Result<BackboneResponse>>
BackboneEngine::TryDegradedSampledHss(
    const BackboneRequest& request,
    const std::shared_ptr<const Graph>& graph) {
  if (request.method != Method::kHighSalienceSkeleton ||
      options_.degraded_hss_sample <= 0) {
    return std::nullopt;
  }
  // Only degrade when it actually shrinks the work: an exact request, or
  // a sampled one coarser than our fallback sample.
  const int64_t requested = request.score_options.hss_source_sample_size;
  if (requested > 0 && requested <= options_.degraded_hss_sample) {
    return std::nullopt;
  }
  ScoreOptions sampled = request.score_options;
  sampled.hss_source_sample_size = options_.degraded_hss_sample;
  const ScoreKey sampled_key =
      MakeScoreKey(request.graph, request.method, sampled);
  // The sampled run is bounded by construction (k sources, not |V|), so
  // it runs without the lapsed deadline — only engine shutdown can stop
  // it. It caches under its canonical sampled key: repeat degradations
  // on the same graph are warm.
  ResolveInfo sampled_info;
  graphs_.Pin(request.graph);
  const ScoreResult score = GetOrComputeScore(sampled_key, graph,
                                              &sampled_info,
                                              lifetime_.token());
  graphs_.Unpin(request.graph);
  if (!score.ok()) return std::nullopt;
  Result<BackboneResponse> response =
      BuildResponse(request, **score, sampled_info.cache_hit);
  if (!response.ok()) return std::nullopt;
  response->degraded = true;
  response->degraded_from = request.graph;
  degraded_served_.Increment();
  ScheduleBackgroundRefresh(request);
  return response;
}

void BackboneEngine::ScheduleBackgroundRefresh(
    const BackboneRequest& request) {
  BackboneRequest exact = request;
  exact.timeout = std::chrono::milliseconds(0);
  exact.cancel = CancelToken();
  exact.allow_degraded = false;
  exact.include_edges = false;  // the point is warming the score cache
  PendingBatch batch;
  batch.requests.push_back(std::move(exact));
  batch.deadlines.push_back(SteadyClock::time_point::max());
  batch.enqueued = SteadyClock::now();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    // Refreshes never displace client work: full queue (or shutdown)
    // just drops the refresh — the next degraded serve re-queues it.
    if (shutdown_) return;
    if (options_.max_queued_batches > 0 &&
        static_cast<int64_t>(queue_.size()) >= options_.max_queued_batches) {
      return;
    }
    queue_.push_back(std::move(batch));
    background_refreshes_.Increment();
  }
  queue_cv_.notify_one();
}

std::vector<Result<BackboneResponse>> BackboneEngine::ExecuteBatch(
    std::span<const BackboneRequest> requests) {
  const SteadyClock::time_point now = SteadyClock::now();
  std::vector<SteadyClock::time_point> deadlines;
  deadlines.reserve(requests.size());
  for (const BackboneRequest& request : requests) {
    deadlines.push_back(DeadlineFor(request, now));
  }
  return ExecuteBatchWithDeadlines(requests, deadlines,
                                   /*queue_wait_ns=*/0);
}

std::vector<Result<BackboneResponse>>
BackboneEngine::ExecuteBatchWithDeadlines(
    std::span<const BackboneRequest> requests,
    std::span<const SteadyClock::time_point> deadlines,
    int64_t queue_wait_ns) {
  const int64_t n = static_cast<int64_t>(requests.size());
  requests_.Add(n);
  obs::ScopedRecord batch_timing(options_.enable_metrics,
                                 &batch_execute_ns_);
  const int64_t begin_ns = MetricsNowNs();
  const SteadyClock::time_point entry_now = SteadyClock::now();

  // Resolve graphs and collapse the batch onto its distinct score keys
  // (first-appearance order, so the scoring order is deterministic).
  // Requests already past their deadline at entry are pre-answered and
  // never touch resolution or scoring — an expired batch costs O(n), not
  // O(scoring).
  struct Resolved {
    std::shared_ptr<const Graph> graph;  // nullptr = unknown fingerprint
    size_t key_slot = 0;
    bool expired = false;  // pre-answered kDeadlineExceeded
  };
  std::vector<Resolved> resolved(static_cast<size_t>(n));
  std::vector<ScoreKey> keys;
  std::vector<std::shared_ptr<const Graph>> key_graphs;
  // Scoring budget per key: the *latest* member deadline — the key keeps
  // computing as long as any request still wants it.
  std::vector<SteadyClock::time_point> key_deadlines;
  std::unordered_map<ScoreKey, size_t, ScoreKeyHash> key_slots;
  for (int64_t i = 0; i < n; ++i) {
    const BackboneRequest& request = requests[static_cast<size_t>(i)];
    if (deadlines[static_cast<size_t>(i)] <= entry_now) {
      resolved[static_cast<size_t>(i)].expired = true;
      continue;
    }
    std::shared_ptr<const Graph> graph = graphs_.Find(request.graph);
    if (graph == nullptr) continue;
    const ScoreKey key =
        MakeScoreKey(request.graph, request.method, request.score_options);
    const auto [it, inserted] = key_slots.try_emplace(key, keys.size());
    if (inserted) {
      keys.push_back(key);
      key_graphs.push_back(graph);
      key_deadlines.push_back(deadlines[static_cast<size_t>(i)]);
    } else {
      key_deadlines[it->second] = std::max(
          key_deadlines[it->second], deadlines[static_cast<size_t>(i)]);
    }
    resolved[static_cast<size_t>(i)] = Resolved{std::move(graph), it->second};
  }

  // One cancel source per key (latest member deadline, chained under
  // engine shutdown). Per-request cancel tokens are not folded into the
  // scoring token — a shared computation must not die because one
  // sibling lost interest; they gate that sibling's own response in
  // phase 2 instead.
  std::vector<std::unique_ptr<CancelSource>> key_sources;
  std::vector<CancelToken> key_tokens;
  key_sources.reserve(keys.size());
  key_tokens.reserve(keys.size());
  for (size_t s = 0; s < keys.size(); ++s) {
    key_sources.push_back(std::make_unique<CancelSource>(
        key_deadlines[s], CancelToken(), lifetime_.token()));
    key_tokens.push_back(key_sources.back()->token());
  }

  // Every distinct key's graph stays pinned from here through phase 1,
  // so the store's byte budget cannot evict a fingerprint between this
  // resolution and its scoring.
  for (const ScoreKey& key : keys) graphs_.Pin(key.graph);

  // Phase 1: resolve every distinct score once, concurrently — a batch
  // mixing many cold keys overlaps their scorings instead of running
  // them back to back, and each scoring still fans its inner loops out
  // into the same pool. Concurrency is capped at options_.num_threads:
  // that many self-scheduling runner tasks claim key slots off a shared
  // cursor (the ParallelForDynamic pattern, hand-rolled here because a
  // slot that finds its key in flight elsewhere must hand the future
  // back instead of blocking). Requests sharing a key — within this
  // batch or with concurrent executions — coalesce onto one
  // computation; the caller awaits recorded futures after the fan-out
  // joins (futures are never awaited inside a task — the header's
  // deadlock-freedom invariant).
  std::vector<std::optional<ScoreResult>> scores(keys.size());
  std::vector<std::shared_future<ScoreResult>> pending(keys.size());
  std::vector<ResolveInfo> infos(keys.size());
  for (ResolveInfo& info : infos) info.timed = tracer_.enabled();
  const int width = static_cast<int>(
      std::min<size_t>(static_cast<size_t>(
                           ResolveThreadCount(options_.num_threads)),
                       keys.size()));
  if (width <= 1) {
    // One key (the common warm case) or a serial engine: no task handoff.
    for (size_t s = 0; s < keys.size(); ++s) {
      scores[s] = GetOrComputeScore(keys[s], key_graphs[s], &infos[s],
                                    key_tokens[s]);
    }
  } else {
    std::atomic<size_t> next_key{0};
    const auto runner = [&] {
      for (;;) {
        const size_t s = next_key.fetch_add(1, std::memory_order_relaxed);
        if (s >= keys.size()) return;
        scores[s] = StartOrJoinScore(keys[s], key_graphs[s], &infos[s],
                                     &pending[s], key_tokens[s]);
      }
    };
    {
      TaskGroup group;
      for (int r = 1; r < width; ++r) group.Spawn(runner);
      runner();  // the caller is runner 0
      group.Wait();
    }
    for (size_t s = 0; s < keys.size(); ++s) {
      if (!scores[s].has_value()) {
        // Coalesced with a foreign computation: wait under this key's
        // own budget (slice-wait — the key token always can expire, it
        // is chained under shutdown), falling back through the full
        // resolve loop when the foreign computation died of *its*
        // budget while ours is still live.
        coalesced_waits_.Increment();
        infos[s].coalesced = true;
        constexpr auto kJoinSlice = std::chrono::milliseconds(1);
        std::optional<Status> lapsed;
        while (pending[s].wait_for(kJoinSlice) !=
               std::future_status::ready) {
          if (Status budget = key_tokens[s].Check(); !budget.ok()) {
            lapsed = budget;
            break;
          }
        }
        if (lapsed.has_value()) {
          scores[s] = ScoreResult(*lapsed);
          continue;
        }
        ScoreResult joined = pending[s].get();
        if (!joined.ok() && joined.status().IsCancellationShaped() &&
            key_tokens[s].Check().ok()) {
          joined = GetOrComputeScore(keys[s], key_graphs[s], &infos[s],
                                     key_tokens[s]);
        }
        scores[s] = std::move(joined);
      }
    }
  }
  for (const ScoreKey& key : keys) graphs_.Unpin(key.graph);

  // Phase 2: per-request response assembly, distributed over the pool.
  // Never blocks (the header's deadlock-freedom invariant — the only
  // degraded fallback taken here is the non-blocking warm-ancestor one);
  // each slot is written by exactly one chunk, so results are
  // deterministic. Deadlines bound *work*, not delivery: a request whose
  // own deadline lapsed mid-batch still receives its key's result when a
  // sibling's longer budget finished the scoring.
  std::vector<std::optional<Result<BackboneResponse>>> out(
      static_cast<size_t>(n));
  ParallelFor(
      n, options_.num_threads,
      [&](int64_t begin, int64_t end, int /*chunk*/) {
        for (int64_t i = begin; i < end; ++i) {
          const size_t slot = static_cast<size_t>(i);
          const Resolved& r = resolved[slot];
          const BackboneRequest& request = requests[slot];
          const SteadyClock::time_point deadline = deadlines[slot];
          // Outcome accounting closes each slot exactly once: every
          // branch below assigns out[slot] and falls through to the
          // RecordOutcome at the bottom. Pre-resolution failures carry
          // an empty ResolveInfo; resolved requests copy their key's
          // shared info so the per-request extract span lands in a
          // private copy.
          ResolveInfo info;
          info.timed = tracer_.enabled();
          bool degraded = false;
          if (r.expired) {
            deadline_hits_.Increment();
            out[slot] = Result<BackboneResponse>(Status::DeadlineExceeded(
                "deadline expired before batch execution"));
          } else if (r.graph == nullptr) {
            out[slot] = Result<BackboneResponse>(Status::NotFound(
                "unknown graph fingerprint (AddGraph first)"));
          } else if (!request.cancel.IsNull() &&
                     !request.cancel.Check().ok()) {
            cancellations_.Increment();
            out[slot] = Result<BackboneResponse>(request.cancel.Check());
          } else {
            info = infos[r.key_slot];
            const ScoreResult& score = *scores[r.key_slot];
            if (!score.ok()) {
              const Status& status = score.status();
              if (status.IsDeadlineExceeded()) {
                deadline_hits_.Increment();
              } else if (status.IsCancelled()) {
                cancellations_.Increment();
              }
              out[slot] = Result<BackboneResponse>(status);
              if (request.allow_degraded &&
                  (status.IsCancellationShaped() || status.IsTransient() ||
                   status.IsResourceExhausted())) {
                if (std::optional<Result<BackboneResponse>> stale =
                        TryDegradedResponse(request, keys[r.key_slot])) {
                  out[slot] = *std::move(stale);
                  degraded = true;
                }
              }
            } else {
              SpanTimer span(tracer_, info.timed, &info.extract_start_ns,
                             &info.extract_ns);
              out[slot] = BuildResponse(request, **score, info.cache_hit);
            }
          }
          RecordOutcome(request, out[slot]->ok(), degraded, info, begin_ns,
                        deadline, queue_wait_ns);
        }
      });

  std::vector<Result<BackboneResponse>> results;
  results.reserve(static_cast<size_t>(n));
  for (auto& slot : out) results.push_back(std::move(*slot));
  return results;
}

std::future<std::vector<Result<BackboneResponse>>> BackboneEngine::Submit(
    std::vector<BackboneRequest> requests) {
  // Deadlines arm at submit time, so queueing delay counts against the
  // request budget — an async client's patience starts when it hands the
  // batch over, not when the dispatcher gets around to it.
  const SteadyClock::time_point now = SteadyClock::now();
  PendingBatch batch;
  batch.enqueued = now;
  batch.deadlines.reserve(requests.size());
  for (const BackboneRequest& request : requests) {
    batch.deadlines.push_back(DeadlineFor(request, now));
  }
  batch.requests = std::move(requests);
  std::future<std::vector<Result<BackboneResponse>>> future =
      batch.promise.get_future();
  std::optional<PendingBatch> shed;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (shutdown_) {
      batch.promise.set_value(
          FailAll(batch.requests.size(),
                  Status::Unavailable("engine is shutting down")));
      return future;
    }
    // Admission control: a bounded queue answers overload with a typed
    // refusal instead of unbounded memory growth.
    if (options_.max_queued_batches > 0 &&
        static_cast<int64_t>(queue_.size()) >=
            options_.max_queued_batches) {
      if (options_.overload_policy == OverloadPolicy::kRejectNew) {
        rejected_batches_.Increment();
        batch.promise.set_value(
            FailAll(batch.requests.size(),
                    Status::ResourceExhausted("submit queue is full")));
        return future;
      }
      shed = std::move(queue_.front());
      queue_.pop_front();
      shed_batches_.Increment();
    }
    queue_.push_back(std::move(batch));
    submitted_batches_.Increment();
  }
  if (shed.has_value()) {
    // Resolved outside the lock: a waiter on the shed future may react
    // by submitting again, which takes queue_mu_.
    shed->promise.set_value(
        FailAll(shed->requests.size(),
                Status::Unavailable("shed by overload policy")));
  }
  queue_cv_.notify_one();
  return future;
}

void BackboneEngine::DispatcherLoop() {
  std::unique_lock<std::mutex> lock(queue_mu_);
  // Periodic background snapshots ride the dispatcher thread: it already
  // exists, already wakes for work, and a snapshot between batches can
  // never run concurrently with one from the destructor. Snapshots are
  // maintenance — no request deadline applies to them.
  const bool periodic = options_.snapshot_interval.count() > 0 &&
                        !options_.snapshot_dir.empty();
  auto next_snapshot = periodic
                           ? SteadyClock::now() + options_.snapshot_interval
                           : SteadyClock::time_point::max();
  for (;;) {
    if (periodic) {
      queue_cv_.wait_until(lock, next_snapshot, [this] {
        return shutdown_ || !queue_.empty();
      });
    } else {
      queue_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
    }
    if (shutdown_) break;
    if (periodic && SteadyClock::now() >= next_snapshot) {
      lock.unlock();
      WriteSnapshotNow();  // failures counted in snapshot_failures_
      lock.lock();
      next_snapshot = SteadyClock::now() + options_.snapshot_interval;
    }
    if (queue_.empty()) continue;
    PendingBatch batch = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    // Fault-injection site: a stalled dispatcher. The stall is bounded
    // by engine shutdown (lifetime token), never by request deadlines —
    // the point is to let queued requests' budgets burn.
    if (FaultInjector* injector = ActiveFaultInjector();
        injector != nullptr &&
        injector->Draw(FaultSite::kDispatcherStall)) {
      InterruptibleSleep(injector->latency(FaultSite::kDispatcherStall),
                         lifetime_.token());
    }
    // Queue wait includes any injected stall above — from the client's
    // side both are time the batch sat between Submit and execution.
    const int64_t queue_wait_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            SteadyClock::now() - batch.enqueued)
            .count();
    if (options_.enable_metrics) queue_wait_ns_.Record(queue_wait_ns);
    batch.promise.set_value(ExecuteBatchWithDeadlines(
        batch.requests, batch.deadlines, queue_wait_ns));
    lock.lock();
  }
  // Shutdown: queued batches are *cancelled*, not executed — their
  // futures resolve immediately with a typed status instead of racing
  // the destructor's cache teardown. (lock is held here.)
  while (!queue_.empty()) {
    PendingBatch batch = std::move(queue_.front());
    queue_.pop_front();
    batch.promise.set_value(FailAll(
        batch.requests.size(),
        Status::Unavailable("engine is shutting down")));
  }
}

BackboneEngine::Stats BackboneEngine::stats() const {
  Stats stats;
  stats.requests = requests_.Value();
  stats.scores_computed = scores_computed_.Value();
  stats.coalesced_waits = coalesced_waits_.Value();
  stats.submitted_batches = submitted_batches_.Value();
  stats.negative_hits = negative_hits_.Value();
  stats.delta_rescores = delta_rescores_.Value();
  stats.delta_fallbacks = delta_fallbacks_.Value();
  stats.shed_batches = shed_batches_.Value();
  stats.rejected_batches = rejected_batches_.Value();
  stats.inflight_rejected = inflight_rejected_.Value();
  stats.deadline_hits = deadline_hits_.Value();
  stats.cancellations = cancellations_.Value();
  stats.retries = retries_.Value();
  stats.negative_exempt = negative_exempt_.Value();
  stats.degraded_served = degraded_served_.Value();
  stats.background_refreshes = background_refreshes_.Value();
  stats.restored_graphs = restored_graphs_;
  stats.restored_entries = restored_entries_;
  stats.restored_lineage = restored_lineage_;
  stats.quarantined_sections = quarantined_sections_;
  stats.snapshot_restore_errors = snapshot_restore_errors_;
  stats.snapshot_writes = snapshot_writes_.Value();
  stats.snapshot_failures = snapshot_failures_.Value();
  {
    // One coherent snapshot of the lock-guarded fields: both mutexes are
    // taken together (scoped_lock orders them deadlock-free) so queue
    // depth and negative entries describe the same instant instead of
    // two piecemeal reads with requests landing in between.
    std::scoped_lock lock(score_mu_, queue_mu_);
    stats.queue_depth = static_cast<int64_t>(queue_.size());
    // Live entries only: expired ones awaiting a lazy sweep don't count.
    const auto now = std::chrono::steady_clock::now();
    for (const auto& [key, entry] : negative_) {
      if (now < entry.expiry) ++stats.negative_entries;
    }
  }
  stats.graphs = graphs_.stats();
  stats.cache = cache_.stats();
  return stats;
}

obs::AnswerPath BackboneEngine::ClassifyPath(bool ok, bool degraded,
                                             const ResolveInfo& info) {
  // Precedence mirrors how the answer was actually produced: a degraded
  // serve overrides everything (the exact path already failed), then
  // failures split on whether the negative cache answered. A coalesced
  // joiner without its own cache hit classifies as cold — it paid (a
  // share of) a fresh computation's latency, which is what the per-path
  // histogram prices.
  if (degraded) return obs::AnswerPath::kDegraded;
  if (!ok) {
    return info.negative_hit ? obs::AnswerPath::kNegative
                             : obs::AnswerPath::kFailed;
  }
  if (info.cache_hit) return obs::AnswerPath::kWarm;
  if (info.delta_patched) return obs::AnswerPath::kDelta;
  return obs::AnswerPath::kCold;
}

void BackboneEngine::RecordOutcome(const BackboneRequest& request, bool ok,
                                   bool degraded, const ResolveInfo& info,
                                   int64_t begin_ns,
                                   SteadyClock::time_point deadline,
                                   int64_t queue_wait_ns) {
  const bool metrics = options_.enable_metrics;
  const bool tracing = tracer_.enabled();
  if (!metrics && !tracing) return;
  const int64_t end_ns = tracer_.NowNs();
  const int64_t total_ns = std::max<int64_t>(end_ns - begin_ns, 0);
  const obs::AnswerPath path = ClassifyPath(ok, degraded, info);
  if (metrics) {
    kind_latency_[static_cast<size_t>(request.kind)]->Record(total_ns);
    path_latency_[static_cast<size_t>(path)]->Record(total_ns);
  }
  if (!tracing || !tracer_.ShouldSample()) return;

  obs::RequestTrace trace;
  trace.request_id =
      trace_ids_.fetch_add(1, std::memory_order_relaxed) + 1;
  trace.SetMethod(MethodName(request.method));
  trace.SetKind(RequestKindName(request.kind));
  trace.path = path;
  trace.ok = ok;
  trace.cache_hit = info.cache_hit;
  trace.degraded = degraded;
  trace.retries = static_cast<uint8_t>(std::min(info.retries, 255));
  // The trace starts at admission: queue wait (async batches) precedes
  // the execution window begin_ns opened.
  const int64_t origin = begin_ns - queue_wait_ns;
  trace.begin_ns = origin;
  trace.total_ns = end_ns - origin;
  if (deadline != SteadyClock::time_point::max()) {
    trace.deadline_slack_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            deadline - SteadyClock::now())
            .count();
  }
  if (queue_wait_ns > 0) {
    trace.AddSpan(obs::SpanKind::kAdmission, 0, queue_wait_ns);
  }
  const auto add_span = [&](obs::SpanKind kind, int64_t start_ns,
                            int64_t duration_ns) {
    if (start_ns >= 0) {
      trace.AddSpan(kind, start_ns - origin, duration_ns);
    }
  };
  add_span(obs::SpanKind::kCacheLookup, info.lookup_start_ns,
           info.lookup_ns);
  add_span(obs::SpanKind::kLineageWalk, info.lineage_start_ns,
           info.lineage_ns);
  add_span(obs::SpanKind::kDeltaPatch, info.patch_start_ns, info.patch_ns);
  add_span(obs::SpanKind::kColdScore, info.score_start_ns, info.score_ns);
  add_span(obs::SpanKind::kExtract, info.extract_start_ns,
           info.extract_ns);
  tracer_.Commit(trace);
}

void BackboneEngine::RegisterEngineMetrics() {
  auto counter = [&](const char* name, obs::ShardedCounter* c) {
    registry_.RegisterCounter(name, c, this);
  };
  counter("engine.requests", &requests_);
  counter("engine.scores_computed", &scores_computed_);
  counter("engine.coalesced_waits", &coalesced_waits_);
  counter("engine.submitted_batches", &submitted_batches_);
  counter("engine.negative_hits", &negative_hits_);
  counter("engine.delta_rescores", &delta_rescores_);
  counter("engine.delta_fallbacks", &delta_fallbacks_);
  counter("engine.shed_batches", &shed_batches_);
  counter("engine.rejected_batches", &rejected_batches_);
  counter("engine.inflight_rejected", &inflight_rejected_);
  counter("engine.deadline_hits", &deadline_hits_);
  counter("engine.cancellations", &cancellations_);
  counter("engine.retries", &retries_);
  counter("engine.negative_exempt", &negative_exempt_);
  counter("engine.degraded_served", &degraded_served_);
  counter("engine.background_refreshes", &background_refreshes_);
  counter("engine.snapshot_writes", &snapshot_writes_);
  counter("engine.snapshot_failures", &snapshot_failures_);

  registry_.RegisterGauge(
      "engine.queue_depth",
      [this] {
        std::lock_guard<std::mutex> lock(queue_mu_);
        return static_cast<int64_t>(queue_.size());
      },
      this);
  registry_.RegisterGauge(
      "engine.inflight_scores",
      [this] {
        std::lock_guard<std::mutex> lock(score_mu_);
        return static_cast<int64_t>(inflight_.size());
      },
      this);
  registry_.RegisterGauge(
      "engine.negative_entries",
      [this] {
        // Same live-scan semantics as stats(): expired entries awaiting
        // a lazy sweep don't count.
        const auto now = std::chrono::steady_clock::now();
        std::lock_guard<std::mutex> lock(score_mu_);
        int64_t live = 0;
        for (const auto& [key, entry] : negative_) {
          if (now < entry.expiry) ++live;
        }
        return live;
      },
      this);
  registry_.RegisterGauge("engine.restored_graphs",
                          [this] { return restored_graphs_; }, this);
  registry_.RegisterGauge("engine.restored_entries",
                          [this] { return restored_entries_; }, this);
  registry_.RegisterGauge("engine.restored_lineage",
                          [this] { return restored_lineage_; }, this);
  registry_.RegisterGauge("engine.quarantined_sections",
                          [this] { return quarantined_sections_; }, this);
  registry_.RegisterGauge("engine.snapshot_restore_errors",
                          [this] { return snapshot_restore_errors_; },
                          this);
  registry_.RegisterGauge(
      "trace.sampled", [this] { return tracer_.sampled(); }, this);
  registry_.RegisterGauge(
      "trace.dropped", [this] { return tracer_.dropped(); }, this);

  // Fault-injection fire counts, one gauge pair per site, read from
  // whatever injector is active at snapshot time — chaos runs report
  // injected-vs-observed from the same registry as everything else.
  for (int s = 0; s < kNumFaultSites; ++s) {
    const FaultSite site = static_cast<FaultSite>(s);
    const std::string base = std::string("fault.") + FaultSiteName(site);
    registry_.RegisterGauge(
        base + ".injected",
        [site] {
          FaultInjector* injector = ActiveFaultInjector();
          return injector != nullptr ? injector->injected(site) : 0;
        },
        this);
    registry_.RegisterGauge(
        base + ".draws",
        [site] {
          FaultInjector* injector = ActiveFaultInjector();
          return injector != nullptr ? injector->draws(site) : 0;
        },
        this);
  }

  if (options_.enable_metrics) {
    for (int k = 0; k < kNumRequestKinds; ++k) {
      registry_.RegisterHistogram(
          std::string("engine.latency.kind.") +
              RequestKindName(static_cast<RequestKind>(k)),
          kind_latency_[static_cast<size_t>(k)].get(), this);
    }
    for (int p = 0; p < obs::kNumAnswerPaths; ++p) {
      const auto path = static_cast<obs::AnswerPath>(p);
      if (path == obs::AnswerPath::kUnknown) continue;  // never recorded
      registry_.RegisterHistogram(
          std::string("engine.latency.path.") + obs::AnswerPathName(path),
          path_latency_[static_cast<size_t>(p)].get(), this);
    }
  }
  registry_.RegisterHistogram("engine.queue_wait_ns", &queue_wait_ns_,
                              this);
  registry_.RegisterHistogram("engine.batch_execute_ns",
                              &batch_execute_ns_, this);
  registry_.RegisterHistogram("engine.snapshot_write_ns",
                              &snapshot_write_ns_, this);
  registry_.RegisterHistogram("engine.snapshot_restore_ns",
                              &snapshot_restore_ns_, this);

  cache_.RegisterMetrics(registry_, "cache", this);
  graphs_.RegisterMetrics(registry_, "store", this);
}

}  // namespace netbone
