#include "service/engine.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "common/parallel.h"
#include "core/filter.h"
#include "eval/stability.h"

namespace netbone {

BackboneEngine::BackboneEngine(const Options& options)
    : options_(options), cache_(options.cache_byte_budget) {
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

BackboneEngine::~BackboneEngine() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    shutdown_ = true;
  }
  queue_cv_.notify_all();
  dispatcher_.join();  // drains queued batches before exiting
}

uint64_t BackboneEngine::AddGraph(Graph graph) {
  return graphs_.Intern(std::move(graph)).fingerprint;
}

std::shared_ptr<const Graph> BackboneEngine::FindGraph(
    uint64_t fingerprint) const {
  return graphs_.Find(fingerprint);
}

BackboneEngine::ScoreResult BackboneEngine::GetOrComputeScore(
    const ScoreKey& key, const std::shared_ptr<const Graph>& graph,
    bool* cache_hit) {
  *cache_hit = false;
  std::promise<ScoreResult> promise;
  {
    std::unique_lock<std::mutex> lock(score_mu_);
    if (std::shared_ptr<const CachedScore> hit = cache_.Get(key)) {
      *cache_hit = true;
      return ScoreResult(std::move(hit));
    }
    const auto it = inflight_.find(key);
    if (it != inflight_.end()) {
      // Someone is already scoring this key: share their result. Only
      // caller-context threads reach here (header invariant), so the wait
      // cannot starve the pool the scorer needs.
      std::shared_future<ScoreResult> future = it->second;
      lock.unlock();
      coalesced_waits_.fetch_add(1, std::memory_order_relaxed);
      return future.get();
    }
    inflight_.emplace(key, promise.get_future().share());
  }

  RunMethodOptions run;
  run.num_threads = options_.num_threads;
  run.hss_max_cost = key.options.hss_max_cost;
  run.hss_source_sample_size = key.options.hss_source_sample_size;
  run.hss_sample_seed = key.options.hss_sample_seed;
  scores_computed_.fetch_add(1, std::memory_order_relaxed);
  Result<ScoredEdges> scored = RunMethod(key.method, *graph, run);
  // Failures are not cached: the error is shared with current waiters,
  // but a later request gets a fresh attempt.
  ScoreResult result =
      scored.ok()
          ? ScoreResult(CachedScore::Build(graph, std::move(*scored)))
          : ScoreResult(scored.status());
  {
    std::lock_guard<std::mutex> lock(score_mu_);
    if (result.ok()) cache_.Put(key, *result);
    inflight_.erase(key);
  }
  promise.set_value(result);
  return result;
}

Result<BackboneResponse> BackboneEngine::BuildResponse(
    const BackboneRequest& request, const CachedScore& score,
    bool cache_hit) const {
  const ScoreOrder& order = score.order();
  const SweepProfile& profile = score.profile();
  BackboneResponse response;
  response.cache_hit = cache_hit;

  const auto fill_extraction = [&](int64_t k) {
    // PrefixMask clamps the same way, so `kept` needs no mask; the O(E)
    // mask walk only runs when the caller wants the edge list.
    const int64_t kept = std::clamp<int64_t>(k, 0, order.size());
    response.kept = kept;
    if (profile.target_nodes > 0) {
      response.coverage = profile.CoverageAt(kept);
    }
    response.weight_share = profile.WeightShareAt(kept);
    if (request.include_edges) {
      response.kept_edges = MaskToEdgeIds(order.PrefixMask(k));
    }
  };

  switch (request.kind) {
    case RequestKind::kTopK:
      fill_extraction(request.k);
      break;
    case RequestKind::kTopShare:
      fill_extraction(order.KForShare(request.share));
      break;
    case RequestKind::kScoreThreshold:
      // The order is score-descending, so the edges strictly above the
      // threshold are exactly the first CountAbove ranks — the same set
      // FilterByScore keeps.
      fill_extraction(order.CountAbove(request.threshold));
      break;
    case RequestKind::kGrowUntilConnected:
      fill_extraction(profile.connect_k);
      break;
    case RequestKind::kSweep: {
      if (profile.target_nodes <= 0) {
        return Status::FailedPrecondition(
            "graph has no connected node to cover");
      }
      response.sweep.reserve(request.shares.size());
      for (const double share : request.shares) {
        const int64_t k = order.KForShare(share);
        response.sweep.push_back(
            SweepPoint{k, profile.CoverageAt(k), profile.WeightShareAt(k)});
      }
      response.connect_k = profile.connect_k;
      break;
    }
    case RequestKind::kCoveragePoint: {
      if (profile.target_nodes <= 0) {
        return Status::FailedPrecondition(
            "graph has no connected node to cover");
      }
      const int64_t k = order.KForShare(request.share);
      response.kept = k;
      response.coverage = profile.CoverageAt(k);
      response.weight_share = profile.WeightShareAt(k);
      break;
    }
    case RequestKind::kStabilityPoint: {
      const std::shared_ptr<const Graph> next =
          graphs_.Find(request.next_graph);
      if (next == nullptr) {
        return Status::NotFound("unknown next_graph fingerprint");
      }
      if (next->num_nodes() != score.graph().num_nodes()) {
        return Status::InvalidArgument(
            "stability snapshots must share the node universe");
      }
      const BackboneMask mask =
          order.PrefixMask(order.KForShare(request.share));
      const Result<double> stability =
          Stability(score.graph(), *next, mask);
      if (!stability.ok()) return stability.status();
      response.stability = *stability;
      response.kept = mask.kept;
      break;
    }
  }
  return response;
}

Result<BackboneResponse> BackboneEngine::Execute(
    const BackboneRequest& request) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  const std::shared_ptr<const Graph> graph = graphs_.Find(request.graph);
  if (graph == nullptr) {
    return Status::NotFound("unknown graph fingerprint (AddGraph first)");
  }
  const ScoreKey key =
      MakeScoreKey(request.graph, request.method, request.score_options);
  bool cache_hit = false;
  const ScoreResult score = GetOrComputeScore(key, graph, &cache_hit);
  if (!score.ok()) return score.status();
  return BuildResponse(request, **score, cache_hit);
}

std::vector<Result<BackboneResponse>> BackboneEngine::ExecuteBatch(
    std::span<const BackboneRequest> requests) {
  const int64_t n = static_cast<int64_t>(requests.size());
  requests_.fetch_add(n, std::memory_order_relaxed);

  // Resolve graphs and collapse the batch onto its distinct score keys
  // (first-appearance order, so the scoring order is deterministic).
  struct Resolved {
    std::shared_ptr<const Graph> graph;  // nullptr = unknown fingerprint
    size_t key_slot = 0;
  };
  std::vector<Resolved> resolved(static_cast<size_t>(n));
  std::vector<ScoreKey> keys;
  std::vector<std::shared_ptr<const Graph>> key_graphs;
  std::unordered_map<ScoreKey, size_t, ScoreKeyHash> key_slots;
  for (int64_t i = 0; i < n; ++i) {
    const BackboneRequest& request = requests[static_cast<size_t>(i)];
    std::shared_ptr<const Graph> graph = graphs_.Find(request.graph);
    if (graph == nullptr) continue;
    const ScoreKey key =
        MakeScoreKey(request.graph, request.method, request.score_options);
    const auto [it, inserted] = key_slots.try_emplace(key, keys.size());
    if (inserted) {
      keys.push_back(key);
      key_graphs.push_back(graph);
    }
    resolved[static_cast<size_t>(i)] = Resolved{std::move(graph), it->second};
  }

  // Phase 1 (caller context, serial over keys): resolve every score once.
  // Each miss scores with full inner parallelism on the shared pool;
  // requests sharing a key — within this batch or with concurrent
  // executions — coalesce onto one computation.
  std::vector<std::optional<ScoreResult>> scores(keys.size());
  std::vector<char> cache_hits(keys.size(), 0);
  for (size_t s = 0; s < keys.size(); ++s) {
    bool cache_hit = false;
    scores[s] = GetOrComputeScore(keys[s], key_graphs[s], &cache_hit);
    cache_hits[s] = cache_hit ? 1 : 0;
  }

  // Phase 2: per-request response assembly, distributed over the pool.
  // Never blocks (the header's deadlock-freedom invariant); each slot is
  // written by exactly one chunk, so results are deterministic.
  std::vector<std::optional<Result<BackboneResponse>>> out(
      static_cast<size_t>(n));
  ParallelFor(n, options_.num_threads,
              [&](int64_t begin, int64_t end, int /*chunk*/) {
                for (int64_t i = begin; i < end; ++i) {
                  const size_t slot = static_cast<size_t>(i);
                  const Resolved& r = resolved[slot];
                  if (r.graph == nullptr) {
                    out[slot] = Result<BackboneResponse>(Status::NotFound(
                        "unknown graph fingerprint (AddGraph first)"));
                    continue;
                  }
                  const ScoreResult& score = *scores[r.key_slot];
                  if (!score.ok()) {
                    out[slot] = Result<BackboneResponse>(score.status());
                    continue;
                  }
                  out[slot] =
                      BuildResponse(requests[slot], **score,
                                    /*cache_hit=*/cache_hits[r.key_slot] != 0);
                }
              });

  std::vector<Result<BackboneResponse>> results;
  results.reserve(static_cast<size_t>(n));
  for (auto& slot : out) results.push_back(std::move(*slot));
  return results;
}

std::future<std::vector<Result<BackboneResponse>>> BackboneEngine::Submit(
    std::vector<BackboneRequest> requests) {
  PendingBatch batch;
  batch.requests = std::move(requests);
  std::future<std::vector<Result<BackboneResponse>>> future =
      batch.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (shutdown_) {
      std::vector<Result<BackboneResponse>> aborted;
      aborted.reserve(batch.requests.size());
      for (size_t i = 0; i < batch.requests.size(); ++i) {
        aborted.push_back(Result<BackboneResponse>(
            Status::FailedPrecondition("engine is shutting down")));
      }
      batch.promise.set_value(std::move(aborted));
      return future;
    }
    queue_.push_back(std::move(batch));
    submitted_batches_.fetch_add(1, std::memory_order_relaxed);
  }
  queue_cv_.notify_one();
  return future;
}

void BackboneEngine::DispatcherLoop() {
  std::unique_lock<std::mutex> lock(queue_mu_);
  for (;;) {
    queue_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (shutdown_) return;
      continue;
    }
    PendingBatch batch = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    batch.promise.set_value(ExecuteBatch(batch.requests));
    lock.lock();
  }
}

BackboneEngine::Stats BackboneEngine::stats() const {
  Stats stats;
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.scores_computed = scores_computed_.load(std::memory_order_relaxed);
  stats.coalesced_waits = coalesced_waits_.load(std::memory_order_relaxed);
  stats.submitted_batches =
      submitted_batches_.load(std::memory_order_relaxed);
  stats.graphs = graphs_.stats();
  stats.cache = cache_.stats();
  return stats;
}

}  // namespace netbone
