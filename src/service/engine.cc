#include "service/engine.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "common/parallel.h"
#include "core/delta_rescore.h"
#include "core/filter.h"
#include "eval/stability.h"
#include "graph/delta.h"

namespace netbone {

BackboneEngine::BackboneEngine(const Options& options)
    : options_(options),
      graphs_(options.graph_byte_budget),
      cache_(options.cache_byte_budget) {
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

BackboneEngine::~BackboneEngine() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    shutdown_ = true;
  }
  queue_cv_.notify_all();
  dispatcher_.join();  // drains queued batches before exiting
}

uint64_t BackboneEngine::AddGraph(Graph graph) {
  return graphs_.Intern(std::move(graph)).fingerprint;
}

uint64_t BackboneEngine::AddGraphRevision(Graph graph,
                                          uint64_t base_fingerprint) {
  const StoredGraph stored = graphs_.Intern(std::move(graph));
  // The delta is extracted once, at submission, over the two sorted edge
  // tables — request-time patching then starts from precomputed
  // difference lists. An unresolvable or incomparable base just degrades
  // to lineage-without-delta (the request path re-diffs or falls back).
  std::shared_ptr<const GraphDelta> delta;
  Result<GraphDelta> computed =
      graphs_.DeltaBetween(base_fingerprint, stored.fingerprint);
  if (computed.ok()) {
    delta = std::make_shared<const GraphDelta>(*std::move(computed));
  }
  // RegisterLineage ignores self-edges (a revision that dedupes to its
  // base) and zero fingerprints.
  cache_.RegisterLineage(stored.fingerprint, base_fingerprint,
                         std::move(delta));
  return stored.fingerprint;
}

std::shared_ptr<const Graph> BackboneEngine::FindGraph(
    uint64_t fingerprint) const {
  return graphs_.Find(fingerprint);
}

void BackboneEngine::RememberFailureLocked(const ScoreKey& key,
                                           const Status& status) {
  // The table is bounded: negative keys are attacker/typo-shaped input,
  // so a hard cap beats unbounded growth. On overflow, sweep dead
  // entries; if every entry is live, drop the table — the cost is one
  // re-attempt per key, not correctness.
  constexpr size_t kMaxNegativeEntries = 4096;
  if (negative_.size() >= kMaxNegativeEntries) {
    const auto now = std::chrono::steady_clock::now();
    for (auto it = negative_.begin(); it != negative_.end();) {
      it = it->second.expiry <= now ? negative_.erase(it) : std::next(it);
    }
    if (negative_.size() >= kMaxNegativeEntries) negative_.clear();
  }
  negative_[key] = NegativeEntry{
      status, std::chrono::steady_clock::now() + options_.negative_ttl};
}

std::optional<BackboneEngine::ScoreResult> BackboneEngine::StartOrJoinScore(
    const ScoreKey& key, const std::shared_ptr<const Graph>& graph,
    bool* cache_hit, std::shared_future<ScoreResult>* pending) {
  *cache_hit = false;
  const bool negative_enabled = options_.negative_ttl.count() > 0;
  std::promise<ScoreResult> promise;
  {
    std::unique_lock<std::mutex> lock(score_mu_);
    if (std::shared_ptr<const CachedScore> hit = cache_.Get(key)) {
      *cache_hit = true;
      return ScoreResult(std::move(hit));
    }
    if (negative_enabled) {
      const auto it = negative_.find(key);
      if (it != negative_.end()) {
        if (std::chrono::steady_clock::now() < it->second.expiry) {
          negative_hits_.fetch_add(1, std::memory_order_relaxed);
          return ScoreResult(it->second.status);
        }
        negative_.erase(it);  // expired: re-attempt
      }
    }
    const auto it = inflight_.find(key);
    if (it != inflight_.end()) {
      // Someone is already scoring this key: share their result. The
      // future is handed back, never awaited here — waiting is caller-
      // context-only (header invariant), and this function also runs
      // inside ExecuteBatch's work-stealing tasks.
      *pending = it->second;
      return std::nullopt;
    }
    inflight_.emplace(key, promise.get_future().share());
  }

  // The caller holds the store pin for this graph (taken at resolve time,
  // before any fan-out, so the byte budget cannot evict the fingerprint
  // between resolution and this scoring). Three roads, cheapest first:
  // the positive cache answered above; a warm ancestor patch; the full
  // rescore.
  ScoreResult result = [&]() -> ScoreResult {
    if (options_.enable_delta_rescore) {
      if (std::shared_ptr<const CachedScore> patched =
              TryDeltaRescore(key, graph)) {
        return ScoreResult(std::move(patched));
      }
    }
    RunMethodOptions run;
    run.num_threads = options_.num_threads;
    run.hss_max_cost = key.options.hss_max_cost;
    run.hss_source_sample_size = key.options.hss_source_sample_size;
    run.hss_sample_seed = key.options.hss_sample_seed;
    scores_computed_.fetch_add(1, std::memory_order_relaxed);
    Result<ScoredEdges> scored = RunMethod(key.method, *graph, run);
    if (!scored.ok()) return ScoreResult(scored.status());
    return ScoreResult(CachedScore::Build(graph, std::move(*scored)));
  }();
  {
    std::lock_guard<std::mutex> lock(score_mu_);
    if (result.ok()) {
      cache_.Put(key, *result);
    } else if (negative_enabled) {
      // The error is shared with current waiters AND remembered: repeated
      // requests on a bad key are answered from the negative cache until
      // the TTL lapses or the generation is cleared.
      RememberFailureLocked(key, result.status());
    }
    inflight_.erase(key);
  }
  promise.set_value(result);
  return result;
}

std::shared_ptr<const CachedScore> BackboneEngine::TryDeltaRescore(
    const ScoreKey& key, const std::shared_ptr<const Graph>& graph) {
  if (!SupportsDeltaRescore(key.method)) return nullptr;

  // Walk the lineage chain for the nearest warm ancestor entry of this
  // (method, options). Bounded hops guard against cycles a client could
  // register; the probe uses Peek so ancestor lookups don't distort the
  // request-facing hit rate. When the warm ancestor is the direct parent,
  // the submission-time delta is already on the lineage record; a deeper
  // ancestor is re-diffed here.
  constexpr int kMaxLineageHops = 8;
  std::shared_ptr<const CachedScore> base;
  std::shared_ptr<const GraphDelta> stored_delta;
  uint64_t base_fingerprint = 0;
  uint64_t fingerprint = key.graph;
  for (int hop = 0; hop < kMaxLineageHops; ++hop) {
    ScoreCache::Lineage lineage = cache_.LineageFor(fingerprint);
    if (lineage.parent == 0 || lineage.parent == key.graph) break;
    if (std::shared_ptr<const CachedScore> entry = cache_.Peek(
            MakeScoreKey(lineage.parent, key.method, key.options))) {
      base = std::move(entry);
      base_fingerprint = lineage.parent;
      if (fingerprint == key.graph) stored_delta = std::move(lineage.delta);
      break;
    }
    fingerprint = lineage.parent;
  }
  if (base == nullptr) return nullptr;

  // From here on a warm ancestor exists: any bail-out is a fallback the
  // stats should show. The ancestor graph comes from the entry's own
  // handle, so a GraphStore eviction of the ancestor cannot break the
  // diff.
  std::optional<GraphDelta> computed;
  if (stored_delta == nullptr) {
    Result<GraphDelta> diff = ComputeGraphDelta(base->graph(), *graph);
    if (!diff.ok()) {
      delta_fallbacks_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    computed = *std::move(diff);
  }
  const GraphDelta& delta =
      stored_delta != nullptr ? *stored_delta : *computed;
  DeltaRescoreOptions rescore_options;
  rescore_options.num_threads = options_.num_threads;
  rescore_options.grain = options_.delta_grain;
  Result<std::optional<DeltaRescoreResult>> rescored = DeltaRescore(
      key.method, base->scored(), *graph, delta, rescore_options);
  if (!rescored.ok() || !rescored->has_value()) {
    // A rescoring *error* also falls back: the full path reproduces the
    // canonical error and feeds the negative cache as usual.
    delta_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  DeltaRescoreResult& patch = **rescored;
  delta_rescores_.fetch_add(1, std::memory_order_relaxed);
  return CachedScore::BuildPatched(
      graph,
      ScoredEdges(graph.get(), base->scored().method(),
                  std::move(patch.scores), base->scored().has_sdev()),
      *base, patch.base_to_next, patch.dirty, base_fingerprint);
}

BackboneEngine::ScoreResult BackboneEngine::GetOrComputeScore(
    const ScoreKey& key, const std::shared_ptr<const Graph>& graph,
    bool* cache_hit) {
  std::shared_future<ScoreResult> pending;
  std::optional<ScoreResult> result =
      StartOrJoinScore(key, graph, cache_hit, &pending);
  if (result.has_value()) return *std::move(result);
  coalesced_waits_.fetch_add(1, std::memory_order_relaxed);
  return pending.get();  // caller context: safe to block
}

void BackboneEngine::ClearNegativeCache() {
  std::lock_guard<std::mutex> lock(score_mu_);
  negative_.clear();
}

Result<BackboneResponse> BackboneEngine::BuildResponse(
    const BackboneRequest& request, const CachedScore& score,
    bool cache_hit) const {
  const ScoreOrder& order = score.order();
  const SweepProfile& profile = score.profile();
  BackboneResponse response;
  response.cache_hit = cache_hit;

  const auto fill_extraction = [&](int64_t k) {
    // PrefixMask clamps the same way, so `kept` needs no mask; the O(E)
    // mask walk only runs when the caller wants the edge list.
    const int64_t kept = std::clamp<int64_t>(k, 0, order.size());
    response.kept = kept;
    if (profile.target_nodes > 0) {
      response.coverage = profile.CoverageAt(kept);
    }
    response.weight_share = profile.WeightShareAt(kept);
    if (request.include_edges) {
      response.kept_edges = MaskToEdgeIds(order.PrefixMask(k));
    }
  };

  switch (request.kind) {
    case RequestKind::kTopK:
      fill_extraction(request.k);
      break;
    case RequestKind::kTopShare:
      fill_extraction(order.KForShare(request.share));
      break;
    case RequestKind::kScoreThreshold:
      // The order is score-descending, so the edges strictly above the
      // threshold are exactly the first CountAbove ranks — the same set
      // FilterByScore keeps.
      fill_extraction(order.CountAbove(request.threshold));
      break;
    case RequestKind::kGrowUntilConnected:
      fill_extraction(profile.connect_k);
      break;
    case RequestKind::kSweep: {
      if (profile.target_nodes <= 0) {
        return Status::FailedPrecondition(
            "graph has no connected node to cover");
      }
      response.sweep.reserve(request.shares.size());
      for (const double share : request.shares) {
        const int64_t k = order.KForShare(share);
        response.sweep.push_back(
            SweepPoint{k, profile.CoverageAt(k), profile.WeightShareAt(k)});
      }
      response.connect_k = profile.connect_k;
      break;
    }
    case RequestKind::kCoveragePoint: {
      if (profile.target_nodes <= 0) {
        return Status::FailedPrecondition(
            "graph has no connected node to cover");
      }
      const int64_t k = order.KForShare(request.share);
      response.kept = k;
      response.coverage = profile.CoverageAt(k);
      response.weight_share = profile.WeightShareAt(k);
      break;
    }
    case RequestKind::kStabilityPoint: {
      const std::shared_ptr<const Graph> next =
          graphs_.Find(request.next_graph);
      if (next == nullptr) {
        return Status::NotFound("unknown next_graph fingerprint");
      }
      if (next->num_nodes() != score.graph().num_nodes()) {
        return Status::InvalidArgument(
            "stability snapshots must share the node universe");
      }
      const BackboneMask mask =
          order.PrefixMask(order.KForShare(request.share));
      const Result<double> stability =
          Stability(score.graph(), *next, mask);
      if (!stability.ok()) return stability.status();
      response.stability = *stability;
      response.kept = mask.kept;
      break;
    }
  }
  return response;
}

Result<BackboneResponse> BackboneEngine::Execute(
    const BackboneRequest& request) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  const std::shared_ptr<const Graph> graph = graphs_.Find(request.graph);
  if (graph == nullptr) {
    return Status::NotFound("unknown graph fingerprint (AddGraph first)");
  }
  const ScoreKey key =
      MakeScoreKey(request.graph, request.method, request.score_options);
  bool cache_hit = false;
  // Pinned from resolve through scoring: the store's byte budget must not
  // evict a graph a request is actively using (the shared_ptr keeps the
  // memory alive regardless — the pin keeps the *fingerprint* resolvable
  // for the requests that will want the cached score next).
  graphs_.Pin(request.graph);
  const ScoreResult score = GetOrComputeScore(key, graph, &cache_hit);
  graphs_.Unpin(request.graph);
  if (!score.ok()) return score.status();
  return BuildResponse(request, **score, cache_hit);
}

std::vector<Result<BackboneResponse>> BackboneEngine::ExecuteBatch(
    std::span<const BackboneRequest> requests) {
  const int64_t n = static_cast<int64_t>(requests.size());
  requests_.fetch_add(n, std::memory_order_relaxed);

  // Resolve graphs and collapse the batch onto its distinct score keys
  // (first-appearance order, so the scoring order is deterministic).
  struct Resolved {
    std::shared_ptr<const Graph> graph;  // nullptr = unknown fingerprint
    size_t key_slot = 0;
  };
  std::vector<Resolved> resolved(static_cast<size_t>(n));
  std::vector<ScoreKey> keys;
  std::vector<std::shared_ptr<const Graph>> key_graphs;
  std::unordered_map<ScoreKey, size_t, ScoreKeyHash> key_slots;
  for (int64_t i = 0; i < n; ++i) {
    const BackboneRequest& request = requests[static_cast<size_t>(i)];
    std::shared_ptr<const Graph> graph = graphs_.Find(request.graph);
    if (graph == nullptr) continue;
    const ScoreKey key =
        MakeScoreKey(request.graph, request.method, request.score_options);
    const auto [it, inserted] = key_slots.try_emplace(key, keys.size());
    if (inserted) {
      keys.push_back(key);
      key_graphs.push_back(graph);
    }
    resolved[static_cast<size_t>(i)] = Resolved{std::move(graph), it->second};
  }

  // Every distinct key's graph stays pinned from here through phase 1,
  // so the store's byte budget cannot evict a fingerprint between this
  // resolution and its scoring.
  for (const ScoreKey& key : keys) graphs_.Pin(key.graph);

  // Phase 1: resolve every distinct score once, concurrently — a batch
  // mixing many cold keys overlaps their scorings instead of running
  // them back to back, and each scoring still fans its inner loops out
  // into the same pool. Concurrency is capped at options_.num_threads:
  // that many self-scheduling runner tasks claim key slots off a shared
  // cursor (the ParallelForDynamic pattern, hand-rolled here because a
  // slot that finds its key in flight elsewhere must hand the future
  // back instead of blocking). Requests sharing a key — within this
  // batch or with concurrent executions — coalesce onto one
  // computation; the caller awaits recorded futures after the fan-out
  // joins (futures are never awaited inside a task — the header's
  // deadlock-freedom invariant).
  std::vector<std::optional<ScoreResult>> scores(keys.size());
  std::vector<std::shared_future<ScoreResult>> pending(keys.size());
  std::vector<char> cache_hits(keys.size(), 0);
  const int width = static_cast<int>(
      std::min<size_t>(static_cast<size_t>(
                           ResolveThreadCount(options_.num_threads)),
                       keys.size()));
  if (width <= 1) {
    // One key (the common warm case) or a serial engine: no task handoff.
    for (size_t s = 0; s < keys.size(); ++s) {
      bool cache_hit = false;
      scores[s] = GetOrComputeScore(keys[s], key_graphs[s], &cache_hit);
      cache_hits[s] = cache_hit ? 1 : 0;
    }
  } else {
    std::atomic<size_t> next_key{0};
    const auto runner = [&] {
      for (;;) {
        const size_t s = next_key.fetch_add(1, std::memory_order_relaxed);
        if (s >= keys.size()) return;
        bool cache_hit = false;
        scores[s] = StartOrJoinScore(keys[s], key_graphs[s], &cache_hit,
                                     &pending[s]);
        cache_hits[s] = cache_hit ? 1 : 0;
      }
    };
    {
      TaskGroup group;
      for (int r = 1; r < width; ++r) group.Spawn(runner);
      runner();  // the caller is runner 0
      group.Wait();
    }
    for (size_t s = 0; s < keys.size(); ++s) {
      if (!scores[s].has_value()) {
        coalesced_waits_.fetch_add(1, std::memory_order_relaxed);
        scores[s] = pending[s].get();  // caller context: safe to block
      }
    }
  }
  for (const ScoreKey& key : keys) graphs_.Unpin(key.graph);

  // Phase 2: per-request response assembly, distributed over the pool.
  // Never blocks (the header's deadlock-freedom invariant); each slot is
  // written by exactly one chunk, so results are deterministic.
  std::vector<std::optional<Result<BackboneResponse>>> out(
      static_cast<size_t>(n));
  ParallelFor(n, options_.num_threads,
              [&](int64_t begin, int64_t end, int /*chunk*/) {
                for (int64_t i = begin; i < end; ++i) {
                  const size_t slot = static_cast<size_t>(i);
                  const Resolved& r = resolved[slot];
                  if (r.graph == nullptr) {
                    out[slot] = Result<BackboneResponse>(Status::NotFound(
                        "unknown graph fingerprint (AddGraph first)"));
                    continue;
                  }
                  const ScoreResult& score = *scores[r.key_slot];
                  if (!score.ok()) {
                    out[slot] = Result<BackboneResponse>(score.status());
                    continue;
                  }
                  out[slot] =
                      BuildResponse(requests[slot], **score,
                                    /*cache_hit=*/cache_hits[r.key_slot] != 0);
                }
              });

  std::vector<Result<BackboneResponse>> results;
  results.reserve(static_cast<size_t>(n));
  for (auto& slot : out) results.push_back(std::move(*slot));
  return results;
}

std::future<std::vector<Result<BackboneResponse>>> BackboneEngine::Submit(
    std::vector<BackboneRequest> requests) {
  PendingBatch batch;
  batch.requests = std::move(requests);
  std::future<std::vector<Result<BackboneResponse>>> future =
      batch.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (shutdown_) {
      std::vector<Result<BackboneResponse>> aborted;
      aborted.reserve(batch.requests.size());
      for (size_t i = 0; i < batch.requests.size(); ++i) {
        aborted.push_back(Result<BackboneResponse>(
            Status::FailedPrecondition("engine is shutting down")));
      }
      batch.promise.set_value(std::move(aborted));
      return future;
    }
    queue_.push_back(std::move(batch));
    submitted_batches_.fetch_add(1, std::memory_order_relaxed);
  }
  queue_cv_.notify_one();
  return future;
}

void BackboneEngine::DispatcherLoop() {
  std::unique_lock<std::mutex> lock(queue_mu_);
  for (;;) {
    queue_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (shutdown_) return;
      continue;
    }
    PendingBatch batch = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    batch.promise.set_value(ExecuteBatch(batch.requests));
    lock.lock();
  }
}

BackboneEngine::Stats BackboneEngine::stats() const {
  Stats stats;
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.scores_computed = scores_computed_.load(std::memory_order_relaxed);
  stats.coalesced_waits = coalesced_waits_.load(std::memory_order_relaxed);
  stats.submitted_batches =
      submitted_batches_.load(std::memory_order_relaxed);
  stats.negative_hits = negative_hits_.load(std::memory_order_relaxed);
  stats.delta_rescores = delta_rescores_.load(std::memory_order_relaxed);
  stats.delta_fallbacks = delta_fallbacks_.load(std::memory_order_relaxed);
  {
    // Live entries only: expired ones awaiting a lazy sweep don't count.
    const auto now = std::chrono::steady_clock::now();
    std::lock_guard<std::mutex> lock(score_mu_);
    for (const auto& [key, entry] : negative_) {
      if (now < entry.expiry) ++stats.negative_entries;
    }
  }
  stats.graphs = graphs_.stats();
  stats.cache = cache_.stats();
  return stats;
}

}  // namespace netbone
