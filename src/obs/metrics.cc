// Copyright 2026 The netbone Authors.

#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

namespace netbone::obs {

uint32_t ThreadSlot() {
  static std::atomic<uint32_t> next_slot{0};
  thread_local uint32_t slot =
      next_slot.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

int HistogramBucketIndex(int64_t value) {
  if (value < 0) value = 0;
  if (value < kHistogramSubBuckets) return static_cast<int>(value);
  const uint64_t v = static_cast<uint64_t>(value);
  int major = std::bit_width(v) - 1;  // v >= 16 so major >= 4
  if (major >= kHistogramMaxMajor) return kHistogramBuckets - 1;
  const int minor =
      static_cast<int>((v >> (major - 4)) & (kHistogramSubBuckets - 1));
  return kHistogramSubBuckets + (major - 4) * kHistogramSubBuckets + minor;
}

int64_t HistogramBucketLowerBound(int index) {
  if (index < 0) return 0;
  if (index >= kHistogramBuckets) index = kHistogramBuckets - 1;
  if (index < kHistogramSubBuckets) return index;
  const int rel = index - kHistogramSubBuckets;
  const int major = 4 + rel / kHistogramSubBuckets;
  const int minor = rel % kHistogramSubBuckets;
  return static_cast<int64_t>(kHistogramSubBuckets + minor) << (major - 4);
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  if (other.count == 0) return;
  if (count == 0) {
    min = other.min;
    max = other.max;
  } else {
    min = std::min(min, other.min);
    max = std::max(max, other.max);
  }
  count += other.count;
  sum += other.sum;
  for (int i = 0; i < kHistogramBuckets; ++i) buckets[i] += other.buckets[i];
}

int64_t HistogramSnapshot::ValueAtQuantile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  int64_t rank = static_cast<int64_t>(
      std::ceil(q * static_cast<double>(count)));
  rank = std::clamp<int64_t>(rank, 1, count);
  // The final recorded value is known exactly; report it rather than a
  // bucket lower bound when the quantile selects it.
  if (rank == count) return max;
  int64_t cumulative = 0;
  for (int i = 0; i < kHistogramBuckets; ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank) return HistogramBucketLowerBound(i);
  }
  return max;  // unreachable when bucket counts sum to `count`
}

namespace {

int DefaultHistogramShards() {
  const unsigned hw = std::thread::hardware_concurrency();
  const int shards = static_cast<int>(std::bit_ceil(hw == 0 ? 4u : hw));
  return std::clamp(shards, 1, 16);
}

}  // namespace

LatencyHistogram::LatencyHistogram(int num_shards) {
  if (num_shards <= 0) num_shards = DefaultHistogramShards();
  shards_.reserve(static_cast<size_t>(num_shards));
  for (int i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

void LatencyHistogram::Record(int64_t value) {
  if (value < 0) value = 0;
  Shard& shard = *shards_[ThreadSlot() % shards_.size()];
  shard.buckets[HistogramBucketIndex(value)].fetch_add(
      1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
  int64_t seen = shard.min.load(std::memory_order_relaxed);
  while (value < seen && !shard.min.compare_exchange_weak(
                             seen, value, std::memory_order_relaxed)) {
  }
  seen = shard.max.load(std::memory_order_relaxed);
  while (value > seen && !shard.max.compare_exchange_weak(
                             seen, value, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot LatencyHistogram::Snapshot() const {
  HistogramSnapshot snap;
  int64_t min = INT64_MAX;
  int64_t max = INT64_MIN;
  for (const auto& shard : shards_) {
    snap.count += shard->count.load(std::memory_order_relaxed);
    snap.sum += shard->sum.load(std::memory_order_relaxed);
    min = std::min(min, shard->min.load(std::memory_order_relaxed));
    max = std::max(max, shard->max.load(std::memory_order_relaxed));
    for (int i = 0; i < kHistogramBuckets; ++i) {
      snap.buckets[i] += shard->buckets[i].load(std::memory_order_relaxed);
    }
  }
  snap.min = snap.count > 0 ? min : 0;
  snap.max = snap.count > 0 ? max : 0;
  return snap;
}

void LatencyHistogram::Reset() {
  for (const auto& shard : shards_) {
    for (int i = 0; i < kHistogramBuckets; ++i) {
      shard->buckets[i].store(0, std::memory_order_relaxed);
    }
    shard->count.store(0, std::memory_order_relaxed);
    shard->sum.store(0, std::memory_order_relaxed);
    shard->min.store(INT64_MAX, std::memory_order_relaxed);
    shard->max.store(INT64_MIN, std::memory_order_relaxed);
  }
}

namespace {

template <typename Vec>
void MergeValues(Vec& into, const Vec& from) {
  for (const auto& value : from) {
    auto it = std::find_if(into.begin(), into.end(), [&](const auto& v) {
      return v.name == value.name;
    });
    if (it == into.end()) {
      into.push_back(value);
    } else {
      it->value += value.value;
    }
  }
}

std::string FormatNs(int64_t ns) {
  char buf[48];
  if (ns >= 1'000'000'000) {
    std::snprintf(buf, sizeof(buf), "%.2fs", static_cast<double>(ns) / 1e9);
  } else if (ns >= 1'000'000) {
    std::snprintf(buf, sizeof(buf), "%.2fms", static_cast<double>(ns) / 1e6);
  } else if (ns >= 1'000) {
    std::snprintf(buf, sizeof(buf), "%.1fus", static_cast<double>(ns) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(ns));
  }
  return buf;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void MetricsSnapshot::Merge(const MetricsSnapshot& other) {
  MergeValues(counters, other.counters);
  MergeValues(gauges, other.gauges);
  for (const auto& histogram : other.histograms) {
    auto it = std::find_if(
        histograms.begin(), histograms.end(),
        [&](const Histogram& h) { return h.name == histogram.name; });
    if (it == histograms.end()) {
      histograms.push_back(histogram);
    } else {
      it->hist.Merge(histogram.hist);
    }
  }
}

MetricsSnapshot MetricsSnapshot::WithPrefix(const std::string& prefix) const {
  MetricsSnapshot out = *this;
  for (Value& v : out.counters) v.name = prefix + v.name;
  for (Value& v : out.gauges) v.name = prefix + v.name;
  for (Histogram& h : out.histograms) h.name = prefix + h.name;
  return out;
}

int64_t MetricsSnapshot::ValueOf(const std::string& name,
                                 int64_t fallback) const {
  for (const Value& counter : counters) {
    if (counter.name == name) return counter.value;
  }
  for (const Value& gauge : gauges) {
    if (gauge.name == name) return gauge.value;
  }
  return fallback;
}

const HistogramSnapshot* MetricsSnapshot::FindHistogram(
    const std::string& name) const {
  for (const Histogram& histogram : histograms) {
    if (histogram.name == name) return &histogram.hist;
  }
  return nullptr;
}

std::string MetricsSnapshot::RenderText() const {
  size_t width = 8;
  for (const Value& v : counters) width = std::max(width, v.name.size());
  for (const Value& v : gauges) width = std::max(width, v.name.size());
  for (const Histogram& h : histograms) width = std::max(width, h.name.size());

  std::ostringstream out;
  auto pad = [&](const std::string& name) {
    out << "  " << name << std::string(width - name.size() + 2, ' ');
  };
  if (!counters.empty()) {
    out << "counters:\n";
    for (const Value& v : counters) {
      pad(v.name);
      out << v.value << "\n";
    }
  }
  if (!gauges.empty()) {
    out << "gauges:\n";
    for (const Value& v : gauges) {
      pad(v.name);
      out << v.value << "\n";
    }
  }
  if (!histograms.empty()) {
    out << "histograms:" << std::string(width - 8, ' ')
        << "count      p50      p95      p99      max\n";
    for (const Histogram& h : histograms) {
      pad(h.name);
      char row[128];
      std::snprintf(row, sizeof(row), "%-9lld%-9s%-9s%-9s%-9s",
                    static_cast<long long>(h.hist.count),
                    FormatNs(h.hist.p50()).c_str(),
                    FormatNs(h.hist.p95()).c_str(),
                    FormatNs(h.hist.p99()).c_str(),
                    FormatNs(h.hist.max).c_str());
      out << row << "\n";
    }
  }
  return out.str();
}

std::string MetricsSnapshot::RenderJson(const std::string& name) const {
  // Matches the JsonBenchLog schema: one object with a "records" array
  // whose entries are keyed by (method, n, threads). Histograms expose
  // their percentiles in the *_ns fields compare_bench_json.py reads;
  // counters/gauges carry "value" and a null median so the comparer
  // skips them for latency diffs but tools can still read them.
  std::ostringstream out;
  out << "{\n  \"bench\": \"" << JsonEscape(name) << "\",\n"
      << "  \"records\": [";
  bool first = true;
  auto begin_record = [&](const std::string& metric, const char* kind) {
    if (!first) out << ",";
    first = false;
    out << "\n    {\"method\": \"" << JsonEscape(metric) << "\", \"kind\": \""
        << kind << "\"";
  };
  for (const Value& v : counters) {
    begin_record(v.name, "counter");
    out << ", \"n\": 1, \"threads\": 1, \"value\": " << v.value
        << ", \"median_ns\": null, \"min_ns\": null}";
  }
  for (const Value& v : gauges) {
    begin_record(v.name, "gauge");
    out << ", \"n\": 1, \"threads\": 1, \"value\": " << v.value
        << ", \"median_ns\": null, \"min_ns\": null}";
  }
  for (const Histogram& h : histograms) {
    begin_record(h.name, "histogram");
    out << ", \"n\": " << h.hist.count << ", \"threads\": 1"
        << ", \"median_ns\": " << h.hist.p50()
        << ", \"min_ns\": " << h.hist.min
        << ", \"p95_ns\": " << h.hist.p95()
        << ", \"p99_ns\": " << h.hist.p99()
        << ", \"max_ns\": " << h.hist.max
        << ", \"sum_ns\": " << h.hist.sum << "}";
  }
  out << "\n  ]\n}\n";
  return out.str();
}

bool MetricsSnapshot::WriteJsonFile(const std::string& path,
                                    const std::string& name) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << RenderJson(name);
  out.flush();
  return static_cast<bool>(out);
}

void MetricRegistry::RegisterCounter(std::string name,
                                     const ShardedCounter* counter,
                                     const void* owner) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry entry;
  entry.name = std::move(name);
  entry.owner = owner;
  entry.counter = counter;
  entries_.push_back(std::move(entry));
}

void MetricRegistry::RegisterGauge(std::string name,
                                   std::function<int64_t()> read,
                                   const void* owner) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry entry;
  entry.name = std::move(name);
  entry.owner = owner;
  entry.gauge = std::move(read);
  entries_.push_back(std::move(entry));
}

void MetricRegistry::RegisterGaugeGroup(
    std::function<std::vector<MetricsSnapshot::Value>()> read,
    const void* owner) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry entry;
  entry.owner = owner;
  entry.gauge_group = std::move(read);
  entries_.push_back(std::move(entry));
}

void MetricRegistry::RegisterHistogram(std::string name,
                                       const LatencyHistogram* histogram,
                                       const void* owner) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry entry;
  entry.name = std::move(name);
  entry.owner = owner;
  entry.histogram = histogram;
  entries_.push_back(std::move(entry));
}

void MetricRegistry::Unregister(const void* owner) {
  if (owner == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  std::erase_if(entries_,
                [owner](const Entry& e) { return e.owner == owner; });
}

MetricsSnapshot MetricRegistry::Snapshot() const {
  MetricsSnapshot snap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Entry& entry : entries_) {
      if (entry.counter != nullptr) {
        snap.counters.push_back({entry.name, entry.counter->Value()});
      } else if (entry.gauge) {
        snap.gauges.push_back({entry.name, entry.gauge()});
      } else if (entry.gauge_group) {
        // One callback invocation yields all of the group's values, so
        // they come from a single coherent read of the owner's state.
        for (MetricsSnapshot::Value& value : entry.gauge_group()) {
          snap.gauges.push_back(std::move(value));
        }
      } else if (entry.histogram != nullptr) {
        snap.histograms.push_back({entry.name, entry.histogram->Snapshot()});
      }
    }
  }
  auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  // Coalesce same-name registrations (per-worker histograms and counters
  // register under one shared name): counters/gauges sum, histograms merge.
  auto coalesce_values = [](std::vector<MetricsSnapshot::Value>& values) {
    size_t out = 0;
    for (size_t i = 0; i < values.size(); ++i) {
      if (out > 0 && values[out - 1].name == values[i].name) {
        values[out - 1].value += values[i].value;
      } else {
        if (out != i) values[out] = std::move(values[i]);  // no self-move
        ++out;
      }
    }
    values.resize(out);
  };
  coalesce_values(snap.counters);
  coalesce_values(snap.gauges);
  size_t out = 0;
  for (size_t i = 0; i < snap.histograms.size(); ++i) {
    if (out > 0 && snap.histograms[out - 1].name == snap.histograms[i].name) {
      snap.histograms[out - 1].hist.Merge(snap.histograms[i].hist);
    } else {
      if (out != i) snap.histograms[out] = std::move(snap.histograms[i]);
      ++out;
    }
  }
  snap.histograms.resize(out);
  return snap;
}

MetricRegistry& MetricRegistry::Global() {
  static MetricRegistry* registry = new MetricRegistry();  // leaked: outlives
  return *registry;                                        // worker threads
}

}  // namespace netbone::obs
