// Copyright 2026 The netbone Authors.

#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <sstream>

namespace netbone::obs {

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kAdmission:
      return "admission";
    case SpanKind::kCacheLookup:
      return "cache_lookup";
    case SpanKind::kLineageWalk:
      return "lineage_walk";
    case SpanKind::kDeltaPatch:
      return "delta_patch";
    case SpanKind::kColdScore:
      return "cold_score";
    case SpanKind::kExtract:
      return "extract";
  }
  return "unknown";
}

const char* AnswerPathName(AnswerPath path) {
  switch (path) {
    case AnswerPath::kUnknown:
      return "unknown";
    case AnswerPath::kWarm:
      return "warm";
    case AnswerPath::kDelta:
      return "delta";
    case AnswerPath::kCold:
      return "cold";
    case AnswerPath::kDegraded:
      return "degraded";
    case AnswerPath::kNegative:
      return "negative";
    case AnswerPath::kFailed:
      return "failed";
  }
  return "unknown";
}

namespace {

int64_t MonotonicNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

TraceRecorder::TraceRecorder(int64_t sample_rate, int64_t buffer_bytes)
    : sample_rate_(sample_rate), epoch_ns_(MonotonicNs()) {
  if (sample_rate_ <= 0) return;
  int64_t capacity = buffer_bytes / static_cast<int64_t>(sizeof(Slot));
  capacity = std::max<int64_t>(capacity, 1);
  slots_.reserve(static_cast<size_t>(capacity));
  for (int64_t i = 0; i < capacity; ++i) {
    slots_.push_back(std::make_unique<Slot>());
  }
}

int64_t TraceRecorder::NowNs() const { return MonotonicNs() - epoch_ns_; }

void TraceRecorder::Commit(const RequestTrace& trace) {
  if (slots_.empty()) return;
  const uint64_t ticket = tickets_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = *slots_[ticket % slots_.size()];
  uint64_t seq = slot.seq.load(std::memory_order_relaxed);
  if ((seq & 1) != 0 ||
      !slot.seq.compare_exchange_strong(seq, seq + 1,
                                        std::memory_order_acquire)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  slot.ticket = ticket;
  slot.trace = trace;
  slot.seq.store(seq + 2, std::memory_order_release);
  committed_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<RequestTrace> TraceRecorder::Snapshot() const {
  std::vector<std::pair<uint64_t, RequestTrace>> entries;
  entries.reserve(slots_.size());
  for (const auto& slot_ptr : slots_) {
    Slot& slot = *slot_ptr;
    uint64_t seq = slot.seq.load(std::memory_order_acquire);
    // seq < 2: never written. Odd: a writer holds it — skip rather than
    // wait (the trace shows up in the next snapshot).
    if (seq < 2 || (seq & 1) != 0) continue;
    if (!slot.seq.compare_exchange_strong(seq, seq + 1,
                                          std::memory_order_acquire)) {
      continue;
    }
    entries.emplace_back(slot.ticket, slot.trace);
    slot.seq.store(seq + 2, std::memory_order_release);
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<RequestTrace> traces;
  traces.reserve(entries.size());
  for (auto& [ticket, trace] : entries) traces.push_back(trace);
  return traces;
}

std::string TraceRecorder::DumpJson() const {
  const std::vector<RequestTrace> traces = Snapshot();
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < traces.size(); ++i) {
    const RequestTrace& t = traces[i];
    if (i > 0) out << ",";
    out << "\n  {\"request_id\": " << t.request_id << ", \"method\": \""
        << t.method << "\", \"kind\": \"" << t.kind << "\", \"path\": \""
        << AnswerPathName(t.path) << "\", \"ok\": " << (t.ok ? "true" : "false")
        << ", \"cache_hit\": " << (t.cache_hit ? "true" : "false")
        << ", \"degraded\": " << (t.degraded ? "true" : "false")
        << ", \"retries\": " << static_cast<int>(t.retries)
        << ", \"begin_ns\": " << t.begin_ns << ", \"total_ns\": " << t.total_ns
        << ", \"deadline_slack_ns\": " << t.deadline_slack_ns
        << ", \"spans\": [";
    for (int s = 0; s < t.num_spans; ++s) {
      if (s > 0) out << ", ";
      out << "{\"span\": \"" << SpanKindName(t.spans[s].kind)
          << "\", \"start_ns\": " << t.spans[s].start_ns
          << ", \"duration_ns\": " << t.spans[s].duration_ns << "}";
    }
    out << "]}";
  }
  out << "\n]\n";
  return out.str();
}

}  // namespace netbone::obs
