// Copyright 2026 The netbone Authors.
//
// Per-request trace spans — the sampled half of observability. Where
// metrics.h answers "how many / how slow in aggregate", a trace answers
// "what did *this* request do": which spans it passed through
// (admission → cache lookup → lineage walk → delta patch | cold score →
// extraction), which answer path ultimately served it
// (warm|delta|cold|degraded|negative|failed), how many retries it
// burned, and how much deadline slack it had left.
//
// TraceRecorder is a fixed-byte-budget ring of trivially-copyable
// RequestTrace slots. Writers claim a slot with one relaxed fetch_add
// (the ticket) and take a per-slot CAS lock (even seq -> odd) for the
// copy; a writer that loses the CAS — the ring has lapped itself into a
// slot someone else holds — drops the trace and counts it, so the hot
// path never blocks and never allocates. Readers take the same per-slot
// lock, which keeps concurrent snapshot-during-traffic TSan-clean.
// Sampling is a cheap counter mod: rate 0 disables tracing entirely
// (ShouldSample is one predictable branch), rate 1 records every
// request, rate N records every Nth.

#ifndef NETBONE_OBS_TRACE_H_
#define NETBONE_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

namespace netbone::obs {

/// Lifecycle stages a request can pass through. A trace holds the spans
/// it actually entered — a warm hit has no kLineageWalk or kColdScore.
enum class SpanKind : uint8_t {
  kAdmission = 0,   ///< submit -> dispatch (queue wait)
  kCacheLookup,     ///< ScoreCache probe (+ negative-cache check)
  kLineageWalk,     ///< warm-ancestor search through the lineage map
  kDeltaPatch,      ///< incremental rescore from a warm ancestor
  kColdScore,       ///< full from-scratch scoring
  kExtract,         ///< response assembly (sweep / threshold / top-k)
};
inline constexpr int kNumSpanKinds = 6;

const char* SpanKindName(SpanKind kind);

/// Which road ultimately answered (the outcome tag on the whole trace).
enum class AnswerPath : uint8_t {
  kUnknown = 0,
  kWarm,      ///< served from the score cache
  kDelta,     ///< patched incrementally from a warm ancestor
  kCold,      ///< scored from scratch
  kDegraded,  ///< served approximate (warm ancestor / sampled HSS)
  kNegative,  ///< refused fast from the negative cache
  kFailed,    ///< errored (deadline, cancellation, scoring failure)
};
inline constexpr int kNumAnswerPaths = 7;

const char* AnswerPathName(AnswerPath path);

struct TraceSpan {
  SpanKind kind = SpanKind::kAdmission;
  int64_t start_ns = 0;     ///< relative to RequestTrace::begin_ns
  int64_t duration_ns = 0;
};

/// One request's record. Trivially copyable by design — the ring slots
/// copy it with operator=, and labels are fixed char buffers, not
/// std::string.
struct RequestTrace {
  static constexpr int kMaxSpans = 8;
  static constexpr int kLabelBytes = 24;

  uint64_t request_id = 0;
  char method[kLabelBytes] = {0};   ///< backbone method name
  char kind[kLabelBytes] = {0};     ///< request kind name
  int64_t begin_ns = 0;             ///< recorder-epoch-relative start
  int64_t total_ns = 0;
  int64_t deadline_slack_ns = 0;    ///< remaining at completion; <0 = blown
  AnswerPath path = AnswerPath::kUnknown;
  uint8_t retries = 0;
  bool cache_hit = false;
  bool degraded = false;
  bool ok = false;
  uint8_t num_spans = 0;
  TraceSpan spans[kMaxSpans];

  /// Appends a span; silently drops past kMaxSpans (num_spans still
  /// reflects only the kept spans — a chain never reads torn).
  void AddSpan(SpanKind kind, int64_t start_ns, int64_t duration_ns) {
    if (num_spans >= kMaxSpans) return;
    spans[num_spans++] = TraceSpan{kind, start_ns, duration_ns};
  }
  void SetMethod(const std::string& name) { CopyLabel(method, name); }
  void SetKind(const std::string& name) { CopyLabel(kind, name); }

 private:
  static void CopyLabel(char (&dst)[kLabelBytes], const std::string& src) {
    const size_t n = std::min(src.size(), sizeof(dst) - 1);
    std::memcpy(dst, src.data(), n);
    dst[n] = '\0';
  }
};

static_assert(std::is_trivially_copyable_v<RequestTrace>,
              "ring slots copy RequestTrace by assignment");

/// Fixed-budget ring of sampled request traces. All methods are safe to
/// call from any thread at any time.
class TraceRecorder {
 public:
  /// sample_rate: 0 = off, 1 = every request, N = every Nth request.
  /// buffer_bytes is rounded down to whole slots (>= 1 slot when on).
  TraceRecorder(int64_t sample_rate, int64_t buffer_bytes);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  bool enabled() const { return sample_rate_ > 0; }
  int64_t sample_rate() const { return sample_rate_; }
  int64_t capacity() const { return static_cast<int64_t>(slots_.size()); }

  /// True for the requests the configured rate selects. Each true return
  /// consumes one sampling ticket, so exactly 1-in-N requests sample.
  bool ShouldSample() {
    if (sample_rate_ <= 0) return false;
    return sample_counter_.fetch_add(1, std::memory_order_relaxed) %
               sample_rate_ ==
           0;
  }

  /// Stores a finished trace in the ring (overwriting the oldest).
  /// Never blocks: losing the per-slot lock race drops the trace and
  /// bumps dropped().
  void Commit(const RequestTrace& trace);

  /// Monotonic ns since this recorder was built — the timebase every
  /// stored begin_ns/span uses.
  int64_t NowNs() const;

  /// Stable copy of the ring's current contents, oldest first. Slots
  /// mid-write are skipped (they will appear in a later snapshot).
  std::vector<RequestTrace> Snapshot() const;

  /// Snapshot rendered as a JSON array of span-chain objects.
  std::string DumpJson() const;

  int64_t sampled() const {
    return committed_.load(std::memory_order_relaxed);
  }
  int64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

 private:
  struct alignas(64) Slot {
    /// Even = stable (seq/2 completed writes), odd = locked. Writers and
    /// readers both CAS even->odd, so payload access is always exclusive.
    std::atomic<uint64_t> seq{0};
    uint64_t ticket = 0;
    RequestTrace trace;
  };

  int64_t sample_rate_ = 0;
  int64_t epoch_ns_ = 0;
  std::vector<std::unique_ptr<Slot>> slots_;
  std::atomic<uint64_t> sample_counter_{0};
  std::atomic<uint64_t> tickets_{0};
  std::atomic<int64_t> committed_{0};
  std::atomic<int64_t> dropped_{0};
};

}  // namespace netbone::obs

#endif  // NETBONE_OBS_TRACE_H_
