// Copyright 2026 The netbone Authors.
//
// Low-overhead metrics primitives for the serving stack — the
// flight-recorder half that is always on. Three primitives and a
// registry:
//
//  * ShardedCounter — a monotonic (or up/down) integer spread over
//    cache-line-padded per-thread slots. The hot path is one relaxed
//    fetch_add on the caller's own slot — no contention, no fence — and
//    Value() sums the slots on read. Counts are exact: relaxed ordering
//    loosens *when* a slot's increment becomes visible, never whether it
//    is counted.
//  * LatencyHistogram — log2-bucketed with 16 linear sub-buckets per
//    octave (HdrHistogram-style), giving ~6% value resolution across
//    [0, 2^40) ns with a fixed 592-counter footprint per shard. Records
//    are exact bucket counts plus exact min/max/sum, so a merged snapshot
//    is *deterministic*: the same multiset of recorded values yields the
//    same buckets and the same p50/p95/p99 readout for every shard count
//    and every thread interleaving (pinned by tests/obs_test.cc).
//  * Callback gauges — point-in-time values (byte occupancy, queue
//    depth) read on demand at snapshot time, so the owning subsystem
//    pays nothing to maintain them.
//
// MetricRegistry names the primitives and renders one consistent
// MetricsSnapshot as an aligned text table or as JSON that is
// schema-compatible with the bench logs (BENCH_*.json): histogram rows
// carry {method, n, threads, median_ns, min_ns, p95_ns, p99_ns, max_ns},
// so bench/compare_bench_json.py can diff exported latency percentiles
// across runs exactly like bench medians.
//
// Ownership: the registry holds non-owning pointers. Register metrics
// with an `owner` cookie and Unregister(owner) before the metrics die
// (BackboneEngine and TaskScheduler do this in their destructors).

#ifndef NETBONE_OBS_METRICS_H_
#define NETBONE_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace netbone::obs {

/// Stable per-thread slot index used to spread counter/histogram traffic
/// over shards: threads are numbered on first use, so a thread always
/// lands on the same slot and two threads collide only when more than
/// `shards` threads exist (then they share a slot's fetch_add, still
/// exact).
uint32_t ThreadSlot();

/// Monotonic (or up/down — Add takes negative deltas) counter sharded
/// over cache-line-padded slots. Exact under any concurrency.
class ShardedCounter {
 public:
  /// Compile-time shard count: enough to keep 8–16 active threads on
  /// private lines without making every counter page-sized.
  static constexpr uint32_t kShards = 16;

  ShardedCounter() = default;
  ShardedCounter(const ShardedCounter&) = delete;
  ShardedCounter& operator=(const ShardedCounter&) = delete;

  void Add(int64_t delta) {
    shards_[ThreadSlot() & (kShards - 1)].value.fetch_add(
        delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  /// Sum over all slots. Exact once writers quiesce; during concurrent
  /// writes it is a valid linearization point per slot.
  int64_t Value() const {
    int64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// Resets every slot to zero. Callers must quiesce writers first.
  void Reset() {
    for (Shard& shard : shards_) {
      shard.value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) Shard {
    std::atomic<int64_t> value{0};
  };
  std::array<Shard, kShards> shards_;
};

/// Bucket layout shared by LatencyHistogram and HistogramSnapshot:
/// values 0..15 get exact unit buckets; larger values get 16 linear
/// sub-buckets per power of two (so relative bucket width is <= 1/16).
/// Values at or above 2^40 ns (~18 minutes) clamp into the last bucket;
/// min/max stay exact regardless.
inline constexpr int kHistogramSubBuckets = 16;
inline constexpr int kHistogramMaxMajor = 40;  // values < 2^40 resolve
inline constexpr int kHistogramBuckets =
    kHistogramSubBuckets + (kHistogramMaxMajor - 4) * kHistogramSubBuckets;

/// The bucket a value lands in. Negative values clamp to bucket 0.
int HistogramBucketIndex(int64_t value);

/// Inclusive lower bound of a bucket — the deterministic representative
/// value percentile readouts report.
int64_t HistogramBucketLowerBound(int index);

/// A merged, immutable readout of one histogram (or several: Merge sums
/// bucket counts and is associative + commutative, so any merge order —
/// and any shard count — yields the same snapshot).
struct HistogramSnapshot {
  int64_t count = 0;
  int64_t sum = 0;
  int64_t min = 0;  ///< exact; 0 when count == 0
  int64_t max = 0;  ///< exact; 0 when count == 0
  std::array<int64_t, kHistogramBuckets> buckets{};

  void Merge(const HistogramSnapshot& other);

  /// The recorded value at quantile q in [0, 1]: the lower bound of the
  /// first bucket whose cumulative count reaches ceil(q * count), except
  /// q high enough to select the final recorded value reports the exact
  /// max. 0 when empty. Deterministic in the bucket counts alone.
  int64_t ValueAtQuantile(double q) const;

  int64_t p50() const { return ValueAtQuantile(0.50); }
  int64_t p95() const { return ValueAtQuantile(0.95); }
  int64_t p99() const { return ValueAtQuantile(0.99); }
  double mean() const {
    return count > 0 ? static_cast<double>(sum) / static_cast<double>(count)
                     : 0.0;
  }
};

/// Concurrent log2/linear-sub-bucket histogram. Record() touches one
/// shard: a relaxed fetch_add on the bucket counter plus relaxed
/// min/max/sum maintenance — no locks, no fences on the hot path.
class LatencyHistogram {
 public:
  /// num_shards <= 0 picks a default sized for concurrent recording;
  /// pass 1 for single-writer histograms (e.g. per-worker slots).
  explicit LatencyHistogram(int num_shards = 0);

  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  void Record(int64_t value);

  /// Merged readout over all shards. Deterministic: depends only on the
  /// multiset of recorded values, not shard count or thread schedule.
  HistogramSnapshot Snapshot() const;

  /// Resets all shards. Callers must quiesce writers first.
  void Reset();

  int num_shards() const { return static_cast<int>(shards_.size()); }

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<int64_t>, kHistogramBuckets> buckets{};
    std::atomic<int64_t> count{0};
    std::atomic<int64_t> sum{0};
    std::atomic<int64_t> min{INT64_MAX};
    std::atomic<int64_t> max{INT64_MIN};
  };
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// RAII timing gate: records the scope's wall time into `hist` on exit,
/// but only when `on` is true — reading the clock is the one cost of
/// latency instrumentation, so subsystems gate it behind an opt-in flag
/// and uninstrumented callers keep a branch-and-nothing-else hot path.
class ScopedRecord {
 public:
  ScopedRecord(bool on, LatencyHistogram* hist)
      : hist_(on ? hist : nullptr) {
    if (hist_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedRecord() {
    if (hist_ != nullptr) {
      hist_->Record(std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count());
    }
  }
  ScopedRecord(const ScopedRecord&) = delete;
  ScopedRecord& operator=(const ScopedRecord&) = delete;

 private:
  LatencyHistogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

/// One consistent readout of a registry (or several merged): counters,
/// gauges, histograms, each sorted by name. Plain data — safe to hold,
/// merge, render after the source registry has moved on.
struct MetricsSnapshot {
  struct Value {
    std::string name;
    int64_t value = 0;
  };
  struct Histogram {
    std::string name;
    HistogramSnapshot hist;
  };

  std::vector<Value> counters;
  std::vector<Value> gauges;
  std::vector<Histogram> histograms;

  /// Folds `other` in: same-name counters/gauges add, same-name
  /// histograms merge bucket-wise, new names append. Keeps name order.
  void Merge(const MetricsSnapshot& other);

  /// A copy with `prefix` prepended to every counter/gauge/histogram
  /// name. Lets a multi-shard owner re-emit one shard's snapshot under a
  /// per-shard namespace ("shard3.") next to the unprefixed rollup.
  MetricsSnapshot WithPrefix(const std::string& prefix) const;

  /// Counter or gauge value by exact name; `fallback` when absent.
  int64_t ValueOf(const std::string& name, int64_t fallback = 0) const;
  /// Histogram by exact name; nullptr when absent.
  const HistogramSnapshot* FindHistogram(const std::string& name) const;

  /// Human-readable aligned table: counters, gauges, then histograms
  /// with count/p50/p95/p99/max columns (ns rendered adaptively).
  std::string RenderText() const;

  /// BENCH_*.json-schema JSON: {"bench": <name>, "records": [...]} where
  /// histogram records carry median_ns/min_ns/p95_ns/p99_ns/max_ns and
  /// counter/gauge records carry their value in "value" (median_ns null).
  std::string RenderJson(const std::string& name) const;

  /// Writes RenderJson to `path` (false on I/O failure).
  bool WriteJsonFile(const std::string& path,
                     const std::string& name) const;
};

/// Name -> primitive registry. Registration is infrequent (setup /
/// teardown); Snapshot() walks every metric once under the registry lock
/// — callback gauges run inside that walk, so keep them cheap.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// `owner` groups registrations for Unregister; nullptr = never
  /// unregistered (static lifetime).
  void RegisterCounter(std::string name, const ShardedCounter* counter,
                       const void* owner = nullptr);
  void RegisterGauge(std::string name, std::function<int64_t()> read,
                     const void* owner = nullptr);
  /// A gauge *group*: one callback producing several named values,
  /// evaluated exactly once per Snapshot(). Use this when the values
  /// are fields of one mutex-guarded struct — per-field gauges would
  /// each take the owner's lock separately and a snapshot could observe
  /// fields from different instants; a group reads them atomically.
  void RegisterGaugeGroup(
      std::function<std::vector<MetricsSnapshot::Value>()> read,
      const void* owner = nullptr);
  void RegisterHistogram(std::string name, const LatencyHistogram* histogram,
                         const void* owner = nullptr);

  /// Drops every metric registered with this owner cookie.
  void Unregister(const void* owner);

  MetricsSnapshot Snapshot() const;

  /// Process-wide registry for process-wide subsystems (the global
  /// TaskScheduler). Engine-scoped metrics live in the engine's own
  /// registry; merge the two snapshots for a full picture.
  static MetricRegistry& Global();

 private:
  struct Entry {
    std::string name;  // empty for gauge groups (values carry full names)
    const void* owner = nullptr;
    const ShardedCounter* counter = nullptr;        // exactly one of
    std::function<int64_t()> gauge;                 // these four is
    std::function<std::vector<MetricsSnapshot::Value>()> gauge_group;
    const LatencyHistogram* histogram = nullptr;    // set
  };

  mutable std::mutex mu_;
  std::vector<Entry> entries_;
};

}  // namespace netbone::obs

#endif  // NETBONE_OBS_METRICS_H_
