#include "graph/builder.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace netbone {

GraphBuilder::GraphBuilder(Directedness directedness,
                           DuplicateEdgePolicy duplicate_policy,
                           SelfLoopPolicy self_loop_policy)
    : directedness_(directedness),
      duplicate_policy_(duplicate_policy),
      self_loop_policy_(self_loop_policy) {}

void GraphBuilder::ReserveNodes(NodeId n) {
  max_node_ = std::max(max_node_, static_cast<NodeId>(n - 1));
}

void GraphBuilder::AddEdge(NodeId src, NodeId dst, double weight) {
  if (!deferred_error_.ok()) return;
  if (src < 0 || dst < 0) {
    deferred_error_ = Status::InvalidArgument(
        StrFormat("negative node id in edge (%d, %d)", src, dst));
    return;
  }
  if (!std::isfinite(weight) || weight < 0.0) {
    deferred_error_ = Status::InvalidArgument(
        StrFormat("edge (%d, %d) has invalid weight %f", src, dst, weight));
    return;
  }
  if (src == dst) {
    switch (self_loop_policy_) {
      case SelfLoopPolicy::kDrop:
        max_node_ = std::max(max_node_, src);
        return;
      case SelfLoopPolicy::kError:
        deferred_error_ = Status::InvalidArgument(
            StrFormat("self-loop on node %d", src));
        return;
      case SelfLoopPolicy::kKeep:
        break;
    }
  }
  if (directedness_ == Directedness::kUndirected && src > dst) {
    std::swap(src, dst);
  }
  max_node_ = std::max(max_node_, std::max(src, dst));
  pending_.push_back(Edge{src, dst, weight});
}

NodeId GraphBuilder::InternLabel(const std::string& label) {
  const auto it = label_to_id_.find(label);
  if (it != label_to_id_.end()) return it->second;
  const NodeId id = static_cast<NodeId>(labels_.size());
  labels_.push_back(label);
  label_to_id_.emplace(label, id);
  max_node_ = std::max(max_node_, id);
  return id;
}

void GraphBuilder::AddLabeledEdge(const std::string& src,
                                  const std::string& dst, double weight) {
  // Sequence the interning explicitly: C++ leaves function-argument
  // evaluation order unspecified, and label ids must follow first
  // appearance in (src, dst) order.
  const NodeId src_id = InternLabel(src);
  const NodeId dst_id = InternLabel(dst);
  AddEdge(src_id, dst_id, weight);
}

Result<Graph> GraphBuilder::Build() {
  if (!deferred_error_.ok()) return deferred_error_;
  if (!labels_.empty() &&
      static_cast<NodeId>(labels_.size()) != max_node_ + 1) {
    // Mixed AddEdge/AddLabeledEdge usage can reference ids beyond the label
    // table; extend with decimal placeholders so LabelOf stays total.
    for (NodeId v = static_cast<NodeId>(labels_.size()); v <= max_node_;
         ++v) {
      labels_.push_back(std::to_string(v));
      // Keep the label index total too, so Graph::FindLabel resolves the
      // decimal placeholders; a real label always wins over a placeholder.
      label_to_id_.emplace(labels_.back(), v);
    }
  }

  std::sort(pending_.begin(), pending_.end(),
            [](const Edge& a, const Edge& b) {
              if (a.src != b.src) return a.src < b.src;
              if (a.dst != b.dst) return a.dst < b.dst;
              return a.weight < b.weight;
            });

  std::vector<Edge> edges;
  edges.reserve(pending_.size());
  for (const Edge& e : pending_) {
    if (!edges.empty() && edges.back().src == e.src &&
        edges.back().dst == e.dst) {
      switch (duplicate_policy_) {
        case DuplicateEdgePolicy::kSum:
          edges.back().weight += e.weight;
          break;
        case DuplicateEdgePolicy::kMax:
          edges.back().weight = std::max(edges.back().weight, e.weight);
          break;
        case DuplicateEdgePolicy::kError:
          return Status::InvalidArgument(
              StrFormat("duplicate edge (%d, %d)", e.src, e.dst));
      }
    } else {
      edges.push_back(e);
    }
  }

  Graph g;
  g.num_nodes_ = max_node_ + 1;
  g.directedness_ = directedness_;
  g.edges_ = std::move(edges);
  g.labels_ = std::move(labels_);
  // The interning map is exactly the label -> id index FindLabel needs;
  // hand it to the graph instead of rebuilding it on first lookup.
  g.label_index_ = std::move(label_to_id_);
  const size_t n = static_cast<size_t>(g.num_nodes_);
  g.out_strength_.assign(n, 0.0);
  g.in_strength_.assign(n, 0.0);
  g.out_degree_.assign(n, 0);
  g.in_degree_.assign(n, 0);
  for (const Edge& e : g.edges_) {
    g.total_weight_ += e.weight;
    const size_t s = static_cast<size_t>(e.src);
    const size_t d = static_cast<size_t>(e.dst);
    if (e.src == e.dst) {
      g.self_loop_weight_ += e.weight;
      g.out_strength_[s] += e.weight;
      g.in_strength_[s] += e.weight;
      g.out_degree_[s] += 1;
      g.in_degree_[s] += 1;
      continue;
    }
    if (g.directed()) {
      g.out_strength_[s] += e.weight;
      g.in_strength_[d] += e.weight;
      g.out_degree_[s] += 1;
      g.in_degree_[d] += 1;
    } else {
      // Symmetric matrix marginals: the edge contributes to both endpoints'
      // row and column sums.
      g.out_strength_[s] += e.weight;
      g.out_strength_[d] += e.weight;
      g.in_strength_[s] += e.weight;
      g.in_strength_[d] += e.weight;
      g.out_degree_[s] += 1;
      g.out_degree_[d] += 1;
      g.in_degree_[s] += 1;
      g.in_degree_[d] += 1;
    }
  }
  return g;
}

}  // namespace netbone
