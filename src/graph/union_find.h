// Copyright 2026 The netbone Authors.
//
// Disjoint-set union with path halving and union by size. Used by the
// Kruskal maximum spanning tree (paper Sec. III-B) and the Doubly
// Stochastic "grow until connected" criterion.

#ifndef NETBONE_GRAPH_UNION_FIND_H_
#define NETBONE_GRAPH_UNION_FIND_H_

#include <cstddef>
#include <cstdint>
#include <numeric>
#include <utility>
#include <vector>

namespace netbone {

/// Disjoint-set forest over dense ids [0, n).
class UnionFind {
 public:
  /// Creates n singleton sets.
  explicit UnionFind(int64_t n)
      : parent_(static_cast<size_t>(n)), size_(static_cast<size_t>(n), 1),
        num_sets_(n) {
    std::iota(parent_.begin(), parent_.end(), int64_t{0});
  }

  /// Representative of x's set (path halving).
  int64_t Find(int64_t x) {
    while (parent_[static_cast<size_t>(x)] != x) {
      parent_[static_cast<size_t>(x)] =
          parent_[static_cast<size_t>(parent_[static_cast<size_t>(x)])];
      x = parent_[static_cast<size_t>(x)];
    }
    return x;
  }

  /// Merges the sets of a and b; returns false when already merged.
  bool Union(int64_t a, int64_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    if (size_[static_cast<size_t>(a)] < size_[static_cast<size_t>(b)]) {
      std::swap(a, b);
    }
    parent_[static_cast<size_t>(b)] = a;
    size_[static_cast<size_t>(a)] += size_[static_cast<size_t>(b)];
    --num_sets_;
    return true;
  }

  /// True when a and b share a set.
  bool Connected(int64_t a, int64_t b) { return Find(a) == Find(b); }

  /// Size of x's set.
  int64_t SetSize(int64_t x) { return size_[static_cast<size_t>(Find(x))]; }

  /// Current number of disjoint sets.
  int64_t num_sets() const { return num_sets_; }

 private:
  std::vector<int64_t> parent_;
  std::vector<int64_t> size_;
  int64_t num_sets_;
};

}  // namespace netbone

#endif  // NETBONE_GRAPH_UNION_FIND_H_
