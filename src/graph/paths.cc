#include "graph/paths.h"

#include <algorithm>
#include <queue>
#include <utility>

#include "common/bytes.h"

namespace netbone {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double ArcLength(const Arc& arc, DijkstraOptions::LengthRule rule) {
  switch (rule) {
    case DijkstraOptions::LengthRule::kReciprocalWeight:
      return arc.weight > 0.0 ? 1.0 / arc.weight : kInf;
    case DijkstraOptions::LengthRule::kWeight:
      return arc.weight;
  }
  return kInf;
}

}  // namespace

void DijkstraWorkspace::Arm(NodeId n) {
  const size_t size = static_cast<size_t>(n);
  if (stamp_.size() < size) {
    stamp_.resize(size, 0);
    distance_.resize(size);
    parent_.resize(size);
    parent_edge_.resize(size);
  }
  touched_.clear();
  heap_.clear();
  if (++generation_ == 0) {
    // Stamp wrapped after 2^32 runs: every stale stamp of 0 would read as
    // current, so pay one O(n) clear and restart at generation 1.
    std::fill(stamp_.begin(), stamp_.end(), 0u);
    generation_ = 1;
  }
}

void DijkstraWorkspace::ResetEdgeCounts(int64_t num_edges) {
  const size_t size = static_cast<size_t>(num_edges);
  if (count_stamp_.size() < size) {
    count_stamp_.resize(size, 0);
    edge_count_.resize(size, 0);
  }
  if (++count_generation_ == 0) {
    // Same wrap discipline as Arm(): a wrapped generation of 0 would make
    // every stale stamp read as current.
    std::fill(count_stamp_.begin(), count_stamp_.end(), 0u);
    count_generation_ = 1;
  }
}

int64_t DijkstraWorkspace::ApproxBytes() const {
  return VectorBytes(stamp_) + VectorBytes(distance_) + VectorBytes(parent_) +
         VectorBytes(parent_edge_) + VectorBytes(touched_) +
         VectorBytes(heap_) + VectorBytes(count_stamp_) +
         VectorBytes(edge_count_);
}

void DijkstraWorkspace::HeapPush(double dist, NodeId node) {
  heap_.push_back(HeapItem{dist, node});
  size_t i = heap_.size() - 1;
  while (i > 0) {
    const size_t up = (i - 1) / 4;
    if (heap_[up].distance <= heap_[i].distance) break;
    std::swap(heap_[up], heap_[i]);
    i = up;
  }
}

DijkstraWorkspace::HeapItem DijkstraWorkspace::HeapPop() {
  const HeapItem top = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  const size_t n = heap_.size();
  size_t i = 0;
  for (;;) {
    const size_t first_child = 4 * i + 1;
    if (first_child >= n) break;
    size_t best = first_child;
    const size_t last_child = std::min(first_child + 4, n);
    for (size_t c = first_child + 1; c < last_child; ++c) {
      if (heap_[c].distance < heap_[best].distance) best = c;
    }
    if (heap_[i].distance <= heap_[best].distance) break;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
  return top;
}

void DijkstraInto(const Adjacency& adjacency, NodeId source,
                  const DijkstraOptions& options,
                  DijkstraWorkspace* workspace) {
  DijkstraWorkspace& ws = *workspace;
  ws.Arm(adjacency.num_nodes());

  const size_t src = static_cast<size_t>(source);
  ws.stamp_[src] = ws.generation_;
  ws.distance_[src] = 0.0;
  ws.parent_[src] = -1;
  ws.parent_edge_[src] = -1;
  ws.touched_.push_back(source);
  ws.HeapPush(0.0, source);

  while (!ws.heap_.empty()) {
    const auto [dist, u] = ws.HeapPop();
    if (dist > ws.distance_[static_cast<size_t>(u)]) continue;  // stale
    for (const Arc& arc : adjacency.out_arcs(u)) {
      const double length = ArcLength(arc, options.length_rule);
      if (length == kInf) continue;
      const double candidate = dist + length;
      const size_t v = static_cast<size_t>(arc.neighbor);
      if (ws.stamp_[v] != ws.generation_) {
        ws.stamp_[v] = ws.generation_;
        ws.distance_[v] = kInf;
        ws.touched_.push_back(arc.neighbor);
      }
      if (candidate < ws.distance_[v]) {
        ws.distance_[v] = candidate;
        ws.parent_[v] = u;
        ws.parent_edge_[v] = arc.edge;
        ws.HeapPush(candidate, arc.neighbor);
      }
    }
  }
}

ShortestPathTree Dijkstra(const Adjacency& adjacency, NodeId source,
                          const DijkstraOptions& options) {
  DijkstraWorkspace workspace;
  DijkstraInto(adjacency, source, options, &workspace);

  const size_t n = static_cast<size_t>(adjacency.num_nodes());
  ShortestPathTree tree;
  tree.parent_edge.assign(n, -1);
  tree.parent.assign(n, -1);
  tree.distance.assign(n, kInf);
  for (const NodeId v : workspace.touched()) {
    const size_t i = static_cast<size_t>(v);
    tree.parent_edge[i] = workspace.parent_edge(v);
    tree.parent[i] = workspace.parent(v);
    tree.distance[i] = workspace.distance(v);
  }
  return tree;
}

std::vector<int64_t> BfsDistances(const Adjacency& adjacency, NodeId source) {
  const size_t n = static_cast<size_t>(adjacency.num_nodes());
  std::vector<int64_t> dist(n, -1);
  std::queue<NodeId> queue;
  dist[static_cast<size_t>(source)] = 0;
  queue.push(source);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop();
    for (const Arc& arc : adjacency.out_arcs(u)) {
      if (dist[static_cast<size_t>(arc.neighbor)] < 0) {
        dist[static_cast<size_t>(arc.neighbor)] =
            dist[static_cast<size_t>(u)] + 1;
        queue.push(arc.neighbor);
      }
    }
  }
  return dist;
}

}  // namespace netbone
