#include "graph/paths.h"

#include <queue>

namespace netbone {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double ArcLength(const Arc& arc, DijkstraOptions::LengthRule rule) {
  switch (rule) {
    case DijkstraOptions::LengthRule::kReciprocalWeight:
      return arc.weight > 0.0 ? 1.0 / arc.weight : kInf;
    case DijkstraOptions::LengthRule::kWeight:
      return arc.weight;
  }
  return kInf;
}

}  // namespace

ShortestPathTree Dijkstra(const Adjacency& adjacency, NodeId source,
                          const DijkstraOptions& options) {
  const size_t n = static_cast<size_t>(adjacency.num_nodes());
  ShortestPathTree tree;
  tree.parent_edge.assign(n, -1);
  tree.parent.assign(n, -1);
  tree.distance.assign(n, kInf);
  tree.distance[static_cast<size_t>(source)] = 0.0;

  using Item = std::pair<double, NodeId>;  // (distance, node)
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> heap;
  heap.emplace(0.0, source);

  while (!heap.empty()) {
    const auto [dist, u] = heap.top();
    heap.pop();
    if (dist > tree.distance[static_cast<size_t>(u)]) continue;  // stale
    for (const Arc& arc : adjacency.out_arcs(u)) {
      const double length = ArcLength(arc, options.length_rule);
      if (length == kInf) continue;
      const double candidate = dist + length;
      double& best = tree.distance[static_cast<size_t>(arc.neighbor)];
      if (candidate < best) {
        best = candidate;
        tree.parent[static_cast<size_t>(arc.neighbor)] = u;
        tree.parent_edge[static_cast<size_t>(arc.neighbor)] = arc.edge;
        heap.emplace(candidate, arc.neighbor);
      }
    }
  }
  return tree;
}

std::vector<int64_t> BfsDistances(const Adjacency& adjacency, NodeId source) {
  const size_t n = static_cast<size_t>(adjacency.num_nodes());
  std::vector<int64_t> dist(n, -1);
  std::queue<NodeId> queue;
  dist[static_cast<size_t>(source)] = 0;
  queue.push(source);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop();
    for (const Arc& arc : adjacency.out_arcs(u)) {
      if (dist[static_cast<size_t>(arc.neighbor)] < 0) {
        dist[static_cast<size_t>(arc.neighbor)] =
            dist[static_cast<size_t>(u)] + 1;
        queue.push(arc.neighbor);
      }
    }
  }
  return dist;
}

}  // namespace netbone
