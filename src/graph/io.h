// Copyright 2026 The netbone Authors.
//
// Edge-list CSV input/output compatible with the author's Python
// `backboning` module (columns src, trg, nij; separator configurable).

#ifndef NETBONE_GRAPH_IO_H_
#define NETBONE_GRAPH_IO_H_

#include <string>

#include "common/result.h"
#include "graph/builder.h"
#include "graph/graph.h"

namespace netbone {

/// Options for ReadEdgeListCsv / ReadEdgeListCsvFromString.
struct EdgeListReadOptions {
  char separator = '\t';
  bool has_header = true;
  Directedness directedness = Directedness::kDirected;
  /// Self-loops are dropped by default, matching the Python module's
  /// `return_self_loops = False`.
  bool keep_self_loops = false;
  DuplicateEdgePolicy duplicate_policy = DuplicateEdgePolicy::kSum;
};

/// Parses "src<sep>trg<sep>weight" rows from a file on disk.
Result<Graph> ReadEdgeListCsv(const std::string& path,
                              const EdgeListReadOptions& options = {});

/// Parses rows from an in-memory string (testing convenience).
Result<Graph> ReadEdgeListCsvFromString(const std::string& content,
                                        const EdgeListReadOptions& options =
                                            {});

/// Options for WriteEdgeListCsv.
struct EdgeListWriteOptions {
  char separator = '\t';
  bool write_header = true;
};

/// Writes the canonical edge table as "src<sep>trg<sep>nij" rows using node
/// labels when present.
Status WriteEdgeListCsv(const Graph& graph, const std::string& path,
                        const EdgeListWriteOptions& options = {});

/// Serializes the edge table to a string (testing convenience).
std::string EdgeListToString(const Graph& graph,
                             const EdgeListWriteOptions& options = {});

}  // namespace netbone

#endif  // NETBONE_GRAPH_IO_H_
