#include "graph/delta.h"

#include <algorithm>

namespace netbone {
namespace {

/// Strict (src, dst) order of the canonical edge tables.
bool EndpointsLess(const Edge& a, const Edge& b) {
  if (a.src != b.src) return a.src < b.src;
  return a.dst < b.dst;
}

bool EndpointsEqual(const Edge& a, const Edge& b) {
  return a.src == b.src && a.dst == b.dst;
}

}  // namespace

int64_t GraphDelta::ApproxBytes() const {
  return static_cast<int64_t>(sizeof(GraphDelta)) +
         static_cast<int64_t>(changed.capacity() * sizeof(EdgeWeightChange) +
                              inserted.capacity() * sizeof(EdgeId) +
                              deleted.capacity() * sizeof(EdgeId) +
                              changed_nodes.capacity() * sizeof(NodeId) +
                              star_edges.capacity() * sizeof(EdgeId));
}

Result<GraphDelta> ComputeGraphDelta(const Graph& base, const Graph& next) {
  if (base.directedness() != next.directedness()) {
    return Status::InvalidArgument(
        "cannot delta graphs of different directedness");
  }
  // Positional node identity: labeled graphs must agree label-for-label,
  // or the same dense id would name different nodes in the two tables.
  if (base.has_labels() != next.has_labels()) {
    return Status::InvalidArgument(
        "cannot delta a labeled graph against an unlabeled one");
  }
  if (base.has_labels()) {
    const NodeId shared = std::min(base.num_nodes(), next.num_nodes());
    for (NodeId v = 0; v < shared; ++v) {
      if (base.LabelOf(v) != next.LabelOf(v)) {
        return Status::InvalidArgument(
            "label universes differ: dense ids are not comparable");
      }
    }
  }

  GraphDelta delta;
  delta.base_edges = base.num_edges();
  delta.next_edges = next.num_edges();
  delta.totals_equal = base.matrix_total() == next.matrix_total();

  // Marginal comparison is exact: a node whose incident edge multiset is
  // unchanged accumulates the same weights in the same canonical order, so
  // its strengths are bitwise equal — anything else is "changed". The
  // flags feed the star collection in the edge walk below.
  const NodeId shared = std::min(base.num_nodes(), next.num_nodes());
  std::vector<char> node_changed(static_cast<size_t>(next.num_nodes()), 0);
  for (NodeId v = 0; v < shared; ++v) {
    if (base.out_strength(v) != next.out_strength(v) ||
        base.in_strength(v) != next.in_strength(v) ||
        base.out_degree(v) != next.out_degree(v) ||
        base.in_degree(v) != next.in_degree(v)) {
      delta.changed_nodes.push_back(v);
      node_changed[static_cast<size_t>(v)] = 1;
    }
  }
  for (NodeId v = shared; v < next.num_nodes(); ++v) {
    delta.changed_nodes.push_back(v);
    node_changed[static_cast<size_t>(v)] = 1;
  }
  const bool any_node_changed = !delta.changed_nodes.empty();

  // One merge walk over the two sorted edge tables classifies every edge
  // and collects the successor-side endpoint stars.
  EdgeId bi = 0;
  EdgeId ni = 0;
  const auto visit_next = [&](EdgeId id) {
    if (!any_node_changed) return;
    const Edge& e = next.edge(id);
    if (node_changed[static_cast<size_t>(e.src)] != 0 ||
        node_changed[static_cast<size_t>(e.dst)] != 0) {
      delta.star_edges.push_back(id);
    }
  };
  while (bi < delta.base_edges && ni < delta.next_edges) {
    const Edge& be = base.edge(bi);
    const Edge& ne = next.edge(ni);
    if (EndpointsEqual(be, ne)) {
      if (be.weight != ne.weight) {
        delta.changed.push_back(
            EdgeWeightChange{bi, ni, be.weight, ne.weight});
      }
      visit_next(ni);
      ++bi;
      ++ni;
    } else if (EndpointsLess(be, ne)) {
      delta.deleted.push_back(bi++);
    } else {
      delta.inserted.push_back(ni);
      visit_next(ni);
      ++ni;
    }
  }
  while (bi < delta.base_edges) delta.deleted.push_back(bi++);
  while (ni < delta.next_edges) {
    delta.inserted.push_back(ni);
    visit_next(ni);
    ++ni;
  }
  return delta;
}

}  // namespace netbone
