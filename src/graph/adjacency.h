// Copyright 2026 The netbone Authors.
//
// Compressed sparse row (CSR) adjacency index over an immutable Graph.
// Built once, O(V + E); gives O(degree) neighbor iteration for the
// traversal-heavy methods (High Salience Skeleton, connected components,
// community detection).

#ifndef NETBONE_GRAPH_ADJACENCY_H_
#define NETBONE_GRAPH_ADJACENCY_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace netbone {

/// One CSR arc: the neighbor, the weight, and the id of the underlying
/// Graph edge (so traversals can vote on canonical edges).
struct Arc {
  NodeId neighbor = 0;
  double weight = 0.0;
  EdgeId edge = 0;
};

/// CSR adjacency view.
///
/// For undirected graphs each edge appears in both endpoints' out-arc
/// lists (and `in_arcs` aliases `out_arcs`). For directed graphs separate
/// out- and in-indexes are built.
class Adjacency {
 public:
  /// Builds the index; `graph` must outlive the Adjacency.
  explicit Adjacency(const Graph& graph);

  /// Outgoing arcs of `v` (incident arcs for undirected graphs).
  std::span<const Arc> out_arcs(NodeId v) const {
    const size_t i = static_cast<size_t>(v);
    return {out_arcs_.data() + out_offsets_[i],
            out_offsets_[i + 1] - out_offsets_[i]};
  }

  /// Incoming arcs of `v` (same as out_arcs for undirected graphs).
  std::span<const Arc> in_arcs(NodeId v) const {
    if (!directed_) return out_arcs(v);
    const size_t i = static_cast<size_t>(v);
    return {in_arcs_.data() + in_offsets_[i],
            in_offsets_[i + 1] - in_offsets_[i]};
  }

  /// Number of nodes in the indexed graph.
  NodeId num_nodes() const {
    return static_cast<NodeId>(out_offsets_.size() - 1);
  }

 private:
  bool directed_;
  std::vector<size_t> out_offsets_;
  std::vector<Arc> out_arcs_;
  std::vector<size_t> in_offsets_;
  std::vector<Arc> in_arcs_;
};

}  // namespace netbone

#endif  // NETBONE_GRAPH_ADJACENCY_H_
