// Copyright 2026 The netbone Authors.
//
// Binary codec for the canonical Graph representation: the edge table plus
// directedness, node count and (optional) labels — exactly the inputs
// GraphBuilder consumes, so decoding is "replay the build". Because the
// builder canonicalizes deterministically and marginals are accumulated in
// canonical edge order, a decode of an encode reproduces the original
// graph bitwise: same edge table, same strengths, same fingerprint. The
// snapshot subsystem (service/snapshot.h) relies on that to re-intern
// graphs after a restart without trusting anything but the edge table, and
// ROADMAP item 4's mmap spill tier will share this layout.
//
// DecodeGraph is designed for hostile input: every length and id is
// validated before use and failures come back as typed Corruption, never
// a crash. Content authentication (checksums, fingerprint comparison) is
// the caller's job — the codec only guarantees structural sanity.

#ifndef NETBONE_GRAPH_CODEC_H_
#define NETBONE_GRAPH_CODEC_H_

#include "common/result.h"
#include "common/serialize.h"
#include "graph/graph.h"

namespace netbone {

/// Appends the canonical encoding of `graph` to `writer`.
void EncodeGraph(const Graph& graph, ByteWriter* writer);

/// Decodes one graph from `reader` (advancing it), rebuilding through
/// GraphBuilder so all derived state (marginals, label index) is exactly
/// what a fresh build would produce. Returns Corruption on any structural
/// violation: bad directedness tag, out-of-range endpoints, label count
/// mismatch, duplicate edges, non-finite weights, truncation.
Result<Graph> DecodeGraph(ByteReader* reader);

}  // namespace netbone

#endif  // NETBONE_GRAPH_CODEC_H_
