#include "graph/temporal.h"

#include "common/strings.h"

namespace netbone {

Result<TemporalNetwork> TemporalNetwork::Create(std::vector<Graph> snapshots,
                                                std::string name) {
  if (snapshots.empty()) {
    return Status::InvalidArgument("TemporalNetwork needs >= 1 snapshot");
  }
  const NodeId nodes = snapshots.front().num_nodes();
  const Directedness dir = snapshots.front().directedness();
  for (size_t t = 1; t < snapshots.size(); ++t) {
    if (snapshots[t].num_nodes() != nodes) {
      return Status::InvalidArgument(
          StrFormat("snapshot %zu has %d nodes, expected %d", t,
                    snapshots[t].num_nodes(), nodes));
    }
    if (snapshots[t].directedness() != dir) {
      return Status::InvalidArgument(
          StrFormat("snapshot %zu directedness mismatch", t));
    }
  }
  return TemporalNetwork(std::move(snapshots), std::move(name));
}

}  // namespace netbone
