// Copyright 2026 The netbone Authors.
//
// Mutable accumulator that validates and canonicalizes edges, then produces
// an immutable Graph. Factory-style construction keeps Graph free of
// partially-initialized states (no throwing constructors; Google style).

#ifndef NETBONE_GRAPH_BUILDER_H_
#define NETBONE_GRAPH_BUILDER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"

namespace netbone {

/// Policy for repeated (src, dst) pairs fed to the builder.
enum class DuplicateEdgePolicy {
  kSum,    ///< Accumulate weights (count-data default).
  kMax,    ///< Keep the maximum weight.
  kError,  ///< Fail the build.
};

/// Policy for self-loops (i, i).
enum class SelfLoopPolicy {
  kKeep,  ///< Store them; they join the diagonal of the weight matrix.
  kDrop,  ///< Silently discard (the backboning default: the paper's methods
          ///< ignore self-interactions).
  kError,
};

/// Builder for Graph.
///
/// Usage:
///   GraphBuilder b(Directedness::kUndirected);
///   b.AddEdge(0, 1, 3.0);
///   NETBONE_ASSIGN_OR_RETURN(Graph g, b.Build());
class GraphBuilder {
 public:
  explicit GraphBuilder(Directedness directedness,
                        DuplicateEdgePolicy duplicate_policy =
                            DuplicateEdgePolicy::kSum,
                        SelfLoopPolicy self_loop_policy =
                            SelfLoopPolicy::kDrop);

  /// Declares that ids [0, n) exist even if unreferenced by edges (allows
  /// isolates). Build() also grows the node set to cover the largest
  /// referenced id.
  void ReserveNodes(NodeId n);

  /// Adds an edge by dense ids. Negative ids or negative / non-finite
  /// weights are recorded as an error surfaced by Build().
  void AddEdge(NodeId src, NodeId dst, double weight);

  /// Adds an edge by string labels, interning new labels as new node ids.
  void AddLabeledEdge(const std::string& src, const std::string& dst,
                      double weight);

  /// Interns `label` (idempotent) and returns its dense id.
  NodeId InternLabel(const std::string& label);

  /// Number of edges fed so far (before dedup).
  int64_t pending_edges() const {
    return static_cast<int64_t>(pending_.size());
  }

  /// Validates, canonicalizes (sort + dedup per policy) and produces the
  /// immutable Graph. The builder is left in a moved-from state.
  Result<Graph> Build();

 private:
  Directedness directedness_;
  DuplicateEdgePolicy duplicate_policy_;
  SelfLoopPolicy self_loop_policy_;
  NodeId max_node_ = -1;
  std::vector<Edge> pending_;
  std::vector<std::string> labels_;
  std::unordered_map<std::string, NodeId> label_to_id_;
  Status deferred_error_;
};

}  // namespace netbone

#endif  // NETBONE_GRAPH_BUILDER_H_
