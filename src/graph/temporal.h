// Copyright 2026 The netbone Authors.
//
// Multi-snapshot ("multi-year") network container. The paper observes each
// country network in several years; Table I validates the NC variance
// prediction against the across-year variance of the transformed weights,
// and Fig. 8 measures backbone stability between consecutive years.

#ifndef NETBONE_GRAPH_TEMPORAL_H_
#define NETBONE_GRAPH_TEMPORAL_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"

namespace netbone {

/// A sequence of graph snapshots over a shared node universe.
///
/// All snapshots must agree on directedness and node count; edge sets may
/// differ (a pair may be present in one year and absent in another).
class TemporalNetwork {
 public:
  /// Validates and wraps the snapshots (at least one required).
  static Result<TemporalNetwork> Create(std::vector<Graph> snapshots,
                                        std::string name = "");

  /// Number of snapshots.
  int64_t num_snapshots() const {
    return static_cast<int64_t>(snapshots_.size());
  }

  /// Snapshot at index t (0-based, chronological).
  const Graph& snapshot(int64_t t) const {
    return snapshots_[static_cast<size_t>(t)];
  }

  /// Convenience: the first snapshot, used as "the" network when a single
  /// year suffices.
  const Graph& front() const { return snapshots_.front(); }

  /// Shared node count.
  NodeId num_nodes() const { return snapshots_.front().num_nodes(); }

  /// Dataset name for report printing (e.g. "Trade").
  const std::string& name() const { return name_; }

 private:
  TemporalNetwork(std::vector<Graph> snapshots, std::string name)
      : snapshots_(std::move(snapshots)), name_(std::move(name)) {}

  std::vector<Graph> snapshots_;
  std::string name_;
};

}  // namespace netbone

#endif  // NETBONE_GRAPH_TEMPORAL_H_
