// Copyright 2026 The netbone Authors.
//
// Connected components (weak components for directed graphs). Used by the
// Doubly Stochastic stopping rule ("until the backbone contains all nodes
// in a single connected component") and by topology diagnostics.

#ifndef NETBONE_GRAPH_COMPONENTS_H_
#define NETBONE_GRAPH_COMPONENTS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace netbone {

/// Result of a component decomposition.
struct Components {
  /// component[v] in [0, count): the component of node v. Components are
  /// numbered by order of discovery (lowest node id first).
  std::vector<int32_t> component;
  /// Number of components (isolates count as singleton components).
  int32_t count = 0;
  /// Number of nodes in the largest component.
  int64_t giant_size = 0;
};

/// Computes weakly connected components of `graph` via union-find.
Components ConnectedComponents(const Graph& graph);

/// True when all nodes of `graph` belong to one weak component.
bool IsConnected(const Graph& graph);

}  // namespace netbone

#endif  // NETBONE_GRAPH_COMPONENTS_H_
