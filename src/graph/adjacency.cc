#include "graph/adjacency.h"

namespace netbone {

Adjacency::Adjacency(const Graph& graph) : directed_(graph.directed()) {
  const size_t n = static_cast<size_t>(graph.num_nodes());
  std::vector<size_t> out_counts(n, 0);
  std::vector<size_t> in_counts(directed_ ? n : 0, 0);

  for (const Edge& e : graph.edges()) {
    out_counts[static_cast<size_t>(e.src)]++;
    if (directed_) {
      in_counts[static_cast<size_t>(e.dst)]++;
    } else if (e.src != e.dst) {
      out_counts[static_cast<size_t>(e.dst)]++;
    }
  }

  out_offsets_.assign(n + 1, 0);
  for (size_t i = 0; i < n; ++i) {
    out_offsets_[i + 1] = out_offsets_[i] + out_counts[i];
  }
  out_arcs_.resize(out_offsets_[n]);
  std::vector<size_t> cursor(out_offsets_.begin(), out_offsets_.end() - 1);

  if (directed_) {
    in_offsets_.assign(n + 1, 0);
    for (size_t i = 0; i < n; ++i) {
      in_offsets_[i + 1] = in_offsets_[i] + in_counts[i];
    }
    in_arcs_.resize(in_offsets_[n]);
  }
  std::vector<size_t> in_cursor(
      directed_ ? std::vector<size_t>(in_offsets_.begin(),
                                      in_offsets_.end() - 1)
                : std::vector<size_t>());

  const auto& edges = graph.edges();
  for (size_t idx = 0; idx < edges.size(); ++idx) {
    const Edge& e = edges[idx];
    const EdgeId id = static_cast<EdgeId>(idx);
    out_arcs_[cursor[static_cast<size_t>(e.src)]++] =
        Arc{e.dst, e.weight, id};
    if (directed_) {
      in_arcs_[in_cursor[static_cast<size_t>(e.dst)]++] =
          Arc{e.src, e.weight, id};
    } else if (e.src != e.dst) {
      out_arcs_[cursor[static_cast<size_t>(e.dst)]++] =
          Arc{e.src, e.weight, id};
    }
  }
}

}  // namespace netbone
