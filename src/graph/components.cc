#include "graph/components.h"

#include <algorithm>

#include "graph/union_find.h"

namespace netbone {

Components ConnectedComponents(const Graph& graph) {
  const int64_t n = graph.num_nodes();
  UnionFind uf(n);
  for (const Edge& e : graph.edges()) uf.Union(e.src, e.dst);

  Components out;
  out.component.assign(static_cast<size_t>(n), -1);
  std::vector<int32_t> root_to_component(static_cast<size_t>(n), -1);
  std::vector<int64_t> sizes;
  for (NodeId v = 0; v < n; ++v) {
    const int64_t root = uf.Find(v);
    int32_t& mapped = root_to_component[static_cast<size_t>(root)];
    if (mapped < 0) {
      mapped = out.count++;
      sizes.push_back(0);
    }
    out.component[static_cast<size_t>(v)] = mapped;
    sizes[static_cast<size_t>(mapped)]++;
  }
  out.giant_size =
      sizes.empty() ? 0 : *std::max_element(sizes.begin(), sizes.end());
  return out;
}

bool IsConnected(const Graph& graph) {
  if (graph.num_nodes() == 0) return true;
  return ConnectedComponents(graph).count == 1;
}

}  // namespace netbone
