// Copyright 2026 The netbone Authors.
//
// Shortest-path machinery. The High Salience Skeleton (Grady et al., cited
// as [14] in the paper) superimposes one shortest-path tree per node, with
// edge length defined as the reciprocal of the weight so that strong edges
// are short. The HSS runs |V| (or a sampled subset of) single-source
// traversals back to back, so the hot entry point is DijkstraInto over a
// reusable DijkstraWorkspace: per-source state is re-armed by bumping a
// generation stamp instead of clearing three O(|V|) arrays, and the
// priority queue is a cache-friendlier 4-ary heap whose storage persists
// across sources.

#ifndef NETBONE_GRAPH_PATHS_H_
#define NETBONE_GRAPH_PATHS_H_

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "graph/adjacency.h"
#include "graph/graph.h"

namespace netbone {

/// Result of a single-source shortest path run.
struct ShortestPathTree {
  /// parent_edge[v]: id of the Graph edge through which v is reached, or -1
  /// for the source and unreachable nodes.
  std::vector<EdgeId> parent_edge;
  /// parent[v]: predecessor node, or -1.
  std::vector<NodeId> parent;
  /// distance[v]: shortest distance from the source; +inf when unreachable.
  std::vector<double> distance;
};

/// Options for Dijkstra traversals.
struct DijkstraOptions {
  /// Maps an edge weight to a traversal length. The HSS uses 1/weight;
  /// zero-weight edges get +inf (never traversed).
  enum class LengthRule {
    kReciprocalWeight,  ///< length = 1 / weight  (HSS convention)
    kWeight,            ///< length = weight      (classic shortest paths)
  };
  LengthRule length_rule = LengthRule::kReciprocalWeight;
};

/// Reusable per-thread scratch state for DijkstraInto. One workspace
/// serves any number of consecutive single-source runs on graphs of any
/// size; arrays grow monotonically and are invalidated in O(1) between
/// runs via a generation stamp, so a run allocates nothing once the
/// workspace has warmed up. Not thread-safe: use one workspace per thread.
class DijkstraWorkspace {
 public:
  DijkstraWorkspace() = default;

  /// Distance from the source of the last run; +inf when unreached.
  double distance(NodeId v) const {
    const size_t i = static_cast<size_t>(v);
    return stamp_[i] == generation_
               ? distance_[i]
               : std::numeric_limits<double>::infinity();
  }

  /// Predecessor node in the last run's tree, or -1.
  NodeId parent(NodeId v) const {
    const size_t i = static_cast<size_t>(v);
    return stamp_[i] == generation_ ? parent_[i] : -1;
  }

  /// Graph edge through which v was reached in the last run, or -1.
  EdgeId parent_edge(NodeId v) const {
    const size_t i = static_cast<size_t>(v);
    return stamp_[i] == generation_ ? parent_edge_[i] : -1;
  }

  /// Nodes settled or relaxed by the last run (the source plus every
  /// reached node), in discovery order. Lets callers that superimpose many
  /// trees (HSS) touch O(reached) state instead of O(|V|).
  std::span<const NodeId> touched() const { return touched_; }

  /// Per-edge integer accumulator with the same generation discipline as
  /// the per-node arrays, for callers that superimpose many trees (HSS
  /// tree-membership counts). Independent of the per-run Dijkstra state:
  /// counts survive any number of DijkstraInto runs until the next
  /// ResetEdgeCounts. Entries read as zero until bumped, so a reset is
  /// O(1) on a warm workspace (O(m) only on growth or stamp wrap).
  void ResetEdgeCounts(int64_t num_edges);

  /// Increments the counter of edge `e`. Precondition: ResetEdgeCounts was
  /// called with num_edges > e.
  void BumpEdgeCount(EdgeId e) {
    const size_t i = static_cast<size_t>(e);
    if (count_stamp_[i] != count_generation_) {
      count_stamp_[i] = count_generation_;
      edge_count_[i] = 0;
    }
    ++edge_count_[i];
  }

  /// Counter of edge `e` since the last ResetEdgeCounts.
  int64_t edge_count(EdgeId e) const {
    const size_t i = static_cast<size_t>(e);
    return count_stamp_[i] == count_generation_ ? edge_count_[i] : 0;
  }

  /// Heap bytes this workspace retains (all per-node / per-edge arrays at
  /// their grown capacity). Pools that cap retained memory price
  /// workspaces with this (common/bytes.h accounting).
  int64_t ApproxBytes() const;

 private:
  friend void DijkstraInto(const Adjacency&, NodeId, const DijkstraOptions&,
                           DijkstraWorkspace*);

  struct HeapItem {
    double distance;
    NodeId node;
  };

  /// Grows arrays to `n` nodes and invalidates all per-run state in O(1)
  /// (O(n) only when the stamp wraps or the workspace grows).
  void Arm(NodeId n);

  void HeapPush(double dist, NodeId node);
  HeapItem HeapPop();

  uint32_t generation_ = 0;
  std::vector<uint32_t> stamp_;
  std::vector<double> distance_;
  std::vector<NodeId> parent_;
  std::vector<EdgeId> parent_edge_;
  std::vector<NodeId> touched_;
  std::vector<HeapItem> heap_;  // 4-ary min-heap, lazy deletion

  uint32_t count_generation_ = 0;
  std::vector<uint32_t> count_stamp_;
  std::vector<int64_t> edge_count_;
};

/// Dijkstra from `source` over the adjacency's out-arcs, writing the tree
/// into `workspace` (re-armed, not reallocated). Requires non-negative
/// lengths; O(E log V) time, zero allocations on a warm workspace.
void DijkstraInto(const Adjacency& adjacency, NodeId source,
                  const DijkstraOptions& options, DijkstraWorkspace* workspace);

/// Dijkstra from `source` over the adjacency's out-arcs.
/// Convenience wrapper over DijkstraInto that materializes dense arrays;
/// prefer DijkstraInto + a reused workspace in many-source loops.
ShortestPathTree Dijkstra(const Adjacency& adjacency, NodeId source,
                          const DijkstraOptions& options = {});

/// Breadth-first distances (unit lengths) from `source`; -1 = unreachable.
std::vector<int64_t> BfsDistances(const Adjacency& adjacency, NodeId source);

}  // namespace netbone

#endif  // NETBONE_GRAPH_PATHS_H_
