// Copyright 2026 The netbone Authors.
//
// Shortest-path machinery. The High Salience Skeleton (Grady et al., cited
// as [14] in the paper) superimposes one shortest-path tree per node, with
// edge length defined as the reciprocal of the weight so that strong edges
// are short.

#ifndef NETBONE_GRAPH_PATHS_H_
#define NETBONE_GRAPH_PATHS_H_

#include <limits>
#include <vector>

#include "graph/adjacency.h"
#include "graph/graph.h"

namespace netbone {

/// Result of a single-source shortest path run.
struct ShortestPathTree {
  /// parent_edge[v]: id of the Graph edge through which v is reached, or -1
  /// for the source and unreachable nodes.
  std::vector<EdgeId> parent_edge;
  /// parent[v]: predecessor node, or -1.
  std::vector<NodeId> parent;
  /// distance[v]: shortest distance from the source; +inf when unreachable.
  std::vector<double> distance;
};

/// Options for Dijkstra traversals.
struct DijkstraOptions {
  /// Maps an edge weight to a traversal length. The HSS uses 1/weight;
  /// zero-weight edges get +inf (never traversed).
  enum class LengthRule {
    kReciprocalWeight,  ///< length = 1 / weight  (HSS convention)
    kWeight,            ///< length = weight      (classic shortest paths)
  };
  LengthRule length_rule = LengthRule::kReciprocalWeight;
};

/// Dijkstra from `source` over the adjacency's out-arcs.
/// Requires non-negative lengths; O(E log V).
ShortestPathTree Dijkstra(const Adjacency& adjacency, NodeId source,
                          const DijkstraOptions& options = {});

/// Breadth-first distances (unit lengths) from `source`; -1 = unreachable.
std::vector<int64_t> BfsDistances(const Adjacency& adjacency, NodeId source);

}  // namespace netbone

#endif  // NETBONE_GRAPH_PATHS_H_
