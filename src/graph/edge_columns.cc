#include "graph/edge_columns.h"

#include "common/bytes.h"
#include "graph/graph.h"

namespace netbone {

int64_t EdgeColumns::bytes() const {
  return VectorBytes(src) + VectorBytes(dst) + VectorBytes(weight) +
         VectorBytes(n_i) + VectorBytes(n_j) + VectorBytes(dm1_i) +
         VectorBytes(dm1_j);
}

void MaterializeEdgeColumns(const Graph& graph, EdgeColumns* columns) {
  const int64_t n = graph.num_edges();
  const size_t count = static_cast<size_t>(n);
  columns->src.resize(count);
  columns->dst.resize(count);
  columns->weight.resize(count);
  columns->n_i.resize(count);
  columns->n_j.resize(count);
  columns->dm1_i.resize(count);
  columns->dm1_j.resize(count);
  const std::vector<Edge>& edges = graph.edges();
  for (size_t k = 0; k < count; ++k) {
    const Edge& e = edges[k];
    columns->src[k] = e.src;
    columns->dst[k] = e.dst;
    columns->weight[k] = e.weight;
    // Bitwise the same values the per-edge oracle reads: the gather copies
    // doubles, it never recomputes them.
    columns->n_i[k] = graph.out_strength(e.src);
    columns->n_j[k] = graph.in_strength(e.dst);
    columns->dm1_i[k] =
        static_cast<double>(graph.out_degree(e.src) - 1);
    columns->dm1_j[k] = static_cast<double>(graph.in_degree(e.dst) - 1);
  }
}

}  // namespace netbone
