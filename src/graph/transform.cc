#include "graph/transform.h"

#include "graph/builder.h"

namespace netbone {
namespace {

/// Re-interns the source graph's node labels so transforms keep them.
void CarryLabels(const Graph& graph, GraphBuilder* builder) {
  builder->ReserveNodes(graph.num_nodes());
  if (!graph.has_labels()) return;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    builder->InternLabel(graph.LabelOf(v));
  }
}

}  // namespace

Result<Graph> Symmetrize(const Graph& graph, SymmetrizeRule rule) {
  GraphBuilder builder(Directedness::kUndirected,
                       rule == SymmetrizeRule::kMax
                           ? DuplicateEdgePolicy::kMax
                           : DuplicateEdgePolicy::kSum,
                       SelfLoopPolicy::kKeep);
  CarryLabels(graph, &builder);
  for (const Edge& e : graph.edges()) builder.AddEdge(e.src, e.dst, e.weight);
  NETBONE_ASSIGN_OR_RETURN(Graph out, builder.Build());
  if (rule == SymmetrizeRule::kAvg) {
    // Halve accumulated sums. Rebuild with scaled weights.
    GraphBuilder half(Directedness::kUndirected, DuplicateEdgePolicy::kError,
                      SelfLoopPolicy::kKeep);
    CarryLabels(out, &half);
    for (const Edge& e : out.edges()) {
      half.AddEdge(e.src, e.dst, e.weight / 2.0);
    }
    return half.Build();
  }
  return out;
}

Result<Graph> Reverse(const Graph& graph) {
  if (!graph.directed()) {
    return Status::InvalidArgument("Reverse requires a directed graph");
  }
  GraphBuilder builder(Directedness::kDirected, DuplicateEdgePolicy::kError,
                       SelfLoopPolicy::kKeep);
  CarryLabels(graph, &builder);
  for (const Edge& e : graph.edges()) builder.AddEdge(e.dst, e.src, e.weight);
  return builder.Build();
}

Result<Graph> EdgeSubgraph(const Graph& graph,
                           const std::vector<EdgeId>& edge_ids) {
  GraphBuilder builder(graph.directedness(), DuplicateEdgePolicy::kError,
                       SelfLoopPolicy::kKeep);
  CarryLabels(graph, &builder);
  for (const EdgeId id : edge_ids) {
    if (id < 0 || id >= graph.num_edges()) {
      return Status::OutOfRange("edge id out of range");
    }
    const Edge& e = graph.edge(id);
    builder.AddEdge(e.src, e.dst, e.weight);
  }
  return builder.Build();
}

Result<Graph> EdgeSubgraphMask(const Graph& graph,
                               const std::vector<bool>& keep_edge) {
  if (static_cast<int64_t>(keep_edge.size()) != graph.num_edges()) {
    return Status::InvalidArgument("mask size != edge count");
  }
  std::vector<EdgeId> ids;
  for (EdgeId id = 0; id < graph.num_edges(); ++id) {
    if (keep_edge[static_cast<size_t>(id)]) ids.push_back(id);
  }
  return EdgeSubgraph(graph, ids);
}

}  // namespace netbone
