#include "graph/graph.h"

#include <algorithm>

namespace netbone {

const EdgeColumns& Graph::edge_columns() const {
  internal::EdgeColumnsCache& cache = *columns_cache_;
  std::call_once(cache.once, [this, &cache] {
    MaterializeEdgeColumns(*this, &cache.columns);
    cache.ready.store(true, std::memory_order_release);
  });
  return cache.columns;
}

double Graph::matrix_total() const {
  if (directed()) return total_weight_;
  // Symmetric matrix: every off-diagonal edge appears twice; a self-loop
  // N_ii appears once on the diagonal.
  return 2.0 * (total_weight_ - self_loop_weight_) + self_loop_weight_;
}

int64_t Graph::CountIsolates() const {
  int64_t isolates = 0;
  for (NodeId v = 0; v < num_nodes_; ++v) {
    if (out_degree_[static_cast<size_t>(v)] == 0 &&
        in_degree_[static_cast<size_t>(v)] == 0) {
      ++isolates;
    }
  }
  return isolates;
}

EdgeId Graph::FindEdge(NodeId src, NodeId dst) const {
  if (!directed() && src > dst) std::swap(src, dst);
  Edge probe{src, dst, 0.0};
  const auto less = [](const Edge& a, const Edge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  };
  const auto it = std::lower_bound(edges_.begin(), edges_.end(), probe, less);
  if (it == edges_.end() || it->src != src || it->dst != dst) return -1;
  return static_cast<EdgeId>(it - edges_.begin());
}

double Graph::WeightOf(NodeId src, NodeId dst) const {
  const EdgeId id = FindEdge(src, dst);
  return id < 0 ? 0.0 : edges_[static_cast<size_t>(id)].weight;
}

std::string Graph::LabelOf(NodeId v) const {
  if (has_labels() && v >= 0 && static_cast<size_t>(v) < labels_.size()) {
    return labels_[static_cast<size_t>(v)];
  }
  return std::to_string(v);
}

Result<NodeId> Graph::FindLabel(const std::string& label) const {
  const auto it = label_index_.find(label);
  if (it != label_index_.end()) return it->second;
  // Graphs assembled outside GraphBuilder may carry labels without an
  // index; fall back to the scan so lookups stay total.
  if (label_index_.empty()) {
    for (size_t i = 0; i < labels_.size(); ++i) {
      if (labels_[i] == label) return static_cast<NodeId>(i);
    }
  }
  return Status::NotFound("no node labeled '" + label + "'");
}

}  // namespace netbone
