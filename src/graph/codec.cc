// Copyright 2026 The netbone Authors.

#include "graph/codec.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "graph/builder.h"

namespace netbone {

namespace {

// Bumped on any layout change; decoders reject unknown versions.
constexpr uint32_t kGraphCodecVersion = 1;

static_assert(sizeof(Edge) == 2 * sizeof(NodeId) + sizeof(double),
              "Edge must be padding-free for the PodVec fast path");

}  // namespace

void EncodeGraph(const Graph& graph, ByteWriter* writer) {
  writer->U32(kGraphCodecVersion);
  writer->U32(graph.directed() ? 1u : 0u);
  writer->U32(static_cast<uint32_t>(graph.num_nodes()));
  const uint32_t num_labels =
      graph.has_labels() ? static_cast<uint32_t>(graph.num_nodes()) : 0u;
  writer->U32(num_labels);
  for (uint32_t v = 0; v < num_labels; ++v) {
    writer->Str(graph.LabelOf(static_cast<NodeId>(v)));
  }
  writer->PodVec(graph.edges());
}

Result<Graph> DecodeGraph(ByteReader* reader) {
  NETBONE_ASSIGN_OR_RETURN(const uint32_t version, reader->U32());
  if (version != kGraphCodecVersion) {
    return Status::Corruption("unknown graph codec version " +
                              std::to_string(version));
  }
  NETBONE_ASSIGN_OR_RETURN(const uint32_t directed, reader->U32());
  if (directed > 1) {
    return Status::Corruption("bad directedness tag");
  }
  NETBONE_ASSIGN_OR_RETURN(const uint32_t num_nodes_raw, reader->U32());
  if (num_nodes_raw > static_cast<uint32_t>(INT32_MAX)) {
    return Status::Corruption("node count out of range");
  }
  const NodeId num_nodes = static_cast<NodeId>(num_nodes_raw);
  NETBONE_ASSIGN_OR_RETURN(const uint32_t num_labels, reader->U32());
  if (num_labels != 0 && num_labels != num_nodes_raw) {
    return Status::Corruption("label count does not match node count");
  }

  // Duplicates are impossible in a canonical table, so treat one as the
  // corruption it is; self-loops are legal content and must round-trip.
  GraphBuilder builder(directed == 1 ? Directedness::kDirected
                                     : Directedness::kUndirected,
                       DuplicateEdgePolicy::kError, SelfLoopPolicy::kKeep);
  for (uint32_t v = 0; v < num_labels; ++v) {
    NETBONE_ASSIGN_OR_RETURN(const std::string label, reader->Str());
    if (builder.InternLabel(label) != static_cast<NodeId>(v)) {
      return Status::Corruption("duplicate label in label table");
    }
  }
  builder.ReserveNodes(num_nodes);

  NETBONE_ASSIGN_OR_RETURN(const std::vector<Edge> edges,
                           reader->PodVec<Edge>());
  for (const Edge& e : edges) {
    if (e.src < 0 || e.src >= num_nodes || e.dst < 0 || e.dst >= num_nodes) {
      return Status::Corruption("edge endpoint out of range");
    }
    builder.AddEdge(e.src, e.dst, e.weight);
  }

  Result<Graph> graph = builder.Build();
  if (!graph.ok()) {
    // The builder's own diagnostics (duplicate edge, non-finite weight)
    // mean the bytes were not a canonical table: typed corruption.
    return Status::Corruption("graph rebuild failed: " +
                              graph.status().ToString());
  }
  if (graph->num_edges() != static_cast<int64_t>(edges.size())) {
    return Status::Corruption("canonical rebuild changed the edge count");
  }
  return graph;
}

}  // namespace netbone
