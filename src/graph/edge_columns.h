// Copyright 2026 The netbone Authors.
//
// Structure-of-arrays view of a Graph's canonical edge table, materialized
// once per graph and cached alongside it (Graph::edge_columns()).
//
// The local scoring kernels (NC, DF, NT) are pure per-edge functions of
// (n_ij, n_i., n_.j, n_..). On the canonical AoS edge table every edge
// pays two to four *random* loads (strengths and degrees indexed by node
// id) plus a strided 16-byte struct read. The columns below pre-gather
// those inputs into contiguous streams, which is what lets the batched
// SIMD kernels (core/simd_kernels.h) consume whole lanes with nothing but
// sequential loads — and what the delta-rescore dirty-run path and the
// sweep engine's union-find pass read instead of striding Edge structs.
//
// Contents are a pure function of the graph, derived bit-for-bit from the
// same arrays the scalar kernels read (out_strength / in_strength /
// degrees), so a kernel consuming columns sees exactly the inputs the
// per-edge oracle sees. Copies of a Graph share one lazily-built cache;
// materialization is O(|E|) and happens at most once per graph.

#ifndef NETBONE_GRAPH_EDGE_COLUMNS_H_
#define NETBONE_GRAPH_EDGE_COLUMNS_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

namespace netbone {

class Graph;

/// Contiguous per-edge input columns, index-aligned with the canonical
/// (src, dst)-sorted edge table: entry k describes graph.edge(k).
struct EdgeColumns {
  /// Endpoint node ids (the sweep engine's union-find pass reads these
  /// instead of striding Edge structs).
  std::vector<int32_t> src;
  std::vector<int32_t> dst;
  /// Edge weight n_ij.
  std::vector<double> weight;
  /// Pre-gathered marginals: n_i. = out_strength(src), n_.j =
  /// in_strength(dst). For undirected graphs both are the symmetric
  /// strengths, exactly as the scalar kernels read them.
  std::vector<double> n_i;
  std::vector<double> n_j;
  /// Pre-gathered Disparity Filter exponents: out_degree(src) - 1 and
  /// in_degree(dst) - 1 as doubles (exact for any real degree). Edge
  /// endpoints always have degree >= 1, so these are >= 0.
  std::vector<double> dm1_i;
  std::vector<double> dm1_j;

  /// Number of edges covered.
  int64_t size() const { return static_cast<int64_t>(weight.size()); }

  /// Heap bytes held by the columns (capacity-based, matching
  /// common/bytes.h accounting): ~48 bytes per edge when materialized.
  int64_t bytes() const;
};

/// Fills `columns` from `graph`'s canonical tables. Exposed for tests;
/// production code goes through Graph::edge_columns(), which caches.
void MaterializeEdgeColumns(const Graph& graph, EdgeColumns* columns);

namespace internal {

/// The per-graph cache slot Graph holds by shared_ptr so copies share one
/// materialization. call_once makes concurrent first readers safe; `ready`
/// lets byte accounting ask "is it priced in yet?" without building it.
struct EdgeColumnsCache {
  std::once_flag once;
  EdgeColumns columns;
  std::atomic<bool> ready{false};
};

}  // namespace internal

}  // namespace netbone

#endif  // NETBONE_GRAPH_EDGE_COLUMNS_H_
