// Copyright 2026 The netbone Authors.
//
// Structural transforms: symmetrization, reversal, and subgraph extraction
// by edge subset (how a filtered backbone becomes a Graph again).

#ifndef NETBONE_GRAPH_TRANSFORM_H_
#define NETBONE_GRAPH_TRANSFORM_H_

#include <vector>

#include "common/result.h"
#include "graph/graph.h"

namespace netbone {

/// How to combine the two directions when symmetrizing a directed graph.
enum class SymmetrizeRule {
  kSum,  ///< w(i,j) + w(j,i)
  kMax,  ///< max(w(i,j), w(j,i))
  kAvg,  ///< (w(i,j) + w(j,i)) / 2
};

/// Produces the undirected version of `graph`. No-op copy when already
/// undirected.
Result<Graph> Symmetrize(const Graph& graph,
                         SymmetrizeRule rule = SymmetrizeRule::kSum);

/// Reverses every edge of a directed graph. Fails on undirected input.
Result<Graph> Reverse(const Graph& graph);

/// Builds the subgraph over the same node set containing exactly the edges
/// whose ids appear in `edge_ids`. Node labels are preserved.
Result<Graph> EdgeSubgraph(const Graph& graph,
                           const std::vector<EdgeId>& edge_ids);

/// Builds the subgraph containing edges where keep_edge[id] is true.
Result<Graph> EdgeSubgraphMask(const Graph& graph,
                               const std::vector<bool>& keep_edge);

}  // namespace netbone

#endif  // NETBONE_GRAPH_TRANSFORM_H_
