#include "graph/io.h"

#include <fstream>
#include <sstream>

#include "common/strings.h"
#include "graph/builder.h"

namespace netbone {
namespace {

Result<Graph> ParseLines(std::istream& in, const EdgeListReadOptions& opts) {
  GraphBuilder builder(opts.directedness, opts.duplicate_policy,
                       opts.keep_self_loops ? SelfLoopPolicy::kKeep
                                            : SelfLoopPolicy::kDrop);
  std::string line;
  int64_t line_number = 0;
  bool header_pending = opts.has_header;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string_view stripped = StripAsciiWhitespace(line);
    if (stripped.empty() || stripped.front() == '#') continue;
    if (header_pending) {
      header_pending = false;
      continue;
    }
    const std::vector<std::string> fields = Split(stripped, opts.separator);
    if (fields.size() < 3) {
      return Status::Corruption(
          StrFormat("line %lld: expected 3 fields, got %zu",
                    static_cast<long long>(line_number), fields.size()));
    }
    const Result<double> weight = ParseDouble(fields[2]);
    if (!weight.ok()) {
      return Status::Corruption(
          StrFormat("line %lld: %s", static_cast<long long>(line_number),
                    weight.status().message().c_str()));
    }
    builder.AddLabeledEdge(
        std::string(StripAsciiWhitespace(fields[0])),
        std::string(StripAsciiWhitespace(fields[1])), *weight);
  }
  return builder.Build();
}

}  // namespace

Result<Graph> ReadEdgeListCsv(const std::string& path,
                              const EdgeListReadOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  return ParseLines(in, options);
}

Result<Graph> ReadEdgeListCsvFromString(const std::string& content,
                                        const EdgeListReadOptions& options) {
  std::istringstream in(content);
  return ParseLines(in, options);
}

std::string EdgeListToString(const Graph& graph,
                             const EdgeListWriteOptions& options) {
  std::ostringstream out;
  if (options.write_header) {
    out << "src" << options.separator << "trg" << options.separator
        << "nij\n";
  }
  for (const Edge& e : graph.edges()) {
    out << graph.LabelOf(e.src) << options.separator << graph.LabelOf(e.dst)
        << options.separator << e.weight << '\n';
  }
  return out.str();
}

Status WriteEdgeListCsv(const Graph& graph, const std::string& path,
                        const EdgeListWriteOptions& options) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  out << EdgeListToString(graph, options);
  if (!out) return Status::IOError("write failed for '" + path + "'");
  return Status::OK();
}

}  // namespace netbone
