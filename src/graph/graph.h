// Copyright 2026 The netbone Authors.
//
// Weighted graph container used throughout the library.
//
// The paper's data structure (Sec. III-A) is a weighted graph
// G = (V, E, N) with non-negative real edge weights N_ij, directed or
// undirected. `Graph` stores the edge table in a canonical sorted order,
// keeps per-node weighted strengths and degrees (the marginals N_i., N_.j
// and N_.. that every backboning null model consumes), and optionally maps
// dense node ids back to external string labels.

#ifndef NETBONE_GRAPH_GRAPH_H_
#define NETBONE_GRAPH_GRAPH_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "graph/edge_columns.h"

namespace netbone {

/// Dense node identifier in [0, num_nodes).
using NodeId = int32_t;

/// Index into a Graph's edge table.
using EdgeId = int64_t;

/// One weighted edge. For undirected graphs the canonical form has
/// src <= dst and the edge is stored exactly once.
struct Edge {
  NodeId src = 0;
  NodeId dst = 0;
  double weight = 0.0;

  friend bool operator==(const Edge& a, const Edge& b) {
    return a.src == b.src && a.dst == b.dst && a.weight == b.weight;
  }
};

/// Edge directedness of a Graph.
enum class Directedness {
  kDirected,
  kUndirected,
};

/// Immutable weighted graph.
///
/// Construct via GraphBuilder (graph/builder.h), which canonicalizes,
/// deduplicates and validates edges. All query methods are O(1) except
/// where noted.
class Graph {
 public:
  Graph() = default;

  /// Number of nodes (including isolates).
  NodeId num_nodes() const { return num_nodes_; }

  /// Number of stored edges (undirected edges count once).
  int64_t num_edges() const { return static_cast<int64_t>(edges_.size()); }

  /// Directed or undirected.
  Directedness directedness() const { return directedness_; }
  bool directed() const { return directedness_ == Directedness::kDirected; }

  /// The canonical edge table, sorted by (src, dst).
  const std::vector<Edge>& edges() const { return edges_; }

  /// The edge at `id`. Precondition: 0 <= id < num_edges().
  const Edge& edge(EdgeId id) const { return edges_[static_cast<size_t>(id)]; }

  /// Structure-of-arrays view of the edge table with pre-gathered
  /// marginals (graph/edge_columns.h), materialized lazily on first use
  /// and cached for the graph's lifetime. Copies of a Graph share one
  /// cache (the contents are a pure function of the edge table, which
  /// copies share byte-for-byte). Thread-safe: concurrent first callers
  /// materialize exactly once. O(|E|) on the first call, O(1) after.
  const EdgeColumns& edge_columns() const;

  /// True once edge_columns() has materialized (so byte accounting can
  /// price the derived cache without forcing it into existence).
  bool edge_columns_materialized() const {
    return columns_cache_->ready.load(std::memory_order_acquire);
  }

  /// Sum of all edge weights as stored (undirected edges counted once).
  double total_weight() const { return total_weight_; }

  /// Matrix total N_.. — the null-model denominator. For directed graphs
  /// this equals total_weight(); for undirected graphs it is
  /// 2 * total_weight() minus self-loop weight, i.e. the sum over the full
  /// symmetric adjacency matrix.
  double matrix_total() const;

  /// Out-strength N_i. (sum of outgoing weights). For undirected graphs,
  /// the symmetric row sum: every incident edge counts.
  double out_strength(NodeId v) const {
    return out_strength_[static_cast<size_t>(v)];
  }

  /// In-strength N_.j (sum of incoming weights). Equals out_strength for
  /// undirected graphs.
  double in_strength(NodeId v) const {
    return in_strength_[static_cast<size_t>(v)];
  }

  /// Out-degree (number of outgoing edges; incident edges if undirected).
  int64_t out_degree(NodeId v) const {
    return out_degree_[static_cast<size_t>(v)];
  }

  /// In-degree (number of incoming edges; incident edges if undirected).
  int64_t in_degree(NodeId v) const {
    return in_degree_[static_cast<size_t>(v)];
  }

  /// Number of nodes with no incident edge at all (the isolates I_G of the
  /// paper's Coverage criterion).
  int64_t CountIsolates() const;

  /// Looks up the stored weight of (src, dst); 0.0 when the edge is absent.
  /// For undirected graphs the pair is canonicalized first.
  /// O(log degree) via binary search on the sorted edge table.
  double WeightOf(NodeId src, NodeId dst) const;

  /// Finds the edge id of (src, dst), or -1 when absent. Canonicalizes for
  /// undirected graphs. O(log |E|).
  EdgeId FindEdge(NodeId src, NodeId dst) const;

  /// True when node labels were attached at build time.
  bool has_labels() const { return !labels_.empty(); }

  /// Label of `v`; falls back to the decimal id when labels are absent.
  std::string LabelOf(NodeId v) const;

  /// Resolves a label to a node id; NotFound when unknown. O(1) via the
  /// label index the builder hands over, so label-heavy loaders (the
  /// occupations/countries case studies) stay linear overall.
  Result<NodeId> FindLabel(const std::string& label) const;

 private:
  friend class GraphBuilder;

  NodeId num_nodes_ = 0;
  Directedness directedness_ = Directedness::kDirected;
  std::vector<Edge> edges_;  // sorted by (src, dst)
  std::vector<double> out_strength_;
  std::vector<double> in_strength_;
  std::vector<int64_t> out_degree_;
  std::vector<int64_t> in_degree_;
  double total_weight_ = 0.0;
  double self_loop_weight_ = 0.0;
  std::vector<std::string> labels_;
  // label -> id, populated by GraphBuilder alongside labels_.
  std::unordered_map<std::string, NodeId> label_index_;
  // Lazily-built SoA view (edge_columns()). Never null; copies share the
  // slot, so a graph family materializes the gather at most once.
  std::shared_ptr<internal::EdgeColumnsCache> columns_cache_ =
      std::make_shared<internal::EdgeColumnsCache>();
};

}  // namespace netbone

#endif  // NETBONE_GRAPH_GRAPH_H_
