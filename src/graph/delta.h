// Copyright 2026 The netbone Authors.
//
// Sparse difference between two canonical graphs. The paper's setting is a
// network observed repeatedly under noise (Sec. III-A; the multi-year
// snapshots of Sec. V): successive observations share almost all of their
// edges, so the difference — not the graph — is the natural unit of work
// for everything downstream. GraphDelta captures that difference exactly:
// weight changes, insertions and deletions classified by one merge walk
// over the two (src, dst)-sorted edge tables, plus the set of nodes whose
// marginals (N_i., N_.j, degrees) moved at all. The incremental rescoring
// path (core/delta_rescore.h) consumes it to recompute only the edges
// whose score inputs changed.
//
// Deltas compare node identities positionally: dense ids must mean the
// same nodes in both graphs. For unlabeled graphs dense ids are the nodes'
// identity by definition; for labeled graphs the label tables must match
// id-for-id (same labels interned in the same order) — otherwise
// ComputeGraphDelta refuses rather than diff two incompatible universes.

#ifndef NETBONE_GRAPH_DELTA_H_
#define NETBONE_GRAPH_DELTA_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"

namespace netbone {

/// One edge present in both graphs with a different weight.
struct EdgeWeightChange {
  EdgeId base_id = 0;   ///< index into the base graph's edge table
  EdgeId next_id = 0;   ///< index into the successor graph's edge table
  double base_weight = 0.0;
  double next_weight = 0.0;
};

/// Canonical sparse difference between a base graph and a successor.
/// Sizes are O(affected edges + changed nodes) — the endpoint stars of
/// the changed nodes, never the whole table; a delta between identical
/// graphs is empty.
struct GraphDelta {
  /// Edges in both graphs whose weights differ (bitwise comparison),
  /// ascending by base_id (equivalently next_id: the merge walk is
  /// monotone).
  std::vector<EdgeWeightChange> changed;
  /// Successor edge ids absent from the base, ascending.
  std::vector<EdgeId> inserted;
  /// Base edge ids absent from the successor, ascending.
  std::vector<EdgeId> deleted;
  /// Nodes (valid in the successor graph) with any marginal difference:
  /// out/in strength compared bitwise, out/in degree exactly. Nodes the
  /// successor added beyond the base's node count are included; nodes only
  /// the base had are not (no successor edge can reference them).
  std::vector<NodeId> changed_nodes;
  /// Successor edge ids with an endpoint in changed_nodes (the union of
  /// the endpoint stars), ascending. Collected in the same walk that
  /// classifies the edges, so consumers whose scores read marginals — the
  /// incremental rescoring path — get their dirty candidates without
  /// re-scanning the table.
  std::vector<EdgeId> star_edges;

  /// True when the matrix totals N_.. compare bitwise equal — the gate for
  /// methods whose null model divides by the total (Noise-Corrected).
  bool totals_equal = false;

  int64_t base_edges = 0;  ///< |E| of the base graph
  int64_t next_edges = 0;  ///< |E| of the successor graph

  /// True when nothing changed at all.
  bool Empty() const {
    return changed.empty() && inserted.empty() && deleted.empty() &&
           changed_nodes.empty();
  }

  /// Total touched edges (changes + insertions + deletions).
  int64_t AffectedEdges() const {
    return static_cast<int64_t>(changed.size() + inserted.size() +
                                deleted.size());
  }

  /// Approximate heap bytes of the delta's vectors, for callers that keep
  /// deltas resident under a byte budget.
  int64_t ApproxBytes() const;
};

/// Diffs `next` against `base` in one O(E_base + E_next + V) pass over the
/// sorted edge tables and marginal arrays. Fails when the graphs are not
/// comparable: different directedness, or label universes that do not
/// match id-for-id (see the header comment).
Result<GraphDelta> ComputeGraphDelta(const Graph& base, const Graph& next);

}  // namespace netbone

#endif  // NETBONE_GRAPH_DELTA_H_
