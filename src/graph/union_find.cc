#include "graph/union_find.h"

// Header-only; see union_find.h.
