// Acceptance harness for crash-safe persistence (src/service/snapshot.h):
// a warm-restarted engine must serve the recorded trace bit-identically
// with ZERO rescores and ZERO sorts, and a corrupted snapshot must
// degrade to a cold start for the damaged sections — never a crash,
// never a wrong bit.
//
// Contract being demonstrated (and enforced — the process exits non-zero
// on any violation):
//   * phase A records a mixed trace (3 graphs x {NC, DF, NT} x
//     {TopShare, TopK, CoveragePoint, Sweep}) against an engine with a
//     snapshot_dir, then snapshots explicitly;
//   * phase B boots a second engine on the same directory: every cache
//     entry restores (quarantined_sections == 0), the full trace replays
//     bit-identically with scores_computed == 0 and
//     ScoreOrder::SortsPerformed() unchanged, and every response is a
//     cache hit;
//   * phase C corrupts the snapshot deterministically (truncation to
//     60%, a bit flip mid-file) and boots engines on the damage: restore
//     salvages what it can, quarantines the rest, and the replayed trace
//     is STILL bit-identical — the quarantined keys just pay a cold
//     rescore instead of crashing or serving garbage.
//
// Restore throughput (entries/s and bytes/s over repeated RestoreSnapshot
// calls into fresh stores) lands in BENCH_warm_restart.json.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "core/registry.h"
#include "core/sweep.h"
#include "gen/erdos_renyi.h"
#include "service/engine.h"
#include "service/snapshot.h"
#include "stats/descriptive.h"

namespace nb = netbone;
namespace fs = std::filesystem;
using netbone::bench::Banner;
using netbone::bench::Num;
using netbone::bench::PrintRow;

namespace {

/// Field-exact response comparison (BackboneResponse has no operator==;
/// cache_hit/degraded are provenance, not payload, so they are excluded).
bool SamePayload(const nb::BackboneResponse& a,
                 const nb::BackboneResponse& b) {
  return a.kept_edges == b.kept_edges && a.kept == b.kept &&
         a.coverage == b.coverage && a.weight_share == b.weight_share &&
         a.sweep == b.sweep && a.connect_k == b.connect_k &&
         a.stability == b.stability;
}

/// The recorded trace: every (graph, method) pair exercised through every
/// warm-servable request kind.
std::vector<nb::BackboneRequest> BuildTrace(
    const std::vector<uint64_t>& fingerprints) {
  const std::vector<nb::Method> methods = {nb::Method::kNoiseCorrected,
                                           nb::Method::kDisparityFilter,
                                           nb::Method::kNaiveThreshold};
  std::vector<nb::BackboneRequest> trace;
  for (const uint64_t fingerprint : fingerprints) {
    for (const nb::Method method : methods) {
      nb::BackboneRequest share;
      share.graph = fingerprint;
      share.method = method;
      share.kind = nb::RequestKind::kTopShare;
      share.share = 0.25;
      trace.push_back(share);

      nb::BackboneRequest topk = share;
      topk.kind = nb::RequestKind::kTopK;
      topk.k = 150;
      trace.push_back(topk);

      nb::BackboneRequest point = share;
      point.kind = nb::RequestKind::kCoveragePoint;
      point.share = 0.4;
      trace.push_back(point);

      nb::BackboneRequest sweep = share;
      sweep.kind = nb::RequestKind::kSweep;
      sweep.shares = {0.1, 0.3, 0.5, 0.8};
      trace.push_back(sweep);
    }
  }
  return trace;
}

/// Runs the trace, appending each response; false on any request failure.
bool RunTrace(nb::BackboneEngine& engine,
              const std::vector<nb::BackboneRequest>& trace,
              std::vector<nb::BackboneResponse>* out) {
  bool ok = true;
  for (const nb::BackboneRequest& request : trace) {
    auto response = engine.Execute(request);
    if (!response.ok()) {
      std::printf("  request failed: %s\n",
                  response.status().message().c_str());
      ok = false;
      out->emplace_back();
      continue;
    }
    out->push_back(*std::move(response));
  }
  return ok;
}

std::vector<unsigned char> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<unsigned char>(std::istreambuf_iterator<char>(in),
                                    std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path,
                    const std::vector<unsigned char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

}  // namespace

int main() {
  Banner("warm restart",
         "snapshot/restore: bit-identical serving, zero rescores, "
         "corruption-tolerant boot");
  const bool quick = netbone::bench::QuickMode();
  netbone::bench::JsonBenchLog json("warm_restart");
  bool ok = true;

  const fs::path root =
      fs::temp_directory_path() / "netbone_warm_restart_bench";
  std::error_code ec;
  fs::remove_all(root, ec);
  fs::create_directories(root / "live");

  // Three graphs of different sizes/seeds so the snapshot holds multiple
  // graph sections and a dozen-plus score entries.
  const int base_nodes = quick ? 400 : 1500;
  std::vector<uint64_t> fingerprints;
  std::vector<nb::Graph> graphs;
  for (int i = 0; i < 3; ++i) {
    auto graph = nb::GenerateErdosRenyi({.num_nodes = base_nodes + 200 * i,
                                         .average_degree = 3.0,
                                         .seed = 90u + static_cast<uint64_t>(i)});
    if (!graph.ok()) return 1;
    graphs.push_back(*std::move(graph));
  }

  // ---- Phase A: record the trace against a snapshotting engine. -------
  std::vector<nb::BackboneRequest> trace;
  std::vector<nb::BackboneResponse> reference;
  {
    nb::BackboneEngineOptions options;
    options.snapshot_dir = (root / "live").string();
    options.snapshot_on_shutdown = false;  // the explicit write below
    nb::BackboneEngine engine(options);
    for (const nb::Graph& graph : graphs) {
      fingerprints.push_back(engine.AddGraph(graph));
    }
    trace = BuildTrace(fingerprints);
    if (!RunTrace(engine, trace, &reference)) ok = false;
    const nb::Status wrote = engine.WriteSnapshotNow();
    if (!wrote.ok()) {
      std::printf("snapshot write failed: %s\n", wrote.message().c_str());
      ok = false;
    }
    std::printf("phase A: %zu requests recorded, %lld scores computed\n",
                trace.size(),
                static_cast<long long>(engine.stats().scores_computed));
  }
  const std::string live_path = nb::SnapshotFilePath((root / "live").string());
  const std::vector<unsigned char> snapshot_bytes = ReadFileBytes(live_path);
  if (snapshot_bytes.empty()) {
    std::printf("no snapshot written\n");
    return 1;
  }

  // ---- Phase B: warm restart — bit-identity, zero rescores/sorts. -----
  {
    nb::BackboneEngineOptions options;
    options.snapshot_dir = (root / "live").string();
    options.snapshot_on_shutdown = false;
    nb::Timer boot;
    nb::BackboneEngine engine(options);
    const double boot_seconds = boot.ElapsedSeconds();
    const auto stats = engine.stats();
    if (stats.restored_entries <= 0 || stats.restored_graphs <= 0) {
      std::printf("restore salvaged nothing (entries=%lld graphs=%lld)\n",
                  static_cast<long long>(stats.restored_entries),
                  static_cast<long long>(stats.restored_graphs));
      ok = false;
    }
    if (stats.quarantined_sections != 0 ||
        stats.snapshot_restore_errors != 0) {
      std::printf("clean snapshot quarantined %lld sections, %lld errors\n",
                  static_cast<long long>(stats.quarantined_sections),
                  static_cast<long long>(stats.snapshot_restore_errors));
      ok = false;
    }

    const int64_t sorts_before = nb::ScoreOrder::SortsPerformed();
    std::vector<nb::BackboneResponse> replay;
    if (!RunTrace(engine, trace, &replay)) ok = false;
    const auto after = engine.stats();
    if (after.scores_computed != 0) {
      std::printf("warm restart recomputed %lld scores (want 0)\n",
                  static_cast<long long>(after.scores_computed));
      ok = false;
    }
    if (nb::ScoreOrder::SortsPerformed() != sorts_before) {
      std::printf("warm restart performed sorts (want 0)\n");
      ok = false;
    }
    size_t mismatches = 0;
    size_t misses = 0;
    for (size_t i = 0; i < replay.size(); ++i) {
      if (!SamePayload(replay[i], reference[i])) ++mismatches;
      if (!replay[i].cache_hit) ++misses;
    }
    if (mismatches != 0 || misses != 0) {
      std::printf("warm replay: %zu mismatched, %zu cache misses (want 0)\n",
                  mismatches, misses);
      ok = false;
    }
    PrintRow({"phase B", "entries", "graphs", "boot ms", "identical"});
    PrintRow({"", std::to_string(stats.restored_entries),
              std::to_string(stats.restored_graphs),
              Num(boot_seconds * 1e3, 2), mismatches == 0 ? "yes" : "NO"});
  }

  // ---- Restore throughput: repeated RestoreSnapshot into fresh stores.
  {
    const int reps = quick ? 3 : 9;
    std::vector<double> times;
    int64_t entries = 0;
    for (int rep = 0; rep < reps; ++rep) {
      nb::GraphStore store;
      nb::ScoreCache cache(int64_t{256} << 20);
      nb::Timer timer;
      const auto report = nb::RestoreSnapshot(live_path, &store, &cache);
      times.push_back(timer.ElapsedSeconds());
      if (!report.ok() || !report->committed) ok = false;
      if (report.ok()) entries = report->entries_restored;
    }
    const double median = nb::Median(times);
    const double best = *std::min_element(times.begin(), times.end());
    const double mb = static_cast<double>(snapshot_bytes.size()) / 1e6;
    std::printf("\nrestore: %lld entries, %s MB in %s ms median "
                "(%s MB/s)\n",
                static_cast<long long>(entries), Num(mb, 2).c_str(),
                Num(median * 1e3, 2).c_str(),
                Num(mb / median, 1).c_str());
    json.RecordSeconds("restore",
                       static_cast<int64_t>(snapshot_bytes.size()), 1,
                       median, best);
    json.RecordSeconds("restore_per_entry",
                       entries, 1,
                       entries > 0 ? median / static_cast<double>(entries)
                                   : netbone::bench::NaN(),
                       entries > 0 ? best / static_cast<double>(entries)
                                   : netbone::bench::NaN());
  }

  // ---- Phase C: deterministic corruption drills. ----------------------
  // Each drill damages a copy of the snapshot, boots an engine on it, and
  // requires: the engine constructs (no crash), damage is observable in
  // the stats, and the trace STILL replays bit-identically — quarantined
  // keys pay a cold rescore, nothing serves wrong bits.
  struct Drill {
    const char* name;
    std::vector<unsigned char> bytes;
  };
  std::vector<Drill> drills;
  {
    // Torn write: keep only the first 60% of the file (footer lost).
    std::vector<unsigned char> torn(
        snapshot_bytes.begin(),
        snapshot_bytes.begin() +
            static_cast<ptrdiff_t>(snapshot_bytes.size() * 6 / 10));
    drills.push_back({"truncated-60pct", std::move(torn)});

    // One flipped bit mid-file: a payload or header hash must catch it.
    std::vector<unsigned char> flipped = snapshot_bytes;
    flipped[flipped.size() / 2] ^= 0x40;
    drills.push_back({"bitflip-midfile", std::move(flipped)});
  }

  PrintRow({"\nphase C drill", "entries", "quarant.", "rescored",
            "identical"});
  for (const Drill& drill : drills) {
    const fs::path dir = root / drill.name;
    fs::create_directories(dir);
    WriteFileBytes(nb::SnapshotFilePath(dir.string()), drill.bytes);

    nb::BackboneEngineOptions options;
    options.snapshot_dir = dir.string();
    options.snapshot_on_shutdown = false;
    nb::BackboneEngine engine(options);
    const auto stats = engine.stats();
    const bool damage_seen = stats.quarantined_sections > 0 ||
                             stats.restored_entries <
                                 static_cast<int64_t>(trace.size()) / 4 ||
                             stats.snapshot_restore_errors > 0;
    if (!damage_seen) {
      std::printf("%s: damage invisible in stats\n", drill.name);
      ok = false;
    }

    // Quarantined graphs must be re-interned before replay — exactly what
    // a production boot path does when restore reports missing graphs.
    for (const nb::Graph& graph : graphs) engine.AddGraph(graph);

    std::vector<nb::BackboneResponse> replay;
    if (!RunTrace(engine, trace, &replay)) ok = false;
    size_t mismatches = 0;
    for (size_t i = 0; i < replay.size(); ++i) {
      if (!SamePayload(replay[i], reference[i])) ++mismatches;
    }
    if (mismatches != 0) ok = false;
    PrintRow({drill.name, std::to_string(stats.restored_entries),
              std::to_string(stats.quarantined_sections),
              std::to_string(engine.stats().scores_computed),
              mismatches == 0 ? "yes" : "NO"});
  }

  fs::remove_all(root, ec);
  std::printf("\nwarm-restart gates (restore, zero-rescore, zero-sort, "
              "bit-identity, corruption salvage): %s\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
