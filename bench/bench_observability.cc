// Acceptance gate for the observability layer (src/obs/ + the engine
// instrumentation): the process exits non-zero on any violation, so
// `ctest -L smoke` keeps the flight recorder honest.
//
// Gates:
//   * Overhead — the default production config (enable_metrics, tracing
//     off) replays a mixed warm trace no more than 5% slower than the
//     same engine with every hook off; the maximal debug config (rate-1
//     tracing on top) stays under 25% — tracing every request pays a few
//     clock reads per span boundary by design and is an explicit opt-in,
//     but it must never balloon (min-of-replays, measured in-process so
//     machine noise cancels).
//   * Counter exactness — every legacy Stats field the registry mirrors
//     reads back identically through MetricsSnapshot::ValueOf after a
//     replayed workload, and the per-kind latency histograms account for
//     exactly one record per executed request.
//   * Histogram determinism — one multiset of values recorded through
//     every shard/thread combination yields bit-identical bucket counts
//     and p50/p95/p99 readouts.
//   * Span chains — with rate-1 sampling, one complete trace per request
//     with the correct answer-path tag and span set for each of the
//     warm / delta / cold / degraded / negative / failed roads.
//
// Artifacts: BENCH_observability.json (overhead timings + exported warm
// p95) and METRICS_observability.json (the full merged metrics snapshot,
// schema-compatible with the bench logs so compare_bench_json.py can
// diff exported percentiles across runs).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <initializer_list>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/registry.h"
#include "gen/erdos_renyi.h"
#include "graph/builder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/engine.h"
#include "service/fault_injection.h"

namespace nb = netbone;
using netbone::bench::Banner;
using netbone::bench::Num;
using netbone::bench::PrintRow;

namespace {

nb::Graph BenchGraph() {
  const nb::Result<nb::Graph> er = nb::GenerateErdosRenyi(
      {.num_nodes = 2000, .average_degree = 3.0, .seed = 78});
  nb::GraphBuilder builder(nb::Directedness::kUndirected);
  builder.ReserveNodes(2000);
  for (const nb::Edge& e : er->edges()) {
    builder.AddEdge(e.src, e.dst, std::floor(e.weight) + 1.0);
  }
  return *builder.Build();
}

/// A noisy re-observation touching ~1% of the edges (unit weight
/// transfers, totals preserved) — the delta path's fixture shape.
nb::Graph MakeRevision(const nb::Graph& base, uint64_t seed) {
  std::vector<nb::Edge> edges(base.edges().begin(), base.edges().end());
  nb::Rng rng(seed);
  const int64_t transfers = std::max<int64_t>(
      1, std::llround(static_cast<double>(edges.size()) * 0.01 / 2.0));
  for (int64_t t = 0; t < transfers; ++t) {
    const size_t a = static_cast<size_t>(rng.NextBounded(edges.size()));
    const size_t b = static_cast<size_t>(rng.NextBounded(edges.size()));
    if (a == b || edges[a].weight < 2.0) continue;
    edges[a].weight -= 1.0;
    edges[b].weight += 1.0;
  }
  nb::GraphBuilder builder(base.directedness());
  builder.ReserveNodes(base.num_nodes());
  for (const nb::Edge& e : edges) builder.AddEdge(e.src, e.dst, e.weight);
  return *builder.Build();
}

nb::BackboneRequest ShareRequest(uint64_t graph, nb::Method method,
                                 double share = 0.25) {
  nb::BackboneRequest request;
  request.graph = graph;
  request.method = method;
  request.kind = nb::RequestKind::kTopShare;
  request.share = share;
  return request;
}

/// The serving bench's mixed warm workload: rotating methods, a spread of
/// shares, and a kind rotation (top-share / coverage-point / top-k).
nb::BackboneRequest MixedRequest(uint64_t graph, int r, int total) {
  static const nb::Method kMethods[] = {
      nb::Method::kNaiveThreshold, nb::Method::kDisparityFilter,
      nb::Method::kNoiseCorrected, nb::Method::kHighSalienceSkeleton};
  nb::BackboneRequest request;
  request.graph = graph;
  request.method = kMethods[static_cast<size_t>(r) % 4];
  request.kind = nb::RequestKind::kTopShare;
  request.share = 0.05 + 0.9 * static_cast<double>(r) / total;
  if (r % 3 == 1) {
    request.kind = nb::RequestKind::kCoveragePoint;
  } else if (r % 3 == 2) {
    request.kind = nb::RequestKind::kTopK;
    request.k = 100 + r;
  }
  return request;
}

/// Primes every method's key so the replay below is all-warm.
bool Prime(nb::BackboneEngine& engine, uint64_t fp) {
  for (const nb::Method method :
       {nb::Method::kNaiveThreshold, nb::Method::kDisparityFilter,
        nb::Method::kNoiseCorrected, nb::Method::kHighSalienceSkeleton}) {
    if (!engine.Execute(ShareRequest(fp, method)).ok()) return false;
  }
  return true;
}

/// Min-of-replays warm per-request seconds for one engine configuration.
double WarmPerRequest(nb::BackboneEngine& engine, uint64_t fp, int requests,
                      int reps, bool* ok) {
  double best = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    nb::Timer timer;
    for (int r = 0; r < requests; ++r) {
      if (!engine.Execute(MixedRequest(fp, r, requests)).ok()) *ok = false;
    }
    best = std::min(best, timer.ElapsedSeconds() / requests);
  }
  return best;
}

bool HasSpan(const nb::obs::RequestTrace& trace, nb::obs::SpanKind kind) {
  for (int s = 0; s < trace.num_spans; ++s) {
    if (trace.spans[s].kind == kind) return true;
  }
  return false;
}

/// The most recent sampled trace, or nullptr (checked) when none.
const nb::obs::RequestTrace* LastTrace(
    const std::vector<nb::obs::RequestTrace>& traces) {
  return traces.empty() ? nullptr : &traces.back();
}

struct SpanExpectation {
  nb::obs::SpanKind kind;
  bool expected;
};

bool CheckTrace(const char* label, const nb::obs::RequestTrace* trace,
                nb::obs::AnswerPath path, bool ok_flag,
                std::initializer_list<SpanExpectation> spans) {
  if (trace == nullptr) {
    std::printf("  %-10s FAIL (no sampled trace)\n", label);
    return false;
  }
  bool pass = trace->path == path && trace->ok == ok_flag;
  for (const SpanExpectation& e : spans) {
    if (HasSpan(*trace, e.kind) != e.expected) pass = false;
  }
  std::printf("  %-10s path=%-9s ok=%d spans=[", label,
              nb::obs::AnswerPathName(trace->path), trace->ok ? 1 : 0);
  for (int s = 0; s < trace->num_spans; ++s) {
    std::printf("%s%s", s > 0 ? " " : "",
                nb::obs::SpanKindName(trace->spans[s].kind));
  }
  std::printf("] %s\n", pass ? "PASS" : "FAIL");
  return pass;
}

}  // namespace

int main() {
  Banner("observability",
         "metrics overhead, counter exactness, histogram determinism, "
         "trace span chains");
  const bool quick = netbone::bench::QuickMode();
  netbone::bench::JsonBenchLog json("observability");
  bool ok = true;

  const nb::Graph graph = BenchGraph();
  const int64_t num_edges = graph.num_edges();
  const int requests = quick ? 200 : 2000;
  // Min-of-5 in every mode: the minimum is the noise-robust statistic,
  // and five replays of the quick trace still cost only milliseconds.
  const int reps = 5;

  // ---------------------------------------------------------------------
  // Gate 1: warm-path overhead. Three configs replayed back-to-back so
  // machine drift hits all sides equally; min-of-replays per side. The
  // default config (metrics on, tracing off — what production runs)
  // carries the 5% gate; the maximal debug config (rate-1 tracing on
  // every request) pays clock reads per span by design and gets a
  // looser never-balloon bound.
  // ---------------------------------------------------------------------
  {
    nb::BackboneEngineOptions off;
    off.enable_metrics = false;
    off.trace_sample_rate = 0;
    nb::BackboneEngine base_engine(off);
    const uint64_t base_fp = base_engine.AddGraph(BenchGraph());
    if (!Prime(base_engine, base_fp)) ok = false;

    nb::BackboneEngineOptions metrics_only;  // the defaults, spelled out
    metrics_only.enable_metrics = true;
    metrics_only.trace_sample_rate = 0;
    nb::BackboneEngine metrics_engine(metrics_only);
    const uint64_t metrics_fp = metrics_engine.AddGraph(BenchGraph());
    if (!Prime(metrics_engine, metrics_fp)) ok = false;

    nb::BackboneEngineOptions traced = metrics_only;
    traced.trace_sample_rate = 1;
    nb::BackboneEngine traced_engine(traced);
    const uint64_t traced_fp = traced_engine.AddGraph(BenchGraph());
    if (!Prime(traced_engine, traced_fp)) ok = false;

    double base_s = 1e300;
    double metrics_s = 1e300;
    double traced_s = 1e300;
    double metrics_ratio = 0.0;
    double traced_ratio = 0.0;
    bool metrics_within = false;
    bool traced_within = false;
    // Noise guard: a loaded machine (a full ctest run executes this
    // bench alongside every other suite) inflates individual replays
    // unpredictably, and the default gate sits within a few percent of
    // the true overhead. Extra replays only tighten each config's min
    // toward its quiescent floor, so when a gate fails, keep measuring
    // — up to 3x the base replay count — before declaring a regression.
    // A real regression fails all three rounds.
    for (int round = 0; round < 3; ++round) {
      for (int rep = 0; rep < reps; ++rep) {
        bool run_ok = true;
        base_s = std::min(
            base_s, WarmPerRequest(base_engine, base_fp, requests, 1,
                                   &run_ok));
        metrics_s = std::min(metrics_s, WarmPerRequest(metrics_engine,
                                                       metrics_fp, requests,
                                                       1, &run_ok));
        traced_s = std::min(traced_s, WarmPerRequest(traced_engine, traced_fp,
                                                     requests, 1, &run_ok));
        if (!run_ok) ok = false;
      }
      metrics_ratio = metrics_s / base_s;
      traced_ratio = traced_s / base_s;
      metrics_within = metrics_ratio <= 1.05;
      traced_within = traced_ratio <= 1.25;
      if (metrics_within && traced_within) break;
    }
    if (!metrics_within || !traced_within) ok = false;
    PrintRow({"config", "per-request", "ratio", "gate"});
    PrintRow({"all off", Num(base_s * 1e6, 2) + " us", "1.000", ""});
    PrintRow({"metrics (default)", Num(metrics_s * 1e6, 2) + " us",
              Num(metrics_ratio, 3),
              metrics_within ? "PASS (<=1.05)" : "FAIL (<=1.05)"});
    PrintRow({"metrics+trace=1", Num(traced_s * 1e6, 2) + " us",
              Num(traced_ratio, 3),
              traced_within ? "PASS (<=1.25)" : "FAIL (<=1.25)"});
    json.RecordSeconds("warm_base_per_request", num_edges, 1, base_s,
                       base_s);
    json.RecordSeconds("warm_metrics_per_request", num_edges, 1, metrics_s,
                       metrics_s);
    json.RecordSeconds("warm_traced_per_request", num_edges, 1, traced_s,
                       traced_s);

    // Export the instrumented engine's own warm-path percentile so the
    // history diff tool can gate tail latency across PRs.
    const nb::obs::MetricsSnapshot metrics = metrics_engine.Metrics();
    const nb::obs::HistogramSnapshot* warm =
        metrics.FindHistogram("engine.latency.path.warm");
    if (warm == nullptr || warm->count == 0) {
      std::printf("engine.latency.path.warm missing or empty: FAIL\n");
      ok = false;
    } else {
      json.Record("warm_path_latency", num_edges, 1,
                  static_cast<double>(warm->p50()),
                  static_cast<double>(warm->min),
                  static_cast<double>(warm->p95()));
    }
  }

  // ---------------------------------------------------------------------
  // Gate 2: counter exactness — the registry readout must equal the
  // legacy Stats struct field-for-field after a replayed workload, and
  // the per-kind histograms must account for every request exactly once.
  // ---------------------------------------------------------------------
  {
    nb::BackboneEngine engine;
    const uint64_t fp = engine.AddGraph(BenchGraph());
    if (!Prime(engine, fp)) ok = false;
    const int n = quick ? 64 : 256;
    for (int r = 0; r < n; ++r) {
      if (!engine.Execute(MixedRequest(fp, r, n)).ok()) ok = false;
    }
    // A delta-patched revision and a batch, so those counters move too.
    const uint64_t rev = engine.AddGraphRevision(MakeRevision(graph, 4242),
                                                 fp);
    if (!engine.Execute(ShareRequest(rev, nb::Method::kNoiseCorrected))
             .ok()) {
      ok = false;
    }
    std::vector<nb::BackboneRequest> batch;
    for (int r = 0; r < 8; ++r) batch.push_back(MixedRequest(fp, r, 8));
    auto future = engine.Submit(std::move(batch));
    for (const auto& result : future.get()) {
      if (!result.ok()) ok = false;
    }

    const nb::BackboneEngine::Stats stats = engine.stats();
    const nb::obs::MetricsSnapshot metrics = engine.Metrics();
    const struct {
      const char* name;
      int64_t expected;
    } pairs[] = {
        {"engine.requests", stats.requests},
        {"engine.scores_computed", stats.scores_computed},
        {"engine.coalesced_waits", stats.coalesced_waits},
        {"engine.submitted_batches", stats.submitted_batches},
        {"engine.negative_hits", stats.negative_hits},
        {"engine.negative_entries", stats.negative_entries},
        {"engine.delta_rescores", stats.delta_rescores},
        {"engine.delta_fallbacks", stats.delta_fallbacks},
        {"engine.queue_depth", stats.queue_depth},
        {"engine.shed_batches", stats.shed_batches},
        {"engine.rejected_batches", stats.rejected_batches},
        {"engine.inflight_rejected", stats.inflight_rejected},
        {"engine.deadline_hits", stats.deadline_hits},
        {"engine.cancellations", stats.cancellations},
        {"engine.retries", stats.retries},
        {"engine.negative_exempt", stats.negative_exempt},
        {"engine.degraded_served", stats.degraded_served},
        {"engine.background_refreshes", stats.background_refreshes},
        {"engine.snapshot_writes", stats.snapshot_writes},
        {"engine.snapshot_failures", stats.snapshot_failures},
        {"cache.hits", stats.cache.hits},
        {"cache.misses", stats.cache.misses},
        {"cache.entries", stats.cache.entries},
        {"store.graphs", stats.graphs.graphs},
        {"store.resident_bytes", stats.graphs.resident_bytes},
    };
    int mismatches = 0;
    for (const auto& pair : pairs) {
      const int64_t got = metrics.ValueOf(pair.name, -1);
      if (got != pair.expected) {
        std::printf("  counter mismatch: %s = %lld, Stats says %lld\n",
                    pair.name, static_cast<long long>(got),
                    static_cast<long long>(pair.expected));
        ++mismatches;
      }
    }
    // Every executed request lands in exactly one per-kind histogram.
    int64_t kind_records = 0;
    for (int k = 0; k < nb::kNumRequestKinds; ++k) {
      const nb::obs::HistogramSnapshot* hist = metrics.FindHistogram(
          std::string("engine.latency.kind.") +
          nb::RequestKindName(static_cast<nb::RequestKind>(k)));
      if (hist != nullptr) kind_records += hist->count;
    }
    if (kind_records != stats.requests) {
      std::printf("  per-kind histogram records %lld != requests %lld\n",
                  static_cast<long long>(kind_records),
                  static_cast<long long>(stats.requests));
      ++mismatches;
    }
    if (mismatches > 0) ok = false;
    std::printf("counter exactness: %zu names + histogram accounting: %s\n",
                std::size(pairs), mismatches == 0 ? "PASS" : "FAIL");
  }

  // ---------------------------------------------------------------------
  // Gate 3: histogram determinism — one multiset, every shard/thread
  // combination, identical buckets and percentiles.
  // ---------------------------------------------------------------------
  {
    std::vector<int64_t> values;
    nb::Rng rng(0x0B5E55ED);
    const int samples = quick ? 20000 : 100000;
    for (int i = 0; i < samples; ++i) {
      values.push_back(static_cast<int64_t>(
          rng.NextBounded(uint64_t{1} << (5 + i % 30))));
    }
    nb::obs::LatencyHistogram reference(1);
    for (const int64_t v : values) reference.Record(v);
    const nb::obs::HistogramSnapshot expected = reference.Snapshot();
    bool deterministic = true;
    for (const int shards : {1, 4, 16}) {
      for (const int threads : {1, 2, 8}) {
        nb::obs::LatencyHistogram hist(shards);
        std::vector<std::thread> workers;
        for (int t = 0; t < threads; ++t) {
          workers.emplace_back([&, t] {
            for (size_t i = static_cast<size_t>(t); i < values.size();
                 i += static_cast<size_t>(threads)) {
              hist.Record(values[i]);
            }
          });
        }
        for (std::thread& w : workers) w.join();
        const nb::obs::HistogramSnapshot snap = hist.Snapshot();
        if (snap.buckets != expected.buckets || snap.count != expected.count ||
            snap.sum != expected.sum || snap.min != expected.min ||
            snap.max != expected.max || snap.p50() != expected.p50() ||
            snap.p95() != expected.p95() || snap.p99() != expected.p99()) {
          std::printf("  divergence at %d shards / %d threads\n", shards,
                      threads);
          deterministic = false;
        }
      }
    }
    if (!deterministic) ok = false;
    std::printf(
        "histogram determinism: %d values x 9 shard/thread combos "
        "(p50=%lld p95=%lld p99=%lld): %s\n",
        samples, static_cast<long long>(expected.p50()),
        static_cast<long long>(expected.p95()),
        static_cast<long long>(expected.p99()),
        deterministic ? "PASS" : "FAIL");
  }

  // ---------------------------------------------------------------------
  // Gate 4: span chains — rate-1 sampling, one scenario per answer path,
  // each trace tagged correctly with the right span set.
  // ---------------------------------------------------------------------
  {
    std::printf("span chains (rate-1 sampling):\n");
    using nb::obs::AnswerPath;
    using nb::obs::SpanKind;
    nb::BackboneEngineOptions options;
    options.trace_sample_rate = 1;
    {
      nb::BackboneEngine engine(options);
      const uint64_t fp = engine.AddGraph(BenchGraph());

      // Cold: fresh key scores from scratch.
      if (!engine.Execute(ShareRequest(fp, nb::Method::kNoiseCorrected))
               .ok()) {
        ok = false;
      }
      ok &= CheckTrace("cold", LastTrace(engine.tracer().Snapshot()),
                       AnswerPath::kCold, /*ok_flag=*/true,
                       {{SpanKind::kCacheLookup, true},
                        {SpanKind::kColdScore, true},
                        {SpanKind::kExtract, true},
                        {SpanKind::kDeltaPatch, false}});

      // Warm: the identical request answers from cache.
      if (!engine.Execute(ShareRequest(fp, nb::Method::kNoiseCorrected))
               .ok()) {
        ok = false;
      }
      ok &= CheckTrace("warm", LastTrace(engine.tracer().Snapshot()),
                       AnswerPath::kWarm, /*ok_flag=*/true,
                       {{SpanKind::kCacheLookup, true},
                        {SpanKind::kExtract, true},
                        {SpanKind::kColdScore, false},
                        {SpanKind::kDeltaPatch, false}});

      // Delta: a 1%-revision of the warm graph patches incrementally.
      const uint64_t rev =
          engine.AddGraphRevision(MakeRevision(graph, 4242), fp);
      if (!engine.Execute(ShareRequest(rev, nb::Method::kNoiseCorrected))
               .ok()) {
        ok = false;
      }
      ok &= CheckTrace("delta", LastTrace(engine.tracer().Snapshot()),
                       AnswerPath::kDelta, /*ok_flag=*/true,
                       {{SpanKind::kCacheLookup, true},
                        {SpanKind::kLineageWalk, true},
                        {SpanKind::kDeltaPatch, true},
                        {SpanKind::kColdScore, false},
                        {SpanKind::kExtract, true}});
    }

    // Failed + negative: every scoring attempt fails; the second request
    // on the key answers from the negative cache.
    {
      nb::BackboneEngineOptions failing = options;
      failing.max_retries = 0;
      nb::BackboneEngine engine(failing);
      const uint64_t fp = engine.AddGraph(BenchGraph());
      nb::FaultInjector injector(0xBAD5C0DE);
      injector.Configure(nb::FaultSite::kScoringFailure,
                         {.probability = 1.0});
      nb::ScopedFaultInjection scope(&injector);
      if (engine.Execute(ShareRequest(fp, nb::Method::kNoiseCorrected))
              .ok()) {
        ok = false;  // injected failure must surface
      }
      ok &= CheckTrace("failed", LastTrace(engine.tracer().Snapshot()),
                       AnswerPath::kFailed, /*ok_flag=*/false,
                       {{SpanKind::kCacheLookup, true},
                        {SpanKind::kColdScore, true},
                        {SpanKind::kExtract, false}});
      if (engine.Execute(ShareRequest(fp, nb::Method::kNoiseCorrected))
              .ok()) {
        ok = false;  // negative cache must answer with the failure
      }
      ok &= CheckTrace("negative", LastTrace(engine.tracer().Snapshot()),
                       AnswerPath::kNegative, /*ok_flag=*/false,
                       {{SpanKind::kCacheLookup, true},
                        {SpanKind::kColdScore, false}});
    }

    // Degraded: exact path pinned behind injected latency; the opted-in
    // request on a revision serves from the warm ancestor, flagged.
    {
      nb::BackboneEngineOptions degraded = options;
      degraded.enable_delta_rescore = false;  // force the stalled path
      nb::BackboneEngine engine(degraded);
      const uint64_t base = engine.AddGraph(BenchGraph());
      if (!engine.Execute(ShareRequest(base, nb::Method::kNoiseCorrected))
               .ok()) {
        ok = false;
      }
      const uint64_t rev =
          engine.AddGraphRevision(MakeRevision(graph, 4343), base);
      nb::FaultInjector injector(0xDE62ADED);
      injector.Configure(nb::FaultSite::kScoringLatency,
                         {.probability = 1.0,
                          .latency = std::chrono::milliseconds(200)});
      const nb::obs::RequestTrace* trace = nullptr;
      std::vector<nb::obs::RequestTrace> traces;
      {
        nb::ScopedFaultInjection scope(&injector);
        nb::BackboneRequest request =
            ShareRequest(rev, nb::Method::kNoiseCorrected);
        request.timeout = std::chrono::milliseconds(10);
        request.allow_degraded = true;
        const auto result = engine.Execute(request);
        if (!result.ok() || !result->degraded) ok = false;
        // The background exact refresh may commit its own trace later;
        // pick the degraded-tagged one rather than assuming order.
        traces = engine.tracer().Snapshot();
        for (const nb::obs::RequestTrace& t : traces) {
          if (t.path == AnswerPath::kDegraded) trace = &t;
        }
      }
      ok &= CheckTrace("degraded", trace, AnswerPath::kDegraded,
                       /*ok_flag=*/true, {{SpanKind::kCacheLookup, true}});
      if (trace != nullptr && !trace->degraded) ok = false;

      // Satellite contract: the chaos fire counts flow through the
      // registry while the injector is scoped (single source of truth).
      nb::ScopedFaultInjection scope(&injector);
      const nb::obs::MetricsSnapshot metrics = engine.Metrics();
      if (metrics.ValueOf("fault.scoring_latency.injected", -1) !=
          injector.injected(nb::FaultSite::kScoringLatency)) {
        std::printf("  fault.scoring_latency.injected diverges: FAIL\n");
        ok = false;
      }
    }
  }

  // ---------------------------------------------------------------------
  // Artifact: the merged engine + process metrics snapshot, written with
  // the BENCH_*.json schema next to the bench log.
  // ---------------------------------------------------------------------
  {
    nb::BackboneEngineOptions options;
    options.trace_sample_rate = 4;
    nb::BackboneEngine engine(options);
    const uint64_t fp = engine.AddGraph(BenchGraph());
    if (!Prime(engine, fp)) ok = false;
    for (int r = 0; r < (quick ? 64 : 256); ++r) {
      if (!engine.Execute(MixedRequest(fp, r, 256)).ok()) ok = false;
    }
    nb::obs::MetricsSnapshot merged = engine.Metrics();
    merged.Merge(nb::obs::MetricRegistry::Global().Snapshot());
    const char* toggle = std::getenv("NETBONE_BENCH_JSON");
    if (toggle == nullptr || std::string(toggle) != "0") {
      const char* dir = std::getenv("NETBONE_BENCH_JSON_DIR");
      const std::string path =
          (dir != nullptr && *dir != '\0')
              ? std::string(dir) + "/METRICS_observability.json"
              : "METRICS_observability.json";
      if (!merged.WriteJsonFile(path, "observability_metrics")) {
        std::printf("failed to write %s\n", path.c_str());
        ok = false;
      } else {
        std::printf("metrics snapshot (%zu counters, %zu gauges, %zu "
                    "histograms) -> %s\n",
                    merged.counters.size(), merged.gauges.size(),
                    merged.histograms.size(), path.c_str());
      }
    }
  }

  std::printf("\n%lld edges; observability gates: %s\n",
              static_cast<long long>(num_edges), ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
