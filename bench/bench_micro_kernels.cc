// google-benchmark microbenchmarks for the library's hot kernels: the NC
// scoring pipeline and its stages, the DF closed form, Sinkhorn sweeps,
// shortest-path trees, Kruskal, and top-k selection. These complement the
// wall-clock scalability study (bench_fig9_scalability) with per-kernel
// numbers suitable for regression tracking.

#include <benchmark/benchmark.h>

#include <map>
#include <mutex>

#include "core/disparity_filter.h"
#include "core/doubly_stochastic.h"
#include "core/filter.h"
#include "core/high_salience_skeleton.h"
#include "core/maximum_spanning_tree.h"
#include "core/noise_corrected.h"
#include "gen/erdos_renyi.h"
#include "graph/adjacency.h"
#include "graph/paths.h"
#include "stats/correlation.h"
#include "stats/distributions.h"
#include "stats/special_functions.h"

namespace nb = netbone;

namespace {

nb::Graph MakeGraph(int64_t nodes) {
  auto g = nb::GenerateErdosRenyi({.num_nodes = static_cast<nb::NodeId>(nodes),
                                   .average_degree = 6.0,
                                   .seed = 99});
  return *std::move(g);
}

/// The Fig. 9 scaling workload (average degree 3: 1.6M nodes = 2.4M
/// edges), cached so the thread-sweep variants reuse one instance instead
/// of regenerating a multi-million-edge graph per benchmark registration.
const nb::Graph& SparseGraph(int64_t nodes) {
  static std::mutex mu;
  static std::map<int64_t, nb::Graph> cache;
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache.find(nodes);
  if (it == cache.end()) {
    auto g = nb::GenerateErdosRenyi(
        {.num_nodes = static_cast<nb::NodeId>(nodes),
         .average_degree = 3.0,
         .seed = 77});
    it = cache.emplace(nodes, *std::move(g)).first;
  }
  return it->second;
}

void BM_NoiseCorrected(benchmark::State& state) {
  const nb::Graph g = MakeGraph(state.range(0));
  for (auto _ : state) {
    auto scored = nb::NoiseCorrected(g);
    benchmark::DoNotOptimize(scored);
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_NoiseCorrected)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_NoiseCorrectedEdgeKernel(benchmark::State& state) {
  double nij = 3.0;
  for (auto _ : state) {
    auto detail = nb::NoiseCorrectedEdge(nij, 120.0, 90.0, 100000.0);
    benchmark::DoNotOptimize(detail);
    nij = nij < 80.0 ? nij + 1.0 : 3.0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NoiseCorrectedEdgeKernel);

void BM_DisparityFilter(benchmark::State& state) {
  const nb::Graph g = MakeGraph(state.range(0));
  for (auto _ : state) {
    auto scored = nb::DisparityFilter(g);
    benchmark::DoNotOptimize(scored);
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_DisparityFilter)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_MaximumSpanningTree(benchmark::State& state) {
  const nb::Graph g = MakeGraph(state.range(0));
  for (auto _ : state) {
    auto scored = nb::MaximumSpanningTree(g);
    benchmark::DoNotOptimize(scored);
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_MaximumSpanningTree)->Arg(1000)->Arg(10000);

// Thread sweep of the parallel NC scoring sweep on the Fig. 9 headline
// graph (1.6M nodes / 2.4M edges, average degree 3). Arg pair: (nodes,
// threads); threads == 0 means hardware concurrency. Scores are
// bit-identical across the sweep — only wall-clock moves.
void BM_NoiseCorrectedThreads(benchmark::State& state) {
  const nb::Graph& g = SparseGraph(state.range(0));
  nb::NoiseCorrectedOptions options;
  options.num_threads = static_cast<int>(state.range(1));
  for (auto _ : state) {
    auto scored = nb::NoiseCorrected(g, options);
    benchmark::DoNotOptimize(scored);
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_NoiseCorrectedThreads)
    ->Args({1600000, 1})
    ->Args({1600000, 2})
    ->Args({1600000, 4})
    ->Args({1600000, 0})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_DisparityFilterThreads(benchmark::State& state) {
  const nb::Graph& g = SparseGraph(state.range(0));
  nb::DisparityFilterOptions options;
  options.num_threads = static_cast<int>(state.range(1));
  for (auto _ : state) {
    auto scored = nb::DisparityFilter(g, options);
    benchmark::DoNotOptimize(scored);
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_DisparityFilterThreads)
    ->Args({1600000, 1})
    ->Args({1600000, 0})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_HighSalienceSkeleton(benchmark::State& state) {
  const nb::Graph g = MakeGraph(state.range(0));
  for (auto _ : state) {
    auto scored = nb::HighSalienceSkeleton(g);
    benchmark::DoNotOptimize(scored);
  }
}
BENCHMARK(BM_HighSalienceSkeleton)->Arg(200)->Arg(500);

// Exact vs sampled HSS on the same graph. Arg pair: (nodes, sources);
// sources == 0 runs exact (|V| Dijkstras). The first sampled iteration
// also reports the Spearman agreement with the exact scores as a counter,
// so the approximation error is measured where the speedup is.
void BM_HighSalienceSkeletonSampled(benchmark::State& state) {
  const nb::Graph g = MakeGraph(state.range(0));
  nb::HighSalienceSkeletonOptions options;
  options.source_sample_size = state.range(1);
  for (auto _ : state) {
    auto scored = nb::HighSalienceSkeleton(g, options);
    benchmark::DoNotOptimize(scored);
  }
  // The reference run costs |V| Dijkstras, so only grade the small graph.
  if (options.source_sample_size > 0 && state.range(0) <= 2000) {
    const auto exact = nb::HighSalienceSkeleton(g);
    const auto sampled = nb::HighSalienceSkeleton(g, options);
    if (exact.ok() && sampled.ok()) {
      const auto spearman = nb::SpearmanCorrelation(exact->ScoreValues(),
                                                    sampled->ScoreValues());
      if (spearman.ok()) state.counters["spearman_vs_exact"] = *spearman;
    }
  }
}
BENCHMARK(BM_HighSalienceSkeletonSampled)
    ->Args({2000, 0})
    ->Args({2000, 256})
    ->Args({20000, 256});

// Single-source Dijkstra with a warm reusable workspace — the HSS inner
// loop. Contrast with BM_DijkstraAllocating, which pays the three O(|V|)
// allocations the workspace re-arms away.
void BM_DijkstraWorkspace(benchmark::State& state) {
  const nb::Graph g = MakeGraph(state.range(0));
  const nb::Adjacency adjacency(g);
  nb::DijkstraWorkspace workspace;
  nb::NodeId source = 0;
  for (auto _ : state) {
    nb::DijkstraInto(adjacency, source, {}, &workspace);
    benchmark::DoNotOptimize(workspace.touched().size());
    source = (source + 1) % g.num_nodes();
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_DijkstraWorkspace)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_DijkstraAllocating(benchmark::State& state) {
  const nb::Graph g = MakeGraph(state.range(0));
  const nb::Adjacency adjacency(g);
  nb::NodeId source = 0;
  for (auto _ : state) {
    const nb::ShortestPathTree tree = nb::Dijkstra(adjacency, source);
    benchmark::DoNotOptimize(tree.distance.data());
    source = (source + 1) % g.num_nodes();
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_DijkstraAllocating)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_DoublyStochastic(benchmark::State& state) {
  const nb::Graph g = MakeGraph(state.range(0));
  for (auto _ : state) {
    auto scored = nb::DoublyStochastic(g);
    benchmark::DoNotOptimize(scored);
  }
}
BENCHMARK(BM_DoublyStochastic)->Arg(200)->Arg(500);

void BM_TopK(benchmark::State& state) {
  const nb::Graph g = MakeGraph(state.range(0));
  const auto scored = nb::NoiseCorrected(g);
  for (auto _ : state) {
    auto mask = nb::TopK(*scored, g.num_edges() / 10);
    benchmark::DoNotOptimize(mask);
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_TopK)->Arg(10000)->Arg(100000);

void BM_BetaFit(benchmark::State& state) {
  double ni = 10.0;
  for (auto _ : state) {
    const nb::PriorMoments prior =
        nb::HypergeometricPriorMoments(ni, 35.0, 100000.0);
    auto params = nb::FitBetaByMoments(prior.mean, prior.variance);
    benchmark::DoNotOptimize(params);
    ni = ni < 5000.0 ? ni + 1.0 : 10.0;
  }
}
BENCHMARK(BM_BetaFit);

void BM_BinomialCdf(benchmark::State& state) {
  double k = 0.0;
  for (auto _ : state) {
    const double cdf = nb::BinomialCdf(k, 100000.0, 1e-4);
    benchmark::DoNotOptimize(cdf);
    k = k < 60.0 ? k + 1.0 : 0.0;
  }
}
BENCHMARK(BM_BinomialCdf);

}  // namespace

BENCHMARK_MAIN();
