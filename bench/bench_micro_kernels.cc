// google-benchmark microbenchmarks for the library's hot kernels: the NC
// scoring pipeline and its stages, the DF closed form, Sinkhorn sweeps,
// shortest-path trees, Kruskal, and top-k selection. These complement the
// wall-clock scalability study (bench_fig9_scalability) with per-kernel
// numbers suitable for regression tracking.

#include <benchmark/benchmark.h>

#include "core/disparity_filter.h"
#include "core/doubly_stochastic.h"
#include "core/filter.h"
#include "core/high_salience_skeleton.h"
#include "core/maximum_spanning_tree.h"
#include "core/noise_corrected.h"
#include "gen/erdos_renyi.h"
#include "stats/distributions.h"
#include "stats/special_functions.h"

namespace nb = netbone;

namespace {

nb::Graph MakeGraph(int64_t nodes) {
  auto g = nb::GenerateErdosRenyi({.num_nodes = static_cast<nb::NodeId>(nodes),
                                   .average_degree = 6.0,
                                   .seed = 99});
  return *std::move(g);
}

void BM_NoiseCorrected(benchmark::State& state) {
  const nb::Graph g = MakeGraph(state.range(0));
  for (auto _ : state) {
    auto scored = nb::NoiseCorrected(g);
    benchmark::DoNotOptimize(scored);
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_NoiseCorrected)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_NoiseCorrectedEdgeKernel(benchmark::State& state) {
  double nij = 3.0;
  for (auto _ : state) {
    auto detail = nb::NoiseCorrectedEdge(nij, 120.0, 90.0, 100000.0);
    benchmark::DoNotOptimize(detail);
    nij = nij < 80.0 ? nij + 1.0 : 3.0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NoiseCorrectedEdgeKernel);

void BM_DisparityFilter(benchmark::State& state) {
  const nb::Graph g = MakeGraph(state.range(0));
  for (auto _ : state) {
    auto scored = nb::DisparityFilter(g);
    benchmark::DoNotOptimize(scored);
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_DisparityFilter)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_MaximumSpanningTree(benchmark::State& state) {
  const nb::Graph g = MakeGraph(state.range(0));
  for (auto _ : state) {
    auto scored = nb::MaximumSpanningTree(g);
    benchmark::DoNotOptimize(scored);
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_MaximumSpanningTree)->Arg(1000)->Arg(10000);

void BM_HighSalienceSkeleton(benchmark::State& state) {
  const nb::Graph g = MakeGraph(state.range(0));
  for (auto _ : state) {
    auto scored = nb::HighSalienceSkeleton(g);
    benchmark::DoNotOptimize(scored);
  }
}
BENCHMARK(BM_HighSalienceSkeleton)->Arg(200)->Arg(500);

void BM_DoublyStochastic(benchmark::State& state) {
  const nb::Graph g = MakeGraph(state.range(0));
  for (auto _ : state) {
    auto scored = nb::DoublyStochastic(g);
    benchmark::DoNotOptimize(scored);
  }
}
BENCHMARK(BM_DoublyStochastic)->Arg(200)->Arg(500);

void BM_TopK(benchmark::State& state) {
  const nb::Graph g = MakeGraph(state.range(0));
  const auto scored = nb::NoiseCorrected(g);
  for (auto _ : state) {
    auto mask = nb::TopK(*scored, g.num_edges() / 10);
    benchmark::DoNotOptimize(mask);
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_TopK)->Arg(10000)->Arg(100000);

void BM_BetaFit(benchmark::State& state) {
  double ni = 10.0;
  for (auto _ : state) {
    const nb::PriorMoments prior =
        nb::HypergeometricPriorMoments(ni, 35.0, 100000.0);
    auto params = nb::FitBetaByMoments(prior.mean, prior.variance);
    benchmark::DoNotOptimize(params);
    ni = ni < 5000.0 ? ni + 1.0 : 10.0;
  }
}
BENCHMARK(BM_BetaFit);

void BM_BinomialCdf(benchmark::State& state) {
  double k = 0.0;
  for (auto _ : state) {
    const double cdf = nb::BinomialCdf(k, 100000.0, 1e-4);
    benchmark::DoNotOptimize(cdf);
    k = k < 60.0 ? k + 1.0 : 0.0;
  }
}
BENCHMARK(BM_BinomialCdf);

}  // namespace

BENCHMARK_MAIN();
