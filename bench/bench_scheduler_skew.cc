// Acceptance harness for the work-stealing HSS schedule
// (common/parallel.h ParallelForDynamic, core/high_salience_skeleton.cc).
//
// Workload: a deliberately skew-hostile graph — hundreds of 4-node cycle
// fragments on the low node ids (near-free Dijkstra sources) and one
// dense circulant hub clump on the high node ids (each of its sources
// settles thousands of arcs). Sorted sources + static contiguous
// chunking therefore concentrate essentially all of the Dijkstra cost in
// the final chunk: every other core goes idle behind it. The stealing
// schedule splits sources into grain-sized tasks that idle cores take
// over.
//
// Contract being demonstrated (and enforced — non-zero exit):
//   * bit-identity, always: the static-chunk schedule (replicated here
//     with ParallelFor + per-chunk workspaces, exactly the pre-PR-4 HSS
//     loop) and the library's stealing HSS produce identical scores, and
//     the stealing HSS is identical across thread counts 1 / 2 / hw;
//   * speedup, self-armed at runtime: with >= 2 hardware threads AND a
//     process-wide scheduler sized >= 2 (NETBONE_NUM_THREADS respected),
//     the stealing schedule must beat the static schedule on this
//     workload (min-of-reps, > 1.05x); otherwise the gate reports why it
//     skipped.
// Timings land in BENCH_scheduler_skew.json.

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "core/high_salience_skeleton.h"
#include "graph/adjacency.h"
#include "graph/builder.h"
#include "graph/graph.h"
#include "graph/paths.h"

namespace nb = netbone;
using netbone::bench::Banner;
using netbone::bench::Num;
using netbone::bench::PrintRow;

namespace {

/// Fragments first (cheap sources), then one dense clump (heavy
/// sources): node ids are contiguous per group, so static chunking over
/// the sorted source list lands the whole clump in the tail chunk.
nb::Graph MakeSkewedGraph(int num_fragments, nb::NodeId clump_nodes,
                          int clump_strides) {
  nb::GraphBuilder builder(nb::Directedness::kUndirected);
  constexpr nb::NodeId kFragmentSize = 4;
  for (int f = 0; f < num_fragments; ++f) {
    const nb::NodeId base = static_cast<nb::NodeId>(f) * kFragmentSize;
    for (nb::NodeId v = 0; v < kFragmentSize; ++v) {
      builder.AddEdge(base + v, base + (v + 1) % kFragmentSize,
                      1.0 + static_cast<double>(v));
    }
  }
  const nb::NodeId clump_base =
      static_cast<nb::NodeId>(num_fragments) * kFragmentSize;
  for (nb::NodeId v = 0; v < clump_nodes; ++v) {
    for (int s = 1; s <= clump_strides; ++s) {
      const nb::NodeId u = clump_base + v;
      const nb::NodeId w = clump_base + (v + s) % clump_nodes;
      // Varying weights keep the shortest-path trees non-trivial.
      builder.AddEdge(u, w, 1.0 + static_cast<double>((v + s) % 7));
    }
  }
  return *builder.Build();
}

/// The pre-PR-4 HSS schedule, replicated on public API: W static
/// contiguous source slabs (ParallelFor), one workspace per slab,
/// integer tree-membership counts folded per edge. Bit-identical to
/// HighSalienceSkeleton by the integer-count argument — which is exactly
/// what the identity gate checks. `workspaces` persists across calls and
/// stays warm (generation-stamped resets), mirroring the process-wide
/// pool the library path draws from, so the timed comparison measures
/// scheduling rather than workspace allocation.
std::vector<double> StaticScheduleHss(
    const nb::Graph& graph, int num_threads,
    std::vector<std::unique_ptr<nb::DijkstraWorkspace>>* workspaces) {
  const nb::Adjacency adjacency(graph);
  const int64_t num_sources = graph.num_nodes();
  const int64_t num_edges = graph.num_edges();
  const int chunks = nb::NumParallelChunks(num_sources, num_threads);
  while (workspaces->size() < static_cast<size_t>(chunks)) {
    workspaces->push_back(std::make_unique<nb::DijkstraWorkspace>());
  }
  for (int c = 0; c < chunks; ++c) {
    (*workspaces)[static_cast<size_t>(c)]->ResetEdgeCounts(num_edges);
  }
  nb::ParallelFor(num_sources, chunks,
                  [&](int64_t begin, int64_t end, int chunk) {
                    nb::DijkstraWorkspace& workspace =
                        *(*workspaces)[static_cast<size_t>(chunk)];
                    for (int64_t s = begin; s < end; ++s) {
                      nb::DijkstraInto(adjacency,
                                       static_cast<nb::NodeId>(s), {},
                                       &workspace);
                      for (const nb::NodeId v : workspace.touched()) {
                        const nb::EdgeId parent = workspace.parent_edge(v);
                        if (parent >= 0) workspace.BumpEdgeCount(parent);
                      }
                    }
                  });
  std::vector<double> scores(static_cast<size_t>(num_edges));
  const double denom = static_cast<double>(num_sources);
  for (int64_t e = 0; e < num_edges; ++e) {
    int64_t total = 0;
    // Fold only the chunks this call armed; later entries may hold stale
    // counts from a wider earlier call.
    for (int c = 0; c < chunks; ++c) {
      total += (*workspaces)[static_cast<size_t>(c)]->edge_count(e);
    }
    scores[static_cast<size_t>(e)] = static_cast<double>(total) / denom;
  }
  return scores;
}

std::vector<double> StealingHss(const nb::Graph& graph, int num_threads) {
  nb::HighSalienceSkeletonOptions options;
  options.num_threads = num_threads;
  const auto scored = nb::HighSalienceSkeleton(graph, options);
  if (!scored.ok()) return {};
  std::vector<double> scores;
  scores.reserve(static_cast<size_t>(scored->size()));
  for (nb::EdgeId e = 0; e < scored->size(); ++e) {
    scores.push_back(scored->at(e).score);
  }
  return scores;
}

}  // namespace

int main() {
  Banner("scheduler skew",
         "static chunking vs work-stealing on skewed HSS source costs");
  const bool quick = netbone::bench::QuickMode();
  netbone::bench::JsonBenchLog json("scheduler_skew");

  const int num_fragments = quick ? 300 : 500;
  const nb::NodeId clump_nodes = quick ? 128 : 256;
  const int clump_strides = quick ? 8 : 16;
  const nb::Graph graph =
      MakeSkewedGraph(num_fragments, clump_nodes, clump_strides);
  const int hw = nb::ResolveThreadCount(0);
  // Min-of-3 even in quick mode: the speedup gate compares mins, and
  // three samples per side keep a transient CI load spike from deciding
  // the ratio.
  const int reps = 3;

  std::printf("%lld nodes, %lld edges, hardware threads: %d\n",
              static_cast<long long>(graph.num_nodes()),
              static_cast<long long>(graph.num_edges()), hw);

  // One warm workspace set shared by every static-schedule call, playing
  // the role of the library's process-wide pool.
  std::vector<std::unique_ptr<nb::DijkstraWorkspace>> workspaces;

  // --- Identity gates (always enforced). -----------------------------
  bool identical = true;
  const std::vector<double> reference = StealingHss(graph, 1);
  if (reference.empty()) {
    std::printf("HSS failed to score the skew graph\n");
    return 1;
  }
  for (const int threads : {2, hw}) {
    if (StealingHss(graph, threads) != reference) {
      std::printf("FAIL: stealing HSS diverges at %d threads\n", threads);
      identical = false;
    }
  }
  for (const int threads : {1, 2, hw}) {
    if (StaticScheduleHss(graph, threads, &workspaces) != reference) {
      std::printf("FAIL: static schedule diverges at %d threads\n",
                  threads);
      identical = false;
    }
  }

  // --- Timings: static slabs vs stealing tasks at full width. --------
  // Both paths are warm by now (the identity gates above ran each once);
  // min-of-reps then measures scheduling, not allocation.
  std::vector<double> static_times;
  std::vector<double> stealing_times;
  for (int rep = 0; rep < reps; ++rep) {
    nb::Timer timer;
    StaticScheduleHss(graph, hw, &workspaces);
    static_times.push_back(timer.ElapsedSeconds());
    timer.Restart();
    StealingHss(graph, hw);
    stealing_times.push_back(timer.ElapsedSeconds());
  }
  std::sort(static_times.begin(), static_times.end());
  std::sort(stealing_times.begin(), stealing_times.end());
  const double static_min = static_times.front();
  const double static_med = static_times[static_times.size() / 2];
  const double stealing_min = stealing_times.front();
  const double stealing_med = stealing_times[stealing_times.size() / 2];
  const double speedup =
      stealing_min > 0.0 ? static_min / stealing_min : 0.0;

  PrintRow({"schedule", "median s", "min s"});
  PrintRow({"static chunks", Num(static_med, 5), Num(static_min, 5)});
  PrintRow({"work stealing", Num(stealing_med, 5), Num(stealing_min, 5)});
  std::printf("static/stealing speedup (min-of-%d): %s\n", reps,
              Num(speedup, 2).c_str());
  json.RecordSeconds("hss_skew_static", graph.num_edges(), hw, static_med,
                     static_min);
  json.RecordSeconds("hss_skew_stealing", graph.num_edges(), hw,
                     stealing_med, stealing_min);

  // --- Speedup gate: self-arms with real parallelism. ----------------
  // Two runtime conditions must hold, probed here rather than recorded
  // in a "re-run on multi-core hardware" note: the host must report >= 2
  // hardware threads, and the process-wide scheduler must actually be
  // sized >= 2 (NETBONE_NUM_THREADS=1 pins the pool to one runner, on
  // which stealing cannot beat anything). The identity gates above ran
  // regardless.
  const int pool_threads = nb::SchedulerThreadsFromEnv(
      std::getenv("NETBONE_NUM_THREADS"), nb::ResolveThreadCount(0));
  bool fast_enough = true;
  if (hw >= 2 && pool_threads >= 2) {
    fast_enough = speedup > 1.05;
    if (!fast_enough) {
      std::printf("FAIL: stealing does not beat static chunking "
                  "(%.2fx <= 1.05x) on %d threads\n",
                  speedup, hw);
    }
  } else {
    std::printf("speedup gate skipped: %d hardware threads, "
                "%d scheduler threads (needs >= 2 of both)\n",
                hw, pool_threads);
  }

  std::printf("identity checks: %s\n", identical ? "PASS" : "FAIL");
  return identical && fast_enough ? 0 : 1;
}
