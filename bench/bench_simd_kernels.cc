// Measures the vectorized scoring kernels (core/simd_kernels.h) against
// their scalar oracles on the Fig. 9 graph family (ER, average degree 3),
// and enforces the two contracts the SIMD layer ships under:
//
//   1. IDENTITY (always checked): the full NC / DF / NT sweeps produce
//      bit-identical score tables with vector kernels and with
//      NETBONE_SIMD forced to scalar, at 1, 2 and 4 threads. Any
//      mismatch fails the run.
//   2. SPEEDUP (checked on wide-lane hosts only): with >= 4 doubles per
//      lane group (AVX2), the NC and DF batch kernels must run at least
//      2x faster per edge than the scalar oracle loop. Hosts without
//      wide lanes (SSE2/NEON 2-wide, or -DNETBONE_SIMD=off builds) skip
//      the gate — 2-wide speedups are real but below 2x, and a scalar
//      build has nothing to compare.
//
// Timings are single-threaded calls straight into the batch entry points
// (no pool handoff), so per-edge ns isolates kernel throughput. Writes
// BENCH_simd_kernels.json: per-method total ("NC_scalar") and per-edge
// ("NC_scalar/edge") records for scalar and the host's best level.
// NETBONE_BENCH_QUICK=1 shrinks sizes and reps to smoke-test level.

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "core/disparity_filter.h"
#include "core/naive.h"
#include "core/noise_corrected.h"
#include "core/simd_kernels.h"
#include "gen/erdos_renyi.h"
#include "graph/edge_columns.h"

namespace nb = netbone;
using netbone::bench::Banner;
using netbone::bench::Num;
using netbone::bench::PrintRow;

namespace {

/// Median/min of `reps` timed calls of one batch kernel over the whole
/// edge table at a forced level, in ns per edge. The output buffer is
/// reused and its first element folded into a sink so the calls cannot
/// be optimized away.
template <typename Batch>
std::pair<double, double> TimeBatch(nb::SimdLevel level, int64_t num_edges,
                                    int reps, std::vector<nb::EdgeScore>* out,
                                    double* sink, const Batch& batch) {
  nb::ScopedSimdLevelOverride forced(level);
  std::vector<double> times;
  for (int rep = 0; rep < reps; ++rep) {
    nb::Timer timer;
    const int64_t bad = batch(0, num_edges, out->data());
    const double elapsed = timer.ElapsedSeconds();
    if (bad >= 0) return {netbone::bench::NaN(), netbone::bench::NaN()};
    *sink += (*out)[0].score;
    times.push_back(elapsed * 1e9 / static_cast<double>(num_edges));
  }
  std::sort(times.begin(), times.end());
  return {times[times.size() / 2], times.front()};
}

bool BitEqualScores(const std::vector<nb::EdgeScore>& a,
                    const std::vector<nb::EdgeScore>& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(),
                                   a.size() * sizeof(nb::EdgeScore)) == 0);
}

}  // namespace

int main() {
  Banner("simd_kernels",
         "batched kernel throughput vs scalar oracle + identity gate");
  const bool quick = netbone::bench::QuickMode();
  netbone::bench::JsonBenchLog json("simd_kernels");

  const nb::SimdLevel best = nb::SupportedSimdLevels().back();
  const std::string best_name = nb::SimdLevelName(best);
  std::printf("active level: %s, wide lanes: %s\n",
              nb::SimdLevelName(nb::ActiveSimdLevel()),
              nb::SimdHasWideLanes() ? "yes" : "no");

  std::vector<nb::NodeId> sizes = {200000, 800000};
  if (quick) sizes = {60000};
  const int reps = quick ? 5 : 7;

  double sink = 0.0;
  double nc_speedup = netbone::bench::NaN();
  double df_speedup = netbone::bench::NaN();

  PrintRow({"edges", "kernel", "scalar", "min", best_name, "min", "speedup"});
  for (const nb::NodeId n : sizes) {
    const auto graph = nb::GenerateErdosRenyi(
        {.num_nodes = n, .average_degree = 3.0, .seed = 77});
    if (!graph.ok()) continue;
    // Materialize outside the timed region: production sweeps amortize
    // this one O(|E|) gather across every rescore of the graph.
    const nb::EdgeColumns& cols = graph->edge_columns();
    const int64_t m = cols.size();
    std::vector<nb::EdgeScore> out(static_cast<size_t>(m));

    nb::NcKernelConfig nc_cfg;
    nc_cfg.n_total = graph->matrix_total();
    const auto nc_batch = [&](int64_t b, int64_t e, nb::EdgeScore* o) {
      return nb::NoiseCorrectedBatch(cols, nc_cfg, b, e, o);
    };
    const auto df_batch = [&](int64_t b, int64_t e, nb::EdgeScore* o) {
      return nb::DisparityFilterBatch(cols, nb::DisparityEndpointRule::kEither,
                                      b, e, o);
    };
    const auto nt_batch = [&](int64_t b, int64_t e, nb::EdgeScore* o) {
      return nb::NaiveThresholdBatch(cols, b, e, o);
    };

    const struct {
      const char* tag;
      std::pair<double, double> scalar;
      std::pair<double, double> simd;
    } rows[] = {
        {"NC", TimeBatch(nb::SimdLevel::kScalar, m, reps, &out, &sink,
                         nc_batch),
         TimeBatch(best, m, reps, &out, &sink, nc_batch)},
        {"DF", TimeBatch(nb::SimdLevel::kScalar, m, reps, &out, &sink,
                         df_batch),
         TimeBatch(best, m, reps, &out, &sink, df_batch)},
        {"NT", TimeBatch(nb::SimdLevel::kScalar, m, reps, &out, &sink,
                         nt_batch),
         TimeBatch(best, m, reps, &out, &sink, nt_batch)},
    };
    for (const auto& row : rows) {
      const double speedup = row.scalar.first / row.simd.first;
      PrintRow({std::to_string(m), row.tag, Num(row.scalar.first, 2),
                Num(row.scalar.second, 2), Num(row.simd.first, 2),
                Num(row.simd.second, 2), Num(speedup, 2)});
      const std::string tag(row.tag);
      // Per-edge ns records carry the cross-PR trajectory; totals let
      // compare_bench_json.py weigh large-graph noise sensibly.
      json.Record(tag + "_scalar/edge", m, 1, row.scalar.first,
                  row.scalar.second);
      json.Record(tag + "_" + best_name + "/edge", m, 1, row.simd.first,
                  row.simd.second);
      json.Record(tag + "_scalar", m, 1,
                  row.scalar.first * static_cast<double>(m),
                  row.scalar.second * static_cast<double>(m));
      json.Record(tag + "_" + best_name, m, 1,
                  row.simd.first * static_cast<double>(m),
                  row.simd.second * static_cast<double>(m));
      // The gate reads the largest graph (last size), where per-edge cost
      // is steadiest.
      if (tag == "NC") nc_speedup = speedup;
      if (tag == "DF") df_speedup = speedup;
    }
  }

  // Identity gate: full public sweeps, vector vs forced-scalar, at 1, 2
  // and 4 threads, on a fresh graph from the same family.
  const auto graph = nb::GenerateErdosRenyi(
      {.num_nodes = quick ? 20000 : 100000, .average_degree = 3.0,
       .seed = 91});
  if (!graph.ok()) {
    std::printf("FAILED: could not generate the identity-gate graph\n");
    return 1;
  }
  bool identical = true;
  for (const int threads : {1, 2, 4}) {
    nb::NoiseCorrectedOptions nc;
    nc.num_threads = threads;
    nb::DisparityFilterOptions df;
    df.num_threads = threads;
    nb::NaiveThresholdOptions nt;
    nt.num_threads = threads;
    const auto nc_vec = nb::NoiseCorrected(*graph, nc);
    const auto df_vec = nb::DisparityFilter(*graph, df);
    const auto nt_vec = nb::NaiveThreshold(*graph, nt);
    nb::ScopedSimdLevelOverride scalar(nb::SimdLevel::kScalar);
    const auto nc_ref = nb::NoiseCorrected(*graph, nc);
    const auto df_ref = nb::DisparityFilter(*graph, df);
    const auto nt_ref = nb::NaiveThreshold(*graph, nt);
    const bool ok =
        nc_vec.ok() && df_vec.ok() && nt_vec.ok() && nc_ref.ok() &&
        df_ref.ok() && nt_ref.ok() &&
        BitEqualScores(nc_vec->scores(), nc_ref->scores()) &&
        BitEqualScores(df_vec->scores(), df_ref->scores()) &&
        BitEqualScores(nt_vec->scores(), nt_ref->scores());
    std::printf("identity @ %d thread(s): %s\n", threads,
                ok ? "bit-identical" : "MISMATCH");
    identical = identical && ok;
  }
  if (!identical) {
    std::printf("FAILED: vector kernels are not bit-identical to scalar\n");
    return 1;
  }

  std::printf("(sink %.3f)\n", sink);

  // Speedup gate, wide-lane hosts and uninstrumented builds only.
  if (netbone::bench::SanitizerBuild()) {
    std::printf(
        "speedup gate skipped: sanitizer build (identity gate still "
        "enforced)\n");
    return 0;
  }
  if (!nb::SimdHasWideLanes()) {
    std::printf(
        "speedup gate skipped: no >=4-wide SIMD level active on this "
        "host/build (identity gate still enforced)\n");
    return 0;
  }
  std::printf("speedup gate (>= 2x required): NC %.2fx, DF %.2fx\n",
              nc_speedup, df_speedup);
  if (!(nc_speedup >= 2.0) || !(df_speedup >= 2.0)) {
    std::printf("FAILED: wide-lane host but NC/DF kernel speedup < 2x\n");
    return 1;
  }
  std::printf("PASSED\n");
  return 0;
}
