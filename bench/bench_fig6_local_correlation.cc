// Regenerates paper Fig. 6: edge weight vs the average weight of the
// edges incident to the edge's endpoints, summarized by the log-log
// Pearson correlation per network.
//
// Paper shape to reproduce: all six correlations are positive and highly
// significant, ranging from ~0.4 (weakest, Flight in the paper) to ~0.75
// (strongest, Country Space). This local correlation is one of the two
// structural facts (with broad weights) that break naive thresholding.

#include <vector>

#include "bench_common.h"
#include "gen/countries.h"
#include "stats/correlation.h"

namespace nb = netbone;
using netbone::bench::Banner;
using netbone::bench::NaN;
using netbone::bench::Num;
using netbone::bench::PrintRow;

int main() {
  Banner("Fig. 6", "edge weight vs average neighbor edge weight (log-log r)");
  const bool quick = netbone::bench::QuickMode();
  const auto suite = nb::GenerateCountrySuite(
      /*seed=*/42, /*num_years=*/1, /*num_countries=*/quick ? 60 : 190);
  if (!suite.ok()) return 1;

  PrintRow({"network", "log-log r"});
  for (const nb::CountryNetworkKind kind : nb::AllCountryNetworkKinds()) {
    const nb::Graph& g = suite->network(kind).front();
    // Average incident weight per node (both directions for directed
    // graphs, matching "edges connected to either of its nodes").
    std::vector<double> node_avg(static_cast<size_t>(g.num_nodes()), 0.0);
    for (nb::NodeId v = 0; v < g.num_nodes(); ++v) {
      const int64_t degree = g.out_degree(v) + g.in_degree(v);
      if (degree > 0) {
        node_avg[static_cast<size_t>(v)] =
            (g.out_strength(v) + g.in_strength(v)) /
            static_cast<double>(degree);
      }
    }
    std::vector<double> weights, neighbor_avgs;
    weights.reserve(static_cast<size_t>(g.num_edges()));
    neighbor_avgs.reserve(static_cast<size_t>(g.num_edges()));
    for (const nb::Edge& e : g.edges()) {
      weights.push_back(e.weight);
      neighbor_avgs.push_back((node_avg[static_cast<size_t>(e.src)] +
                               node_avg[static_cast<size_t>(e.dst)]) /
                              2.0);
    }
    const auto r = nb::LogLogPearsonCorrelation(weights, neighbor_avgs);
    PrintRow({nb::CountryNetworkName(kind),
              r.ok() ? Num(*r, 3) : Num(NaN())});
  }
  std::printf(
      "\nPaper reference: correlations between .42 and .75, all positive\n"
      "and significant (p < 1e-15) — weights are locally correlated.\n");
  return 0;
}
