// Regenerates paper Table II: the improvement in predictive power when a
// gravity-style OLS model (log(N_ij + 1) = beta X_ij + eps) is fitted on
// backbone edges instead of all edges. Quality = R²_backbone / R²_full.
//
// Protocol (Sec. V-E): every parametric method is matched to the same
// edge budget — the HSS backbone size at a low (0.5 salience) threshold,
// "because it is the most strict backbone methodology". MST and DS keep
// their natural sizes.
//
// Paper shape to reproduce: NC is the best method on every network and
// the only one whose quality exceeds 1 everywhere.

#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "core/registry.h"
#include "eval/edge_budget.h"
#include "eval/quality.h"
#include "gen/countries.h"

namespace nb = netbone;
using netbone::bench::Banner;
using netbone::bench::NaN;
using netbone::bench::Num;
using netbone::bench::PrintRow;

int main() {
  Banner("Table II", "quality = R2(backbone) / R2(full network)");
  const bool quick = netbone::bench::QuickMode();
  const auto suite = nb::GenerateCountrySuite(
      /*seed=*/42, /*num_years=*/1, /*num_countries=*/quick ? 60 : 190);
  if (!suite.ok()) return 1;

  std::vector<std::string> header = {"method"};
  for (const nb::CountryNetworkKind kind : nb::AllCountryNetworkKinds()) {
    header.push_back(nb::CountryNetworkName(kind) == "Country Space"
                         ? "CSpace"
                         : nb::CountryNetworkName(kind));
  }
  PrintRow(header);

  // Budget per network: the HSS backbone size at a low salience threshold
  // (paper protocol). When the positive-salience set is degenerate —
  // dense co-occurrence graphs can place most edges in some shortest-path
  // tree — fall back to a slightly stricter low threshold, floored at
  // three edges per node so the backbone regression stays meaningful.
  std::vector<int64_t> budgets;
  for (const nb::CountryNetworkKind kind : nb::AllCountryNetworkKinds()) {
    const nb::Graph& g = suite->network(kind).front();
    const auto budget = nb::HssEdgeBudget(g, /*salience=*/0.0);
    int64_t chosen = budget.ok() ? *budget
                                 : std::max<int64_t>(g.num_edges() / 20,
                                                     64);
    if (chosen > g.num_edges() / 5) {
      const auto stricter = nb::HssEdgeBudget(g, /*salience=*/0.02);
      chosen = std::max<int64_t>(stricter.ok() ? *stricter : chosen / 10,
                                 3 * g.num_nodes());
    }
    budgets.push_back(chosen);
  }

  netbone::bench::JsonBenchLog json("table2");
  for (const nb::Method method : nb::PaperMethods()) {
    std::vector<std::string> row = {nb::MethodTag(method)};
    nb::Timer method_timer;
    int64_t edges_evaluated = 0;
    size_t kind_index = 0;
    for (const nb::CountryNetworkKind kind : nb::AllCountryNetworkKinds()) {
      const nb::Graph& g = suite->network(kind).front();
      const int64_t budget = budgets[kind_index++];
      const auto predictors = nb::CountryPredictors(*suite, kind, g);
      if (!predictors.ok()) {
        row.push_back(Num(NaN()));
        continue;
      }
      // Parametric methods share the HSS-matched budget; MST and DS have
      // no tunable size and run at their natural size (paper protocol).
      const auto mask = nb::BudgetedBackbone(
          method, g, nb::IsParameterFree(method) ? 0 : budget);
      if (!mask.ok()) {
        row.push_back(Num(NaN()));  // e.g. DS without total support
        continue;
      }
      const auto quality = nb::QualityRatio(g, predictors->columns, *mask);
      row.push_back(quality.ok() ? Num(quality->ratio, 4) : Num(NaN()));
      edges_evaluated += g.num_edges();
    }
    const double elapsed = method_timer.ElapsedSeconds();
    PrintRow(row);
    json.RecordSeconds("table2:" + nb::MethodTag(method), edges_evaluated,
                       /*threads=*/1, elapsed, elapsed);
  }

  std::printf(
      "\nPaper reference (Table II): NC best on all six networks and the\n"
      "only method always above 1 (e.g. NC 2.24 on Country Space vs DF\n"
      "1.41; NC 1.47 on Flight vs best alternative 0.94).\n");
  return 0;
}
