// Regenerates paper Fig. 2: the distribution of the NC decision quantity
// L~_ij - delta * sdev_ij for delta in {1, 2, 3} on the Country Space and
// Business networks. Edges to the right of zero are accepted.
//
// Paper shape to reproduce: higher deltas shift the distribution left,
// moving mass across the acceptance boundary at zero.

#include <vector>

#include "bench_common.h"
#include "core/noise_corrected.h"
#include "gen/countries.h"
#include "stats/descriptive.h"
#include "stats/ecdf.h"

namespace nb = netbone;
using netbone::bench::Banner;
using netbone::bench::Num;
using netbone::bench::PrintRow;

namespace {

void Report(const nb::CountrySuite& suite, nb::CountryNetworkKind kind) {
  const nb::Graph& graph = suite.network(kind).front();
  const auto scored = nb::NoiseCorrected(graph);
  if (!scored.ok()) {
    std::printf("%s: %s\n", nb::CountryNetworkName(kind).c_str(),
                scored.status().ToString().c_str());
    return;
  }
  std::printf("\n-- %s network (%lld edges) --\n",
              nb::CountryNetworkName(kind).c_str(),
              static_cast<long long>(graph.num_edges()));
  PrintRow({"delta", "share>0", "mean", "p10", "p90"});
  for (const double delta : {1.0, 2.0, 3.0}) {
    const std::vector<double> shifted = scored->ShiftedScores(delta);
    int64_t accepted = 0;
    for (const double v : shifted) {
      if (v > 0.0) ++accepted;
    }
    PrintRow({Num(delta, 0),
              Num(static_cast<double>(accepted) /
                      static_cast<double>(shifted.size()),
                  4),
              Num(nb::Mean(shifted), 4), Num(nb::Quantile(shifted, 0.1), 4),
              Num(nb::Quantile(shifted, 0.9), 4)});
  }
  // Histogram of the delta = 1 distribution, mirroring the figure's axes.
  const std::vector<double> shifted = scored->ShiftedScores(1.0);
  const double lo = nb::Min(shifted);
  const double hi = nb::Max(shifted);
  const nb::Histogram hist = nb::MakeHistogram(shifted, lo, hi, 20);
  std::printf("histogram of score - 1*sdev (share of edges per bin):\n");
  for (size_t b = 0; b < hist.counts.size(); ++b) {
    std::printf("  %8.3f  %s%s\n", hist.BinCenter(b),
                std::string(static_cast<size_t>(hist.Share(b) * 200.0),
                            '#')
                    .c_str(),
                hist.BinCenter(b) <= 0.0 ? "" : "   (accept side)");
  }
}

}  // namespace

int main() {
  Banner("Fig. 2",
         "NC threshold setting: distribution of score - delta * sdev");
  const bool quick = netbone::bench::QuickMode();
  const auto suite =
      nb::GenerateCountrySuite(/*seed=*/42, /*num_years=*/1,
                               /*num_countries=*/quick ? 60 : 190);
  if (!suite.ok()) {
    std::printf("suite generation failed: %s\n",
                suite.status().ToString().c_str());
    return 1;
  }
  Report(*suite, nb::CountryNetworkKind::kCountrySpace);
  Report(*suite, nb::CountryNetworkKind::kBusiness);
  std::printf(
      "\nPaper reference: the acceptance share shrinks as delta grows; the\n"
      "black bar at zero separates rejected (left) from accepted "
      "(right).\n");
  return 0;
}
