// Regenerates paper Fig. 9: running time vs number of edges on
// Erdős–Rényi graphs with average degree 3 and uniform random weights.
//
// Paper shape to reproduce: NC scales near-linearly (the paper fits
// |E|^1.14 for its pandas implementation), indistinguishable in slope
// from NT and DF; MST pays an extra log factor for sorting; HSS and DS
// are orders of magnitude slower and cannot run beyond small sizes.
// Absolute times are hardware-dependent and (being compiled C++) far
// below the paper's pandas numbers; the fitted exponent is the
// comparable statistic.

#include <algorithm>
#include <cmath>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "core/registry.h"
#include "gen/erdos_renyi.h"
#include "stats/ols.h"

namespace nb = netbone;
using netbone::bench::Banner;
using netbone::bench::NaN;
using netbone::bench::Num;
using netbone::bench::PrintRow;

namespace {

/// Median-of-three timing of one method on one graph; NaN on failure.
double TimeMethod(nb::Method method, const nb::Graph& graph) {
  std::vector<double> times;
  for (int rep = 0; rep < 3; ++rep) {
    nb::Timer timer;
    nb::RunMethodOptions options;
    const auto scored = nb::RunMethod(method, graph, options);
    if (!scored.ok()) return netbone::bench::NaN();
    times.push_back(timer.ElapsedSeconds());
  }
  std::sort(times.begin(), times.end());
  return times[1];
}

}  // namespace

int main() {
  Banner("Fig. 9", "running time vs |E| (ER graphs, average degree 3)");
  const bool quick = netbone::bench::QuickMode();

  // Node counts; |E| = 1.5 |V|. The paper sweeps 25k..6.5M nodes.
  std::vector<nb::NodeId> sizes = {25000, 50000, 100000, 200000,
                                   400000, 800000, 1600000};
  if (quick) sizes = {25000, 50000, 100000};
  // HSS and DS get the paper treatment: capped at small sizes ("we could
  // not run them on networks larger than a few thousand edges").
  const int64_t slow_method_edge_cap = 6000;

  const std::vector<nb::Method> fast_methods = {
      nb::Method::kNoiseCorrected, nb::Method::kDisparityFilter,
      nb::Method::kNaiveThreshold, nb::Method::kMaximumSpanningTree};

  std::vector<std::string> header = {"edges"};
  for (const nb::Method m : fast_methods) header.push_back(nb::MethodTag(m));
  PrintRow(header);

  std::vector<double> log_edges, log_nc_seconds;
  for (const nb::NodeId n : sizes) {
    const auto graph = nb::GenerateErdosRenyi(
        {.num_nodes = n, .average_degree = 3.0, .seed = 77});
    if (!graph.ok()) continue;
    std::vector<std::string> row = {std::to_string(graph->num_edges())};
    for (const nb::Method m : fast_methods) {
      const double seconds = TimeMethod(m, *graph);
      row.push_back(Num(seconds, 4));
      if (m == nb::Method::kNoiseCorrected && seconds == seconds) {
        log_edges.push_back(std::log10(
            static_cast<double>(graph->num_edges())));
        log_nc_seconds.push_back(std::log10(seconds));
      }
    }
    PrintRow(row);
  }

  // Slow methods at small sizes only.
  std::printf("\nslow methods (size-capped, as in the paper):\n");
  PrintRow({"edges", "HSS", "DS"});
  for (const nb::NodeId n : {500, 1000, 2000, 4000}) {
    const auto graph = nb::GenerateErdosRenyi(
        {.num_nodes = n, .average_degree = 3.0, .seed = 78});
    if (!graph.ok() || graph->num_edges() > slow_method_edge_cap) continue;
    PrintRow({std::to_string(graph->num_edges()),
              Num(TimeMethod(nb::Method::kHighSalienceSkeleton, *graph), 4),
              Num(TimeMethod(nb::Method::kDoublyStochastic, *graph), 4)});
  }

  // Fitted scaling exponent of NC: log t = a + b log |E|.
  if (log_edges.size() >= 3) {
    nb::OlsFitter fitter;
    fitter.AddColumn("log_edges", log_edges);
    const auto fit = fitter.Fit(log_nc_seconds);
    if (fit.ok()) {
      std::printf("\nNC fitted time complexity: ~O(|E|^%.2f)\n",
                  fit->coefficients[1]);
    }
  }
  std::printf(
      "Paper reference: NC ~O(|E|^1.14), indistinguishable in slope from\n"
      "NT and DF; 20M edges in 82 s in pandas on a 2.3 GHz Xeon.\n");
  return 0;
}
