// Regenerates paper Fig. 9: running time vs number of edges on
// Erdős–Rényi graphs with average degree 3 and uniform random weights.
//
// Paper shape to reproduce: NC scales near-linearly (the paper fits
// |E|^1.14 for its pandas implementation), indistinguishable in slope
// from NT and DF; MST pays an extra log factor for sorting; HSS and DS
// are orders of magnitude slower and cannot run beyond small sizes.
// Absolute times are hardware-dependent and (being compiled C++) far
// below the paper's pandas numbers; the fitted exponent is the
// comparable statistic.
//
// Beyond the paper, two netbone-specific sweeps: the per-edge scorers
// threaded over 1/2/max workers (bit-identical scores, wall-clock only
// changes), and the sampled-HSS mode (k seeded sources) opening HSS on
// sizes where the exact |V|-source run is priced out.

#include <algorithm>
#include <cmath>
#include <vector>

#include "bench_common.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "core/registry.h"
#include "gen/erdos_renyi.h"
#include "stats/ols.h"

namespace nb = netbone;
using netbone::bench::Banner;
using netbone::bench::NaN;
using netbone::bench::Num;
using netbone::bench::PrintRow;

namespace {

struct Timing {
  double median = netbone::bench::NaN();
  double min = netbone::bench::NaN();
};

/// Times three runs of one method on one graph. The options are built by
/// the caller, outside the timed region, so thread-sweep numbers measure
/// scoring work only; min-of-3 is reported alongside the median because
/// the min is the better point estimate on a noisy machine.
Timing TimeMethod(nb::Method method, const nb::Graph& graph,
                  const nb::RunMethodOptions& options) {
  std::vector<double> times;
  for (int rep = 0; rep < 3; ++rep) {
    nb::Timer timer;
    const auto scored = nb::RunMethod(method, graph, options);
    const double elapsed = timer.ElapsedSeconds();
    if (!scored.ok()) return Timing{};
    times.push_back(elapsed);
  }
  std::sort(times.begin(), times.end());
  return Timing{times[1], times[0]};
}

}  // namespace

int main() {
  Banner("Fig. 9", "running time vs |E| (ER graphs, average degree 3)");
  const bool quick = netbone::bench::QuickMode();
  netbone::bench::JsonBenchLog json("fig9");
  const int max_threads = nb::ResolveThreadCount(0);

  // Node counts; |E| = 1.5 |V|. The paper sweeps 25k..6.5M nodes.
  std::vector<nb::NodeId> sizes = {25000, 50000, 100000, 200000,
                                   400000, 800000, 1600000};
  if (quick) sizes = {25000, 50000, 100000};
  // HSS and DS get the paper treatment: capped at small sizes ("we could
  // not run them on networks larger than a few thousand edges").
  const int64_t slow_method_edge_cap = 6000;

  const std::vector<nb::Method> fast_methods = {
      nb::Method::kNoiseCorrected, nb::Method::kDisparityFilter,
      nb::Method::kNaiveThreshold, nb::Method::kMaximumSpanningTree};

  nb::RunMethodOptions serial;
  serial.num_threads = 1;

  std::vector<std::string> header = {"edges"};
  for (const nb::Method m : fast_methods) {
    header.push_back(nb::MethodTag(m) + " med");
    header.push_back("min");
  }
  PrintRow(header);

  std::vector<double> log_edges, log_nc_seconds;
  for (const nb::NodeId n : sizes) {
    const auto graph = nb::GenerateErdosRenyi(
        {.num_nodes = n, .average_degree = 3.0, .seed = 77});
    if (!graph.ok()) continue;
    std::vector<std::string> row = {std::to_string(graph->num_edges())};
    for (const nb::Method m : fast_methods) {
      const Timing t = TimeMethod(m, *graph, serial);
      row.push_back(Num(t.median, 4));
      row.push_back(Num(t.min, 4));
      json.RecordSeconds(nb::MethodTag(m), graph->num_edges(), 1, t.median,
                         t.min);
      // Normalized per-edge cost alongside the total: the statistic the
      // vectorized-kernel work (core/simd_kernels.h) moves, comparable
      // across graph sizes where totals are not.
      const double edges = static_cast<double>(graph->num_edges());
      json.Record(nb::MethodTag(m) + "/edge", graph->num_edges(), 1,
                  t.median * 1e9 / edges, t.min * 1e9 / edges);
      if (m == nb::Method::kNoiseCorrected && t.median == t.median) {
        log_edges.push_back(std::log10(
            static_cast<double>(graph->num_edges())));
        log_nc_seconds.push_back(std::log10(t.median));
      }
    }
    PrintRow(row);
  }

  // Thread sweep: the same NC / DF scoring work over 1, 2 and max pool
  // workers. Scores are bit-identical across the sweep; only wall-clock
  // may move.
  std::printf("\nthread sweep (median/min of 3, %d hardware threads):\n",
              max_threads);
  PrintRow({"edges", "NC t=1", "min", "NC t=2", "min",
            "NC t=max", "min", "DF t=max", "min"});
  for (const nb::NodeId n : sizes) {
    const auto graph = nb::GenerateErdosRenyi(
        {.num_nodes = n, .average_degree = 3.0, .seed = 77});
    if (!graph.ok()) continue;
    std::vector<std::string> row = {std::to_string(graph->num_edges())};
    for (const int threads : {1, 2, max_threads}) {
      nb::RunMethodOptions options;
      options.num_threads = threads;
      const Timing t = TimeMethod(nb::Method::kNoiseCorrected, *graph,
                                  options);
      row.push_back(Num(t.median, 4));
      row.push_back(Num(t.min, 4));
      json.RecordSeconds("NC", graph->num_edges(), threads, t.median,
                         t.min);
    }
    nb::RunMethodOptions options;
    options.num_threads = max_threads;
    const Timing t = TimeMethod(nb::Method::kDisparityFilter, *graph,
                                options);
    row.push_back(Num(t.median, 4));
    row.push_back(Num(t.min, 4));
    json.RecordSeconds("DF", graph->num_edges(), max_threads, t.median,
                       t.min);
    PrintRow(row);
  }

  // Slow methods at small sizes only.
  std::printf("\nslow methods (size-capped, as in the paper):\n");
  PrintRow({"edges", "HSS", "DS"});
  std::vector<nb::NodeId> slow_sizes = {500, 1000, 2000, 4000};
  if (quick) slow_sizes = {500, 1000};
  for (const nb::NodeId n : slow_sizes) {
    const auto graph = nb::GenerateErdosRenyi(
        {.num_nodes = n, .average_degree = 3.0, .seed = 78});
    if (!graph.ok() || graph->num_edges() > slow_method_edge_cap) continue;
    const Timing hss =
        TimeMethod(nb::Method::kHighSalienceSkeleton, *graph, {});
    const Timing ds = TimeMethod(nb::Method::kDoublyStochastic, *graph, {});
    json.RecordSeconds("HSS", graph->num_edges(), max_threads, hss.median,
                       hss.min);
    json.RecordSeconds("DS", graph->num_edges(), max_threads, ds.median,
                       ds.min);
    PrintRow({std::to_string(graph->num_edges()), Num(hss.median, 4),
              Num(ds.median, 4)});
  }

  // Sampled HSS (k seeded sources) on sizes the exact run is priced out
  // of: the old |V|*|E| budget admitted only a few thousand edges; the
  // k*|E| sampled cost keeps growing linearly in |E|.
  std::printf("\nsampled HSS (k = 256 sources) beyond the exact-run cap:\n");
  PrintRow({"edges", "HSS k=256", "min"});
  std::vector<nb::NodeId> sampled_sizes = {10000, 40000, 160000};
  if (quick) sampled_sizes = {10000};
  for (const nb::NodeId n : sampled_sizes) {
    const auto graph = nb::GenerateErdosRenyi(
        {.num_nodes = n, .average_degree = 3.0, .seed = 79});
    if (!graph.ok()) continue;
    nb::RunMethodOptions options;
    options.hss_source_sample_size = 256;
    const Timing t = TimeMethod(nb::Method::kHighSalienceSkeleton, *graph,
                                options);
    json.RecordSeconds("HSS_k256", graph->num_edges(), max_threads,
                       t.median, t.min);
    PrintRow({std::to_string(graph->num_edges()), Num(t.median, 4),
              Num(t.min, 4)});
  }

  // Fitted scaling exponent of NC: log t = a + b log |E|.
  if (log_edges.size() >= 3) {
    nb::OlsFitter fitter;
    fitter.AddColumn("log_edges", log_edges);
    const auto fit = fitter.Fit(log_nc_seconds);
    if (fit.ok()) {
      std::printf("\nNC fitted time complexity: ~O(|E|^%.2f)\n",
                  fit->coefficients[1]);
    }
  }
  std::printf(
      "Paper reference: NC ~O(|E|^1.14), indistinguishable in slope from\n"
      "NT and DF; 20M edges in 82 s in pandas on a 2.3 GHz Xeon.\n");
  return 0;
}
