// Copyright 2026 The netbone Authors.
//
// Shared helpers for the experiment harnesses: aligned table printing and
// the quick-mode switch (NETBONE_BENCH_QUICK=1 shrinks workloads for CI).

#ifndef NETBONE_BENCH_BENCH_COMMON_H_
#define NETBONE_BENCH_BENCH_COMMON_H_

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace netbone::bench {

/// True when the NETBONE_BENCH_QUICK environment variable is set to a
/// non-zero value; harnesses then shrink sizes/seeds to smoke-test level.
inline bool QuickMode() {
  const char* env = std::getenv("NETBONE_BENCH_QUICK");
  return env != nullptr && std::string(env) != "0" &&
         std::string(env) != "";
}

/// Prints a banner naming the experiment and the paper artifact it
/// regenerates.
inline void Banner(const std::string& experiment,
                   const std::string& description) {
  std::printf("\n================================================================================\n");
  std::printf("%s — %s\n", experiment.c_str(), description.c_str());
  std::printf("================================================================================\n");
}

/// Fixed-width row printer: first column 22 chars, the rest 12.
inline void PrintRow(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    std::printf(i == 0 ? "%-22s" : "%12s", cells[i].c_str());
  }
  std::printf("\n");
}

/// Formats a double with the given precision ("n/a" for NaN sentinels).
inline std::string Num(double value, int precision = 4) {
  if (value != value) return "n/a";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

/// NaN sentinel used to mark "n/a" cells.
inline double NaN() { return std::nan(""); }

}  // namespace netbone::bench

#endif  // NETBONE_BENCH_BENCH_COMMON_H_
