// Copyright 2026 The netbone Authors.
//
// Shared helpers for the experiment harnesses: aligned table printing,
// the quick-mode switch (NETBONE_BENCH_QUICK=1 shrinks workloads for CI),
// and the machine-readable JSON timing log (JsonBenchLog) that tracks the
// perf trajectory across PRs instead of losing it in stdout.

#ifndef NETBONE_BENCH_BENCH_COMMON_H_
#define NETBONE_BENCH_BENCH_COMMON_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

namespace netbone::bench {

/// True when the NETBONE_BENCH_QUICK environment variable is set to a
/// non-zero value; harnesses then shrink sizes/seeds to smoke-test level.
inline bool QuickMode() {
  const char* env = std::getenv("NETBONE_BENCH_QUICK");
  return env != nullptr && std::string(env) != "0" &&
         std::string(env) != "";
}

/// True when the binary is instrumented by ASan or TSan. Sanitizer
/// builds run the smoke suite for its *correctness* gates (identity,
/// zero-sort, error taxonomy); pure timing-ratio gates are skipped there
/// — instrumentation overhead is wildly non-uniform across code shapes
/// (per-access checks dwarf vector kernels but swamp scheduler and
/// cache-bookkeeping paths), so a ratio measured under a sanitizer says
/// nothing about the production binary.
inline constexpr bool SanitizerBuild() {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  return true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  return true;
#else
  return false;
#endif
#else
  return false;
#endif
}

/// Prints a banner naming the experiment and the paper artifact it
/// regenerates.
inline void Banner(const std::string& experiment,
                   const std::string& description) {
  std::printf("\n================================================================================\n");
  std::printf("%s — %s\n", experiment.c_str(), description.c_str());
  std::printf("================================================================================\n");
}

/// Fixed-width row printer: first column 22 chars, the rest 12.
inline void PrintRow(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    std::printf(i == 0 ? "%-22s" : "%12s", cells[i].c_str());
  }
  std::printf("\n");
}

/// Formats a double with the given precision ("n/a" for NaN sentinels).
inline std::string Num(double value, int precision = 4) {
  if (value != value) return "n/a";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

/// NaN sentinel used to mark "n/a" cells.
inline double NaN() { return std::nan(""); }

/// Machine-readable timing log. Each harness constructs one with its
/// artifact name ("fig9", "sweep_engine", ...) and Record()s one entry per
/// (method, problem size, threads) timing; destruction writes
/// `BENCH_<name>.json` so CI can diff perf across PRs without scraping
/// stdout. The file lands in the directory named by the
/// NETBONE_BENCH_JSON_DIR environment variable (default: the working
/// directory); NETBONE_BENCH_JSON=0 disables writing entirely.
class JsonBenchLog {
 public:
  explicit JsonBenchLog(std::string name) : name_(std::move(name)) {}

  JsonBenchLog(const JsonBenchLog&) = delete;
  JsonBenchLog& operator=(const JsonBenchLog&) = delete;

  ~JsonBenchLog() { Flush(); }

  /// Appends one timing record. `n` is the problem size (edges, nodes —
  /// whatever the harness sweeps); NaN timings are recorded as null.
  /// `p95_ns` is optional: when given (non-NaN), the record carries a
  /// "p95_ns" field and bench/compare_bench_json.py gates tail-latency
  /// regressions on it alongside the median.
  void Record(const std::string& method, int64_t n, int threads,
              double median_ns, double min_ns, double p95_ns = NaN()) {
    records_.push_back(Entry{method, n, threads, median_ns, min_ns,
                             p95_ns});
  }

  /// Seconds-flavored convenience for harnesses that time with Timer.
  void RecordSeconds(const std::string& method, int64_t n, int threads,
                     double median_s, double min_s) {
    Record(method, n, threads, median_s * 1e9, min_s * 1e9);
  }

  /// Writes the file now (idempotent; a second call rewrites it).
  void Flush() {
    const char* toggle = std::getenv("NETBONE_BENCH_JSON");
    if (toggle != nullptr && std::string(toggle) == "0") return;
    if (records_.empty()) return;
    const char* dir = std::getenv("NETBONE_BENCH_JSON_DIR");
    const std::string path = (dir != nullptr && *dir != '\0')
                                 ? std::string(dir) + "/BENCH_" + name_ +
                                       ".json"
                                 : "BENCH_" + name_ + ".json";
    std::FILE* out = std::fopen(path.c_str(), "w");
    if (out == nullptr) return;
    std::fprintf(out, "{\n  \"bench\": \"%s\",\n  \"records\": [\n",
                 name_.c_str());
    for (size_t i = 0; i < records_.size(); ++i) {
      const Entry& e = records_[i];
      // p95_ns is emitted only when recorded, so older tooling that
      // expects exactly the median/min schema keeps parsing untouched
      // files byte-identically.
      std::string p95;
      if (e.p95_ns == e.p95_ns) {
        p95 = ", \"p95_ns\": " + JsonNumber(e.p95_ns);
      }
      std::fprintf(out,
                   "    {\"method\": \"%s\", \"n\": %lld, \"threads\": %d, "
                   "\"median_ns\": %s, \"min_ns\": %s%s}%s\n",
                   JsonEscape(e.method).c_str(),
                   static_cast<long long>(e.n), e.threads,
                   JsonNumber(e.median_ns).c_str(),
                   JsonNumber(e.min_ns).c_str(), p95.c_str(),
                   i + 1 < records_.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
  }

 private:
  struct Entry {
    std::string method;
    int64_t n;
    int threads;
    double median_ns;
    double min_ns;
    double p95_ns;  ///< NaN = not recorded (field omitted from JSON)
  };

  static std::string JsonNumber(double value) {
    if (value != value) return "null";  // NaN sentinel -> JSON null
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.1f", value);
    return buffer;
  }

  static std::string JsonEscape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (static_cast<unsigned char>(c) >= 0x20) out.push_back(c);
    }
    return out;
  }

  std::string name_;
  std::vector<Entry> records_;
};

}  // namespace netbone::bench

#endif  // NETBONE_BENCH_BENCH_COMMON_H_
