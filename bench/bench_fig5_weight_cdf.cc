// Regenerates paper Fig. 5: the cumulative (survival) edge-weight
// distributions of the six country networks on log-log axes.
//
// Paper shape to reproduce: all networks have broad weight distributions
// (none a clean power law); Trade spans the most decades; Country Space
// is the narrowest; Ownership pairs a tiny median with a huge top
// percentile.

#include <cmath>
#include <vector>

#include "bench_common.h"
#include "gen/countries.h"
#include "stats/descriptive.h"
#include "stats/ecdf.h"

namespace nb = netbone;
using netbone::bench::Banner;
using netbone::bench::Num;
using netbone::bench::PrintRow;

int main() {
  Banner("Fig. 5", "cumulative edge weight distributions (survival, log-log)");
  const bool quick = netbone::bench::QuickMode();
  const auto suite = nb::GenerateCountrySuite(
      /*seed=*/42, /*num_years=*/1, /*num_countries=*/quick ? 60 : 190);
  if (!suite.ok()) return 1;

  PrintRow({"network", "edges", "median", "p99", "decades"});
  for (const nb::CountryNetworkKind kind : nb::AllCountryNetworkKinds()) {
    const nb::Graph& g = suite->network(kind).front();
    std::vector<double> weights;
    weights.reserve(static_cast<size_t>(g.num_edges()));
    for (const nb::Edge& e : g.edges()) weights.push_back(e.weight);
    const double lo = nb::Quantile(weights, 0.001);
    const double hi = nb::Max(weights);
    const double decades =
        lo > 0.0 ? std::log10(hi) - std::log10(lo) : std::log10(hi);
    PrintRow({nb::CountryNetworkName(kind),
              std::to_string(g.num_edges()), Num(nb::Median(weights), 2),
              Num(nb::Quantile(weights, 0.99), 1), Num(decades, 1)});
  }

  std::printf("\nSurvival series CDF(w) = share of edges with weight >= w:\n");
  for (const nb::CountryNetworkKind kind : nb::AllCountryNetworkKinds()) {
    const nb::Graph& g = suite->network(kind).front();
    std::vector<double> weights;
    for (const nb::Edge& e : g.edges()) weights.push_back(e.weight);
    const nb::Ecdf ecdf(weights);
    std::printf("%-14s", nb::CountryNetworkName(kind).c_str());
    for (const auto& [x, survival] : ecdf.LogSurvivalSeries(9)) {
      std::printf("  (%.3g, %.3g)", x, survival);
    }
    std::printf("\n");
  }
  std::printf(
      "\nPaper reference: broad distributions across several decades, the\n"
      "Trade network widest, Country Space narrowest.\n");
  return 0;
}
