// Ablation bench (not in the paper; DESIGN.md §5): quantifies the design
// choices inside the Noise-Corrected method.
//
//  (i)   full NC (transformed lift + posterior sdev) vs the footnote-2
//        Binomial p-value variant;
//  (ii)  Bayesian posterior vs the naive plug-in P^_ij = N_ij / N_..
//        (whose variance degenerates at zero-weight edges);
//  (iii) paper Eq. 8 beta-prior vs the reference implementation's
//        (1 - mu^2) erratum;
//  (iv)  the bilateral null model vs the Disparity Filter's single-node
//        null (the NC-vs-DF crux, measured on the recovery task).

#include <cmath>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "core/disparity_filter.h"
#include "core/filter.h"
#include "core/noise_corrected.h"
#include "eval/recovery.h"
#include "gen/barabasi_albert.h"
#include "gen/noise_model.h"

namespace nb = netbone;
using netbone::bench::Banner;
using netbone::bench::NaN;
using netbone::bench::Num;
using netbone::bench::PrintRow;

namespace {

double Recovery(const nb::ScoredEdges& scored,
                const nb::NoisyNetwork& noisy) {
  const nb::BackboneMask mask = nb::TopK(scored, noisy.num_true_edges);
  const auto jaccard = nb::JaccardRecovery(mask.keep, noisy.ground_truth);
  return jaccard.ok() ? *jaccard : netbone::bench::NaN();
}

}  // namespace

int main() {
  Banner("Ablation", "NC design choices on the Sec. V-A recovery task");
  const bool quick = netbone::bench::QuickMode();
  const int num_seeds = quick ? 2 : 5;

  netbone::bench::JsonBenchLog json("ablation_nc");
  PrintRow({"eta", "NC full", "NC pvalue", "NC plugin", "NC erratum",
            "DF"});
  for (const double eta : {0.05, 0.15, 0.25}) {
    double full = 0.0, pvalue = 0.0, plugin = 0.0, erratum = 0.0,
           df_total = 0.0;
    int n = 0;
    nb::Timer eta_timer;
    for (int seed = 0; seed < num_seeds; ++seed) {
      const auto truth = nb::GenerateBarabasiAlbert(
          {.num_nodes = 150,
           .average_degree = 3.0,
           .seed = static_cast<uint64_t>(300 + seed)});
      if (!truth.ok()) continue;
      const auto noisy = nb::ApplySectionVANoise(
          *truth, eta, static_cast<uint64_t>(400 + seed));
      if (!noisy.ok()) continue;

      nb::NoiseCorrectedOptions defaults;
      nb::NoiseCorrectedOptions use_pvalue;
      use_pvalue.use_binomial_pvalue = true;
      nb::NoiseCorrectedOptions use_plugin;
      use_plugin.bayesian_prior = false;
      nb::NoiseCorrectedOptions use_erratum;
      use_erratum.python_erratum_beta = true;

      const auto a = nb::NoiseCorrected(noisy->noisy, defaults);
      const auto b = nb::NoiseCorrected(noisy->noisy, use_pvalue);
      const auto c = nb::NoiseCorrected(noisy->noisy, use_plugin);
      const auto d = nb::NoiseCorrected(noisy->noisy, use_erratum);
      const auto e = nb::DisparityFilter(noisy->noisy);
      if (!a.ok() || !b.ok() || !c.ok() || !d.ok() || !e.ok()) continue;
      full += Recovery(*a, *noisy);
      pvalue += Recovery(*b, *noisy);
      plugin += Recovery(*c, *noisy);
      erratum += Recovery(*d, *noisy);
      df_total += Recovery(*e, *noisy);
      ++n;
    }
    const double elapsed = eta_timer.ElapsedSeconds();
    if (n == 0) continue;
    PrintRow({Num(eta, 2), Num(full / n, 3), Num(pvalue / n, 3),
              Num(plugin / n, 3), Num(erratum / n, 3),
              Num(df_total / n, 3)});
    json.RecordSeconds("ablation_nc:eta_" + Num(eta, 2),
                       /*n=*/num_seeds, /*threads=*/1, elapsed, elapsed);
  }

  // (ii) zero-variance degeneracy, shown directly: the share of edges
  // whose estimated sdev is exactly zero under each estimator.
  const auto truth = nb::GenerateBarabasiAlbert(
      {.num_nodes = 150, .average_degree = 3.0, .seed = 310});
  const auto noisy = nb::ApplySectionVANoise(*truth, 0.15, 410);
  if (noisy.ok()) {
    nb::NoiseCorrectedOptions use_plugin;
    use_plugin.bayesian_prior = false;
    const auto bayes = nb::NoiseCorrected(noisy->noisy);
    const auto plugin = nb::NoiseCorrected(noisy->noisy, use_plugin);
    if (bayes.ok() && plugin.ok()) {
      const auto zero_share = [](const nb::ScoredEdges& scored) {
        int64_t zero = 0;
        for (nb::EdgeId id = 0; id < scored.size(); ++id) {
          if (scored.at(id).sdev == 0.0) ++zero;
        }
        return static_cast<double>(zero) /
               static_cast<double>(scored.size());
      };
      std::printf(
          "\nshare of edges with degenerate (zero) sdev: bayesian=%s "
          "plugin=%s\n",
          Num(zero_share(*bayes), 4).c_str(),
          Num(zero_share(*plugin), 4).c_str());
    }
  }

  // (iii) erratum magnitude: max absolute sdev deviation across edges.
  if (noisy.ok()) {
    nb::NoiseCorrectedOptions use_erratum;
    use_erratum.python_erratum_beta = true;
    const auto paper_scores = nb::NoiseCorrected(noisy->noisy);
    const auto erratum_scores =
        nb::NoiseCorrected(noisy->noisy, use_erratum);
    if (paper_scores.ok() && erratum_scores.ok()) {
      double max_rel = 0.0;
      for (nb::EdgeId id = 0; id < paper_scores->size(); ++id) {
        const double a = paper_scores->at(id).sdev;
        const double b = erratum_scores->at(id).sdev;
        if (a > 0.0) max_rel = std::max(max_rel, std::fabs(a - b) / a);
      }
      std::printf(
          "max relative sdev difference, paper Eq.8 vs python erratum: "
          "%.2e\n",
          max_rel);
    }
  }

  std::printf(
      "\nExpected: the full NC dominates or matches every ablated variant;\n"
      "the erratum is numerically negligible; the plug-in estimator\n"
      "degenerates on zero/low-information edges.\n");
  return 0;
}
