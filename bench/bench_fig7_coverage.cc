// Regenerates paper Fig. 7: node coverage per backbone method as a
// function of the share of retained edges, for all six country networks.
//
// Paper shape to reproduce: MST and DS achieve perfect coverage by
// construction (single points — they are parameter-free); HSS stays near
// perfect except at very strict thresholds; NC and DF trade places per
// network but NC never falls below the naive threshold (DF does, on
// Ownership — its "critical failure").
//
// The share grid is priced through the one-sort sweep engine
// (eval/sweep_metrics.h): every method is scored once, sorted once, and
// the whole grid is answered by a single union-find pass. The old
// per-point path (a fresh TopShare sort plus a fresh CoverageOfMask scan
// per share) is timed alongside for the before/after record, and its
// values are checked element-wise against the batch output.

#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "core/filter.h"
#include "core/registry.h"
#include "core/sweep.h"
#include "eval/coverage.h"
#include "eval/edge_budget.h"
#include "eval/sweep_metrics.h"
#include "gen/countries.h"

namespace nb = netbone;
using netbone::bench::Banner;
using netbone::bench::NaN;
using netbone::bench::Num;
using netbone::bench::PrintRow;

int main() {
  Banner("Fig. 7", "coverage vs share of edges retained, per method");
  const bool quick = netbone::bench::QuickMode();
  netbone::bench::JsonBenchLog json("fig7");
  const auto suite = nb::GenerateCountrySuite(
      /*seed=*/42, /*num_years=*/1, /*num_countries=*/quick ? 60 : 190);
  if (!suite.ok()) return 1;

  const std::vector<double> shares = {0.01, 0.02, 0.05, 0.10,
                                      0.20, 0.50, 1.00};
  const std::vector<nb::Method> parametric = {
      nb::Method::kNaiveThreshold, nb::Method::kHighSalienceSkeleton,
      nb::Method::kDisparityFilter, nb::Method::kNoiseCorrected};

  bool all_match = true;
  for (const nb::CountryNetworkKind kind : nb::AllCountryNetworkKinds()) {
    const nb::Graph& g = suite->network(kind).front();
    std::printf("\n-- %s (%lld edges) --\n",
                nb::CountryNetworkName(kind).c_str(),
                static_cast<long long>(g.num_edges()));

    // Score each method once; both sweep paths below reuse these tables,
    // so the timings isolate the filter/eval layer.
    std::vector<nb::Result<nb::ScoredEdges>> scored;
    std::vector<std::string> header = {"share"};
    for (const nb::Method m : parametric) {
      header.push_back(nb::MethodTag(m));
      scored.push_back(nb::RunMethod(m, g));
    }

    // Before: the per-point path — one sort + one O(E) isolate scan per
    // (method, share) cell.
    nb::Timer per_point_timer;
    std::vector<std::vector<double>> per_point(parametric.size());
    for (size_t i = 0; i < parametric.size(); ++i) {
      if (!scored[i].ok()) continue;
      for (const double share : shares) {
        const auto coverage =
            nb::CoverageOfMask(g, nb::TopShare(*scored[i], share));
        per_point[i].push_back(coverage.ok() ? *coverage : NaN());
      }
    }
    const double per_point_s = per_point_timer.ElapsedSeconds();

    // After: the batch path — one sort + one union-find pass per method.
    nb::Timer batch_timer;
    std::vector<std::vector<double>> batch(parametric.size());
    for (size_t i = 0; i < parametric.size(); ++i) {
      if (!scored[i].ok()) continue;
      const auto coverage =
          nb::CoverageSweep(nb::ScoreOrder(*scored[i]), shares);
      if (coverage.ok()) batch[i] = *coverage;
    }
    const double batch_s = batch_timer.ElapsedSeconds();

    PrintRow(header);
    for (size_t s = 0; s < shares.size(); ++s) {
      std::vector<std::string> row = {Num(shares[s], 2)};
      for (size_t i = 0; i < parametric.size(); ++i) {
        if (batch[i].empty()) {
          row.push_back(Num(NaN()));
          continue;
        }
        row.push_back(Num(batch[i][s], 3));
        // The acceptance contract: batch values match the per-point path
        // bit for bit (both divide the same integers).
        if (batch[i][s] != per_point[i][s]) all_match = false;
      }
      PrintRow(row);
    }

    std::printf("sweep timing: per-point %.4fs, batch %.4fs (%.1fx)\n",
                per_point_s, batch_s,
                batch_s > 0.0 ? per_point_s / batch_s : NaN());
    json.RecordSeconds("coverage_sweep_per_point:" +
                           nb::CountryNetworkName(kind),
                       g.num_edges(), 1, per_point_s, per_point_s);
    json.RecordSeconds("coverage_sweep_batch:" +
                           nb::CountryNetworkName(kind),
                       g.num_edges(), 1, batch_s, batch_s);

    // Parameter-free methods appear as single points.
    for (const nb::Method m :
         {nb::Method::kMaximumSpanningTree, nb::Method::kDoublyStochastic}) {
      const auto mask = nb::BudgetedBackbone(m, g, /*budget=*/0);
      if (!mask.ok()) {
        std::printf("%-22s n/a (%s)\n", nb::MethodTag(m).c_str(),
                    mask.status().message().c_str());
        continue;
      }
      const auto coverage = nb::CoverageOfMask(g, *mask);
      std::printf("%-22s share=%.3f coverage=%s\n",
                  nb::MethodTag(m).c_str(), mask->Share(),
                  coverage.ok() ? Num(*coverage, 3).c_str() : "n/a");
    }
  }
  std::printf(
      "\nbatch vs per-point coverage values: %s\n",
      all_match ? "identical" : "MISMATCH");
  std::printf(
      "\nPaper reference: MST/DS/HSS near-perfect coverage; no clear\n"
      "NC-vs-DF winner, but DF is the only method to underperform the\n"
      "naive baseline on one network (Ownership).\n");
  return all_match ? 0 : 1;
}
