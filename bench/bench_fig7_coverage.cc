// Regenerates paper Fig. 7: node coverage per backbone method as a
// function of the share of retained edges, for all six country networks.
//
// Paper shape to reproduce: MST and DS achieve perfect coverage by
// construction (single points — they are parameter-free); HSS stays near
// perfect except at very strict thresholds; NC and DF trade places per
// network but NC never falls below the naive threshold (DF does, on
// Ownership — its "critical failure").

#include <map>
#include <vector>

#include "bench_common.h"
#include "core/filter.h"
#include "core/registry.h"
#include "eval/coverage.h"
#include "eval/edge_budget.h"
#include "gen/countries.h"

namespace nb = netbone;
using netbone::bench::Banner;
using netbone::bench::NaN;
using netbone::bench::Num;
using netbone::bench::PrintRow;

int main() {
  Banner("Fig. 7", "coverage vs share of edges retained, per method");
  const bool quick = netbone::bench::QuickMode();
  const auto suite = nb::GenerateCountrySuite(
      /*seed=*/42, /*num_years=*/1, /*num_countries=*/quick ? 60 : 190);
  if (!suite.ok()) return 1;

  const std::vector<double> shares = {0.01, 0.02, 0.05, 0.10,
                                      0.20, 0.50, 1.00};

  for (const nb::CountryNetworkKind kind : nb::AllCountryNetworkKinds()) {
    const nb::Graph& g = suite->network(kind).front();
    std::printf("\n-- %s (%lld edges) --\n",
                nb::CountryNetworkName(kind).c_str(),
                static_cast<long long>(g.num_edges()));

    // Parametric methods: sweep the share grid. Keep header and row cell
    // order aligned by iterating one explicit list.
    const std::vector<nb::Method> parametric = {
        nb::Method::kNaiveThreshold, nb::Method::kHighSalienceSkeleton,
        nb::Method::kDisparityFilter, nb::Method::kNoiseCorrected};
    std::vector<std::string> header = {"share"};
    std::vector<nb::Result<nb::ScoredEdges>> scored;
    for (const nb::Method m : parametric) {
      header.push_back(nb::MethodTag(m));
      scored.push_back(nb::RunMethod(m, g));
    }
    PrintRow(header);
    for (const double share : shares) {
      std::vector<std::string> row = {Num(share, 2)};
      for (auto& result : scored) {
        if (!result.ok()) {
          row.push_back(Num(NaN()));
          continue;
        }
        const auto coverage =
            nb::CoverageOfMask(g, nb::TopShare(*result, share));
        row.push_back(coverage.ok() ? Num(*coverage, 3) : Num(NaN()));
      }
      PrintRow(row);
    }

    // Parameter-free methods appear as single points.
    for (const nb::Method m :
         {nb::Method::kMaximumSpanningTree, nb::Method::kDoublyStochastic}) {
      const auto mask = nb::BudgetedBackbone(m, g, /*budget=*/0);
      if (!mask.ok()) {
        std::printf("%-22s n/a (%s)\n", nb::MethodTag(m).c_str(),
                    mask.status().message().c_str());
        continue;
      }
      const auto coverage = nb::CoverageOfMask(g, *mask);
      std::printf("%-22s share=%.3f coverage=%s\n",
                  nb::MethodTag(m).c_str(), mask->Share(),
                  coverage.ok() ? Num(*coverage, 3).c_str() : "n/a");
    }
  }
  std::printf(
      "\nPaper reference: MST/DS/HSS near-perfect coverage; no clear\n"
      "NC-vs-DF winner, but DF is the only method to underperform the\n"
      "naive baseline on one network (Ownership).\n");
  return 0;
}
