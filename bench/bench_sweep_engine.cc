// Acceptance harness for the one-sort threshold-sweep engine
// (core/sweep.h, eval/sweep_metrics.h): a 50-point Fig. 7-style share
// sweep on the 2000-node bench graph, per method.
//
// Contract being demonstrated (and enforced — the process exits non-zero
// on any value or mask mismatch):
//   * the batch path performs exactly one score sort per method
//     (ScoreOrder::SortsPerformed), versus one per sweep point before;
//   * Coverage values and kept-masks are element-wise identical to the
//     per-point TopShare + CoverageOfMask path at every sweep point;
//   * the batch path is expected >= 5x faster than the per-point path
//     (reported below and in BENCH_sweep_engine.json; the hard identity
//     checks are what gate CI, timings on shared hardware only inform).

#include <algorithm>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "core/filter.h"
#include "core/registry.h"
#include "core/sweep.h"
#include "eval/coverage.h"
#include "eval/sweep_metrics.h"
#include "gen/erdos_renyi.h"

namespace nb = netbone;
using netbone::bench::Banner;
using netbone::bench::Num;
using netbone::bench::PrintRow;

namespace {

double MedianOf3(double a, double b, double c) {
  return std::max(std::min(a, b), std::min(std::max(a, b), c));
}

}  // namespace

int main() {
  Banner("sweep engine", "50-point share sweep: per-point vs one-sort batch");
  const bool quick = netbone::bench::QuickMode();
  netbone::bench::JsonBenchLog json("sweep_engine");

  // The 2000-node bench graph (the fig9 slow-method fixture).
  const auto graph = nb::GenerateErdosRenyi(
      {.num_nodes = 2000, .average_degree = 3.0, .seed = 78});
  if (!graph.ok()) return 1;
  const int64_t num_edges = graph->num_edges();

  // 50 evenly spaced retention shares, 0.02 .. 1.00.
  std::vector<double> shares;
  for (int p = 1; p <= 50; ++p) {
    shares.push_back(static_cast<double>(p) / 50.0);
  }

  const std::vector<nb::Method> methods = {
      nb::Method::kNaiveThreshold, nb::Method::kDisparityFilter,
      nb::Method::kNoiseCorrected, nb::Method::kHighSalienceSkeleton};
  const int reps = quick ? 1 : 3;

  PrintRow({"method", "per-point s", "batch s", "speedup", "sorts"});
  bool all_match = true;
  for (const nb::Method m : methods) {
    const auto scored = nb::RunMethod(m, *graph);
    if (!scored.ok()) {
      std::printf("%-22s n/a (%s)\n", nb::MethodTag(m).c_str(),
                  scored.status().message().c_str());
      continue;
    }

    // Before: P sorts + P isolate scans.
    std::vector<double> per_point;
    std::vector<double> before_times;
    for (int rep = 0; rep < reps; ++rep) {
      per_point.clear();
      nb::Timer timer;
      for (const double share : shares) {
        const auto coverage =
            nb::CoverageOfMask(*graph, nb::TopShare(*scored, share));
        per_point.push_back(coverage.ok() ? *coverage : -1.0);
      }
      before_times.push_back(timer.ElapsedSeconds());
    }

    // After: one sort + one union-find pass for the whole grid. The sort
    // counter pins down the one-sort contract.
    std::vector<double> batch;
    std::vector<double> after_times;
    int64_t sorts = 0;
    for (int rep = 0; rep < reps; ++rep) {
      const int64_t sorts_before = nb::ScoreOrder::SortsPerformed();
      nb::Timer timer;
      const nb::ScoreOrder order(*scored);
      const auto coverage = nb::CoverageSweep(order, shares);
      after_times.push_back(timer.ElapsedSeconds());
      sorts = nb::ScoreOrder::SortsPerformed() - sorts_before;
      if (!coverage.ok()) {
        all_match = false;
        continue;
      }
      batch = *coverage;
      // Masks must agree point for point with the per-point TopShare
      // (checked on the last rep only — they are deterministic).
      if (rep + 1 == reps) {
        for (const double share : shares) {
          const nb::BackboneMask a = nb::TopShare(*scored, share);
          const nb::BackboneMask b = nb::TopShare(order, share);
          if (a.keep != b.keep || a.kept != b.kept) all_match = false;
        }
      }
    }
    if (batch != per_point) all_match = false;
    if (sorts != 1) all_match = false;

    const double before_med = reps == 3
                                  ? MedianOf3(before_times[0],
                                              before_times[1],
                                              before_times[2])
                                  : before_times[0];
    const double after_med =
        reps == 3 ? MedianOf3(after_times[0], after_times[1], after_times[2])
                  : after_times[0];
    const double before_min =
        *std::min_element(before_times.begin(), before_times.end());
    const double after_min =
        *std::min_element(after_times.begin(), after_times.end());
    PrintRow({nb::MethodTag(m), Num(before_med, 5), Num(after_med, 5),
              Num(after_med > 0.0 ? before_med / after_med : 0.0, 1),
              std::to_string(sorts)});
    json.RecordSeconds("sweep50_per_point:" + nb::MethodTag(m), num_edges,
                       1, before_med, before_min);
    json.RecordSeconds("sweep50_batch:" + nb::MethodTag(m), num_edges, 1,
                       after_med, after_min);
  }

  std::printf("\n%lld edges, %zu sweep points; identity checks: %s\n",
              static_cast<long long>(num_edges), shares.size(),
              all_match ? "PASS" : "FAIL");
  return all_match ? 0 : 1;
}
