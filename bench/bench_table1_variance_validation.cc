// Regenerates paper Table I: validation of the NC variance estimate.
//
// The NC model predicts V[L~_ij] for every edge. Observing each network
// in several years gives an *empirical* variance of the transformed lift
// per node pair; Table I reports the correlation between predicted and
// observed variances per network.
//
// Paper shape to reproduce: all correlations positive and significant
// (paper values range from .064 on Migration to .872 on Ownership).

#include <unordered_map>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "core/noise_corrected.h"
#include "gen/countries.h"
#include "stats/correlation.h"
#include "stats/descriptive.h"

namespace nb = netbone;
using netbone::bench::Banner;
using netbone::bench::NaN;
using netbone::bench::Num;
using netbone::bench::PrintRow;

namespace {

uint64_t PairKey(nb::NodeId a, nb::NodeId b) {
  return (static_cast<uint64_t>(a) << 32) |
         static_cast<uint64_t>(static_cast<uint32_t>(b));
}

}  // namespace

int main() {
  Banner("Table I",
         "correlation of predicted vs observed variance of L~_ij");
  const bool quick = netbone::bench::QuickMode();
  const int num_years = quick ? 3 : 6;
  const auto suite = nb::GenerateCountrySuite(
      /*seed=*/42, num_years, /*num_countries=*/quick ? 60 : 150);
  if (!suite.ok()) return 1;
  netbone::bench::JsonBenchLog json("table1");

  PrintRow({"network", "NC corr", "pairs"});
  for (const nb::CountryNetworkKind kind : nb::AllCountryNetworkKinds()) {
    const nb::TemporalNetwork& network = suite->network(kind);
    nb::Timer network_timer;

    // Transformed lift per pair per year; prediction from year 0.
    std::unordered_map<uint64_t, std::vector<double>> lift_series;
    std::unordered_map<uint64_t, double> predicted_variance;
    for (int64_t year = 0; year < network.num_snapshots(); ++year) {
      const nb::Graph& g = network.snapshot(year);
      std::vector<nb::NoiseCorrectedDetail> details;
      const auto scored = nb::NoiseCorrectedWithDetails(g, {}, &details);
      if (!scored.ok()) continue;
      for (nb::EdgeId id = 0; id < g.num_edges(); ++id) {
        const nb::Edge& e = g.edge(id);
        const uint64_t key = PairKey(e.src, e.dst);
        lift_series[key].push_back(
            details[static_cast<size_t>(id)].transformed_lift);
        if (year == 0) {
          predicted_variance[key] =
              details[static_cast<size_t>(id)].variance_lift;
        }
      }
    }

    // Observed variance across years for pairs present in every year and
    // predicted in year 0.
    std::vector<double> predicted, observed;
    for (const auto& [key, series] : lift_series) {
      if (static_cast<int64_t>(series.size()) != network.num_snapshots()) {
        continue;
      }
      const auto it = predicted_variance.find(key);
      if (it == predicted_variance.end()) continue;
      predicted.push_back(it->second);
      observed.push_back(nb::SampleVariance(series));
    }
    const auto corr = nb::PearsonCorrelation(predicted, observed);
    const double elapsed = network_timer.ElapsedSeconds();
    PrintRow({nb::CountryNetworkName(kind),
              corr.ok() ? Num(*corr, 3) : Num(NaN()),
              std::to_string(predicted.size())});
    json.RecordSeconds("table1:" + nb::CountryNetworkName(kind),
                       static_cast<int64_t>(predicted.size()),
                       /*threads=*/1, elapsed, elapsed);
  }
  std::printf(
      "\nPaper reference (Table I): Business .590, Country Space .627,\n"
      "Flight .613, Migration .064, Ownership .872, Trade .162 — all\n"
      "positive and significant at p < 1e-9.\n");
  return 0;
}
