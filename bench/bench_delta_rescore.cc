// Acceptance harness for incremental delta rescoring (graph/delta.h,
// core/delta_rescore.h, the ScoreOrder patch constructor, and the
// engine's lineage path): full rescore vs patch-from-ancestor for a
// 1%-edge delta on the 2000-node bench graph, re-weighted to small
// integers (the paper's count-data regime, where weight redistribution
// preserves marginals and totals bitwise).
//
// The timed quantity is the *rescore step* the PR replaces — scoring the
// table plus ordering it:
//     full:  RunMethod + ScoreOrder (the one global sort)
//     patch: DeltaRescore (copy clean, rescore dirty) + the ScoreOrder
//            remove+merge patch (zero global sorts)
// both at one thread, with the GraphDelta precomputed as the engine does
// at AddGraphRevision (submission-time, amortized across methods and
// requests — the full side's AddGraph fingerprint is likewise untimed).
// The SweepProfile rebuild is identical batch work on both paths (the
// union-find pass is not incremental by design) and is reported
// separately, as are the end-to-end engine latencies.
//
// Contract being demonstrated (and enforced — the process exits non-zero
// on any violation):
//   * the incremental response is bit-identical to the cold full-rescore
//     response for every incremental method (NC, DF, NT) at engine thread
//     counts 1 / 2 / 4, and patched scores/order/profile equal the full
//     rescore's bit for bit at the core level;
//   * the incremental path performs zero global sorts
//     (ScoreOrder::SortsPerformed stays flat) and zero full rescorings
//     (engine scores_computed stays flat; delta_rescores advances);
//   * non-incremental methods (HSS) fall back to the full path with
//     identical output;
//   * the rescore step is >= 5x faster incrementally, as the median
//     across the incremental methods of per-method median ratios. (The
//     bound was 10x against the scalar per-edge full sweep; the
//     vectorized batch kernels cut the full-rescore denominator several
//     fold, so the same patch path now clears a smaller ratio.)

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <optional>
#include <vector>

#include "bench_common.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/delta_rescore.h"
#include "core/registry.h"
#include "core/sweep.h"
#include "gen/erdos_renyi.h"
#include "graph/builder.h"
#include "graph/delta.h"
#include "service/engine.h"
#include "stats/descriptive.h"

namespace nb = netbone;
using netbone::bench::Banner;
using netbone::bench::Num;
using netbone::bench::PrintRow;

namespace {

/// The 2000-node bench fixture re-weighted to integers in [1, 100].
nb::Graph MakeBase() {
  const nb::Result<nb::Graph> er = nb::GenerateErdosRenyi(
      {.num_nodes = 2000, .average_degree = 3.0, .seed = 78});
  nb::GraphBuilder builder(nb::Directedness::kUndirected);
  builder.ReserveNodes(2000);
  for (const nb::Edge& e : er->edges()) {
    builder.AddEdge(e.src, e.dst, std::floor(e.weight) + 1.0);
  }
  return *builder.Build();
}

/// A noisy re-observation touching ~`fraction` of the edges: unit weight
/// transfers between random pairs (totals preserved exactly).
nb::Graph MakeRevision(const nb::Graph& base, double fraction,
                       uint64_t seed) {
  std::vector<nb::Edge> edges(base.edges().begin(), base.edges().end());
  nb::Rng rng(seed);
  const int64_t transfers = std::max<int64_t>(
      1, std::llround(static_cast<double>(edges.size()) * fraction / 2.0));
  for (int64_t t = 0; t < transfers; ++t) {
    const size_t a = static_cast<size_t>(rng.NextBounded(edges.size()));
    const size_t b = static_cast<size_t>(rng.NextBounded(edges.size()));
    if (a == b || edges[a].weight < 2.0) continue;
    edges[a].weight -= 1.0;
    edges[b].weight += 1.0;
  }
  nb::GraphBuilder builder(base.directedness());
  builder.ReserveNodes(base.num_nodes());
  for (const nb::Edge& e : edges) builder.AddEdge(e.src, e.dst, e.weight);
  return *builder.Build();
}

nb::BackboneRequest ShareRequest(uint64_t graph, nb::Method method) {
  nb::BackboneRequest request;
  request.graph = graph;
  request.method = method;
  request.kind = nb::RequestKind::kTopShare;
  request.share = 0.25;
  return request;
}

bool SameResponse(const nb::BackboneResponse& a,
                  const nb::BackboneResponse& b) {
  return a.kept_edges == b.kept_edges && a.kept == b.kept &&
         a.coverage == b.coverage && a.weight_share == b.weight_share;
}

}  // namespace

int main() {
  Banner("delta rescore",
         "full rescore vs incremental patch for a 1%-edge delta on the "
         "2000-node graph");
  const bool quick = netbone::bench::QuickMode();
  netbone::bench::JsonBenchLog json("delta_rescore");

  const nb::Graph base = MakeBase();
  const nb::Graph next = MakeRevision(base, /*fraction=*/0.01, 4242);
  const int64_t num_edges = base.num_edges();
  const nb::Result<nb::GraphDelta> delta_or =
      nb::ComputeGraphDelta(base, next);
  if (!delta_or.ok() || !delta_or->totals_equal) {
    std::printf("fixture broken: %s\n",
                delta_or.ok() ? "totals moved"
                              : delta_or.status().message().c_str());
    return 1;
  }
  const nb::GraphDelta& delta = *delta_or;
  std::printf("%lld edges, %lld affected (%.2f%%), totals preserved\n",
              static_cast<long long>(num_edges),
              static_cast<long long>(delta.AffectedEdges()),
              100.0 * static_cast<double>(delta.AffectedEdges()) /
                  static_cast<double>(num_edges));

  const std::vector<nb::Method> methods = {nb::Method::kNoiseCorrected,
                                           nb::Method::kDisparityFilter,
                                           nb::Method::kNaiveThreshold};
  const int reps = quick ? 7 : 25;
  nb::RunMethodOptions one_thread;
  one_thread.num_threads = 1;
  nb::DeltaRescoreOptions patch_options;
  patch_options.num_threads = 1;

  bool ok = true;
  std::vector<double> ratios;
  PrintRow({"method", "full us", "patch us", "ratio", "dirty", "profile us"});

  for (const nb::Method method : methods) {
    const nb::Result<nb::ScoredEdges> base_scored =
        nb::RunMethod(method, base, one_thread);
    if (!base_scored.ok()) {
      ok = false;
      continue;
    }

    // --- Timed: the full rescore step (score + the one global sort). ---
    std::vector<double> full_times;
    std::optional<nb::ScoredEdges> full_scored;
    for (int rep = 0; rep < reps; ++rep) {
      nb::Timer timer;
      nb::Result<nb::ScoredEdges> scored =
          nb::RunMethod(method, next, one_thread);
      if (!scored.ok()) {
        ok = false;
        break;
      }
      const nb::ScoreOrder order(*scored);
      full_times.push_back(timer.ElapsedSeconds());
      if (rep + 1 == reps) full_scored = *std::move(scored);
    }
    if (!full_scored.has_value()) {
      ok = false;
      continue;
    }
    const nb::ScoreOrder full_order(*full_scored);

    // --- Timed: the incremental rescore step (patch + merge). ---
    std::vector<double> patch_times;
    std::optional<nb::DeltaRescoreResult> patch;
    const nb::ScoreOrder base_order(*base_scored);
    const int64_t sorts_before = nb::ScoreOrder::SortsPerformed();
    for (int rep = 0; rep < reps; ++rep) {
      nb::Timer timer;
      nb::Result<std::optional<nb::DeltaRescoreResult>> patched =
          nb::DeltaRescore(method, *base_scored, next, delta, patch_options);
      if (!patched.ok() || !patched->has_value()) {
        ok = false;
        break;
      }
      const nb::ScoredEdges patched_scored(&next, full_scored->method(),
                                           (*patched)->scores,
                                           full_scored->has_sdev());
      const nb::ScoreOrder patched_order(patched_scored, base_order,
                                         (*patched)->base_to_next,
                                         (*patched)->dirty);
      patch_times.push_back(timer.ElapsedSeconds());
      if (rep + 1 == reps) patch = *std::move(*patched);
    }
    // Zero global sorts across every patch repetition.
    if (nb::ScoreOrder::SortsPerformed() != sorts_before) ok = false;
    if (!patch.has_value()) {
      ok = false;
      continue;
    }

    // --- Core-level bit-identity: scores, order, rebuilt profile. ---
    const nb::ScoredEdges patched_scored(&next, full_scored->method(),
                                         patch->scores,
                                         full_scored->has_sdev());
    const nb::ScoreOrder patched_order(patched_scored, base_order,
                                       patch->base_to_next, patch->dirty);
    for (int64_t id = 0; id < full_scored->size(); ++id) {
      if (patch->scores[static_cast<size_t>(id)].score !=
              full_scored->at(id).score ||
          patch->scores[static_cast<size_t>(id)].sdev !=
              full_scored->at(id).sdev) {
        ok = false;
      }
    }
    for (int64_t rank = 0; rank < full_order.size(); ++rank) {
      if (patched_order.id_at(rank) != full_order.id_at(rank)) ok = false;
    }
    double profile_us = 0.0;
    {
      nb::Timer timer;
      const nb::SweepProfile patched_profile =
          nb::BuildSweepProfile(patched_order);
      profile_us = timer.ElapsedSeconds() * 1e6;
      const nb::SweepProfile full_profile = nb::BuildSweepProfile(full_order);
      if (patched_profile.covered_nodes != full_profile.covered_nodes ||
          patched_profile.kept_weight != full_profile.kept_weight ||
          patched_profile.connect_k != full_profile.connect_k) {
        ok = false;
      }
    }

    const double full_med = nb::Median(full_times);
    const double patch_med = nb::Median(patch_times);
    const double ratio = patch_med > 0.0 ? full_med / patch_med : 0.0;
    ratios.push_back(ratio);
    PrintRow({nb::MethodTag(method), Num(full_med * 1e6, 1),
              Num(patch_med * 1e6, 1), Num(ratio, 1),
              std::to_string(patch->dirty.size()), Num(profile_us, 1)});
    json.RecordSeconds("full:" + nb::MethodTag(method), num_edges, 1,
                       full_med,
                       *std::min_element(full_times.begin(),
                                         full_times.end()));
    json.RecordSeconds("patch:" + nb::MethodTag(method), num_edges, 1,
                       patch_med,
                       *std::min_element(patch_times.begin(),
                                         patch_times.end()));
  }

  // --- Engine-level gates: lineage resolution, zero sorts / rescores,
  // response identity across thread counts, warm follow-up. Untimed
  // correctness; end-to-end latency reported for context. ---
  std::vector<double> engine_full_times;
  std::vector<double> engine_patch_times;
  for (const nb::Method method : methods) {
    std::optional<nb::BackboneResponse> cold_response;
    {
      nb::BackboneEngine engine;
      const uint64_t fp = engine.AddGraph(next);
      nb::Timer timer;
      const auto response = engine.Execute(ShareRequest(fp, method));
      engine_full_times.push_back(timer.ElapsedSeconds());
      if (!response.ok()) {
        ok = false;
        continue;
      }
      cold_response = *response;
    }
    for (const int threads : {1, 2, 4}) {
      nb::BackboneEngineOptions options;
      options.num_threads = threads;
      nb::BackboneEngine engine(options);
      const uint64_t base_fp = engine.AddGraph(base);
      if (!engine.Execute(ShareRequest(base_fp, method)).ok()) ok = false;
      const uint64_t next_fp = engine.AddGraphRevision(next, base_fp);
      const int64_t sorts_before = nb::ScoreOrder::SortsPerformed();
      const int64_t scores_before = engine.stats().scores_computed;
      nb::Timer timer;
      const auto response = engine.Execute(ShareRequest(next_fp, method));
      if (threads == 1) {
        engine_patch_times.push_back(timer.ElapsedSeconds());
      }
      const auto stats = engine.stats();
      if (!response.ok() || stats.delta_rescores != 1 ||
          stats.scores_computed != scores_before ||
          nb::ScoreOrder::SortsPerformed() != sorts_before ||
          !cold_response.has_value() ||
          !SameResponse(*response, *cold_response)) {
        ok = false;
        continue;
      }
      // The patched entry is a first-class cache entry: warm next.
      const auto warm = engine.Execute(ShareRequest(next_fp, method));
      if (!warm.ok() || !warm->cache_hit) ok = false;
    }
  }
  std::printf(
      "\nengine end-to-end (1 thread): cold %s us median vs revision %s us "
      "median (shared response assembly + profile rebuild included)\n",
      Num(nb::Median(engine_full_times) * 1e6, 1).c_str(),
      Num(nb::Median(engine_patch_times) * 1e6, 1).c_str());
  json.RecordSeconds("engine_cold", num_edges, 1,
                     nb::Median(engine_full_times),
                     nb::Median(engine_full_times));
  json.RecordSeconds("engine_revision", num_edges, 1,
                     nb::Median(engine_patch_times),
                     nb::Median(engine_patch_times));

  // Fallback identity: HSS is not incremental — a revision request must
  // full-rescore and still match the cold path bit for bit.
  {
    nb::BackboneEngine engine;
    const uint64_t base_fp = engine.AddGraph(base);
    if (!engine.Execute(ShareRequest(base_fp,
                                     nb::Method::kHighSalienceSkeleton))
             .ok()) {
      ok = false;
    }
    const uint64_t next_fp = engine.AddGraphRevision(next, base_fp);
    const auto patched = engine.Execute(
        ShareRequest(next_fp, nb::Method::kHighSalienceSkeleton));
    nb::BackboneEngine cold_engine;
    const uint64_t cold_fp = cold_engine.AddGraph(next);
    const auto cold = cold_engine.Execute(
        ShareRequest(cold_fp, nb::Method::kHighSalienceSkeleton));
    if (!patched.ok() || !cold.ok() || !SameResponse(*patched, *cold) ||
        engine.stats().delta_rescores != 0) {
      ok = false;
    }
    std::printf("HSS fallback: full rescore, identical output: %s\n",
                ok ? "PASS" : "FAIL");
  }

  const double median_ratio = ratios.empty() ? 0.0 : nb::Median(ratios);
  // The full-rescore denominator runs the vectorized batch kernels, so
  // the patch's advantage is structural (O(dirty) vs O(E)), not a
  // scalar-code artifact; 5x on the 3000-edge quick fixture leaves room
  // for the merge path's fixed costs while still catching an O(E)
  // regression of the patch.
  const bool fast_enough =
      median_ratio >= 5.0 || netbone::bench::SanitizerBuild();
  std::printf(
      "rescore-step patch-vs-full median ratio %sx across NC/DF/NT "
      "(>= 5x required: %s); identity/zero-sort/fallback checks: %s\n",
      Num(median_ratio, 1).c_str(),
      netbone::bench::SanitizerBuild()
          ? "skipped, sanitizer build"
          : (fast_enough ? "PASS" : "FAIL"),
      ok ? "PASS" : "FAIL");
  return ok && fast_enough ? 0 : 1;
}
