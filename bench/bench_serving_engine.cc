// Acceptance harness for the serving engine (src/service/): cold vs
// warm-cache request latency, hit rate, and requests/sec on the 2000-node
// bench graph.
//
// Contract being demonstrated (and enforced — the process exits non-zero
// on any violation):
//   * warm extraction requests on a cached (graph, method) key perform
//     zero rescoring and zero sorts (engine scores_computed stays flat
//     and ScoreOrder::SortsPerformed advances by exactly one per method,
//     from the single cold request);
//   * every response is bit-identical to the uncached RunMethod +
//     TopShare + CoverageOfMask path, at every engine thread count;
//   * the warm path is >= 10x faster than the cold path in median
//     latency (median taken across methods; per-method ratios printed
//     and recorded in BENCH_serving_engine.json).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "core/filter.h"
#include "core/registry.h"
#include "core/sweep.h"
#include "eval/coverage.h"
#include "gen/erdos_renyi.h"
#include "service/engine.h"
#include "stats/descriptive.h"

namespace nb = netbone;
using netbone::bench::Banner;
using netbone::bench::Num;
using netbone::bench::PrintRow;

namespace {

nb::BackboneRequest ShareRequest(uint64_t graph, nb::Method method,
                                 double share) {
  nb::BackboneRequest request;
  request.graph = graph;
  request.method = method;
  request.kind = nb::RequestKind::kTopShare;
  request.share = share;
  return request;
}

}  // namespace

int main() {
  Banner("serving engine",
         "cold vs warm-cache backbone requests on the 2000-node graph");
  const bool quick = netbone::bench::QuickMode();
  netbone::bench::JsonBenchLog json("serving_engine");

  const auto graph = nb::GenerateErdosRenyi(
      {.num_nodes = 2000, .average_degree = 3.0, .seed = 78});
  if (!graph.ok()) return 1;
  const int64_t num_edges = graph->num_edges();

  const std::vector<nb::Method> methods = {
      nb::Method::kNaiveThreshold, nb::Method::kDisparityFilter,
      nb::Method::kNoiseCorrected, nb::Method::kHighSalienceSkeleton};
  const int cold_reps = quick ? 1 : 3;
  const int warm_reps = quick ? 50 : 400;

  bool ok = true;
  std::vector<double> ratios;
  PrintRow({"method", "cold ms", "warm us", "ratio", "hit rate"});

  for (const nb::Method method : methods) {
    // Reference: the uncached library path (what callers did before the
    // engine existed). Scored once here for the identity checks.
    const auto scored = nb::RunMethod(method, *graph);
    if (!scored.ok()) {
      std::printf("%-22s n/a (%s)\n", nb::MethodTag(method).c_str(),
                  scored.status().message().c_str());
      continue;
    }

    // Cold: a fresh engine per repetition — first request pays scoring,
    // the one sort, and the sweep pass.
    std::vector<double> cold_times;
    for (int rep = 0; rep < cold_reps; ++rep) {
      nb::BackboneEngine engine;
      const uint64_t fingerprint = engine.AddGraph(*nb::GenerateErdosRenyi(
          {.num_nodes = 2000, .average_degree = 3.0, .seed = 78}));
      const nb::BackboneRequest request =
          ShareRequest(fingerprint, method, 0.25);
      nb::Timer timer;
      const auto response = engine.Execute(request);
      cold_times.push_back(timer.ElapsedSeconds());
      if (!response.ok() || response->cache_hit) ok = false;
    }

    // Reference results for every warm share, via the uncached path.
    // Computed up front because TopShare(scored, share) sorts per call —
    // the warm window below must observe zero sorts from the engine.
    std::vector<double> shares;
    std::vector<std::vector<nb::EdgeId>> ref_edges;
    std::vector<int64_t> ref_kept;
    std::vector<double> ref_coverage;
    for (int rep = 0; rep < warm_reps; ++rep) {
      const double share =
          0.05 + 0.9 * static_cast<double>(rep) / warm_reps;
      const nb::BackboneMask mask = nb::TopShare(*scored, share);
      const auto coverage = nb::CoverageOfMask(*graph, mask);
      if (!coverage.ok()) {
        ok = false;
        continue;
      }
      shares.push_back(share);
      ref_edges.push_back(nb::MaskToEdgeIds(mask));
      ref_kept.push_back(mask.kept);
      ref_coverage.push_back(*coverage);
    }

    // Warm: one engine, many requests on the cached key with varying
    // thresholds. Zero sorts and zero rescoring, pinned below.
    nb::BackboneEngine engine;
    const uint64_t fingerprint = engine.AddGraph(*nb::GenerateErdosRenyi(
        {.num_nodes = 2000, .average_degree = 3.0, .seed = 78}));
    if (!engine.Execute(ShareRequest(fingerprint, method, 0.25)).ok()) {
      ok = false;
    }
    const int64_t scores_before = engine.stats().scores_computed;
    const int64_t sorts_before = nb::ScoreOrder::SortsPerformed();
    std::vector<double> warm_times;
    warm_times.reserve(shares.size());
    for (size_t rep = 0; rep < shares.size(); ++rep) {
      const nb::BackboneRequest request =
          ShareRequest(fingerprint, method, shares[rep]);
      nb::Timer timer;
      const auto response = engine.Execute(request);
      warm_times.push_back(timer.ElapsedSeconds());
      if (!response.ok() || !response->cache_hit) ok = false;

      // Bit-identity with the uncached path at this share.
      if (response->kept_edges != ref_edges[rep] ||
          response->kept != ref_kept[rep] ||
          response->coverage != ref_coverage[rep]) {
        ok = false;
      }
    }
    if (engine.stats().scores_computed != scores_before) ok = false;
    if (nb::ScoreOrder::SortsPerformed() != sorts_before) ok = false;

    // Identity across engine thread counts (1 vs 2 vs 4 workers).
    for (const int threads : {1, 2, 4}) {
      nb::BackboneEngineOptions options;
      options.num_threads = threads;
      nb::BackboneEngine threaded(options);
      const uint64_t fp = threaded.AddGraph(*nb::GenerateErdosRenyi(
          {.num_nodes = 2000, .average_degree = 3.0, .seed = 78}));
      const auto response =
          threaded.Execute(ShareRequest(fp, method, 0.25));
      const nb::BackboneMask mask = nb::TopShare(*scored, 0.25);
      if (!response.ok() || response->kept_edges != nb::MaskToEdgeIds(mask)) {
        ok = false;
      }
    }

    const double cold_med = nb::Median(cold_times);
    const double warm_med = nb::Median(warm_times);
    const double ratio = warm_med > 0.0 ? cold_med / warm_med : 0.0;
    ratios.push_back(ratio);
    const auto stats = engine.stats();
    const double hit_rate =
        static_cast<double>(stats.cache.hits) /
        static_cast<double>(stats.cache.hits + stats.cache.misses);
    PrintRow({nb::MethodTag(method), Num(cold_med * 1e3, 3),
              Num(warm_med * 1e6, 2), Num(ratio, 1), Num(hit_rate, 4)});
    json.RecordSeconds("cold:" + nb::MethodTag(method), num_edges, 1,
                       cold_med,
                       *std::min_element(cold_times.begin(),
                                         cold_times.end()));
    json.RecordSeconds("warm:" + nb::MethodTag(method), num_edges, 1,
                       warm_med,
                       *std::min_element(warm_times.begin(),
                                         warm_times.end()));
  }

  // Mixed-method warm throughput: every method's key is cached in one
  // engine; requests cycle methods, kinds and thresholds.
  {
    nb::BackboneEngine engine;
    const uint64_t fingerprint = engine.AddGraph(*nb::GenerateErdosRenyi(
        {.num_nodes = 2000, .average_degree = 3.0, .seed = 78}));
    for (const nb::Method method : methods) {
      if (!engine.Execute(ShareRequest(fingerprint, method, 0.25)).ok()) {
        ok = false;
      }
    }
    const int requests = quick ? 200 : 2000;
    nb::Timer timer;
    for (int r = 0; r < requests; ++r) {
      nb::BackboneRequest request = ShareRequest(
          fingerprint, methods[static_cast<size_t>(r) % methods.size()],
          0.05 + 0.9 * static_cast<double>(r) / requests);
      if (r % 3 == 1) {
        request.kind = nb::RequestKind::kCoveragePoint;
      } else if (r % 3 == 2) {
        request.kind = nb::RequestKind::kTopK;
        request.k = 100 + r;
      }
      if (!engine.Execute(request).ok()) ok = false;
    }
    const double elapsed = timer.ElapsedSeconds();
    const double rps = static_cast<double>(requests) / elapsed;
    std::printf("\nwarm mixed workload: %d requests in %s s = %s req/s\n",
                requests, Num(elapsed, 3).c_str(), Num(rps, 0).c_str());
    json.RecordSeconds("warm_mixed_per_request", num_edges, 1,
                       elapsed / requests, elapsed / requests);
  }

  const double median_ratio = ratios.empty() ? 0.0 : nb::Median(ratios);
  const bool fast_enough =
      median_ratio >= 10.0 || netbone::bench::SanitizerBuild();
  std::printf(
      "%lld edges; median warm-vs-cold ratio %sx (>= 10x required: %s); "
      "identity/zero-sort checks: %s\n",
      static_cast<long long>(num_edges), Num(median_ratio, 1).c_str(),
      netbone::bench::SanitizerBuild()
          ? "skipped, sanitizer build"
          : (fast_enough ? "PASS" : "FAIL"),
      ok ? "PASS" : "FAIL");
  return ok && fast_enough ? 0 : 1;
}
