#!/usr/bin/env python3
"""Diff two bench history snapshots and flag median regressions.

Every timing harness writes machine-readable ``BENCH_<name>.json`` files
(``netbone::bench::JsonBenchLog``); ``snapshot_bench.sh`` collects one run's
files into a timestamped directory under ``bench/history/``. This script
compares the two most recent snapshots (or two explicitly named ones) record
by record — a record is identified by ``(bench, method, n, threads)`` — and
flags any whose ``median_ns`` grew by more than the threshold (default 10%).
Records that carry the optional ``p95_ns`` field (exported latency
percentiles — the observability bench and MetricsSnapshot::RenderJson write
it) are additionally gated on p95 growth with the same threshold, so tail
latency regressions are caught even when the median holds.

Usage:
    compare_bench_json.py [--history DIR] [--threshold PCT] [OLD NEW]

Exits non-zero when at least one regression was flagged, so CI can gate on
it. Records present in only one snapshot are listed but never flagged (new
benches appear, old ones retire).
"""

import argparse
import json
import sys
from pathlib import Path


def load_snapshot(directory: Path):
    """Maps (bench, method, n, threads) -> {metric: ns} for one snapshot.

    The metric dict holds ``median_ns`` and, when the record exported one,
    ``p95_ns``. Records missing identity fields or a median are skipped
    with a warning rather than erroring: a snapshot directory may hold
    files written by a newer harness whose records this baseline never
    had, and one malformed entry must not block the whole comparison.
    """
    records = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        with open(path) as handle:
            data = json.load(handle)
        bench = data.get("bench", path.stem)
        for record in data.get("records", []):
            method = record.get("method")
            n = record.get("n")
            threads = record.get("threads")
            median = record.get("median_ns")
            if method is None or n is None or threads is None:
                print(
                    f"  warning: skipping malformed record in {path.name}: "
                    f"{record}",
                    file=sys.stderr,
                )
                continue
            if median is None:
                continue
            metrics = {"median_ns": float(median)}
            p95 = record.get("p95_ns")
            if p95 is not None:
                metrics["p95_ns"] = float(p95)
            records[(bench, method, n, threads)] = metrics
    return records


def pick_latest_two(history: Path):
    """The two most recent snapshot directories.

    Snapshots are ordered by name: labels must sort chronologically, which
    snapshot_bench.sh guarantees by prefixing every label (default and
    custom alike) with a YYYYmmdd-HHMMSS timestamp.
    """
    snapshots = sorted(
        d for d in history.iterdir() if d.is_dir() and any(d.glob("BENCH_*.json"))
    )
    if len(snapshots) < 2:
        sys.exit(
            f"need at least two snapshots under {history} "
            f"(found {len(snapshots)}); run bench/snapshot_bench.sh first"
        )
    return snapshots[-2], snapshots[-1]


def format_ns(ns: float) -> str:
    if ns >= 1e9:
        return f"{ns / 1e9:.2f}s"
    if ns >= 1e6:
        return f"{ns / 1e6:.2f}ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.1f}us"
    return f"{ns:.0f}ns"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--history",
        type=Path,
        default=Path(__file__).resolve().parent / "history",
        help="snapshot root (default: bench/history/)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=10.0,
        help="flag growth above this percentage (default: 10)",
    )
    parser.add_argument("snapshots", nargs="*", type=Path)
    args = parser.parse_args()

    if len(args.snapshots) == 2:
        old_dir, new_dir = args.snapshots
    elif not args.snapshots:
        old_dir, new_dir = pick_latest_two(args.history)
    else:
        parser.error("pass either zero or two snapshot directories")

    old = load_snapshot(old_dir)
    new = load_snapshot(new_dir)
    print(f"comparing {old_dir.name} -> {new_dir.name} "
          f"(threshold {args.threshold:.0f}%)")

    regressions = []
    improvements = 0
    for key in sorted(old.keys() & new.keys()):
        # median always; p95 only when both snapshots exported it (a
        # record gaining or losing the field is never flagged for it).
        for metric in ("median_ns", "p95_ns"):
            old_ns = old[key].get(metric)
            new_ns = new[key].get(metric)
            if old_ns is None or new_ns is None or old_ns <= 0:
                continue
            change = 100.0 * (new_ns - old_ns) / old_ns
            if change > args.threshold:
                regressions.append((key, metric, old_ns, new_ns, change))
            elif change < -args.threshold and metric == "median_ns":
                improvements += 1

    for key, metric, old_ns, new_ns, change in regressions:
        bench, method, n, threads = key
        print(
            f"  REGRESSION {bench}/{method} (n={n}, threads={threads}) "
            f"{metric}: {format_ns(old_ns)} -> {format_ns(new_ns)} "
            f"(+{change:.1f}%)"
        )

    only_old = sorted(old.keys() - new.keys())
    only_new = sorted(new.keys() - old.keys())
    if only_old:
        print(f"  {len(only_old)} record(s) retired since {old_dir.name}")
    if only_new:
        print(f"  {len(only_new)} new record(s) in {new_dir.name}")

    shared = len(old.keys() & new.keys())
    print(
        f"{shared} shared records: {len(regressions)} regression(s), "
        f"{improvements} improvement(s) beyond {args.threshold:.0f}%"
    )
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
