// Extension bench (paper future work, Sec. VII): distinguishing real
// from spurious changes in networks.
//
// Setup: year 1 is a pure count-resample of year 0 (every pair redrawn
// Poisson around its previous weight — spurious change only) except for
// a small set of *planted* structural changes (pairs whose intensity is
// shifted several-fold). A good change detector ranks the planted pairs
// above the resampling noise. We compare the NC z-test on transformed
// lifts against a naive log-ratio detector at matched flag counts: the
// naive detector is distracted by small-count pairs (2 -> 6 looks like a
// 3x jump), while the NC z-score knows such swings are within sampling
// error.

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "bench_common.h"
#include "common/random.h"
#include "core/change_detection.h"
#include "gen/countries.h"
#include "graph/builder.h"

namespace nb = netbone;
using netbone::bench::Banner;
using netbone::bench::Num;
using netbone::bench::PrintRow;

namespace {

uint64_t PairKey(nb::NodeId a, nb::NodeId b) {
  return (static_cast<uint64_t>(a) << 32) |
         static_cast<uint64_t>(static_cast<uint32_t>(b));
}

}  // namespace

int main() {
  Banner("Extension: change detection",
         "real vs spurious year-on-year changes (paper Sec. VII)");
  const bool quick = netbone::bench::QuickMode();
  const int32_t num_countries = quick ? 50 : 120;
  const int num_planted = quick ? 20 : 60;

  const auto suite =
      nb::GenerateCountrySuite(/*seed=*/77, /*num_years=*/1, num_countries);
  if (!suite.ok()) return 1;
  const nb::Graph& before =
      suite->network(nb::CountryNetworkKind::kTrade).front();

  // Year 1 = Poisson resample of year 0 + planted multiplicative shocks
  // (booms x2.5, collapses /2.5) on mid-weight pairs. Mid-weight keeps the
  // countries' marginals essentially unchanged, so the planted pairs are
  // the only *pair-level* structural changes; shocking a dominant pair
  // would mechanically shift the relative salience of every pair sharing
  // its endpoints (which the z-test then flags, correctly but
  // confusingly).
  std::vector<nb::EdgeId> candidates;
  for (nb::EdgeId id = 0; id < before.num_edges(); ++id) {
    const double w = before.edge(id).weight;
    if (w >= 50.0 && w <= 5000.0) candidates.push_back(id);
  }
  std::sort(candidates.begin(), candidates.end(),
            [&](nb::EdgeId a, nb::EdgeId b) {
              return before.edge(a).weight > before.edge(b).weight;
            });
  std::unordered_set<nb::EdgeId> planted_ids;
  const int stride =
      std::max<int>(1, static_cast<int>(candidates.size()) / num_planted);
  for (int i = 0;
       i < num_planted && i * stride < static_cast<int>(candidates.size());
       ++i) {
    planted_ids.insert(candidates[static_cast<size_t>(i * stride)]);
  }

  nb::Rng rng(4242);
  std::unordered_set<uint64_t> planted;
  nb::GraphBuilder builder(nb::Directedness::kDirected);
  builder.ReserveNodes(before.num_nodes());
  for (nb::EdgeId id = 0; id < before.num_edges(); ++id) {
    const nb::Edge& e = before.edge(id);
    double intensity = e.weight;
    if (planted_ids.contains(id)) {
      intensity = planted.size() % 2 == 0 ? intensity * 2.5
                                          : std::max(1.0, intensity / 2.5);
      planted.insert(PairKey(e.src, e.dst));
    }
    const int64_t count = rng.Poisson(intensity);
    if (count > 0) {
      builder.AddEdge(e.src, e.dst, static_cast<double>(count));
    }
  }
  const auto after = builder.Build();
  if (!after.ok()) return 1;

  // NC z-test.
  const auto report = nb::DetectChanges(before, *after, {.delta = 0.0});
  if (!report.ok()) {
    std::printf("%s\n", report.status().ToString().c_str());
    return 1;
  }
  // Rank pairs by |z| and measure precision at k = #planted, plus recall
  // curves; compare with the naive |log ratio| detector.
  struct Flag {
    double strength;
    bool is_planted;
  };
  std::vector<Flag> nc_flags, naive_flags;
  for (const nb::EdgeChange& change : report->changes) {
    const bool is_planted =
        planted.contains(PairKey(change.src, change.dst));
    nc_flags.push_back({std::fabs(change.z), is_planted});
    const double ratio =
        std::log1p(change.weight_after) - std::log1p(change.weight_before);
    naive_flags.push_back({std::fabs(ratio), is_planted});
  }
  const auto precision_at = [](std::vector<Flag> flags, size_t k) {
    std::sort(flags.begin(), flags.end(), [](const Flag& a, const Flag& b) {
      return a.strength > b.strength;
    });
    k = std::min(k, flags.size());
    if (k == 0) return 0.0;
    size_t hits = 0;
    for (size_t i = 0; i < k; ++i) hits += flags[i].is_planted ? 1 : 0;
    return static_cast<double>(hits) / static_cast<double>(k);
  };

  std::printf("pairs evaluated: %lld; planted changes: %zu\n\n",
              static_cast<long long>(report->evaluated_pairs),
              planted.size());
  PrintRow({"detector", "P@k", "P@2k", "P@5k"});
  PrintRow({"NC z-test", Num(precision_at(nc_flags, planted.size()), 3),
            Num(precision_at(nc_flags, 2 * planted.size()), 3),
            Num(precision_at(nc_flags, 5 * planted.size()), 3)});
  PrintRow({"naive log-ratio",
            Num(precision_at(naive_flags, planted.size()), 3),
            Num(precision_at(naive_flags, 2 * planted.size()), 3),
            Num(precision_at(naive_flags, 5 * planted.size()), 3)});

  std::printf(
      "\nExpected: the NC z-test concentrates the planted changes at the\n"
      "top of its ranking; the naive log-ratio detector is distracted by\n"
      "sampling noise on small counts.\n");
  return 0;
}
