// Regenerates the paper's Sec. VI case study: skill relatedness between
// occupations.
//
// Pipeline: O*NET-style importance/level scores -> above-average
// association filter -> skill co-occurrence network -> NC and DF
// backbones at matched edge budgets -> compare (a) surviving nodes,
// (b) Infomap (map equation) codelength compression, (c) modularity of
// the two-digit occupation classification, (d) NMI of discovered
// communities vs that classification, (e) labor-flow prediction
// correlation on all pairs / DF pairs / NC pairs.
//
// Paper numbers for reference: DF drops ~50 occupations, NC almost none;
// codelength gain 15.0% (NC) vs 9.3% (DF); modularity .192 vs .115; NMI
// .423 vs .401; flow correlation .390 (all) < .431 (DF) < .454 (NC).

#include <vector>

#include "bench_common.h"
#include "community/map_equation.h"
#include "community/modularity.h"
#include "community/nmi.h"
#include "core/filter.h"
#include "core/registry.h"
#include "gen/occupations.h"

namespace nb = netbone;
using netbone::bench::Banner;
using netbone::bench::Num;
using netbone::bench::PrintRow;

namespace {

struct BackboneReport {
  std::string name;
  int64_t edges = 0;
  int64_t nodes_kept = 0;
  double one_level_bits = 0.0;
  double two_level_bits = 0.0;
  double compression_gain = 0.0;
  double modularity_two_digit = 0.0;
  double nmi_vs_two_digit = 0.0;
  double flow_correlation = 0.0;
};

}  // namespace

int main() {
  Banner("Sec. VI case study", "occupation skill relatedness, NC vs DF");
  const bool quick = netbone::bench::QuickMode();

  nb::OccupationWorldOptions options;
  options.num_occupations = quick ? 150 : 430;
  options.num_skills = quick ? 80 : 180;
  options.seed = 99;
  const auto world = nb::GenerateOccupationWorld(options);
  if (!world.ok()) {
    std::printf("generation failed: %s\n",
                world.status().ToString().c_str());
    return 1;
  }
  const nb::Graph& co = world->co_occurrence;
  std::printf("co-occurrence network: %d occupations, %lld weighted pairs\n",
              co.num_nodes(), static_cast<long long>(co.num_edges()));

  // "The two networks have roughly the same number of connections": match
  // both backbones to ~8 edges per node.
  const int64_t budget = co.num_nodes() * 8;

  const nb::Partition two_digit(world->minor_group);

  std::vector<BackboneReport> reports;
  for (const nb::Method method :
       {nb::Method::kNoiseCorrected, nb::Method::kDisparityFilter}) {
    const auto scored = nb::RunMethod(method, co);
    if (!scored.ok()) continue;
    const nb::BackboneMask mask = nb::TopK(*scored, budget);
    const auto backbone = nb::ApplyMask(co, mask);
    if (!backbone.ok()) continue;

    BackboneReport report;
    report.name = nb::MethodTag(method);
    report.edges = mask.kept;
    report.nodes_kept =
        backbone->num_nodes() - backbone->CountIsolates();

    const auto one_level = nb::OneLevelCodelength(*backbone);
    const auto communities = nb::GreedyInfomap(*backbone, {.seed = 3});
    if (one_level.ok() && communities.ok()) {
      const auto two_level =
          nb::MapEquationCodelength(*backbone, *communities);
      if (two_level.ok()) {
        report.one_level_bits = *one_level;
        report.two_level_bits = *two_level;
        report.compression_gain = 1.0 - *two_level / *one_level;
      }
      const auto nmi =
          nb::NormalizedMutualInformation(*communities, two_digit);
      if (nmi.ok()) report.nmi_vs_two_digit = *nmi;
    }
    const auto modularity = nb::Modularity(*backbone, two_digit);
    if (modularity.ok()) report.modularity_two_digit = *modularity;

    // Flow prediction restricted to pairs the backbone keeps.
    std::vector<bool> flow_mask(
        static_cast<size_t>(world->flows.num_edges()), false);
    for (nb::EdgeId id = 0; id < world->flows.num_edges(); ++id) {
      const nb::Edge& e = world->flows.edge(id);
      const nb::EdgeId co_id = co.FindEdge(e.src, e.dst);
      if (co_id >= 0 && mask.keep[static_cast<size_t>(co_id)]) {
        flow_mask[static_cast<size_t>(id)] = true;
      }
    }
    const auto corr = nb::FlowPredictionCorrelation(*world, flow_mask);
    if (corr.ok()) report.flow_correlation = *corr;
    reports.push_back(report);
  }

  PrintRow({"metric", "NC", "DF"});
  const auto row = [&](const std::string& name, auto getter,
                       int precision) {
    PrintRow({name, Num(getter(reports[0]), precision),
              Num(getter(reports[1]), precision)});
  };
  if (reports.size() == 2) {
    row("edges", [](const BackboneReport& r) {
      return static_cast<double>(r.edges); }, 0);
    row("nodes kept", [](const BackboneReport& r) {
      return static_cast<double>(r.nodes_kept); }, 0);
    row("1-level bits", [](const BackboneReport& r) {
      return r.one_level_bits; }, 2);
    row("2-level bits", [](const BackboneReport& r) {
      return r.two_level_bits; }, 2);
    row("compression gain", [](const BackboneReport& r) {
      return r.compression_gain; }, 3);
    row("modularity (2-digit)", [](const BackboneReport& r) {
      return r.modularity_two_digit; }, 3);
    row("NMI vs 2-digit", [](const BackboneReport& r) {
      return r.nmi_vs_two_digit; }, 3);
    row("flow correlation", [](const BackboneReport& r) {
      return r.flow_correlation; }, 3);
  }

  const auto all_pairs =
      nb::FlowPredictionCorrelation(*world, std::vector<bool>());
  if (all_pairs.ok()) {
    std::printf("\nflow correlation on ALL pairs: %s\n",
                Num(*all_pairs, 3).c_str());
  }
  std::printf(
      "\nPaper reference: DF drops ~50 occupations; codelength gain 15.0%%\n"
      "(NC) vs 9.3%% (DF); modularity .192 vs .115; NMI .423 vs .401;\n"
      "flow correlation .390 (all) < .431 (DF) < .454 (NC).\n");
  return 0;
}
