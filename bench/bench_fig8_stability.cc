// Regenerates paper Fig. 8: backbone stability — the Spearman correlation
// between an edge's weight at t and t+1, computed over the edges the
// backbone keeps at time t, as a function of the share of edges retained.
//
// Paper shape to reproduce: no clear winner; every method is very stable,
// with stability always above ~0.84; NC is on par with DF.
//
// The share grid rides the batch StabilitySweep (eval/sweep_metrics.h):
// each snapshot is scored and sorted exactly once for the whole grid,
// with snapshot pairs distributed over the thread pool. The old per-point
// path re-ran the method and re-sorted for every (share, snapshot) cell;
// it is timed alongside for the before/after record and checked
// element-wise against the batch output.

#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "core/filter.h"
#include "core/registry.h"
#include "eval/edge_budget.h"
#include "eval/stability.h"
#include "eval/sweep_metrics.h"
#include "gen/countries.h"

namespace nb = netbone;
using netbone::bench::Banner;
using netbone::bench::NaN;
using netbone::bench::Num;
using netbone::bench::PrintRow;

int main() {
  Banner("Fig. 8", "stability = Spearman(N_t, N_t+1) on backbone edges");
  const bool quick = netbone::bench::QuickMode();
  netbone::bench::JsonBenchLog json("fig8");
  const auto suite = nb::GenerateCountrySuite(
      /*seed=*/42, /*num_years=*/3, /*num_countries=*/quick ? 60 : 150);
  if (!suite.ok()) return 1;

  const std::vector<double> shares = {0.02, 0.05, 0.10, 0.20, 0.50, 1.00};
  const std::vector<nb::Method> parametric = {
      nb::Method::kNaiveThreshold, nb::Method::kHighSalienceSkeleton,
      nb::Method::kDisparityFilter, nb::Method::kNoiseCorrected};

  bool all_match = true;
  for (const nb::CountryNetworkKind kind : nb::AllCountryNetworkKinds()) {
    const nb::TemporalNetwork& network = suite->network(kind);
    std::printf("\n-- %s --\n", nb::CountryNetworkName(kind).c_str());

    // Before: the per-point path — RunMethod + a fresh sort for every
    // (method, share, snapshot) cell, exactly what this harness used to do.
    nb::Timer per_point_timer;
    std::vector<std::vector<double>> per_point(parametric.size());
    for (size_t i = 0; i < parametric.size(); ++i) {
      for (const double share : shares) {
        const auto mean = nb::MeanStability(
            network, [&](const nb::Graph& year) {
              nb::Result<nb::ScoredEdges> scored =
                  nb::RunMethod(parametric[i], year);
              if (!scored.ok()) {
                return nb::Result<nb::BackboneMask>(scored.status());
              }
              return nb::Result<nb::BackboneMask>(
                  nb::TopShare(*scored, share));
            });
        per_point[i].push_back(mean.ok() ? *mean : NaN());
      }
    }
    const double per_point_s = per_point_timer.ElapsedSeconds();

    // After: the batch path — each snapshot scored and sorted once for
    // the entire grid.
    nb::Timer batch_timer;
    std::vector<std::vector<double>> batch(parametric.size());
    for (size_t i = 0; i < parametric.size(); ++i) {
      const auto sweep = nb::StabilitySweep(network, parametric[i], shares);
      for (size_t s = 0; s < shares.size(); ++s) {
        batch[i].push_back(
            sweep.ok() && (*sweep)[s].ok() ? *(*sweep)[s] : NaN());
      }
    }
    const double batch_s = batch_timer.ElapsedSeconds();

    std::vector<std::string> header = {"share"};
    for (const nb::Method m : parametric) header.push_back(nb::MethodTag(m));
    PrintRow(header);
    for (size_t s = 0; s < shares.size(); ++s) {
      std::vector<std::string> row = {Num(shares[s], 2)};
      for (size_t i = 0; i < parametric.size(); ++i) {
        row.push_back(Num(batch[i][s], 3));
        const bool both_na =
            batch[i][s] != batch[i][s] && per_point[i][s] != per_point[i][s];
        if (!both_na && batch[i][s] != per_point[i][s]) all_match = false;
      }
      PrintRow(row);
    }

    std::printf("sweep timing: per-point %.4fs, batch %.4fs (%.1fx)\n",
                per_point_s, batch_s,
                batch_s > 0.0 ? per_point_s / batch_s : NaN());
    json.RecordSeconds("stability_sweep_per_point:" +
                           nb::CountryNetworkName(kind),
                       network.front().num_edges(), 1, per_point_s,
                       per_point_s);
    json.RecordSeconds("stability_sweep_batch:" +
                           nb::CountryNetworkName(kind),
                       network.front().num_edges(), 1, batch_s, batch_s);

    // Parameter-free methods as single points.
    for (const nb::Method m :
         {nb::Method::kMaximumSpanningTree, nb::Method::kDoublyStochastic}) {
      const auto mean = nb::MeanStability(
          network, [&](const nb::Graph& year) {
            return nb::BudgetedBackbone(m, year, /*budget=*/0);
          });
      std::printf("%-22s stability=%s\n", nb::MethodTag(m).c_str(),
                  mean.ok() ? Num(*mean, 3).c_str() : "n/a");
    }
  }
  std::printf("\nbatch vs per-point stability values: %s\n",
              all_match ? "identical" : "MISMATCH");
  std::printf(
      "\nPaper reference: all methods above ~0.84 on all networks; no\n"
      "clear winner — NC matches DF's stability.\n");
  return all_match ? 0 : 1;
}
