// Regenerates paper Fig. 8: backbone stability — the Spearman correlation
// between an edge's weight at t and t+1, computed over the edges the
// backbone keeps at time t, as a function of the share of edges retained.
//
// Paper shape to reproduce: no clear winner; every method is very stable,
// with stability always above ~0.84; NC is on par with DF.

#include <vector>

#include "bench_common.h"
#include "core/filter.h"
#include "core/registry.h"
#include "eval/edge_budget.h"
#include "eval/stability.h"
#include "gen/countries.h"

namespace nb = netbone;
using netbone::bench::Banner;
using netbone::bench::NaN;
using netbone::bench::Num;
using netbone::bench::PrintRow;

int main() {
  Banner("Fig. 8", "stability = Spearman(N_t, N_t+1) on backbone edges");
  const bool quick = netbone::bench::QuickMode();
  const auto suite = nb::GenerateCountrySuite(
      /*seed=*/42, /*num_years=*/3, /*num_countries=*/quick ? 60 : 150);
  if (!suite.ok()) return 1;

  const std::vector<double> shares = {0.02, 0.05, 0.10, 0.20, 0.50, 1.00};
  const std::vector<nb::Method> parametric = {
      nb::Method::kNaiveThreshold, nb::Method::kHighSalienceSkeleton,
      nb::Method::kDisparityFilter, nb::Method::kNoiseCorrected};

  for (const nb::CountryNetworkKind kind : nb::AllCountryNetworkKinds()) {
    const nb::TemporalNetwork& network = suite->network(kind);
    std::printf("\n-- %s --\n", nb::CountryNetworkName(kind).c_str());
    std::vector<std::string> header = {"share"};
    for (const nb::Method m : parametric) header.push_back(nb::MethodTag(m));
    PrintRow(header);

    for (const double share : shares) {
      std::vector<std::string> row = {Num(share, 2)};
      for (const nb::Method m : parametric) {
        const auto mean = nb::MeanStability(
            network, [&](const nb::Graph& year) {
              nb::Result<nb::ScoredEdges> scored = nb::RunMethod(m, year);
              if (!scored.ok()) {
                return nb::Result<nb::BackboneMask>(scored.status());
              }
              return nb::Result<nb::BackboneMask>(
                  nb::TopShare(*scored, share));
            });
        row.push_back(mean.ok() ? Num(*mean, 3) : Num(NaN()));
      }
      PrintRow(row);
    }

    // Parameter-free methods as single points.
    for (const nb::Method m :
         {nb::Method::kMaximumSpanningTree, nb::Method::kDoublyStochastic}) {
      const auto mean = nb::MeanStability(
          network, [&](const nb::Graph& year) {
            return nb::BudgetedBackbone(m, year, /*budget=*/0);
          });
      std::printf("%-22s stability=%s\n", nb::MethodTag(m).c_str(),
                  mean.ok() ? Num(*mean, 3).c_str() : "n/a");
    }
  }
  std::printf(
      "\nPaper reference: all methods above ~0.84 on all networks; no\n"
      "clear winner — NC matches DF's stability.\n");
  return 0;
}
